// Package tboost is a Go implementation of transactional boosting
// (Herlihy & Koskinen, "Transactional Boosting: A Methodology for
// Highly-Concurrent Transactional Objects", PPoPP 2008): a methodology for
// turning highly-concurrent linearizable objects into equally concurrent
// transactional objects using commutativity-based abstract locks,
// operation-level undo logs of inverse method calls, and deferred
// disposable operations.
//
// This package is the public facade; it re-exports the user-facing API from
// the internal packages. Typical use:
//
//	set := tboost.NewSkipListSet()
//	err := tboost.Atomic(func(tx *tboost.Tx) error {
//	    if set.Add(tx, 42) {
//	        // 42 was inserted; if this transaction aborts, the
//	        // runtime automatically calls the inverse, Remove(42).
//	    }
//	    return nil
//	})
//
// Everything inside Atomic executes transactionally: on conflict (an
// abstract-lock timeout), the transaction rolls back by running logged
// inverse operations in reverse, releases its two-phase locks, and retries
// with randomized backoff. Transactions from different goroutines that
// touch disjoint keys run fully in parallel, synchronizing only inside the
// lock-free or fine-grained-locking base objects.
package tboost

import (
	"cmp"
	"context"

	"tboost/internal/boost"
	"tboost/internal/core"
	"tboost/internal/stm"
	"tboost/internal/txncoord"
	"tboost/internal/wal"
)

// Tx is a transaction descriptor, passed to every transactional method.
type Tx = stm.Tx

// System is an isolated transaction domain with its own retry policy and
// statistics.
type System = stm.System

// Config controls a System's retry policy and default lock timeout.
type Config = stm.Config

// StatsSnapshot is a point-in-time copy of a System's counters.
type StatsSnapshot = stm.StatsSnapshot

// Status is a transaction lifecycle state.
type Status = stm.Status

// ErrAborted is the generic abort cause.
var ErrAborted = stm.ErrAborted

// ErrTooManyRetries is returned when a transaction exhausts its retry
// budget.
var ErrTooManyRetries = stm.ErrTooManyRetries

// ErrDoomed is the abort cause recorded when a contention manager doomed
// the transaction (it surfaces via tx.Cause in OnAbort handlers).
var ErrDoomed = stm.ErrDoomed

// ErrContentionCollapse is returned when admission control or the livelock
// detector sheds the transaction instead of retrying it; callers should
// shed load rather than immediately retry.
var ErrContentionCollapse = stm.ErrContentionCollapse

// Atomic executes fn inside a transaction on the default system, retrying
// on conflict until it commits. See stm.System.Atomic for the full
// contract. The *Tx passed to fn is recycled once the call returns; neither
// fn nor its registered handlers may retain it.
func Atomic(fn func(tx *Tx) error) error { return stm.Atomic(fn) }

// AtomicCtx is Atomic with deadline and cancellation: backoff sleeps,
// admission queueing, and abstract-lock waits all observe ctx.
func AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return stm.AtomicCtx(ctx, fn)
}

// MustAtomic is Atomic for bodies that cannot fail; it panics if the
// transaction ultimately cannot commit.
func MustAtomic(fn func(tx *Tx) error) { stm.MustAtomic(fn) }

// NewSystem returns an isolated transaction domain.
func NewSystem(cfg Config) *System { return stm.NewSystem(cfg) }

// DefaultSystem returns the process-wide system the package-level Atomic,
// ReadOnly, and MustAtomic run on — pass it to APIs that take an explicit
// *System (OpenSnapshot, ReadOnlyOn, OpenWAL).
func DefaultSystem() *System { return stm.Default }

// --- Read-only snapshot transactions ---
//
// Versioned boosted objects (the keyed/coarse/ranged sets, maps, multisets
// and their lazy twins) retain a bounded history of committed per-key
// versions. A read-only transaction pins the newest published commit
// sequence number and answers every read from that committed prefix: it
// demands no abstract locks, never conflicts with writers, cannot be
// wounded or chosen as a deadlock victim, and cannot abort. Objects without
// version history (Counter, Heap, Queue, Semaphore, the ordered sets' range
// queries) fall back to eager locking inside a read-only transaction — set
// Config.StrictReadOnly to turn that fallback into a panic.

// Snapshot is a pinned read-only view of a System: every transaction run
// through it observes the same commit sequence number until Close releases
// the pin (and with it the version history the pin retains).
type Snapshot = stm.Snapshot

// ReadOnly executes fn as a lock-free read-only transaction on the default
// system, pinned at the newest committed state. Mutations inside fn panic.
func ReadOnly(fn func(tx *Tx) error) error { return stm.AtomicRO(fn) }

// ReadOnlyOn is ReadOnly against an explicit System (sys.AtomicRO).
func ReadOnlyOn(sys *System, fn func(tx *Tx) error) error { return sys.AtomicRO(fn) }

// OpenSnapshot pins the system's newest committed state and returns a
// handle that runs any number of read-only transactions against that fixed
// point in serialization order. Close it promptly: a live pin retains
// version history on every versioned object.
func OpenSnapshot(sys *System) *Snapshot { return sys.OpenSnapshot() }

// SetOf is a boosted transactional set over any comparable key type,
// backed by the generic boosting kernel (internal/boost).
type SetOf[K comparable] = core.Set[K]

// Set is a boosted transactional set of int64 keys — the original API,
// now an instantiation of SetOf.
type Set = core.Set[int64]

// BaseSetOf is the linearizable black-box interface a set must satisfy to
// be boosted, generic over the key type.
type BaseSetOf[K comparable] = core.BaseSet[K]

// BaseSet is the int64-keyed instantiation of BaseSetOf.
type BaseSet = core.BaseSet[int64]

// NewSkipListSet returns a transactional set backed by a lock-free skip
// list with one abstract lock per key — the paper's SkipListKey.
func NewSkipListSet() *Set { return core.NewSkipListSet() }

// NewSkipListSetCoarse is NewSkipListSet with a single abstract lock for
// all calls (the slow configuration of the paper's Fig. 10).
func NewSkipListSetCoarse() *Set { return core.NewSkipListSetCoarse() }

// NewRBTreeSet returns a transactional set backed by a synchronized
// sequential red-black tree behind one coarse abstract lock (the boosted
// configuration of the paper's Fig. 9).
func NewRBTreeSet() *Set { return core.NewRBTreeSet() }

// NewHashSet returns a transactional set backed by a striped concurrent
// hash set with per-key abstract locks.
func NewHashSet() *Set { return core.NewHashSet() }

// NewLinkedListSet returns a transactional set backed by a lock-coupling
// sorted linked list with per-key abstract locks.
func NewLinkedListSet() *Set { return core.NewLinkedListSet() }

// NewKeyedSet boosts any linearizable BaseSet with per-key abstract locks.
func NewKeyedSet(base BaseSet) *Set { return core.NewKeyedSet[int64](base) }

// NewCoarseSet boosts any linearizable BaseSet with a single abstract lock.
func NewCoarseSet(base BaseSet) *Set { return core.NewCoarseSet[int64](base) }

// NewKeyedSetOf boosts any linearizable base set over any comparable key
// type with per-key abstract locks: the same commutativity discipline as
// NewKeyedSet, for string-, struct-, or otherwise-keyed collections.
func NewKeyedSetOf[K comparable](base BaseSetOf[K]) *SetOf[K] {
	return core.NewKeyedSet[K](base)
}

// NewCoarseSetOf boosts any linearizable base set over any comparable key
// type with a single abstract lock.
func NewCoarseSetOf[K comparable](base BaseSetOf[K]) *SetOf[K] {
	return core.NewCoarseSet[K](base)
}

// NewHashSetOf returns a transactional set over any comparable key type,
// backed by a striped concurrent hash set with per-key abstract locks —
// e.g. NewHashSetOf[string]() for a string-keyed set.
func NewHashSetOf[K comparable]() *SetOf[K] { return core.NewHashSetOf[K]() }

// MapOf is a boosted transactional map over any comparable key type.
type MapOf[K comparable, V any] = core.Map[K, V]

// BaseMapOf is the linearizable black-box interface a map must satisfy to
// be boosted.
type BaseMapOf[K comparable, V any] = core.BaseMap[K, V]

// Map is a boosted transactional map from int64 to V — the original API,
// now an instantiation of MapOf.
type Map[V any] = core.Map[int64, V]

// NewMapOf boosts any linearizable base map with per-key abstract locks.
func NewMapOf[K comparable, V any](base BaseMapOf[K, V]) *MapOf[K, V] {
	return core.NewMap[K, V](base)
}

// NewRBTreeMap returns a transactional map backed by a synchronized
// red-black tree with per-key abstract locks.
func NewRBTreeMap[V any]() *Map[V] { return core.NewRBTreeMap[V]() }

// Heap is a boosted transactional min-priority queue.
type Heap[V any] = core.Heap[V]

// HeapMode selects the heap's abstract-lock discipline.
type HeapMode = core.HeapMode

// Heap lock modes: RWLocked lets commuting add() calls run concurrently in
// shared mode (the paper's discipline); Exclusive serializes everything.
const (
	RWLocked  = core.RWLocked
	Exclusive = core.Exclusive
)

// NewHeap returns a boosted min-heap in the given lock mode.
func NewHeap[V any](mode HeapMode) *Heap[V] { return core.NewHeap[V](mode) }

// BaseHeap is the linearizable black-box interface a priority queue must
// satisfy to be boosted.
type BaseHeap[V any] = core.BaseHeap[V]

// Holder wraps a key in the boosted heap so that Add has an inverse
// (mark-deleted); base heaps store *Holder values.
type Holder[V any] = core.Holder[V]

// NewHeapFromBase boosts an arbitrary linearizable base heap.
func NewHeapFromBase[V any](base BaseHeap[*Holder[V]], mode HeapMode) *Heap[V] {
	return core.NewHeapFromBase[V](base, mode)
}

// NewKeyedSetWoundWait boosts a BaseSet with per-key locks under wound-wait
// contention management (deadlocks resolve by transaction age).
func NewKeyedSetWoundWait(base BaseSet) *Set { return core.NewKeyedSetWoundWait(base) }

// Privatizer manages hand-off of an object between transactional and
// non-transactional use via disposable accessor counting.
type Privatizer = core.Privatizer

// NewPrivatizer returns a Privatizer in shared (transactional) mode.
func NewPrivatizer() *Privatizer { return core.NewPrivatizer() }

// Queue is a boosted bounded FIFO pipeline buffer with transactional
// conditional synchronization (blocking offer/take).
type Queue[T any] = core.Queue[T]

// NewQueue returns a pipeline queue with the given capacity.
func NewQueue[T any](capacity int) *Queue[T] { return core.NewQueue[T](capacity) }

// Semaphore is a transactional counting semaphore: acquires take effect
// immediately (undone on abort), releases are deferred to commit.
type Semaphore = core.Semaphore

// NewSemaphore returns a transactional semaphore with the given initial
// count.
func NewSemaphore(initial int) *Semaphore { return core.NewSemaphore(initial) }

// OrderedSetOf is a boosted transactional sorted set over any ordered key
// type, with range queries synchronized by stripe-partitioned
// interval-granular abstract locks: range operations conflict exactly with
// updates inside their interval, and point operations ride a per-stripe
// lock-free fast path.
type OrderedSetOf[K cmp.Ordered] = core.OrderedSet[K]

// OrderedSet is the int64-keyed boosted sorted set (the original facade
// type, now an alias of the generic one).
type OrderedSet = core.OrderedSet[int64]

// NewOrderedSet returns a boosted sorted set over a lock-free skip list.
func NewOrderedSet() *OrderedSet { return core.NewOrderedSet() }

// NewOrderedSetOf returns a boosted sorted set over a lock-free skip list
// for any ordered key type.
func NewOrderedSetOf[K cmp.Ordered]() *OrderedSetOf[K] { return core.NewOrderedSetOf[K]() }

// MultisetOf is a boosted transactional bag over any comparable key type
// with per-key abstract locks.
type MultisetOf[K comparable] = core.Multiset[K]

// Multiset is a boosted transactional bag of int64 keys.
type Multiset = core.Multiset[int64]

// NewMultiset returns a boosted bag over a striped concurrent multiset.
func NewMultiset() *Multiset { return core.NewMultiset[int64]() }

// NewMultisetOf returns a boosted bag over any comparable key type.
func NewMultisetOf[K comparable]() *MultisetOf[K] { return core.NewMultiset[K]() }

// Lazy constructors: the deferred discipline. A lazy object appends each
// mutation to a per-transaction pending log and answers from the log plus
// an unlocked read of the base; abstract locks are taken only at the commit
// instant, after algebraic fusion shrinks the log (add∘remove annihilate,
// multiset deltas combine, map puts keep the last writer). Long transaction
// bodies therefore stop holding locks across their think time, collapsing
// the deadlock/abort windows eager boosting pays under contention. Answers
// are still sequentially exact (read-your-writes); an optimistic
// observation that goes stale aborts and retries at commit. Quiet set
// mutations (AddQuiet/RemoveQuiet) defer with no observation at all.

// NewLazySkipListSet is the lazy twin of NewSkipListSet.
func NewLazySkipListSet() *Set { return core.NewLazySkipListSet() }

// NewLazyHashSetOf is the lazy twin of NewHashSetOf.
func NewLazyHashSetOf[K comparable]() *SetOf[K] { return core.NewLazyHashSetOf[K]() }

// NewLazyKeyedSetOf boosts any linearizable base set lazily with per-key
// abstract locks held only for the commit instant.
func NewLazyKeyedSetOf[K comparable](base BaseSetOf[K]) *SetOf[K] {
	return core.NewLazyKeyedSet[K](base)
}

// NewLazyCoarseSetOf boosts any linearizable base set lazily behind a
// single abstract lock, held only for the commit instant.
func NewLazyCoarseSetOf[K comparable](base BaseSetOf[K]) *SetOf[K] {
	return core.NewLazyCoarseSet[K](base)
}

// NewLazyOrderedSet is the lazy twin of NewOrderedSet: point ops defer;
// range queries early-flush the pending log and run under their interval
// lock.
func NewLazyOrderedSet() *OrderedSet { return core.NewLazyOrderedSet() }

// NewLazyOrderedSetOf is the lazy twin of NewOrderedSetOf.
func NewLazyOrderedSetOf[K cmp.Ordered]() *OrderedSetOf[K] { return core.NewLazyOrderedSetOf[K]() }

// NewLazyMultisetOf is the lazy twin of NewMultisetOf: per-key deltas fuse
// into one net increment per key at commit.
func NewLazyMultisetOf[K comparable]() *MultisetOf[K] { return core.NewLazyMultiset[K]() }

// NewLazyMapOf boosts a linearizable base map lazily. Unlike NewMapOf, V
// must be comparable: commit-time validation compares observed bindings.
func NewLazyMapOf[K, V comparable](base BaseMapOf[K, V]) *MapOf[K, V] {
	return core.NewLazyMap[K, V](base)
}

// NewLazyRBTreeMap is the lazy twin of NewRBTreeMap (V bound to comparable;
// see NewLazyMapOf).
func NewLazyRBTreeMap[V comparable]() *Map[V] { return core.NewLazyRBTreeMap[V]() }

// Adaptive constructors: runtime lock granularity. An adaptive object starts
// with one coarse abstract lock (cheap while uncontended) and promotes itself
// to a per-key lock table when the lock manager's contention meter — blocked
// acquisitions and a blocked-wait moving average, collected only on the slow
// path — shows sustained blocking. Promotion migrates safely under live
// transactions: each transaction keeps the granularity it latched at its
// first lock demand, a transitional bridge mode holds both footprints, and a
// call-drain barrier separates the two steady states. Adaptive objects are
// bound to their System at construction (the barrier is per-system); with
// AdaptiveConfig.DemoteAfter set they also demote back after sustained quiet.
// Inspect an object via its Engine().AdaptiveStats(); system-wide migration
// counts appear in Stats().

// AdaptiveConfig tunes promotion/demotion thresholds for adaptive objects.
// The zero value selects the documented defaults.
type AdaptiveConfig = boost.AdaptiveConfig

// AdaptiveStats is a point-in-time view of one adaptive object's granularity
// phase and contention signal, from Engine().AdaptiveStats().
type AdaptiveStats = boost.AdaptiveStats

// NewAdaptiveSkipListSet is the adaptive sibling of NewSkipListSet /
// NewSkipListSetCoarse: the same base skip list, with the coarse-vs-keyed
// choice made at runtime by contention.
func NewAdaptiveSkipListSet(sys *System) *Set { return core.NewAdaptiveSkipListSet(sys) }

// NewAdaptiveSetOf boosts any linearizable base set with the adaptive
// discipline under default thresholds.
func NewAdaptiveSetOf[K comparable](sys *System, base BaseSetOf[K]) *SetOf[K] {
	return core.NewAdaptiveSet[K](sys, base)
}

// NewAdaptiveSetConfigOf is NewAdaptiveSetOf with explicit thresholds.
func NewAdaptiveSetConfigOf[K comparable](sys *System, base BaseSetOf[K], cfg AdaptiveConfig) *SetOf[K] {
	return core.NewAdaptiveSetConfig[K](sys, base, cfg)
}

// NewAdaptiveMapOf boosts a linearizable base map with the adaptive
// discipline.
func NewAdaptiveMapOf[K comparable, V any](sys *System, base BaseMapOf[K, V]) *MapOf[K, V] {
	return core.NewAdaptiveMap[K, V](sys, base)
}

// NewAdaptiveMultisetOf returns an adaptively boosted multiset.
func NewAdaptiveMultisetOf[K comparable](sys *System) *MultisetOf[K] {
	return core.NewAdaptiveMultiset[K](sys)
}

// NewLazyAdaptiveSkipListSet is the lazy twin of NewAdaptiveSkipListSet.
func NewLazyAdaptiveSkipListSet(sys *System) *Set { return core.NewLazyAdaptiveSkipListSet(sys) }

// NewLazyAdaptiveSetOf is the lazy twin of NewAdaptiveSetOf.
func NewLazyAdaptiveSetOf[K comparable](sys *System, base BaseSetOf[K]) *SetOf[K] {
	return core.NewLazyAdaptiveSet[K](sys, base)
}

// NewLazyAdaptiveMapOf is the lazy twin of NewAdaptiveMapOf (V bound to
// comparable; see NewLazyMapOf).
func NewLazyAdaptiveMapOf[K, V comparable](sys *System, base BaseMapOf[K, V]) *MapOf[K, V] {
	return core.NewLazyAdaptiveMap[K, V](sys, base)
}

// NewLazyAdaptiveMultisetOf is the lazy twin of NewAdaptiveMultisetOf.
func NewLazyAdaptiveMultisetOf[K comparable](sys *System) *MultisetOf[K] {
	return core.NewLazyAdaptiveMultiset[K](sys)
}

// Counter is a boosted transactional accumulator: increments commute and
// run in parallel; reads serialize against in-flight increments.
type Counter = core.Counter

// NewCounter returns a counter with the given initial value.
func NewCounter(initial int64) *Counter { return core.NewCounter(initial) }

// UniqueID is a transactional unique-ID generator whose aborted assignments
// are released lazily (or never), per the paper's disposability analysis.
type UniqueID = core.UniqueID

// NewUniqueID returns a transactional unique-ID generator.
func NewUniqueID() *UniqueID { return core.NewUniqueID() }

// RefCount is a transactional reference count: increments immediate,
// decrements deferred to commit.
type RefCount = core.RefCount

// NewRefCount returns a reference count with an optional zero-callback.
func NewRefCount(initial int64, onZero func()) *RefCount {
	return core.NewRefCount(initial, onZero)
}

// Pool is a transactional allocator: allocations immediate (undone on
// abort), frees deferred to commit.
type Pool[T any] = core.Pool[T]

// NewPool returns a pool that calls fresh when its free list is empty.
func NewPool[T any](fresh func() T) *Pool[T] { return core.NewPool[T](fresh) }

// --- Durability ---
//
// Boosting's operation-level undo logs have a redo twin: the committed
// forward-op stream is a logical write-ahead log. Open a WAL, bind boosted
// objects to named log sections, call Recover, and point a System at the log
// via Config.Durability. Committed transactions append their forward ops in
// serialization order; in Group mode Atomic does not return success until an
// fsync covers the transaction. See the package example and README
// "Durability".

// WAL is a segmented logical write-ahead log for boosted objects: group
// commit, checkpoint/replay recovery, torn-tail detection. It implements
// the DurabilitySink consumed by Config.Durability.
type WAL = wal.Log

// WALOptions configures OpenWAL.
type WALOptions = wal.Options

// WALMode selects the durability contract: WALOff disables writes, WALAsync
// acks before I/O (data loss window = unflushed tail), WALGroup holds each
// commit until a group fsync covers it.
type WALMode = wal.Mode

// WAL durability modes.
const (
	WALOff   = wal.Off
	WALAsync = wal.Async
	WALGroup = wal.Group
)

// ErrNotDurable wraps the cause when a transaction committed in memory but
// its durability barrier failed; the effects stand but are not guaranteed to
// survive a crash. Check with errors.Is.
var ErrNotDurable = stm.ErrNotDurable

// OpenWAL opens (or creates) a log in opts.Dir. Bind objects, then call
// Recover before the first transaction.
func OpenWAL(opts WALOptions) (*WAL, error) { return wal.Open(opts) }

// Codec serializes keys (or values) for the WAL, generic over the type.
type Codec[T any] = wal.Codec[T]

// Ready-made codecs for common key types.
var (
	Int64Codec  = wal.Int64Codec
	Uint64Codec = wal.Uint64Codec
	StringCodec = wal.StringCodec
)

// CodecFunc builds a Codec from an append function and a decode function —
// the hook for struct or composite keys.
func CodecFunc[T any](app func(buf []byte, v T) []byte, dec func(b []byte) (T, int, error)) Codec[T] {
	return wal.CodecFunc(app, dec)
}

// BindSet registers a boosted set under name in the log: its committed
// add/remove ops are journaled forward, and Recover replays them. Bind
// before Recover; registration order must be stable across restarts.
func BindSet[K comparable](l *WAL, name string, codec Codec[K], s *SetOf[K]) error {
	return core.BindSet(l, name, codec, s)
}

// BindOrderedSet registers a boosted ordered set for durability.
func BindOrderedSet[K cmp.Ordered](l *WAL, name string, codec Codec[K], o *OrderedSetOf[K]) error {
	return core.BindOrderedSet(l, name, codec, o)
}

// BindMap registers a boosted map for durability; values are journaled with
// their own codec.
func BindMap[K comparable, V any](l *WAL, name string, kc Codec[K], vc Codec[V], m *MapOf[K, V]) error {
	return core.BindMap(l, name, kc, vc, m)
}

// BindMultiset registers a boosted multiset for durability.
func BindMultiset[K comparable](l *WAL, name string, codec Codec[K], m *MultisetOf[K]) error {
	return core.BindMultiset(l, name, codec, m)
}

// --- Two-phase commit across Systems ---

// PreparedTx is a participant-side transaction parked between a yes vote
// and the coordinator's decision: effects applied, undo retained, abstract
// locks held, prepare record force-logged. Commit or Abort settles it.
type PreparedTx = stm.PreparedTx

// ErrBackpressure marks transactions shed because the durability sink's
// write controller is saturated; retry after a pause (it arrives wrapped in
// ErrContentionCollapse).
var ErrBackpressure = stm.ErrBackpressure

// ErrNoPreparedSink is returned by System.Prepare when the configured
// durability sink cannot host two-phase commit.
var ErrNoPreparedSink = stm.ErrNoPreparedSink

// Coordinator drives two-phase commit over a fixed list of participant
// Systems: an eager vote round (prepare force-logs), a durable decision
// record (the span's commit point), and a notify round. Recover resolves
// in-doubt branches after a crash.
type Coordinator = txncoord.Coordinator

// Participant is one System under a Coordinator; Log is its WAL when
// durable (needed for in-doubt recovery), nil for a volatile participant.
type Participant = txncoord.Participant

// Branch is one participant's part of a cross-System span.
type Branch = txncoord.Branch

// CoordinatorOptions configures NewCoordinator: decision-log directory
// (empty = volatile), per-vote timeout, retry budget, and backoff.
type CoordinatorOptions = txncoord.Options

// ROSpan is a read-only cross-System span: per-participant MVCC snapshots
// pinned at matched sequences — consistent across Systems, lock-free, and
// abort-free.
type ROSpan = txncoord.ROSpan

// ErrCoordinatorCrashed is returned by Span after a simulated coordinator
// crash; prepared branches stay parked for a recovered coordinator.
var ErrCoordinatorCrashed = txncoord.ErrCoordinatorCrashed

// NewCoordinator opens a two-phase-commit coordinator over parts.
func NewCoordinator(parts []Participant, opts CoordinatorOptions) (*Coordinator, error) {
	return txncoord.New(parts, opts)
}
