GO ?= go

.PHONY: build test test-race test-short vet chaos bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# One fault-injection run over the boosted set, heap, and pipeline queue with
# serializability verdicts. Exits nonzero if any history fails to verify.
chaos:
	$(GO) run ./cmd/boostbench -experiment chaos

bench:
	$(GO) test -bench . -benchtime 200ms -run NONE ./...
