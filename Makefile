GO ?= go

.PHONY: build test test-race test-short vet check chaos bench bench-micro bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The default verification chain: build, vet, full tests, and the full suite
# under the race detector (the single-owner fast path's safety argument is
# checked here every time).
check: build vet test test-race

# One fault-injection run over the boosted set, heap, and pipeline queue with
# serializability verdicts. Exits nonzero if any history fails to verify.
chaos:
	$(GO) run ./cmd/boostbench -experiment chaos

bench:
	$(GO) test -bench . -benchtime 200ms -benchmem -run NONE ./...

# Hot-path microbenchmarks only (Tx lifecycle, lock acquire, boosted set ops)
# with allocation counts.
bench-micro:
	$(GO) test -bench 'TxLifecycle|LockAcquire|BoostedSet' -benchmem -run NONE ./internal/bench/

# Reproducible perf trajectory point: sweeps the hot-path microbenchmarks at
# 1-16 goroutines, legacy (pre-overhaul) and fast-path variants in the same
# run, and writes BENCH_PR2.json. Deterministic workload (fixed key hashing,
# no PRNG); GOMAXPROCS pinned for run-to-run comparability.
bench-json:
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment benchjson \
		-threads 1,2,4,8,16 -json-out BENCH_PR2.json
