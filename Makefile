GO ?= go

.PHONY: build test test-race test-short vet check fuzz-lockmgr fuzz-contention fuzz-contention-race fuzz-codec fuzz-lazy fuzz-snapshot fuzz-snapshot-race fuzz-adaptive fuzz-adaptive-race fuzz-2pc fuzz-2pc-race chaos chaos-race chaos-crash chaos-2pc bench bench-micro bench-json bench-readmix bench-adaptive bench-twopc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The default verification chain: build, vet, full tests, the full suite
# under the race detector (the single-owner fast path's safety argument is
# checked here every time), and two short fuzz passes: the striped interval
# table against the single-mutex reference model, and the wound-wait/detect
# contention policies against the timeout oracle. Go allows one -fuzz pattern
# per invocation, hence separate targets; fuzz-lazy differentially checks
# the lazy discipline (deferral + commit-time fusion) against the eager
# oracle on identical op programs.
check: build vet test test-race fuzz-lockmgr fuzz-contention fuzz-lazy fuzz-snapshot fuzz-adaptive fuzz-2pc

fuzz-lockmgr:
	$(GO) test -run NONE -fuzz FuzzStripedRangeLockEquivalence -fuzztime 10s ./internal/lockmgr/

fuzz-contention:
	$(GO) test -run NONE -fuzz FuzzContentionPolicies -fuzztime 10s ./internal/lockmgr/

# Lazy-vs-eager equivalence: byte programs over a set, multiset, map, and
# ordered set (with nested txs and early-flushing range queries) must give
# bit-identical answers, outcomes, and final states in both disciplines.
fuzz-lazy:
	$(GO) test -run NONE -fuzz FuzzLazyEagerEquivalence -fuzztime 10s ./internal/core/

# Snapshot-consistency differential: byte programs of writers run against
# concurrent read-only snapshot scans; every scan must equal the sequential
# spec replayed to its pinned sequence number, with zero reader aborts and
# zero abstract-lock demands.
fuzz-snapshot:
	$(GO) test -run NONE -fuzz FuzzSnapshotConsistency -fuzztime 10s ./internal/core/

fuzz-snapshot-race:
	$(GO) test -race -run NONE -fuzz FuzzSnapshotConsistency -fuzztime 10s ./internal/core/

# Adaptive-vs-static equivalence: the same byte programs, with forced
# Coarse↔Keyed migrations fired between every pair of transactions, must give
# bit-identical answers and outcomes on adaptive (and lazy adaptive) objects
# as on the static-keyed reference — runtime granularity is invisible to
# sequential semantics.
fuzz-adaptive:
	$(GO) test -run NONE -fuzz FuzzAdaptiveStaticEquivalence -fuzztime 10s ./internal/core/

fuzz-adaptive-race:
	$(GO) test -race -run NONE -fuzz FuzzAdaptiveStaticEquivalence -fuzztime 120s ./internal/core/

fuzz-contention-race:
	$(GO) test -race -run NONE -fuzz FuzzContentionPolicies -fuzztime 10s ./internal/lockmgr/

# Two-phase-commit atomicity differential: byte programs of cross-System
# spans (some poisoned with injected stm faults or branch errors) against a
# sequential model that applies a span's ops iff Span succeeded — a failed
# span must leave no trace on any participant, a successful one must land
# whole on all of them. Read-only spans re-check the final state lock-free.
fuzz-2pc:
	$(GO) test -run NONE -fuzz FuzzTwoPhaseAtomicity -fuzztime 10s ./internal/txncoord/

fuzz-2pc-race:
	$(GO) test -race -run NONE -fuzz FuzzTwoPhaseAtomicity -fuzztime 120s ./internal/txncoord/

# WAL op/frame codec round-trip with one-byte corruption: a mutated frame
# must be rejected or decode identically, never to a different op stream.
fuzz-codec:
	$(GO) test -run NONE -fuzz FuzzOpCodecRoundTrip -fuzztime 10s ./internal/wal/

# One fault-injection run over the boosted set, heap, and pipeline queue with
# serializability verdicts. Exits nonzero if any history fails to verify.
chaos:
	$(GO) run ./cmd/boostbench -experiment chaos

# The chaos suite (fault schedules + the deadlock storm under all three
# contention policies) under the race detector — the scheduled robustness CI
# job runs this.
chaos-race:
	$(GO) test -race -count=1 ./internal/chaos/

# Crash matrix: kill the WAL at each named failpoint, recover, and verify
# the acknowledgment contract against the recorded history. Writes
# divergence reports to $CRASH_ARTIFACT_DIR on failure.
chaos-crash:
	$(GO) test -race -run 'TestCrashMatrix' -count=1 -v ./internal/chaos/

# Two-phase-commit crash matrix: kill a participant or the coordinator at
# each named 2PC failpoint (pre-prepare, post-prepare/pre-vote,
# pre-decision, post-decision/pre-notify, pre-commit-apply), recover the
# whole deployment, and audit span atomicity: no acknowledged span lost, no
# half-applied span, every in-doubt transaction resolved. Divergence reports
# (forensic dumps of both participant logs) land in $CRASH_ARTIFACT_DIR.
chaos-2pc:
	$(GO) test -race -run 'TestTwopcCrashMatrix' -count=1 -v ./internal/chaos/

bench:
	$(GO) test -bench . -benchtime 200ms -benchmem -run NONE ./...

# Hot-path microbenchmarks only (Tx lifecycle, lock acquire, boosted set ops)
# with allocation counts.
bench-micro:
	$(GO) test -bench 'TxLifecycle|LockAcquire|BoostedSet|OrderedSet' -benchmem -run NONE ./internal/bench/

# Reproducible perf trajectory points: sweeps the hot-path microbenchmarks at
# 1-16 goroutines, legacy (pre-overhaul) and fast-path variants in the same
# run (BENCH_PR2.json), then the interval-lock sweep — legacy single-mutex vs
# striped range table over disjoint and overlapping transactional workloads
# (BENCH_PR4.json). Deterministic workloads (fixed key hashing, no PRNG);
# GOMAXPROCS pinned for run-to-run comparability.
bench-json:
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment benchjson \
		-threads 1,2,4,8,16 -json-out BENCH_PR2.json
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment rangemix \
		-threads 1,2,4,8,16 -json-out BENCH_PR4.json

# Multi-version read path: snapshot vs eager readers on 95/5 and 99/1
# hot-range mixes at 1-16 goroutines, plus the writer-only version-overhead
# probe (BENCH_PR8.json).
bench-readmix:
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment readmix \
		-threads 1,2,4,8,16 -json-out BENCH_PR8.json

# Two-phase-commit evaluation: span commit cost (ns/tx and fsyncs/tx vs a
# one-System durable transaction) and read-only-span throughput vs locked
# cross-System reads under writer pressure (BENCH_PR10.json). Exits nonzero
# if read-only spans demanded any abstract lock or aborted.
bench-twopc:
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment twopc \
		-json-out BENCH_PR10.json

# Adaptive granularity sweep: static-coarse vs static-keyed vs adaptive over
# uniform and zipf-hot-key skews at 1-8 goroutines (BENCH_PR9.json). The
# acceptance summary at the bottom checks adaptive tracks the better static
# within 10% in every cell and beats static-coarse >= 1.5x where keyed wins.
bench-adaptive:
	GOMAXPROCS=$${GOMAXPROCS:-$$(nproc)} \
		$(GO) run ./cmd/boostbench -experiment adaptive \
		-json-out BENCH_PR9.json
