// Command histcheck runs randomized strict-serializability checking
// (Theorem 5.3 of the paper) against the boosted set implementations: it
// drives concurrent multi-operation transactions — a fraction of which
// deliberately abort — records the history, replays committed transactions
// in commit order against the sequential Set specification, and verifies
// every recorded response, plus the invisibility of aborted transactions
// (Theorem 5.4).
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/histories"
	"tboost/internal/stm"
)

func main() {
	var (
		rounds   = flag.Int("rounds", 20, "independent rounds per flavour")
		threads  = flag.Int("threads", 8, "concurrent transactions per round")
		txPerG   = flag.Int("tx", 50, "transactions per thread per round")
		opsPerTx = flag.Int("ops", 4, "set operations per transaction")
		keyRange = flag.Int64("keyrange", 16, "key range (small = contended)")
		seed     = flag.Uint64("seed", 1, "base PRNG seed")
	)
	flag.Parse()

	flavours := []struct {
		name string
		make func() *core.Set[int64]
	}{
		{"skiplist-keyed", core.NewSkipListSet},
		{"skiplist-coarse", core.NewSkipListSetCoarse},
		{"rbtree-coarse", core.NewRBTreeSet},
		{"hashset-keyed", core.NewHashSet},
		{"linkedlist-keyed", core.NewLinkedListSet},
	}
	specs := map[string]histories.Spec{"set": histories.SetSpec{}}
	failures := 0
	for _, f := range flavours {
		for round := 0; round < *rounds; round++ {
			h, finalPresent := runRound(f.make(), *threads, *txPerG, *opsPerTx, *keyRange, *seed+uint64(round))
			if err := histories.CheckStrictSerializability(h, specs); err != nil {
				fmt.Printf("FAIL %s round %d: %v\n", f.name, round, err)
				failures++
				continue
			}
			finals, err := histories.FinalStates(h, specs)
			if err != nil {
				fmt.Printf("FAIL %s round %d: %v\n", f.name, round, err)
				failures++
				continue
			}
			ok := true
			for k := int64(0); k < *keyRange; k++ {
				want, _, _ := finals["set"].Apply("contains", []int64{k})
				if finalPresent(k) != want.OK {
					fmt.Printf("FAIL %s round %d: key %d base=%v, history=%v\n",
						f.name, round, k, finalPresent(k), want.OK)
					ok = false
				}
			}
			if !ok {
				failures++
			}
		}
		fmt.Printf("ok   %s: %d rounds strictly serializable\n", f.name, *rounds)
	}
	if failures > 0 {
		fmt.Printf("%d failures\n", failures)
		os.Exit(1)
	}
	fmt.Println("all histories strictly serializable; aborted transactions invisible")
}

func runRound(s *core.Set[int64], threads, txPerG, opsPerTx int, keyRange int64, seed uint64) (histories.History, func(int64) bool) {
	rec := histories.NewRecorder()
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	giveUp := errors.New("deliberate abort")
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(seed, uint64(g)))
			for i := 0; i < txPerG; i++ {
				fail := r.IntN(4) == 0
				type op struct {
					kind int
					key  int64
				}
				ops := make([]op, opsPerTx)
				for j := range ops {
					ops[j] = op{r.IntN(3), r.Int64N(keyRange)}
				}
				_ = sys.Atomic(func(tx *stm.Tx) error {
					rec.Init(tx.ID())
					for _, o := range ops {
						switch o.kind {
						case 0:
							v := s.Add(tx, o.key)
							rec.RecordCall(tx.ID(), "set", "add", []int64{o.key}, histories.Resp{OK: v})
						case 1:
							v := s.Remove(tx, o.key)
							rec.RecordCall(tx.ID(), "set", "remove", []int64{o.key}, histories.Resp{OK: v})
						default:
							v := s.Contains(tx, o.key)
							rec.RecordCall(tx.ID(), "set", "contains", []int64{o.key}, histories.Resp{OK: v})
						}
					}
					if fail {
						tx.OnAbort(func() { rec.Aborted(tx.ID()) })
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
			}
		}()
	}
	wg.Wait()
	return rec.History(), func(k int64) bool { return s.Base().Contains(k) }
}
