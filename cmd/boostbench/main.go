// Command boostbench regenerates the paper's evaluation figures
// (Herlihy & Koskinen, PPoPP 2008, §4) as printed series and comparison
// tables.
//
// Usage:
//
//	boostbench -experiment fig9   # red-black tree: boosted vs shadow copies
//	boostbench -experiment fig10  # skip list: single lock vs lock per key
//	boostbench -experiment fig11  # heap: readers/writer vs exclusive lock
//	boostbench -experiment aborts # abort-rate comparison (§4.1 claim)
//	boostbench -experiment stripes # ablation: lock-table striping
//	boostbench -experiment chaos  # fault-injection run with serializability verdicts
//	boostbench -experiment deadlock # contention-policy sweep on a deadlock-prone mix
//	boostbench -experiment durability # WAL group-commit sweep: fsyncs/commit vs window
//	boostbench -experiment fusion # lazy vs eager boosting: commit-time fusion sweep
//	boostbench -experiment readmix # snapshot vs eager readers on read-dominated mixes
//	boostbench -experiment adaptive # static coarse/keyed vs runtime-adaptive granularity
//	boostbench -experiment twopc  # cross-System spans: commit cost + read-only spans
//	boostbench -experiment all
//
// Flags tune the workload; the defaults mirror the paper's methodology
// (one method call per transaction, think time inside the transaction)
// scaled to finish in seconds rather than minutes.
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tboost/internal/bench"
	"tboost/internal/chaos"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig9|fig10|fig11|aborts|stripes|pipeline|timeout|policy|heapbases|chaos|benchjson|rangemix|deadlock|durability|fusion|readmix|adaptive|twopc|all")
		jsonOut    = flag.String("json-out", "", "benchjson/rangemix/deadlock/fusion/readmix/adaptive/twopc: also write the report to this file (e.g. BENCH_PR2.json)")
		microOps   = flag.Int("micro-ops", 0, "benchjson/rangemix/deadlock/fusion/readmix/adaptive/twopc: operations (transactions) per sweep cell (0 = default)")
		chaosSeed  = flag.Uint64("chaos-seed", 0, "chaos: use a randomized fault schedule with this seed (0 = default schedule)")
		chaosTx    = flag.Int("chaos-tx", 0, "chaos: transactions per worker (0 = default)")
		threads    = flag.String("threads", "1,2,4,8,16,32", "comma-separated thread counts")
		duration   = flag.Duration("duration", 500*time.Millisecond, "measurement window per cell")
		think      = flag.Duration("think", 200*time.Microsecond, "think time inside each transaction (paper: 100ms)")
		keyRange   = flag.Int64("keyrange", 1<<12, "key range for workload generators")
		opsPerTx   = flag.Int("ops", 1, "object operations per transaction")
		readPct    = flag.Int("reads", 60, "percent contains operations (set workloads)")
		addPct     = flag.Int("adds", 20, "percent add operations (set workloads)")
	)
	flag.Parse()

	threadCounts, err := parseThreads(*threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boostbench:", err)
		os.Exit(2)
	}
	w := bench.Workload{
		Duration:  *duration,
		ThinkTime: *think,
		KeyRange:  *keyRange,
		OpsPerTx:  *opsPerTx,
		ReadPct:   *readPct,
		AddPct:    *addPct,
	}

	thinkSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "think" {
			thinkSet = true
		}
	})

	experiments := map[string]func(){
		"fig9": func() {
			// Fig. 9 contrasts per-method boosting overhead with
			// per-field STM overhead, so its default regime is
			// CPU-bound: think time would let the optimistic baseline
			// overlap sleeps on this machine's single busy core (see
			// EXPERIMENTS.md). An explicit -think overrides.
			w9 := w
			if !thinkSet {
				w9.ThinkTime = 0
			}
			fmt.Println("=== Figure 9: red-black tree — transactional boosting vs shadow copies ===")
			fmt.Printf("workload: %d op/tx, %d%% reads, %d%% adds, keys [0,%d), think %v\n\n",
				w9.OpsPerTx, w9.ReadPct, w9.AddPct, w9.KeyRange, w9.ThinkTime)
			results := bench.Sweep(bench.Fig9Targets, threadCounts, w9)
			bench.PrintComparison(os.Stdout, results)
			fmt.Println()
			bench.PrintSeries(os.Stdout, results)
		},
		"fig10": func() {
			fmt.Println("=== Figure 10: lock-free skip list — single transactional lock vs lock per key ===")
			fmt.Printf("workload: %d op/tx, %d%% reads, %d%% adds, keys [0,%d), think %v\n\n",
				w.OpsPerTx, w.ReadPct, w.AddPct, w.KeyRange, w.ThinkTime)
			results := bench.Sweep(bench.Fig10Targets, threadCounts, w)
			bench.PrintComparison(os.Stdout, results)
			fmt.Println()
			bench.PrintSeries(os.Stdout, results)
		},
		"fig11": func() {
			fmt.Println("=== Figure 11: concurrent heap — readers/writer vs exclusive abstract lock ===")
			fmt.Printf("workload: 50%% add / 50%% removeMin, %d op/tx, think %v\n\n", w.OpsPerTx, w.ThinkTime)
			results := bench.Sweep(bench.Fig11Targets, threadCounts, w)
			bench.PrintComparison(os.Stdout, results)
			fmt.Println()
			bench.PrintSeries(os.Stdout, results)
		},
		"aborts": func() {
			fmt.Println("=== §4.1 abort rates: boosted vs shadow under contention ===")
			wc := w
			if !thinkSet {
				wc.ThinkTime = 0
			}
			wc.KeyRange = 128
			wc.OpsPerTx = 4
			wc.ReadPct = 34
			wc.AddPct = 33
			fmt.Printf("workload: %d op/tx, keys [0,%d) (contended), think %v\n\n", wc.OpsPerTx, wc.KeyRange, wc.ThinkTime)
			results := bench.Sweep(bench.Fig9Targets, threadCounts, wc)
			fmt.Printf("%-8s %-20s %12s %10s %10s   %s\n", "threads", "target", "commits/sec", "aborts", "abort%", "by cause")
			for _, r := range results {
				fmt.Printf("%-8d %-20s %12.1f %10d %9.1f%%   %s\n",
					r.Threads, r.Target, r.Throughput, r.Aborts, 100*r.AbortRatio(),
					r.Stats.CauseString())
			}
		},
		"chaos": func() {
			fmt.Println("=== Chaos: boosted structures under failpoint-injected faults ===")
			var sched chaos.Schedule
			if *chaosSeed != 0 {
				r := rand.New(rand.NewPCG(*chaosSeed, 0xc4a05))
				sched = chaos.RandomSchedule(r)
				fmt.Printf("schedule: randomized, seed %d, %d faults armed\n\n", *chaosSeed, len(sched))
			} else {
				sched = chaos.DefaultSchedule()
				fmt.Printf("schedule: default (%d faults: timeout, doom, validation failure, delay)\n\n", len(sched))
			}
			rep := chaos.Run(chaos.Config{TxPerG: *chaosTx}, sched)
			fmt.Print(rep)
			if rep.Serializable() {
				fmt.Println("verdict: all histories strictly serializable under injected faults")
			} else {
				fmt.Printf("verdict: FAILED: %v\n", rep.Err())
				os.Exit(1)
			}
		},
		"stripes": func() {
			fmt.Println("=== Ablation: LockMap striping width (boosted skip list, per-key locks) ===")
			results := bench.Sweep(func() []bench.Target {
				return bench.AblationLockMapStripes([]int{1, 4, 16, 64, 256})
			}, threadCounts, w)
			bench.PrintSeries(os.Stdout, results)
		},
		"pipeline": func() {
			fmt.Println("=== §3.3 pipeline: feed throughput vs depth and buffer capacity ===")
			var results []bench.Result
			for _, cfg := range []struct{ stages, capacity int }{
				{1, 4}, {2, 4}, {4, 4}, {4, 16}, {4, 64},
			} {
				wp := w
				wp.Threads = 1 // one producer per pipeline (SPSC queues)
				wp.ThinkTime = 0
				results = append(results, bench.Run(bench.PipelineTargets(cfg.stages, cfg.capacity)[0], wp))
			}
			fmt.Printf("%-28s %14s\n", "pipeline", "items/sec")
			for _, r := range results {
				fmt.Printf("%-28s %14.1f\n", r.Target, r.Throughput)
			}
		},
		"heapbases": func() {
			fmt.Println("=== Ablation: boosted heap over Hunt fine-grained vs pairing coarse base ===")
			results := bench.Sweep(bench.AblationHeapBases, threadCounts, w)
			bench.PrintSeries(os.Stdout, results)
		},
		"policy": func() {
			fmt.Println("=== Ablation: deadlock policy — timeout-only vs wound-wait ===")
			fmt.Println("workload: multi-key transactions over few keys in random order (deadlock-prone)")
			wp := w
			wp.KeyRange = 8
			wp.OpsPerTx = 4
			wp.ReadPct = 0
			wp.AddPct = 50
			if wp.ThinkTime == 0 {
				wp.ThinkTime = 400 * time.Microsecond
			}
			results := bench.Sweep(func() []bench.Target {
				return bench.AblationContentionPolicy(50 * time.Millisecond)
			}, threadCounts, wp)
			bench.PrintSeries(os.Stdout, results)
		},
		"benchjson": func() {
			fmt.Println("=== Hot-path microbenchmarks: legacy vs fast path, same run ===")
			fmt.Printf("deterministic keys, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep := bench.MicroSweep(threadCounts, *microOps)
			bench.PrintMicro(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"rangemix": func() {
			fmt.Println("=== Interval-lock sweep: legacy single-mutex vs striped, same run ===")
			fmt.Printf("deterministic keys, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep := bench.RangeSweep(threadCounts, *microOps)
			bench.PrintRange(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"deadlock": func() {
			fmt.Println("=== Deadlock-policy sweep: timeout vs wound-wait vs detect ===")
			fmt.Printf("reverse-order overlap mix, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep := bench.DeadlockSweep(threadCounts, *microOps)
			bench.PrintDeadlock(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"fusion": func() {
			fmt.Println("=== Lazy vs eager boosting: commit-time fusion sweep ===")
			fmt.Printf("ABBA + churn mixes, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep := bench.FusionSweep(threadCounts, *microOps)
			bench.PrintFusion(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"readmix": func() {
			fmt.Println("=== Multi-version read path: snapshot vs eager readers ===")
			fmt.Printf("read-dominated hot-range mixes, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep := bench.ReadmixSweep(threadCounts, *microOps)
			bench.PrintReadmix(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"adaptive": func() {
			fmt.Println("=== Adaptive lock granularity: static coarse/keyed vs runtime promotion ===")
			// The acceptance grid is fixed at {1,2,4,8} goroutines unless
			// -threads was given explicitly.
			gs := []int{1, 2, 4, 8}
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "threads" {
					gs = threadCounts
				}
			})
			fmt.Printf("dwell-inside-lock add/remove mix, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), gs)
			rep := bench.AdaptiveSweep(gs, *microOps)
			bench.PrintAdaptive(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"twopc": func() {
			fmt.Println("=== Two-phase commit: span cost and read-only-span throughput ===")
			fmt.Printf("two durable participants + durable coordinator, GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))
			rep := bench.TwopcSweep(*microOps)
			bench.PrintTwopc(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
			if rep.ROSpanAborts != 0 || rep.ROSpanLockDemands != 0 {
				fmt.Fprintln(os.Stderr, "boostbench: read-only spans took locks or aborted")
				os.Exit(1)
			}
		},
		"durability": func() {
			fmt.Println("=== Durability sweep: WAL off/async/group-commit windows ===")
			fmt.Printf("disjoint-key write mix, GOMAXPROCS=%d, goroutines %v\n\n", runtime.GOMAXPROCS(0), threadCounts)
			rep, err := bench.DurabilitySweep(threadCounts, *microOps)
			if err != nil {
				fmt.Fprintln(os.Stderr, "boostbench:", err)
				os.Exit(1)
			}
			bench.PrintDurability(os.Stdout, rep)
			if *jsonOut != "" {
				f, err := os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				if err := rep.WriteJSON(f); err == nil {
					err = f.Close()
				} else {
					f.Close()
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "boostbench:", err)
					os.Exit(1)
				}
				fmt.Printf("\nwrote %s\n", *jsonOut)
			}
		},
		"timeout": func() {
			fmt.Println("=== Ablation: abstract-lock timeout sensitivity (contended coarse lock) ===")
			results := bench.Sweep(func() []bench.Target {
				return bench.AblationLockTimeout([]time.Duration{
					500 * time.Microsecond, 2 * time.Millisecond,
					10 * time.Millisecond, 100 * time.Millisecond,
				})
			}, threadCounts, w)
			bench.PrintSeries(os.Stdout, results)
		},
	}

	if *experiment == "all" {
		for _, name := range []string{"fig9", "fig10", "fig11", "aborts", "stripes", "pipeline", "timeout", "policy", "heapbases", "chaos"} {
			experiments[name]()
			fmt.Println()
		}
		return
	}
	run, ok := experiments[*experiment]
	if !ok {
		fmt.Fprintf(os.Stderr, "boostbench: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	run()
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no thread counts given")
	}
	return out, nil
}
