package lockmgr

import (
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

// TestParallelBranchesSameLock exercises the sibling-acquisition path: two
// branches of one transaction race to acquire the same abstract lock. The
// loser of the registration race must wait until the winner actually owns
// the lock before proceeding.
func TestParallelBranchesSameLock(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 500 * time.Millisecond})
	l := NewOwnerLock()
	var critical atomic.Int32
	var maxSeen atomic.Int32
	for round := 0; round < 50; round++ {
		err := sys.Atomic(func(tx *stm.Tx) error {
			branch := func(tx *stm.Tx) error {
				l.Acquire(tx)
				if !l.HeldBy(tx) {
					t.Error("branch proceeded without the tx owning the lock")
				}
				n := critical.Add(1)
				if n > maxSeen.Load() {
					maxSeen.Store(n)
				}
				critical.Add(-1)
				return nil
			}
			return tx.Parallel(branch, branch, branch)
		})
		if err != nil {
			t.Fatal(err)
		}
		if l.Locked() {
			t.Fatal("lock leaked after commit")
		}
	}
}

// TestParallelBranchesSameLockAgainstForeignHolder: sibling branches wait on
// a lock held by another transaction; when it releases, exactly one branch
// acquires for the whole transaction and all proceed.
func TestParallelBranchesSameLockAgainstForeignHolder(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLock()
	held := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	time.AfterFunc(50*time.Millisecond, func() { close(release) })
	var entered atomic.Int32
	err := sys.Atomic(func(tx *stm.Tx) error {
		branch := func(tx *stm.Tx) error {
			l.Acquire(tx)
			entered.Add(1)
			return nil
		}
		return tx.Parallel(branch, branch)
	})
	if err != nil {
		t.Fatal(err)
	}
	if entered.Load() != 2 {
		t.Fatalf("entered = %d, want 2", entered.Load())
	}
}

// TestWaitOwnedByTimesOut: if the sibling that registered the lock never
// acquires it (foreign holder forever), the waiting branch gives up within
// its timeout.
func TestWaitOwnedByTimesOut(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 30 * time.Millisecond, MaxRetries: 1})
	l := NewOwnerLock()
	blocker := make(chan struct{})
	heldC := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(heldC)
			<-blocker
			return nil
		})
	}()
	<-heldC
	start := time.Now()
	err := sys.Atomic(func(tx *stm.Tx) error {
		branch := func(tx *stm.Tx) error {
			l.Acquire(tx) // both branches race; both time out
			return nil
		}
		return tx.Parallel(branch, branch)
	})
	close(blocker)
	if err == nil {
		t.Fatal("acquisition against a permanent holder succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out acquisition took %v", elapsed)
	}
}
