package lockmgr

import (
	"sync"

	"tboost/internal/stm"
)

// maxChase bounds the chain walk of a cycle check. Because each waiter has
// exactly one outgoing edge the walk needs no visited set; a bound this deep
// is never reached by real lock chains (it would mean 64 transactions blocked
// in single file) and guards the walk against pathological graphs built from
// stale edges.
const maxChase = 64

// waitEdge records that the transaction with ID waiterID is blocked on the
// transaction holder (with ID holderID). IDs — not descriptors — are the
// identities: stm recycles Tx descriptors through a pool, so a *Tx pointer
// may be reincarnated as an unrelated transaction, while IDs are drawn from
// a global sequence and never reused. Edges are keyed and followed by ID;
// the descriptor pointer is retained only to doom the chosen victim, and
// birth values are captured at edge insertion so victim selection does not
// read a possibly-recycled descriptor.
type waitEdge struct {
	holderID    uint64
	holder      *stm.Tx
	holderBirth uint64
	holderRO    bool
	waiter      *stm.Tx
	waiterBirth uint64
	waiterRO    bool
}

// waitForGraph is the Detect policy's wait-for graph, maintained at
// block/unblock edges of the lock managers' wait loops. Each waiter has at
// most one outgoing edge (a goroutine blocks on one lock at a time; a new
// conflict round replaces the edge), so the graph is functional and cycle
// detection on insertion is a single bounded chain walk — no general graph
// search, no allocation.
//
// Soundness (DESIGN.md §9): an edge waiter→holder is inserted while the
// lock's internal mutex is held, i.e. while holder truly holds a grant that
// blocks waiter, and removed by OnWaitEnd when the wait ends. The walk
// follows edges by never-reused transaction ID, so a descriptor recycled
// into a new transaction cannot splice two unrelated chains: the stale
// edge's IDs simply no longer match any live waiter and the walk stops.
// Edges can be stale in one direction only — a wait that ended but whose
// OnWaitEnd has not yet run — so a detected "cycle" may include a
// just-released wait; dooming its youngest member is then unnecessary but
// harmless (the victim retries once, with its birth preserved). A real
// deadlock, by contrast, is stable: its edges stay in the graph until the
// cycle-closing insertion finds them, so every true cycle is detected.
type waitForGraph struct {
	mu    sync.Mutex
	edges map[uint64]waitEdge // waiter ID → its single outgoing edge
}

// observe inserts (or replaces) the edge waiter→holder, then checks whether
// the edge closed a cycle. If it did, observe returns the youngest member of
// the cycle (largest birth — the transaction that has invested the least
// and, under retry-with-preserved-birth, will age into immunity); otherwise
// nil. Read-only transactions are skipped in victim selection: the youngest
// *writer* in the cycle is preferred, and only a cycle consisting entirely
// of read-only (fallback-path) transactions sacrifices a reader. The RO flag
// is captured at edge insertion, like the births, so victim selection never
// reads a possibly-recycled descriptor.
func (g *waitForGraph) observe(waiter, holder *stm.Tx) *stm.Tx {
	wid := waiter.ID()
	e := waitEdge{
		holderID:    holder.ID(),
		holder:      holder,
		holderBirth: holder.Birth(),
		holderRO:    holder.ReadOnly(),
		waiter:      waiter,
		waiterBirth: waiter.Birth(),
		waiterRO:    waiter.ReadOnly(),
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.edges[wid] = e

	victim := waiter
	victimBirth := e.waiterBirth
	var victimRW *stm.Tx // youngest non-read-only member seen so far
	var victimRWBirth uint64
	if !e.waiterRO {
		victimRW, victimRWBirth = waiter, e.waiterBirth
	}
	cur := e
	for range maxChase {
		if cur.holderBirth > victimBirth {
			victim, victimBirth = cur.holder, cur.holderBirth
		}
		if !cur.holderRO && (victimRW == nil || cur.holderBirth > victimRWBirth) {
			victimRW, victimRWBirth = cur.holder, cur.holderBirth
		}
		if cur.holderID == wid {
			// The chain returned to the inserting waiter: cycle. Prefer
			// the youngest writer; an all-reader cycle falls back to the
			// youngest member so the cycle is still broken.
			if victimRW != nil {
				return victimRW
			}
			return victim
		}
		next, ok := g.edges[cur.holderID]
		if !ok {
			return nil // chain ends at a transaction that is not waiting
		}
		cur = next
	}
	return nil
}

// drop removes the waiter's outgoing edge when its wait ends.
func (g *waitForGraph) drop(waiterID uint64) {
	g.mu.Lock()
	delete(g.edges, waiterID)
	g.mu.Unlock()
}

// waiting reports how many transactions currently have outgoing edges.
// For tests: the graph must drain to empty at quiescence (no leaked edges).
func (g *waitForGraph) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.edges)
}

// DetectWaiting reports the number of live wait-for edges inside a policy
// returned by NewDetect, or -1 if p is not such a policy. The chaos harness
// uses it as a quiescent-state check: after every transaction has finished,
// a non-empty graph means a blocking point leaked an edge.
func DetectWaiting(p ContentionPolicy) int {
	if d, ok := p.(*detectPolicy); ok {
		return d.g.waiting()
	}
	return -1
}
