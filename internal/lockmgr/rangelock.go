package lockmgr

import (
	"cmp"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/stm"
)

// RangeLock is an interval-granular abstract lock manager: a transaction
// locks a key interval [lo, hi], and two acquisitions conflict exactly when
// their intervals overlap. It generalizes the paper's key-based LockKey to
// the argument-dependent conflict predicates of the commutativity-locking
// literature its related-work section cites: a range query commutes with
// any update outside the range, and the interval lock encodes precisely
// that. The key space is any ordered type: the interval discipline only
// needs <=, so string- and float-keyed boosted collections can use it too.
//
// Point operations lock the degenerate interval [k, k], so they interact
// correctly with range operations on the same structure. Intervals held by
// one transaction accumulate until commit/abort (two-phase), and
// acquisition is reentrant: an interval already covered by the
// transaction's holdings is granted immediately.
//
// Every acquisition — even a disjoint point op — funnels through the one
// mutex and an O(held) scan, and every release wakes every waiter.
// StripedRangeLock removes both costs; this manager is kept as the
// SetLegacyRangeLocks benchmark baseline and as the reference model the
// striped fuzz test checks grant/block equivalence against.
type RangeLock[K cmp.Ordered] struct {
	mu       sync.Mutex
	held     []heldInterval[K]
	gen      chan struct{} // closed on each release to wake waiters
	spurious atomic.Uint64 // wakeups that re-checked and re-blocked
}

type heldInterval[K cmp.Ordered] struct {
	lo, hi K
	tx     *stm.Tx
}

// NewRangeLock returns an empty interval lock manager.
func NewRangeLock[K cmp.Ordered]() *RangeLock[K] {
	return &RangeLock[K]{}
}

// TryLockRange attempts to lock [lo, hi] for tx, waiting up to timeout for
// conflicting intervals to be released. It returns true on success.
func (r *RangeLock[K]) TryLockRange(tx *stm.Tx, lo, hi K, timeout time.Duration) bool {
	if lo > hi {
		lo, hi = hi, lo
	}
	// One timer for the whole wait, armed on first block and stopped on
	// every exit path — the one-shot discipline of OwnerLock.acquireSlow
	// (the timeout return used to leak a live timer).
	var timer *time.Timer
	var expired <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	woke := false
	for {
		r.mu.Lock()
		covered := false
		conflict := false
		for _, h := range r.held {
			if h.lo <= lo && hi <= h.hi && h.tx == tx {
				covered = true
				break
			}
			if h.tx != tx && h.lo <= hi && lo <= h.hi {
				conflict = true
				break
			}
		}
		if covered {
			r.mu.Unlock()
			return true
		}
		if !conflict {
			r.held = append(r.held, heldInterval[K]{lo: lo, hi: hi, tx: tx})
			r.mu.Unlock()
			tx.RegisterLock(r)
			return true
		}
		if r.gen == nil {
			r.gen = make(chan struct{})
		}
		wait := r.gen
		r.mu.Unlock()

		if woke {
			// Woken by a release that did not clear our conflict: the
			// single gen channel broadcasts every release to every waiter.
			r.spurious.Add(1)
		}
		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
			rangeTimerArms.Add(1)
		}
		select {
		case <-wait:
			woke = true
		case <-expired:
			return false
		}
	}
}

// LockRange locks [lo, hi] for tx with the system's default timeout,
// aborting tx on failure with the cause that explains it.
func (r *RangeLock[K]) LockRange(tx *stm.Tx, lo, hi K) {
	if !r.TryLockRange(tx, lo, hi, tx.System().LockTimeout()) {
		abortAcquireFailure(tx)
	}
}

// LockKey locks the single key k (the interval [k, k]).
func (r *RangeLock[K]) LockKey(tx *stm.Tx, k K) {
	r.LockRange(tx, k, k)
}

// Unlock releases every interval tx holds. Called by the stm runtime at
// commit/abort.
func (r *RangeLock[K]) Unlock(tx *stm.Tx) {
	r.mu.Lock()
	kept := r.held[:0]
	for _, h := range r.held {
		if h.tx != tx {
			kept = append(kept, h)
		}
	}
	r.held = kept
	if r.gen != nil {
		close(r.gen)
		r.gen = nil
	}
	r.mu.Unlock()
}

// Holdings reports how many intervals are currently held (all
// transactions). For tests.
func (r *RangeLock[K]) Holdings() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.held)
}

// SpuriousWakeups reports how many wait-loop wakeups re-checked and found
// their conflict still standing — the thundering-herd cost of the single
// broadcast channel.
func (r *RangeLock[K]) SpuriousWakeups() uint64 { return r.spurious.Load() }

var _ stm.Unlocker = (*RangeLock[int64])(nil)
