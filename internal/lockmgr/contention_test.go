package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

// TestSystemPolicyInherited: locks built with no explicit policy consult
// stm.Config.Contention, so setting the policy in one place governs plain
// NewOwnerLock / NewLockMap locks (and through them every boosted object).
func TestSystemPolicyInherited(t *testing.T) {
	sys := stm.NewSystem(stm.Config{
		LockTimeout: 2 * time.Second,
		Contention:  WoundWait,
	})
	l := NewOwnerLock() // no per-lock policy: inherits WoundWait from sys

	olderStarted := make(chan struct{})
	youngerHolds := make(chan struct{})
	var youngerAttempts atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // older
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			if tx.Attempt() == 0 {
				close(olderStarted)
				<-youngerHolds
			}
			l.Acquire(tx) // must wound the younger holder via the system policy
			return nil
		})
		if err != nil {
			t.Errorf("older: %v", err)
		}
	}()
	go func() { // younger: grabs the lock, then dawdles toward commit
		defer wg.Done()
		<-olderStarted
		err := sys.Atomic(func(tx *stm.Tx) error {
			youngerAttempts.Add(1)
			l.Acquire(tx)
			if tx.Attempt() == 0 {
				close(youngerHolds)
				time.Sleep(50 * time.Millisecond)
			}
			return nil
		})
		if err != nil {
			t.Errorf("younger: %v", err)
		}
	}()
	wg.Wait()
	if youngerAttempts.Load() < 2 {
		t.Fatalf("younger committed without being wounded (attempts=%d): system policy not consulted", youngerAttempts.Load())
	}
	st := sys.Stats()
	if st.WoundsIssued < 1 {
		t.Errorf("WoundsIssued = %d, want >= 1", st.WoundsIssued)
	}
	if st.AbortsWounded < 1 {
		t.Errorf("AbortsWounded = %d, want >= 1 (%s)", st.AbortsWounded, st.CauseString())
	}
	if st.CommitAge[0]+st.CommitAge[1]+st.CommitAge[2]+st.CommitAge[3] != st.Commits {
		t.Errorf("commit-age histogram %v does not sum to commits %d", st.CommitAge, st.Commits)
	}
}

// TestDetectResolvesABBA: the Detect policy breaks an ABBA deadlock well
// before the (long) timeout by finding the cycle in the wait-for graph, and
// the graph drains once the storm is over.
func TestDetectResolvesABBA(t *testing.T) {
	det := NewDetect()
	sys := stm.NewSystem(stm.Config{
		LockTimeout: 30 * time.Second,
		Contention:  det,
	})
	a := NewOwnerLock()
	b := NewOwnerLock()
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sys.Atomic(func(tx *stm.Tx) error {
				first, second := a, b
				if i == 1 {
					first, second = b, a
				}
				first.Acquire(tx)
				time.Sleep(5 * time.Millisecond) // guarantee the overlap
				second.Acquire(tx)
				return nil
			})
			if err != nil {
				t.Errorf("tx %d: %v", i, err)
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("Detect failed to resolve the deadlock")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("resolution took %v; Detect should not wait out the 30s timeout", elapsed)
	}
	st := sys.Stats()
	if st.DeadlockCycles < 1 {
		t.Errorf("DeadlockCycles = %d, want >= 1", st.DeadlockCycles)
	}
	if st.AbortsDeadlock < 1 {
		t.Errorf("AbortsDeadlock = %d, want >= 1 (%s)", st.AbortsDeadlock, st.CauseString())
	}
	if n := DetectWaiting(det); n != 0 {
		t.Errorf("wait-for graph holds %d edges at quiescence, want 0", n)
	}
}

// TestDetectVictimIsYoungest: when Detect finds a cycle, it dooms the
// youngest member — the older transaction commits on its first attempt.
func TestDetectVictimIsYoungest(t *testing.T) {
	sys := stm.NewSystem(stm.Config{
		LockTimeout: 30 * time.Second,
		Contention:  NewDetect(),
	})
	a := NewOwnerLock()
	b := NewOwnerLock()

	olderHoldsA := make(chan struct{})
	youngerHoldsB := make(chan struct{})
	var olderAttempts, youngerAttempts atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // older: starts first, holds a, then wants b
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			olderAttempts.Add(1)
			a.Acquire(tx)
			if tx.Attempt() == 0 {
				close(olderHoldsA)
				<-youngerHoldsB
			}
			b.Acquire(tx)
			return nil
		})
		if err != nil {
			t.Errorf("older: %v", err)
		}
	}()
	go func() { // younger: holds b, then wants a — closes the cycle
		defer wg.Done()
		<-olderHoldsA
		err := sys.Atomic(func(tx *stm.Tx) error {
			youngerAttempts.Add(1)
			b.Acquire(tx)
			if tx.Attempt() == 0 {
				close(youngerHoldsB)
			}
			a.Acquire(tx)
			return nil
		})
		if err != nil {
			t.Errorf("younger: %v", err)
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cycle never resolved")
	}
	if got := olderAttempts.Load(); got != 1 {
		t.Errorf("older attempts = %d, want 1 (the victim must be the youngest)", got)
	}
	if got := youngerAttempts.Load(); got < 2 {
		t.Errorf("younger attempts = %d, want >= 2 (it should have been the victim)", got)
	}
}

// TestDeadlockVictimCauseClassified: a transaction doomed with
// ErrDeadlockVictim aborts with that cause at its next acquisition, and the
// stats classify it as a deadlock abort — including on the readers/writer
// lock, whose failure path used to misreport every failure as a timeout.
func TestDeadlockVictimCauseClassified(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	rw := NewRWOwnerLock()
	blockerDone := make(chan struct{})
	blockerHolds := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			rw.WLock(tx)
			if tx.Attempt() == 0 {
				close(blockerHolds)
				<-blockerDone
			}
			return nil
		})
	}()
	<-blockerHolds
	var sawCause error
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		if attempts == 1 {
			tx.DoomWith(ErrDeadlockVictim)
			tx.OnAbort(func() { sawCause = tx.Cause() })
			rw.RLock(tx) // writer held: must fall into the failure path
			t.Error("unreachable: doomed acquisition returned")
		}
		return nil
	})
	close(blockerDone)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sawCause, ErrDeadlockVictim) {
		t.Fatalf("abort cause = %v, want ErrDeadlockVictim", sawCause)
	}
	if st := sys.Stats(); st.AbortsDeadlock != 1 {
		t.Fatalf("AbortsDeadlock = %d, want 1 (%s)", st.AbortsDeadlock, st.CauseString())
	}
}

// TestStripedRangeContentionPolicies: an ABBA deadlock between two range
// demands on the striped interval manager is resolved quickly by both
// WoundWait and Detect via the system-wide policy (no per-lock plumbing),
// despite a timeout far longer than the test budget.
func TestStripedRangeContentionPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy ContentionPolicy
	}{
		{"wound-wait", WoundWait},
		{"detect", NewDetect()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sys := stm.NewSystem(stm.Config{
				LockTimeout: 30 * time.Second,
				Contention:  tc.policy,
			})
			rl := NewStripedRangeLock[int64]()
			var wg sync.WaitGroup
			start := time.Now()
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					err := sys.Atomic(func(tx *stm.Tx) error {
						lo1, hi1, lo2, hi2 := int64(0), int64(10), int64(1000), int64(1010)
						if i == 1 {
							lo1, hi1, lo2, hi2 = lo2, hi2, lo1, hi1
						}
						rl.LockRange(tx, lo1, hi1)
						time.Sleep(5 * time.Millisecond)
						rl.LockRange(tx, lo2, hi2)
						return nil
					})
					if err != nil {
						t.Errorf("tx %d: %v", i, err)
					}
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatalf("%s failed to resolve the range deadlock", tc.name)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Fatalf("resolution took %v", elapsed)
			}
			if rl.Holdings() != 0 {
				t.Fatalf("holdings leaked: %d", rl.Holdings())
			}
		})
	}
}

// TestOldestNeverWounded is the starvation-freedom regression: the oldest
// live transaction has the globally smallest birth, so under wound-wait no
// waiter can wound it — it commits on its first attempt even while younger
// transactions deadlock and wound each other around it.
func TestOldestNeverWounded(t *testing.T) {
	sys := stm.NewSystem(stm.Config{
		LockTimeout: 10 * time.Second,
		Contention:  WoundWait,
	})
	m := NewLockMap[int]()
	const keys = 4

	oldestStarted := make(chan struct{})
	stormDone := make(chan struct{})
	var oldestAttempts atomic.Int32
	var oldestCause error
	oldestDone := make(chan struct{})
	go func() { // the oldest: starts before the storm, crawls across every key
		defer close(oldestDone)
		err := sys.Atomic(func(tx *stm.Tx) error {
			if n := oldestAttempts.Add(1); n == 1 {
				tx.OnAbort(func() { oldestCause = tx.Cause() })
			}
			if tx.Attempt() == 0 {
				close(oldestStarted)
			}
			for k := 0; k < keys; k++ {
				m.Lock(tx, k)
				time.Sleep(2 * time.Millisecond) // hold while the storm rages
			}
			return nil
		})
		if err != nil {
			t.Errorf("oldest: %v", err)
		}
	}()
	<-oldestStarted
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = sys.Atomic(func(tx *stm.Tx) error {
					// Adversarial orders: even workers ascend, odd descend.
					if g%2 == 0 {
						m.Lock(tx, i%keys)
						m.Lock(tx, (i+1)%keys)
					} else {
						m.Lock(tx, (i+1)%keys)
						m.Lock(tx, i%keys)
					}
					return nil
				})
			}
		}()
	}
	go func() { wg.Wait(); close(stormDone) }()
	select {
	case <-oldestDone:
	case <-time.After(20 * time.Second):
		t.Fatal("oldest transaction starved")
	}
	select {
	case <-stormDone:
	case <-time.After(20 * time.Second):
		t.Fatal("storm did not finish")
	}
	if got := oldestAttempts.Load(); got != 1 {
		t.Fatalf("oldest ran %d attempts (abort cause %v), want 1: it must never be wounded",
			got, oldestCause)
	}
}

// TestAdaptiveTimeoutTracksWaits: with AdaptiveTimeout set, observed lock
// waits shrink the acquisition budget below the configured ceiling, clamped
// above the floor of ceiling/16.
func TestAdaptiveTimeoutTracksWaits(t *testing.T) {
	const ceiling = 800 * time.Millisecond
	sys := stm.NewSystem(stm.Config{LockTimeout: ceiling, AdaptiveTimeout: true})
	if got := sys.LockTimeout(); got != ceiling {
		t.Fatalf("LockTimeout with no observations = %v, want the configured %v", got, ceiling)
	}
	l := NewOwnerLock()
	holderHas := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(holderHas)
			<-release
			return nil
		})
	}()
	<-holderHas
	time.AfterFunc(4*time.Millisecond, func() { close(release) })
	if err := sys.Atomic(func(tx *stm.Tx) error {
		l.Acquire(tx) // blocks ~4ms, feeding the EWMA on grant
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-done
	if sys.WaitEWMA() <= 0 {
		t.Fatal("lock wait was not observed by the EWMA")
	}
	got := sys.LockTimeout()
	if got >= ceiling {
		t.Errorf("adaptive LockTimeout = %v, want below the %v ceiling", got, ceiling)
	}
	if floor := ceiling / 16; got < floor {
		t.Errorf("adaptive LockTimeout = %v, below the %v floor", got, floor)
	}
}
