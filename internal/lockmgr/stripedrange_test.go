package lockmgr

import (
	"errors"
	"testing"
	"time"

	"tboost/internal/stm"
)

// testPartition is a small deterministic partition for non-negative int64
// keys: blocks of 8 consecutive keys dealt over the stripes, so tests can
// place intervals in chosen stripes (key k lives in stripe (k/8) mod S).
func testPartition() Partition[int64] {
	return Partition[int64]{Rank: func(k int64) uint64 { return uint64(k) }, BlockShift: 3}
}

func newStriped8() *StripedRangeLock[int64] {
	return NewStripedRangeLockConfig(8, testPartition())
}

// --- mirrors of the legacy RangeLock semantics tests ---

func TestStripedRangeDisjointIntervalsNoConflict(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	if err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockRange(tx, 11, 20) // disjoint: immediate, even in the same stripe
		return nil
	}); err != nil {
		t.Fatalf("disjoint interval blocked: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Holdings() != 0 {
		t.Fatalf("holdings leaked: %d", r.Holdings())
	}
}

func TestStripedRangeOverlapConflicts(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	r := NewStripedRangeLock[int64]()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	// Ranges and points (the degenerate intervals [10,10], [0,0] take the
	// key fast path and must still collide with the granted interval).
	cases := [][2]int64{{5, 15}, {10, 10}, {0, 0}, {-5, 0}, {-100, 100}}
	for _, c := range cases {
		err := sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, c[0], c[1])
			return nil
		})
		if !errors.Is(err, stm.ErrTooManyRetries) {
			t.Errorf("overlap [%d,%d] did not conflict: %v", c[0], c[1], err)
		}
	}
	close(release)
	<-done
	if r.Holdings() != 0 {
		t.Fatalf("holdings leaked: %d", r.Holdings())
	}
}

func TestStripedRangeReentrantCovered(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 0, 100)
		r.LockRange(tx, 10, 20) // covered: granted from the holdings cache
		r.LockKey(tx, 50)       // covered point: no key lock taken
		if r.Holdings() != 1 {
			t.Errorf("holdings = %d, want 1 (covered demands merge)", r.Holdings())
		}
		if r.KeyLocks() != 0 {
			t.Errorf("covered point installed a key lock")
		}
	})
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked")
	}
}

func TestStripedRangeSameTxOverlappingExtend(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 0, 10)
		r.LockRange(tx, 5, 20) // overlaps own holding: allowed, adds entry
		if r.Holdings() != 2 {
			t.Errorf("holdings = %d, want 2", r.Holdings())
		}
	})
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked after commit")
	}
}

func TestStripedRangeReleasedOnAbort(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		r.LockRange(tx, 0, 10)
		r.LockKey(tx, 200) // a point grant must be released too
		if attempts == 1 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked after abort")
	}
}

func TestStripedRangeSwappedBounds(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 10, 0) // normalized to [0,10]
		if r.Holdings() != 1 {
			t.Errorf("holdings = %d", r.Holdings())
		}
	})
}

func TestStripedRangeWaiterWakesOnRelease(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	r := NewStripedRangeLock[int64]()
	held := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			time.Sleep(30 * time.Millisecond)
			return nil
		})
	}()
	<-held
	start := time.Now()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockRange(tx, 5, 15) // waits ~30ms, then proceeds
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter did not wake promptly on release")
	}
}

// --- striped-specific semantics ---

// holdAndTry grants [aLo, aHi] to a background transaction, then reports
// whether [bLo, bHi] can be acquired while the first grant is held.
func holdAndTry(t *testing.T, r *StripedRangeLock[int64], aLo, aHi, bLo, bHi int64) bool {
	t.Helper()
	sys := stm.NewSystem(stm.Config{LockTimeout: 25 * time.Millisecond, MaxRetries: 1})
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, aLo, aHi)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	granted := sys.Atomic(func(tx *stm.Tx) error {
		r.LockRange(tx, bLo, bHi)
		return nil
	}) == nil
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := r.Holdings(); n != 0 {
		t.Fatalf("holdings leaked: %d", n)
	}
	return granted
}

// TestStripedRangeConflictMatrix pins grant/block decisions across stripe
// boundaries on a deterministic 8-stripe, 8-key-block table: conflicts are
// decided by interval overlap alone — stripe collocation must never create
// a false conflict, and stripe separation must never hide a true one.
func TestStripedRangeConflictMatrix(t *testing.T) {
	cases := []struct {
		name      string
		aLo, aHi  int64
		bLo, bHi  int64
		wantGrant bool
	}{
		{"same-stripe disjoint intervals", 0, 3, 4, 7, true},
		{"same-stripe (cyclic) far-apart blocks", 0, 7, 64, 71, true}, // blocks 0 and 8 both map to stripe 0
		{"adjacent non-overlapping across stripe edge", 0, 7, 8, 15, true},
		{"overlap across stripe boundary", 0, 20, 16, 30, false},
		{"distant disjoint ranges", 0, 10, 40, 50, true},
		{"point inside multi-stripe range", 6, 10, 9, 9, false},
		{"point below range in covered stripe", 6, 10, 5, 5, true},
		{"point above range in covered stripe", 6, 10, 11, 11, true},
		{"range over held point", 9, 9, 6, 10, false},
		{"range missing held point", 5, 5, 6, 10, true},
		{"identical ranges", 16, 23, 16, 23, false},
		{"touching endpoints", 0, 8, 8, 16, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := newStriped8()
			got := holdAndTry(t, r, c.aLo, c.aHi, c.bLo, c.bHi)
			if got != c.wantGrant {
				t.Fatalf("hold [%d,%d], try [%d,%d]: granted = %v, want %v",
					c.aLo, c.aHi, c.bLo, c.bHi, got, c.wantGrant)
			}
		})
	}
}

// TestStripedRangeEscalation covers the whole-table path: a range spanning
// more than S/2 stripes registers everywhere (one decision under all stripe
// mutexes), the escalation is counted, and the conflict predicate stays
// exact — keys outside the interval do not conflict even though their
// stripes carry the registration.
func TestStripedRangeEscalation(t *testing.T) {
	r := newStriped8() // escalateAt = 4 blocks of 8 keys
	sys := stm.NewSystem(stm.Config{LockTimeout: 25 * time.Millisecond, MaxRetries: 1})
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 100) // 13 blocks > 4: escalates
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	if got := r.Escalations(); got != 1 {
		t.Fatalf("escalations = %d, want 1", got)
	}
	if err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockKey(tx, 200)        // outside [0,100]: must not conflict
		r.LockRange(tx, 101, 400) // disjoint range (also escalated): must not conflict
		return nil
	}); err != nil {
		t.Fatalf("disjoint demands blocked by escalated range: %v", err)
	}
	if got := r.Escalations(); got != 2 {
		t.Fatalf("escalations = %d, want 2", got)
	}
	err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockKey(tx, 64) // inside [0,100]: must conflict
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("point inside escalated range did not conflict: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked")
	}
}

// startBlockedWaiter starts a transaction that blocks acquiring [lo, hi] on
// r and returns a channel that closes when it finally commits. The caller
// must have arranged a conflicting holding first; sleep briefly after
// calling to let the waiter reach its wait loop.
func startBlockedWaiter(sys *stm.System, lock func(tx *stm.Tx), done chan error) {
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			lock(tx)
			return nil
		})
	}()
}

// TestStripedRangeNoSpuriousWakeupsAcrossStripes is the thundering-herd
// regression: releases in unrelated stripes must not wake a blocked waiter
// at all, while the legacy single-channel manager wakes it on every release.
func TestStripedRangeNoSpuriousWakeupsAcrossStripes(t *testing.T) {
	const noise = 20

	// Striped: waiter blocked in stripe 0 (keys 0..7); noise in stripe 2
	// (keys 80..87 — block 10). Zero wakeups, zero spurious re-checks.
	r := newStriped8()
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	held := make(chan struct{})
	release := make(chan struct{})
	holder := make(chan error, 1)
	go func() {
		holder <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 7)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	waiter := make(chan error, 1)
	startBlockedWaiter(sys, func(tx *stm.Tx) { r.LockRange(tx, 0, 7) }, waiter)
	time.Sleep(30 * time.Millisecond) // let the waiter block
	for i := 0; i < noise; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 80, 87)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let a woken waiter get scheduled
	}
	if got := r.SpuriousWakeups(); got != 0 {
		t.Errorf("striped: %d spurious wakeups from unrelated-stripe releases, want 0", got)
	}
	close(release)
	if err := <-holder; err != nil {
		t.Fatal(err)
	}
	if err := <-waiter; err != nil {
		t.Fatal(err)
	}

	// Legacy: the identical scenario wakes the waiter on every noise
	// release, and every wakeup re-checks and re-blocks.
	lr := NewRangeLock[int64]()
	lheld := make(chan struct{})
	lrelease := make(chan struct{})
	lholder := make(chan error, 1)
	go func() {
		lholder <- sys.Atomic(func(tx *stm.Tx) error {
			lr.LockRange(tx, 0, 7)
			close(lheld)
			<-lrelease
			return nil
		})
	}()
	<-lheld
	lwaiter := make(chan error, 1)
	startBlockedWaiter(sys, func(tx *stm.Tx) { lr.LockRange(tx, 0, 7) }, lwaiter)
	time.Sleep(30 * time.Millisecond)
	for i := 0; i < noise; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error {
			lr.LockRange(tx, 80, 87)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := lr.SpuriousWakeups(); got < noise/4 {
		t.Errorf("legacy: %d spurious wakeups, expected the broadcast herd (>= %d)", got, noise/4)
	}
	close(lrelease)
	if err := <-lholder; err != nil {
		t.Fatal(err)
	}
	if err := <-lwaiter; err != nil {
		t.Fatal(err)
	}
}

// TestRangeWaitTimerArmedOnce is the timer-hygiene regression for both
// managers: a blocked acquisition arms exactly one timer no matter how many
// wakeup rounds its wait takes (the legacy path used to arm per call but
// leak on the expiry return; re-wait rounds must not re-arm).
func TestRangeWaitTimerArmedOnce(t *testing.T) {
	const noise = 10
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})

	scenario := func(lock func(tx *stm.Tx), noiseOp func(tx *stm.Tx), waitLock func(tx *stm.Tx)) uint64 {
		held := make(chan struct{})
		release := make(chan struct{})
		holder := make(chan error, 1)
		go func() {
			holder <- sys.Atomic(func(tx *stm.Tx) error {
				lock(tx)
				close(held)
				<-release
				return nil
			})
		}()
		<-held
		before := rangeTimerArms.Load()
		waiter := make(chan error, 1)
		startBlockedWaiter(sys, waitLock, waiter)
		time.Sleep(30 * time.Millisecond)
		// Each noise op wakes the waiter (same stripe / same broadcast
		// channel) without clearing its conflict: re-wait rounds happen. The
		// sleep lets the woken waiter get scheduled and re-block between
		// rounds (the test box may have a single CPU).
		for i := 0; i < noise; i++ {
			if err := sys.Atomic(func(tx *stm.Tx) error {
				noiseOp(tx)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		close(release)
		if err := <-holder; err != nil {
			t.Fatal(err)
		}
		if err := <-waiter; err != nil {
			t.Fatal(err)
		}
		return rangeTimerArms.Load() - before
	}

	r := newStriped8()
	// Noise [64,71] is block 8 -> stripe 0, the waiter's stripe: it wakes
	// the waiter every release yet never clears the [0,7] conflict.
	if got := scenario(
		func(tx *stm.Tx) { r.LockRange(tx, 0, 7) },
		func(tx *stm.Tx) { r.LockRange(tx, 64, 71) },
		func(tx *stm.Tx) { r.LockRange(tx, 0, 7) },
	); got != 1 {
		t.Errorf("striped: %d timers armed for one blocked acquisition, want 1", got)
	}
	if r.SpuriousWakeups() == 0 {
		t.Error("striped: same-stripe noise produced no wakeup rounds; timer assertion vacuous")
	}

	lr := NewRangeLock[int64]()
	if got := scenario(
		func(tx *stm.Tx) { lr.LockRange(tx, 0, 7) },
		func(tx *stm.Tx) { lr.LockRange(tx, 100, 110) },
		func(tx *stm.Tx) { lr.LockRange(tx, 0, 7) },
	); got != 1 {
		t.Errorf("legacy: %d timers armed for one blocked acquisition, want 1", got)
	}
}

// TestStripedRangeParallelBranches exercises the shared per-tx holdings
// cache: branches of one parallel transaction demand the same and different
// keys and ranges concurrently, and release must still be exact.
func TestStripedRangeParallelBranches(t *testing.T) {
	sys := newSys()
	r := NewStripedRangeLock[int64]()
	for i := 0; i < 50; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error {
			return tx.Parallel(
				func(tx *stm.Tx) error { r.LockKey(tx, 5); return nil },
				func(tx *stm.Tx) error { r.LockKey(tx, 5); return nil },
				func(tx *stm.Tx) error { r.LockRange(tx, 100, 140); return nil },
				func(tx *stm.Tx) error { r.LockKey(tx, 120); return nil },
			)
		}); err != nil {
			t.Fatal(err)
		}
		if n := r.Holdings(); n != 0 {
			t.Fatalf("iteration %d: holdings leaked: %d", i, n)
		}
	}
}

// TestDefaultPartitionMonotone pins the rank functions: monotone in key
// order for the kinds the striped table relies on.
func TestDefaultPartitionMonotone(t *testing.T) {
	pi := DefaultPartition[int64]()
	ints := []int64{-1 << 62, -100, -1, 0, 1, 63, 64, 100, 1 << 62}
	for i := 1; i < len(ints); i++ {
		if pi.Rank(ints[i-1]) >= pi.Rank(ints[i]) {
			t.Errorf("int64 rank not monotone at %d < %d", ints[i-1], ints[i])
		}
	}
	ps := DefaultPartition[string]()
	strs := []string{"", "a", "ab", "b", "key-0001", "key-0002", "zzzzzzzzz"}
	for i := 1; i < len(strs); i++ {
		if ps.Rank(strs[i-1]) > ps.Rank(strs[i]) {
			t.Errorf("string rank not monotone at %q < %q", strs[i-1], strs[i])
		}
	}
	pf := DefaultPartition[float64]()
	floats := []float64{-1e300, -2.5, -0.0, 1e-300, 2.5, 1e300}
	for i := 1; i < len(floats); i++ {
		if pf.Rank(floats[i-1]) >= pf.Rank(floats[i]) {
			t.Errorf("float64 rank not monotone at %v < %v", floats[i-1], floats[i])
		}
	}
	if DefaultPartition[rune]().Rank == nil { // rune = int32: recognized
		t.Error("rune partition unexpectedly nil")
	}
	type myKey int64
	if DefaultPartition[myKey]().Rank != nil {
		t.Error("defined-type partition should fall back to nil Rank")
	}
	// The nil-Rank fallback still yields a correct single-stripe table.
	r := NewStripedRangeLockConfig(8, DefaultPartition[myKey]())
	if r.Stripes() != 1 {
		t.Errorf("nil-Rank table has %d stripes, want 1", r.Stripes())
	}
	sys := newSys()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 0, 10)
		r.LockKey(tx, 5)
	})
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked on single-stripe fallback")
	}
}
