package lockmgr

import (
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

// The copy-on-write LockMap must keep putIfAbsent semantics under racing
// installs: every goroutine asking for a key gets the same lock instance,
// with reads never blocking on the stripe mutex.

func TestLockMapConcurrentInstallSameLock(t *testing.T) {
	m := NewLockMapStripes[int64](4) // few stripes: force install races
	const gs, keys = 8, 256
	got := make([][]*OwnerLock, gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			locks := make([]*OwnerLock, keys)
			for k := int64(0); k < keys; k++ {
				locks[k] = m.Get(k)
			}
			got[g] = locks
		}()
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for g := 1; g < gs; g++ {
			if got[g][k] != got[0][k] {
				t.Fatalf("key %d: goroutine %d got a different lock", k, g)
			}
		}
	}
	if n := m.Len(); n != keys {
		t.Fatalf("Len = %d, want %d", n, keys)
	}
}

func TestLockMapGetStableAcrossLaterInstalls(t *testing.T) {
	m := NewLockMapStripes[int64](1) // one stripe: every install rewrites it
	first := m.Get(1)
	for k := int64(2); k < 100; k++ {
		m.Get(k)
	}
	if m.Get(1) != first {
		t.Fatal("install of other keys replaced an existing lock")
	}
}

func TestLockMapLegacyReadsSameSemantics(t *testing.T) {
	SetLegacyMapReads(true)
	defer SetLegacyMapReads(false)
	m := NewLockMap[string]()
	a := m.Get("a")
	if m.Get("a") != a {
		t.Fatal("legacy read path returned a different lock")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

// waitOwnedBy (the sibling-branch ownership wait) must wake on the ownership
// change itself rather than burning a poll loop: with a foreign holder
// pinning the lock, one Parallel branch queues in acquireSlow and the other
// in waitOwnedBy; when the foreign transaction releases, both must finish
// promptly — far inside the 2s lock timeout.
func TestWaitOwnedByWakesOnSiblingAcquire(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLock()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		stm.MustAtomicOn(sys, func(ftx *stm.Tx) {
			l.Acquire(ftx)
			close(held)
			<-release
		})
	}()
	<-held
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	start := time.Now()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		branch := func(tx *stm.Tx) error {
			if !l.TryAcquire(tx, time.Second) {
				t.Error("branch failed to acquire")
			}
			return nil
		}
		if err := tx.Parallel(branch, branch); err != nil {
			t.Errorf("Parallel: %v", err)
		}
	})
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("acquisition took %v; ownership waiter is not waking", d)
	}
	<-done
	if l.Locked() {
		t.Fatal("lock not released at commit")
	}
}
