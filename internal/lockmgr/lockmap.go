package lockmgr

import (
	"hash/maphash"
	"sync"

	"tboost/internal/stm"
)

// DefaultStripes is the stripe count used by NewLockMap.
const DefaultStripes = 64

// LockMap associates an abstract OwnerLock with each key on demand — the
// paper's LockKey class. It is a striped concurrent hash map with
// putIfAbsent semantics: the first transaction to touch a key installs its
// lock; locks are never removed (matching the paper's implementation on
// ConcurrentHashMap).
//
// Key-based locking may serialize some commuting calls (two add(x) calls
// when x is present), but as the paper notes it provides enough concurrency
// for practical workloads while remaining cheap to evaluate.
type LockMap[K comparable] struct {
	seed    maphash.Seed
	stripes []lockStripe[K]
	policy  Policy
}

type lockStripe[K comparable] struct {
	mu    sync.Mutex
	locks map[K]*OwnerLock
	_     [40]byte // pad to reduce false sharing between stripes
}

// NewLockMap returns a LockMap with DefaultStripes stripes.
func NewLockMap[K comparable]() *LockMap[K] {
	return NewLockMapStripes[K](DefaultStripes)
}

// NewLockMapStripes returns a LockMap with n stripes (minimum 1). Stripe
// count is an engineering knob: the ablation benchmarks sweep it.
func NewLockMapStripes[K comparable](n int) *LockMap[K] {
	return NewLockMapPolicy[K](n, TimeoutOnly)
}

// NewLockMapPolicy returns a LockMap whose per-key locks use the given
// deadlock-handling policy.
func NewLockMapPolicy[K comparable](n int, p Policy) *LockMap[K] {
	if n < 1 {
		n = 1
	}
	m := &LockMap[K]{
		seed:    maphash.MakeSeed(),
		stripes: make([]lockStripe[K], n),
		policy:  p,
	}
	for i := range m.stripes {
		m.stripes[i].locks = make(map[K]*OwnerLock)
	}
	return m
}

func (m *LockMap[K]) stripe(key K) *lockStripe[K] {
	h := maphash.Comparable(m.seed, key)
	return &m.stripes[h%uint64(len(m.stripes))]
}

// Get returns the abstract lock for key, creating it if absent.
func (m *LockMap[K]) Get(key K) *OwnerLock {
	s := m.stripe(key)
	s.mu.Lock()
	l, ok := s.locks[key]
	if !ok {
		l = NewOwnerLockPolicy(m.policy)
		s.locks[key] = l
	}
	s.mu.Unlock()
	return l
}

// Lock acquires the abstract lock for key on behalf of tx, creating the lock
// if needed, using the system's default timeout and aborting tx on expiry.
// This is the single call the boosted skip list makes before every add,
// remove, or contains.
func (m *LockMap[K]) Lock(tx *stm.Tx, key K) {
	m.Get(key).Acquire(tx)
}

// Len reports how many distinct keys have locks installed.
func (m *LockMap[K]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		n += len(s.locks)
		s.mu.Unlock()
	}
	return n
}

// Stripes reports the stripe count.
func (m *LockMap[K]) Stripes() int { return len(m.stripes) }
