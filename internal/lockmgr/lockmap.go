package lockmgr

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"tboost/internal/stm"
)

// DefaultStripes is the stripe count used by NewLockMap.
const DefaultStripes = 64

// legacyMapReads forces LockMap.Get back onto the mutex-guarded read path.
// It exists so the benchmark harness can measure the lock-free read path
// against the pre-optimization behaviour in the same run; see
// SetLegacyMapReads. Never enabled in production use.
var legacyMapReads atomic.Bool

// SetLegacyMapReads toggles the benchmark-only mutex-guarded LockMap read
// path. It is not meant to be flipped while transactions are running: the
// knob selects which Get implementation the whole process uses.
func SetLegacyMapReads(on bool) { legacyMapReads.Store(on) }

// LockMap associates an abstract OwnerLock with each key on demand — the
// paper's LockKey class. It is a striped concurrent hash map with
// putIfAbsent semantics: the first transaction to touch a key installs its
// lock; locks are never removed (matching the paper's implementation on
// ConcurrentHashMap).
//
// The steady state of a boosted workload is Get on keys whose locks are
// already installed, so that path is lock-free: each stripe publishes an
// immutable map through an atomic pointer, and readers only dereference it.
// Installing a missing lock copies the stripe's map and swaps the pointer
// under the stripe mutex — linear per install, but each key pays it once.
//
// Key-based locking may serialize some commuting calls (two add(x) calls
// when x is present), but as the paper notes it provides enough concurrency
// for practical workloads while remaining cheap to evaluate.
type LockMap[K comparable] struct {
	seed    maphash.Seed
	stripes []lockStripe[K]
	policy  ContentionPolicy // nil: per-key locks consult the waiter's System
	meter   *ContentionMeter // nil: no contention accounting; inherited by every installed lock
}

type lockStripe[K comparable] struct {
	cur atomic.Pointer[map[K]*OwnerLock] // immutable snapshot; swapped on install
	mu  sync.Mutex                       // serializes installs
	_   [48]byte                         // pad to reduce false sharing between stripes
}

// NewLockMap returns a LockMap with DefaultStripes stripes.
func NewLockMap[K comparable]() *LockMap[K] {
	return NewLockMapStripes[K](DefaultStripes)
}

// NewLockMapStripes returns a LockMap with n stripes (minimum 1). Stripe
// count is an engineering knob: the ablation benchmarks sweep it. Blocked
// acquisitions consult the waiting transaction's system-wide contention
// policy.
func NewLockMapStripes[K comparable](n int) *LockMap[K] {
	return NewLockMapPolicy[K](n, nil)
}

// NewLockMapPolicy returns a LockMap whose per-key locks use the given
// contention policy, overriding the system-wide choice (nil is
// NewLockMapStripes).
func NewLockMapPolicy[K comparable](n int, p ContentionPolicy) *LockMap[K] {
	if n < 1 {
		n = 1
	}
	m := &LockMap[K]{
		seed:    maphash.MakeSeed(),
		stripes: make([]lockStripe[K], n),
		policy:  p,
	}
	empty := make(map[K]*OwnerLock)
	for i := range m.stripes {
		m.stripes[i].cur.Store(&empty) // shared: snapshots are never mutated
	}
	return m
}

// SetMeter attaches a contention meter to the table: every lock already
// installed and every lock installed afterwards feeds it, so the meter
// aggregates the whole table's blocked-path activity. Configuration-time
// only, before the table is shared (the adaptive engine calls it at
// construction); the install path reads the field unsynchronized on that
// contract.
func (m *LockMap[K]) SetMeter(cm *ContentionMeter) {
	m.meter = cm
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		for _, l := range *s.cur.Load() {
			l.SetMeter(cm)
		}
		s.mu.Unlock()
	}
}

func (m *LockMap[K]) stripe(key K) *lockStripe[K] {
	h := maphash.Comparable(m.seed, key)
	return &m.stripes[h%uint64(len(m.stripes))]
}

// Get returns the abstract lock for key, creating it if absent. The hit
// path — every access after a key's first — takes no locks.
func (m *LockMap[K]) Get(key K) *OwnerLock {
	s := m.stripe(key)
	if legacyMapReads.Load() {
		s.mu.Lock()
		l, ok := (*s.cur.Load())[key]
		s.mu.Unlock()
		if ok {
			return l
		}
	} else if l, ok := (*s.cur.Load())[key]; ok {
		return l
	}
	return s.install(key, m.policy, m.meter)
}

// install publishes a lock for a key not present in the stripe's snapshot:
// copy-on-write under the stripe mutex, rechecking after locking because a
// racing installer may have won.
func (s *lockStripe[K]) install(key K, p Policy, cm *ContentionMeter) *OwnerLock {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.cur.Load()
	if l, ok := old[key]; ok {
		return l
	}
	next := make(map[K]*OwnerLock, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	l := NewOwnerLockPolicy(p)
	if cm != nil {
		l.SetMeter(cm)
	}
	next[key] = l
	s.cur.Store(&next)
	return l
}

// Lock acquires the abstract lock for key on behalf of tx, creating the lock
// if needed, using the system's default timeout and aborting tx on expiry.
// This is the single call the boosted skip list makes before every add,
// remove, or contains.
func (m *LockMap[K]) Lock(tx *stm.Tx, key K) {
	m.Get(key).Acquire(tx)
}

// Len reports how many distinct keys have locks installed.
func (m *LockMap[K]) Len() int {
	n := 0
	for i := range m.stripes {
		n += len(*m.stripes[i].cur.Load())
	}
	return n
}

// Stripes reports the stripe count.
func (m *LockMap[K]) Stripes() int { return len(m.stripes) }
