package lockmgr

import (
	"errors"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestRangeLockDisjointIntervalsNoConflict(t *testing.T) {
	sys := newSys()
	r := NewRangeLock[int64]()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	if err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockRange(tx, 11, 20) // disjoint: immediate
		return nil
	}); err != nil {
		t.Fatalf("disjoint interval blocked: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if r.Holdings() != 0 {
		t.Fatalf("holdings leaked: %d", r.Holdings())
	}
}

func TestRangeLockOverlapConflicts(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	r := NewRangeLock[int64]()
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	cases := [][2]int64{{5, 15}, {10, 10}, {0, 0}, {-5, 0}, {-100, 100}}
	for _, c := range cases {
		err := sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, c[0], c[1])
			return nil
		})
		if !errors.Is(err, stm.ErrTooManyRetries) {
			t.Errorf("overlap [%d,%d] did not conflict: %v", c[0], c[1], err)
		}
	}
	close(release)
	<-done
}

func TestRangeLockReentrantCovered(t *testing.T) {
	sys := newSys()
	r := NewRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 0, 100)
		r.LockRange(tx, 10, 20) // covered: immediate, no new holding
		r.LockKey(tx, 50)
		if r.Holdings() != 1 {
			t.Errorf("holdings = %d, want 1 (covered intervals merge)", r.Holdings())
		}
	})
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked")
	}
}

func TestRangeLockSameTxOverlappingExtend(t *testing.T) {
	sys := newSys()
	r := NewRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 0, 10)
		r.LockRange(tx, 5, 20) // overlaps own holding: allowed, adds entry
		if r.Holdings() != 2 {
			t.Errorf("holdings = %d, want 2", r.Holdings())
		}
	})
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked after commit")
	}
}

func TestRangeLockReleasedOnAbort(t *testing.T) {
	sys := newSys()
	r := NewRangeLock[int64]()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		r.LockRange(tx, 0, 10)
		if attempts == 1 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d", attempts)
	}
	if r.Holdings() != 0 {
		t.Fatal("holdings leaked after abort")
	}
}

func TestRangeLockSwappedBounds(t *testing.T) {
	sys := newSys()
	r := NewRangeLock[int64]()
	run(t, sys, func(tx *stm.Tx) {
		r.LockRange(tx, 10, 0) // normalized to [0,10]
		if r.Holdings() != 1 {
			t.Errorf("holdings = %d", r.Holdings())
		}
	})
}

func TestRangeLockWaiterWakesOnRelease(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	r := NewRangeLock[int64]()
	held := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			r.LockRange(tx, 0, 10)
			close(held)
			time.Sleep(30 * time.Millisecond)
			return nil
		})
	}()
	<-held
	start := time.Now()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		r.LockRange(tx, 5, 15) // waits ~30ms, then proceeds
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter did not wake promptly on release")
	}
}
