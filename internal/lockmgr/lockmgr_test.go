package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

// run executes fn inside a transaction on a fresh system with a short lock
// timeout, failing the test on unexpected errors.
func run(t *testing.T, sys *stm.System, fn func(tx *stm.Tx)) {
	t.Helper()
	if err := sys.Atomic(func(tx *stm.Tx) error { fn(tx); return nil }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
}

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond})
}

func TestOwnerLockBasicAcquireRelease(t *testing.T) {
	sys := newSys()
	l := NewOwnerLock()
	run(t, sys, func(tx *stm.Tx) {
		l.Acquire(tx)
		if !l.HeldBy(tx) {
			t.Error("HeldBy = false after Acquire")
		}
		if !l.Locked() {
			t.Error("Locked = false after Acquire")
		}
	})
	if l.Locked() {
		t.Fatal("lock still held after commit (two-phase release failed)")
	}
}

func TestOwnerLockReleasedOnAbort(t *testing.T) {
	sys := newSys()
	l := NewOwnerLock()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		l.Acquire(tx)
		if attempts == 1 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (retry must reacquire released lock)", attempts)
	}
	if l.Locked() {
		t.Fatal("lock leaked after abort")
	}
}

func TestOwnerLockReentrant(t *testing.T) {
	sys := newSys()
	l := NewOwnerLock()
	run(t, sys, func(tx *stm.Tx) {
		l.Acquire(tx)
		l.Acquire(tx) // must not deadlock
		if tx.LockCount() != 1 {
			t.Errorf("LockCount = %d, want 1", tx.LockCount())
		}
	})
	if l.Locked() {
		t.Fatal("lock leaked")
	}
}

func TestOwnerLockMutualExclusion(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	l := NewOwnerLock()
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					l.Acquire(tx)
					n := inside.Add(1)
					for {
						m := maxInside.Load()
						if n <= m || maxInside.CompareAndSwap(m, n) {
							break
						}
					}
					inside.Add(-1)
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxInside.Load() != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside.Load())
	}
}

func TestOwnerLockTimeoutAbortsAndRetries(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Millisecond, MaxRetries: 2})
	l := NewOwnerLock()

	// A foreign transaction holds the lock for the whole test.
	holderStarted := make(chan struct{})
	holderRelease := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(holderStarted)
			<-holderRelease
			return nil
		})
	}()
	<-holderStarted

	err := sys.Atomic(func(tx *stm.Tx) error {
		l.Acquire(tx) // must time out and abort
		return nil
	})
	close(holderRelease)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if st := sys.Stats(); st.LockTimeouts < 2 {
		t.Fatalf("LockTimeouts = %d, want >= 2", st.LockTimeouts)
	}
}

func TestOwnerLockTryAcquireFalseLeavesNoRegistration(t *testing.T) {
	sys := newSys()
	l := NewOwnerLock()
	blocked := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(blocked)
			<-release
			return nil
		})
	}()
	<-blocked
	run(t, sys, func(tx *stm.Tx) {
		if l.TryAcquire(tx, time.Millisecond) {
			t.Error("TryAcquire succeeded against a held lock")
		}
		if tx.Holds(l) {
			t.Error("failed TryAcquire left the lock registered")
		}
	})
	close(release)
}

func TestOwnerLockDeadlockRecoversByTimeout(t *testing.T) {
	// Classic ABBA deadlock: both transactions must eventually commit
	// because timed acquisition aborts one of them (the paper's recovery
	// story for two-phase locking).
	sys := stm.NewSystem(stm.Config{LockTimeout: 3 * time.Millisecond})
	a, b := NewOwnerLock(), NewOwnerLock()
	var wg sync.WaitGroup
	var commits atomic.Int32
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = sys.Atomic(func(tx *stm.Tx) error {
			a.Acquire(tx)
			time.Sleep(time.Millisecond)
			b.Acquire(tx)
			commits.Add(1)
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		_ = sys.Atomic(func(tx *stm.Tx) error {
			b.Acquire(tx)
			time.Sleep(time.Millisecond)
			a.Acquire(tx)
			commits.Add(1)
			return nil
		})
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock was not recovered by lock timeouts")
	}
	if commits.Load() != 2 {
		t.Fatalf("commits = %d, want 2", commits.Load())
	}
}

func TestOwnerLockString(t *testing.T) {
	sys := newSys()
	l := NewOwnerLock()
	if s := l.String(); s != "OwnerLock(free)" {
		t.Fatalf("String = %q", s)
	}
	run(t, sys, func(tx *stm.Tx) {
		l.Acquire(tx)
		if s := l.String(); s == "OwnerLock(free)" {
			t.Error("String reports free while held")
		}
	})
}

func TestUninitializedLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-value OwnerLock did not panic")
		}
	}()
	var l OwnerLock
	l.Unlock(nil) // Locked/HeldBy are lock-free reads now; Unlock still guards
}

// --- RWOwnerLock ---

func TestRWSharedReaders(t *testing.T) {
	sys := newSys()
	l := NewRWOwnerLock()
	// Two concurrent transactions both hold read mode at once.
	t1in, t2in := make(chan struct{}), make(chan struct{})
	proceed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		run(t, sys, func(tx *stm.Tx) {
			l.RLock(tx)
			close(t1in)
			<-proceed
		})
	}()
	go func() {
		defer wg.Done()
		run(t, sys, func(tx *stm.Tx) {
			l.RLock(tx)
			close(t2in)
			<-proceed
		})
	}()
	<-t1in
	<-t2in
	if n := l.Readers(); n != 2 {
		t.Errorf("Readers = %d, want 2", n)
	}
	close(proceed)
	wg.Wait()
	if l.Readers() != 0 {
		t.Fatal("readers leaked")
	}
}

func TestRWWriterExcludesReaders(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Millisecond, MaxRetries: 1})
	l := NewRWOwnerLock()
	wHeld := make(chan struct{})
	wRelease := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.WLock(tx)
			close(wHeld)
			<-wRelease
			return nil
		})
	}()
	<-wHeld
	err := sys.Atomic(func(tx *stm.Tx) error {
		l.RLock(tx)
		return nil
	})
	close(wRelease)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("reader against writer: err = %v, want timeout abort", err)
	}
}

func TestRWReaderExcludesWriter(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Millisecond, MaxRetries: 1})
	l := NewRWOwnerLock()
	rHeld := make(chan struct{})
	rRelease := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			l.RLock(tx)
			close(rHeld)
			<-rRelease
			return nil
		})
	}()
	<-rHeld
	err := sys.Atomic(func(tx *stm.Tx) error {
		l.WLock(tx)
		return nil
	})
	close(rRelease)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("writer against reader: err = %v, want timeout abort", err)
	}
}

func TestRWUpgradeSoleReader(t *testing.T) {
	sys := newSys()
	l := NewRWOwnerLock()
	run(t, sys, func(tx *stm.Tx) {
		l.RLock(tx)
		l.WLock(tx) // sole reader upgrades in place
		if !l.WriteHeldBy(tx) {
			t.Error("upgrade failed")
		}
		if l.ReadHeldBy(tx) {
			t.Error("still counted as reader after upgrade")
		}
		if tx.LockCount() != 1 {
			t.Errorf("LockCount = %d, want 1 (same lock object)", tx.LockCount())
		}
	})
	if l.Readers() != 0 {
		t.Fatal("reader leaked after upgrade+commit")
	}
}

func TestRWWriteModeSubsumesRead(t *testing.T) {
	sys := newSys()
	l := NewRWOwnerLock()
	run(t, sys, func(tx *stm.Tx) {
		l.WLock(tx)
		l.RLock(tx) // must not deadlock or downgrade
		if !l.WriteHeldBy(tx) {
			t.Error("write mode lost after RLock")
		}
	})
}

func TestRWReentrantReads(t *testing.T) {
	sys := newSys()
	l := NewRWOwnerLock()
	run(t, sys, func(tx *stm.Tx) {
		l.RLock(tx)
		l.RLock(tx)
		if l.Readers() != 1 {
			t.Errorf("Readers = %d, want 1", l.Readers())
		}
	})
	if l.Readers() != 0 {
		t.Fatal("reader leaked")
	}
}

func TestRWReleasedOnAbort(t *testing.T) {
	sys := newSys()
	l := NewRWOwnerLock()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		l.WLock(tx)
		if attempts == 1 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Readers() != 0 {
		t.Fatal("lock leaked after abort")
	}
	run(t, sys, func(tx *stm.Tx) { l.WLock(tx) }) // must be acquirable
}

func TestRWConcurrentStress(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	l := NewRWOwnerLock()
	var readers, writers atomic.Int32
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = sys.Atomic(func(tx *stm.Tx) error {
					if (g+i)%4 == 0 {
						l.WLock(tx)
						writers.Add(1)
						if readers.Load() != 0 || writers.Load() != 1 {
							select {
							case fail <- "writer overlapped with others":
							default:
							}
						}
						writers.Add(-1)
					} else {
						l.RLock(tx)
						readers.Add(1)
						if writers.Load() != 0 {
							select {
							case fail <- "reader overlapped with writer":
							default:
							}
						}
						readers.Add(-1)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
}

// --- LockMap ---

func TestLockMapSameKeySameLock(t *testing.T) {
	m := NewLockMap[int]()
	if m.Get(7) != m.Get(7) {
		t.Fatal("same key produced different locks")
	}
	if m.Get(7) == m.Get(8) {
		t.Fatal("different keys produced the same lock")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestLockMapLockConflictsOnlyOnSameKey(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Millisecond, MaxRetries: 1})
	m := NewLockMap[int]()

	held := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_ = sys.Atomic(func(tx *stm.Tx) error {
			m.Lock(tx, 1)
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// Different key: proceeds immediately.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		m.Lock(tx, 2)
		return nil
	}); err != nil {
		t.Fatalf("disjoint key blocked: %v", err)
	}

	// Same key: must time out.
	err := sys.Atomic(func(tx *stm.Tx) error {
		m.Lock(tx, 1)
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("same-key lock: err = %v, want timeout abort", err)
	}
}

func TestLockMapConcurrentGetRace(t *testing.T) {
	m := NewLockMapStripes[int](4)
	const goroutines = 16
	locks := make([]*OwnerLock, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			locks[g] = m.Get(42)
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if locks[g] != locks[0] {
			t.Fatal("racing Gets for one key returned different locks")
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestLockMapStripesClamped(t *testing.T) {
	m := NewLockMapStripes[string](0)
	if m.Stripes() != 1 {
		t.Fatalf("Stripes = %d, want 1", m.Stripes())
	}
	m.Get("x")
	if m.Len() != 1 {
		t.Fatal("single-stripe map broken")
	}
}

func TestLockMapManyKeysManyGoroutines(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	m := NewLockMap[int]()
	var wg sync.WaitGroup
	counters := make([]int, 32)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g*7 + i) % len(counters)
				err := sys.Atomic(func(tx *stm.Tx) error {
					m.Lock(tx, k)
					counters[k]++ // protected by the abstract lock
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 8*200 {
		t.Fatalf("total increments = %d, want %d (lost update => broken exclusion)", total, 8*200)
	}
}
