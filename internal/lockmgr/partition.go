package lockmgr

import (
	"cmp"
	"math"
)

// Partition maps an ordered key space onto the stripes of a
// StripedRangeLock. Rank must be monotone: a <= b implies
// Rank(a) <= Rank(b) (equal ranks for distinct keys are fine — they only
// collocate keys in a stripe, never mis-order them). Keys are grouped into
// blocks of 2^BlockShift consecutive rank units, and blocks are dealt
// cyclically across the stripes, so both a concentrated key space (keys
// 0..4095) and a spread-out one hit every stripe. A range [lo, hi] covers
// the cyclic window of stripes its blocks map to; a window wider than half
// the table escalates to a whole-table demand.
type Partition[K cmp.Ordered] struct {
	// Rank is the monotone key-to-rank function. A nil Rank makes the
	// table fall back to a single stripe: correct for any ordered type,
	// concurrent for none.
	Rank func(K) uint64
	// BlockShift is log2 of the block width in rank units.
	BlockShift uint
}

// signFlip converts two's-complement order to unsigned order.
const signFlip = uint64(1) << 63

// DefaultPartition returns the built-in partition for K: a range-shift rank
// for the integer kinds (blocks of 64 consecutive integers), a sign-corrected
// bit rank for floats, and a big-endian prefix rank over the first bytes for
// strings. Ordered types it does not recognize (defined types, in
// particular) get a nil Rank, which NewStripedRangeLockConfig turns into a
// single-stripe table — correct, but without stripe parallelism.
func DefaultPartition[K cmp.Ordered]() Partition[K] {
	var zero K
	const intShift = 6     // 64 consecutive integers per block
	const floatShift = 48  // exponent-band blocks; real float workloads plug their own
	const stringShift = 56 // first byte selects the block
	switch any(zero).(type) {
	case int:
		return part[K](func(k int) uint64 { return uint64(int64(k)) ^ signFlip }, intShift)
	case int8:
		return part[K](func(k int8) uint64 { return uint64(int64(k)) ^ signFlip }, 0)
	case int16:
		return part[K](func(k int16) uint64 { return uint64(int64(k)) ^ signFlip }, intShift)
	case int32:
		return part[K](func(k int32) uint64 { return uint64(int64(k)) ^ signFlip }, intShift)
	case int64:
		return part[K](func(k int64) uint64 { return uint64(k) ^ signFlip }, intShift)
	case uint:
		return part[K](func(k uint) uint64 { return uint64(k) }, intShift)
	case uint8:
		return part[K](func(k uint8) uint64 { return uint64(k) }, 0)
	case uint16:
		return part[K](func(k uint16) uint64 { return uint64(k) }, intShift)
	case uint32:
		return part[K](func(k uint32) uint64 { return uint64(k) }, intShift)
	case uint64:
		return part[K](func(k uint64) uint64 { return k }, intShift)
	case uintptr:
		return part[K](func(k uintptr) uint64 { return uint64(k) }, intShift)
	case float32:
		return part[K](func(k float32) uint64 { return floatRank(float64(k)) }, floatShift)
	case float64:
		return part[K](floatRank, floatShift)
	case string:
		return part[K](stringRank, stringShift)
	default:
		return Partition[K]{}
	}
}

// part adapts a concrete rank function to the generic Partition. The type
// assertion is exact — f's dynamic type is func(K) uint64 whenever the
// type-switch case matched K — so keys are never boxed per operation.
func part[K cmp.Ordered](f any, shift uint) Partition[K] {
	return Partition[K]{Rank: f.(func(K) uint64), BlockShift: shift}
}

// floatRank is the standard total-order transform on IEEE 754 bits:
// negative values have their bits inverted, non-negative values get the sign
// bit set, making unsigned rank order match numeric order (with -0 < +0,
// which is harmless for interval conflict detection).
func floatRank(f float64) uint64 {
	b := math.Float64bits(f)
	if b&signFlip != 0 {
		return ^b
	}
	return b | signFlip
}

// stringRank packs the first eight bytes big-endian: lexicographic order on
// strings maps to unsigned order on ranks, with strings sharing an 8-byte
// prefix collocated (monotone, not injective — which Partition permits).
func stringRank(s string) uint64 {
	var r uint64
	for i := 0; i < 8; i++ {
		r <<= 8
		if i < len(s) {
			r |= uint64(s[i])
		}
	}
	return r
}
