package lockmgr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

// TestReaderNeverWounded pins the read-only exemption in wound-wait: an
// older writer that conflicts with a younger read-only lock holder (a
// fallback-path reader — snapshot readers hold no locks at all) must wait,
// not wound. Without the exemption this is exactly the
// TestWoundWaitOlderWoundsYounger scenario and the reader would be doomed
// and forced through a second attempt.
func TestReaderNeverWounded(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLockPolicy(WoundWait)

	// Activate versioning before any writer is in flight: the FIRST
	// read-only transaction on a system waits out an activation grace
	// period for every running transaction, and the writer below blocks
	// mid-transaction on the reader starting — a circular wait if the
	// reader's entry were also the activating one.
	if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}

	// The OLDER transaction (the writer) starts first but acquires the
	// lock second; the younger read-only transaction holds it.
	writerStarted := make(chan struct{})
	readerHolds := make(chan struct{})
	var readerAttempts atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // older writer
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			if tx.Attempt() == 0 {
				close(writerStarted)
				<-readerHolds
			}
			l.Acquire(tx) // would wound the younger holder, were it not read-only
			return nil
		})
		if err != nil {
			t.Errorf("writer: %v", err)
		}
	}()
	go func() { // younger read-only holder: grabs the lock, dawdles toward commit
		defer wg.Done()
		<-writerStarted
		err := sys.AtomicRO(func(tx *stm.Tx) error {
			readerAttempts.Add(1)
			l.Acquire(tx)
			if tx.Attempt() == 0 {
				close(readerHolds)
				time.Sleep(50 * time.Millisecond)
			}
			return nil
		})
		if err != nil {
			t.Errorf("reader: %v", err)
		}
	}()
	wg.Wait()
	if n := readerAttempts.Load(); n != 1 {
		t.Fatalf("read-only holder was wounded and retried (attempts=%d)", n)
	}
	st := sys.Stats()
	if st.WoundsIssued != 0 {
		t.Fatalf("wounds issued against a read-only holder: %d", st.WoundsIssued)
	}
	if st.ROAborts != 0 {
		t.Fatalf("read-only transaction aborted: %d", st.ROAborts)
	}
	if l.Locked() {
		t.Fatal("lock leaked")
	}
}

// TestDetectVictimSkipsReader pins the Detect policy's victim selection: in
// a wait-for cycle containing a writer and a (younger) read-only
// transaction, the writer is sacrificed even though the reader is the
// youngest member. A cycle of nothing but readers still picks a victim —
// the youngest — so fallback-path reader deadlocks are broken.
func TestDetectVictimSkipsReader(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	// Pre-activate versioning: see TestReaderNeverWounded.
	if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	defer close(done)

	capture := func(ro bool) *stm.Tx {
		ready := make(chan *stm.Tx, 1)
		body := func(tx *stm.Tx) error {
			ready <- tx
			<-done
			return nil
		}
		if ro {
			go sys.AtomicRO(body)
		} else {
			go sys.Atomic(body)
		}
		return <-ready
	}

	// The writer starts first, so the reader is younger (larger birth) —
	// the youngest-victim rule alone would pick the reader.
	writer := capture(false)
	reader := capture(true)

	g := waitForGraph{edges: make(map[uint64]waitEdge)}
	if v := g.observe(writer, reader); v != nil {
		t.Fatalf("no cycle yet, got victim %d", v.ID())
	}
	if v := g.observe(reader, writer); v != writer {
		t.Fatalf("victim should be the writer, not the younger reader")
	}

	// An all-reader cycle must still be broken: youngest member loses.
	ro1 := capture(true)
	ro2 := capture(true)
	g2 := waitForGraph{edges: make(map[uint64]waitEdge)}
	if v := g2.observe(ro1, ro2); v != nil {
		t.Fatalf("no cycle yet, got victim %d", v.ID())
	}
	if v := g2.observe(ro2, ro1); v != ro2 {
		t.Fatalf("all-reader cycle should doom the youngest reader")
	}
}
