// Package lockmgr implements the abstract locks of transactional boosting:
// two-phase locks owned by transactions rather than goroutines, acquired with
// a timeout (timeout -> abort is how the paper's two-phase locking recovers
// from deadlock), and released by the runtime only when the owning
// transaction commits or finishes aborting.
//
// Three flavours are provided:
//
//   - OwnerLock: an exclusive abstract lock (one per boosted object for
//     coarse-grained boosting, as in the paper's red-black tree).
//   - RWOwnerLock: a readers/writer abstract lock (the paper's heap uses it
//     to run add() calls, which commute with each other, in shared mode and
//     removeMin() in exclusive mode).
//   - LockMap: a striped map from key to OwnerLock implementing the paper's
//     LockKey class — the lock-per-key discipline of the boosted skip list.
package lockmgr

import (
	"errors"
	"fmt"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// ErrTimeout is the cause used to abort a transaction whose timed lock
// acquisition expired.
var ErrTimeout = errors.New("lockmgr: abstract lock acquisition timed out")

// ErrWounded is the cause used to abort a transaction that an older
// transaction wounded while it was waiting for a lock.
var ErrWounded = errors.New("lockmgr: wounded by an older transaction")

func init() {
	stm.RegisterAbortKind(ErrTimeout, stm.KindLockTimeout)
	stm.RegisterAbortKind(ErrWounded, stm.KindWounded)
}

// abortAcquireFailure aborts tx after a failed timed acquisition, choosing
// the cause that explains the failure: the doom's recorded cause (a wound or
// a deadlock-victim selection — ErrWounded when the doomer left no cause),
// the caller's cancelled context, or a plain timeout. It never returns.
func abortAcquireFailure(tx *stm.Tx) {
	if tx.Doomed() {
		if cause := tx.Cause(); cause != nil {
			tx.Abort(cause)
		}
		tx.Abort(ErrWounded)
	}
	if err := tx.Context().Err(); err != nil {
		tx.Abort(err)
	}
	tx.System().CountLockTimeout()
	tx.Abort(ErrTimeout)
}

// OwnerLock is an exclusive two-phase lock owned by a transaction. The zero
// value is an unlocked lock ready for use. Acquisition is reentrant per
// transaction; release happens automatically when the owning transaction
// commits or aborts (the runtime calls Unlock via stm.Unlocker).
type OwnerLock struct {
	mu     chanMutex
	owner  *stm.Tx
	gen    chan struct{}    // closed on each release to wake all waiters
	ownGen chan struct{}    // closed on each ownership/registration change (waitOwnedBy)
	policy ContentionPolicy // nil: consult the waiter's System (see effectivePolicy)
	meter  *ContentionMeter // nil: no contention accounting (see meter.go)
}

// chanMutex is a tiny non-blocking-friendly mutex built on a 1-buffered
// channel. Using a channel (rather than sync.Mutex) keeps the critical
// sections explicit and lets the wait loop release/reacquire around selects.
type chanMutex struct{ ch chan struct{} }

func (m *chanMutex) lock() {
	if m.ch == nil {
		// Lazily initialized via sync-free fast path is racy; callers
		// must Init first. Locks created by constructors are initialized.
		panic("lockmgr: lock used before initialization; use NewOwnerLock or LockMap")
	}
	m.ch <- struct{}{}
}

func (m *chanMutex) unlock() { <-m.ch }

// NewOwnerLock returns a fresh exclusive abstract lock. Blocked acquisitions
// consult the contention policy of the waiting transaction's System
// (stm.Config.Contention; timed acquisition alone when unset).
func NewOwnerLock() *OwnerLock {
	return NewOwnerLockPolicy(nil)
}

// NewOwnerLockPolicy returns a fresh exclusive abstract lock with an explicit
// contention policy that overrides the system-wide choice (pass Timeout,
// WoundWait, or a NewDetect instance). A nil policy is NewOwnerLock.
func NewOwnerLockPolicy(p ContentionPolicy) *OwnerLock {
	return &OwnerLock{mu: chanMutex{ch: make(chan struct{}, 1)}, policy: p}
}

// SetMeter attaches a contention meter to the lock. Configuration-time only
// (before the lock is contended for); the slow path reads the field without
// synchronization, which is safe exactly because the field is set before the
// lock is shared. The uncontended acquisition path never touches the meter.
func (l *OwnerLock) SetMeter(m *ContentionMeter) { l.meter = m }

// TryAcquire attempts to acquire the lock for tx, waiting up to timeout.
// It returns true on success (including when tx already holds the lock).
// On success the lock is registered with tx for automatic two-phase release.
func (l *OwnerLock) TryAcquire(tx *stm.Tx, timeout time.Duration) bool {
	if !tx.RegisterLock(l) {
		// Already registered by this transaction. For a single-goroutine
		// transaction that settles it: the goroutine now here completed the
		// registering acquisition (or unwound it, removing the registration)
		// before issuing this call, so reentrancy is decided without touching
		// the lock. Inside stm.Parallel another branch may have registered it
		// and still be acquiring: check ownership and wait for it to land.
		if !tx.Shared() || l.HeldBy(tx) {
			return true
		}
		return l.waitOwnedBy(tx, timeout)
	}
	// Failpoint between registration and acquisition: a forced Timeout
	// exercises the registered-but-never-acquired cleanup; a forced Doom
	// simulates being wounded while about to wait.
	switch faultpoint.Hit(faultpoint.LockRegistered) {
	case faultpoint.Timeout:
		tx.UnregisterLock(l)
		l.wakeOwnershipWaiters()
		return false
	case faultpoint.Doom:
		tx.Doom()
	}
	if l.acquireSlow(tx, timeout) {
		return true
	}
	tx.UnregisterLock(l)
	// A sibling branch blocked in waitOwnedBy is waiting on the
	// registration this goroutine just removed; without a wake it would
	// sleep out its whole timeout.
	l.wakeOwnershipWaiters()
	return false
}

// wakeOwnershipWaiters wakes goroutines blocked in waitOwnedBy. Called after
// ownership or registration changes made outside l.mu's critical section.
func (l *OwnerLock) wakeOwnershipWaiters() {
	l.mu.lock()
	l.notifyOwnershipLocked()
	l.mu.unlock()
}

// notifyOwnershipLocked closes the current ownership-generation channel (if
// any waiter armed one). Callers hold l.mu.
func (l *OwnerLock) notifyOwnershipLocked() {
	if l.ownGen != nil {
		close(l.ownGen)
		l.ownGen = nil
	}
}

// waitOwnedBy waits until tx owns the lock (acquired by a sibling branch of
// a multi-threaded transaction), or the registration disappears (the
// sibling's acquisition failed), or tx is doomed, or the timeout expires.
// It sleeps on the lock's ownership-generation channel rather than spinning:
// every ownership or registration change closes the channel, so waiters wake
// exactly when there is something new to observe.
func (l *OwnerLock) waitOwnedBy(tx *stm.Tx, timeout time.Duration) bool {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	doomed := tx.DoomChan()
	for {
		l.mu.lock()
		if l.owner == tx {
			l.mu.unlock()
			return true
		}
		if l.ownGen == nil {
			l.ownGen = make(chan struct{})
		}
		wait := l.ownGen
		l.mu.unlock()
		// Check the registration only after capturing the wait channel:
		// a sibling that unregisters after this check closes the channel
		// we already hold, so the wakeup cannot be missed.
		if !tx.Holds(l) {
			return false // sibling acquisition failed and unregistered
		}
		select {
		case <-wait:
			// Ownership or registration changed; re-examine.
		case <-doomed:
			return false // wounded while waiting
		case <-tx.Done():
			return false // caller's context cancelled
		case <-timer.C:
			return false
		}
	}
}

func (l *OwnerLock) acquireSlow(tx *stm.Tx, timeout time.Duration) bool {
	// The timer, its channel, and the doom channel are armed once for the
	// whole wait (the budget spans all recontention rounds) and the timer
	// is stopped on every exit path, so a doomed or wounded wait no longer
	// leaks a live timer.
	var timer *time.Timer
	var expired <-chan time.Time
	var doomed <-chan struct{}
	var waitStart time.Time
	cp := effectivePolicy(l.policy, tx)
	conflicted := false
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if conflicted {
			cp.OnWaitEnd(tx)
		}
	}()
	for {
		if tx.Doomed() {
			return false // wounded while waiting: give way to our elder
		}
		l.mu.lock()
		if l.owner == nil {
			l.owner = tx
			l.notifyOwnershipLocked()
			l.mu.unlock()
			if timer != nil {
				// Granted after blocking: feed the adaptive-timeout
				// estimator with how long the wait actually took, and the
				// per-lock meter (which may evaluate a granularity
				// promotion on the fresh sample).
				waited := time.Since(waitStart)
				tx.System().ObserveWait(waited)
				if l.meter != nil {
					l.meter.observeWait(waited)
				}
			}
			return true
		}
		if l.meter != nil {
			// One conflict per blocking round, not per acquisition: under
			// coarse-lock barging a starved waiter recontends (and loses) once
			// per release inside a single acquisition, and each of those
			// wasted wakeups is exactly the evidence a granularity promotion
			// wants. Uncontended acquisitions never reach this branch.
			l.meter.observeConflict()
		}
		if cp != nil {
			// The blocking point: l.mu is held, so l.owner is the grant
			// holder at this instant (it cannot release in between).
			conflicted = true
			cp.OnConflict(tx, l.owner)
		}
		if l.gen == nil {
			l.gen = make(chan struct{})
		}
		wait := l.gen
		l.mu.unlock()

		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
			doomed = tx.DoomChan()
			waitStart = time.Now()
		}
		// Failpoint between DoomChan availability and the select: a Delay
		// here widens the doom/wakeup race window; Timeout forces the
		// expired path; Doom simulates a wound landing right now.
		switch faultpoint.Hit(faultpoint.LockWait) {
		case faultpoint.Timeout:
			return false
		case faultpoint.Doom:
			tx.Doom()
		}
		select {
		case <-wait:
			// A release happened; recontend.
		case <-doomed:
			return false // wounded while waiting
		case <-tx.Done():
			return false // caller's context cancelled
		case <-expired:
			return false
		}
	}
}

// Acquire acquires the lock for tx using the system's default lock timeout,
// aborting tx (which unwinds to stm.Atomic for rollback and retry) if the
// timeout expires or tx was wounded while waiting. This is the call boosted
// methods make on every operation.
func (l *OwnerLock) Acquire(tx *stm.Tx) {
	if !l.TryAcquire(tx, tx.System().LockTimeout()) {
		abortAcquireFailure(tx)
	}
}

// Unlock releases the lock if tx owns it. It is called by the stm runtime
// during commit/abort; user code should not call it directly (two-phase
// locking forbids early release).
func (l *OwnerLock) Unlock(tx *stm.Tx) {
	l.mu.lock()
	if l.owner == tx {
		l.owner = nil
		if l.gen != nil {
			close(l.gen)
			l.gen = nil
		}
		l.notifyOwnershipLocked()
	}
	l.mu.unlock()
}

// HeldBy reports whether tx currently owns the lock. For tests and
// introspection.
func (l *OwnerLock) HeldBy(tx *stm.Tx) bool {
	l.mu.lock()
	held := l.owner == tx
	l.mu.unlock()
	return held
}

// otherOwnerConflict reports whether a transaction other than tx owns the
// lock — the conflict probe of the striped range manager's owner scans —
// and, when one does and cp is non-nil, reports the conflict to the
// contention policy while l.mu still pins the owner (an owner cannot release
// without this mutex, so the pointer handed to OnConflict is live). It takes
// the lock's own mutex: together with the seq-cst rmark counter this is what
// makes the striped point fast path sound (see confirmKey) without the point
// path ever paying an atomic owner store.
func (l *OwnerLock) otherOwnerConflict(tx *stm.Tx, cp ContentionPolicy) bool {
	l.mu.lock()
	o := l.owner
	if o != nil && o != tx && cp != nil {
		cp.OnConflict(tx, o)
	}
	l.mu.unlock()
	return o != nil && o != tx
}

// Locked reports whether any transaction owns the lock.
func (l *OwnerLock) Locked() bool {
	l.mu.lock()
	locked := l.owner != nil
	l.mu.unlock()
	return locked
}

// String describes the lock state for debugging.
func (l *OwnerLock) String() string {
	l.mu.lock()
	defer l.mu.unlock()
	if l.owner == nil {
		return "OwnerLock(free)"
	}
	return fmt.Sprintf("OwnerLock(owner=tx%d)", l.owner.ID())
}

// compile-time interface check
var _ stm.Unlocker = (*OwnerLock)(nil)
