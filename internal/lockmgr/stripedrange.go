package lockmgr

import (
	"cmp"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// DefaultRangeStripes is the stripe count used by NewStripedRangeLock.
const DefaultRangeStripes = 32

// legacyRangeLocks routes boost.NewRanged back onto the single-mutex
// RangeLock so the benchmark harness can measure the pre-PR manager against
// the striped one in a single run (the rangemix experiment). Like
// SetLegacyMapReads, it selects a construction-time implementation and is
// not meant to be flipped while transactions are running.
var legacyRangeLocks atomic.Bool

// SetLegacyRangeLocks toggles the benchmark-only single-mutex interval lock
// manager for subsequently constructed ranged objects.
func SetLegacyRangeLocks(on bool) { legacyRangeLocks.Store(on) }

// LegacyRangeLocks reports whether the legacy single-mutex manager is
// selected.
func LegacyRangeLocks() bool { return legacyRangeLocks.Load() }

// rangeTimerArms counts every time.Timer armed by an interval-lock wait loop
// (striped or legacy). The timer-hygiene regression test asserts one arm per
// blocked acquisition no matter how many wakeup rounds the wait takes.
var rangeTimerArms atomic.Uint64

// StripedRangeLock is the stripe-partitioned interval lock manager: the
// ordered key space is cut into blocks by a Partition and blocks are dealt
// cyclically across S power-of-two stripes. A point demand [k, k] touches
// exactly one stripe — a lock-free snapshot read of the stripe's key→lock
// map (copy-on-write install on first touch, mirroring LockMap) followed by
// an OwnerLock acquisition — while a range demand locks its covering
// stripes' mutexes in canonical ascending index order, decides the grant
// atomically against granted intervals and point owners, and registers the
// interval in each covering stripe. Ranges spanning more than half the
// table escalate to a whole-table demand (all stripes locked, still in
// ascending order), so the decision stays atomic without per-block cost.
//
// Grant semantics are exactly RangeLock's: an acquisition is granted iff it
// conflicts with no *granted* holding of another transaction (waiters are
// invisible), two holdings conflict iff their intervals overlap, and a
// transaction's own holdings never conflict (reentrancy: a covered interval
// is granted immediately from the per-tx holdings cache, without touching
// shared state). Deadlock is bounded the same way as the rest of the
// package: ascending stripe order means grant decisions themselves cannot
// deadlock, and cycles among granted two-phase holdings are broken by timed
// acquisition.
type StripedRangeLock[K cmp.Ordered] struct {
	rank       func(K) uint64
	shift      uint
	mask       uint64
	escalateAt uint64 // escalate when a range covers more than this many blocks
	stripes    []rangeStripe[K]
	hpool      sync.Pool // *rangeHoldings[K]
	spool      sync.Pool // *[]int32 covering-stripe scratch

	held        atomic.Int64  // granted demands (intervals + key grants)
	escalations atomic.Uint64 // whole-table escalations taken
	spurious    atomic.Uint64 // wakeups that re-checked and re-blocked
}

// rangeStripe holds one segment of the partitioned key space.
type rangeStripe[K cmp.Ordered] struct {
	// keys is the stripe's immutable key→lock snapshot, read lock-free on
	// the point fast path and swapped copy-on-write under mu on install.
	keys atomic.Pointer[map[K]*OwnerLock]
	// rmark counts granted intervals registered in this stripe plus range
	// grants currently being decided here. A point acquisition that reads
	// rmark == 0 after taking its key lock is granted without touching mu:
	// the counter is bumped before any range scans owners, so a concurrent
	// range decision is guaranteed to observe the point's ownership.
	rmark atomic.Int32

	mu      sync.Mutex
	ivals   []stripedInterval[K] // granted intervals registered in this stripe
	entries []keyEntry[K]        // installed keys sorted ascending, for range owner scans
	gen     chan struct{}        // closed on each release affecting this stripe
	_       [24]byte             // pad to reduce false sharing between stripes
}

type stripedInterval[K cmp.Ordered] struct {
	lo, hi K
	tx     *stm.Tx
}

type keyEntry[K cmp.Ordered] struct {
	k K
	l *OwnerLock
}

// txInterval is one interval in a transaction's private holdings cache.
type txInterval[K cmp.Ordered] struct{ lo, hi K }

// rangeHoldings is the per-transaction holdings cache, stored in the
// transaction's Ext slot keyed by the table and recycled through the
// table's pool. Reentrancy checks (is [lo, hi] covered by something this tx
// already holds?) read it instead of scanning shared stripes, and the wake
// set remembers which stripes release must notify.
type rangeHoldings[K cmp.Ordered] struct {
	mu    sync.Mutex // parallel transaction branches share one cache
	ivals []txInterval[K]
	nkeys int // fresh key grants recorded (for the held gauge)
	wake  stripeSet
}

func (h *rangeHoldings[K]) coversLocked(lo, hi K) bool {
	for i := range h.ivals {
		e := &h.ivals[i]
		if e.lo <= lo && hi <= e.hi {
			return true
		}
	}
	return false
}

func (h *rangeHoldings[K]) reset() {
	clear(h.ivals) // drop key references (string keys) before pooling
	h.ivals = h.ivals[:0]
	h.nkeys = 0
	h.wake.reset()
}

// stripeSpill mirrors the stm lock set's small-slice threshold: holdings
// touching at most 16 stripes stay on a linear scan, beyond that the wake
// set spills to a map (and the map is dropped at release so pooled holdings
// stay lean).
const stripeSpill = 16

type stripeSet struct {
	small []int32
	spill map[int32]struct{}
}

func (ss *stripeSet) add(si int32) {
	if ss.spill != nil {
		ss.spill[si] = struct{}{}
		return
	}
	for _, v := range ss.small {
		if v == si {
			return
		}
	}
	if len(ss.small) < stripeSpill {
		ss.small = append(ss.small, si)
		return
	}
	ss.spill = make(map[int32]struct{}, 2*stripeSpill)
	for _, v := range ss.small {
		ss.spill[v] = struct{}{}
	}
	ss.spill[si] = struct{}{}
}

func (ss *stripeSet) each(fn func(int32)) {
	if ss.spill != nil {
		for v := range ss.spill {
			fn(v)
		}
		return
	}
	for _, v := range ss.small {
		fn(v)
	}
}

func (ss *stripeSet) reset() {
	ss.small = ss.small[:0]
	ss.spill = nil
}

// NewStripedRangeLock returns a striped interval lock manager over the
// default partition for K with DefaultRangeStripes stripes.
func NewStripedRangeLock[K cmp.Ordered]() *StripedRangeLock[K] {
	return NewStripedRangeLockConfig(DefaultRangeStripes, DefaultPartition[K]())
}

// NewStripedRangeLockConfig returns a striped interval lock manager with at
// least one stripe (rounded up to a power of two) and the given partition.
// A nil partition Rank collapses the table to a single stripe: correct for
// any ordered key type, with RangeLock-like concurrency.
func NewStripedRangeLockConfig[K cmp.Ordered](stripes int, p Partition[K]) *StripedRangeLock[K] {
	if p.Rank == nil {
		stripes = 1
		p.Rank = func(K) uint64 { return 0 }
		p.BlockShift = 0
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	t := &StripedRangeLock[K]{
		rank:       p.Rank,
		shift:      p.BlockShift,
		mask:       uint64(n - 1),
		escalateAt: uint64(n / 2),
		stripes:    make([]rangeStripe[K], n),
	}
	if n == 1 {
		t.escalateAt = math.MaxUint64
	}
	empty := make(map[K]*OwnerLock)
	for i := range t.stripes {
		t.stripes[i].keys.Store(&empty) // shared: snapshots are never mutated
	}
	t.hpool.New = func() any { return &rangeHoldings[K]{} }
	t.spool.New = func() any { b := make([]int32, 0, n); return &b }
	return t
}

func (t *StripedRangeLock[K]) stripeOf(k K) int32 {
	return int32((t.rank(k) >> t.shift) & t.mask)
}

// coveringStripes appends to buf the ascending stripe indices whose blocks
// intersect [lo, hi]. Blocks map cyclically onto stripes, so a range covers
// a contiguous cyclic window; escalation (window wider than half the table)
// covers every stripe. Ascending numeric order is the canonical acquisition
// order: all multi-stripe grant decisions lock stripe mutexes along the same
// global total order, so decisions never deadlock each other.
func (t *StripedRangeLock[K]) coveringStripes(lo, hi K, buf []int32) (idx []int32, escalated bool) {
	s := len(t.stripes)
	b1 := t.rank(lo) >> t.shift
	b2 := t.rank(hi) >> t.shift
	span := b2 - b1 + 1
	if span == 0 { // b2-b1 wrapped the whole block space
		span = math.MaxUint64
	}
	esc := s > 1 && span > t.escalateAt
	if esc || span >= uint64(s) {
		for i := 0; i < s; i++ {
			buf = append(buf, int32(i))
		}
		return buf, esc
	}
	start := int(b1 & t.mask)
	n := int(span)
	if start+n <= s {
		for i := 0; i < n; i++ {
			buf = append(buf, int32(start+i))
		}
	} else {
		for i := 0; i < start+n-s; i++ {
			buf = append(buf, int32(i))
		}
		for i := start; i < s; i++ {
			buf = append(buf, int32(i))
		}
	}
	return buf, false
}

// holdings returns tx's holdings cache for this table, installing (and
// registering the table for two-phase release) on first use.
func (t *StripedRangeLock[K]) holdings(tx *stm.Tx) *rangeHoldings[K] {
	if h, ok := tx.Ext(t).(*rangeHoldings[K]); ok {
		return h
	}
	if tx.RegisterLock(t) {
		h := t.hpool.Get().(*rangeHoldings[K])
		tx.SetExt(t, h)
		return h
	}
	// A sibling branch of a parallel transaction won the registration race
	// and is about to publish the cache; wait for it to land.
	for {
		if h, ok := tx.Ext(t).(*rangeHoldings[K]); ok {
			return h
		}
		runtime.Gosched()
	}
}

// keyLock returns the OwnerLock for k in stripe s, installing it
// copy-on-write on first touch (LockMap's putIfAbsent discipline). The hit
// path takes no locks.
func (t *StripedRangeLock[K]) keyLock(s *rangeStripe[K], k K) *OwnerLock {
	if l, ok := (*s.keys.Load())[k]; ok {
		return l
	}
	return installStripeKey(s, k)
}

func installStripeKey[K cmp.Ordered](s *rangeStripe[K], k K) *OwnerLock {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.keys.Load()
	if l, ok := old[k]; ok {
		return l
	}
	next := make(map[K]*OwnerLock, len(old)+1)
	for k2, v := range old {
		next[k2] = v
	}
	l := NewOwnerLock()
	next[k] = l
	s.keys.Store(&next)
	// Keep the sorted index range scans use in step with the snapshot.
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.entries[mid].k < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.entries = append(s.entries, keyEntry[K]{})
	copy(s.entries[lo+1:], s.entries[lo:])
	s.entries[lo] = keyEntry[K]{k: k, l: l}
	return l
}

// conflictLocked reports whether granting [lo, hi] to tx conflicts with a
// granted holding of another transaction registered in this stripe: an
// overlapping interval, or an owned key lock inside the range. When cp is
// non-nil the first conflict found is also reported to the contention policy
// (cp.OnConflict), at the one moment the holder is provably live: an
// interval holder cannot deregister without s.mu (held by the caller), and a
// key owner is reported inside the key lock's own mutex, which pins it
// against release and descriptor recycling. Callers hold s.mu with s.rmark
// already bumped. Each ownership probe takes the key lock's own mutex, so it
// serializes against the critical section in which a racing point
// acquisition stores its ownership: either the probe runs second and
// observes the owner (conflict detected), or it runs first — and then the
// point's later rmark load is ordered after our bump through that same mutex
// handoff, so the point takes the s.mu-locked confirm path and queues behind
// this decision.
func (s *rangeStripe[K]) conflictLocked(tx *stm.Tx, lo, hi K, cp ContentionPolicy) bool {
	for i := range s.ivals {
		e := &s.ivals[i]
		if e.tx != tx && e.lo <= hi && lo <= e.hi {
			if cp != nil {
				cp.OnConflict(tx, e.tx)
			}
			return true
		}
	}
	es := s.entries
	i, j := 0, len(es)
	for i < j {
		mid := int(uint(i+j) >> 1)
		if es[mid].k < lo {
			i = mid + 1
		} else {
			j = mid
		}
	}
	for ; i < len(es) && es[i].k <= hi; i++ {
		if es[i].l.otherOwnerConflict(tx, cp) {
			return true
		}
	}
	return false
}

// TryLockRange attempts to lock [lo, hi] for tx, waiting up to timeout for
// conflicting granted holdings to be released. It returns true on success.
func (t *StripedRangeLock[K]) TryLockRange(tx *stm.Tx, lo, hi K, timeout time.Duration) bool {
	if hi < lo {
		lo, hi = hi, lo
	}
	h := t.holdings(tx)
	h.mu.Lock()
	covered := h.coversLocked(lo, hi)
	h.mu.Unlock()
	if covered {
		return true
	}
	if lo == hi {
		return t.tryLockKey(tx, h, lo, timeout)
	}
	return t.tryLockSpan(tx, h, lo, hi, timeout)
}

// tryLockKey is the point fast path: one stripe, one OwnerLock, and in the
// common case no stripe mutex — the key lock is read from the snapshot,
// acquired, and confirmed against range activity by a single rmark load.
func (t *StripedRangeLock[K]) tryLockKey(tx *stm.Tx, h *rangeHoldings[K], k K, timeout time.Duration) bool {
	si := t.stripeOf(k)
	s := &t.stripes[si]
	l := t.keyLock(s, k)
	if !tx.RegisterLock(l) {
		if !tx.Shared() || l.HeldBy(tx) {
			return true // reentrant: granted and recorded by an earlier call
		}
		// A parallel sibling registered the key and is still acquiring; its
		// grant performs the stripe confirmation and the holdings record.
		return l.waitOwnedBy(tx, timeout)
	}
	switch faultpoint.Hit(faultpoint.LockRegistered) {
	case faultpoint.Timeout:
		tx.UnregisterLock(l)
		l.wakeOwnershipWaiters()
		return false
	case faultpoint.Doom:
		tx.Doom()
	}
	if !l.acquireSlow(tx, timeout) {
		tx.UnregisterLock(l)
		l.wakeOwnershipWaiters()
		return false
	}
	if !t.confirmKey(tx, s, l, k, timeout) {
		tx.UnregisterLock(l)
		l.Unlock(tx)
		t.wakeStripe(s)
		return false
	}
	h.mu.Lock()
	h.nkeys++
	h.wake.add(si)
	h.mu.Unlock()
	t.held.Add(1)
	return true
}

// confirmKey completes a point grant after the key lock is owned: the grant
// stands only if no other transaction holds a granted interval covering k.
// The rmark == 0 fast check is sound without any atomics on the ownership
// store itself: ownership is written inside the key lock's mutex, and a
// range decision bumps rmark (seq-cst) before probing that same mutex. If
// the probe saw no owner, the probe's critical section preceded ours, so
// the bump happens-before this rmark load via the mutex handoff — the load
// sees it and falls through to the s.mu-locked recheck. If the probe ran
// after our store, the range decision observed the conflict. While a
// covering interval is granted, the point waits holding its key lock
// (two-phase holdings of others are awaited, exactly like an owned
// OwnerLock).
func (t *StripedRangeLock[K]) confirmKey(tx *stm.Tx, s *rangeStripe[K], l *OwnerLock, k K, timeout time.Duration) bool {
	if s.rmark.Load() == 0 {
		return true
	}
	var timer *time.Timer
	var expired <-chan time.Time
	var doomed <-chan struct{}
	var waitStart time.Time
	cp := effectivePolicy(nil, tx)
	conflicted := false
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if conflicted {
			cp.OnWaitEnd(tx)
		}
	}()
	woke := false
	for {
		if tx.Doomed() {
			return false
		}
		s.mu.Lock()
		blocked := false
		for i := range s.ivals {
			e := &s.ivals[i]
			if e.tx != tx && e.lo <= k && k <= e.hi {
				blocked = true
				if cp != nil {
					// e.tx is pinned: deregistering needs s.mu.
					conflicted = true
					cp.OnConflict(tx, e.tx)
				}
				break
			}
		}
		if !blocked {
			s.mu.Unlock()
			if timer != nil {
				tx.System().ObserveWait(time.Since(waitStart))
			}
			return true
		}
		if s.gen == nil {
			s.gen = make(chan struct{})
		}
		wait := s.gen
		s.mu.Unlock()
		if woke {
			t.spurious.Add(1)
		}
		if timer == nil {
			// One timer for the whole wait, armed on first block — the
			// same one-shot discipline as acquireSlow.
			timer = time.NewTimer(timeout)
			expired = timer.C
			doomed = tx.DoomChan()
			waitStart = time.Now()
			rangeTimerArms.Add(1)
		}
		switch faultpoint.Hit(faultpoint.LockWait) {
		case faultpoint.Timeout:
			return false
		case faultpoint.Doom:
			tx.Doom()
		}
		select {
		case <-wait:
			woke = true
		case <-doomed:
			return false
		case <-tx.Done():
			return false
		case <-expired:
			return false
		}
	}
}

// tryLockSpan is the range path: lock the covering stripes' mutexes in
// ascending order, decide the grant atomically across all of them, register
// the interval in each on success, or back off and sleep on the first
// conflicting stripe's generation channel.
func (t *StripedRangeLock[K]) tryLockSpan(tx *stm.Tx, h *rangeHoldings[K], lo, hi K, timeout time.Duration) bool {
	buf := t.spool.Get().(*[]int32)
	idx, escalated := t.coveringStripes(lo, hi, (*buf)[:0])
	defer func() {
		*buf = idx[:0]
		t.spool.Put(buf)
	}()

	var timer *time.Timer
	var expired <-chan time.Time
	var doomed <-chan struct{}
	var waitStart time.Time
	cp := effectivePolicy(nil, tx)
	conflicted := false
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if conflicted {
			cp.OnWaitEnd(tx)
		}
	}()
	woke := false
	for {
		if tx.Doomed() {
			return false
		}
		var wait chan struct{}
		locked := 0
		for _, si := range idx {
			s := &t.stripes[si]
			s.mu.Lock()
			s.rmark.Add(1)
			locked++
			if s.conflictLocked(tx, lo, hi, cp) {
				if cp != nil {
					conflicted = true
				}
				if s.gen == nil {
					s.gen = make(chan struct{})
				}
				wait = s.gen
				break
			}
		}
		if wait == nil {
			for _, si := range idx {
				s := &t.stripes[si]
				s.ivals = append(s.ivals, stripedInterval[K]{lo: lo, hi: hi, tx: tx})
				// rmark keeps the decision-phase +1: it now counts the
				// registered interval.
				s.mu.Unlock()
			}
			h.mu.Lock()
			h.ivals = append(h.ivals, txInterval[K]{lo: lo, hi: hi})
			for _, si := range idx {
				h.wake.add(si)
			}
			h.mu.Unlock()
			t.held.Add(1)
			if escalated {
				t.escalations.Add(1)
			}
			if timer != nil {
				tx.System().ObserveWait(time.Since(waitStart))
			}
			return true
		}
		for i := 0; i < locked; i++ {
			s := &t.stripes[idx[i]]
			s.rmark.Add(-1)
			s.mu.Unlock()
		}
		if woke {
			t.spurious.Add(1)
		}
		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
			doomed = tx.DoomChan()
			waitStart = time.Now()
			rangeTimerArms.Add(1)
		}
		switch faultpoint.Hit(faultpoint.LockWait) {
		case faultpoint.Timeout:
			return false
		case faultpoint.Doom:
			tx.Doom()
		}
		select {
		case <-wait:
			woke = true
		case <-doomed:
			return false
		case <-tx.Done():
			return false
		case <-expired:
			return false
		}
	}
}

func (t *StripedRangeLock[K]) wakeStripe(s *rangeStripe[K]) {
	s.mu.Lock()
	if s.gen != nil {
		close(s.gen)
		s.gen = nil
	}
	s.mu.Unlock()
}

// LockRange locks [lo, hi] for tx with the system's default timeout,
// aborting tx on failure with the cause that explains it.
func (t *StripedRangeLock[K]) LockRange(tx *stm.Tx, lo, hi K) {
	if !t.TryLockRange(tx, lo, hi, tx.System().LockTimeout()) {
		abortAcquireFailure(tx)
	}
}

// LockKey locks the single key k (the interval [k, k]).
func (t *StripedRangeLock[K]) LockKey(tx *stm.Tx, k K) {
	t.LockRange(tx, k, k)
}

// Unlock releases every demand tx holds: intervals are deregistered from
// their stripes and only the stripes in the transaction's wake set are
// notified — waiters elsewhere in the table sleep through the release (the
// key OwnerLocks themselves are registered unlockers and are released by the
// runtime before this runs, since the table registers first and release is
// last-in-first-out). Called by the stm runtime at commit/abort.
func (t *StripedRangeLock[K]) Unlock(tx *stm.Tx) {
	h, _ := tx.Ext(t).(*rangeHoldings[K])
	if h == nil {
		return
	}
	h.mu.Lock()
	released := int64(len(h.ivals) + h.nkeys)
	h.wake.each(func(si int32) {
		s := &t.stripes[si]
		s.mu.Lock()
		if len(s.ivals) > 0 {
			kept := s.ivals[:0]
			for _, e := range s.ivals {
				if e.tx != tx {
					kept = append(kept, e)
				}
			}
			if removed := len(s.ivals) - len(kept); removed > 0 {
				for i := len(kept); i < len(s.ivals); i++ {
					s.ivals[i] = stripedInterval[K]{}
				}
				s.rmark.Add(int32(-removed))
			}
			s.ivals = kept
		}
		if s.gen != nil {
			close(s.gen)
			s.gen = nil
		}
		s.mu.Unlock()
	})
	h.reset()
	h.mu.Unlock()
	tx.SetExt(t, nil)
	t.hpool.Put(h)
	t.held.Add(-released)
}

// Holdings reports how many demands (intervals plus key grants) are
// currently held across all transactions. For tests.
func (t *StripedRangeLock[K]) Holdings() int { return int(t.held.Load()) }

// Stripes reports the stripe count.
func (t *StripedRangeLock[K]) Stripes() int { return len(t.stripes) }

// KeyLocks reports how many distinct keys have point locks installed.
func (t *StripedRangeLock[K]) KeyLocks() int {
	n := 0
	for i := range t.stripes {
		n += len(*t.stripes[i].keys.Load())
	}
	return n
}

// SpuriousWakeups reports how many wait-loop wakeups re-checked and found
// their conflict still standing. The striped design's per-stripe generation
// channels keep this near zero for disjoint workloads; the legacy manager's
// single broadcast channel does not.
func (t *StripedRangeLock[K]) SpuriousWakeups() uint64 { return t.spurious.Load() }

// Escalations reports how many range grants took the whole-table path.
func (t *StripedRangeLock[K]) Escalations() uint64 { return t.escalations.Load() }

var _ stm.Unlocker = (*StripedRangeLock[int64])(nil)
