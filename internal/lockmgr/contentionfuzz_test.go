package lockmgr

import (
	"runtime"
	"testing"
	"time"

	"sync"
	"sync/atomic"

	"tboost/internal/stm"
)

const (
	cfuzzTxs   = 4 // concurrent transactions per program
	cfuzzOps   = 4 // lock demands per transaction
	cfuzzKeys  = 8 // key universe (small => heavy overlap, real cycles)
	cfuzzSleep = 50 * time.Microsecond
)

// cfuzzProgram is a deterministic multi-key transaction program decoded from
// fuzz bytes: each transaction locks a fixed key sequence (duplicates are
// fine — locks are reentrant) and increments a counter per demand, with the
// inverse logged for rollback.
type cfuzzProgram [cfuzzTxs][]int

// decodeProgram derives a program from raw bytes: 4 bytes per transaction,
// key = byte % keys. The low bit of the byte also decides whether the worker
// dwells after the demand, which is what lets opposing workers interleave on
// one CPU.
func decodeProgram(data []byte) (cfuzzProgram, bool) {
	var p cfuzzProgram
	if len(data) < 2 {
		return p, false
	}
	i := 0
	for w := 0; w < cfuzzTxs; w++ {
		for j := 0; j < cfuzzOps && i < len(data); j++ {
			p[w] = append(p[w], int(data[i]))
			i++
		}
	}
	return p, true
}

// runProgram executes the program under policy p on a fresh System and
// LockMap, with unbounded retries, and returns the final counters plus the
// per-transaction commit counts. A hang (lost wakeup, unresolved deadlock)
// fails the test via the watchdog.
func runProgram(t *testing.T, prog cfuzzProgram, p ContentionPolicy) ([cfuzzKeys]int64, [cfuzzTxs]int32) {
	t.Helper()
	sys := stm.NewSystem(stm.Config{
		LockTimeout: 10 * time.Millisecond, // the oracle's only liveness mechanism
		Contention:  p,
	})
	m := NewLockMap[int]()
	var vals [cfuzzKeys]atomic.Int64
	var commits [cfuzzTxs]atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < cfuzzTxs; w++ {
		w := w
		if len(prog[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sys.Atomic(func(tx *stm.Tx) error {
				for _, b := range prog[w] {
					k := b % cfuzzKeys
					m.Lock(tx, k)
					vals[k].Add(1)
					tx.Log(func() { vals[k].Add(-1) })
					if b&1 == 1 {
						time.Sleep(cfuzzSleep) // dwell while holding: forms real cycles
					} else {
						runtime.Gosched()
					}
				}
				return nil
			})
			if err != nil {
				t.Errorf("policy %s: tx %d failed permanently: %v", p.Name(), w, err)
				return
			}
			commits[w].Add(1)
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("policy %s: program hung (lost wakeup or unresolved deadlock)", p.Name())
	}
	var snap [cfuzzKeys]int64
	for k := range snap {
		snap[k] = vals[k].Load()
	}
	var cs [cfuzzTxs]int32
	for w := range cs {
		cs[w] = commits[w].Load()
	}
	return snap, cs
}

// FuzzContentionPolicies runs byte-derived multi-key transaction programs —
// overlapping key sets, adversarial orders, dwell while holding — under the
// Timeout oracle, WoundWait, and Detect, and demands identical observable
// semantics from all three:
//
//   - every transaction commits exactly once (liveness: no lost wakeups, no
//     unresolved deadlock; safety: no transaction is wounded after its commit
//     point, which would show up as a rolled-back committed effect);
//   - the final counter state equals the program's computed expectation and
//     therefore the oracle's — policies may abort *different* transactions
//     along the way, but committed effects must land exactly once each.
func FuzzContentionPolicies(f *testing.F) {
	f.Add([]byte{1, 3, 3, 1, 3, 1, 1, 3})                         // two txs, ABBA with dwell
	f.Add([]byte{0, 2, 4, 6, 6, 4, 2, 0, 1, 5, 5, 1, 7, 7, 7, 7}) // four txs, reversed chains
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9})                         // all on one key, reentrant repeats
	f.Add([]byte{1, 11, 5, 15, 15, 5, 11, 1, 3, 13, 13, 3})       // odd bytes: every op dwells
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, ok := decodeProgram(data)
		if !ok {
			return
		}
		var want [cfuzzKeys]int64
		for w := range prog {
			for _, b := range prog[w] {
				want[b%cfuzzKeys]++
			}
		}
		oracle, oracleCommits := runProgram(t, prog, Timeout)
		if oracle != want {
			t.Fatalf("oracle final state %v, program implies %v", oracle, want)
		}
		for _, p := range []ContentionPolicy{WoundWait, NewDetect()} {
			got, commits := runProgram(t, prog, p)
			if got != oracle {
				t.Fatalf("policy %s final state %v diverges from oracle %v", p.Name(), got, oracle)
			}
			for w := range commits {
				if len(prog[w]) == 0 {
					continue
				}
				if commits[w] != oracleCommits[w] || commits[w] != 1 {
					t.Fatalf("policy %s: tx %d committed %d times (oracle %d), want exactly 1",
						p.Name(), w, commits[w], oracleCommits[w])
				}
			}
		}
	})
}
