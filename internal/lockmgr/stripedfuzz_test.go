package lockmgr

import (
	"testing"
	"time"

	"tboost/internal/stm"
)

// fuzzWorkers is the number of concurrently-open transactions the fuzz
// driver multiplexes demands over.
const fuzzWorkers = 3

// fuzzOpTimeout bounds each TryLockRange: the driver is lockstep-serial, so
// a conflicting demand has nothing to wait for and burns the whole budget.
const fuzzOpTimeout = 5 * time.Millisecond

// fuzzCmd is one demand sent to a worker goroutine.
type fuzzCmd struct {
	release bool
	lo, hi  int64
	reply   chan bool
}

// fuzzWorker runs transactions on demand: the first acquire opens a
// transaction (sys.Atomic) that stays open, deciding further acquires, until
// a release command commits it — releasing every holding at once, like the
// stm runtime always does. The reply to a release is sent only after Atomic
// has returned, so the driver observes the post-release state.
func fuzzWorker(sys *stm.System, r *StripedRangeLock[int64], cmds chan fuzzCmd) {
	for cmd := range cmds {
		if cmd.release {
			cmd.reply <- true // nothing held
			continue
		}
		var pendingRelease chan bool
		_ = sys.Atomic(func(tx *stm.Tx) error {
			cmd.reply <- r.TryLockRange(tx, cmd.lo, cmd.hi, fuzzOpTimeout)
			for inner := range cmds {
				if inner.release {
					pendingRelease = inner.reply
					return nil
				}
				inner.reply <- r.TryLockRange(tx, inner.lo, inner.hi, fuzzOpTimeout)
			}
			return nil
		})
		if pendingRelease != nil {
			pendingRelease <- true
			pendingRelease = nil
		}
	}
}

// refModel is the single-mutex reference: RangeLock's grant semantics
// distilled to plain sequential code. A demand is granted iff one of the
// transaction's own holdings covers it (reentrancy, nothing recorded) or no
// granted holding of another transaction overlaps it (recorded); waiters are
// invisible to grant decisions.
type refModel struct {
	held [fuzzWorkers][][2]int64
}

func (m *refModel) acquire(w int, lo, hi int64) bool {
	for _, iv := range m.held[w] {
		if iv[0] <= lo && hi <= iv[1] {
			return true
		}
	}
	for ow := range m.held {
		if ow == w {
			continue
		}
		for _, iv := range m.held[ow] {
			if iv[0] <= hi && lo <= iv[1] {
				return false
			}
		}
	}
	m.held[w] = append(m.held[w], [2]int64{lo, hi})
	return true
}

func (m *refModel) release(w int) { m.held[w] = nil }

// FuzzStripedRangeLockEquivalence drives interleaved acquire/release
// sequences over three open transactions against a striped table (8 stripes,
// 8-key blocks, so escalation, multi-stripe spans, and the point fast path
// all get exercised in a 64-key space) and asserts every grant/block
// decision matches the single-mutex reference model, and that nothing leaks
// once all transactions commit.
func FuzzStripedRangeLockEquivalence(f *testing.F) {
	f.Add([]byte{0, 5, 0, 1, 5, 0, 3, 0, 0, 0, 5, 0})             // point contention + release + reacquire
	f.Add([]byte{0, 0, 40, 1, 10, 40, 2, 50, 4, 3, 0, 0})         // escalated span vs overlapping span vs point
	f.Add([]byte{0, 10, 8, 0, 12, 2, 1, 11, 0, 0, 63, 0})         // reentrant cover + own-overlap extend
	f.Add([]byte{2, 0, 15, 5, 0, 0, 0, 8, 8, 1, 20, 20, 5, 0, 0}) // cross-stripe ranges, interleaved releases
	f.Fuzz(func(t *testing.T, data []byte) {
		nops := len(data) / 3
		if nops == 0 {
			return
		}
		if nops > 30 {
			nops = 30
		}
		sys := stm.NewSystem(stm.Config{LockTimeout: time.Second})
		r := newStriped8()
		var cmds [fuzzWorkers]chan fuzzCmd
		for w := range cmds {
			cmds[w] = make(chan fuzzCmd)
			go fuzzWorker(sys, r, cmds[w])
		}
		model := &refModel{}
		reply := make(chan bool)
		for i := 0; i < nops; i++ {
			b := data[i*3 : i*3+3]
			w := int(b[0]) % fuzzWorkers
			if b[0]%4 == 3 {
				cmds[w] <- fuzzCmd{release: true, reply: reply}
				<-reply
				model.release(w)
				continue
			}
			lo := int64(b[1] % 64)
			hi := lo
			if b[2]%4 != 0 {
				hi = lo + int64(b[2]%48) // spans up to 7 blocks: escalation territory
			}
			cmds[w] <- fuzzCmd{lo: lo, hi: hi, reply: reply}
			got := <-reply
			want := model.acquire(w, lo, hi)
			if got != want {
				t.Fatalf("op %d: worker %d acquire [%d,%d]: striped granted=%v, reference=%v",
					i, w, lo, hi, got, want)
			}
		}
		for w := range cmds {
			cmds[w] <- fuzzCmd{release: true, reply: reply}
			<-reply
			close(cmds[w])
		}
		if n := r.Holdings(); n != 0 {
			t.Fatalf("holdings leaked after full release: %d", n)
		}
	})
}
