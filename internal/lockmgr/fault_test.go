package lockmgr

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// holdLock starts a transaction that acquires l and holds it until release is
// closed, returning once the lock is held.
func holdLock(t *testing.T, sys *stm.System, l *OwnerLock, wg *sync.WaitGroup, release chan struct{}) {
	t.Helper()
	held := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			l.Acquire(tx)
			close(held)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("holder tx: %v", err)
		}
	}()
	<-held
}

// TestDoomDuringLockWaitWindow is the regression test for the doom/DoomChan
// ordering race: a doom landing in the window between DoomChan() creation and
// the lock manager's select must wake the waiter exactly once, promptly, via
// the doomed channel — not linger until the lock timeout fires. The window,
// normally nanoseconds wide, is forced open with a failpoint-injected delay.
func TestDoomDuringLockWaitWindow(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	// One-shot: only the waiter's first pass through the wait loop stalls.
	faultpoint.Enable(faultpoint.LockWait, faultpoint.Trigger{
		Effect:  faultpoint.Delay,
		Delay:   150 * time.Millisecond,
		OneShot: true,
	})

	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Second, MaxRetries: 1})
	l := NewOwnerLock()
	release := make(chan struct{})
	var wg sync.WaitGroup
	holdLock(t, sys, l, &wg, release)

	var waiterTx *stm.Tx
	ready := make(chan struct{})
	go func() {
		<-ready
		time.Sleep(30 * time.Millisecond) // land inside the injected delay
		waiterTx.Doom()
	}()

	start := time.Now()
	err := sys.Atomic(func(tx *stm.Tx) error {
		waiterTx = tx
		close(ready)
		l.Acquire(tx) // blocks on the held lock, then gets doomed mid-wait
		return nil
	})
	elapsed := time.Since(start)
	close(release)
	wg.Wait()

	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("waiter err = %v, want ErrTooManyRetries (single doomed attempt)", err)
	}
	// The doomed channel, not the 5s lock timeout, must have woken the
	// waiter: one wounded abort, well before the timeout.
	if elapsed > time.Second {
		t.Errorf("waiter woke after %v; doom did not interrupt the lock wait", elapsed)
	}
	st := sys.Stats()
	if st.AbortsWounded != 1 {
		t.Errorf("wounded aborts = %d, want exactly 1 (%s)", st.AbortsWounded, st.CauseString())
	}
	if l.Locked() && waiterTx != nil && l.HeldBy(waiterTx) {
		t.Error("doomed waiter ended up owning the lock")
	}
}

// TestCancelDuringLockWait checks the AtomicCtx acceptance criterion for lock
// waits: cancelling mid-wait returns ctx.Err() well within one lock-timeout
// window (here the select wakes on tx.Done() immediately).
func TestCancelDuringLockWait(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLock()
	release := make(chan struct{})
	var wg sync.WaitGroup
	holdLock(t, sys, l, &wg, release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sys.AtomicCtx(ctx, func(tx *stm.Tx) error {
		l.Acquire(tx)
		return nil
	})
	elapsed := time.Since(start)
	close(release)
	wg.Wait()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > sys.Config().LockTimeout {
		t.Errorf("cancellation surfaced after %v, want within one lock-timeout window (%v)",
			elapsed, sys.Config().LockTimeout)
	}
}

// TestCancelDuringRWLockWait is the same criterion for the readers/writer
// lock's wait loop.
func TestCancelDuringRWLockWait(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewRWOwnerLock()
	release := make(chan struct{})
	held := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			l.WLock(tx)
			close(held)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("writer tx: %v", err)
		}
	}()
	<-held

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sys.AtomicCtx(ctx, func(tx *stm.Tx) error {
		l.RLock(tx) // blocks behind the writer
		return nil
	})
	elapsed := time.Since(start)
	close(release)
	wg.Wait()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > sys.Config().LockTimeout {
		t.Errorf("cancellation surfaced after %v, want within %v", elapsed, sys.Config().LockTimeout)
	}
}

// TestInjectedTimeoutAtRegistration: a forced Timeout between lock
// registration and acquisition must exercise the registered-but-never-
// acquired cleanup — the retry then succeeds with no leaked registration.
func TestInjectedTimeoutAtRegistration(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	faultpoint.Enable(faultpoint.LockRegistered, faultpoint.Trigger{
		Effect:  faultpoint.Timeout,
		OneShot: true,
	})

	sys := stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond})
	l := NewOwnerLock()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		l.Acquire(tx) // first attempt hits the forced timeout and aborts
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (one injected failure, one success)", attempts)
	}
	st := sys.Stats()
	if st.AbortsLockTimeout != 1 {
		t.Errorf("lock-timeout aborts = %d, want 1 (%s)", st.AbortsLockTimeout, st.CauseString())
	}
	if l.Locked() {
		t.Error("lock leaked after injected registration failure")
	}
}

// TestInjectedDoomAtRegistration: a forced Doom right after registration is
// discovered in the wait loop / at commit, aborts as wounded, and the retry
// commits.
func TestInjectedDoomAtRegistration(t *testing.T) {
	faultpoint.Reset()
	t.Cleanup(faultpoint.Reset)
	faultpoint.Enable(faultpoint.LockRegistered, faultpoint.Trigger{
		Effect:  faultpoint.Doom,
		OneShot: true,
	})

	sys := stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond})
	l := NewOwnerLock()
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		l.Acquire(tx)
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if st := sys.Stats(); st.AbortsDoomed+st.AbortsWounded != 1 {
		t.Errorf("doomed+wounded aborts = %d, want 1 (%s)",
			st.AbortsDoomed+st.AbortsWounded, st.CauseString())
	}
	if l.Locked() {
		t.Error("lock leaked after injected doom")
	}
}
