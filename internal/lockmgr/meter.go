package lockmgr

// Per-lock contention accounting for the adaptive lock-granularity policy.
//
// The adaptive boost engine (internal/boost) starts an object on one coarse
// OwnerLock and promotes it to a per-key LockMap when the coarse lock is
// demonstrably contended. The evidence it needs — how often acquisitions
// block, and how long blocked waits last — is only observable here, inside
// the lock manager's slow path. A ContentionMeter is that export: a lock (or
// a whole lock table) carries at most one meter, and the slow path feeds it
// at the two sites that already exist for the contention policies:
//
//   - observeConflict fires once per blocking round: each time acquireSlow
//     finds a foreign owner and is about to (re)block — the same instant
//     ContentionPolicy.OnConflict sees. Counting rounds rather than
//     acquisitions matters under barging: a starved waiter wakes and loses
//     once per release inside a single acquisition, and each wasted wakeup
//     is contention evidence;
//   - observeWait fires where a blocked acquisition is finally granted and
//     the adaptive-timeout estimator is fed (stm.System.ObserveWait).
//
// The meter is deliberately invisible to uncontended acquisitions: the grant
// path of acquireSlow never touches it, so a lock with a meter attached costs
// its steady-state users nothing — no atomic operations, no allocations —
// until they actually block. That is the "dormant signal path" contract the
// adaptive engine's alloc pin test holds the kernel to.

import (
	"sync/atomic"
	"time"
)

// meterAlpha is the EWMA weight denominator for blocked-wait durations:
// new = old + (sample-old)/meterAlpha. The same 1/8 weighting as the
// system-wide adaptive-timeout estimator, so the per-lock signal and the
// per-system signal move on the same timescale.
const meterAlpha = 8

// ContentionMeter accumulates contention evidence for one abstract lock or
// one lock table. All methods are safe for concurrent use; the zero meter is
// not valid (use NewContentionMeter so the notify hook is fixed for life).
type ContentionMeter struct {
	conflicts atomic.Uint64 // blocking rounds: waits begun or resumed on a held lock
	waitEWMA  atomic.Int64  // EWMA of completed blocked-wait durations, in ns
	notify    func()        // ran after each completed blocked wait; may be nil
}

// NewContentionMeter returns a meter. notify, if non-nil, runs on the waiting
// goroutine each time a blocked acquisition completes (after the wait sample
// is folded into the EWMA) — the adaptive engine uses it to evaluate its
// promotion threshold exactly when there is fresh evidence, instead of
// polling. notify must be cheap and must not block: it runs on a transaction
// goroutine that just acquired an abstract lock.
func NewContentionMeter(notify func()) *ContentionMeter {
	return &ContentionMeter{notify: notify}
}

// Conflicts reports how many blocking rounds the lock has seen: every time a
// waiter found the lock held by another transaction and went (back) to sleep.
// Monotonic; consumers measure intervals by delta.
func (m *ContentionMeter) Conflicts() uint64 { return m.conflicts.Load() }

// WaitEWMA reports the exponentially weighted moving average of completed
// blocked-wait durations. Zero until the first blocked acquisition completes.
func (m *ContentionMeter) WaitEWMA() time.Duration {
	return time.Duration(m.waitEWMA.Load())
}

// observeConflict records one about-to-block conflict. Called by acquireSlow
// with the lock's mutex held, so it must stay tiny.
func (m *ContentionMeter) observeConflict() { m.conflicts.Add(1) }

// observeWait folds one completed blocked wait into the EWMA and runs the
// notify hook. The CAS loop mirrors stm.System.ObserveWait: losing a race
// just means another waiter's sample landed first, and this sample folds into
// the newer value.
func (m *ContentionMeter) observeWait(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	for {
		old := m.waitEWMA.Load()
		var next int64
		if old == 0 {
			next = ns
		} else {
			next = old + (ns-old)/meterAlpha
		}
		if m.waitEWMA.CompareAndSwap(old, next) {
			break
		}
	}
	if m.notify != nil {
		m.notify()
	}
}
