package lockmgr

import (
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// RWOwnerLock is a readers/writer two-phase abstract lock owned by
// transactions. Multiple transactions may hold it in shared (read) mode;
// exclusive (write) mode excludes all others. A transaction holding the lock
// in shared mode may upgrade to exclusive mode when it is the only reader.
//
// The paper's boosted heap uses an RWOwnerLock to let commuting add() calls
// run concurrently in shared mode while removeMin() takes exclusive mode.
// Blocked acquisitions consult the waiting transaction's system-wide
// contention policy, reporting every conflicting grant holder (the writer
// for a read demand; the writer and each other reader for a write demand).
type RWOwnerLock struct {
	mu      chanMutex
	writer  *stm.Tx
	readers map[*stm.Tx]struct{}
	gen     chan struct{}
}

// NewRWOwnerLock returns a fresh readers/writer abstract lock.
func NewRWOwnerLock() *RWOwnerLock {
	return &RWOwnerLock{
		mu:      chanMutex{ch: make(chan struct{}, 1)},
		readers: make(map[*stm.Tx]struct{}),
	}
}

// TryRLock attempts to acquire the lock in shared mode for tx, waiting up to
// timeout. A transaction already holding the lock in either mode succeeds
// immediately.
func (l *RWOwnerLock) TryRLock(tx *stm.Tx, timeout time.Duration) bool {
	switch faultpoint.Hit(faultpoint.LockRegistered) {
	case faultpoint.Timeout:
		return false
	case faultpoint.Doom:
		tx.Doom()
	}
	// Timer and doom channel are armed once for the whole wait and the
	// timer stopped on every exit path (see acquireSlow for the rationale).
	var timer *time.Timer
	var expired <-chan time.Time
	var doomed <-chan struct{}
	var waitStart time.Time
	cp := effectivePolicy(nil, tx)
	conflicted := false
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if conflicted {
			cp.OnWaitEnd(tx)
		}
	}()
	for {
		l.mu.lock()
		if l.writer == tx {
			l.mu.unlock()
			return true // write mode subsumes read mode
		}
		if _, ok := l.readers[tx]; ok {
			l.mu.unlock()
			return true
		}
		if l.writer == nil {
			l.readers[tx] = struct{}{}
			l.mu.unlock()
			tx.RegisterLock(l)
			if timer != nil {
				tx.System().ObserveWait(time.Since(waitStart))
			}
			return true
		}
		if cp != nil {
			conflicted = true
			cp.OnConflict(tx, l.writer)
		}
		wait := l.waitGen()
		l.mu.unlock()

		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
			doomed = tx.DoomChan()
			waitStart = time.Now()
		}
		if !l.waitRelease(tx, wait, doomed, expired) {
			return false
		}
	}
}

// TryWLock attempts to acquire the lock in exclusive mode for tx, waiting up
// to timeout. If tx is the sole reader, the acquisition upgrades in place.
func (l *RWOwnerLock) TryWLock(tx *stm.Tx, timeout time.Duration) bool {
	switch faultpoint.Hit(faultpoint.LockRegistered) {
	case faultpoint.Timeout:
		return false
	case faultpoint.Doom:
		tx.Doom()
	}
	var timer *time.Timer
	var expired <-chan time.Time
	var doomed <-chan struct{}
	var waitStart time.Time
	cp := effectivePolicy(nil, tx)
	conflicted := false
	defer func() {
		if timer != nil {
			timer.Stop()
		}
		if conflicted {
			cp.OnWaitEnd(tx)
		}
	}()
	for {
		l.mu.lock()
		if l.writer == tx {
			l.mu.unlock()
			return true
		}
		_, isReader := l.readers[tx]
		others := len(l.readers)
		if isReader {
			others--
		}
		if l.writer == nil && others == 0 {
			l.writer = tx
			if isReader {
				delete(l.readers, tx) // upgrade
			}
			l.mu.unlock()
			tx.RegisterLock(l)
			if timer != nil {
				tx.System().ObserveWait(time.Since(waitStart))
			}
			return true
		}
		if cp != nil {
			conflicted = true
			if l.writer != nil {
				cp.OnConflict(tx, l.writer)
			}
			for r := range l.readers {
				if r != tx {
					cp.OnConflict(tx, r)
				}
			}
		}
		wait := l.waitGen()
		l.mu.unlock()

		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
			doomed = tx.DoomChan()
			waitStart = time.Now()
		}
		if !l.waitRelease(tx, wait, doomed, expired) {
			return false
		}
	}
}

// waitRelease blocks until the next release (true) or until the wait should
// be abandoned (false): timeout expiry, a doom, or context cancellation.
func (l *RWOwnerLock) waitRelease(tx *stm.Tx, wait <-chan struct{}, doomed <-chan struct{}, expired <-chan time.Time) bool {
	switch faultpoint.Hit(faultpoint.LockWait) {
	case faultpoint.Timeout:
		return false
	case faultpoint.Doom:
		tx.Doom()
	}
	select {
	case <-wait:
		return true
	case <-doomed:
		return false
	case <-tx.Done():
		return false
	case <-expired:
		return false
	}
}

// waitGen returns the channel closed on the next release. Callers must hold mu.
func (l *RWOwnerLock) waitGen() chan struct{} {
	if l.gen == nil {
		l.gen = make(chan struct{})
	}
	return l.gen
}

// RLock acquires shared mode with the system's default timeout, aborting tx
// on failure with the cause that explains it (wound, deadlock-victim doom,
// cancelled context, or timeout).
func (l *RWOwnerLock) RLock(tx *stm.Tx) {
	if !l.TryRLock(tx, tx.System().LockTimeout()) {
		abortAcquireFailure(tx)
	}
}

// WLock acquires exclusive mode with the system's default timeout, aborting
// tx on failure with the cause that explains it.
func (l *RWOwnerLock) WLock(tx *stm.Tx) {
	if !l.TryWLock(tx, tx.System().LockTimeout()) {
		abortAcquireFailure(tx)
	}
}

// Unlock releases whatever mode tx holds. Called by the stm runtime at
// commit/abort.
func (l *RWOwnerLock) Unlock(tx *stm.Tx) {
	l.mu.lock()
	if l.writer == tx {
		l.writer = nil
	} else {
		delete(l.readers, tx)
	}
	if l.gen != nil {
		close(l.gen)
		l.gen = nil
	}
	l.mu.unlock()
}

// Readers reports the number of transactions holding shared mode.
func (l *RWOwnerLock) Readers() int {
	l.mu.lock()
	n := len(l.readers)
	l.mu.unlock()
	return n
}

// WriteHeldBy reports whether tx holds exclusive mode.
func (l *RWOwnerLock) WriteHeldBy(tx *stm.Tx) bool {
	l.mu.lock()
	held := l.writer == tx
	l.mu.unlock()
	return held
}

// ReadHeldBy reports whether tx holds shared mode.
func (l *RWOwnerLock) ReadHeldBy(tx *stm.Tx) bool {
	l.mu.lock()
	_, held := l.readers[tx]
	l.mu.unlock()
	return held
}

var _ stm.Unlocker = (*RWOwnerLock)(nil)
