package lockmgr

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestWoundWaitOlderWoundsYounger(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLockPolicy(WoundWait)

	// The OLDER transaction starts first but acquires the lock second.
	olderStarted := make(chan struct{})
	youngerHolds := make(chan struct{})
	var youngerAttempts atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // older
		defer wg.Done()
		err := sys.Atomic(func(tx *stm.Tx) error {
			if tx.Attempt() == 0 {
				close(olderStarted)
				<-youngerHolds
			}
			l.Acquire(tx) // wounds the younger holder
			return nil
		})
		if err != nil {
			t.Errorf("older: %v", err)
		}
	}()
	go func() { // younger: grabs the lock, then dawdles toward commit
		defer wg.Done()
		<-olderStarted
		err := sys.Atomic(func(tx *stm.Tx) error {
			youngerAttempts.Add(1)
			l.Acquire(tx)
			if tx.Attempt() == 0 {
				close(youngerHolds)
				time.Sleep(50 * time.Millisecond) // think time while wounded
			}
			return nil
		})
		if err != nil {
			t.Errorf("younger: %v", err)
		}
	}()
	wg.Wait()
	if youngerAttempts.Load() < 2 {
		t.Fatalf("younger committed without being wounded (attempts=%d)", youngerAttempts.Load())
	}
	if l.Locked() {
		t.Fatal("lock leaked")
	}
}

func TestWoundWaitYoungerWaitsForOlder(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Second})
	l := NewOwnerLockPolicy(WoundWait)
	olderHolds := make(chan struct{})
	release := make(chan struct{})
	var olderAborted atomic.Bool
	done := make(chan struct{})
	go func() { // older holds the lock
		_ = sys.Atomic(func(tx *stm.Tx) error {
			if tx.Attempt() > 0 {
				olderAborted.Store(true)
			}
			l.Acquire(tx)
			if tx.Attempt() == 0 {
				close(olderHolds)
				<-release
			}
			return nil
		})
		close(done)
	}()
	<-olderHolds
	// Younger requester: must wait, not wound.
	start := time.Now()
	time.AfterFunc(40*time.Millisecond, func() { close(release) })
	if err := sys.Atomic(func(tx *stm.Tx) error {
		l.Acquire(tx)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	<-done
	if olderAborted.Load() {
		t.Fatal("younger requester wounded the older holder")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("younger did not actually wait for the older holder")
	}
}

func TestWoundWaitResolvesDeadlockWithoutTimeout(t *testing.T) {
	// ABBA deadlock with a LONG timeout: wound-wait must resolve it fast
	// (the timeout-only policy would stall for the full timeout).
	sys := stm.NewSystem(stm.Config{LockTimeout: 30 * time.Second})
	a := NewOwnerLockPolicy(WoundWait)
	b := NewOwnerLockPolicy(WoundWait)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sys.Atomic(func(tx *stm.Tx) error {
				first, second := a, b
				if i == 1 {
					first, second = b, a
				}
				first.Acquire(tx)
				time.Sleep(5 * time.Millisecond) // guarantee the overlap
				second.Acquire(tx)
				return nil
			})
			if err != nil {
				t.Errorf("tx %d: %v", i, err)
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(10 * time.Second):
		t.Fatal("wound-wait failed to resolve the deadlock")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("resolution took %v; wound-wait should not wait out the 30s timeout", elapsed)
	}
}

func TestWoundWaitLockMap(t *testing.T) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Second})
	m := NewLockMapPolicy[int](8, WoundWait)
	// Transactions acquire two keys in opposite orders, repeatedly:
	// guaranteed deadlock pattern, resolved by wounding.
	var wg sync.WaitGroup
	counters := make([]int, 2)
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					k1, k2 := g%2, 1-g%2
					m.Lock(tx, k1)
					m.Lock(tx, k2)
					counters[k1]++
					counters[k2]++
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	doneCh := make(chan struct{})
	go func() { wg.Wait(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("wound-wait LockMap deadlocked")
	}
	if counters[0] != 200 || counters[1] != 200 {
		t.Fatalf("counters = %v, want [200 200] (lost updates)", counters)
	}
}

func TestWoundedCauseReported(t *testing.T) {
	// Contract: once a transaction has been wounded (doomed), its next
	// lock acquisition aborts it with cause ErrWounded, and the retry
	// succeeds. The wound is injected directly, standing in for an older
	// transaction's wound-wait rule.
	sys := stm.NewSystem(stm.Config{LockTimeout: 5 * time.Second})
	l := NewOwnerLockPolicy(WoundWait)
	var sawWounded atomic.Bool
	attempts := 0
	err := sys.Atomic(func(tx *stm.Tx) error {
		attempts++
		if attempts == 1 {
			tx.Doom()
			tx.OnAbort(func() {
				if errors.Is(tx.Cause(), ErrWounded) {
					sawWounded.Store(true)
				}
			})
			l.Acquire(tx) // doomed: must abort with ErrWounded
			t.Error("unreachable: doomed acquisition returned")
		}
		l.Acquire(tx)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if !sawWounded.Load() {
		t.Fatal("abort cause was not ErrWounded")
	}
	if l.Locked() {
		t.Fatal("lock leaked")
	}
}
