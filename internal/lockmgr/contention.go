package lockmgr

import (
	"errors"

	"tboost/internal/stm"
)

// ErrDeadlockVictim is the cause used to abort a transaction the Detect
// policy chose as the victim of a wait-for cycle.
var ErrDeadlockVictim = errors.New("lockmgr: aborted as deadlock-cycle victim")

func init() {
	stm.RegisterAbortKind(ErrDeadlockVictim, stm.KindDeadlock)
}

// ContentionPolicy is the pluggable conflict-resolution layer consulted at
// every blocking point in OwnerLock, RWOwnerLock, LockMap, and
// StripedRangeLock. The interface itself is defined in stm (so stm.Config
// can carry a policy without an import cycle); this package provides the
// three implementations:
//
//   - Timeout: do nothing at the blocking point — the timed acquisition is
//     the whole policy, exactly the paper's discipline. Kept as the oracle
//     the fuzzers compare the richer policies against.
//   - WoundWait: an older waiter dooms ("wounds") the younger holder instead
//     of sleeping out its timeout. Deadlock-free by construction and
//     starvation-free by aging (see the WoundWait doc).
//   - Detect (via NewDetect): maintain a wait-for graph at block/unblock
//     edges, detect cycles on insertion, and doom the youngest transaction
//     in the cycle. For workloads where wounding is too aggressive — no
//     transaction is ever aborted unless it is provably part of a cycle.
//
// A lock built without an explicit policy consults the system-wide choice in
// stm.Config.Contention on each blocked acquisition, so every boosted object
// inherits the policy of the System its transactions run on.
type ContentionPolicy = stm.ContentionPolicy

// Policy is the historical name for ContentionPolicy, kept so existing
// constructor signatures (NewOwnerLockPolicy, NewLockMapPolicy,
// boost.NewKeyedPolicy) read as before.
type Policy = stm.ContentionPolicy

// Exported policy values. TimeoutOnly is retained as the historical name of
// Timeout. Detect is a process-wide detector instance for convenience; use
// NewDetect for an isolated wait-for graph per System (cheaper mutex, no
// cross-system edges).
var (
	// Timeout recovers from deadlock by timed acquisition only (the
	// paper's discipline: "timeouts avoid deadlock").
	Timeout ContentionPolicy = timeoutPolicy{}
	// TimeoutOnly is the historical name of Timeout.
	TimeoutOnly = Timeout
	// WoundWait applies the classic wound-wait rule from the database
	// literature the paper builds on: an older requester (smaller Birth)
	// dooms a younger lock holder, which aborts at its next acquisition or
	// commit; a younger requester waits. Deadlocks cannot form (the
	// waits-for graph is ordered by age); timeouts remain as a backstop.
	WoundWait ContentionPolicy = woundWaitPolicy{}
	// Detect is a shared deadlock-detecting policy instance.
	Detect = NewDetect()
)

// timeoutPolicy is the paper's discipline: the blocking point does nothing
// and the timed acquisition breaks any deadlock.
type timeoutPolicy struct{}

func (timeoutPolicy) Name() string                 { return "timeout" }
func (timeoutPolicy) OnConflict(waiter, _ *stm.Tx) {}
func (timeoutPolicy) OnWaitEnd(_ *stm.Tx)          {}

// woundWaitPolicy implements wound-wait. Birth timestamps are assigned from
// the global transaction-ID sequence on a transaction's first attempt and
// preserved across retries (stm.Tx.Birth), so a transaction ages as it
// retries: the oldest live transaction has the globally smallest birth, no
// waiter can be older than it, and therefore it is never wounded — it can
// only wound. That is the starvation-freedom argument (DESIGN.md §9).
type woundWaitPolicy struct{}

func (woundWaitPolicy) Name() string { return "wound-wait" }

func (woundWaitPolicy) OnConflict(waiter, holder *stm.Tx) {
	// Read-only transactions are never wounded. A snapshot reader on
	// versioned objects holds no abstract locks and so never appears as a
	// holder at all; this guard covers the fallback paths (unversioned
	// objects, range queries) where a read-only transaction does hold
	// locks. Skipping it weakens the age-ordering deadlock-freedom
	// argument only for those fallback cycles, where the timeout backstop
	// still applies — and a reader that mutates nothing is always the
	// wrong transaction to sacrifice: wounding it buys the writer the lock
	// a few microseconds earlier at the cost of redoing a whole scan.
	if holder.ReadOnly() {
		return
	}
	if holder.Birth() > waiter.Birth() {
		// Wound the younger holder; it aborts at its next acquisition or
		// commit and releases the lock the waiter wants.
		waiter.System().CountWound(waiter.ID())
		holder.DoomWith(ErrWounded)
	}
}

func (woundWaitPolicy) OnWaitEnd(_ *stm.Tx) {}

// detectPolicy maintains a wait-for graph across the blocking points that
// consult it and dooms the youngest member of any cycle the newest edge
// closes. Zero aborts unless a cycle actually exists.
type detectPolicy struct {
	g waitForGraph
}

// NewDetect returns a fresh deadlock-detecting policy with its own wait-for
// graph. Give each System its own instance unless transactions from several
// systems contend on the same locks (then they must share a graph to see
// cross-system cycles).
func NewDetect() ContentionPolicy {
	return &detectPolicy{g: waitForGraph{edges: make(map[uint64]waitEdge)}}
}

func (d *detectPolicy) Name() string { return "detect" }

func (d *detectPolicy) OnConflict(waiter, holder *stm.Tx) {
	if waiter == holder {
		return
	}
	if victim := d.g.observe(waiter, holder); victim != nil {
		waiter.System().CountDeadlockCycle(waiter.ID())
		victim.DoomWith(ErrDeadlockVictim)
	}
}

func (d *detectPolicy) OnWaitEnd(waiter *stm.Tx) {
	d.g.drop(waiter.ID())
}

// effectivePolicy resolves the policy a blocking point should consult: the
// lock's own (construction-time) policy if set, else the system-wide policy
// of the waiting transaction's System. Called on slow paths only — an
// acquisition that never blocks never evaluates the policy, which is what
// keeps the uncontended fast path at its PR 4 cost.
func effectivePolicy(own ContentionPolicy, tx *stm.Tx) ContentionPolicy {
	if own != nil {
		return own
	}
	return tx.System().Contention()
}
