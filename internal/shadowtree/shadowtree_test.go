package shadowtree

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond})
}

func TestBasicOps(t *testing.T) {
	tr := New[string]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if !tr.Insert(tx, 5, "five") {
			t.Error("Insert new = false")
		}
		if tr.Insert(tx, 5, "FIVE") {
			t.Error("Insert existing = true")
		}
		v, ok := tr.Get(tx, 5)
		if !ok || v != "FIVE" {
			t.Errorf("Get = %q,%v", v, ok)
		}
		if tr.Len(tx) != 1 {
			t.Errorf("Len = %d", tr.Len(tx))
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		v, ok := tr.Delete(tx, 5)
		if !ok || v != "FIVE" {
			t.Errorf("Delete = %q,%v", v, ok)
		}
		if tr.Contains(tx, 5) {
			t.Error("Contains after delete")
		}
	})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialModelEquivalence(t *testing.T) {
	tr := New[int64]()
	sys := newSys()
	model := map[int64]int64{}
	r := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 3000; i++ {
		k := int64(r.IntN(128))
		op := r.IntN(3)
		err := sys.Atomic(func(tx *stm.Tx) error {
			switch op {
			case 0:
				_, existed := model[k]
				if isNew := tr.Insert(tx, k, k*7); isNew == existed {
					t.Errorf("op %d: Insert(%d) new=%v, existed=%v", i, k, isNew, existed)
				}
			case 1:
				wantV, existed := model[k]
				v, ok := tr.Delete(tx, k)
				if ok != existed || (ok && v != wantV) {
					t.Errorf("op %d: Delete(%d) = %v,%v want %v,%v", i, k, v, ok, wantV, existed)
				}
			default:
				if got := tr.Contains(tx, k); got != (model[k] != 0 || func() bool { _, e := model[k]; return e }()) {
					_, e := model[k]
					if got != e {
						t.Errorf("op %d: Contains(%d) = %v, want %v", i, k, got, e)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Mirror the op into the model only after the tx committed.
		switch op {
		case 0:
			model[k] = k * 7
		case 1:
			delete(model, k)
		}
		if i%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	keys := tr.Keys()
	if len(keys) != len(model) {
		t.Fatalf("tree has %d keys, model %d", len(keys), len(model))
	}
	for _, k := range keys {
		if _, ok := model[k]; !ok {
			t.Fatalf("tree key %d not in model", k)
		}
	}
}

func TestRollbackLeavesNoTrace(t *testing.T) {
	tr := New[int]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { tr.Insert(tx, 1, 1) })
	errSentinel := sys.Atomic(func(tx *stm.Tx) error {
		tr.Insert(tx, 2, 2)
		tr.Delete(tx, 1)
		return errAbort
	})
	if errSentinel != errAbort {
		t.Fatalf("err = %v", errSentinel)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if !tr.Contains(tx, 1) {
			t.Error("aborted delete removed key 1")
		}
		if tr.Contains(tx, 2) {
			t.Error("aborted insert left key 2")
		}
	})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

var errAbort = errSentinelType{}

type errSentinelType struct{}

func (errSentinelType) Error() string { return "sentinel abort" }

func TestConcurrentDisjointKeysStillConflict(t *testing.T) {
	// The whole point of the baseline: concurrent transactions on disjoint
	// keys DO abort each other because their read sets overlap near the
	// root. We assert the tree stays correct and measure that aborts
	// actually occur under contention.
	tr := New[int]()
	sys := newSys()
	var wg sync.WaitGroup
	const goroutines = 8
	const perG = 300
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := int64(g*perG + i) // disjoint key ranges per goroutine
				if err := sys.Atomic(func(tx *stm.Tx) error {
					tr.Insert(tx, k, int(k))
					return nil
				}); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	if len(keys) != goroutines*perG {
		t.Fatalf("keys = %d, want %d", len(keys), goroutines*perG)
	}
	t.Logf("baseline stats under disjoint-key contention: %v", sys.Stats())
}

func TestConcurrentMixedWorkloadInvariants(t *testing.T) {
	tr := New[int]()
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 77))
			for i := 0; i < 400; i++ {
				k := int64(r.IntN(64))
				_ = sys.Atomic(func(tx *stm.Tx) error {
					switch r.IntN(3) {
					case 0:
						tr.Insert(tx, k, int(k))
					case 1:
						tr.Delete(tx, k)
					default:
						tr.Contains(tx, k)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys unsorted: %v", keys)
		}
	}
}

func TestReadSetGrowsWithTreeDepth(t *testing.T) {
	// Per-field logging: a single Contains on a large tree reads many
	// variables. This is the overhead the paper's boosted version avoids.
	tr := New[int]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 512; k++ {
			tr.Insert(tx, k, int(k))
		}
	})
	var readSet int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		tr.Contains(tx, 511)
		readSet = readSetProbe(tx)
	})
	if readSet < 8 {
		t.Fatalf("read set = %d vars for one Contains; expected deep traversal", readSet)
	}
}
