// Package shadowtree implements a red-black tree whose every node field is a
// transactional variable (rwstm.Var). It is the Figure 9 baseline: the same
// sequential red-black tree as package rbtree, but run through a read/write-
// conflict STM — the Go equivalent of applying DSTM2's shadow factory to the
// sequential code, so that "each access to each field of each tree node
// requires synchronization overhead, and each first write access copies the
// node".
//
// Any two transactions whose traversals overlap near the root conflict here
// even when they touch disjoint keys; that false-conflict abort traffic is
// precisely what the boosted tree avoids.
package shadowtree

import (
	"fmt"

	"tboost/internal/rwstm"
	"tboost/internal/stm"
)

type color bool

const (
	red   color = false
	black color = true
)

type node[V any] struct {
	key                 int64 // immutable once linked
	val                 *rwstm.VisibleVar[V]
	left, right, parent *rwstm.VisibleVar[*node[V]]
	color               *rwstm.VisibleVar[color]
}

func newNode[V any](key int64, val V, nilN *node[V], c color) *node[V] {
	return &node[V]{
		key:    key,
		val:    rwstm.NewVisibleVar(val),
		left:   rwstm.NewVisibleVar(nilN),
		right:  rwstm.NewVisibleVar(nilN),
		parent: rwstm.NewVisibleVar(nilN),
		color:  rwstm.NewVisibleVar(c),
	}
}

// Tree is a transactional ordered map from int64 to V on the rwstm baseline.
// All operations must run inside stm.Atomic. Create with New.
type Tree[V any] struct {
	root *rwstm.VisibleVar[*node[V]]
	nil_ *node[V]
	size *rwstm.VisibleVar[int]
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	sentinel := &node[V]{}
	var zero V
	sentinel.val = rwstm.NewVisibleVar(zero)
	sentinel.left = rwstm.NewVisibleVar[*node[V]](nil)
	sentinel.right = rwstm.NewVisibleVar[*node[V]](nil)
	sentinel.parent = rwstm.NewVisibleVar[*node[V]](nil)
	sentinel.color = rwstm.NewVisibleVar(black)
	return &Tree[V]{
		root: rwstm.NewVisibleVar(sentinel),
		nil_: sentinel,
		size: rwstm.NewVisibleVar(0),
	}
}

// Len returns the number of keys as seen by tx.
func (t *Tree[V]) Len(tx *stm.Tx) int { return t.size.Read(tx) }

// Get returns the value stored under key as seen by tx.
func (t *Tree[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	n := t.root.Read(tx)
	for n != t.nil_ {
		switch {
		case key < n.key:
			n = n.left.Read(tx)
		case key > n.key:
			n = n.right.Read(tx)
		default:
			return n.val.Read(tx), true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present as seen by tx.
func (t *Tree[V]) Contains(tx *stm.Tx, key int64) bool {
	_, ok := t.Get(tx, key)
	return ok
}

// Insert stores val under key, reporting whether the key is new.
func (t *Tree[V]) Insert(tx *stm.Tx, key int64, val V) bool {
	parent := t.nil_
	n := t.root.Read(tx)
	for n != t.nil_ {
		parent = n
		switch {
		case key < n.key:
			n = n.left.Read(tx)
		case key > n.key:
			n = n.right.Read(tx)
		default:
			n.val.Write(tx, val)
			return false
		}
	}
	fresh := newNode(key, val, t.nil_, red)
	fresh.parent.Write(tx, parent)
	switch {
	case parent == t.nil_:
		t.root.Write(tx, fresh)
	case key < parent.key:
		parent.left.Write(tx, fresh)
	default:
		parent.right.Write(tx, fresh)
	}
	t.size.Write(tx, t.size.Read(tx)+1)
	t.insertFixup(tx, fresh)
	return true
}

func (t *Tree[V]) rotateLeft(tx *stm.Tx, x *node[V]) {
	y := x.right.Read(tx)
	yl := y.left.Read(tx)
	x.right.Write(tx, yl)
	if yl != t.nil_ {
		yl.parent.Write(tx, x)
	}
	xp := x.parent.Read(tx)
	y.parent.Write(tx, xp)
	switch {
	case xp == t.nil_:
		t.root.Write(tx, y)
	case x == xp.left.Read(tx):
		xp.left.Write(tx, y)
	default:
		xp.right.Write(tx, y)
	}
	y.left.Write(tx, x)
	x.parent.Write(tx, y)
}

func (t *Tree[V]) rotateRight(tx *stm.Tx, x *node[V]) {
	y := x.left.Read(tx)
	yr := y.right.Read(tx)
	x.left.Write(tx, yr)
	if yr != t.nil_ {
		yr.parent.Write(tx, x)
	}
	xp := x.parent.Read(tx)
	y.parent.Write(tx, xp)
	switch {
	case xp == t.nil_:
		t.root.Write(tx, y)
	case x == xp.right.Read(tx):
		xp.right.Write(tx, y)
	default:
		xp.left.Write(tx, y)
	}
	y.right.Write(tx, x)
	x.parent.Write(tx, y)
}

func (t *Tree[V]) insertFixup(tx *stm.Tx, z *node[V]) {
	for z.parent.Read(tx).color.Read(tx) == red {
		zp := z.parent.Read(tx)
		zpp := zp.parent.Read(tx)
		if zp == zpp.left.Read(tx) {
			uncle := zpp.right.Read(tx)
			if uncle.color.Read(tx) == red {
				zp.color.Write(tx, black)
				uncle.color.Write(tx, black)
				zpp.color.Write(tx, red)
				z = zpp
			} else {
				if z == zp.right.Read(tx) {
					z = zp
					t.rotateLeft(tx, z)
					zp = z.parent.Read(tx)
					zpp = zp.parent.Read(tx)
				}
				zp.color.Write(tx, black)
				zpp.color.Write(tx, red)
				t.rotateRight(tx, zpp)
			}
		} else {
			uncle := zpp.left.Read(tx)
			if uncle.color.Read(tx) == red {
				zp.color.Write(tx, black)
				uncle.color.Write(tx, black)
				zpp.color.Write(tx, red)
				z = zpp
			} else {
				if z == zp.left.Read(tx) {
					z = zp
					t.rotateRight(tx, z)
					zp = z.parent.Read(tx)
					zpp = zp.parent.Read(tx)
				}
				zp.color.Write(tx, black)
				zpp.color.Write(tx, red)
				t.rotateLeft(tx, zpp)
			}
		}
	}
	t.root.Read(tx).color.Write(tx, black)
}

// Delete removes key, returning its value and whether it was present.
func (t *Tree[V]) Delete(tx *stm.Tx, key int64) (V, bool) {
	var zero V
	z := t.root.Read(tx)
	for z != t.nil_ && z.key != key {
		if key < z.key {
			z = z.left.Read(tx)
		} else {
			z = z.right.Read(tx)
		}
	}
	if z == t.nil_ {
		return zero, false
	}
	val := z.val.Read(tx)
	t.deleteNode(tx, z)
	t.size.Write(tx, t.size.Read(tx)-1)
	return val, true
}

func (t *Tree[V]) minimum(tx *stm.Tx, n *node[V]) *node[V] {
	for l := n.left.Read(tx); l != t.nil_; l = n.left.Read(tx) {
		n = l
	}
	return n
}

func (t *Tree[V]) transplant(tx *stm.Tx, u, v *node[V]) {
	up := u.parent.Read(tx)
	switch {
	case up == t.nil_:
		t.root.Write(tx, v)
	case u == up.left.Read(tx):
		up.left.Write(tx, v)
	default:
		up.right.Write(tx, v)
	}
	v.parent.Write(tx, up)
}

func (t *Tree[V]) deleteNode(tx *stm.Tx, z *node[V]) {
	y := z
	yOriginal := y.color.Read(tx)
	var x *node[V]
	zl, zr := z.left.Read(tx), z.right.Read(tx)
	switch {
	case zl == t.nil_:
		x = zr
		t.transplant(tx, z, zr)
	case zr == t.nil_:
		x = zl
		t.transplant(tx, z, zl)
	default:
		y = t.minimum(tx, zr)
		yOriginal = y.color.Read(tx)
		x = y.right.Read(tx)
		if y.parent.Read(tx) == z {
			x.parent.Write(tx, y)
		} else {
			t.transplant(tx, y, x)
			y.right.Write(tx, zr)
			zr.parent.Write(tx, y)
		}
		t.transplant(tx, z, y)
		zl = z.left.Read(tx)
		y.left.Write(tx, zl)
		zl.parent.Write(tx, y)
		y.color.Write(tx, z.color.Read(tx))
	}
	if yOriginal == black {
		t.deleteFixup(tx, x)
	}
}

func (t *Tree[V]) deleteFixup(tx *stm.Tx, x *node[V]) {
	for x != t.root.Read(tx) && x.color.Read(tx) == black {
		xp := x.parent.Read(tx)
		if x == xp.left.Read(tx) {
			w := xp.right.Read(tx)
			if w.color.Read(tx) == red {
				w.color.Write(tx, black)
				xp.color.Write(tx, red)
				t.rotateLeft(tx, xp)
				xp = x.parent.Read(tx)
				w = xp.right.Read(tx)
			}
			if w.left.Read(tx).color.Read(tx) == black && w.right.Read(tx).color.Read(tx) == black {
				w.color.Write(tx, red)
				x = xp
			} else {
				if w.right.Read(tx).color.Read(tx) == black {
					w.left.Read(tx).color.Write(tx, black)
					w.color.Write(tx, red)
					t.rotateRight(tx, w)
					xp = x.parent.Read(tx)
					w = xp.right.Read(tx)
				}
				w.color.Write(tx, xp.color.Read(tx))
				xp.color.Write(tx, black)
				w.right.Read(tx).color.Write(tx, black)
				t.rotateLeft(tx, xp)
				x = t.root.Read(tx)
			}
		} else {
			w := xp.left.Read(tx)
			if w.color.Read(tx) == red {
				w.color.Write(tx, black)
				xp.color.Write(tx, red)
				t.rotateRight(tx, xp)
				xp = x.parent.Read(tx)
				w = xp.left.Read(tx)
			}
			if w.right.Read(tx).color.Read(tx) == black && w.left.Read(tx).color.Read(tx) == black {
				w.color.Write(tx, red)
				x = xp
			} else {
				if w.left.Read(tx).color.Read(tx) == black {
					w.right.Read(tx).color.Write(tx, black)
					w.color.Write(tx, red)
					t.rotateLeft(tx, w)
					xp = x.parent.Read(tx)
					w = xp.left.Read(tx)
				}
				w.color.Write(tx, xp.color.Read(tx))
				xp.color.Write(tx, black)
				w.left.Read(tx).color.Write(tx, black)
				t.rotateRight(tx, xp)
				x = t.root.Read(tx)
			}
		}
	}
	x.color.Write(tx, black)
}

// Keys returns all keys in ascending order, reading committed state
// directly. For quiescent use (tests, verification) only.
func (t *Tree[V]) Keys() []int64 {
	var out []int64
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == t.nil_ || n == nil {
			return
		}
		walk(n.left.ReadDirect())
		out = append(out, n.key)
		walk(n.right.ReadDirect())
	}
	walk(t.root.ReadDirect())
	return out
}

// CheckInvariants verifies the red-black properties on committed state.
// For quiescent use only.
func (t *Tree[V]) CheckInvariants() error {
	root := t.root.ReadDirect()
	if root.color.ReadDirect() != black {
		return fmt.Errorf("shadowtree: root is red")
	}
	_, err := t.check(root, nil, nil)
	return err
}

func (t *Tree[V]) check(n *node[V], lo, hi *int64) (int, error) {
	if n == t.nil_ || n == nil {
		return 1, nil
	}
	if lo != nil && n.key <= *lo {
		return 0, fmt.Errorf("shadowtree: key %d violates BST order (min %d)", n.key, *lo)
	}
	if hi != nil && n.key >= *hi {
		return 0, fmt.Errorf("shadowtree: key %d violates BST order (max %d)", n.key, *hi)
	}
	c := n.color.ReadDirect()
	l, r := n.left.ReadDirect(), n.right.ReadDirect()
	if c == red {
		if (l != t.nil_ && l.color.ReadDirect() == red) || (r != t.nil_ && r.color.ReadDirect() == red) {
			return 0, fmt.Errorf("shadowtree: red node %d has red child", n.key)
		}
	}
	lh, err := t.check(l, lo, &n.key)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(r, &n.key, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("shadowtree: black-height mismatch at %d", n.key)
	}
	if c == black {
		lh++
	}
	return lh, nil
}
