package shadowtree

import (
	"tboost/internal/rwstm"
	"tboost/internal/stm"
)

// readSetProbe exposes the rwstm read-set size for assertions about
// per-field logging overhead.
func readSetProbe(tx *stm.Tx) int { return rwstm.ReadSetSize(tx) }
