package histories

import (
	"strings"
	"testing"
	"testing/quick"
)

func call(m string, arg int64, val int64, ok bool) Call {
	return Call{Method: m, Args: []int64{arg}, Resp: Resp{Val: val, OK: ok}}
}

func TestSetSpecBasics(t *testing.T) {
	s := SetSpec{}.Init()
	r, s1, ok := s.Apply("add", []int64{3})
	if !ok || !r.OK {
		t.Fatalf("add(3) = %v,%v", r, ok)
	}
	r, _, ok = s1.Apply("add", []int64{3})
	if !ok || r.OK {
		t.Fatalf("duplicate add(3) = %v,%v", r, ok)
	}
	r, s2, _ := s1.Apply("remove", []int64{3})
	if !r.OK {
		t.Fatal("remove(3) = false")
	}
	if !s2.Equal(s) {
		t.Fatal("add;remove != initial state")
	}
	r, _, _ = s1.Apply("contains", []int64{3})
	if !r.OK {
		t.Fatal("contains(3) = false on {3}")
	}
	if _, _, ok := s.Apply("frobnicate", []int64{1}); ok {
		t.Fatal("unknown method legal")
	}
	if _, _, ok := s.Apply("add", nil); ok {
		t.Fatal("arity violation legal")
	}
}

func TestPQSpecBasics(t *testing.T) {
	s := PQSpec{}.Init()
	_, s, _ = s.Apply("add", []int64{5})
	_, s, _ = s.Apply("add", []int64{1})
	_, s, _ = s.Apply("add", []int64{5}) // duplicate keys allowed
	r, s, ok := s.Apply("removeMin", nil)
	if !ok || !r.OK || r.Val != 1 {
		t.Fatalf("removeMin = %v", r)
	}
	r, _, _ = s.Apply("min", nil)
	if !r.OK || r.Val != 5 {
		t.Fatalf("min = %v", r)
	}
	r, s, _ = s.Apply("removeMin", nil)
	if r.Val != 5 {
		t.Fatalf("removeMin = %v", r)
	}
	r, s, _ = s.Apply("removeMin", nil)
	if r.Val != 5 {
		t.Fatalf("removeMin = %v", r)
	}
	r, _, _ = s.Apply("removeMin", nil)
	if r.OK {
		t.Fatal("removeMin on empty returned ok")
	}
}

func TestQueueSpecBasics(t *testing.T) {
	s := QueueSpec{}.Init()
	if _, _, ok := s.Apply("take", nil); ok {
		t.Fatal("take on empty must be illegal (blocking)")
	}
	_, s, _ = s.Apply("offer", []int64{1})
	_, s, _ = s.Apply("offer", []int64{2})
	r, s, ok := s.Apply("take", nil)
	if !ok || r.Val != 1 {
		t.Fatalf("take = %v,%v", r, ok)
	}
	r, _, _ = s.Apply("take", nil)
	if r.Val != 2 {
		t.Fatalf("take = %v", r)
	}
}

func TestIDGenSpecBasics(t *testing.T) {
	s := IDGenSpec{}.Init()
	r, s1, ok := s.Apply("assignID", []int64{3})
	if !ok || r.Val != 3 {
		t.Fatalf("assignID = %v,%v", r, ok)
	}
	if _, _, ok := s1.Apply("assignID", []int64{3}); ok {
		t.Fatal("assigning a used ID is legal")
	}
	_, s2, ok := s1.Apply("releaseID", []int64{3})
	if !ok {
		t.Fatal("releaseID(3) illegal")
	}
	if !s2.Equal(s) {
		t.Fatal("assign;release != initial")
	}
	if _, _, ok := s.Apply("releaseID", []int64{9}); ok {
		t.Fatal("releasing an unused ID is legal")
	}
}

// TestPaperSerializableExample reproduces §5.1's strictly serializable
// history: A inserts 3, B reads it, B commits before A — wait, in the paper
// A's insert precedes B's contains and the history commits B then A and is
// NOT serializable; the serializable variant commits A first. Both are
// checked.
func TestPaperSerializableExample(t *testing.T) {
	specs := map[string]Spec{"list": SetSpec{}}
	// Serializable: A commits before B.
	good := History{
		{Kind: EvInit, Tx: 1},
		{Kind: EvInit, Tx: 2},
		{Kind: EvCall, Tx: 1, Object: "list", Call: call("add", 3, 0, true)},
		{Kind: EvCall, Tx: 2, Object: "list", Call: call("contains", 3, 0, true)},
		{Kind: EvCommit, Tx: 1},
		{Kind: EvCommit, Tx: 2},
	}
	if err := CheckStrictSerializability(good, specs); err != nil {
		t.Fatalf("paper's serializable history rejected: %v", err)
	}
	// Not serializable: commit order places B before A, yet B observed A's
	// insert.
	bad := History{
		{Kind: EvInit, Tx: 1},
		{Kind: EvInit, Tx: 2},
		{Kind: EvCall, Tx: 1, Object: "list", Call: call("add", 3, 0, true)},
		{Kind: EvCall, Tx: 2, Object: "list", Call: call("contains", 3, 0, true)},
		{Kind: EvCommit, Tx: 2},
		{Kind: EvCommit, Tx: 1},
	}
	err := CheckStrictSerializability(bad, specs)
	if err == nil {
		t.Fatal("paper's non-serializable history accepted")
	}
	if !strings.Contains(err.Error(), "contains") {
		t.Fatalf("error does not pinpoint the call: %v", err)
	}
}

func TestAbortedTransactionsInvisible(t *testing.T) {
	// Theorem 5.4: an aborted transaction's calls must not affect the
	// committed replay.
	specs := map[string]Spec{"set": SetSpec{}}
	h := History{
		{Kind: EvInit, Tx: 1},
		{Kind: EvCall, Tx: 1, Object: "set", Call: call("add", 7, 0, true)},
		{Kind: EvAbort, Tx: 1},
		{Kind: EvCall, Tx: 1, Object: "set", Call: call("remove", 7, 0, true)}, // inverse
		{Kind: EvAborted, Tx: 1},
		{Kind: EvInit, Tx: 2},
		{Kind: EvCall, Tx: 2, Object: "set", Call: call("add", 7, 0, true)}, // fresh add must succeed
		{Kind: EvCommit, Tx: 2},
	}
	if err := CheckStrictSerializability(h, specs); err != nil {
		t.Fatal(err)
	}
	finals, err := FinalStates(h, specs)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := SetSpec{}.Init().Apply("add", []int64{7})
	_ = want
	r, _, _ := finals["set"].Apply("contains", []int64{7})
	if !r.OK {
		t.Fatal("final state lost committed add")
	}
	if len(h.Aborted()) != 1 || !h.Aborted()[1] {
		t.Fatal("Aborted() bookkeeping wrong")
	}
}

func TestRestrictAndCommitOrder(t *testing.T) {
	h := History{
		{Kind: EvInit, Tx: 1},
		{Kind: EvInit, Tx: 2},
		{Kind: EvCall, Tx: 1, Object: "a", Call: call("add", 1, 0, true)},
		{Kind: EvCall, Tx: 2, Object: "b", Call: call("add", 2, 0, true)},
		{Kind: EvCommit, Tx: 2},
		{Kind: EvCommit, Tx: 1},
	}
	if got := h.CommitOrder(); len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("CommitOrder = %v", got)
	}
	if got := h.Restrict(1); len(got) != 3 {
		t.Fatalf("Restrict(1) = %d events", len(got))
	}
	if got := h.RestrictObject("b"); len(got) != 1 || got[0].Call.Args[0] != 2 {
		t.Fatalf("RestrictObject(b) = %v", got)
	}
	if got := h.Committed(); len(got) != 6 {
		t.Fatalf("Committed lost events: %d", len(got))
	}
}

// --- Commutativity tables ---

// setStateWith builds a set state containing the given keys.
func setStateWith(keys ...int64) State {
	s := SetSpec{}.Init()
	for _, k := range keys {
		_, s, _ = s.Apply("add", []int64{k})
	}
	return s
}

func TestFig1CommutativityTable(t *testing.T) {
	// add(x)/false <=> add(y)/false, x != y (on a state containing both)
	s := setStateWith(1, 2)
	if !Commute(s, call("add", 1, 0, false), call("add", 2, 0, false)) {
		t.Error("add(x)/false should commute with add(y)/false")
	}
	// add(x)/true <=> add(y)/true for x != y (fresh keys)
	s = SetSpec{}.Init()
	if !Commute(s, call("add", 1, 0, true), call("add", 2, 0, true)) {
		t.Error("add(1)/true should commute with add(2)/true")
	}
	// remove(x)/false <=> remove(y)/false
	if !Commute(s, call("remove", 1, 0, false), call("remove", 2, 0, false)) {
		t.Error("remove(x)/false should commute with remove(y)/false")
	}
	// add(x)/false <=> remove(x)/false: impossible to witness on one state
	// (add fails iff present, remove fails iff absent) — the table row is
	// about *calls on different states*; on any single state the pair is
	// never jointly legal, which Commute reports as non-commuting input.
	// Check instead: contains(x)/false <=> remove(x)/false (both need x absent).
	if !Commute(s, call("contains", 1, 0, false), call("remove", 1, 0, false)) {
		t.Error("contains(x)/false should commute with remove(x)/false")
	}
	// Non-commuting pairs:
	if Commute(s, call("add", 1, 0, true), call("remove", 1, 0, true)) {
		t.Error("add(x)/true must NOT commute with remove(x)/true")
	}
	if Commute(s, call("add", 1, 0, true), call("contains", 1, 0, false)) {
		t.Error("add(x)/true must NOT commute with contains(x)/false")
	}
	s = setStateWith(1)
	if Commute(s, call("remove", 1, 0, true), call("contains", 1, 0, true)) {
		t.Error("remove(x)/true must NOT commute with contains(x)/true")
	}
}

func TestQuickSetDisjointKeysAlwaysCommute(t *testing.T) {
	// Property: on any state, any two legal Set calls with distinct keys
	// commute (the justification for per-key abstract locks).
	f := func(keys []int64, x, y int64, m1, m2 uint8) bool {
		if x == y {
			return true
		}
		s := setStateWith(keys...)
		methods := []string{"add", "remove", "contains"}
		c1m := methods[int(m1)%3]
		c2m := methods[int(m2)%3]
		// Determine the legal responses on this state.
		r1, _, _ := s.Apply(c1m, []int64{x})
		r2, _, _ := s.Apply(c2m, []int64{y})
		c1 := Call{Method: c1m, Args: []int64{x}, Resp: r1}
		c2 := Call{Method: c2m, Args: []int64{y}, Resp: r2}
		return Commute(s, c1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFig4PQCommutativity(t *testing.T) {
	// add(x) <=> add(y) always (multiset).
	s := PQSpec{}.Init()
	if !Commute(s, Call{Method: "add", Args: []int64{3}, Resp: Resp{OK: true}},
		Call{Method: "add", Args: []int64{5}, Resp: Resp{OK: true}}) {
		t.Error("pq add/add should commute")
	}
	// add(small) does not commute with removeMin that would return it.
	_, s1, _ := s.Apply("add", []int64{10})
	if Commute(s1, Call{Method: "add", Args: []int64{1}, Resp: Resp{OK: true}},
		Call{Method: "removeMin", Resp: Resp{Val: 10, OK: true}}) {
		t.Error("pq add(1) must not commute with removeMin()/10")
	}
	// add(large) DOES commute with removeMin returning the smaller min.
	if !Commute(s1, Call{Method: "add", Args: []int64{99}, Resp: Resp{OK: true}},
		Call{Method: "removeMin", Resp: Resp{Val: 10, OK: true}}) {
		t.Error("pq add(99) should commute with removeMin()/10")
	}
}

func TestFig8IDGenCommutativity(t *testing.T) {
	s := IDGenSpec{}.Init()
	// assignID()/x <=> assignID()/y for x != y.
	if !Commute(s, Call{Method: "assignID", Args: []int64{1}, Resp: Resp{Val: 1, OK: true}},
		Call{Method: "assignID", Args: []int64{2}, Resp: Resp{Val: 2, OK: true}}) {
		t.Error("assignID/1 should commute with assignID/2")
	}
	// assignID()/x does not commute with assignID()/x (same ID twice is
	// never jointly legal).
	if Commute(s, Call{Method: "assignID", Args: []int64{1}, Resp: Resp{Val: 1, OK: true}},
		Call{Method: "assignID", Args: []int64{1}, Resp: Resp{Val: 1, OK: true}}) {
		t.Error("assignID/x must not commute with assignID/x")
	}
	// releaseID(x) commutes with assignID()/y for y != x.
	_, s1, _ := s.Apply("assignID", []int64{1})
	if !Commute(s1, Call{Method: "releaseID", Args: []int64{1}, Resp: Resp{Val: 1, OK: true}},
		Call{Method: "assignID", Args: []int64{2}, Resp: Resp{Val: 2, OK: true}}) {
		t.Error("releaseID(1) should commute with assignID/2")
	}
}

// --- Inverses ---

func TestFig1InverseTable(t *testing.T) {
	cases := []struct {
		state State
		call  Call
	}{
		{SetSpec{}.Init(), call("add", 1, 0, true)},
		{setStateWith(1), call("add", 1, 0, false)},
		{setStateWith(1), call("remove", 1, 0, true)},
		{SetSpec{}.Init(), call("remove", 1, 0, false)},
		{setStateWith(1), call("contains", 1, 0, true)},
		{SetSpec{}.Init(), call("contains", 1, 0, false)},
	}
	for _, c := range cases {
		inv := SetInverse(c.call)
		if !InverseRestores(c.state, c.call, inv) {
			t.Errorf("inverse of %v (%v) does not restore state %v", c.call, inv, c.state)
		}
	}
}

func TestQuickSetInverseAlwaysRestores(t *testing.T) {
	f := func(keys []int64, x int64, m uint8) bool {
		s := setStateWith(keys...)
		methods := []string{"add", "remove", "contains"}
		method := methods[int(m)%3]
		r, _, _ := s.Apply(method, []int64{x})
		c := Call{Method: method, Args: []int64{x}, Resp: r}
		return InverseRestores(s, c, SetInverse(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPQInverse(t *testing.T) {
	s := PQSpec{}.Init()
	_, s, _ = s.Apply("add", []int64{4})
	c := Call{Method: "removeMin", Resp: Resp{Val: 4, OK: true}}
	inv, ok := PQInverse(c)
	if !ok || !InverseRestores(s, c, inv) {
		t.Fatal("removeMin inverse does not restore")
	}
	cMin := Call{Method: "min", Resp: Resp{Val: 4, OK: true}}
	inv, ok = PQInverse(cMin)
	if !ok || !InverseRestores(s, cMin, inv) {
		t.Fatal("min needs noop inverse")
	}
	if _, ok := PQInverse(Call{Method: "add", Args: []int64{1}, Resp: Resp{OK: true}}); ok {
		t.Fatal("pq add must report no spec-level inverse")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			r.RecordCall(1, "set", "add", []int64{int64(i)}, Resp{OK: true})
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		r.RecordCall(2, "set", "remove", []int64{int64(i)}, Resp{OK: false})
	}
	<-done
	if r.Len() != 200 {
		t.Fatalf("Len = %d", r.Len())
	}
	h := r.History()
	if len(h.Restrict(1)) != 100 || len(h.Restrict(2)) != 100 {
		t.Fatal("Restrict lost events")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvInit: "init", EvCall: "call", EvCommit: "commit",
		EvAbort: "abort", EvAborted: "aborted", EventKind(9): "kind(9)",
	} {
		if k.String() != want {
			t.Errorf("String(%d) = %q", k, k.String())
		}
	}
}

func TestMissingSpecIsError(t *testing.T) {
	h := History{
		{Kind: EvCall, Tx: 1, Object: "mystery", Call: call("add", 1, 0, true)},
		{Kind: EvCommit, Tx: 1},
	}
	if err := CheckStrictSerializability(h, map[string]Spec{}); err == nil {
		t.Fatal("missing spec accepted")
	}
}
