package histories

import (
	"fmt"
	"sort"
)

// State is an immutable abstract state of a sequential specification.
// Apply executes one method call's invocation, returning the response the
// specification demands and the successor state. legal is false when the
// invocation itself is not permitted in this state (none of the collection
// specs here have preconditions, but e.g. a bounded queue's offer on a full
// queue would be illegal rather than blocking in the sequential model).
type State interface {
	Apply(method string, args []int64) (resp Resp, next State, legal bool)
	// Equal reports whether two states are indistinguishable — the
	// "defines the same state" relation of Definition 5.2, decidable
	// here because the specs are finite-state value types.
	Equal(other State) bool
	String() string
}

// Spec names a specification and produces initial states.
type Spec interface {
	Name() string
	Init() State
}

// --- Set specification (Fig. 1) ---

// SetSpec is the abstract Set of integers: add/remove/contains.
type SetSpec struct{}

func (SetSpec) Name() string { return "Set" }

// Init returns the empty set.
func (SetSpec) Init() State { return setState{} }

type setState map[int64]struct{}

func (s setState) clone() setState {
	c := make(setState, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

func (s setState) Apply(method string, args []int64) (Resp, State, bool) {
	if method == "countRange" {
		// Range aggregate over an ordered integer set: Val is the number of
		// members in [args[0], args[1]]. Used by the deadlock-storm chaos
		// scenario to check that interval demands serialize range queries
		// against the updates inside their span.
		if len(args) != 2 {
			return Resp{}, s, false
		}
		var n int64
		for k := range s {
			if k >= args[0] && k <= args[1] {
				n++
			}
		}
		return Resp{Val: n, OK: true}, s, true
	}
	if len(args) != 1 {
		return Resp{}, s, false
	}
	k := args[0]
	_, present := s[k]
	switch method {
	case "add":
		if present {
			return Resp{OK: false}, s, true
		}
		c := s.clone()
		c[k] = struct{}{}
		return Resp{OK: true}, c, true
	case "remove":
		if !present {
			return Resp{OK: false}, s, true
		}
		c := s.clone()
		delete(c, k)
		return Resp{OK: true}, c, true
	case "contains":
		return Resp{OK: present}, s, true
	default:
		return Resp{}, s, false
	}
}

func (s setState) Equal(other State) bool {
	o, ok := other.(setState)
	if !ok || len(o) != len(s) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

func (s setState) String() string {
	keys := make([]int64, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprintf("set%v", keys)
}

// --- Priority queue specification (Fig. 4) ---

// PQSpec is the abstract priority queue: a multiset of keys with add,
// removeMin and min. Duplicates allowed.
type PQSpec struct{}

func (PQSpec) Name() string { return "PQueue" }

// Init returns the empty queue.
func (PQSpec) Init() State { return pqState{} }

type pqState []int64 // kept sorted ascending

func (s pqState) Apply(method string, args []int64) (Resp, State, bool) {
	switch method {
	case "add":
		if len(args) != 1 {
			return Resp{}, s, false
		}
		c := make(pqState, len(s), len(s)+1)
		copy(c, s)
		c = append(c, args[0])
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		return Resp{OK: true}, c, true
	case "removeMin":
		if len(s) == 0 {
			return Resp{OK: false}, s, true
		}
		c := make(pqState, len(s)-1)
		copy(c, s[1:])
		return Resp{Val: s[0], OK: true}, c, true
	case "min":
		if len(s) == 0 {
			return Resp{OK: false}, s, true
		}
		return Resp{Val: s[0], OK: true}, s, true
	default:
		return Resp{}, s, false
	}
}

func (s pqState) Equal(other State) bool {
	o, ok := other.(pqState)
	if !ok || len(o) != len(s) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s pqState) String() string { return fmt.Sprintf("pq%v", []int64(s)) }

// --- FIFO queue specification (Fig. 6, unbounded sequential model) ---

// QueueSpec is the abstract FIFO queue: offer appends, take removes the
// oldest element (illegal on empty in the sequential model — blocking is a
// scheduling concern, not a specification one).
type QueueSpec struct{}

func (QueueSpec) Name() string { return "Queue" }

// Init returns the empty queue.
func (QueueSpec) Init() State { return queueState{} }

type queueState []int64

func (s queueState) Apply(method string, args []int64) (Resp, State, bool) {
	switch method {
	case "offer":
		if len(args) != 1 {
			return Resp{}, s, false
		}
		c := make(queueState, len(s), len(s)+1)
		copy(c, s)
		return Resp{OK: true}, append(c, args[0]), true
	case "take":
		if len(s) == 0 {
			return Resp{}, s, false // take blocks; never legal on empty
		}
		c := make(queueState, len(s)-1)
		copy(c, s[1:])
		return Resp{Val: s[0], OK: true}, c, true
	default:
		return Resp{}, s, false
	}
}

func (s queueState) Equal(other State) bool {
	o, ok := other.(queueState)
	if !ok || len(o) != len(s) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s queueState) String() string { return fmt.Sprintf("queue%v", []int64(s)) }

// --- Unique ID generator specification (Fig. 8) ---

// IDGenSpec is the abstract pool of unused IDs: assignID returns any unused
// ID; releaseID returns one. The sequential model tracks the used set.
type IDGenSpec struct{}

func (IDGenSpec) Name() string { return "IDGen" }

// Init returns the all-unused pool.
func (IDGenSpec) Init() State { return idgenState{} }

type idgenState map[int64]struct{} // used IDs

func (s idgenState) clone() idgenState {
	c := make(idgenState, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

func (s idgenState) Apply(method string, args []int64) (Resp, State, bool) {
	switch method {
	case "assignID":
		// Nondeterministic in the abstract; the checker verifies a
		// *recorded* response, so the recorded ID is in args[0] and
		// the call is legal iff that ID was unused.
		if len(args) != 1 {
			return Resp{}, s, false
		}
		if _, used := s[args[0]]; used {
			return Resp{}, s, false
		}
		c := s.clone()
		c[args[0]] = struct{}{}
		return Resp{Val: args[0], OK: true}, c, true
	case "releaseID":
		if len(args) != 1 {
			return Resp{}, s, false
		}
		if _, used := s[args[0]]; !used {
			return Resp{}, s, false
		}
		c := s.clone()
		delete(c, args[0])
		return Resp{Val: args[0], OK: true}, c, true
	default:
		return Resp{}, s, false
	}
}

func (s idgenState) Equal(other State) bool {
	o, ok := other.(idgenState)
	if !ok || len(o) != len(s) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

func (s idgenState) String() string {
	keys := make([]int64, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return fmt.Sprintf("used%v", keys)
}
