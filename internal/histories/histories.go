// Package histories implements the paper's formal model (§5): events,
// histories, sequential specifications, and checkers for strict
// serializability (Theorem 5.3), the invisibility of aborted transactions
// (Theorem 5.4), method-call commutativity (Definition 5.4), and inverses
// (Definition 5.3).
//
// Tests use the package two ways: concurrent runs over boosted objects are
// recorded and checked against a sequential specification in commit order,
// and the commutativity/inverse tables of Figures 1, 4, 6 and 8 are
// verified mechanically against the specs.
package histories

import (
	"fmt"
	"sync"
)

// EventKind enumerates the event alphabet of §5.1.
type EventKind int

const (
	// EvInit is ⟨T init⟩.
	EvInit EventKind = iota
	// EvCall is an invocation ⟨T, x.m(v)⟩ paired with its response ⟨T, r⟩.
	// The model treats invocation/response pairs as atomic method calls
	// (the base objects are linearizable), so the recorder logs them as
	// one event.
	EvCall
	// EvCommit is ⟨T commit⟩.
	EvCommit
	// EvAbort is ⟨T abort⟩ (the decision to abort; inverses follow).
	EvAbort
	// EvAborted is ⟨T aborted⟩ (rollback complete).
	EvAborted
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case EvInit:
		return "init"
	case EvCall:
		return "call"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvAborted:
		return "aborted"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one history event. Seq and RO extend the paper's alphabet for
// the multi-version read path: a commit event may carry the transaction's
// global commit sequence number (its serialization position in the
// versioned kernel), and a read-only transaction's commit carries the
// sequence number its snapshot was pinned at instead — the point in the
// committed prefix at which all its reads logically occurred.
type Event struct {
	Kind   EventKind
	Tx     uint64
	Object string // which object the call addresses ("" for tx events)
	Call   Call   // valid when Kind == EvCall
	Seq    uint64 // commit sequence (writers) or pinned snapshot (readers)
	RO     bool   // the transaction was a read-only snapshot transaction
}

// Call is a method call: invocation (method + args) plus response.
type Call struct {
	Method string
	Args   []int64
	Resp   Resp
}

// Resp is a method response: a value and/or a boolean, covering the
// collection APIs modeled here.
type Resp struct {
	Val int64
	OK  bool
}

func (c Call) String() string {
	return fmt.Sprintf("%s(%v)/%v,%v", c.Method, c.Args, c.Resp.Val, c.Resp.OK)
}

// History is a finite sequence of events (Definition §5.1).
type History []Event

// Restrict returns the subhistory of transaction tx (h|T).
func (h History) Restrict(tx uint64) History {
	var out History
	for _, e := range h {
		if e.Tx == tx {
			out = append(out, e)
		}
	}
	return out
}

// RestrictObject returns the subhistory addressed to the named object (h|x).
func (h History) RestrictObject(obj string) History {
	var out History
	for _, e := range h {
		if e.Kind == EvCall && e.Object == obj {
			out = append(out, e)
		}
	}
	return out
}

// CommitOrder returns the transaction ids of committed transactions in the
// order their commit events appear.
func (h History) CommitOrder() []uint64 {
	var out []uint64
	for _, e := range h {
		if e.Kind == EvCommit {
			out = append(out, e.Tx)
		}
	}
	return out
}

// Committed returns the subhistory of committed transactions, preserving
// event order (committed(h) in the paper).
func (h History) Committed() History {
	committed := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvCommit {
			committed[e.Tx] = true
		}
	}
	var out History
	for _, e := range h {
		if committed[e.Tx] {
			out = append(out, e)
		}
	}
	return out
}

// ReadOnly returns the set of transactions that committed as read-only
// snapshot transactions (recorded with SnapshotCommit).
func (h History) ReadOnly() map[uint64]bool {
	out := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvCommit && e.RO {
			out[e.Tx] = true
		}
	}
	return out
}

// Aborted returns the set of transactions that finished aborting.
func (h History) Aborted() map[uint64]bool {
	out := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvAborted {
			out[e.Tx] = true
		}
	}
	return out
}

// Recorder collects a history from concurrent transactions. All methods are
// safe for concurrent use. Calls should be recorded while the caller still
// holds the abstract locks covering them, so that recorded order is
// consistent with the serialization order of conflicting calls.
type Recorder struct {
	mu     sync.Mutex
	events History
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) append(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Init records ⟨tx init⟩.
func (r *Recorder) Init(tx uint64) { r.append(Event{Kind: EvInit, Tx: tx}) }

// RecordCall records a completed method call on obj by tx.
func (r *Recorder) RecordCall(tx uint64, obj, method string, args []int64, resp Resp) {
	r.append(Event{Kind: EvCall, Tx: tx, Object: obj, Call: Call{Method: method, Args: args, Resp: resp}})
}

// Commit records ⟨tx commit⟩. Call from stm's AtCommit hook so commit events
// appear in serialization order.
func (r *Recorder) Commit(tx uint64) { r.append(Event{Kind: EvCommit, Tx: tx}) }

// CommitAt records ⟨tx commit⟩ stamped with the transaction's global commit
// sequence number (stm.Tx.CommitSeq, available inside AtCommit handlers).
// Histories recorded with CommitAt can be checked with CheckSnapshotReads.
func (r *Recorder) CommitAt(tx uint64, seq uint64) {
	r.append(Event{Kind: EvCommit, Tx: tx, Seq: seq})
}

// SnapshotCommit records the commit of a read-only snapshot transaction,
// stamped with the sequence number its snapshot was pinned at
// (stm.Tx.SnapshotSeq). Its reads are checked against the committed prefix
// up to pin, not against the final state — see CheckSnapshotReads.
func (r *Recorder) SnapshotCommit(tx uint64, pin uint64) {
	r.append(Event{Kind: EvCommit, Tx: tx, Seq: pin, RO: true})
}

// Abort records ⟨tx abort⟩.
func (r *Recorder) Abort(tx uint64) { r.append(Event{Kind: EvAbort, Tx: tx}) }

// Aborted records ⟨tx aborted⟩.
func (r *Recorder) Aborted(tx uint64) { r.append(Event{Kind: EvAborted, Tx: tx}) }

// History returns a snapshot of the recorded history.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(History, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}
