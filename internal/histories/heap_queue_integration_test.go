package histories

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// TestBoostedHeapStrictlySerializable drives the boosted priority queue
// concurrently (with deliberate aborts) and replays the committed history
// in commit order against the PQueue specification.
func TestBoostedHeapStrictlySerializable(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    core.HeapMode
	}{{"rwlocked", core.RWLocked}, {"exclusive", core.Exclusive}} {
		t.Run(mode.name, func(t *testing.T) {
			h := core.NewHeap[struct{}](mode.m)
			rec := NewRecorder()
			sys := stm.NewSystem(stm.Config{LockTimeout: 300 * time.Millisecond})
			giveUp := errors.New("deliberate abort")
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewPCG(uint64(g), 99))
					for i := 0; i < 60; i++ {
						fail := r.IntN(4) == 0
						ops := make([][2]int64, 3)
						for j := range ops {
							ops[j] = [2]int64{int64(r.IntN(3)), int64(r.IntN(50))}
						}
						_ = sys.Atomic(func(tx *stm.Tx) error {
							for _, op := range ops {
								switch op[0] {
								case 0:
									h.Add(tx, op[1], struct{}{})
									rec.RecordCall(tx.ID(), "pq", "add", []int64{op[1]}, Resp{OK: true})
								case 1:
									k, _, ok := h.RemoveMin(tx)
									rec.RecordCall(tx.ID(), "pq", "removeMin", nil, Resp{Val: k, OK: ok})
								default:
									k, _, ok := h.Min(tx)
									rec.RecordCall(tx.ID(), "pq", "min", nil, Resp{Val: k, OK: ok})
								}
							}
							if fail {
								return giveUp
							}
							tx.AtCommit(func() { rec.Commit(tx.ID()) })
							return nil
						})
					}
				}()
			}
			wg.Wait()
			specs := map[string]Spec{"pq": PQSpec{}}
			h2 := rec.History()
			if err := CheckStrictSerializability(h2, specs); err != nil {
				t.Fatalf("boosted heap history not serializable: %v", err)
			}
			// Theorem 5.4 on the concrete object: draining the quiescent
			// base heap must match the committed history's final multiset.
			finals, err := FinalStates(h2, specs)
			if err != nil {
				t.Fatal(err)
			}
			var want []int64
			st := finals["pq"]
			for {
				r, next, _ := st.Apply("removeMin", nil)
				if !r.OK {
					break
				}
				want = append(want, r.Val)
				st = next
			}
			got := h.DrainQuiescent()
			if len(got) != len(want) {
				t.Fatalf("drained %d keys, history implies %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("drain[%d] = %d, history implies %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestBoostedQueueFIFOHistory drives the pipeline queue SPSC (its intended
// topology) with aborts on both sides and replays the committed history
// against the FIFO specification.
func TestBoostedQueueFIFOHistory(t *testing.T) {
	q := core.NewQueueTimeout[int64](8, 5*time.Second)
	rec := NewRecorder()
	sys := stm.NewSystem(stm.Config{LockTimeout: 300 * time.Millisecond})
	flake := errors.New("flake")
	const n = 150
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		r := rand.New(rand.NewPCG(1, 1))
		for i := int64(0); i < n; i++ {
			for {
				fail := r.IntN(5) == 0
				err := sys.Atomic(func(tx *stm.Tx) error {
					q.Offer(tx, i)
					rec.RecordCall(tx.ID(), "queue", "offer", []int64{i}, Resp{OK: true})
					if fail {
						return flake
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err == nil {
					break
				}
			}
		}
	}()
	go func() { // consumer
		defer wg.Done()
		r := rand.New(rand.NewPCG(2, 2))
		for got := 0; got < n; {
			fail := r.IntN(5) == 0
			err := sys.Atomic(func(tx *stm.Tx) error {
				v := q.Take(tx)
				rec.RecordCall(tx.ID(), "queue", "take", nil, Resp{Val: v, OK: true})
				if fail {
					return flake
				}
				tx.AtCommit(func() { rec.Commit(tx.ID()) })
				return nil
			})
			if err == nil {
				got++
			}
		}
	}()
	wg.Wait()
	if err := CheckStrictSerializability(rec.History(), map[string]Spec{"queue": QueueSpec{}}); err != nil {
		t.Fatalf("queue history not serializable: %v", err)
	}
	if q.LenCommitted() != 0 {
		t.Fatalf("%d items left committed", q.LenCommitted())
	}
}

// TestBoostedUniqueIDHistory validates the §3.4 story end to end: recorded
// assignID calls (with aborts whose releases are post-abort disposables)
// replay against the IDGen specification.
func TestBoostedUniqueIDHistory(t *testing.T) {
	u := core.NewUniqueID()
	rec := NewRecorder()
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	giveUp := errors.New("abort")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 100; i++ {
				fail := r.IntN(3) == 0
				_ = sys.Atomic(func(tx *stm.Tx) error {
					id := u.AssignID(tx)
					rec.RecordCall(tx.ID(), "idgen", "assignID", []int64{id}, Resp{Val: id, OK: true})
					if fail {
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if err := CheckStrictSerializability(rec.History(), map[string]Spec{"idgen": IDGenSpec{}}); err != nil {
		t.Fatalf("idgen history not serializable: %v", err)
	}
}
