package histories

import (
	"strings"
	"testing"
)

func opLogHistory() History {
	r := NewRecorder()
	r.Init(1)
	r.RecordCall(1, "Set", "add", []int64{1}, Resp{OK: true})
	r.RecordCall(1, "Set", "add", []int64{2}, Resp{OK: true})
	r.Commit(1)
	r.Init(2)
	r.RecordCall(2, "Set", "contains", []int64{1}, Resp{OK: true})
	r.Abort(2)
	r.Aborted(2)
	r.Init(3)
	r.RecordCall(3, "Set", "remove", []int64{2}, Resp{OK: true})
	r.Commit(3)
	return r.History()
}

var opLogSpecs = map[string]Spec{"Set": SetSpec{}}

func TestCheckOpLogAccepts(t *testing.T) {
	ops := []OpRec{
		{Tx: 1, Object: "Set", Method: "add", Key: 1},
		{Tx: 1, Object: "Set", Method: "add", Key: 2},
		{Tx: 3, Object: "Set", Method: "remove", Key: 2},
	}
	if err := CheckOpLog(opLogHistory(), ops, opLogSpecs); err != nil {
		t.Fatalf("valid op log rejected: %v", err)
	}
}

func TestCheckOpLogRejectsUncommittedTx(t *testing.T) {
	ops := []OpRec{{Tx: 2, Object: "Set", Method: "remove", Key: 1}}
	err := CheckOpLog(opLogHistory(), ops, opLogSpecs)
	if err == nil || !strings.Contains(err.Error(), "never committed") {
		t.Fatalf("op from aborted tx not rejected: %v", err)
	}
}

func TestCheckOpLogRejectsIneffectiveOp(t *testing.T) {
	// remove(5) commits fine in the history model but is a no-op the fusion
	// pass should have annihilated against the observed-absent key.
	ops := []OpRec{
		{Tx: 1, Object: "Set", Method: "add", Key: 1},
		{Tx: 1, Object: "Set", Method: "add", Key: 2},
		{Tx: 1, Object: "Set", Method: "remove", Key: 5},
		{Tx: 3, Object: "Set", Method: "remove", Key: 2},
	}
	err := CheckOpLog(opLogHistory(), ops, opLogSpecs)
	if err == nil || !strings.Contains(err.Error(), "no-op") {
		t.Fatalf("ineffective op not rejected: %v", err)
	}
}

func TestCheckOpLogRejectsFinalStateDivergence(t *testing.T) {
	// Dropping tx 3's remove leaves key 2 in the op-log replay but not in
	// the committed history's final state.
	ops := []OpRec{
		{Tx: 1, Object: "Set", Method: "add", Key: 1},
		{Tx: 1, Object: "Set", Method: "add", Key: 2},
	}
	err := CheckOpLog(opLogHistory(), ops, opLogSpecs)
	if err == nil || !strings.Contains(err.Error(), "ends in") {
		t.Fatalf("final-state divergence not rejected: %v", err)
	}
}
