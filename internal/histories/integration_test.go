package histories

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// recordingSet wraps a boosted set so every call is recorded while the
// abstract lock is still held (the call happens first, then the record;
// both under the same lock, so record order = serialization order for
// conflicting calls).
type recordingSet struct {
	set *core.Set[int64]
	rec *Recorder
}

func (r recordingSet) add(tx *stm.Tx, k int64) bool {
	v := r.set.Add(tx, k)
	r.rec.RecordCall(tx.ID(), "set", "add", []int64{k}, Resp{OK: v})
	return v
}

func (r recordingSet) remove(tx *stm.Tx, k int64) bool {
	v := r.set.Remove(tx, k)
	r.rec.RecordCall(tx.ID(), "set", "remove", []int64{k}, Resp{OK: v})
	return v
}

func (r recordingSet) contains(tx *stm.Tx, k int64) bool {
	v := r.set.Contains(tx, k)
	r.rec.RecordCall(tx.ID(), "set", "contains", []int64{k}, Resp{OK: v})
	return v
}

// runRecordedWorkload drives a boosted set with concurrent multi-operation
// transactions (some deliberately aborting) and returns the recorded
// history.
func runRecordedWorkload(t *testing.T, s *core.Set[int64], goroutines, txPerG, opsPerTx, keyRange int) History {
	t.Helper()
	rec := NewRecorder()
	rs := recordingSet{set: s, rec: rec}
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	giveUp := errors.New("deliberate abort")
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 4242))
			for i := 0; i < txPerG; i++ {
				fail := r.IntN(4) == 0
				ops := make([][2]int64, opsPerTx) // (opcode, key)
				for j := range ops {
					ops[j] = [2]int64{int64(r.IntN(3)), int64(r.IntN(keyRange))}
				}
				err := sys.Atomic(func(tx *stm.Tx) error {
					rec.Init(tx.ID())
					for _, op := range ops {
						switch op[0] {
						case 0:
							rs.add(tx, op[1])
						case 1:
							rs.remove(tx, op[1])
						default:
							rs.contains(tx, op[1])
						}
					}
					if fail {
						tx.OnAbort(func() { rec.Aborted(tx.ID()) })
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return rec.History()
}

func TestBoostedSetStrictlySerializable(t *testing.T) {
	flavours := []struct {
		name string
		make func() *core.Set[int64]
	}{
		{"skiplist-keyed", core.NewSkipListSet},
		{"skiplist-coarse", core.NewSkipListSetCoarse},
		{"rbtree-coarse", core.NewRBTreeSet},
		{"hashset-keyed", core.NewHashSet},
		{"linkedlist-keyed", core.NewLinkedListSet},
	}
	specs := map[string]Spec{"set": SetSpec{}}
	for _, f := range flavours {
		t.Run(f.name, func(t *testing.T) {
			s := f.make()
			h := runRecordedWorkload(t, s, 8, 60, 4, 16)
			if err := CheckStrictSerializability(h, specs); err != nil {
				t.Fatalf("Theorem 5.3 violated: %v", err)
			}
			// Theorem 5.4: the base object's quiescent state equals the
			// committed history's final abstract state — aborted
			// transactions left no trace.
			finals, err := FinalStates(h, specs)
			if err != nil {
				t.Fatal(err)
			}
			for k := int64(0); k < 16; k++ {
				want, _, _ := finals["set"].Apply("contains", []int64{k})
				if got := s.Base().Contains(k); got != want.OK {
					t.Errorf("key %d: base=%v, committed history=%v", k, got, want.OK)
				}
			}
		})
	}
}

func TestBoostedSetSerializableUnderHighAbortRate(t *testing.T) {
	// Tiny key range + long transactions = heavy lock conflicts and many
	// timeout aborts; serializability must survive.
	s := core.NewSkipListSet()
	rec := NewRecorder()
	rs := recordingSet{set: s, rec: rec}
	sys := stm.NewSystem(stm.Config{LockTimeout: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 7))
			for i := 0; i < 40; i++ {
				err := sys.Atomic(func(tx *stm.Tx) error {
					for j := 0; j < 3; j++ {
						k := int64(r.IntN(4))
						if (g+j)%2 == 0 {
							rs.add(tx, k)
						} else {
							rs.remove(tx, k)
						}
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := CheckStrictSerializability(rec.History(), map[string]Spec{"set": SetSpec{}}); err != nil {
		t.Fatalf("high-contention run not serializable: %v", err)
	}
	if st := sys.Stats(); st.Aborts == 0 {
		t.Log("note: no aborts occurred; contention lower than intended")
	}
}
