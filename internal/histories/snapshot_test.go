package histories

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// TestSnapshotReadsMatchSequentialSpec is the snapshot oracle: concurrent
// writers stamped with their commit sequence numbers, concurrent read-only
// snapshot transactions stamped with their pins, and every snapshot read
// checked against the sequential specification replayed to exactly the
// reader's pinned prefix (satellite of the multi-version read path).
func TestSnapshotReadsMatchSequentialSpec(t *testing.T) {
	flavours := []struct {
		name string
		make func() *core.Set[int64]
	}{
		{"skiplist-keyed", core.NewSkipListSet},
		{"hashset-keyed", core.NewHashSet},
		{"skiplist-coarse", core.NewSkipListSetCoarse},
	}
	for _, f := range flavours {
		t.Run(f.name, func(t *testing.T) {
			s := f.make()
			rec := NewRecorder()
			rs := recordingSet{set: s, rec: rec}
			sys := stm.NewSystem(stm.Config{LockTimeout: 500 * time.Millisecond})
			// Activate versioning before any writer commits, so every
			// effective writer carries a commit sequence number the
			// snapshot checker can place (see CheckSnapshotReads).
			if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
				t.Fatal(err)
			}

			const keyRange = 16
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ { // writers
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewPCG(uint64(g), 99))
					for i := 0; i < 80; i++ {
						err := sys.Atomic(func(tx *stm.Tx) error {
							rec.Init(tx.ID())
							for j := 0; j < 3; j++ {
								k := int64(r.IntN(keyRange))
								if r.IntN(2) == 0 {
									rs.add(tx, k)
								} else {
									rs.remove(tx, k)
								}
							}
							tx.AtCommit(func() { rec.CommitAt(tx.ID(), tx.CommitSeq()) })
							return nil
						})
						if err != nil {
							t.Errorf("writer: %v", err)
							return
						}
					}
				}()
			}
			for g := 0; g < 4; g++ { // snapshot readers
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewPCG(uint64(g), 1234))
					for i := 0; i < 40; i++ {
						err := sys.AtomicRO(func(tx *stm.Tx) error {
							rec.Init(tx.ID())
							for j := 0; j < 5; j++ {
								rs.contains(tx, int64(r.IntN(keyRange)))
							}
							tx.AtCommit(func() { rec.SnapshotCommit(tx.ID(), tx.SnapshotSeq()) })
							return nil
						})
						if err != nil {
							t.Errorf("reader: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()

			h := rec.History()
			specs := map[string]Spec{"set": SetSpec{}}
			if err := CheckStrictSerializability(h, specs); err != nil {
				t.Fatalf("writer history not serializable: %v", err)
			}
			if err := CheckSnapshotReads(h, specs); err != nil {
				t.Fatalf("snapshot oracle violated: %v", err)
			}
			st := sys.Stats()
			if st.ROCommits == 0 {
				t.Fatal("no read-only commits recorded")
			}
			if st.ROAborts != 0 {
				t.Errorf("read-only transactions aborted: %d", st.ROAborts)
			}
			if st.ReaderLockDemands != 0 {
				t.Errorf("read-only transactions demanded %d abstract locks", st.ReaderLockDemands)
			}
		})
	}
}

// TestCheckSnapshotReadsCatchesTornRead pins the checker itself: a
// hand-built history whose reader observed a write from beyond its pin must
// be rejected.
func TestCheckSnapshotReadsCatchesTornRead(t *testing.T) {
	specs := map[string]Spec{"set": SetSpec{}}

	// Writer 1 (seq 1) adds 7; writer 2 (seq 2) removes 7. A reader pinned
	// at seq 1 must see 7 present.
	base := History{
		{Kind: EvCall, Tx: 1, Object: "set", Call: Call{Method: "add", Args: []int64{7}, Resp: Resp{OK: true}}},
		{Kind: EvCommit, Tx: 1, Seq: 1},
		{Kind: EvCall, Tx: 2, Object: "set", Call: Call{Method: "remove", Args: []int64{7}, Resp: Resp{OK: true}}},
		{Kind: EvCommit, Tx: 2, Seq: 2},
	}

	good := append(History{}, base...)
	good = append(good,
		Event{Kind: EvCall, Tx: 3, Object: "set", Call: Call{Method: "contains", Args: []int64{7}, Resp: Resp{OK: true}}},
		Event{Kind: EvCommit, Tx: 3, Seq: 1, RO: true},
	)
	if err := CheckSnapshotReads(good, specs); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}

	// The torn reader saw writer 2's removal despite its pin at seq 1.
	torn := append(History{}, base...)
	torn = append(torn,
		Event{Kind: EvCall, Tx: 4, Object: "set", Call: Call{Method: "contains", Args: []int64{7}, Resp: Resp{OK: false}}},
		Event{Kind: EvCommit, Tx: 4, Seq: 1, RO: true},
	)
	if err := CheckSnapshotReads(torn, specs); err == nil {
		t.Fatal("torn snapshot read not detected")
	}
}
