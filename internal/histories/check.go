package histories

import (
	"fmt"
)

// CheckStrictSerializability verifies Definition 5.1 in the form Theorem 5.3
// guarantees it: the committed transactions of h, executed sequentially in
// commit order against the sequential specification of each object, must
// reproduce every recorded response. specs maps object name to its
// specification; objects without a spec are an error.
//
// It returns nil if the history is strictly serializable in commit order,
// or an error pinpointing the first divergent method call.
func CheckStrictSerializability(h History, specs map[string]Spec) error {
	states := map[string]State{}
	state := func(obj string) (State, error) {
		if s, ok := states[obj]; ok {
			return s, nil
		}
		spec, ok := specs[obj]
		if !ok {
			return nil, fmt.Errorf("histories: no specification for object %q", obj)
		}
		s := spec.Init()
		states[obj] = s
		return s, nil
	}

	committed := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvCommit {
			committed[e.Tx] = true
		}
	}

	// Replay committed transactions' calls one transaction at a time, in
	// commit order.
	for _, tx := range h.CommitOrder() {
		for _, e := range h.Restrict(tx) {
			if e.Kind != EvCall {
				continue
			}
			s, err := state(e.Object)
			if err != nil {
				return err
			}
			resp, next, legal := s.Apply(e.Call.Method, e.Call.Args)
			if !legal {
				return fmt.Errorf("histories: tx %d: %s.%s is illegal in state %s",
					tx, e.Object, e.Call, s)
			}
			if resp != e.Call.Resp {
				return fmt.Errorf("histories: tx %d: %s.%s(%v) responded %v,%v but spec requires %v,%v in state %s",
					tx, e.Object, e.Call.Method, e.Call.Args,
					e.Call.Resp.Val, e.Call.Resp.OK, resp.Val, resp.OK, s)
			}
			states[e.Object] = next
		}
	}
	_ = committed
	return nil
}

// FinalStates replays the committed history in commit order and returns the
// final abstract state per object. Use to compare against the concrete base
// object's quiescent state (Theorem 5.4: aborted transactions contribute
// nothing).
func FinalStates(h History, specs map[string]Spec) (map[string]State, error) {
	if err := CheckStrictSerializability(h, specs); err != nil {
		return nil, err
	}
	states := map[string]State{}
	for obj, spec := range specs {
		states[obj] = spec.Init()
	}
	for _, tx := range h.CommitOrder() {
		for _, e := range h.Restrict(tx) {
			if e.Kind != EvCall {
				continue
			}
			_, next, _ := states[e.Object].Apply(e.Call.Method, e.Call.Args)
			states[e.Object] = next
		}
	}
	return states, nil
}

// Commute implements Definition 5.4 on a sampled state: method calls c1 and
// c2 commute at state s if both orders are legal, produce the recorded
// responses regardless of order, and define the same state. (The paper
// quantifies over all histories; callers sample states, which suffices to
// refute commutativity and to check the finite tables of Figs. 1/4/6/8 on
// representative states.)
func Commute(s State, c1, c2 Call) bool {
	r1a, s1, ok := s.Apply(c1.Method, c1.Args)
	if !ok {
		return false
	}
	r2a, s12, ok := s1.Apply(c2.Method, c2.Args)
	if !ok {
		return false
	}
	r2b, s2, ok := s.Apply(c2.Method, c2.Args)
	if !ok {
		return false
	}
	r1b, s21, ok := s2.Apply(c1.Method, c1.Args)
	if !ok {
		return false
	}
	return r1a == r1b && r2a == r2b && s12.Equal(s21)
}

// InverseRestores implements Definition 5.3 on a sampled state: applying
// call then inv from state s must return to a state equal to s. Calls whose
// recorded responses don't match the state (e.g. add(x)/true on a state
// already containing x) report false.
func InverseRestores(s State, call, inv Call) bool {
	r, s1, ok := s.Apply(call.Method, call.Args)
	if !ok || r != call.Resp {
		return false
	}
	if inv.Method == "noop" {
		return s1.Equal(s)
	}
	_, s2, ok := s1.Apply(inv.Method, inv.Args)
	if !ok {
		return false
	}
	return s2.Equal(s)
}

// SetInverse returns the inverse call for a Set method call per Fig. 1.
func SetInverse(c Call) Call {
	switch c.Method {
	case "add":
		if c.Resp.OK {
			return Call{Method: "remove", Args: c.Args, Resp: Resp{OK: true}}
		}
		return Call{Method: "noop"}
	case "remove":
		if c.Resp.OK {
			return Call{Method: "add", Args: c.Args, Resp: Resp{OK: true}}
		}
		return Call{Method: "noop"}
	case "contains":
		return Call{Method: "noop"}
	default:
		return Call{Method: "noop"}
	}
}

// PQInverse returns the inverse call for a PQueue method call per Fig. 4.
// add(x) has no natural inverse in most heaps — the implementation
// synthesizes one via Holders — but at the specification level the inverse
// of add(x) is "remove this x", modeled here as illegal (nil) and therefore
// excluded; removeMin()/x has inverse add(x); min needs none.
func PQInverse(c Call) (Call, bool) {
	switch c.Method {
	case "removeMin":
		if c.Resp.OK {
			return Call{Method: "add", Args: []int64{c.Resp.Val}, Resp: Resp{OK: true}}, true
		}
		return Call{Method: "noop"}, true
	case "min":
		return Call{Method: "noop"}, true
	default:
		return Call{}, false
	}
}
