package histories

import (
	"fmt"
	"sort"
)

// CheckStrictSerializability verifies Definition 5.1 in the form Theorem 5.3
// guarantees it: the committed transactions of h, executed sequentially in
// commit order against the sequential specification of each object, must
// reproduce every recorded response. specs maps object name to its
// specification; objects without a spec are an error.
//
// It returns nil if the history is strictly serializable in commit order,
// or an error pinpointing the first divergent method call.
func CheckStrictSerializability(h History, specs map[string]Spec) error {
	states := map[string]State{}
	state := func(obj string) (State, error) {
		if s, ok := states[obj]; ok {
			return s, nil
		}
		spec, ok := specs[obj]
		if !ok {
			return nil, fmt.Errorf("histories: no specification for object %q", obj)
		}
		s := spec.Init()
		states[obj] = s
		return s, nil
	}

	committed := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvCommit {
			committed[e.Tx] = true
		}
	}

	// Replay committed transactions' calls one transaction at a time, in
	// commit order. Read-only snapshot transactions are excluded: their
	// reads occurred at their pinned sequence number, not at their commit
	// event's position, so they are checked by CheckSnapshotReads against
	// the committed prefix up to the pin instead.
	ro := h.ReadOnly()
	for _, tx := range h.CommitOrder() {
		if ro[tx] {
			continue
		}
		for _, e := range h.Restrict(tx) {
			if e.Kind != EvCall {
				continue
			}
			s, err := state(e.Object)
			if err != nil {
				return err
			}
			resp, next, legal := s.Apply(e.Call.Method, e.Call.Args)
			if !legal {
				return fmt.Errorf("histories: tx %d: %s.%s is illegal in state %s",
					tx, e.Object, e.Call, s)
			}
			if resp != e.Call.Resp {
				return fmt.Errorf("histories: tx %d: %s.%s(%v) responded %v,%v but spec requires %v,%v in state %s",
					tx, e.Object, e.Call.Method, e.Call.Args,
					e.Call.Resp.Val, e.Call.Resp.OK, resp.Val, resp.OK, s)
			}
			states[e.Object] = next
		}
	}
	_ = committed
	return nil
}

// FinalStates replays the committed history in commit order and returns the
// final abstract state per object. Use to compare against the concrete base
// object's quiescent state (Theorem 5.4: aborted transactions contribute
// nothing).
func FinalStates(h History, specs map[string]Spec) (map[string]State, error) {
	if err := CheckStrictSerializability(h, specs); err != nil {
		return nil, err
	}
	states := map[string]State{}
	for obj, spec := range specs {
		states[obj] = spec.Init()
	}
	ro := h.ReadOnly()
	for _, tx := range h.CommitOrder() {
		if ro[tx] {
			continue
		}
		for _, e := range h.Restrict(tx) {
			if e.Kind != EvCall {
				continue
			}
			_, next, _ := states[e.Object].Apply(e.Call.Method, e.Call.Args)
			states[e.Object] = next
		}
	}
	return states, nil
}

// CheckSnapshotReads verifies the multi-version read path against the
// sequential specification: every read-only snapshot transaction (recorded
// with SnapshotCommit) must have observed exactly the state produced by the
// committed writer prefix up to its pinned sequence number — a committed
// prefix, never a torn or future one.
//
// Writers must have been recorded with CommitAt, and recording must begin
// only after versioning is active on the System (run one read-only
// transaction before the workload): while versioning is inactive an
// effective commit is assigned no sequence number and is indistinguishable
// here from a no-op. A writer whose Seq is zero is therefore taken to have
// made no versioned effect (every effective mutation of a versioned object
// assigns a sequence number at commit once versioning is active), so it
// cannot move snapshot-visible state and is skipped. Writer calls are
// replayed in sequence order — the
// serialization order the versioned kernel assigned under the abstract
// locks — and their recorded responses are re-validated along the way, so a
// sequence order inconsistent with the lock order is caught here too.
func CheckSnapshotReads(h History, specs map[string]Spec) error {
	type stamped struct {
		tx  uint64
		seq uint64
	}
	var writers, readers []stamped
	for _, e := range h {
		if e.Kind != EvCommit {
			continue
		}
		if e.RO {
			readers = append(readers, stamped{e.Tx, e.Seq})
		} else if e.Seq > 0 {
			writers = append(writers, stamped{e.Tx, e.Seq})
		}
	}
	if len(readers) == 0 {
		return nil
	}
	sort.Slice(writers, func(i, j int) bool { return writers[i].seq < writers[j].seq })
	sort.Slice(readers, func(i, j int) bool { return readers[i].seq < readers[j].seq })

	states := map[string]State{}
	state := func(obj string) (State, error) {
		if s, ok := states[obj]; ok {
			return s, nil
		}
		spec, ok := specs[obj]
		if !ok {
			return nil, fmt.Errorf("histories: no specification for object %q", obj)
		}
		s := spec.Init()
		states[obj] = s
		return s, nil
	}

	w := 0
	for _, rd := range readers {
		// Advance the writer replay to the reader's pin.
		for w < len(writers) && writers[w].seq <= rd.seq {
			tx := writers[w].tx
			for _, e := range h.Restrict(tx) {
				if e.Kind != EvCall {
					continue
				}
				s, err := state(e.Object)
				if err != nil {
					return err
				}
				resp, next, legal := s.Apply(e.Call.Method, e.Call.Args)
				if !legal {
					return fmt.Errorf("histories: writer tx %d (seq %d): %s.%s is illegal in state %s",
						tx, writers[w].seq, e.Object, e.Call, s)
				}
				if resp != e.Call.Resp {
					return fmt.Errorf("histories: writer tx %d (seq %d): %s.%s(%v) responded %v,%v but seq-order replay requires %v,%v in state %s",
						tx, writers[w].seq, e.Object, e.Call.Method, e.Call.Args,
						e.Call.Resp.Val, e.Call.Resp.OK, resp.Val, resp.OK, s)
				}
				states[e.Object] = next
			}
			w++
		}
		// Every read the snapshot transaction made must match the prefix
		// state. Reads are pure: the state is not advanced.
		for _, e := range h.Restrict(rd.tx) {
			if e.Kind != EvCall {
				continue
			}
			s, err := state(e.Object)
			if err != nil {
				return err
			}
			resp, _, legal := s.Apply(e.Call.Method, e.Call.Args)
			if !legal {
				return fmt.Errorf("histories: snapshot tx %d (pin %d): %s.%s is illegal in prefix state %s",
					rd.tx, rd.seq, e.Object, e.Call, s)
			}
			if resp != e.Call.Resp {
				return fmt.Errorf("histories: snapshot tx %d (pin %d): %s.%s(%v) observed %v,%v but the committed prefix holds %v,%v in state %s",
					rd.tx, rd.seq, e.Object, e.Call.Method, e.Call.Args,
					e.Call.Resp.Val, e.Call.Resp.OK, resp.Val, resp.OK, s)
			}
		}
	}
	return nil
}

// Commute implements Definition 5.4 on a sampled state: method calls c1 and
// c2 commute at state s if both orders are legal, produce the recorded
// responses regardless of order, and define the same state. (The paper
// quantifies over all histories; callers sample states, which suffices to
// refute commutativity and to check the finite tables of Figs. 1/4/6/8 on
// representative states.)
func Commute(s State, c1, c2 Call) bool {
	r1a, s1, ok := s.Apply(c1.Method, c1.Args)
	if !ok {
		return false
	}
	r2a, s12, ok := s1.Apply(c2.Method, c2.Args)
	if !ok {
		return false
	}
	r2b, s2, ok := s.Apply(c2.Method, c2.Args)
	if !ok {
		return false
	}
	r1b, s21, ok := s2.Apply(c1.Method, c1.Args)
	if !ok {
		return false
	}
	return r1a == r1b && r2a == r2b && s12.Equal(s21)
}

// InverseRestores implements Definition 5.3 on a sampled state: applying
// call then inv from state s must return to a state equal to s. Calls whose
// recorded responses don't match the state (e.g. add(x)/true on a state
// already containing x) report false.
func InverseRestores(s State, call, inv Call) bool {
	r, s1, ok := s.Apply(call.Method, call.Args)
	if !ok || r != call.Resp {
		return false
	}
	if inv.Method == "noop" {
		return s1.Equal(s)
	}
	_, s2, ok := s1.Apply(inv.Method, inv.Args)
	if !ok {
		return false
	}
	return s2.Equal(s)
}

// SetInverse returns the inverse call for a Set method call per Fig. 1.
func SetInverse(c Call) Call {
	switch c.Method {
	case "add":
		if c.Resp.OK {
			return Call{Method: "remove", Args: c.Args, Resp: Resp{OK: true}}
		}
		return Call{Method: "noop"}
	case "remove":
		if c.Resp.OK {
			return Call{Method: "add", Args: c.Args, Resp: Resp{OK: true}}
		}
		return Call{Method: "noop"}
	case "contains":
		return Call{Method: "noop"}
	default:
		return Call{Method: "noop"}
	}
}

// PQInverse returns the inverse call for a PQueue method call per Fig. 4.
// add(x) has no natural inverse in most heaps — the implementation
// synthesizes one via Holders — but at the specification level the inverse
// of add(x) is "remove this x", modeled here as illegal (nil) and therefore
// excluded; removeMin()/x has inverse add(x); min needs none.
func PQInverse(c Call) (Call, bool) {
	switch c.Method {
	case "removeMin":
		if c.Resp.OK {
			return Call{Method: "add", Args: []int64{c.Resp.Val}, Resp: Resp{OK: true}}, true
		}
		return Call{Method: "noop"}, true
	case "min":
		return Call{Method: "noop"}, true
	default:
		return Call{}, false
	}
}
