package histories

import (
	"fmt"
	"sort"
)

// OpRec is one entry of a post-fusion op log: the net operation a lazy
// transaction's commit-time drain actually applied to the base object. The
// lazy discipline (internal/boost/lazy.go) emits one OpRec per surviving
// fused op; annihilated pairs never appear. Op logs are what the durable
// journal replays, so checking them against the sequential specs closes the
// loop between the lazy drain and the formal model.
type OpRec struct {
	Tx     uint64
	Object string
	Method string
	Key    int64
}

// CheckOpLog validates a post-fusion op log against the history it was
// drained from and the sequential specification of each object:
//
//  1. every op must belong to a transaction h records as committed — a lazy
//     drain emits nothing for aborted transactions (abort is log
//     truncation), so an op from an uncommitted tx is a leak;
//  2. replayed in h's commit order, every op must be legal AND effective in
//     the sequential spec (add of a present key, remove of an absent one):
//     fusion guarantees surviving ops are total, because an ineffective op
//     would have been eliminated against the validated observation;
//  3. the final abstract state reached by the op replay must equal the final
//     state of the full committed history (FinalStates) — the fused stream
//     and the method-call history describe the same object.
//
// The check is restricted to the objects that appear in the op log: eager
// objects recorded in h have no op log and are checked by
// CheckStrictSerializability alone.
func CheckOpLog(h History, ops []OpRec, specs map[string]Spec) error {
	committed := map[uint64]bool{}
	for _, e := range h {
		if e.Kind == EvCommit {
			committed[e.Tx] = true
		}
	}

	byTx := map[uint64][]OpRec{}
	lazyObjs := map[string]bool{}
	for i, op := range ops {
		if !committed[op.Tx] {
			return fmt.Errorf("histories: op log[%d] %s.%s(%d) from tx %d, which never committed",
				i, op.Object, op.Method, op.Key, op.Tx)
		}
		if _, ok := specs[op.Object]; !ok {
			return fmt.Errorf("histories: no specification for object %q", op.Object)
		}
		byTx[op.Tx] = append(byTx[op.Tx], op)
		lazyObjs[op.Object] = true
	}

	// Replay the per-tx op groups in commit order. Within a transaction the
	// drain applies ops in log order, which the recorded slice preserves.
	states := map[string]State{}
	for obj := range lazyObjs {
		states[obj] = specs[obj].Init()
	}
	for _, tx := range h.CommitOrder() {
		for _, op := range byTx[tx] {
			resp, next, legal := states[op.Object].Apply(op.Method, []int64{op.Key})
			if !legal {
				return fmt.Errorf("histories: op log: tx %d: %s.%s(%d) is illegal in state %s",
					tx, op.Object, op.Method, op.Key, states[op.Object])
			}
			if !resp.OK {
				return fmt.Errorf("histories: op log: tx %d: %s.%s(%d) is a no-op in state %s — fusion should have eliminated it",
					tx, op.Object, op.Method, op.Key, states[op.Object])
			}
			states[op.Object] = next
		}
	}

	// The op replay and the full method-call history must agree on every
	// lazy object's final state.
	finals, err := FinalStates(h, specs)
	if err != nil {
		return err
	}
	objs := make([]string, 0, len(lazyObjs))
	for obj := range lazyObjs {
		objs = append(objs, obj)
	}
	sort.Strings(objs)
	for _, obj := range objs {
		if !states[obj].Equal(finals[obj]) {
			return fmt.Errorf("histories: op log replay of %q ends in %s, but the committed history ends in %s",
				obj, states[obj], finals[obj])
		}
	}
	return nil
}
