package histories

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// TestMultiObjectStrictSerializability drives transactions that span THREE
// boosted objects — a set, a priority queue, and a unique-ID generator —
// and checks that the committed history is strictly serializable across all
// of them in one commit order (dynamic atomicity is a property of the
// transaction system, not of any single object).
func TestMultiObjectStrictSerializability(t *testing.T) {
	set := core.NewSkipListSet()
	pq := core.NewHeap[struct{}](core.RWLocked)
	ids := core.NewUniqueID()
	rec := NewRecorder()
	sys := stm.NewSystem(stm.Config{LockTimeout: 300 * time.Millisecond})
	giveUp := errors.New("deliberate abort")

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 1234))
			for i := 0; i < 50; i++ {
				fail := r.IntN(4) == 0
				k := int64(r.IntN(24))
				_ = sys.Atomic(func(tx *stm.Tx) error {
					// One transaction touches all three objects.
					added := set.Add(tx, k)
					rec.RecordCall(tx.ID(), "set", "add", []int64{k}, Resp{OK: added})

					pq.Add(tx, k, struct{}{})
					rec.RecordCall(tx.ID(), "pq", "add", []int64{k}, Resp{OK: true})

					if r.IntN(2) == 0 {
						mk, _, ok := pq.RemoveMin(tx)
						rec.RecordCall(tx.ID(), "pq", "removeMin", nil, Resp{Val: mk, OK: ok})
					}
					id := ids.AssignID(tx)
					rec.RecordCall(tx.ID(), "idgen", "assignID", []int64{id}, Resp{Val: id, OK: true})

					removed := set.Remove(tx, k+100)
					rec.RecordCall(tx.ID(), "set", "remove", []int64{k + 100}, Resp{OK: removed})

					if fail {
						return giveUp
					}
					tx.AtCommit(func() { rec.Commit(tx.ID()) })
					return nil
				})
			}
		}()
	}
	wg.Wait()

	specs := map[string]Spec{
		"set":   SetSpec{},
		"pq":    PQSpec{},
		"idgen": IDGenSpec{},
	}
	h := rec.History()
	if err := CheckStrictSerializability(h, specs); err != nil {
		t.Fatalf("multi-object history not serializable in one commit order: %v", err)
	}

	// Theorem 5.4 across objects: quiescent concrete state matches the
	// committed history's final abstract states.
	finals, err := FinalStates(h, specs)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 24; k++ {
		want, _, _ := finals["set"].Apply("contains", []int64{k})
		if got := set.Base().Contains(k); got != want.OK {
			t.Errorf("set key %d: base=%v, history=%v", k, got, want.OK)
		}
	}
	var wantDrain []int64
	st := finals["pq"]
	for {
		r2, next, _ := st.Apply("removeMin", nil)
		if !r2.OK {
			break
		}
		wantDrain = append(wantDrain, r2.Val)
		st = next
	}
	gotDrain := pq.DrainQuiescent()
	if len(gotDrain) != len(wantDrain) {
		t.Fatalf("heap drained %d keys, history implies %d", len(gotDrain), len(wantDrain))
	}
	for i := range wantDrain {
		if gotDrain[i] != wantDrain[i] {
			t.Fatalf("drain[%d] = %d, want %d", i, gotDrain[i], wantDrain[i])
		}
	}
}
