// Package linkedlist implements a sorted linked-list set of int64 keys with
// lock coupling (hand-over-hand locking), the motivating structure of the
// paper's introduction: a thread traversing the list locks each node, then
// its successor, then releases the first, so that critical sections are
// short-lived and multiple threads traverse concurrently.
//
// The paper argues lock coupling cannot be expressed as properly nested
// subtransactions in open nesting — but boosting simply treats this list as
// a black-box linearizable Set.
package linkedlist

import "sync"

type node struct {
	mu       sync.Mutex
	key      int64
	sentinel int8 // -1 head, +1 tail
	next     *node
}

func (n *node) less(key int64) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return n.key < key
	}
}

func (n *node) equals(key int64) bool { return n.sentinel == 0 && n.key == key }

// Set is a sorted linked-list set using lock coupling. Create with New.
type Set struct {
	head *node
	n    counter
}

type counter struct {
	mu sync.Mutex
	v  int
}

func (c *counter) add(d int) {
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// New returns an empty set.
func New() *Set {
	tail := &node{sentinel: 1}
	head := &node{sentinel: -1, next: tail}
	return &Set{head: head}
}

// locate traverses with lock coupling, returning pred and curr both locked,
// where pred.key < key <= curr position (curr may be the tail sentinel).
func (s *Set) locate(key int64) (pred, curr *node) {
	pred = s.head
	pred.mu.Lock()
	curr = pred.next
	curr.mu.Lock()
	for curr.less(key) {
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		curr.mu.Lock()
	}
	return pred, curr
}

// Add inserts key, reporting whether the set changed.
func (s *Set) Add(key int64) bool {
	pred, curr := s.locate(key)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if curr.equals(key) {
		return false
	}
	pred.next = &node{key: key, next: curr}
	s.n.add(1)
	return true
}

// Remove deletes key, reporting whether the set changed.
func (s *Set) Remove(key int64) bool {
	pred, curr := s.locate(key)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	if !curr.equals(key) {
		return false
	}
	pred.next = curr.next
	s.n.add(-1)
	return true
}

// Contains reports whether key is present.
func (s *Set) Contains(key int64) bool {
	pred, curr := s.locate(key)
	defer pred.mu.Unlock()
	defer curr.mu.Unlock()
	return curr.equals(key)
}

// Len returns the number of keys.
func (s *Set) Len() int { return s.n.get() }

// Keys returns the keys in ascending order, traversing with lock coupling.
func (s *Set) Keys() []int64 {
	var out []int64
	pred := s.head
	pred.mu.Lock()
	curr := pred.next
	curr.mu.Lock()
	for curr.sentinel != 1 {
		out = append(out, curr.key)
		pred.mu.Unlock()
		pred = curr
		curr = curr.next
		curr.mu.Lock()
	}
	pred.mu.Unlock()
	curr.mu.Unlock()
	return out
}
