package linkedlist

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New()
	if s.Contains(1) {
		t.Fatal("empty set contains 1")
	}
	if !s.Add(1) || s.Add(1) {
		t.Fatal("Add semantics wrong")
	}
	if !s.Contains(1) {
		t.Fatal("Contains(1) = false")
	}
	if !s.Remove(1) || s.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSortedOrder(t *testing.T) {
	s := New()
	for _, k := range []int64{5, 1, 3, 2, 4, -10} {
		s.Add(k)
	}
	keys := s.Keys()
	want := []int64{-10, 1, 2, 3, 4, 5}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestMatchesMapModel(t *testing.T) {
	s := New()
	model := map[int64]bool{}
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 5000; i++ {
		k := int64(r.IntN(64))
		switch r.IntN(3) {
		case 0:
			if got, want := s.Add(k), !model[k]; got != want {
				t.Fatalf("Add(%d) = %v, want %v", k, got, want)
			}
			model[k] = true
		case 1:
			if got, want := s.Remove(k), model[k]; got != want {
				t.Fatalf("Remove(%d) = %v, want %v", k, got, want)
			}
			delete(model, k)
		default:
			if got := s.Contains(k); got != model[k] {
				t.Fatalf("Contains(%d) = %v, want %v", k, got, model[k])
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := New()
	f := func(k int64) bool {
		s.Add(k)
		return s.Remove(k) && !s.Contains(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccounting(t *testing.T) {
	s := New()
	const keyRange = 32
	var adds, removes [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 8))
			for i := 0; i < 2000; i++ {
				k := int64(r.IntN(keyRange))
				if r.IntN(2) == 0 {
					if s.Add(k) {
						adds[k].Add(1)
					}
				} else {
					if s.Remove(k) {
						removes[k].Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		present := int64(0)
		if s.Contains(int64(k)) {
			present = 1
		}
		if d := adds[k].Load() - removes[k].Load(); d != present {
			t.Errorf("key %d: adds-removes = %d, present = %d", k, d, present)
		}
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("list corrupted: %v", keys)
		}
	}
}

func TestConcurrentDisjointTraversal(t *testing.T) {
	// Lock coupling's selling point: concurrent traversals on disjoint
	// keys all make progress and never corrupt the list.
	s := New()
	for k := int64(0); k < 100; k++ {
		s.Add(k * 2)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := int64((g*500+i)%100)*2 + 1 // odd keys only
				s.Add(k)
				s.Remove(k)
			}
		}()
	}
	wg.Wait()
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100 even keys", s.Len())
	}
	for k := int64(0); k < 100; k++ {
		if !s.Contains(k * 2) {
			t.Fatalf("even key %d lost", k*2)
		}
	}
}
