// Package skiplist implements a lock-free concurrent skip-list set, in the
// style of the java.util.concurrent ConcurrentSkipListSet the paper boosts
// (Herlihy–Shavit "LockFreeSkipList": CAS-linked levels with
// logically-deleted marks and helping removal during traversal).
//
// The key type is any cmp.Ordered: the algorithm needs nothing but <, so
// int64, string and float keys share one implementation (New keeps the
// original int64 construction; NewOf picks the key type).
//
// The set is linearizable and non-blocking: add, remove and contains
// synchronize only through compare-and-swap on individual links. Boosting
// treats it as a black box — the transactional layer never looks inside.
package skiplist

import (
	"cmp"
	"math/rand/v2"
	"sync/atomic"
)

// maxLevel bounds the tower height. 2^32 expected elements is far beyond any
// benchmark here.
const maxLevel = 32

// pHeight is the per-level promotion probability.
const pHeight = 0.5

// succ is a successor reference paired with this node's logical-deletion
// mark at that level. Go has no AtomicMarkableReference, so the (pointer,
// mark) pair is boxed and swung atomically as one *succ.
type succ[K cmp.Ordered] struct {
	n      *node[K]
	marked bool
}

type node[K cmp.Ordered] struct {
	key      K
	sentinel int8 // -1 head, +1 tail, 0 ordinary
	next     []atomic.Pointer[succ[K]]
}

func newNode[K cmp.Ordered](key K, height int, sentinel int8) *node[K] {
	return &node[K]{key: key, sentinel: sentinel, next: make([]atomic.Pointer[succ[K]], height)}
}

// less reports whether a's position precedes key (treating sentinels as
// ±infinity).
func (n *node[K]) less(key K) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return n.key < key
	}
}

func (n *node[K]) equals(key K) bool {
	return n.sentinel == 0 && n.key == key
}

// Set is a lock-free sorted set of K keys. Create with New or NewOf.
type Set[K cmp.Ordered] struct {
	head *node[K]
	size atomic.Int64
}

// New returns an empty int64 set (the seed repository's original key type).
func New() *Set[int64] {
	return NewOf[int64]()
}

// NewOf returns an empty set over any ordered key type.
func NewOf[K cmp.Ordered]() *Set[K] {
	var zero K
	head := newNode(zero, maxLevel, -1)
	tail := newNode(zero, maxLevel, 1)
	for i := range head.next {
		head.next[i].Store(&succ[K]{n: tail})
	}
	return &Set[K]{head: head}
}

// randomHeight draws a tower height with geometric distribution.
func randomHeight() int {
	h := 1
	for h < maxLevel && rand.Float64() < pHeight {
		h++
	}
	return h
}

// find locates key, filling preds/succs for levels [0,maxLevel) and
// physically unlinking any marked nodes encountered (helping). It returns
// true if an unmarked node with the key is present at the bottom level.
func (s *Set[K]) find(key K, preds, succs []*node[K]) bool {
retry:
	for {
		pred := s.head
		for level := maxLevel - 1; level >= 0; level-- {
			curr := pred.next[level].Load()
			for {
				if curr.marked {
					// pred itself was deleted under us: its next
					// pointer is frozen. Snipping through it would
					// install a fresh unmarked link into a dead node,
					// resurrecting it (and losing any nodes inserted
					// behind it). Restart from the head.
					continue retry
				}
				nextRef := curr.n.nextRef(level)
				for nextRef != nil && nextRef.marked {
					// curr is logically deleted at this level; help unlink.
					snipped := pred.next[level].CompareAndSwap(curr, &succ[K]{n: nextRef.n})
					if !snipped {
						continue retry
					}
					curr = pred.next[level].Load()
					if curr.marked {
						continue retry // pred died right after the snip
					}
					nextRef = curr.n.nextRef(level)
				}
				if curr.n.less(key) {
					pred = curr.n
					curr = pred.next[level].Load()
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr.n
		}
		return succs[0].equals(key)
	}
}

// nextRef loads the successor reference at level, or nil if the node's tower
// does not reach that level (tail nodes and short towers).
func (n *node[K]) nextRef(level int) *succ[K] {
	if level >= len(n.next) {
		return nil
	}
	return n.next[level].Load()
}

// Add inserts key, reporting whether the set changed (false if key was
// already present).
func (s *Set[K]) Add(key K) bool {
	height := randomHeight()
	var preds, succs [maxLevel]*node[K]
	for {
		if s.find(key, preds[:], succs[:]) {
			return false
		}
		n := newNode(key, height, 0)
		for level := 0; level < height; level++ {
			n.next[level].Store(&succ[K]{n: succs[level]})
		}
		// Linearization point: CAS the bottom-level link.
		bottom := preds[0].next[0].Load()
		if bottom.n != succs[0] || bottom.marked {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(bottom, &succ[K]{n: n}) {
			continue
		}
		s.size.Add(1)
		// Link the upper levels best-effort; find() repairs races.
		for level := 1; level < height; level++ {
			for {
				cur := n.next[level].Load()
				if cur.marked {
					return true // concurrently removed; stop linking
				}
				pl := preds[level].next[level].Load()
				if pl.n != succs[level] || pl.marked || cur.n != succs[level] {
					s.find(key, preds[:], succs[:]) // refresh
					if !succs[0].equals(key) {
						return true // node already removed
					}
					if succs[level] != n {
						// re-point our forward link before retrying
						if !n.next[level].CompareAndSwap(cur, &succ[K]{n: succs[level]}) {
							continue
						}
					}
					if preds[level].next[level].Load().n == n {
						break // someone linked us
					}
					continue
				}
				if preds[level].next[level].CompareAndSwap(pl, &succ[K]{n: n}) {
					break
				}
			}
		}
		return true
	}
}

// Remove deletes key, reporting whether the set changed (false if key was
// absent).
func (s *Set[K]) Remove(key K) bool {
	var preds, succs [maxLevel]*node[K]
	for {
		if !s.find(key, preds[:], succs[:]) {
			return false
		}
		victim := succs[0]
		// Mark from the top of the tower down to level 1.
		for level := len(victim.next) - 1; level >= 1; level-- {
			ref := victim.next[level].Load()
			for !ref.marked {
				victim.next[level].CompareAndSwap(ref, &succ[K]{n: ref.n, marked: true})
				ref = victim.next[level].Load()
			}
		}
		// Linearization point: mark the bottom level. Only one remover wins.
		for {
			ref := victim.next[0].Load()
			if ref.marked {
				break // someone else removed it
			}
			if victim.next[0].CompareAndSwap(ref, &succ[K]{n: ref.n, marked: true}) {
				s.size.Add(-1)
				s.find(key, preds[:], succs[:]) // physical unlink
				return true
			}
		}
		// Lost the race; the key may be re-addable already.
		return false
	}
}

// Contains reports whether key is in the set. It is wait-free: a single
// traversal with no helping.
func (s *Set[K]) Contains(key K) bool {
	pred := s.head
	var curr *succ[K]
	for level := maxLevel - 1; level >= 0; level-- {
		curr = pred.next[level].Load()
		for {
			ref := curr.n.nextRef(level)
			for ref != nil && ref.marked {
				curr = &succ[K]{n: ref.n}
				ref = curr.n.nextRef(level)
			}
			if curr.n.less(key) {
				pred = curr.n
				curr = pred.next[level].Load()
			} else {
				break
			}
		}
	}
	return curr.n.equals(key)
}

// Len returns the current number of keys. It is accurate when quiescent and
// approximate under concurrency.
func (s *Set[K]) Len() int {
	return int(s.size.Load())
}

// AscendRange calls fn on each key in [lo, hi] in ascending order until fn
// returns false. The traversal is wait-free and skips logically deleted
// nodes; under concurrent mutation it observes some linearizable snapshot
// of each individual key (callers wanting an atomic range view must
// serialize externally — the boosted ordered set uses a range lock).
func (s *Set[K]) AscendRange(lo, hi K, fn func(key K) bool) {
	// Descend to the first node >= lo.
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for {
			ref := curr.n.nextRef(level)
			for ref != nil && ref.marked {
				curr = &succ[K]{n: ref.n}
				ref = curr.n.nextRef(level)
			}
			if curr.n.less(lo) {
				pred = curr.n
				curr = pred.next[level].Load()
			} else {
				break
			}
		}
	}
	// Walk the bottom level.
	ref := pred.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		if ref.n.sentinel == 0 && ref.n.key >= lo {
			if ref.n.key > hi {
				return
			}
			if !next.marked && !fn(ref.n.key) {
				return
			}
		}
		ref = &succ[K]{n: next.n}
	}
}

// Keys returns the keys in ascending order via a bottom-level traversal.
// Intended for tests and quiescent snapshots.
func (s *Set[K]) Keys() []K {
	var out []K
	ref := s.head.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		if !next.marked {
			out = append(out, ref.n.key)
		}
		ref = &succ[K]{n: next.n}
	}
	return out
}
