// Package skiplist implements a lock-free concurrent skip-list set of int64
// keys, in the style of the java.util.concurrent ConcurrentSkipListSet the
// paper boosts (Herlihy–Shavit "LockFreeSkipList": CAS-linked levels with
// logically-deleted marks and helping removal during traversal).
//
// The set is linearizable and non-blocking: add, remove and contains
// synchronize only through compare-and-swap on individual links. Boosting
// treats it as a black box — the transactional layer never looks inside.
package skiplist

import (
	"math/rand/v2"
	"sync/atomic"
)

// maxLevel bounds the tower height. 2^32 expected elements is far beyond any
// benchmark here.
const maxLevel = 32

// pHeight is the per-level promotion probability.
const pHeight = 0.5

// succ is a successor reference paired with this node's logical-deletion
// mark at that level. Go has no AtomicMarkableReference, so the (pointer,
// mark) pair is boxed and swung atomically as one *succ.
type succ struct {
	n      *node
	marked bool
}

type node struct {
	key      int64
	sentinel int8 // -1 head, +1 tail, 0 ordinary
	next     []atomic.Pointer[succ]
}

func newNode(key int64, height int, sentinel int8) *node {
	return &node{key: key, sentinel: sentinel, next: make([]atomic.Pointer[succ], height)}
}

// less reports whether a's position precedes key (treating sentinels as
// ±infinity).
func (n *node) less(key int64) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return n.key < key
	}
}

func (n *node) equals(key int64) bool {
	return n.sentinel == 0 && n.key == key
}

// Set is a lock-free sorted set of int64 keys. Create with New.
type Set struct {
	head *node
	size atomic.Int64
}

// New returns an empty set.
func New() *Set {
	head := newNode(0, maxLevel, -1)
	tail := newNode(0, maxLevel, 1)
	for i := range head.next {
		head.next[i].Store(&succ{n: tail})
	}
	return &Set{head: head}
}

// randomHeight draws a tower height with geometric distribution.
func randomHeight() int {
	h := 1
	for h < maxLevel && rand.Float64() < pHeight {
		h++
	}
	return h
}

// find locates key, filling preds/succs for levels [0,maxLevel) and
// physically unlinking any marked nodes encountered (helping). It returns
// true if an unmarked node with the key is present at the bottom level.
func (s *Set) find(key int64, preds, succs []*node) bool {
retry:
	for {
		pred := s.head
		for level := maxLevel - 1; level >= 0; level-- {
			curr := pred.next[level].Load()
			for {
				if curr.marked {
					// pred itself was deleted under us: its next
					// pointer is frozen. Snipping through it would
					// install a fresh unmarked link into a dead node,
					// resurrecting it (and losing any nodes inserted
					// behind it). Restart from the head.
					continue retry
				}
				nextRef := curr.n.nextRef(level)
				for nextRef != nil && nextRef.marked {
					// curr is logically deleted at this level; help unlink.
					snipped := pred.next[level].CompareAndSwap(curr, &succ{n: nextRef.n})
					if !snipped {
						continue retry
					}
					curr = pred.next[level].Load()
					if curr.marked {
						continue retry // pred died right after the snip
					}
					nextRef = curr.n.nextRef(level)
				}
				if curr.n.less(key) {
					pred = curr.n
					curr = pred.next[level].Load()
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr.n
		}
		return succs[0].equals(key)
	}
}

// nextRef loads the successor reference at level, or nil if the node's tower
// does not reach that level (tail nodes and short towers).
func (n *node) nextRef(level int) *succ {
	if level >= len(n.next) {
		return nil
	}
	return n.next[level].Load()
}

// Add inserts key, reporting whether the set changed (false if key was
// already present).
func (s *Set) Add(key int64) bool {
	height := randomHeight()
	var preds, succs [maxLevel]*node
	for {
		if s.find(key, preds[:], succs[:]) {
			return false
		}
		n := newNode(key, height, 0)
		for level := 0; level < height; level++ {
			n.next[level].Store(&succ{n: succs[level]})
		}
		// Linearization point: CAS the bottom-level link.
		bottom := preds[0].next[0].Load()
		if bottom.n != succs[0] || bottom.marked {
			continue
		}
		if !preds[0].next[0].CompareAndSwap(bottom, &succ{n: n}) {
			continue
		}
		s.size.Add(1)
		// Link the upper levels best-effort; find() repairs races.
		for level := 1; level < height; level++ {
			for {
				cur := n.next[level].Load()
				if cur.marked {
					return true // concurrently removed; stop linking
				}
				pl := preds[level].next[level].Load()
				if pl.n != succs[level] || pl.marked || cur.n != succs[level] {
					s.find(key, preds[:], succs[:]) // refresh
					if !succs[0].equals(key) {
						return true // node already removed
					}
					if succs[level] != n {
						// re-point our forward link before retrying
						if !n.next[level].CompareAndSwap(cur, &succ{n: succs[level]}) {
							continue
						}
					}
					if preds[level].next[level].Load().n == n {
						break // someone linked us
					}
					continue
				}
				if preds[level].next[level].CompareAndSwap(pl, &succ{n: n}) {
					break
				}
			}
		}
		return true
	}
}

// Remove deletes key, reporting whether the set changed (false if key was
// absent).
func (s *Set) Remove(key int64) bool {
	var preds, succs [maxLevel]*node
	for {
		if !s.find(key, preds[:], succs[:]) {
			return false
		}
		victim := succs[0]
		// Mark from the top of the tower down to level 1.
		for level := len(victim.next) - 1; level >= 1; level-- {
			ref := victim.next[level].Load()
			for !ref.marked {
				victim.next[level].CompareAndSwap(ref, &succ{n: ref.n, marked: true})
				ref = victim.next[level].Load()
			}
		}
		// Linearization point: mark the bottom level. Only one remover wins.
		for {
			ref := victim.next[0].Load()
			if ref.marked {
				break // someone else removed it
			}
			if victim.next[0].CompareAndSwap(ref, &succ{n: ref.n, marked: true}) {
				s.size.Add(-1)
				s.find(key, preds[:], succs[:]) // physical unlink
				return true
			}
		}
		// Lost the race; the key may be re-addable already.
		return false
	}
}

// Contains reports whether key is in the set. It is wait-free: a single
// traversal with no helping.
func (s *Set) Contains(key int64) bool {
	pred := s.head
	var curr *succ
	for level := maxLevel - 1; level >= 0; level-- {
		curr = pred.next[level].Load()
		for {
			ref := curr.n.nextRef(level)
			for ref != nil && ref.marked {
				curr = &succ{n: ref.n}
				ref = curr.n.nextRef(level)
			}
			if curr.n.less(key) {
				pred = curr.n
				curr = pred.next[level].Load()
			} else {
				break
			}
		}
	}
	return curr.n.equals(key)
}

// Len returns the current number of keys. It is accurate when quiescent and
// approximate under concurrency.
func (s *Set) Len() int {
	return int(s.size.Load())
}

// AscendRange calls fn on each key in [lo, hi] in ascending order until fn
// returns false. The traversal is wait-free and skips logically deleted
// nodes; under concurrent mutation it observes some linearizable snapshot
// of each individual key (callers wanting an atomic range view must
// serialize externally — the boosted ordered set uses a range lock).
func (s *Set) AscendRange(lo, hi int64, fn func(key int64) bool) {
	// Descend to the first node >= lo.
	pred := s.head
	for level := maxLevel - 1; level >= 0; level-- {
		curr := pred.next[level].Load()
		for {
			ref := curr.n.nextRef(level)
			for ref != nil && ref.marked {
				curr = &succ{n: ref.n}
				ref = curr.n.nextRef(level)
			}
			if curr.n.less(lo) {
				pred = curr.n
				curr = pred.next[level].Load()
			} else {
				break
			}
		}
	}
	// Walk the bottom level.
	ref := pred.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		if ref.n.sentinel == 0 && ref.n.key >= lo {
			if ref.n.key > hi {
				return
			}
			if !next.marked && !fn(ref.n.key) {
				return
			}
		}
		ref = &succ{n: next.n}
	}
}

// Keys returns the keys in ascending order via a bottom-level traversal.
// Intended for tests and quiescent snapshots.
func (s *Set) Keys() []int64 {
	var out []int64
	ref := s.head.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		if !next.marked {
			out = append(out, ref.n.key)
		}
		ref = &succ{n: next.n}
	}
	return out
}
