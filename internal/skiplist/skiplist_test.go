package skiplist

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New()
	if s.Contains(0) || s.Contains(-1) || s.Contains(1) {
		t.Fatal("empty set contains something")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if keys := s.Keys(); len(keys) != 0 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New()
	if !s.Add(5) {
		t.Fatal("Add(5) on empty = false")
	}
	if s.Add(5) {
		t.Fatal("duplicate Add(5) = true")
	}
	if !s.Contains(5) {
		t.Fatal("Contains(5) = false after Add")
	}
	if s.Contains(4) {
		t.Fatal("Contains(4) = true")
	}
	if !s.Remove(5) {
		t.Fatal("Remove(5) = false")
	}
	if s.Remove(5) {
		t.Fatal("second Remove(5) = true")
	}
	if s.Contains(5) {
		t.Fatal("Contains(5) = true after Remove")
	}
}

func TestExtremeKeys(t *testing.T) {
	s := New()
	keys := []int64{-1 << 62, -1, 0, 1, 1 << 62}
	for _, k := range keys {
		if !s.Add(k) {
			t.Fatalf("Add(%d) = false", k)
		}
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	got := s.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("Keys not sorted: %v", got)
	}
}

func TestKeysSortedNoDuplicates(t *testing.T) {
	s := New()
	for i := 0; i < 1000; i++ {
		s.Add(int64(rand.IntN(300)))
	}
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order or duplicated at %d: %v", i, keys[i-1:i+1])
		}
	}
}

func TestLenTracksChanges(t *testing.T) {
	s := New()
	for i := int64(0); i < 100; i++ {
		s.Add(i)
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100", s.Len())
	}
	for i := int64(0); i < 50; i++ {
		s.Remove(i * 2)
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d, want 50", s.Len())
	}
}

// TestMatchesMapModel drives the set with a random operation sequence and
// compares every response against a map-based model.
func TestMatchesMapModel(t *testing.T) {
	s := New()
	model := map[int64]bool{}
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 20000; i++ {
		k := int64(r.IntN(128))
		switch r.IntN(3) {
		case 0:
			want := !model[k]
			if got := s.Add(k); got != want {
				t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
			}
			model[k] = true
		case 1:
			want := model[k]
			if got := s.Remove(k); got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
			}
			delete(model, k)
		default:
			if got := s.Contains(k); got != model[k] {
				t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, model[k])
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
	}
}

// TestQuickAddIdempotence property: adding a key twice always reports false
// the second time, for arbitrary keys.
func TestQuickAddIdempotence(t *testing.T) {
	s := New()
	f := func(k int64) bool {
		first := s.Add(k)
		second := s.Add(k)
		return !second && s.Contains(k) && (first || true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddRemoveRoundTrip property: for a fresh key, add then remove
// restores absence.
func TestQuickAddRemoveRoundTrip(t *testing.T) {
	s := New()
	f := func(k int64) bool {
		s.Add(k)
		removed := s.Remove(k)
		return removed && !s.Contains(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointAdds(t *testing.T) {
	s := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := int64(g*perG + i)
				if !s.Add(k) {
					t.Errorf("Add(%d) = false on disjoint key", k)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", s.Len(), goroutines*perG)
	}
	for k := int64(0); k < goroutines*perG; k++ {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
}

func TestConcurrentAddRemoveSameKeys(t *testing.T) {
	// Hammer a small key range from many goroutines; verify accounting:
	// for each key, successful adds - successful removes must equal final
	// presence (0 or 1).
	s := New()
	const keyRange = 16
	const goroutines = 8
	const ops = 3000
	var adds, removes [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 99))
			for i := 0; i < ops; i++ {
				k := int64(r.IntN(keyRange))
				if r.IntN(2) == 0 {
					if s.Add(k) {
						adds[k].Add(1)
					}
				} else {
					if s.Remove(k) {
						removes[k].Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		delta := adds[k].Load() - removes[k].Load()
		present := int64(0)
		if s.Contains(int64(k)) {
			present = 1
		}
		if delta != present {
			t.Errorf("key %d: adds-removes = %d but present = %d", k, delta, present)
		}
	}
	// Structural sanity after the storm.
	keys := s.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys corrupted: %v", keys)
		}
	}
}

func TestConcurrentContainsDuringMutation(t *testing.T) {
	s := New()
	for k := int64(0); k < 64; k += 2 {
		s.Add(k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator on odd keys only
		defer wg.Done()
		r := rand.New(rand.NewPCG(7, 7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int64(r.IntN(32))*2 + 1
			if r.IntN(2) == 0 {
				s.Add(k)
			} else {
				s.Remove(k)
			}
		}
	}()
	// Readers: even keys must always be present, regardless of odd churn.
	for i := 0; i < 20000; i++ {
		k := int64(i%32) * 2
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false while only odd keys mutate", k)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAscendRange(t *testing.T) {
	s := New()
	for k := int64(0); k < 100; k += 2 {
		s.Add(k)
	}
	var got []int64
	s.AscendRange(10, 20, func(k int64) bool { got = append(got, k); return true })
	want := []int64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("AscendRange = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AscendRange = %v, want %v", got, want)
		}
	}
	// Early stop.
	got = got[:0]
	s.AscendRange(0, 98, func(k int64) bool { got = append(got, k); return len(got) < 3 })
	if len(got) != 3 {
		t.Fatalf("early stop: %v", got)
	}
	// Empty range.
	count := 0
	s.AscendRange(11, 11, func(int64) bool { count++; return true })
	if count != 0 {
		t.Fatalf("odd singleton range matched %d keys", count)
	}
	// Range beyond all keys.
	s.AscendRange(1000, 2000, func(int64) bool { t.Error("matched beyond max"); return false })
	// Negative range below all keys.
	s.AscendRange(-10, -1, func(int64) bool { t.Error("matched below min"); return false })
}

func TestAscendRangeSkipsDeleted(t *testing.T) {
	s := New()
	for k := int64(0); k < 10; k++ {
		s.Add(k)
	}
	s.Remove(4)
	s.Remove(5)
	var got []int64
	s.AscendRange(3, 6, func(k int64) bool { got = append(got, k); return true })
	if len(got) != 2 || got[0] != 3 || got[1] != 6 {
		t.Fatalf("AscendRange = %v, want [3 6]", got)
	}
}

func TestRandomHeightDistribution(t *testing.T) {
	counts := make([]int, maxLevel+1)
	const n = 100000
	for i := 0; i < n; i++ {
		h := randomHeight()
		if h < 1 || h > maxLevel {
			t.Fatalf("height %d out of range", h)
		}
		counts[h]++
	}
	// About half the towers should have height 1 (p = 0.5).
	frac := float64(counts[1]) / n
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("height-1 fraction = %v, want ~0.5", frac)
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), 1))
		for pb.Next() {
			s.Add(int64(r.IntN(1 << 20)))
		}
	})
}

func BenchmarkContains(b *testing.B) {
	s := New()
	for k := int64(0); k < 1<<16; k++ {
		s.Add(k)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), 2))
		for pb.Next() {
			s.Contains(int64(r.IntN(1 << 17)))
		}
	})
}

func BenchmarkMixed(b *testing.B) {
	s := New()
	for k := int64(0); k < 1<<12; k++ {
		s.Add(k)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), 3))
		for pb.Next() {
			k := int64(r.IntN(1 << 13))
			switch r.IntN(10) {
			case 0:
				s.Add(k)
			case 1:
				s.Remove(k)
			default:
				s.Contains(k)
			}
		}
	})
}
