package skiplist

import (
	"math/rand/v2"
	"testing"
)

// FuzzOpsAgainstModel interprets fuzz input bytes as an operation sequence
// (2 bits op, 6 bits key) and checks every response against a map model.
// Run continuously with: go test -fuzz FuzzOpsAgainstModel ./internal/skiplist
func FuzzOpsAgainstModel(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0xc1})
	f.Add([]byte{0x00, 0x40, 0x00, 0x40, 0x80})
	seed := make([]byte, 64)
	r := rand.New(rand.NewPCG(1, 1))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := New()
		model := map[int64]bool{}
		for i, b := range ops {
			k := int64(b & 0x3f)
			switch b >> 6 {
			case 0, 3:
				want := !model[k]
				if got := s.Add(k); got != want {
					t.Fatalf("op %d: Add(%d) = %v, want %v", i, k, got, want)
				}
				model[k] = true
			case 1:
				want := model[k]
				if got := s.Remove(k); got != want {
					t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, want)
				}
				delete(model, k)
			case 2:
				if got := s.Contains(k); got != model[k] {
					t.Fatalf("op %d: Contains(%d) = %v, want %v", i, k, got, model[k])
				}
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
		}
		keys := s.Keys()
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("keys unsorted: %v", keys)
			}
		}
	})
}
