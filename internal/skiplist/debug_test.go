package skiplist

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// dumpBottom walks the bottom level raw (no helping) and reports every node
// with its mark state. Diagnostic helper for linearizability failures.
func (s *Set[K]) dumpBottom() string {
	var b strings.Builder
	ref := s.head.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		fmt.Fprintf(&b, "%v(h=%d,marked=%v) ", ref.n.key, len(ref.n.next), next.marked)
		ref = next
	}
	return b.String()
}

// findRaw reports whether an unmarked node with key exists at the bottom
// level, walking raw without helping.
func (s *Set[K]) findRaw(key K) bool {
	ref := s.head.next[0].Load()
	for ref.n.sentinel != 1 {
		next := ref.n.next[0].Load()
		if ref.n.key == key && ref.n.sentinel == 0 && !next.marked {
			return true
		}
		ref = next
	}
	return false
}

// TestHuntAlternationBug is the regression test for a subtle helping bug:
// find()'s snip used instance-identity CAS only, so when the predecessor
// itself was deleted mid-traversal, the snip would install a fresh
// *unmarked* link into the dead predecessor's frozen pointer — resurrecting
// it and losing any node subsequently inserted behind it. (The original
// Herlihy-Shavit algorithm encodes the expected mark bit in the CAS; the
// fix restores that check.) The test amplifies the original failure:
// per-key-serialized operations whose responses are checked against a
// model, with rich diagnostics on divergence.
func TestHuntAlternationBug(t *testing.T) {
	if testing.Short() {
		t.Skip("amplified stress")
	}
	for round := 0; round < 12; round++ {
		const keyRange = 8
		const goroutines = 8
		const ops = 6000
		s := New()
		var keyLocks [keyRange]sync.Mutex
		var present [keyRange]bool
		var wg sync.WaitGroup
		var failMu sync.Mutex
		var failed atomic.Bool
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := rand.New(rand.NewPCG(uint64(g), uint64(round)))
				for i := 0; i < ops; i++ {
					k := r.IntN(keyRange)
					keyLocks[k].Lock()
					switch r.IntN(3) {
					case 0:
						got := s.Add(int64(k))
						if got != !present[k] {
							failMu.Lock()
							if !failed.Load() {
								failed.Store(true)
								t.Errorf("round %d: Add(%d) = %v, present = %v; raw=%v\nbottom: %s",
									round, k, got, present[k], s.findRaw(int64(k)), s.dumpBottom())
							}
							failMu.Unlock()
						}
						present[k] = true
					case 1:
						got := s.Remove(int64(k))
						if got != present[k] {
							failMu.Lock()
							if !failed.Load() {
								failed.Store(true)
								t.Errorf("round %d: Remove(%d) = %v, present = %v; raw=%v\nbottom: %s",
									round, k, got, present[k], s.findRaw(int64(k)), s.dumpBottom())
							}
							failMu.Unlock()
						}
						present[k] = false
					default:
						got := s.Contains(int64(k))
						if got != present[k] {
							failMu.Lock()
							if !failed.Load() {
								failed.Store(true)
								t.Errorf("round %d: Contains(%d) = %v, present = %v; raw=%v\nbottom: %s",
									round, k, got, present[k], s.findRaw(int64(k)), s.dumpBottom())
							}
							failMu.Unlock()
						}
					}
					keyLocks[k].Unlock()
					if failed.Load() {
						return
					}
				}
			}()
		}
		wg.Wait()
		if failed.Load() {
			return
		}
	}
}
