package skiplist

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// TestPerKeySerializedAlternation emulates the boosted set's usage pattern:
// operations on the same key are serialized by an external per-key mutex
// (the abstract lock), while different keys run fully concurrently. Under
// that discipline each key's successful add/remove responses must strictly
// alternate — a violation indicates a linearizability bug in the skip list.
func TestPerKeySerializedAlternation(t *testing.T) {
	const keyRange = 8
	const goroutines = 8
	const ops = 8000
	s := New()
	var keyLocks [keyRange]sync.Mutex
	var present [keyRange]bool // guarded by keyLocks[k]
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 2024))
			for i := 0; i < ops; i++ {
				k := r.IntN(keyRange)
				keyLocks[k].Lock()
				switch r.IntN(3) {
				case 0:
					got := s.Add(int64(k))
					if got != !present[k] {
						t.Errorf("Add(%d) = %v, but present = %v", k, got, present[k])
					}
					present[k] = true
				case 1:
					got := s.Remove(int64(k))
					if got != present[k] {
						t.Errorf("Remove(%d) = %v, but present = %v", k, got, present[k])
					}
					present[k] = false
				default:
					if got := s.Contains(int64(k)); got != present[k] {
						t.Errorf("Contains(%d) = %v, but present = %v", k, got, present[k])
					}
				}
				keyLocks[k].Unlock()
				if t.Failed() {
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		if s.Contains(int64(k)) != present[k] {
			t.Errorf("final: Contains(%d) = %v, want %v", k, s.Contains(int64(k)), present[k])
		}
	}
}
