package core

import (
	"tboost/internal/boost"
	"time"

	"tboost/internal/deque"
	"tboost/internal/stm"
)

// Queue is the paper's boosted BlockingQueue (§3.3, Fig. 7): a bounded
// pipeline buffer with transactional conditional synchronization. The
// linearizable base is a blocking double-ended queue — needed because the
// inverse of offer() is takeLast() and the inverse of take() is
// offerFirst(), so both ends must be addressable.
//
// Two transactional semaphores mirror the queue's committed state: full
// counts free slots (blocking producers at capacity) and empty counts
// committed items (blocking consumers on an empty queue). Release is
// disposable, so an item offered by transaction T becomes visible to
// consumers only after T commits.
//
// As in the paper, a Queue is intended to connect one producer stage to one
// consumer stage (offer() commutes with take() only on a non-empty queue,
// and the takeLast inverse assumes no later uncommitted offers from other
// transactions). Use one Queue per pipeline edge.
type Queue[T any] struct {
	base  *deque.Deque[T]
	full  *Semaphore // free slots: block producers when zero
	empty *Semaphore // committed items: block consumers when zero
}

// NewQueue returns a queue with the given capacity and semaphore timeout
// DefaultSemTimeout.
func NewQueue[T any](capacity int) *Queue[T] {
	return NewQueueTimeout[T](capacity, DefaultSemTimeout)
}

// NewQueueTimeout returns a queue whose blocking offers and takes abort the
// calling transaction after timeout.
func NewQueueTimeout[T any](capacity int, timeout time.Duration) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{
		base:  deque.New[T](capacity),
		full:  NewSemaphoreTimeout(capacity, timeout),
		empty: NewSemaphoreTimeout(0, timeout),
	}
}

// Offer enqueues v, blocking while the queue is full. The item becomes
// visible to consumers when tx commits; if tx aborts, the logged inverse
// removes it from the back.
func (q *Queue[T]) Offer(tx *stm.Tx, v T) {
	q.full.Acquire(tx) // immediate: reserves a slot, inverse logged inside
	q.base.OfferLast(v)
	q.empty.Release(tx) // disposable: publishes the item at commit
	boost.Inverse(tx, func() { q.base.TakeLast() })
}

// Take dequeues the oldest committed item, blocking while none is
// available. If tx aborts, the logged inverse puts the item back at the
// front, preserving FIFO order.
func (q *Queue[T]) Take(tx *stm.Tx) T {
	q.empty.Acquire(tx) // immediate: claims a committed item
	v := q.base.TakeFirst()
	q.full.Release(tx) // disposable: frees the slot at commit
	boost.Inverse(tx, func() { q.base.OfferFirst(v) })
	return v
}

// LenCommitted reports how many committed items are available to consumers.
func (q *Queue[T]) LenCommitted() int { return q.empty.Value() }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return q.base.Cap() }
