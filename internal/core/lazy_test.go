package core

import (
	"errors"
	"sync"
	"testing"

	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// countingSet wraps a BaseSet and counts mutation calls that reached it, so
// tests can assert that fused-away ops never touch the base.
type countingSet[K comparable] struct {
	inner    BaseSet[K]
	mu       sync.Mutex
	adds     int
	removes  int
	contains int
}

func (c *countingSet[K]) Add(key K) bool {
	c.mu.Lock()
	c.adds++
	c.mu.Unlock()
	return c.inner.Add(key)
}

func (c *countingSet[K]) Remove(key K) bool {
	c.mu.Lock()
	c.removes++
	c.mu.Unlock()
	return c.inner.Remove(key)
}

func (c *countingSet[K]) Contains(key K) bool {
	c.mu.Lock()
	c.contains++
	c.mu.Unlock()
	return c.inner.Contains(key)
}

func (c *countingSet[K]) mutations() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.adds + c.removes
}

// TestLazySetReadYourWrites pins the paper-facing contract of the lazy
// discipline: inside the transaction every answer reflects the pending log,
// and after commit the base holds exactly the net effect.
func TestLazySetReadYourWrites(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet[int64](hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if !s.Add(tx, 1) {
			t.Error("Add(1) on empty set should report true")
		}
		if s.Add(tx, 1) {
			t.Error("second Add(1) should report false (read-your-writes)")
		}
		if !s.Contains(tx, 1) {
			t.Error("Contains(1) should see the pending add")
		}
		if !s.Remove(tx, 1) {
			t.Error("Remove(1) should see the pending add and report true")
		}
		if s.Contains(tx, 1) {
			t.Error("Contains(1) should see the pending remove")
		}
		if s.Remove(tx, 1) {
			t.Error("second Remove(1) should report false")
		}
		if !s.Add(tx, 2) {
			t.Error("Add(2) should report true")
		}
	})
	if s.Base().Contains(1) {
		t.Error("key 1 was added and removed in one tx; must not reach the base")
	}
	if !s.Base().Contains(2) {
		t.Error("key 2 committed but is missing from the base")
	}
}

// TestLazyFusionNeverTouchesBase asserts the elimination guarantee with a
// counting base: an add∘remove pair on one key performs zero base
// mutations, and the object's fusion counters record the eliminated pair.
func TestLazyFusionNeverTouchesBase(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	cs := &countingSet[int64]{inner: hashset.New[int64]()}
	s := NewLazyKeyedSet[int64](cs)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 7)
		s.Remove(tx, 7)
	})
	if n := cs.mutations(); n != 0 {
		t.Fatalf("fused add∘remove pair performed %d base mutations, want 0", n)
	}
	logged, fused := s.Engine().LazyStats()
	if logged != 2 || fused != 2 {
		t.Fatalf("LazyStats() = (%d logged, %d fused), want (2, 2)", logged, fused)
	}
}

// TestLazyAbortIsTruncation: a failed lazy transaction leaves the base
// untouched without replaying any inverse (there are none to replay).
func TestLazyAbortIsTruncation(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	cs := &countingSet[int64]{inner: hashset.New[int64]()}
	s := NewLazyKeyedSet[int64](cs)
	errBoom := errors.New("boom")
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 1)
		s.Add(tx, 2)
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Atomic error = %v, want %v", err, errBoom)
	}
	if n := cs.mutations(); n != 0 {
		t.Fatalf("aborted lazy tx performed %d base mutations, want 0", n)
	}
	if cs.inner.Contains(1) || cs.inner.Contains(2) {
		t.Fatal("aborted lazy adds are visible in the base")
	}
}

// TestLazyNestedSavepoint: a failed nested child truncates only its own
// suffix of the pending log; the parent's deferred ops survive and commit.
func TestLazyNestedSavepoint(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet[int64](hashset.New[int64]())
	errChild := errors.New("child failed")
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 1)
		err := tx.Nested(func(tx *stm.Tx) error {
			s.Add(tx, 2)
			if !s.Contains(tx, 2) {
				t.Error("child should see its own pending add")
			}
			return errChild
		})
		if !errors.Is(err, errChild) {
			t.Errorf("Nested error = %v, want %v", err, errChild)
		}
		if s.Contains(tx, 2) {
			t.Error("parent sees the rolled-back child's pending add")
		}
		if !s.Contains(tx, 1) {
			t.Error("child rollback destroyed the parent's pending add")
		}
	})
	if !s.Base().Contains(1) || s.Base().Contains(2) {
		t.Fatalf("base after commit: 1=%v 2=%v, want true/false",
			s.Base().Contains(1), s.Base().Contains(2))
	}
}

// TestLazyChildAttachedLogDiscarded: a pending log first attached inside a
// failed child is detached wholesale.
func TestLazyChildAttachedLogDiscarded(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet[int64](hashset.New[int64]())
	errChild := errors.New("child failed")
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		_ = tx.Nested(func(tx *stm.Tx) error {
			s.Add(tx, 9)
			return errChild
		})
		if got := tx.LazyCount(); got != 0 {
			t.Errorf("LazyCount after child rollback = %d, want 0", got)
		}
	})
	if s.Base().Contains(9) {
		t.Fatal("rolled-back child's lazy add reached the base")
	}
}

// TestLazyValidationAbortRetries: invalidate a transaction's optimistic
// observation before it commits; the drain must detect the stale read,
// abort with a validation-kind cause, and succeed on retry.
func TestLazyValidationAbortRetries(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet[int64](hashset.New[int64]())
	attempts := 0
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		attempts++
		// First attempt observes 5 absent; then the observation is
		// invalidated underfoot before the drain re-checks it.
		if got := s.Contains(tx, 5); got != (attempts > 1) {
			t.Errorf("attempt %d: Contains(5) = %v", attempts, got)
		}
		if attempts == 1 {
			// A conflicting committer slips in between the unlocked read
			// and this transaction's commit instant.
			stm.MustAtomicOn(sys, func(other *stm.Tx) {
				s.Add(other, 5)
			})
		}
	})
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one validation abort, one commit)", attempts)
	}
	if got := sys.Stats().AbortsValidation; got != 1 {
		t.Fatalf("AbortsValidation = %d, want 1", got)
	}
}

// TestLazyOrderedFlush: range queries on a lazy ordered set read their own
// pending writes via the early flush, and a post-flush abort still reverts
// everything.
func TestLazyOrderedFlush(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyOrderedSet()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(1); k <= 5; k++ {
			s.Add(tx, k)
		}
		if n := s.CountRange(tx, 1, 10); n != 5 {
			t.Errorf("CountRange over pending adds = %d, want 5", n)
		}
		// Post-flush ops go back to deferring.
		s.Add(tx, 6)
		if !s.Contains(tx, 6) {
			t.Error("post-flush pending add invisible")
		}
	})
	if n := quiescentCount(s, 1, 10); n != 6 {
		t.Fatalf("committed keys in [1,10] = %d, want 6", n)
	}

	errBoom := errors.New("boom")
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 100)
		if n := s.CountRange(tx, 100, 200); n != 1 {
			t.Errorf("CountRange after flush = %d, want 1", n)
		}
		return errBoom // flushed op must roll back via its inverse
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Atomic error = %v, want %v", err, errBoom)
	}
	if s.Base().Contains(100) {
		t.Fatal("aborted flushed add survived in the base")
	}
}

// TestLazyFlushInNestedChild: the hard case — a child early-flushes ops the
// *parent* deferred, then fails. The flush's undo must re-pend the parent's
// entries so they still commit with the parent.
func TestLazyFlushInNestedChild(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyOrderedSet()
	errChild := errors.New("child failed")
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 1) // parent defers
		err := tx.Nested(func(tx *stm.Tx) error {
			s.Add(tx, 2) // child defers
			// Flush applies BOTH pending adds eagerly (range queries
			// cannot be answered from a point log).
			if n := s.CountRange(tx, 1, 10); n != 2 {
				t.Errorf("CountRange in child = %d, want 2", n)
			}
			return errChild
		})
		if !errors.Is(err, errChild) {
			t.Errorf("Nested error = %v, want %v", err, errChild)
		}
		// Child rollback: base reverted (1 and 2 removed), parent's
		// pending add of 1 restored, child's add of 2 discarded.
		if !s.Contains(tx, 1) {
			t.Error("parent's deferred add lost by child rollback after flush")
		}
		if s.Contains(tx, 2) {
			t.Error("child's deferred add survived its rollback")
		}
	})
	if !s.Base().Contains(1) {
		t.Fatal("parent's add of 1 missing after commit")
	}
	if s.Base().Contains(2) {
		t.Fatal("child's add of 2 present after its rollback")
	}
}

// TestLazyMapLastWriterWins: put∘put fuses to one base write, delete of a
// key observed absent fuses away, and read-your-writes holds throughout.
func TestLazyMapLastWriterWins(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	m := NewLazyRBTreeMap[string]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if _, existed := m.Put(tx, 1, "a"); existed {
			t.Error("Put(1) on empty map reported an existing binding")
		}
		if old, existed := m.Put(tx, 1, "b"); !existed || old != "a" {
			t.Errorf("second Put(1) = (%q, %v), want (\"a\", true)", old, existed)
		}
		if v, ok := m.Get(tx, 1); !ok || v != "b" {
			t.Errorf("Get(1) = (%q, %v), want (\"b\", true)", v, ok)
		}
		// Delete of a key never bound: observed absent, fuses away.
		if _, existed := m.Delete(tx, 2); existed {
			t.Error("Delete(2) on empty map reported a binding")
		}
		m.Update(tx, 3, func(v string, ok bool) string {
			if ok {
				t.Error("Update(3) observed a binding on an empty map")
			}
			return "c"
		})
	})
	if v, ok := m.Base().Get(1); !ok || v != "b" {
		t.Fatalf("base Get(1) = (%q, %v), want (\"b\", true)", v, ok)
	}
	if _, ok := m.Base().Get(2); ok {
		t.Fatal("fused-away delete materialized key 2")
	}
	if v, ok := m.Base().Get(3); !ok || v != "c" {
		t.Fatalf("base Get(3) = (%q, %v), want (\"c\", true)", v, ok)
	}
}

// TestLazyMultisetDeltaFusion: n adds and m removes of one key fuse into a
// single net delta, and in-transaction counts track the pending view.
func TestLazyMultisetDeltaFusion(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	ms := NewLazyMultiset[string]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if got := ms.Add(tx, "k"); got != 1 {
			t.Errorf("first Add = %d, want 1", got)
		}
		if got := ms.Add(tx, "k"); got != 2 {
			t.Errorf("second Add = %d, want 2", got)
		}
		if got := ms.Add(tx, "k"); got != 3 {
			t.Errorf("third Add = %d, want 3", got)
		}
		if !ms.RemoveOne(tx, "k") {
			t.Error("RemoveOne should succeed at pending count 3")
		}
		if got := ms.Count(tx, "k"); got != 2 {
			t.Errorf("Count = %d, want 2", got)
		}
	})
	if got := ms.Base().Count("k"); got != 2 {
		t.Fatalf("base count = %d, want 2", got)
	}
	logged, fused := ms.obj.LazyStats()
	if logged != 4 || fused != 3 {
		// 4 deferred unit ops fused into one net +2 delta.
		t.Fatalf("LazyStats = (%d, %d), want (4, 3)", logged, fused)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if ms.RemoveOne(tx, "absent") {
			t.Error("RemoveOne of an absent key reported true")
		}
	})
}

// recordingJournal captures Emit calls so tests can assert the journal sees
// the post-fusion stream.
type recordingJournal struct {
	mu  sync.Mutex
	ops []struct {
		kind uint8
		key  int64
	}
}

func (j *recordingJournal) Emit(tx *stm.Tx, kind uint8, key int64, aux []byte) {
	j.mu.Lock()
	j.ops = append(j.ops, struct {
		kind uint8
		key  int64
	}{kind, key})
	j.mu.Unlock()
}

// TestLazyJournalSeesFusedStream: the bound journal (the WAL's hook)
// receives only the surviving net ops — the durable log shrinks with
// fusion — and an aborted transaction emits nothing.
func TestLazyJournalSeesFusedStream(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet[int64](hashset.New[int64]())
	j := &recordingJournal{}
	s.Engine().BindJournal(j)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 1) // survives
		s.Add(tx, 2) // annihilated by the remove below
		s.Remove(tx, 2)
		s.Add(tx, 3) // survives
	})
	if len(j.ops) != 2 {
		t.Fatalf("journal saw %d ops, want 2 (post-fusion)", len(j.ops))
	}
	for _, op := range j.ops {
		if op.kind != RedoAdd || (op.key != 1 && op.key != 3) {
			t.Fatalf("unexpected journal op kind=%d key=%d", op.kind, op.key)
		}
	}
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 4)
		return errors.New("abort")
	})
	if err == nil {
		t.Fatal("expected abort")
	}
	if len(j.ops) != 2 {
		t.Fatalf("aborted tx leaked %d ops into the journal", len(j.ops)-2)
	}
}

// TestLazyEngineConformance sanity-checks the lazy constructors' wiring.
func TestLazyEngineConformance(t *testing.T) {
	if !NewLazySkipListSet().Engine().Lazy() {
		t.Error("NewLazySkipListSet engine is not lazy")
	}
	if !NewLazyHashSetOf[string]().Engine().Lazy() {
		t.Error("NewLazyHashSetOf engine is not lazy")
	}
	if !NewLazyOrderedSet().Engine().Lazy() {
		t.Error("NewLazyOrderedSet engine is not lazy")
	}
	if NewSkipListSet().Engine().Lazy() {
		t.Error("eager NewSkipListSet engine claims lazy")
	}
	if NewLazyOrderedSet().Engine().Discipline() != boost.Ranged {
		t.Error("lazy ordered set should keep the Ranged discipline")
	}
}

// quiescentCount counts committed keys in [lo, hi] via the base skip list.
func quiescentCount(s *OrderedSet[int64], lo, hi int64) int {
	n := 0
	s.Base().AscendRange(lo, hi, func(int64) bool { n++; return true })
	return n
}

// TestLazyQuietOps pins the answer-free contract: quiet mutations log no
// observation — the transaction body performs zero base reads — they fuse
// as upserts whose no-op apply is not a validation failure, and they still
// feed read-your-writes answers to later answering ops on the same key.
func TestLazyQuietOps(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	cs := &countingSet[int64]{inner: hashset.New[int64]()}
	s := NewLazyKeyedSet[int64](cs)
	cs.inner.Add(1) // quiet add of 1 below lands on an already-present key
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.AddQuiet(tx, 1)    // upsert no-op at commit: 1 is already present
		s.AddQuiet(tx, 2)    // inserts
		s.RemoveQuiet(tx, 3) // upsert no-op: 3 was never present
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.RemoveQuiet(tx, 2)
		if s.Contains(tx, 2) {
			t.Error("Contains(2) should see the pending quiet remove")
		}
		if !s.Add(tx, 2) {
			t.Error("Add(2) after a quiet remove should report true")
		}
	})
	cs.mu.Lock()
	reads := cs.contains
	cs.mu.Unlock()
	if reads != 0 {
		t.Errorf("quiet-op transactions performed %d base reads, want 0 (no observations, no phase-B validation)", reads)
	}
	for k, want := range map[int64]bool{1: true, 2: true, 3: false} {
		if got := cs.inner.Contains(k); got != want {
			t.Errorf("base.Contains(%d) = %v, want %v", k, got, want)
		}
	}
}
