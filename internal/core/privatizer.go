package core

import (
	"sync"
	"tboost/internal/boost"
	"time"

	"tboost/internal/stm"
)

// Privatizer manages the hand-off of an object between transactional and
// non-transactional use — the "counters used to manage privatization"
// application of disposability the paper sketches in §2.
//
// Transactions call Access before touching the protected object; the
// accessor count rises immediately (inverse: decrement) and falls only
// after commit — the decrement is disposable, so a transaction that has
// logically finished may linger in the count without anyone being able to
// tell. A thread that wants private (non-transactional) access calls
// Privatize, which turns away new transactional accessors and waits for the
// count to drain; the returned release function re-opens transactional
// access.
type Privatizer struct {
	mu        sync.Mutex
	accessors int
	private   bool
	gen       chan struct{} // closed on each state change
}

// NewPrivatizer returns a Privatizer in shared (transactional) mode.
func NewPrivatizer() *Privatizer {
	return &Privatizer{}
}

func (p *Privatizer) broadcast() {
	if p.gen != nil {
		close(p.gen)
		p.gen = nil
	}
}

func (p *Privatizer) waitCh() chan struct{} {
	if p.gen == nil {
		p.gen = make(chan struct{})
	}
	return p.gen
}

// Access registers tx as a transactional accessor of the protected object,
// blocking (and eventually aborting tx) while the object is privatized.
// The registration ends after tx commits or aborts.
func (p *Privatizer) Access(tx *stm.Tx) {
	timeout := tx.System().LockTimeout()
	var timer *time.Timer
	var expired <-chan time.Time
	for {
		p.mu.Lock()
		if !p.private {
			p.accessors++
			p.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			// Undo on abort; disposable decrement after commit.
			boost.Inverse(tx, func() { p.exit() })
			boost.OnCommit(tx, func() { p.exit() })
			return
		}
		wait := p.waitCh()
		p.mu.Unlock()

		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
		}
		select {
		case <-wait:
		case <-expired:
			tx.System().CountLockTimeout()
			tx.Abort(stm.ErrAborted)
		}
	}
}

func (p *Privatizer) exit() {
	p.mu.Lock()
	p.accessors--
	if p.accessors == 0 {
		p.broadcast()
	}
	p.mu.Unlock()
}

// Privatize blocks new transactional accessors and waits until in-flight
// transactional accessors drain, then returns a release function. Between
// Privatize returning and release being called, the caller has exclusive
// non-transactional access to the protected object.
func (p *Privatizer) Privatize() (release func()) {
	p.mu.Lock()
	for p.private {
		// Another privatizer holds the object; queue behind it.
		wait := p.waitCh()
		p.mu.Unlock()
		<-wait
		p.mu.Lock()
	}
	p.private = true
	for p.accessors > 0 {
		wait := p.waitCh()
		p.mu.Unlock()
		<-wait
		p.mu.Lock()
	}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		p.private = false
		p.broadcast()
		p.mu.Unlock()
	}
}

// Accessors reports the current transactional accessor count. For tests.
func (p *Privatizer) Accessors() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.accessors
}
