package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestSemaphoreAcquireImmediate(t *testing.T) {
	s := NewSemaphore(2)
	sys := newSys()
	probe := make(chan int, 1)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Acquire(tx)
		probe <- s.Value() // decrement visible before commit
	})
	if v := <-probe; v != 1 {
		t.Fatalf("count during tx = %d, want 1 (acquire is immediate)", v)
	}
	if s.Value() != 1 {
		t.Fatalf("count after commit = %d", s.Value())
	}
}

func TestSemaphoreReleaseDeferredToCommit(t *testing.T) {
	s := NewSemaphore(0)
	sys := newSys()
	during := make(chan int, 1)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Release(tx)
		during <- s.Value()
	})
	if v := <-during; v != 0 {
		t.Fatalf("count during tx = %d, want 0 (release is disposable)", v)
	}
	if s.Value() != 1 {
		t.Fatalf("count after commit = %d, want 1", s.Value())
	}
}

func TestSemaphoreAcquireUndoneOnAbort(t *testing.T) {
	s := NewSemaphore(1)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		s.Acquire(tx)
		return boom
	})
	if s.Value() != 1 {
		t.Fatalf("count after aborted acquire = %d, want 1", s.Value())
	}
}

func TestSemaphoreReleaseDroppedOnAbort(t *testing.T) {
	s := NewSemaphore(0)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		s.Release(tx)
		return boom
	})
	if s.Value() != 0 {
		t.Fatalf("count after aborted release = %d, want 0", s.Value())
	}
}

func TestSemaphoreBlocksUntilCommittedRelease(t *testing.T) {
	s := NewSemaphoreTimeout(0, 5*time.Second)
	sys := newSys()
	acquired := make(chan struct{})
	go func() {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Acquire(tx) })
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("acquired a zero semaphore")
	case <-time.After(30 * time.Millisecond):
	}
	// A releasing transaction that is still open must not wake the waiter...
	holdOpen := make(chan struct{})
	released := make(chan struct{})
	go func() {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			s.Release(tx)
			close(released)
			<-holdOpen
		})
	}()
	<-released
	select {
	case <-acquired:
		t.Fatal("waiter woke before the releasing transaction committed")
	case <-time.After(30 * time.Millisecond):
	}
	close(holdOpen) // ...but its commit must.
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke after commit")
	}
}

func TestSemaphoreTimeoutAborts(t *testing.T) {
	s := NewSemaphoreTimeout(0, 5*time.Millisecond)
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 2})
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Acquire(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("err = %v, want retry exhaustion from semaphore timeouts", err)
	}
	if st := sys.Stats(); st.LockTimeouts != 2 {
		t.Fatalf("LockTimeouts = %d, want 2", st.LockTimeouts)
	}
	if s.Value() != 0 {
		t.Fatalf("count corrupted by timeouts: %d", s.Value())
	}
}

func TestSemaphoreManyWaitersAllWake(t *testing.T) {
	s := NewSemaphoreTimeout(0, 10*time.Second)
	sys := newSys()
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Acquire(tx) })
		}()
	}
	for i := 0; i < waiters; i++ {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Release(tx) })
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("not all waiters woke")
	}
	if s.Value() != 0 {
		t.Fatalf("final count = %d, want 0", s.Value())
	}
}

func TestSemaphoreNegativeInitialClamped(t *testing.T) {
	s := NewSemaphore(-5)
	if s.Value() != 0 {
		t.Fatalf("Value = %d, want 0", s.Value())
	}
}

func TestSemaphoreCountNeverNegative(t *testing.T) {
	s := NewSemaphoreTimeout(1, 50*time.Millisecond)
	sys := stm.NewSystem(stm.Config{LockTimeout: 30 * time.Millisecond, MaxRetries: 3})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = sys.Atomic(func(tx *stm.Tx) error {
					s.Acquire(tx)
					s.Release(tx)
					return nil
				})
				if s.Value() < 0 {
					t.Error("semaphore went negative")
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Value() != 1 {
		t.Fatalf("final count = %d, want 1", s.Value())
	}
}
