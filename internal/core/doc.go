// Package core implements transactional boosting — the paper's primary
// contribution. It turns highly-concurrent *linearizable* objects into
// equally concurrent *transactional* objects by wrapping them with:
//
//   - abstract locks keyed by method commutativity (two method calls that
//     commute never contend; two that do not are serialized by two-phase
//     locks, satisfying the paper's Rule 2, Commutativity Isolation);
//   - an operation-level undo log of inverse method calls, replayed in
//     reverse on abort (Rule 3, Compensating Actions);
//   - deferred disposable calls that run after commit or abort (Rule 4,
//     Disposable Methods).
//
// The base objects (skip list, heap, deque, hash set, ...) are treated as
// black boxes: the boosting layer never inspects their representation, only
// their abstract semantics. Thread-level synchronization stays inside the
// base object; transaction-level synchronization lives entirely here.
//
// Since the kernel extraction (DESIGN.md §7), the objects in this package
// are thin *specs* over internal/boost: each method states its abstract-lock
// demand and its outcome's inverse or disposables as an Op descriptor, and
// the kernel executes the descriptor against internal/stm and
// internal/lockmgr. No object in this package touches the undo log or the
// lock manager directly, and the collection types are generic over their key
// space (any comparable type; ordered types for range disciplines).
//
// The boosted objects provided:
//
//   - Set / Map / Multiset: collections with per-key or coarse abstract
//     locking over any comparable key type (§3.1)
//   - OrderedSet: a sorted set whose range queries hold interval-granular
//     abstract locks
//   - Heap: a priority queue with a readers/writer abstract lock and
//     Holder-based add inverses (§3.2)
//   - Queue + Semaphore: pipeline buffers with transactional conditional
//     synchronization (§3.3)
//   - UniqueID: the disposable-release ID generator (§3.4)
//   - RefCount, Pool: the reference-count and malloc/free disposability
//     patterns the paper sketches (§2)
package core
