package core

import (
	"errors"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestQueueOfferTakeRoundTrip(t *testing.T) {
	q := NewQueue[int](4)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { q.Offer(tx, 42) })
	var got int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { got = q.Take(tx) })
	if got != 42 {
		t.Fatalf("Take = %d", got)
	}
}

func TestQueueFIFOAcrossTransactions(t *testing.T) {
	q := NewQueue[int](8)
	sys := newSys()
	for i := 0; i < 5; i++ {
		i := i
		stm.MustAtomicOn(sys, func(tx *stm.Tx) { q.Offer(tx, i) })
	}
	for i := 0; i < 5; i++ {
		var got int
		stm.MustAtomicOn(sys, func(tx *stm.Tx) { got = q.Take(tx) })
		if got != i {
			t.Fatalf("Take #%d = %d", i, got)
		}
	}
}

func TestQueueItemInvisibleUntilCommit(t *testing.T) {
	q := NewQueueTimeout[int](4, 30*time.Millisecond)
	sys := stm.NewSystem(stm.Config{LockTimeout: 30 * time.Millisecond, MaxRetries: 1})
	offered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			q.Offer(tx, 1)
			close(offered)
			<-release
			return nil
		})
	}()
	<-offered
	// Consumer must block (and abort on semaphore timeout): the item is
	// not committed yet.
	err := sys.Atomic(func(tx *stm.Tx) error {
		q.Take(tx)
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("uncommitted item was consumable: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Now committed: take succeeds.
	var got int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { got = q.Take(tx) })
	if got != 1 {
		t.Fatalf("Take = %d", got)
	}
}

func TestQueueAbortedOfferLeavesNothing(t *testing.T) {
	q := NewQueue[int](4)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		q.Offer(tx, 9)
		return boom
	})
	if q.LenCommitted() != 0 {
		t.Fatalf("LenCommitted = %d after aborted offer", q.LenCommitted())
	}
	// Full capacity must be restored (the full semaphore's acquire was
	// undone).
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := 0; i < q.Cap(); i++ {
			q.Offer(tx, i)
		}
	})
}

func TestQueueAbortedTakeRestoresFront(t *testing.T) {
	q := NewQueue[int](4)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		q.Offer(tx, 1)
		q.Offer(tx, 2)
	})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		if v := q.Take(tx); v != 1 {
			t.Errorf("Take = %d", v)
		}
		return boom
	})
	// FIFO order preserved after the abort.
	var a, b int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		a = q.Take(tx)
		b = q.Take(tx)
	})
	if a != 1 || b != 2 {
		t.Fatalf("after abort: took %d,%d; want 1,2", a, b)
	}
}

func TestQueueCapacityBlocksProducer(t *testing.T) {
	q := NewQueueTimeout[int](1, 20*time.Millisecond)
	sys := stm.NewSystem(stm.Config{LockTimeout: 20 * time.Millisecond, MaxRetries: 1})
	stm.MustAtomicOn(newSys(), func(tx *stm.Tx) { q.Offer(tx, 1) })
	err := sys.Atomic(func(tx *stm.Tx) error {
		q.Offer(tx, 2) // full: must block then abort
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("offer to full queue: %v", err)
	}
}

func TestQueuePipelineThreeStages(t *testing.T) {
	// The paper's pipeline: stage1 -> q1 -> stage2 -> q2 -> stage3. Each
	// stage processes one item per transaction; all items must arrive in
	// order, transformed by both stages.
	q1 := NewQueueTimeout[int](4, 5*time.Second)
	q2 := NewQueueTimeout[int](4, 5*time.Second)
	sys := newSys()
	const n = 200
	go func() { // stage 1: produce
		for i := 0; i < n; i++ {
			i := i
			stm.MustAtomicOn(sys, func(tx *stm.Tx) { q1.Offer(tx, i) })
		}
	}()
	go func() { // stage 2: transform
		for i := 0; i < n; i++ {
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				v := q1.Take(tx)
				q2.Offer(tx, v*10)
			})
		}
	}()
	// stage 3: consume and verify order
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		for i := 0; i < n; i++ {
			var v int
			stm.MustAtomicOn(sys, func(tx *stm.Tx) { v = q2.Take(tx) })
			if v != i*10 {
				t.Errorf("stage3 item %d = %d, want %d", i, v, i*10)
				return
			}
		}
	}()
	select {
	case <-doneCh:
	case <-time.After(60 * time.Second):
		t.Fatal("pipeline stalled")
	}
}

func TestQueueCapClamped(t *testing.T) {
	q := NewQueue[int](0)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", q.Cap())
	}
}
