package core

import (
	"sync/atomic"

	"tboost/internal/boost"
	"tboost/internal/stm"
)

// Counter is a boosted transactional accumulator exploiting the
// increment/read commutativity lattice: Add(δ) commutes with Add(δ') for
// any deltas, so increments demand only the *shared* mode of the kernel's
// readers/writer discipline and proceed fully in parallel; Get does not
// commute with Add, so it demands exclusive mode. (Note the inversion
// relative to a storage-level readers/writer lock: here the "writers" share
// and the "reader" excludes — conflict is a property of abstract semantics,
// not of loads and stores.)
//
// A shared counter is the paper's canonical read/write-conflict hot-spot
// (§3.4); boosting turns it into a conflict-free fetch-and-add for the
// common increment-only usage.
type Counter struct {
	value atomic.Int64
	obj   *boost.Object[int64]
}

// NewCounter returns a counter with the given initial value.
func NewCounter(initial int64) *Counter {
	c := &Counter{obj: boost.NewReadWrite[int64]()}
	c.value.Store(initial)
	return c
}

// Add adds delta to the counter. The update takes effect immediately (the
// base fetch-and-add is the linearization); the inverse subtracts it.
// Concurrent transactional Adds never conflict. The whole call is one
// descriptor: shared demand plus a delta-determined inverse.
func (c *Counter) Add(tx *stm.Tx, delta int64) {
	c.obj.Apply(tx, boost.Op[int64]{
		Demand:  boost.DemandShared,
		Inverse: func() { c.value.Add(-delta) },
	})
	c.value.Add(delta)
}

// Get returns the counter's value. Reading does not commute with adding,
// so Get demands the exclusive mode, serializing against in-flight Adds.
func (c *Counter) Get(tx *stm.Tx) int64 {
	c.obj.Acquire(tx, boost.Excl[int64]())
	return c.value.Load()
}

// ValueQuiescent returns the committed value without a transaction.
// Meaningful only when no transactions are active.
func (c *Counter) ValueQuiescent() int64 { return c.value.Load() }
