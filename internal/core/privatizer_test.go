package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestPrivatizerAccessorCountLifecycle(t *testing.T) {
	p := NewPrivatizer()
	sys := newSys()
	during := make(chan int, 1)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		p.Access(tx)
		during <- p.Accessors()
	})
	if v := <-during; v != 1 {
		t.Fatalf("accessors during tx = %d, want 1", v)
	}
	if p.Accessors() != 0 {
		t.Fatalf("accessors after commit = %d, want 0 (disposable exit ran)", p.Accessors())
	}
}

func TestPrivatizerAbortUndoesAccess(t *testing.T) {
	p := NewPrivatizer()
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		p.Access(tx)
		return boom
	})
	if p.Accessors() != 0 {
		t.Fatalf("accessors after abort = %d", p.Accessors())
	}
	// And no double-exit: a subsequent normal cycle stays balanced.
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { p.Access(tx) })
	if p.Accessors() != 0 {
		t.Fatalf("accessors unbalanced: %d", p.Accessors())
	}
}

func TestPrivatizeWaitsForAccessorsToDrain(t *testing.T) {
	p := NewPrivatizer()
	sys := newSys()
	inTx := make(chan struct{})
	releaseTx := make(chan struct{})
	go func() {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			p.Access(tx)
			close(inTx)
			<-releaseTx
		})
	}()
	<-inTx
	privatized := make(chan func(), 1)
	go func() { privatized <- p.Privatize() }()
	select {
	case <-privatized:
		t.Fatal("Privatize returned while a transactional accessor is active")
	case <-time.After(30 * time.Millisecond):
	}
	close(releaseTx)
	select {
	case release := <-privatized:
		release()
	case <-time.After(5 * time.Second):
		t.Fatal("Privatize never completed after accessor drained")
	}
}

func TestPrivatizedBlocksTransactions(t *testing.T) {
	p := NewPrivatizer()
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 2})
	release := p.Privatize()
	err := sys.Atomic(func(tx *stm.Tx) error {
		p.Access(tx) // must time out while privatized
		return nil
	})
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("transaction ran during privatization: %v", err)
	}
	release()
	if err := sys.Atomic(func(tx *stm.Tx) error {
		p.Access(tx)
		return nil
	}); err != nil {
		t.Fatalf("transaction blocked after release: %v", err)
	}
}

func TestPrivatizerExclusionInvariant(t *testing.T) {
	// The real guarantee: non-transactional private sections never overlap
	// transactional access to the protected value.
	p := NewPrivatizer()
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	var txActive, privActive atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(stop) })
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = sys.Atomic(func(tx *stm.Tx) error {
					p.Access(tx)
					txActive.Add(1)
					if privActive.Load() > 0 {
						violations.Add(1)
					}
					txActive.Add(-1)
					return nil
				})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			release := p.Privatize()
			privActive.Add(1)
			if txActive.Load() > 0 {
				violations.Add(1)
			}
			time.Sleep(time.Millisecond)
			privActive.Add(-1)
			release()
		}
	}()
	wg.Wait()
	if violations.Load() > 0 {
		t.Fatalf("%d overlaps between private and transactional access", violations.Load())
	}
}

func TestPrivatizerTwoPrivatizersQueue(t *testing.T) {
	p := NewPrivatizer()
	r1 := p.Privatize()
	second := make(chan func(), 1)
	go func() { second <- p.Privatize() }()
	select {
	case <-second:
		t.Fatal("second Privatize succeeded while first held")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	select {
	case r2 := <-second:
		r2()
	case <-time.After(5 * time.Second):
		t.Fatal("second privatizer never acquired")
	}
}
