package core

// Lazy drain callbacks and lazy constructors for the core specs.
//
// A lazy boosted object defers every mutation to a per-transaction pending
// log (see internal/boost/lazy.go); the methods in set.go/map.go/
// multiset.go branch there on Object.Lazy(). This file holds the other half
// of each spec: how the commit-time drain re-validates an observation under
// the just-acquired abstract lock, and how it applies one fused net op to
// the base — emitting the post-fusion forward image so durable logs carry
// the shrunken op stream.

import (
	"cmp"

	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/rbtree"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// LazyValidate re-checks a membership observation under the key's abstract
// lock: the base must still answer what the unlocked read answered.
func (s *Set[K]) LazyValidate(e boost.LazyEntry[K]) bool {
	return s.base.Contains(e.Key) == e.OK
}

// LazyApply applies one fused net set op. A checked op (e.OK: the key was
// observed, and an add only survives fusion when observed absent) is
// validate-by-apply: base.Add failing at the commit instant proves the
// observation stale — and, the failing call being a no-op, leaves the base
// untouched. Returning false hands the drain its abort-and-retry signal
// without a separate phase-B traversal. A quiet op (no observation — the
// caller never asked for an answer) is an upsert: a no-op base call just
// means the key was already in the desired state. Either way the actual
// effect is stashed in e.N for LazyUnapply, and only an effective call
// records an inverse or emits a forward image. eager=true is the
// early-flush path: the transaction may still abort, so the inverse is
// recorded exactly as the eager methods record it.
func (s *Set[K]) LazyApply(tx *stm.Tx, e *boost.LazyEntry[K], eager bool) bool {
	// e points into the log's net-op scratch, which later fusions rebuild;
	// closures that outlive this call must capture the key by value.
	k := e.Key
	// The drain (and the early flush) holds k's abstract lock, so the
	// seed-before-mutate protocol applies here exactly as in the eager
	// methods. A version recorded during the drain is discarded with the
	// transaction if a later log's apply-check fails and LazyUnapply runs.
	live := s.obj.VersioningLive(tx)
	if live && s.obj.NeedsSeed(k) {
		s.obj.SeedVersion(tx, k, boost.Version{Present: s.base.Contains(k)})
	}
	switch e.Kind {
	case boost.LazyAdd:
		if !s.base.Add(k) {
			return !e.OK
		}
		e.N = 1
		if eager {
			s.obj.Record(tx, boost.Op[K]{Inverse: func() { s.base.Remove(k) }})
		}
		s.obj.Emit(tx, RedoAdd, k, nil)
		if live {
			s.obj.RecordVersion(tx, k, boost.Version{Present: true})
		}
	case boost.LazyRemove:
		if !s.base.Remove(k) {
			return !e.OK
		}
		e.N = 1
		if eager {
			s.obj.Record(tx, boost.Op[K]{Inverse: func() { s.base.Add(k) }})
		}
		s.obj.Emit(tx, RedoRemove, k, nil)
		if live {
			s.obj.RecordVersion(tx, k, boost.Version{Present: false})
		}
	}
	return true
}

// LazyUnapply inverts one successfully applied net set op (cross-log undo
// after a later log's apply-check failed; the key's abstract lock is still
// held). An apply that was a no-op upsert (e.N left zero) has nothing to
// invert.
func (s *Set[K]) LazyUnapply(e *boost.LazyEntry[K]) {
	if e.N == 0 {
		return
	}
	switch e.Kind {
	case boost.LazyAdd:
		s.base.Remove(e.Key)
	case boost.LazyRemove:
		s.base.Add(e.Key)
	}
}

// LazyValidate re-checks a count observation under the key's abstract lock.
func (m *Multiset[K]) LazyValidate(e boost.LazyEntry[K]) bool {
	return int64(m.base.Count(e.Key)) == e.N
}

// LazyApply applies one fused multiset delta as |N| unit calls, emitting
// each forward image (checkpoints compress runs with RedoAddN; the live
// stream keeps replay unit-for-unit). The delta can never underflow the
// validated observed count: every deferred RemoveOne checked the
// transaction's running view was positive.
// Multisets are phase-B validated (a delta applies unconditionally), so the
// apply always reports success.
func (m *Multiset[K]) LazyApply(tx *stm.Tx, e *boost.LazyEntry[K], eager bool) bool {
	if e.Kind != boost.LazyInc {
		return true
	}
	k := e.Key // capture by value: e points into reusable net-op scratch
	live := m.obj.VersioningLive(tx)
	if live && e.N != 0 && m.obj.NeedsSeed(k) {
		m.seedCount(tx, k)
	}
	for n := e.N; n > 0; n-- {
		m.base.Add(k)
		if eager {
			m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.RemoveOne(k) }})
		}
		m.obj.Emit(tx, RedoAdd, k, nil)
	}
	for n := e.N; n < 0; n++ {
		if !m.base.RemoveOne(k) {
			break
		}
		if eager {
			m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Add(k) }})
		}
		m.obj.Emit(tx, RedoRemove, k, nil)
	}
	if live && e.N != 0 {
		c := int64(m.base.Count(k))
		m.obj.RecordVersion(tx, k, boost.Version{Present: c > 0, N: c})
	}
	return true
}

// LazyUnapply inverts one applied multiset delta unit-for-unit.
func (m *Multiset[K]) LazyUnapply(e *boost.LazyEntry[K]) {
	for n := e.N; n > 0; n-- {
		m.base.RemoveOne(e.Key)
	}
	for n := e.N; n < 0; n++ {
		m.base.Add(e.Key)
	}
}

// LazyValidate re-checks a binding observation under the key's abstract
// lock, comparing presence and (when present) the value via the lazyEq
// closure the lazy constructor installed.
func (m *Map[K, V]) LazyValidate(e boost.LazyEntry[K]) bool {
	cur, ok := m.base.Get(e.Key)
	return m.lazyEq(e.Val, e.OK, cur, ok)
}

// LazyApply applies one fused net map op: the last binding written (fusion
// is last-writer-wins) or a delete that survived (the key was observed
// present, or never observed). Maps are phase-B validated — a binding
// observation compares values, which the apply's answer cannot check — so
// the apply always reports success; the displaced binding is stashed into
// the entry for LazyUnapply.
func (m *Map[K, V]) LazyApply(tx *stm.Tx, e *boost.LazyEntry[K], eager bool) bool {
	k := e.Key // capture by value: e points into reusable net-op scratch
	live := m.obj.VersioningLive(tx)
	if live && m.obj.NeedsSeed(k) {
		m.seedBinding(tx, k)
	}
	switch e.Kind {
	case boost.LazyPut:
		val := e.Val.(V)
		old, existed := m.base.Put(k, val)
		if eager {
			if existed {
				m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Put(k, old) }})
			} else {
				m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Delete(k) }})
			}
		}
		if m.encVal != nil {
			m.obj.Emit(tx, RedoAdd, k, m.encVal(val))
		}
		if live {
			m.obj.RecordVersion(tx, k, boost.Version{Present: true, Val: val})
		}
		e.Val, e.OK = old, existed
	case boost.LazyDelete:
		old, existed := m.base.Delete(k)
		if !existed {
			return true
		}
		if eager {
			m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Put(k, old) }})
		}
		m.obj.Emit(tx, RedoRemove, k, nil)
		if live {
			m.obj.RecordVersion(tx, k, boost.Version{Present: false})
		}
		e.Val, e.OK = old, existed
	}
	return true
}

// LazyUnapply restores the binding a net map op displaced, from the state
// LazyApply stashed into the entry.
func (m *Map[K, V]) LazyUnapply(e *boost.LazyEntry[K]) {
	switch e.Kind {
	case boost.LazyPut:
		if e.OK {
			m.base.Put(e.Key, e.Val.(V))
		} else {
			m.base.Delete(e.Key)
		}
	case boost.LazyDelete:
		if e.OK {
			m.base.Put(e.Key, e.Val.(V))
		}
	}
}

// Interface conformance: the specs are their own drain callbacks.
var (
	_ boost.LazySpec[int64] = (*Set[int64])(nil)
	_ boost.LazySpec[int64] = (*Multiset[int64])(nil)
	_ boost.LazySpec[int64] = (*Map[int64, int64])(nil)
)

// NewLazyKeyedSet boosts base lazily with one abstract lock per key: every
// mutation defers to the pending log, locks are taken only for the commit
// instant, and add∘remove pairs on one key annihilate before touching base.
func NewLazyKeyedSet[K comparable](base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewLazyKeyed[K]().EnableVersions()}
}

// NewLazyKeyedSetStripes is NewLazyKeyedSet with an explicit lock-table
// stripe count.
func NewLazyKeyedSetStripes[K comparable](base BaseSet[K], stripes int) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewLazyKeyedStripes[K](stripes).EnableVersions()}
}

// NewLazyCoarseSet boosts base lazily behind a single abstract lock, held
// only for the commit instant — coarse hold time shrinks from the whole
// body to the drain.
func NewLazyCoarseSet[K comparable](base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewLazyCoarse[K]().EnableVersions()}
}

// NewLazyHashSetOf returns a lazy transactional set over the striped
// concurrent hash set for any comparable key type.
func NewLazyHashSetOf[K comparable]() *Set[K] {
	return NewLazyKeyedSet[K](hashset.New[K]())
}

// NewLazySkipListSet returns the lazy counterpart of NewSkipListSet: the
// lock-free skip list under deferred per-key boosting.
func NewLazySkipListSet() *Set[int64] {
	return NewLazyKeyedSet[int64](skiplist.New())
}

// NewLazyOrderedSet returns a lazy boosted sorted set of int64 keys.
func NewLazyOrderedSet() *OrderedSet[int64] {
	return NewLazyOrderedSetOf[int64]()
}

// NewLazyOrderedSetOf returns a lazy boosted sorted set: point ops defer to
// the pending log and lock [k,k] only at commit; range queries early-flush
// the log and run eagerly under their interval lock.
func NewLazyOrderedSetOf[K cmp.Ordered]() *OrderedSet[K] {
	sl := skiplist.NewOf[K]()
	return &OrderedSet[K]{Set: Set[K]{base: sl, obj: boost.NewLazyRanged[K]().EnableVersions()}, sl: sl}
}

// NewLazyMultiset returns a lazy boosted bag: per-key deltas accumulate in
// the pending log and fuse into one net increment per key at commit.
func NewLazyMultiset[K comparable]() *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewLazyKeyed[K]().EnableVersions()}
}

// NewLazyRBTreeMap is the lazy counterpart of NewRBTreeMap, with V bound to
// comparable (see NewLazyMap).
func NewLazyRBTreeMap[V comparable]() *Map[int64, V] {
	return NewLazyMap[int64, V](rbtree.NewSync[V]())
}

// NewLazyMap boosts a linearizable base map lazily. Unlike NewMap, V must
// be comparable: commit-time validation compares the observed binding
// against the current one.
func NewLazyMap[K, V comparable](base BaseMap[K, V]) *Map[K, V] {
	m := &Map[K, V]{base: base, obj: boost.NewLazyKeyed[K]().EnableVersions()}
	m.lazyEq = func(obsVal any, obsOK bool, cur V, curOK bool) bool {
		if obsOK != curOK {
			return false
		}
		if !obsOK {
			return true
		}
		return obsVal.(V) == cur
	}
	return m
}
