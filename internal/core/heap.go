package core

import (
	"sync/atomic"

	"tboost/internal/boost"
	"tboost/internal/cheap"
	"tboost/internal/stm"
)

// Holder wraps a key inserted into the boosted heap. Most heaps provide no
// inverse for add(), so the paper synthesizes one (§3.2): undoing an add
// merely sets the holder's deleted flag, and RemoveMin discards deleted
// holders when they surface. The holder also carries an optional payload.
type Holder[V any] struct {
	Key     int64
	Val     V
	deleted atomic.Bool
}

// Deleted reports whether the holder has been logically removed.
func (h *Holder[V]) Deleted() bool { return h.deleted.Load() }

// HeapMode selects the abstract-lock discipline for a boosted heap.
type HeapMode int

const (
	// RWLocked grants add() a shared lock (adds commute with each other)
	// and removeMin()/min() an exclusive lock — the paper's discipline.
	RWLocked HeapMode = iota
	// Exclusive grants every operation the exclusive lock; the Fig. 11
	// baseline that quantifies what the reader/writer discrimination buys.
	Exclusive
)

// BaseHeap is the abstract specification a linearizable min-priority queue
// must satisfy to be boostable. Both the fine-grained Hunt heap
// (internal/cheap) and the coarse-locked pairing heap (internal/pairheap)
// satisfy it; the boosting layer cannot tell them apart.
type BaseHeap[V any] interface {
	Add(key int64, val V) bool
	RemoveMin() (int64, V, bool)
	Min() (int64, V, bool)
	Len() int
}

// Heap is a boosted transactional min-priority queue over any linearizable
// base heap. Duplicate keys are allowed.
//
// The method specs are mode-independent: Add demands shared mode (adds
// commute), RemoveMin and Min demand exclusive mode. RWLocked realizes the
// demands with a readers/writer engine; Exclusive realizes them with a
// coarse engine that maps both demands onto one lock — the two Fig. 11
// configurations differ only in the kernel discipline behind the same spec.
type Heap[V any] struct {
	base BaseHeap[*Holder[V]]
	obj  *boost.Object[int64]
	mode HeapMode
}

// NewHeap returns a boosted heap in the given mode over the fine-grained
// concurrent Hunt-style heap.
func NewHeap[V any](mode HeapMode) *Heap[V] {
	return NewHeapFromBase[V](cheap.New[*Holder[V]](), mode)
}

// NewHeapCapacity returns a boosted heap with a bounded Hunt-style base.
func NewHeapCapacity[V any](mode HeapMode, capacity int) *Heap[V] {
	return NewHeapFromBase[V](cheap.NewCapacity[*Holder[V]](capacity), mode)
}

// NewHeapFromBase boosts an arbitrary linearizable base heap. The base must
// store *Holder[V] payloads (the holder indirection is how the boosting
// layer synthesizes an inverse for Add, §3.2).
func NewHeapFromBase[V any](base BaseHeap[*Holder[V]], mode HeapMode) *Heap[V] {
	obj := boost.NewReadWrite[int64]()
	if mode == Exclusive {
		obj = boost.NewCoarse[int64]()
	}
	return &Heap[V]{base: base, obj: obj, mode: mode}
}

// Mode reports the heap's abstract-lock discipline.
func (h *Heap[V]) Mode() HeapMode { return h.mode }

// Add inserts val with the given priority key. The inverse marks the
// holder deleted rather than restructuring the heap.
func (h *Heap[V]) Add(tx *stm.Tx, key int64, val V) {
	h.obj.Acquire(tx, boost.Shared[int64]()) // adds commute: shared demand
	holder := &Holder[V]{Key: key, Val: val}
	if !h.base.Add(key, holder) {
		tx.Abort(stm.ErrAborted) // base heap at capacity; retry later
	}
	h.obj.Record(tx, boost.Op[int64]{Inverse: func() { holder.deleted.Store(true) }})
}

// RemoveMin removes and returns the smallest key and its value; ok is false
// if the heap is empty. Deleted holders surfacing at the root are discarded.
// Inverse: put the removed holder back.
func (h *Heap[V]) RemoveMin(tx *stm.Tx) (key int64, val V, ok bool) {
	h.obj.Acquire(tx, boost.Excl[int64]()) // removeMin commutes with nothing that observes the min
	for {
		k, holder, found := h.base.RemoveMin()
		if !found {
			var zero V
			return 0, zero, false
		}
		if holder.deleted.Load() {
			continue // lazily discard aborted adds
		}
		h.obj.Record(tx, boost.Op[int64]{Inverse: func() {
			holder.deleted.Store(false)
			h.base.Add(k, holder)
		}})
		return k, holder.Val, true
	}
}

// Min returns the smallest key and value without removing them; ok is false
// if the heap is empty. Needs no inverse (§3.2) but demands the exclusive
// mode because its answer does not commute with removeMin or with adds of
// smaller keys.
func (h *Heap[V]) Min(tx *stm.Tx) (key int64, val V, ok bool) {
	h.obj.Acquire(tx, boost.Excl[int64]())
	for {
		k, holder, found := h.base.Min()
		if !found {
			var zero V
			return 0, zero, false
		}
		if holder.deleted.Load() {
			// Physically drop the dead holder so Min can terminate.
			h.base.RemoveMin()
			continue
		}
		return k, holder.Val, true
	}
}

// LenQuiescent reports the number of holders (live and deleted) in the base
// heap. Meaningful only when no transactions are active.
func (h *Heap[V]) LenQuiescent() int { return h.base.Len() }

// DrainQuiescent removes every live key in ascending order. For tests.
func (h *Heap[V]) DrainQuiescent() []int64 {
	var out []int64
	for {
		k, holder, ok := h.base.RemoveMin()
		if !ok {
			return out
		}
		if !holder.deleted.Load() {
			out = append(out, k)
		}
	}
}
