package core

import (
	"math/rand/v2"
	"testing"
	"time"

	"tboost/internal/hashset"
	"tboost/internal/rbtree"
	"tboost/internal/stm"
)

// FuzzAdaptiveStaticEquivalence interprets fuzz input bytes as a program of
// transactions over three objects — a set, a multiset, and a map — and runs
// the same program on three separate Systems: against static-keyed objects
// (the reference), against adaptive objects, and against lazy adaptive
// objects. Between transactions the runner forces granularity migrations on
// the adaptive worlds (promote, then demote, round-robin — the test hook the
// migration protocol exposes), so transactions run before, after, and across
// repeated Coarse↔Keyed transitions. Every op's return value, every
// transaction's outcome (commit / user abort), and the final object states
// must match the static-keyed reference bit-for-bit: lock granularity, and
// migrating it at runtime, is invisible to sequential semantics.
//
// Byte encoding: op = b>>5, k = b&7, v = (b>>3)&3.
//
//	0  set.Add(k), or AddQuiet(k) when v==3
//	1  set.Remove(k), or RemoveQuiet(k) when v==3
//	2  set.Contains(k)
//	3  multiset: v&1==0 Add(k), else RemoveOne(k)
//	4  map: v<2 Put(k, b), v==2 Get(k), v==3 Delete(k)
//	5  v<2 multiset.Count(k), else map.Get(k^1)
//	6  end tx: v&1==1 abort (user error), else commit
//	7  nested: v&1==0 begin child (runs until next 6/7 terminator);
//	   v&1==1 end child with abort at depth>0, user-abort tx at depth 0
//
// Run continuously with:
//
//	go test -fuzz FuzzAdaptiveStaticEquivalence ./internal/core
func FuzzAdaptiveStaticEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x20, 0x00, 0xc0, 0x00, 0x20}) // add/remove/add, commit, add again
	f.Add([]byte{0x00, 0x01, 0xd0, 0x02})             // cross-key ops ending in user abort
	f.Add([]byte{0xe0, 0x00, 0x68, 0xe8, 0x01, 0xc0}) // nested child aborts, parent commits
	f.Add([]byte{0x61, 0x61, 0x69, 0xa0, 0xa8, 0xc0}) // multiset deltas + counts
	f.Add([]byte{0x80, 0x98, 0x90, 0x88, 0xc0})       // map put/delete/get churn
	f.Add([]byte{0xc0, 0x00, 0xc0, 0x00, 0xc0, 0x00}) // many tiny txs: migration per boundary
	seed := make([]byte, 96)
	r := rand.New(rand.NewPCG(9, 9))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, prog []byte) {
		ref := newAdaptiveFuzzWorld("keyed")
		rt, ro := runAdaptiveFuzzProgram(ref, prog)
		for _, kind := range []string{"adaptive", "lazy-adaptive"} {
			w := newAdaptiveFuzzWorld(kind)
			wt, wo := runAdaptiveFuzzProgram(w, prog)
			if len(ro) != len(wo) {
				t.Fatalf("%s: tx count diverged: keyed %d, got %d", kind, len(ro), len(wo))
			}
			for i := range ro {
				if ro[i] != wo[i] {
					t.Fatalf("%s: tx %d outcome diverged: keyed commit=%v, got commit=%v", kind, i, ro[i], wo[i])
				}
			}
			if len(rt) != len(wt) {
				t.Fatalf("%s: trace length diverged: keyed %d, got %d", kind, len(rt), len(wt))
			}
			for i := range rt {
				if rt[i] != wt[i] {
					t.Fatalf("%s: trace[%d] diverged: keyed %d, got %d", kind, i, rt[i], wt[i])
				}
			}
		}
	})
}

type adaptiveFuzzWorld struct {
	sys *stm.System
	set *Set[int64]
	ms  *Multiset[int64]
	mp  *Map[int64, int64]
}

func newAdaptiveFuzzWorld(kind string) *adaptiveFuzzWorld {
	sys := stm.NewSystem(stm.Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})
	w := &adaptiveFuzzWorld{sys: sys}
	switch kind {
	case "keyed":
		w.set = NewHashSetOf[int64]()
		w.ms = NewMultiset[int64]()
		w.mp = NewRBTreeMap[int64]()
	case "adaptive":
		w.set = NewAdaptiveSet[int64](sys, hashset.New[int64]())
		w.ms = NewAdaptiveMultiset[int64](sys)
		w.mp = NewAdaptiveMap[int64, int64](sys, rbtree.NewSync[int64]())
	case "lazy-adaptive":
		w.set = NewLazyAdaptiveSet[int64](sys, hashset.New[int64]())
		w.ms = NewLazyAdaptiveMultiset[int64](sys)
		w.mp = NewLazyAdaptiveMap[int64, int64](sys, rbtree.NewSync[int64]())
	}
	return w
}

// forceMigration is the mid-run promotion hook: between transactions the
// runner walks the adaptive worlds through promote → demote → promote …
// (no-ops on the static reference, where ForcePromote reports false).
func (w *adaptiveFuzzWorld) forceMigration(step int) {
	if step%2 == 0 {
		w.set.Engine().ForcePromote()
		w.ms.Engine().ForcePromote()
		w.mp.Engine().ForcePromote()
	} else {
		w.set.Engine().ForceDemote()
		w.ms.Engine().ForceDemote()
		w.mp.Engine().ForceDemote()
	}
}

// runAdaptiveFuzzProgram executes the program single-threaded, exactly like
// runLazyEagerProgram: control flow depends only on the program bytes, each
// transaction body resets pc and trace to the attempt's start, and the trace
// ends with a full read-back of every object's final state.
func runAdaptiveFuzzProgram(w *adaptiveFuzzWorld, prog []byte) (trace []int64, outcomes []bool) {
	e := &lazyEagerExec{prog: prog}
	for e.pc < len(e.prog) {
		pcStart, traceStart := e.pc, len(e.trace)
		err := w.sys.Atomic(func(tx *stm.Tx) error {
			e.pc, e.trace = pcStart, e.trace[:traceStart]
			return adaptiveFuzzBody(e, tx, w, 0)
		})
		outcomes = append(outcomes, err == nil)
		// Migration fires OUTSIDE the transaction (a sync ForcePromote inside
		// would drain-wait on its own call): the next transaction latches the
		// new granularity, which must change nothing observable.
		w.forceMigration(len(outcomes))
	}
	stm.MustAtomicOn(w.sys, func(tx *stm.Tx) {
		for k := int64(0); k < 8; k++ {
			e.rec(b2i(w.set.Contains(tx, k)))
			e.rec(int64(w.ms.Count(tx, k)))
			mv, mok := w.mp.Get(tx, k)
			e.rec(mv, b2i(mok))
		}
	})
	return e.trace, outcomes
}

func adaptiveFuzzBody(e *lazyEagerExec, tx *stm.Tx, w *adaptiveFuzzWorld, depth int) error {
	for e.pc < len(e.prog) {
		b := e.prog[e.pc]
		e.pc++
		k, v := int64(b&7), (b>>3)&3
		switch b >> 5 {
		case 0:
			if v == 3 {
				w.set.AddQuiet(tx, k)
			} else {
				e.rec(b2i(w.set.Add(tx, k)))
			}
		case 1:
			if v == 3 {
				w.set.RemoveQuiet(tx, k)
			} else {
				e.rec(b2i(w.set.Remove(tx, k)))
			}
		case 2:
			e.rec(b2i(w.set.Contains(tx, k)))
		case 3:
			if v&1 == 0 {
				e.rec(int64(w.ms.Add(tx, k)))
			} else {
				e.rec(b2i(w.ms.RemoveOne(tx, k)))
			}
		case 4:
			switch {
			case v < 2:
				old, ok := w.mp.Put(tx, k, int64(b))
				e.rec(old, b2i(ok))
			case v == 2:
				val, ok := w.mp.Get(tx, k)
				e.rec(val, b2i(ok))
			default:
				old, ok := w.mp.Delete(tx, k)
				e.rec(old, b2i(ok))
			}
		case 5:
			if v < 2 {
				e.rec(int64(w.ms.Count(tx, k)))
			} else {
				val, ok := w.mp.Get(tx, k^1)
				e.rec(val, b2i(ok))
			}
		case 6:
			if v&1 == 1 {
				return errFuzzUserAbort
			}
			return nil
		case 7:
			if v&1 == 1 {
				return errFuzzUserAbort
			}
			err := tx.Nested(func(tx *stm.Tx) error {
				return adaptiveFuzzBody(e, tx, w, depth+1)
			})
			e.rec(b2i(err == nil))
		}
	}
	return nil
}
