package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestParallelBranchesShareBoostedSet(t *testing.T) {
	// One transaction, four goroutines, disjoint key ranges: all effects
	// commit atomically. This is the paper's multi-threaded-transactions
	// extension riding on the base object's thread-level synchronization.
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	err := sys.Atomic(func(tx *stm.Tx) error {
		fns := make([]func(*stm.Tx) error, 4)
		for b := 0; b < 4; b++ {
			b := b
			fns[b] = func(tx *stm.Tx) error {
				for k := int64(b * 100); k < int64(b*100+100); k++ {
					if !s.Add(tx, k) {
						t.Errorf("Add(%d) = false", k)
					}
				}
				return nil
			}
		}
		return tx.Parallel(fns...)
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 400; k++ {
		if !s.Base().Contains(k) {
			t.Fatalf("key %d missing after parallel commit", k)
		}
	}
}

func TestParallelTransactionAbortUndoesAllBranches(t *testing.T) {
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		_ = tx.Parallel(
			func(tx *stm.Tx) error { s.Add(tx, 1); return nil },
			func(tx *stm.Tx) error { s.Add(tx, 2); return nil },
			func(tx *stm.Tx) error { s.Add(tx, 3); return nil },
		)
		return boom
	})
	for k := int64(1); k <= 3; k++ {
		if s.Base().Contains(k) {
			t.Fatalf("key %d survived aborted parallel transaction", k)
		}
	}
}

func TestParallelBranchesSameKeySafe(t *testing.T) {
	// Two branches of one transaction hammer the same key. The abstract
	// lock is reentrant for the transaction; the base object linearizes
	// the concurrent calls. The net result must be consistent (the key
	// present or absent, never corrupted).
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	var adds, removes atomic.Int64
	err := sys.Atomic(func(tx *stm.Tx) error {
		return tx.Parallel(
			func(tx *stm.Tx) error {
				for i := 0; i < 100; i++ {
					if s.Add(tx, 7) {
						adds.Add(1)
					}
				}
				return nil
			},
			func(tx *stm.Tx) error {
				for i := 0; i < 100; i++ {
					if s.Remove(tx, 7) {
						removes.Add(1)
					}
				}
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	present := int64(0)
	if s.Base().Contains(7) {
		present = 1
	}
	if adds.Load()-removes.Load() != present {
		t.Fatalf("adds=%d removes=%d present=%d", adds.Load(), removes.Load(), present)
	}
}

func TestParallelWithHeapAndSemaphore(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sem := NewSemaphore(0)
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	err := sys.Atomic(func(tx *stm.Tx) error {
		return tx.Parallel(
			func(tx *stm.Tx) error {
				for k := int64(0); k < 50; k++ {
					h.Add(tx, k, int(k))
				}
				return nil
			},
			func(tx *stm.Tx) error {
				for k := int64(50); k < 100; k++ {
					h.Add(tx, k, int(k))
				}
				sem.Release(tx)
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sem.Value() != 1 {
		t.Fatalf("semaphore = %d", sem.Value())
	}
	keys := h.DrainQuiescent()
	if len(keys) != 100 {
		t.Fatalf("heap has %d keys, want 100", len(keys))
	}
}
