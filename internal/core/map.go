package core

import (
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// BaseMap is the abstract specification a linearizable map must satisfy to
// be boostable. Put and Delete return the previous binding, which is exactly
// the information the inverse operation needs.
type BaseMap[V any] interface {
	Put(key int64, val V) (old V, existed bool)
	Delete(key int64) (V, bool)
	Get(key int64) (V, bool)
}

// Map is a boosted transactional map with per-key abstract locks. Two
// transactions conflict only when they touch the same key — put(k1,·),
// get(k2) and delete(k3) all commute for distinct keys regardless of how the
// base map is laid out in memory.
type Map[V any] struct {
	base  BaseMap[V]
	locks *lockmgr.LockMap[int64]
}

// NewMap boosts a linearizable base map.
func NewMap[V any](base BaseMap[V]) *Map[V] {
	return &Map[V]{base: base, locks: lockmgr.NewLockMap[int64]()}
}

// Put binds val to key, returning the previous value and whether one
// existed. Inverse logged: restore the old binding (or delete the key if it
// was fresh).
func (m *Map[V]) Put(tx *stm.Tx, key int64, val V) (V, bool) {
	m.locks.Lock(tx, key)
	old, existed := m.base.Put(key, val)
	if existed {
		tx.Log(func() { m.base.Put(key, old) })
	} else {
		tx.Log(func() { m.base.Delete(key) })
	}
	return old, existed
}

// Delete removes key, returning its value and whether it was present.
// Inverse logged: re-insert the removed binding.
func (m *Map[V]) Delete(tx *stm.Tx, key int64) (V, bool) {
	m.locks.Lock(tx, key)
	old, existed := m.base.Delete(key)
	if existed {
		tx.Log(func() { m.base.Put(key, old) })
	}
	return old, existed
}

// Get returns the value bound to key. Read-only; no inverse, but the key's
// abstract lock is held to serialize against concurrent writers of the same
// key.
func (m *Map[V]) Get(tx *stm.Tx, key int64) (V, bool) {
	m.locks.Lock(tx, key)
	return m.base.Get(key)
}

// Update applies fn to the current binding of key and stores the result.
// The read and write happen under one abstract-lock acquisition, so the
// read-modify-write is atomic with respect to other transactions.
func (m *Map[V]) Update(tx *stm.Tx, key int64, fn func(V, bool) V) {
	m.locks.Lock(tx, key)
	old, existed := m.base.Get(key)
	m.Put(tx, key, fn(old, existed))
}

// Base returns the underlying linearizable map for quiescent inspection.
func (m *Map[V]) Base() BaseMap[V] { return m.base }
