package core

import (
	"tboost/internal/boost"
	"tboost/internal/stm"
)

// BaseMap is the abstract specification a linearizable map must satisfy to
// be boostable. Put and Delete return the previous binding, which is exactly
// the information the inverse operation needs.
type BaseMap[K comparable, V any] interface {
	Put(key K, val V) (old V, existed bool)
	Delete(key K) (V, bool)
	Get(key K) (V, bool)
}

// Map is a boosted transactional map with per-key abstract locks. Two
// transactions conflict only when they touch the same key — put(k1,·),
// get(k2) and delete(k3) all commute for distinct keys regardless of how the
// base map is laid out in memory.
type Map[K comparable, V any] struct {
	base BaseMap[K, V]
	obj  *boost.Object[K]

	// encVal serializes a value for the redo journal; set by BindMap. Nil
	// (the default) keeps the map undurable and Put emission free.
	encVal func(V) []byte

	// lazyEq compares an observed binding against the current one during a
	// lazy drain's validation. Non-nil iff the map was built lazy:
	// NewLazyMap constrains V to comparable so the comparison is
	// well-defined, a bound the eager Map does not need.
	lazyEq func(obsVal any, obsOK bool, cur V, curOK bool) bool
}

// NewMap boosts a linearizable base map.
func NewMap[K comparable, V any](base BaseMap[K, V]) *Map[K, V] {
	return &Map[K, V]{base: base, obj: boost.NewKeyed[K]().EnableVersions()}
}

// Put binds val to key, returning the previous value and whether one
// existed. Eager: inverse recorded — restore the old binding (or delete the
// key if it was fresh). Lazy: the put is deferred; fusion keeps only the
// last binding written per key.
func (m *Map[K, V]) Put(tx *stm.Tx, key K, val V) (V, bool) {
	if m.obj.Lazy() {
		lg, old, existed := m.lazyBinding(tx, key)
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyPut, Key: key, Val: val})
		return old, existed
	}
	m.obj.Acquire(tx, boost.Key(key))
	live := m.obj.VersioningLive(tx)
	if live && m.obj.NeedsSeed(key) {
		m.seedBinding(tx, key)
	}
	old, existed := m.base.Put(key, val)
	if existed {
		m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Put(key, old) }})
	} else {
		m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Delete(key) }})
	}
	if m.encVal != nil {
		m.obj.Emit(tx, RedoAdd, key, m.encVal(val))
	}
	if live {
		m.obj.RecordVersion(tx, key, boost.Version{Present: true, Val: val})
	}
	return old, existed
}

// seedBinding plants key's pre-transaction binding at the version floor.
// Callers hold key's abstract lock, so the base read is stable.
func (m *Map[K, V]) seedBinding(tx *stm.Tx, key K) {
	if cur, ok := m.base.Get(key); ok {
		m.obj.SeedVersion(tx, key, boost.Version{Present: true, Val: cur})
	} else {
		m.obj.SeedVersion(tx, key, boost.Version{Present: false})
	}
}

// Delete removes key, returning its value and whether it was present.
// Eager: inverse recorded — re-insert the removed binding. Lazy: deferred;
// a delete of a key the transaction observed absent fuses away entirely.
func (m *Map[K, V]) Delete(tx *stm.Tx, key K) (V, bool) {
	if m.obj.Lazy() {
		lg, old, existed := m.lazyBinding(tx, key)
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyDelete, Key: key})
		return old, existed
	}
	m.obj.Acquire(tx, boost.Key(key))
	live := m.obj.VersioningLive(tx)
	if live && m.obj.NeedsSeed(key) {
		m.seedBinding(tx, key)
	}
	old, existed := m.base.Delete(key)
	if existed {
		m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Put(key, old) }})
		m.obj.Emit(tx, RedoRemove, key, nil)
		if live {
			m.obj.RecordVersion(tx, key, boost.Version{Present: false})
		}
	}
	return old, existed
}

// Get returns the value bound to key. Eager: read-only, no inverse, but the
// key's abstract lock is held to serialize against concurrent writers of the
// same key. Lazy: answered from the pending log or an optimistic observation
// validated at commit. Read-only transactions on a versioned map answer from
// the key's version chain at the pinned sequence number with no lock demand
// (see Set.Contains for the chain-miss double-check argument).
func (m *Map[K, V]) Get(tx *stm.Tx, key K) (V, bool) {
	if tx.ReadOnly() && m.obj.Versioned() {
		if v, ok := m.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return versionVal[V](v)
		}
		cur, hit := m.base.Get(key)
		if v, ok := m.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return versionVal[V](v)
		}
		return cur, hit
	}
	if m.obj.Lazy() {
		_, val, ok := m.lazyBinding(tx, key)
		return val, ok
	}
	m.obj.Acquire(tx, boost.Key(key))
	return m.base.Get(key)
}

// Update applies fn to the current binding of key and stores the result.
// The read and write happen under one abstract-lock acquisition (eager) or
// against one observation (lazy), so the read-modify-write is atomic with
// respect to other transactions.
func (m *Map[K, V]) Update(tx *stm.Tx, key K, fn func(V, bool) V) {
	if m.obj.Lazy() {
		old, existed := m.Get(tx, key)
		m.Put(tx, key, fn(old, existed))
		return
	}
	m.obj.Acquire(tx, boost.Key(key))
	old, existed := m.base.Get(key)
	m.Put(tx, key, fn(old, existed))
}

// lazyBinding returns the transaction's current view of key's binding: the
// pending log's latest word, or, on first touch, an unlocked base read
// recorded as the key's observation for commit-time validation.
func (m *Map[K, V]) lazyBinding(tx *stm.Tx, key K) (*boost.LazyLog[K], V, bool) {
	lg := m.obj.PendingLog(tx, m)
	val, ok, known := lg.Binding(key)
	if !known {
		cur, exists := m.base.Get(key)
		lg.ObserveBinding(key, cur, exists)
		return lg, cur, exists
	}
	if !ok {
		var zero V
		return lg, zero, false
	}
	return lg, val.(V), true
}

// versionVal unboxes a map version into the spec's (value, present) answer
// shape.
func versionVal[V any](v boost.Version) (V, bool) {
	if !v.Present {
		var zero V
		return zero, false
	}
	return v.Val.(V), true
}

// Base returns the underlying linearizable map for quiescent inspection.
func (m *Map[K, V]) Base() BaseMap[K, V] { return m.base }

// Engine returns the kernel object executing this map's descriptors, for
// tests and introspection.
func (m *Map[K, V]) Engine() *boost.Object[K] { return m.obj }
