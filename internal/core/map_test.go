package core

import (
	"errors"
	"sync"
	"testing"

	"tboost/internal/stm"
)

func TestMapPutGetDelete(t *testing.T) {
	m := NewRBTreeMap[string]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if _, existed := m.Put(tx, 1, "one"); existed {
			t.Error("Put on fresh key reported existing")
		}
		old, existed := m.Put(tx, 1, "ONE")
		if !existed || old != "one" {
			t.Errorf("Put overwrite = %q,%v", old, existed)
		}
		v, ok := m.Get(tx, 1)
		if !ok || v != "ONE" {
			t.Errorf("Get = %q,%v", v, ok)
		}
		v, ok = m.Delete(tx, 1)
		if !ok || v != "ONE" {
			t.Errorf("Delete = %q,%v", v, ok)
		}
		if _, ok := m.Get(tx, 1); ok {
			t.Error("Get after delete = ok")
		}
	})
}

func TestMapUndoRestoresBindings(t *testing.T) {
	m := NewRBTreeMap[string]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		m.Put(tx, 1, "one")
		m.Put(tx, 2, "two")
	})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		m.Put(tx, 1, "uno")  // inverse: restore "one"
		m.Delete(tx, 2)      // inverse: restore "two"
		m.Put(tx, 3, "tres") // inverse: delete 3
		return boom
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if v, _ := m.Get(tx, 1); v != "one" {
			t.Errorf("key 1 = %q, want one", v)
		}
		if v, ok := m.Get(tx, 2); !ok || v != "two" {
			t.Errorf("key 2 = %q,%v, want two", v, ok)
		}
		if _, ok := m.Get(tx, 3); ok {
			t.Error("aborted Put(3) left a binding")
		}
	})
}

func TestMapUpdateReadModifyWrite(t *testing.T) {
	m := NewRBTreeMap[int]()
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				stm.MustAtomicOn(sys, func(tx *stm.Tx) {
					m.Update(tx, 42, func(v int, _ bool) int { return v + 1 })
				})
			}
		}()
	}
	wg.Wait()
	var final int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { final, _ = m.Get(tx, 42) })
	if final != 800 {
		t.Fatalf("counter = %d, want 800 (lost read-modify-write)", final)
	}
}

func TestMapTransferInvariant(t *testing.T) {
	// The bank workload: concurrent transfers preserve the total balance.
	m := NewRBTreeMap[int]()
	sys := newSys()
	const accounts = 8
	const initial = 1000
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for a := int64(0); a < accounts; a++ {
			m.Put(tx, a, initial)
		}
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := int64((g + i) % accounts)
				to := int64((g + i + 1) % accounts)
				if from == to {
					continue
				}
				stm.MustAtomicOn(sys, func(tx *stm.Tx) {
					f, _ := m.Get(tx, from)
					if f == 0 {
						return
					}
					m.Put(tx, from, f-1)
					tv, _ := m.Get(tx, to)
					m.Put(tx, to, tv+1)
				})
			}
		}()
	}
	wg.Wait()
	total := 0
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		total = 0
		for a := int64(0); a < accounts; a++ {
			v, _ := m.Get(tx, a)
			total += v
		}
	})
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (atomicity violated)", total, accounts*initial)
	}
}

func TestMapBaseAccessor(t *testing.T) {
	m := NewRBTreeMap[int]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { m.Put(tx, 5, 50) })
	if v, ok := m.Base().Get(5); !ok || v != 50 {
		t.Fatalf("base Get = %d,%v", v, ok)
	}
}
