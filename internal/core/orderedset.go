package core

import (
	"tboost/internal/lockmgr"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// OrderedSet is a boosted transactional sorted set supporting range
// queries, synchronized by interval-granular abstract locks. Point
// operations lock [k, k]; a range query locks its whole interval, so it
// conflicts exactly with updates *inside* the range and commutes with
// everything outside — the argument-dependent conflict predicate that
// key-granularity locking cannot express.
//
// The base object is the same lock-free skip list as the boosted Set; only
// the abstract-lock discipline differs.
type OrderedSet struct {
	base  *skiplist.Set
	locks *lockmgr.RangeLock
}

// NewOrderedSet returns a boosted sorted set over a lock-free skip list.
func NewOrderedSet() *OrderedSet {
	return &OrderedSet{base: skiplist.New(), locks: lockmgr.NewRangeLock()}
}

// Add inserts key, reporting whether the set changed.
func (s *OrderedSet) Add(tx *stm.Tx, key int64) bool {
	s.locks.LockKey(tx, key)
	result := s.base.Add(key)
	if result {
		tx.Log(func() { s.base.Remove(key) })
	}
	return result
}

// Remove deletes key, reporting whether the set changed.
func (s *OrderedSet) Remove(tx *stm.Tx, key int64) bool {
	s.locks.LockKey(tx, key)
	result := s.base.Remove(key)
	if result {
		tx.Log(func() { s.base.Add(key) })
	}
	return result
}

// Contains reports whether key is present.
func (s *OrderedSet) Contains(tx *stm.Tx, key int64) bool {
	s.locks.LockKey(tx, key)
	return s.base.Contains(key)
}

// CountRange returns the number of keys in [lo, hi]. It locks the interval,
// serializing against concurrent updates within it while updates outside
// proceed in parallel.
func (s *OrderedSet) CountRange(tx *stm.Tx, lo, hi int64) int {
	s.locks.LockRange(tx, lo, hi)
	n := 0
	s.base.AscendRange(lo, hi, func(int64) bool { n++; return true })
	return n
}

// KeysRange returns the keys in [lo, hi] in ascending order.
func (s *OrderedSet) KeysRange(tx *stm.Tx, lo, hi int64) []int64 {
	s.locks.LockRange(tx, lo, hi)
	var out []int64
	s.base.AscendRange(lo, hi, func(k int64) bool { out = append(out, k); return true })
	return out
}

// SumRange returns the sum of keys in [lo, hi] — a representative
// aggregate query.
func (s *OrderedSet) SumRange(tx *stm.Tx, lo, hi int64) int64 {
	s.locks.LockRange(tx, lo, hi)
	var sum int64
	s.base.AscendRange(lo, hi, func(k int64) bool { sum += k; return true })
	return sum
}

// Base returns the underlying linearizable skip list for quiescent
// inspection.
func (s *OrderedSet) Base() *skiplist.Set { return s.base }
