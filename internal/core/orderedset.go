package core

import (
	"cmp"

	"tboost/internal/boost"
	"tboost/internal/lockmgr"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// OrderedSet is a boosted transactional sorted set supporting range
// queries, synchronized by interval-granular abstract locks. Point
// operations demand the degenerate interval [k, k]; a range query demands
// its whole interval, so it conflicts exactly with updates *inside* the
// range and commutes with everything outside — the argument-dependent
// conflict predicate that key-granularity locking cannot express.
//
// The key space is any cmp.Ordered type: the base object is the generic
// lock-free skip list, and the interval locks come from the striped range
// manager, whose point fast path gives ordered point ops the same cost
// profile as the keyed Set. Point operations (Add/Remove/Contains) are the
// embedded Set's — only the Ranged discipline differs — so an OrderedSet
// can stand in wherever a Set is expected.
type OrderedSet[K cmp.Ordered] struct {
	Set[K]
	sl *skiplist.Set[K]
}

// NewOrderedSet returns a boosted sorted set of int64 keys (the original
// facade key type) over a lock-free skip list.
func NewOrderedSet() *OrderedSet[int64] {
	return NewOrderedSetOf[int64]()
}

// NewOrderedSetOf returns a boosted sorted set over a lock-free skip list
// for any ordered key type.
func NewOrderedSetOf[K cmp.Ordered]() *OrderedSet[K] {
	sl := skiplist.NewOf[K]()
	return &OrderedSet[K]{Set: Set[K]{base: sl, obj: boost.NewRanged[K]().EnableVersions()}, sl: sl}
}

// NewOrderedSetPartition is NewOrderedSetOf with an explicit stripe count
// and key partition for the interval-lock table.
func NewOrderedSetPartition[K cmp.Ordered](stripes int, p lockmgr.Partition[K]) *OrderedSet[K] {
	sl := skiplist.NewOf[K]()
	return &OrderedSet[K]{Set: Set[K]{base: sl, obj: boost.NewRangedPartition(stripes, p).EnableVersions()}, sl: sl}
}

// CountRange returns the number of keys in [lo, hi]. It demands the
// interval, serializing against concurrent updates within it while updates
// outside proceed in parallel. On a lazy ordered set the pending point ops
// are early-flushed first — a point-keyed log cannot answer a range — after
// which the query runs eagerly under its interval lock.
//
// Range queries stay eager even in read-only transactions: version chains
// are point-keyed and cannot enumerate an interval, so a snapshot cannot
// answer a range without a chain per key it doesn't know about. A read-only
// transaction may still call them, but pays the interval-lock demand (and
// panics under Config.StrictReadOnly); point reads via the embedded Set
// remain lock-free.
func (s *OrderedSet[K]) CountRange(tx *stm.Tx, lo, hi K) int {
	if s.obj.Lazy() {
		s.obj.FlushPending(tx)
	}
	s.obj.Acquire(tx, boost.Span(lo, hi))
	n := 0
	s.sl.AscendRange(lo, hi, func(K) bool { n++; return true })
	return n
}

// KeysRange returns the keys in [lo, hi] in ascending order (early-flushing
// pending lazy ops first, as CountRange does).
func (s *OrderedSet[K]) KeysRange(tx *stm.Tx, lo, hi K) []K {
	if s.obj.Lazy() {
		s.obj.FlushPending(tx)
	}
	s.obj.Acquire(tx, boost.Span(lo, hi))
	var out []K
	s.sl.AscendRange(lo, hi, func(k K) bool { out = append(out, k); return true })
	return out
}

// SumRange returns the sum of keys in [lo, hi] — a representative
// aggregate query. (For string keys the + is concatenation, which is mostly
// useful for tests.) Lazy sets early-flush first, as CountRange does.
func (s *OrderedSet[K]) SumRange(tx *stm.Tx, lo, hi K) K {
	if s.obj.Lazy() {
		s.obj.FlushPending(tx)
	}
	s.obj.Acquire(tx, boost.Span(lo, hi))
	var sum K
	s.sl.AscendRange(lo, hi, func(k K) bool { sum += k; return true })
	return sum
}

// Base returns the underlying linearizable skip list for quiescent
// inspection.
func (s *OrderedSet[K]) Base() *skiplist.Set[K] { return s.sl }
