package core

import (
	"tboost/internal/boost"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// OrderedSet is a boosted transactional sorted set supporting range
// queries, synchronized by interval-granular abstract locks. Point
// operations demand the degenerate interval [k, k]; a range query demands
// its whole interval, so it conflicts exactly with updates *inside* the
// range and commutes with everything outside — the argument-dependent
// conflict predicate that key-granularity locking cannot express.
//
// The base object is the same lock-free skip list as the boosted Set; only
// the kernel discipline (Ranged instead of Keyed) differs.
type OrderedSet struct {
	base *skiplist.Set
	obj  *boost.Object[int64]
}

// NewOrderedSet returns a boosted sorted set over a lock-free skip list.
func NewOrderedSet() *OrderedSet {
	return &OrderedSet{base: skiplist.New(), obj: boost.NewRanged[int64]()}
}

// Add inserts key, reporting whether the set changed.
func (s *OrderedSet) Add(tx *stm.Tx, key int64) bool {
	s.obj.Acquire(tx, boost.Key(key))
	if !s.base.Add(key) {
		return false
	}
	s.obj.Record(tx, boost.Op[int64]{Inverse: func() { s.base.Remove(key) }})
	return true
}

// Remove deletes key, reporting whether the set changed.
func (s *OrderedSet) Remove(tx *stm.Tx, key int64) bool {
	s.obj.Acquire(tx, boost.Key(key))
	if !s.base.Remove(key) {
		return false
	}
	s.obj.Record(tx, boost.Op[int64]{Inverse: func() { s.base.Add(key) }})
	return true
}

// Contains reports whether key is present.
func (s *OrderedSet) Contains(tx *stm.Tx, key int64) bool {
	s.obj.Acquire(tx, boost.Key(key))
	return s.base.Contains(key)
}

// CountRange returns the number of keys in [lo, hi]. It demands the
// interval, serializing against concurrent updates within it while updates
// outside proceed in parallel.
func (s *OrderedSet) CountRange(tx *stm.Tx, lo, hi int64) int {
	s.obj.Acquire(tx, boost.Span(lo, hi))
	n := 0
	s.base.AscendRange(lo, hi, func(int64) bool { n++; return true })
	return n
}

// KeysRange returns the keys in [lo, hi] in ascending order.
func (s *OrderedSet) KeysRange(tx *stm.Tx, lo, hi int64) []int64 {
	s.obj.Acquire(tx, boost.Span(lo, hi))
	var out []int64
	s.base.AscendRange(lo, hi, func(k int64) bool { out = append(out, k); return true })
	return out
}

// SumRange returns the sum of keys in [lo, hi] — a representative
// aggregate query.
func (s *OrderedSet) SumRange(tx *stm.Tx, lo, hi int64) int64 {
	s.obj.Acquire(tx, boost.Span(lo, hi))
	var sum int64
	s.base.AscendRange(lo, hi, func(k int64) bool { sum += k; return true })
	return sum
}

// Base returns the underlying linearizable skip list for quiescent
// inspection.
func (s *OrderedSet) Base() *skiplist.Set { return s.base }
