//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-budget tests skip under it: instrumentation adds its own heap
// traffic, so AllocsPerRun no longer measures the code under test.
const raceEnabled = true
