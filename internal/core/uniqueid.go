package core

import (
	"tboost/internal/boost"
	"tboost/internal/idgen"
	"tboost/internal/stm"
)

// UniqueID is the boosted unique-ID generator of §3.4. AssignID never
// conflicts: any two calls returning distinct IDs commute, so no abstract
// lock is acquired at all — the fetch-and-add base object provides
// linearizability, and boosting explains why this is transactionally
// correct. The compensating release of an aborted assignment is a
// *post-abort disposable*: it may run arbitrarily late (or never, for a
// counter-based pool) without any transaction observing the delay.
type UniqueID struct {
	base *idgen.Generator
}

// NewUniqueID returns a transactional unique-ID generator.
func NewUniqueID() *UniqueID {
	return &UniqueID{base: idgen.New()}
}

// AssignID removes and returns an ID from the pool of unused IDs. If tx
// aborts, the ID is released back to the pool after the abort completes.
func (u *UniqueID) AssignID(tx *stm.Tx) int64 {
	id := u.base.AssignID()
	boost.OnAbort(tx, func() { u.base.ReleaseID(id) })
	return id
}

// Assigned reports how many IDs have ever been assigned (including by
// aborted transactions whose releases were abandoned by the counter pool).
func (u *UniqueID) Assigned() int64 { return u.base.Assigned() }

// Released reports how many post-abort releases have run.
func (u *UniqueID) Released() int64 { return u.base.Released() }
