package core

import (
	"cmp"
	"fmt"

	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// Redo op kinds shared by the boosted collections. Each durable object's
// opcode namespace is private to it, but the collections here agree on one
// tiny vocabulary so the dump/verification tooling can print records without
// per-object tables.
const (
	// RedoAdd inserts: data = key, then (maps only) the encoded value.
	RedoAdd uint8 = 1
	// RedoRemove deletes one key (sets, maps) or one occurrence (multisets):
	// data = key.
	RedoRemove uint8 = 2
	// RedoAddN inserts n occurrences of a key — multiset checkpoints only:
	// data = key, then uvarint n.
	RedoAddN uint8 = 3
)

// keyLister is the snapshot face a base container must expose to be
// checkpointable: enumerate the keys present. All the repo's set bases
// (hash set, skip list, rb-tree adapter) satisfy it.
type keyLister[K comparable] interface{ Keys() []K }

// BindSet makes s durable: its effective Add/Remove calls flow to l's redo
// stream under name, and Recover/Checkpoint replay and snapshot the base
// through the same codec. Call between wal.Open and (*wal.Log).Recover, on a
// freshly-constructed set, in the same registration order every run.
func BindSet[K comparable](l *wal.Log, name string, codec wal.Codec[K], s *Set[K]) error {
	if _, ok := s.base.(keyLister[K]); !ok {
		return fmt.Errorf("core: BindSet(%q): base %T cannot enumerate keys for checkpoints", name, s.base)
	}
	d := &setDurable[K]{base: s.base, codec: codec, obj: s.obj}
	b, err := wal.Bind(l, name, codec, d)
	if err != nil {
		return err
	}
	s.obj.BindJournal(b)
	return nil
}

// BindOrderedSet is BindSet for the range-queryable set (point mutations are
// the embedded Set's, so the same binding covers them; range queries are
// read-only and contribute nothing to the log).
func BindOrderedSet[K cmp.Ordered](l *wal.Log, name string, codec wal.Codec[K], o *OrderedSet[K]) error {
	return BindSet(l, name, codec, &o.Set)
}

type setDurable[K comparable] struct {
	base  BaseSet[K]
	codec wal.Codec[K]
	obj   *boost.Object[K]
}

func (d *setDurable[K]) Replay(kind uint8, data []byte) error {
	key, n, err := d.codec.Decode(data)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("core: set replay: %d trailing bytes", len(data)-n)
	}
	// Strict replay: the log records only *effective* calls, so an
	// ineffective replay means the log and the state have diverged.
	switch kind {
	case RedoAdd:
		if !d.base.Add(key) {
			return fmt.Errorf("core: set replay: duplicate add of %v", key)
		}
	case RedoRemove:
		if !d.base.Remove(key) {
			return fmt.Errorf("core: set replay: remove of absent %v", key)
		}
	default:
		return fmt.Errorf("core: set replay: unknown op kind %d", kind)
	}
	return nil
}

// Relock implements wal.Relocker: decode the op's key and re-take the same
// keyed abstract lock the original call held, for in-doubt recovery.
func (d *setDurable[K]) Relock(tx *stm.Tx, kind uint8, data []byte) error {
	key, _, err := d.codec.Decode(data)
	if err != nil {
		return err
	}
	d.obj.Relock(tx, key)
	return nil
}

func (d *setDurable[K]) Snapshot(emit func(kind uint8, data []byte) error) error {
	for _, key := range d.base.(keyLister[K]).Keys() {
		if err := emit(RedoAdd, d.codec.Append(nil, key)); err != nil {
			return err
		}
	}
	return nil
}

// BindMap makes m durable under name. Values ride in the op payload after
// the key, encoded with their own codec.
func BindMap[K comparable, V any](l *wal.Log, name string, kc wal.Codec[K], vc wal.Codec[V], m *Map[K, V]) error {
	if _, ok := m.base.(keyLister[K]); !ok {
		return fmt.Errorf("core: BindMap(%q): base %T cannot enumerate keys for checkpoints", name, m.base)
	}
	d := &mapDurable[K, V]{base: m.base, kc: kc, vc: vc, obj: m.obj}
	b, err := wal.Bind(l, name, kc, d)
	if err != nil {
		return err
	}
	m.obj.BindJournal(b)
	m.encVal = func(v V) []byte { return vc.Append(nil, v) }
	return nil
}

type mapDurable[K comparable, V any] struct {
	base BaseMap[K, V]
	kc   wal.Codec[K]
	vc   wal.Codec[V]
	obj  *boost.Object[K]
}

func (d *mapDurable[K, V]) Replay(kind uint8, data []byte) error {
	key, n, err := d.kc.Decode(data)
	if err != nil {
		return err
	}
	rest := data[n:]
	switch kind {
	case RedoAdd: // Put: a fresh insert or an overwrite, both legal
		val, n, err := d.vc.Decode(rest)
		if err != nil {
			return err
		}
		if n != len(rest) {
			return fmt.Errorf("core: map replay: %d trailing bytes", len(rest)-n)
		}
		d.base.Put(key, val)
	case RedoRemove:
		if len(rest) != 0 {
			return fmt.Errorf("core: map replay: %d trailing bytes", len(rest))
		}
		if _, existed := d.base.Delete(key); !existed {
			return fmt.Errorf("core: map replay: delete of absent %v", key)
		}
	default:
		return fmt.Errorf("core: map replay: unknown op kind %d", kind)
	}
	return nil
}

// Relock implements wal.Relocker (see setDurable.Relock).
func (d *mapDurable[K, V]) Relock(tx *stm.Tx, kind uint8, data []byte) error {
	key, _, err := d.kc.Decode(data)
	if err != nil {
		return err
	}
	d.obj.Relock(tx, key)
	return nil
}

func (d *mapDurable[K, V]) Snapshot(emit func(kind uint8, data []byte) error) error {
	for _, key := range d.base.(keyLister[K]).Keys() {
		val, ok := d.base.Get(key)
		if !ok {
			continue // racing mutator would violate the quiescence contract; stay safe
		}
		data := d.kc.Append(nil, key)
		data = d.vc.Append(data, val)
		if err := emit(RedoAdd, data); err != nil {
			return err
		}
	}
	return nil
}

// BindMultiset makes m durable under name. Checkpoints compress each key's
// occurrences into one RedoAddN op.
func BindMultiset[K comparable](l *wal.Log, name string, codec wal.Codec[K], m *Multiset[K]) error {
	d := &multisetDurable[K]{base: m.base, codec: codec, obj: m.obj}
	b, err := wal.Bind(l, name, codec, d)
	if err != nil {
		return err
	}
	m.obj.BindJournal(b)
	return nil
}

type multisetDurable[K comparable] struct {
	base  *hashset.MultiSet[K]
	codec wal.Codec[K]
	obj   *boost.Object[K]
}

func (d *multisetDurable[K]) Replay(kind uint8, data []byte) error {
	key, n, err := d.codec.Decode(data)
	if err != nil {
		return err
	}
	rest := data[n:]
	switch kind {
	case RedoAdd:
		if len(rest) != 0 {
			return fmt.Errorf("core: multiset replay: %d trailing bytes", len(rest))
		}
		d.base.Add(key)
	case RedoRemove:
		if len(rest) != 0 {
			return fmt.Errorf("core: multiset replay: %d trailing bytes", len(rest))
		}
		if !d.base.RemoveOne(key) {
			return fmt.Errorf("core: multiset replay: remove of absent %v", key)
		}
	case RedoAddN:
		count, n2 := uvarint(rest)
		if n2 <= 0 || n2 != len(rest) || count == 0 {
			return fmt.Errorf("core: multiset replay: bad occurrence count")
		}
		for i := uint64(0); i < count; i++ {
			d.base.Add(key)
		}
	default:
		return fmt.Errorf("core: multiset replay: unknown op kind %d", kind)
	}
	return nil
}

// Relock implements wal.Relocker (see setDurable.Relock).
func (d *multisetDurable[K]) Relock(tx *stm.Tx, kind uint8, data []byte) error {
	key, _, err := d.codec.Decode(data)
	if err != nil {
		return err
	}
	d.obj.Relock(tx, key)
	return nil
}

func (d *multisetDurable[K]) Snapshot(emit func(kind uint8, data []byte) error) error {
	var err error
	d.base.Range(func(key K, count int) bool {
		data := d.codec.Append(nil, key)
		data = appendUvarint(data, uint64(count))
		err = emit(RedoAddN, data)
		return err == nil
	})
	return err
}

// Local uvarint helpers (mirror encoding/binary, kept here to avoid pulling
// the import for two calls).
func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
		if s >= 64 {
			return 0, -1
		}
	}
	return 0, 0
}
