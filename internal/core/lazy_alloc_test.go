package core

import (
	"testing"
	"time"

	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Allocation budgets of the lazy pending log (ISSUE 7 acceptance): a
// deferred mutation is an entry appended to a pooled slice — at most one
// allocation per op, zero in steady state — and a pair that fuses away must
// reach neither the base object nor the heap. Pending logs are recycled
// through the engine's sync.Pool across attempts and Atomic calls.

func TestLazyDeferredAddRemoveAllocBudget(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewLazyKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k) // install the per-key locks up front
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	// Two deferred ops per run. Neither allocates a closure (lazy ops have
	// no inverse); the entries land in the pooled log slice. Budget: one
	// allocation per op, expected zero once the pool and slice are warm.
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("deferred add+remove allocates %.2f objects/run, want <= 2 (1 per op)", avg)
	}
}

func TestLazyFusedPairAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	cs := &countingSet[int64]{inner: hashset.New[int64]()}
	s := NewLazyKeyedSet[int64](cs)
	// Warm: install the key's lock and the pending-log pool.
	body := func(tx *stm.Tx) error {
		s.Add(tx, 7)
		s.Remove(tx, 7)
		return nil
	}
	_ = sys.Atomic(body)
	base := cs.mutations()
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("annihilated add∘remove pair allocates %.2f objects/run, want 0", avg)
	}
	if got := cs.mutations(); got != base {
		t.Fatalf("annihilated pairs performed %d base mutations", got-base)
	}
}

func TestLazyLogReusedAcrossAttempts(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})
	s := NewLazyKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 1) })
	// Every run dooms its first attempt after logging deferred ops, so the
	// retry path recycles the pending log through the pool and the second
	// attempt re-fetches it. If each attempt leaked a log (or its entry
	// slice), the run average would exceed the budget immediately.
	body := func(tx *stm.Tx) error {
		s.Contains(tx, 1)
		s.Add(tx, 2)
		s.Remove(tx, 2)
		if tx.Attempt() == 0 {
			tx.Doom()
		}
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(100, func() {
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("doomed-then-retried lazy tx allocates %.2f objects/run, want <= 2", avg)
	}
}
