package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/cheap"
	"tboost/internal/pairheap"
	"tboost/internal/stm"
)

// heapBases enumerates the linearizable base heaps the boosted Heap runs
// over — the black-box claim for priority queues.
func heapBases() map[string]func() BaseHeap[*Holder[int64]] {
	return map[string]func() BaseHeap[*Holder[int64]]{
		"hunt":     func() BaseHeap[*Holder[int64]] { return cheap.New[*Holder[int64]]() },
		"pairheap": func() BaseHeap[*Holder[int64]] { return pairheap.NewSync[*Holder[int64]]() },
	}
}

func TestHeapBlackBoxBases(t *testing.T) {
	for name, mk := range heapBases() {
		t.Run(name, func(t *testing.T) {
			h := NewHeapFromBase[int64](mk(), RWLocked)
			sys := newSys()
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				h.Add(tx, 3, 30)
				h.Add(tx, 1, 10)
				h.Add(tx, 2, 20)
			})
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				for want := int64(1); want <= 3; want++ {
					k, v, ok := h.RemoveMin(tx)
					if !ok || k != want || v != want*10 {
						t.Errorf("RemoveMin = %d,%d,%v; want %d", k, v, ok, want)
					}
				}
			})
		})
	}
}

func TestHeapBlackBoxAbortSemantics(t *testing.T) {
	for name, mk := range heapBases() {
		t.Run(name, func(t *testing.T) {
			h := NewHeapFromBase[int64](mk(), RWLocked)
			sys := newSys()
			stm.MustAtomicOn(sys, func(tx *stm.Tx) { h.Add(tx, 5, 50) })
			boom := errors.New("boom")
			_ = sys.Atomic(func(tx *stm.Tx) error {
				h.Add(tx, 1, 10)     // undo: holder marked deleted
				h.RemoveMin(tx)      // removes 1 (own); undo: re-add
				k, _, _ := h.Min(tx) // sees 5
				if k != 5 {
					t.Errorf("Min mid-tx = %d", k)
				}
				return boom
			})
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				k, v, ok := h.RemoveMin(tx)
				if !ok || k != 5 || v != 50 {
					t.Errorf("after abort RemoveMin = %d,%d,%v; want 5,50", k, v, ok)
				}
				if _, _, ok := h.RemoveMin(tx); ok {
					t.Error("ghost item after abort")
				}
			})
		})
	}
}

func TestHeapBlackBoxConcurrentAccounting(t *testing.T) {
	for name, mk := range heapBases() {
		t.Run(name, func(t *testing.T) {
			h := NewHeapFromBase[int64](mk(), RWLocked)
			sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
			var addSum, remSum atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewPCG(uint64(g), 6))
					for i := 0; i < 150; i++ {
						if r.IntN(2) == 0 {
							k := int64(r.IntN(1000) + 1)
							_ = sys.Atomic(func(tx *stm.Tx) error {
								h.Add(tx, k, k)
								tx.OnCommit(func() { addSum.Add(k) })
								return nil
							})
						} else {
							_ = sys.Atomic(func(tx *stm.Tx) error {
								if k, _, ok := h.RemoveMin(tx); ok {
									tx.OnCommit(func() { remSum.Add(k) })
								}
								return nil
							})
						}
					}
				}()
			}
			wg.Wait()
			rest := h.DrainQuiescent()
			if !sort.SliceIsSorted(rest, func(i, j int) bool { return rest[i] < rest[j] }) {
				t.Fatalf("drain unsorted: %v", rest)
			}
			for _, k := range rest {
				remSum.Add(k)
			}
			if addSum.Load() != remSum.Load() {
				t.Fatalf("%s: added %d != removed %d", name, addSum.Load(), remSum.Load())
			}
		})
	}
}
