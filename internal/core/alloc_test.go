package core

import (
	"testing"

	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Allocation budget of the boosted hot path (ISSUE 2 acceptance): a
// steady-state boosted set operation may allocate at most one heap object —
// the undo closure for an effective mutation — and read-only or reentrant
// work must allocate nothing.

func TestContainsAllocsZero(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body) // warm pool and lock table
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("steady-state Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k) // install the per-key locks up front
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	// Each run is two effective boosted ops (add then remove of an absent
	// key), so the budget is two allocations: one undo closure per
	// effective mutation. The base hash set allocates nothing for a
	// re-added key.
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("add+remove allocates %.2f objects/run, want <= 2 (1 per boosted op)", avg)
	}
}

func TestReentrantReacquireAllocsZero(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 7) })
	// Repeated Contains on one key in one transaction: after the first
	// call the per-key lock re-acquires reentrantly via the registered
	// lock set, which must allocate nothing on top of the first call's
	// zero.
	body := func(tx *stm.Tx) error {
		for i := 0; i < 8; i++ {
			s.Contains(tx, 7)
		}
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("reentrant re-acquire allocates %.2f objects/op, want 0", avg)
	}
}
