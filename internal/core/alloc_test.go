package core

import (
	"fmt"
	"testing"

	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// Allocation budget of the boosted hot path (ISSUE 2 acceptance): a
// steady-state boosted set operation may allocate at most one heap object —
// the undo closure for an effective mutation — and read-only or reentrant
// work must allocate nothing.

// skipIfRace skips allocation-budget assertions under the race detector,
// whose instrumentation allocates on its own and breaks AllocsPerRun.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}

func TestContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body) // warm pool and lock table
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("steady-state Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k) // install the per-key locks up front
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	// Each run is two effective boosted ops (add then remove of an absent
	// key), so the budget is two allocations: one undo closure per
	// effective mutation. The base hash set allocates nothing for a
	// re-added key.
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("add+remove allocates %.2f objects/run, want <= 2 (1 per boosted op)", avg)
	}
}

// The string-keyed twins of the two budgets above: the kernel's generic key
// space must not cost the hot path anything — the Op descriptor stays a plain
// value and the per-key lock table hashes any comparable key without boxing.
func TestStringKeyedContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[string]()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Add(tx, k)
		}
	})
	var i int
	body := func(tx *stm.Tx) error {
		s.Contains(tx, keys[i])
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("string-keyed Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestStringKeyedAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[string]()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Remove(tx, k)
		}
	})
	var i int
	body := func(tx *stm.Tx) error {
		s.Add(tx, keys[i])
		s.Remove(tx, keys[i])
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("string-keyed add+remove allocates %.2f objects/run, want <= 2", avg)
	}
}

// TestKernelDescriptorAllocsZero pins the kernel contract directly: building
// an Op and pushing it through Acquire + Record (with no closures) allocates
// nothing — the descriptor is a value, and the only allocation a boosted
// mutation ever pays is the inverse closure its spec chooses to create.
func TestKernelDescriptorAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	obj := boost.NewKeyed[int64]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			obj.Acquire(tx, boost.Key(k)) // install the per-key locks
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		op := boost.Key(k)
		obj.Acquire(tx, op)
		obj.Record(tx, op) // no closures: must not touch the heap
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("kernel Acquire+Record allocates %.2f objects/op, want 0", avg)
	}
}

// TestKernelReadWriteSharedAllocsZero covers the readers/writer discipline
// (the Counter/Heap fast path): a shared-mode acquire in steady state is
// alloc-free.
func TestKernelReadWriteSharedAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	obj := boost.NewReadWrite[int64]()
	body := func(tx *stm.Tx) error {
		obj.Acquire(tx, boost.Shared[int64]())
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("shared-mode Acquire allocates %.2f objects/op, want 0", avg)
	}
}

// The ordered set's point operations ride the striped interval table's
// lock-free fast path, so they must meet the same budgets as the keyed
// hash set: zero allocations for Contains, one undo closure per effective
// mutation for Add/Remove.
func TestOrderedSetContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewOrderedSet()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("ordered-set Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestOrderedSetAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	// Unlike the hash set, the skip-list base allocates nodes for every
	// effective Add, so the budget here is relative: the boosting layer —
	// transaction, interval locks, undo log — may add at most one
	// allocation per effective mutation (the undo closure) on top of what
	// the raw base structure pays for the same operation sequence. The
	// skip list's randomized tower heights shift the per-run count by ±1
	// (and AllocsPerRun floors to an integer), so both sides take the
	// minimum over a few trials before comparing.
	minOf := func(measure func() float64) float64 {
		best := measure()
		for i := 0; i < 2; i++ {
			if v := measure(); v < best {
				best = v
			}
		}
		return best
	}
	baseAvg := minOf(func() float64 {
		base := skiplist.New()
		for k := int64(0); k < 64; k++ {
			base.Add(k)
			base.Remove(k)
		}
		var bk int64
		return testing.AllocsPerRun(200, func() {
			bk = (bk + 1) & 63
			base.Add(bk)
			base.Remove(bk)
		})
	})

	sys := stm.NewSystem(stm.Config{})
	s := NewOrderedSet()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := minOf(func() float64 {
		return testing.AllocsPerRun(200, func() {
			k = (k + 1) & 63
			_ = sys.Atomic(body)
		})
	})
	if avg > baseAvg+2.5 {
		t.Fatalf("ordered-set add+remove allocates %.2f objects/run over a base cost of %.2f, want boosting overhead <= 2",
			avg, baseAvg)
	}
}

// tenantItem is the struct-keyed workload shape of the ISSUE: a composite
// key that must flow through the kernel as a plain value. The packed-int64
// twin below routes the same key space through the ordered set.
type tenantItem struct {
	tenant int32
	item   int32
}

func TestStructKeyedContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[tenantItem]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := int32(0); i < 64; i++ {
			s.Add(tx, tenantItem{tenant: i & 7, item: i})
		}
	})
	var i int32
	body := func(tx *stm.Tx) error {
		s.Contains(tx, tenantItem{tenant: i & 7, item: i})
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("struct-keyed Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestStructKeyedAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[tenantItem]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := int32(0); i < 64; i++ {
			s.Add(tx, tenantItem{tenant: i & 7, item: i})
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := int32(0); i < 64; i++ {
			s.Remove(tx, tenantItem{tenant: i & 7, item: i})
		}
	})
	var i int32
	body := func(tx *stm.Tx) error {
		k := tenantItem{tenant: i & 7, item: i}
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("struct-keyed add+remove allocates %.2f objects/run, want <= 2", avg)
	}
}

func TestPackedKeyOrderedSetAllocs(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewOrderedSet()
	pack := func(k tenantItem) int64 { return int64(k.tenant)<<32 | int64(k.item) }
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := int32(0); i < 64; i++ {
			s.Add(tx, pack(tenantItem{tenant: i & 7, item: i}))
		}
	})
	var i int32
	body := func(tx *stm.Tx) error {
		s.Contains(tx, pack(tenantItem{tenant: i & 7, item: i}))
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("packed-key ordered-set Contains allocates %.2f objects/op, want 0", avg)
	}
}

// The multi-version read path's budgets (ISSUE 8 acceptance): a read-only
// Contains/Get answered from a version chain allocates nothing in steady
// state, and opening+closing a Snapshot handle costs at most the handle
// itself.

func TestSnapshotContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	// Activate versioning first so the writes below build version chains
	// and the read-only Contains exercises the VersionAt hit path.
	if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.AtomicRO(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.AtomicRO(body)
	})
	if avg > 0 {
		t.Fatalf("read-only Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestSnapshotMapGetAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	mp := NewMap[int64, int64](newMemMap[int64, int64]())
	if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			mp.Put(tx, k, k*10)
		}
	})
	sn := sys.OpenSnapshot()
	defer sn.Close()
	var k int64
	body := func(tx *stm.Tx) error {
		mp.Get(tx, k)
		return nil
	}
	_ = sn.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sn.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("snapshot Get allocates %.2f objects/op, want 0", avg)
	}
}

func TestSnapshotOpenCloseAllocsAtMostOne(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	sn := sys.OpenSnapshot() // activate versioning and warm the pin table
	sn.Close()
	avg := testing.AllocsPerRun(200, func() {
		sn := sys.OpenSnapshot()
		sn.Close()
	})
	if avg > 1 {
		t.Fatalf("Snapshot open+close allocates %.2f objects, want <= 1 (the handle)", avg)
	}
}

// The adaptive engine's dormant-cost budgets (ISSUE 9 acceptance): an
// adaptive object that never promotes must meet the static budgets exactly —
// the contention meter lives on the lock manager's blocked path, so the
// signal collection adds zero allocations to uncontended calls, and the
// per-transaction discipline latch reuses its pooled backing array. The
// promoted twin pins the same budgets on the keyed side of a migration.

func TestAdaptiveDormantContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewAdaptiveSet[int64](sys, hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body) // warm pools (incl. the tx discipline-latch backing)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("dormant adaptive Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestAdaptiveDormantAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewAdaptiveSet[int64](sys, hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("dormant adaptive add+remove allocates %.2f objects/run, want <= 2", avg)
	}
}

func TestAdaptivePromotedContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewAdaptiveSet[int64](sys, hashset.New[int64]())
	s.Engine().ForcePromote()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k) // installs the per-key locks
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("promoted adaptive Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestReentrantReacquireAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 7) })
	// Repeated Contains on one key in one transaction: after the first
	// call the per-key lock re-acquires reentrantly via the registered
	// lock set, which must allocate nothing on top of the first call's
	// zero.
	body := func(tx *stm.Tx) error {
		for i := 0; i < 8; i++ {
			s.Contains(tx, 7)
		}
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("reentrant re-acquire allocates %.2f objects/op, want 0", avg)
	}
}
