package core

import (
	"fmt"
	"testing"

	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Allocation budget of the boosted hot path (ISSUE 2 acceptance): a
// steady-state boosted set operation may allocate at most one heap object —
// the undo closure for an effective mutation — and read-only or reentrant
// work must allocate nothing.

// skipIfRace skips allocation-budget assertions under the race detector,
// whose instrumentation allocates on its own and breaks AllocsPerRun.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
}

func TestContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k)
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		s.Contains(tx, k)
		return nil
	}
	_ = sys.Atomic(body) // warm pool and lock table
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("steady-state Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Add(tx, k) // install the per-key locks up front
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			s.Remove(tx, k)
		}
	})
	var k int64
	// Each run is two effective boosted ops (add then remove of an absent
	// key), so the budget is two allocations: one undo closure per
	// effective mutation. The base hash set allocates nothing for a
	// re-added key.
	body := func(tx *stm.Tx) error {
		s.Add(tx, k)
		s.Remove(tx, k)
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("add+remove allocates %.2f objects/run, want <= 2 (1 per boosted op)", avg)
	}
}

// The string-keyed twins of the two budgets above: the kernel's generic key
// space must not cost the hot path anything — the Op descriptor stays a plain
// value and the per-key lock table hashes any comparable key without boxing.
func TestStringKeyedContainsAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[string]()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Add(tx, k)
		}
	})
	var i int
	body := func(tx *stm.Tx) error {
		s.Contains(tx, keys[i])
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("string-keyed Contains allocates %.2f objects/op, want 0", avg)
	}
}

func TestStringKeyedAddRemoveAllocsAtMostOnePerOp(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewHashSetOf[string]()
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range keys {
			s.Remove(tx, k)
		}
	})
	var i int
	body := func(tx *stm.Tx) error {
		s.Add(tx, keys[i])
		s.Remove(tx, keys[i])
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		i = (i + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 2 {
		t.Fatalf("string-keyed add+remove allocates %.2f objects/run, want <= 2", avg)
	}
}

// TestKernelDescriptorAllocsZero pins the kernel contract directly: building
// an Op and pushing it through Acquire + Record (with no closures) allocates
// nothing — the descriptor is a value, and the only allocation a boosted
// mutation ever pays is the inverse closure its spec chooses to create.
func TestKernelDescriptorAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	obj := boost.NewKeyed[int64]()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 64; k++ {
			obj.Acquire(tx, boost.Key(k)) // install the per-key locks
		}
	})
	var k int64
	body := func(tx *stm.Tx) error {
		op := boost.Key(k)
		obj.Acquire(tx, op)
		obj.Record(tx, op) // no closures: must not touch the heap
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		k = (k + 1) & 63
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("kernel Acquire+Record allocates %.2f objects/op, want 0", avg)
	}
}

// TestKernelReadWriteSharedAllocsZero covers the readers/writer discipline
// (the Counter/Heap fast path): a shared-mode acquire in steady state is
// alloc-free.
func TestKernelReadWriteSharedAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	obj := boost.NewReadWrite[int64]()
	body := func(tx *stm.Tx) error {
		obj.Acquire(tx, boost.Shared[int64]())
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("shared-mode Acquire allocates %.2f objects/op, want 0", avg)
	}
}

func TestReentrantReacquireAllocsZero(t *testing.T) {
	skipIfRace(t)
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 7) })
	// Repeated Contains on one key in one transaction: after the first
	// call the per-key lock re-acquires reentrantly via the registered
	// lock set, which must allocate nothing on top of the first call's
	// zero.
	body := func(tx *stm.Tx) error {
		for i := 0; i < 8; i++ {
			s.Contains(tx, 7)
		}
		return nil
	}
	_ = sys.Atomic(body)
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("reentrant re-acquire allocates %.2f objects/op, want 0", avg)
	}
}
