package core

import (
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/histories"
	"tboost/internal/stm"
)

// FuzzSnapshotConsistency is the differential oracle for the multi-version
// read path: fuzz input bytes become a program of writer transactions over
// a versioned set, run concurrently with read-only snapshot scans, and the
// recorded history is checked two ways — writers against the sequential
// specification in commit order (Theorem 5.3), and every snapshot scan
// against the committed prefix at its pinned sequence number. A scan that
// observes a torn prefix (some of a writer transaction's ops but not all),
// a future write, or a lost committed write fails the check. Reader
// transactions must also finish with zero aborts and zero abstract-lock
// demands — the lock-free guarantee, asserted on the stats.
//
// Byte encoding (one byte per writer op, chunks of 3 per transaction):
// key = b&7, op = remove if b&8 else add.
//
// Run continuously with:
//
//	go test -fuzz FuzzSnapshotConsistency ./internal/core
func FuzzSnapshotConsistency(f *testing.F) {
	f.Add([]byte{0x00, 0x08, 0x01})       // add 0, remove 0, add 1
	f.Add([]byte{0x07, 0x0f, 0x07, 0x0f}) // churn one key across two txs
	seed := make([]byte, 64)
	r := rand.New(rand.NewPCG(11, 11))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) == 0 {
			return
		}
		if len(prog) > 512 {
			prog = prog[:512]
		}
		sys := stm.NewSystem(stm.Config{
			BackoffBase: time.Nanosecond,
			BackoffCap:  time.Nanosecond,
			LockTimeout: 2 * time.Second,
		})
		s := NewHashSetOf[int64]()
		rec := histories.NewRecorder()
		// Activate versioning before any writer commits: CheckSnapshotReads
		// places writers by commit sequence number, and a pre-activation
		// effective commit has none (see the checker's doc comment).
		if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
			t.Fatal(err)
		}

		var wwg, rwg sync.WaitGroup
		stop := make(chan struct{})
		half := (len(prog) + 1) / 2
		for w := 0; w < 2; w++ {
			ops := prog[w*half : min((w+1)*half, len(prog))]
			if len(ops) == 0 {
				continue
			}
			wwg.Add(1)
			go func(ops []byte) {
				defer wwg.Done()
				for i := 0; i < len(ops); {
					chunk := ops[i:min(i+3, len(ops))]
					i += len(chunk)
					err := sys.Atomic(func(tx *stm.Tx) error {
						for _, b := range chunk {
							k := int64(b & 7)
							if b&8 == 0 {
								ok := s.Add(tx, k)
								rec.RecordCall(tx.ID(), "set", "add", []int64{k}, histories.Resp{OK: ok})
							} else {
								ok := s.Remove(tx, k)
								rec.RecordCall(tx.ID(), "set", "remove", []int64{k}, histories.Resp{OK: ok})
							}
						}
						tx.AtCommit(func() { rec.CommitAt(tx.ID(), tx.CommitSeq()) })
						return nil
					})
					if err != nil {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}(ops)
		}
		for rd := 0; rd < 2; rd++ {
			rwg.Add(1)
			go func() {
				defer rwg.Done()
				for i := 0; i < 60; i++ {
					select {
					case <-stop:
						return
					default:
					}
					err := sys.AtomicRO(func(tx *stm.Tx) error {
						for k := int64(0); k < 8; k++ {
							ok := s.Contains(tx, k)
							rec.RecordCall(tx.ID(), "set", "contains", []int64{k}, histories.Resp{OK: ok})
						}
						tx.AtCommit(func() { rec.SnapshotCommit(tx.ID(), tx.SnapshotSeq()) })
						return nil
					})
					if err != nil {
						t.Errorf("reader: %v", err)
						return
					}
				}
			}()
		}
		wwg.Wait()
		close(stop)
		rwg.Wait()

		h := rec.History()
		specs := map[string]histories.Spec{"set": histories.SetSpec{}}
		if err := histories.CheckStrictSerializability(h, specs); err != nil {
			t.Fatalf("writer history not serializable: %v", err)
		}
		if err := histories.CheckSnapshotReads(h, specs); err != nil {
			t.Fatalf("snapshot prefix violated: %v", err)
		}
		st := sys.Stats()
		if st.ROAborts != 0 {
			t.Errorf("read-only transactions aborted %d times", st.ROAborts)
		}
		if st.ReaderLockDemands != 0 {
			t.Errorf("read-only transactions demanded %d abstract locks", st.ReaderLockDemands)
		}
	})
}
