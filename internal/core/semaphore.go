package core

import (
	"errors"
	"sync"
	"tboost/internal/boost"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// ErrSemTimeout is the abort cause when a transactional semaphore
// acquisition waits longer than its timeout (the deadlock-recovery story is
// the same as for abstract locks: abort and retry).
var ErrSemTimeout = errors.New("core: transactional semaphore acquire timed out")

func init() {
	stm.RegisterAbortKind(ErrSemTimeout, stm.KindLockTimeout)
}

// DefaultSemTimeout is the acquire timeout used when none is configured.
// It is deliberately much longer than the abstract-lock timeout because
// semaphores express conditional synchronization (waiting for a pipeline
// stage), not conflict detection.
const DefaultSemTimeout = time.Second

// Semaphore is the paper's transactional semaphore (§3.3): Acquire
// decrements immediately, blocking while the committed count is zero, and
// records an increment as its inverse; Release is disposable — it increments
// only when the transaction commits. The paper notes such semaphores cannot
// be built from read/write conflict detection without deadlock; they require
// boosting.
type Semaphore struct {
	mu      sync.Mutex
	count   int
	gen     chan struct{} // closed on each increment to wake waiters
	timeout time.Duration
}

// NewSemaphore returns a semaphore with the given initial count and the
// default acquire timeout.
func NewSemaphore(initial int) *Semaphore {
	return NewSemaphoreTimeout(initial, DefaultSemTimeout)
}

// NewSemaphoreTimeout returns a semaphore with the given initial count and
// acquire timeout.
func NewSemaphoreTimeout(initial int, timeout time.Duration) *Semaphore {
	if initial < 0 {
		initial = 0
	}
	if timeout <= 0 {
		timeout = DefaultSemTimeout
	}
	return &Semaphore{count: initial, timeout: timeout}
}

// Acquire decrements the semaphore on behalf of tx, blocking while the
// committed count is zero. The decrement takes effect immediately; if tx
// aborts, the logged inverse restores it. If the wait exceeds the timeout,
// tx aborts (breaking pipeline deadlocks).
func (s *Semaphore) Acquire(tx *stm.Tx) {
	switch faultpoint.Hit(faultpoint.SemAcquire) {
	case faultpoint.Timeout:
		tx.System().CountLockTimeout()
		tx.Abort(ErrSemTimeout)
	case faultpoint.Doom:
		tx.Doom()
	}
	if !s.acquireTimeout(tx, s.timeout) {
		if tx.Doomed() {
			tx.Abort(lockmgr.ErrWounded)
		}
		if err := tx.Context().Err(); err != nil {
			tx.Abort(err)
		}
		tx.System().CountLockTimeout()
		tx.Abort(ErrSemTimeout)
	}
	boost.Inverse(tx, func() { s.increment() })
}

func (s *Semaphore) acquireTimeout(tx *stm.Tx, timeout time.Duration) bool {
	var timer *time.Timer
	var expired <-chan time.Time
	for {
		s.mu.Lock()
		if s.count > 0 {
			s.count--
			s.mu.Unlock()
			if timer != nil {
				timer.Stop()
			}
			return true
		}
		if s.gen == nil {
			s.gen = make(chan struct{})
		}
		wait := s.gen
		s.mu.Unlock()

		if timer == nil {
			timer = time.NewTimer(timeout)
			expired = timer.C
		}
		select {
		case <-wait:
		case <-tx.DoomChan():
			timer.Stop()
			return false
		case <-tx.Done():
			timer.Stop()
			return false
		case <-expired:
			return false
		}
	}
}

// Release increments the semaphore when tx commits. Per Rule 4 the call is
// disposable: deferring it is unobservable, because no transaction can
// distinguish "not yet released" from "about to be released".
func (s *Semaphore) Release(tx *stm.Tx) {
	boost.OnCommit(tx, func() { s.increment() })
}

func (s *Semaphore) increment() {
	s.mu.Lock()
	s.count++
	if s.gen != nil {
		close(s.gen)
		s.gen = nil
	}
	s.mu.Unlock()
}

// Value returns the committed count. For tests and monitoring.
func (s *Semaphore) Value() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}
