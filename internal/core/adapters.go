package core

import (
	"tboost/internal/hashset"
	"tboost/internal/linkedlist"
	"tboost/internal/rbtree"
	"tboost/internal/skiplist"
)

// rbSetAdapter presents the synchronized red-black tree as a BaseSet.
type rbSetAdapter struct{ tree *rbtree.Sync[struct{}] }

func (a rbSetAdapter) Add(key int64) bool      { return a.tree.Insert(key, struct{}{}) }
func (a rbSetAdapter) Remove(key int64) bool   { _, ok := a.tree.Delete(key); return ok }
func (a rbSetAdapter) Contains(key int64) bool { return a.tree.Contains(key) }

// NewRBTreeSet boosts a synchronized sequential red-black tree with a single
// coarse abstract lock — the boosted configuration of the Fig. 9 experiment
// (no thread-level concurrency in the base, no transactional concurrency in
// the wrapper, yet it beats the shadow-copy STM).
func NewRBTreeSet() *Set {
	return NewCoarseSet(rbSetAdapter{tree: rbtree.NewSync[struct{}]()})
}

// NewSkipListSet boosts the lock-free skip list with per-key abstract locks
// — the paper's SkipListKey class (§3.1.1, the fast variant of Fig. 10).
func NewSkipListSet() *Set {
	return NewKeyedSet(skiplist.New())
}

// NewSkipListSetCoarse boosts the same lock-free skip list with a single
// abstract lock — the slow variant of Fig. 10. Identical base object, so any
// throughput difference is attributable purely to abstract-lock granularity.
func NewSkipListSetCoarse() *Set {
	return NewCoarseSet(skiplist.New())
}

// NewHashSet boosts the striped concurrent hash set with per-key abstract
// locks (the black-box transactional hash table of the paper's related-work
// discussion).
func NewHashSet() *Set {
	return NewKeyedSet(hashset.New())
}

// NewLinkedListSet boosts the lock-coupling sorted linked list — the
// introduction's motivating example of synchronization that transactions
// based on read/write conflicts cannot express.
func NewLinkedListSet() *Set {
	return NewKeyedSet(linkedlist.New())
}

// NewRBTreeMap boosts a synchronized red-black tree as a transactional map
// with per-key abstract locks.
func NewRBTreeMap[V any]() *Map[V] {
	return NewMap[V](rbtree.NewSync[V]())
}

// Interface conformance checks for the substrates used as black boxes.
var (
	_ BaseSet = (*skiplist.Set)(nil)
	_ BaseSet = (*hashset.Set)(nil)
	_ BaseSet = (*linkedlist.Set)(nil)
	_ BaseSet = rbSetAdapter{}
)
