package core

import (
	"tboost/internal/hashset"
	"tboost/internal/linkedlist"
	"tboost/internal/rbtree"
	"tboost/internal/skiplist"
)

// rbSetAdapter presents the synchronized red-black tree as a BaseSet.
type rbSetAdapter struct{ tree *rbtree.Sync[struct{}] }

func (a rbSetAdapter) Add(key int64) bool      { return a.tree.Insert(key, struct{}{}) }
func (a rbSetAdapter) Remove(key int64) bool   { _, ok := a.tree.Delete(key); return ok }
func (a rbSetAdapter) Contains(key int64) bool { return a.tree.Contains(key) }

// NewRBTreeSet boosts a synchronized sequential red-black tree with a single
// coarse abstract lock — the boosted configuration of the Fig. 9 experiment
// (no thread-level concurrency in the base, no transactional concurrency in
// the wrapper, yet it beats the shadow-copy STM).
func NewRBTreeSet() *Set[int64] {
	return NewCoarseSet[int64](rbSetAdapter{tree: rbtree.NewSync[struct{}]()})
}

// NewSkipListSet boosts the lock-free skip list with per-key abstract locks
// — the paper's SkipListKey class (§3.1.1, the fast variant of Fig. 10).
func NewSkipListSet() *Set[int64] {
	return NewKeyedSet[int64](skiplist.New())
}

// NewSkipListSetCoarse boosts the same lock-free skip list with a single
// abstract lock — the slow variant of Fig. 10. Identical base object, so any
// throughput difference is attributable purely to abstract-lock granularity.
func NewSkipListSetCoarse() *Set[int64] {
	return NewCoarseSet[int64](skiplist.New())
}

// NewHashSet boosts the striped concurrent hash set with per-key abstract
// locks (the black-box transactional hash table of the paper's related-work
// discussion).
func NewHashSet() *Set[int64] {
	return NewHashSetOf[int64]()
}

// NewHashSetOf boosts the striped concurrent hash set over any comparable
// key type with per-key abstract locks — the generic entry point the kernel
// makes possible: the same spec, lock discipline, and base container serve
// string- or struct-keyed transactional sets.
func NewHashSetOf[K comparable]() *Set[K] {
	return NewKeyedSet[K](hashset.New[K]())
}

// NewLinkedListSet boosts the lock-coupling sorted linked list — the
// introduction's motivating example of synchronization that transactions
// based on read/write conflicts cannot express.
func NewLinkedListSet() *Set[int64] {
	return NewKeyedSet[int64](linkedlist.New())
}

// NewRBTreeMap boosts a synchronized red-black tree as a transactional map
// with per-key abstract locks.
func NewRBTreeMap[V any]() *Map[int64, V] {
	return NewMap[int64, V](rbtree.NewSync[V]())
}

// Interface conformance checks for the substrates used as black boxes.
var (
	_ BaseSet[int64]  = (*skiplist.Set[int64])(nil)
	_ BaseSet[string] = (*skiplist.Set[string])(nil)
	_ BaseSet[int64]  = (*hashset.Set[int64])(nil)
	_ BaseSet[string] = (*hashset.Set[string])(nil)
	_ BaseSet[int64]  = (*linkedlist.Set)(nil)
	_ BaseSet[int64]  = rbSetAdapter{}
)
