package core

import (
	"sync"
	"tboost/internal/boost"

	"tboost/internal/stm"
)

// RefCount is the paper's transactional reference count (§2): increments
// take effect immediately (with a logged decrement as inverse), while
// decrements are disposable and deferred until after commit — so an object
// can never be freed by a transaction that later aborts, and frees may be
// batched arbitrarily late.
type RefCount struct {
	mu      sync.Mutex
	count   int64
	onZero  func()
	dropped bool
}

// NewRefCount returns a reference count with the given initial value.
// onZero, if non-nil, runs once when the committed count first reaches zero
// (the "space can be freed" hook).
func NewRefCount(initial int64, onZero func()) *RefCount {
	if initial < 0 {
		initial = 0
	}
	return &RefCount{count: initial, onZero: onZero}
}

// Inc increments the count immediately; if tx aborts, the logged inverse
// decrements it again (without triggering onZero semantics differently:
// an aborted Inc leaves no trace).
func (r *RefCount) Inc(tx *stm.Tx) {
	r.add(1)
	boost.Inverse(tx, func() { r.add(-1) })
}

// Dec schedules a decrement for after tx commits. The call is disposable:
// no transaction can observe whether a pending decrement has happened yet,
// because the count may only be compared against zero by the reclaimer.
func (r *RefCount) Dec(tx *stm.Tx) {
	boost.OnCommit(tx, func() { r.add(-1) })
}

func (r *RefCount) add(d int64) {
	r.mu.Lock()
	r.count += d
	fire := r.count == 0 && !r.dropped && r.onZero != nil
	if fire {
		r.dropped = true
	}
	f := r.onZero
	r.mu.Unlock()
	if fire {
		f()
	}
}

// Value returns the committed count.
func (r *RefCount) Value() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}
