package core

import (
	"sync"
	"tboost/internal/boost"

	"tboost/internal/stm"
)

// Pool applies the paper's disposability analysis to storage management
// ("similar disposability tradeoffs apply to transactional malloc() and
// free()"): Alloc hands out an object immediately — its inverse returns the
// object to the free list — while Free is disposable and deferred until
// after commit, so memory freed by a transaction that later aborts is never
// recycled out from under it.
type Pool[T any] struct {
	mu    sync.Mutex
	free  []T
	fresh func() T
	// allocs/frees count committed operations, for tests.
	allocs, frees int64
}

// NewPool returns a pool that calls fresh when the free list is empty.
func NewPool[T any](fresh func() T) *Pool[T] {
	return &Pool[T]{fresh: fresh}
}

// Alloc returns an object from the pool. If tx aborts, the logged inverse
// puts the object back on the free list.
func (p *Pool[T]) Alloc(tx *stm.Tx) T {
	p.mu.Lock()
	var v T
	if n := len(p.free); n > 0 {
		v = p.free[n-1]
		var zero T
		p.free[n-1] = zero
		p.free = p.free[:n-1]
	} else {
		v = p.fresh()
	}
	p.allocs++
	p.mu.Unlock()
	boost.Inverse(tx, func() { p.putBack(v, true) })
	return v
}

// Free returns v to the pool after tx commits. Disposable: a deferred free
// is indistinguishable from a slow allocator, and batching frees is
// explicitly sanctioned by the paper.
func (p *Pool[T]) Free(tx *stm.Tx, v T) {
	boost.OnCommit(tx, func() { p.putBack(v, false) })
}

func (p *Pool[T]) putBack(v T, undoingAlloc bool) {
	p.mu.Lock()
	p.free = append(p.free, v)
	if undoingAlloc {
		p.allocs--
	} else {
		p.frees++
	}
	p.mu.Unlock()
}

// FreeLen reports the current free-list length.
func (p *Pool[T]) FreeLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats reports committed allocs and frees.
func (p *Pool[T]) Stats() (allocs, frees int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs, p.frees
}
