package core

import (
	"errors"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestOrderedSetBasics(t *testing.T) {
	s := NewOrderedSet()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for _, k := range []int64{5, 1, 9, 3, 7} {
			if !s.Add(tx, k) {
				t.Errorf("Add(%d) = false", k)
			}
		}
		if s.CountRange(tx, 2, 8) != 3 { // 3,5,7
			t.Errorf("CountRange(2,8) = %d", s.CountRange(tx, 2, 8))
		}
		keys := s.KeysRange(tx, 0, 100)
		want := []int64{1, 3, 5, 7, 9}
		if len(keys) != len(want) {
			t.Fatalf("KeysRange = %v", keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("KeysRange = %v, want %v", keys, want)
			}
		}
		if s.SumRange(tx, 1, 9) != 25 {
			t.Errorf("SumRange = %d", s.SumRange(tx, 1, 9))
		}
		if !s.Remove(tx, 5) || !s.Contains(tx, 7) || s.Contains(tx, 5) {
			t.Error("point ops broken")
		}
	})
}

func TestOrderedSetRangeQueryVsOutsideUpdateNoConflict(t *testing.T) {
	s := NewOrderedSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond, MaxRetries: 1})
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.CountRange(tx, 0, 100) // holds [0,100]
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	if err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 500) // outside the range: must not block
		return nil
	}); err != nil {
		t.Fatalf("outside-range update blocked by range query: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestOrderedSetRangeQueryVsInsideUpdateConflicts(t *testing.T) {
	s := NewOrderedSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.CountRange(tx, 0, 100)
			close(held)
			<-release
			return nil
		})
	}()
	<-held
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 50) // inside the locked range: conflict
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("inside-range update did not conflict: %v", err)
	}
	<-done
}

func TestOrderedSetRangeAtomicity(t *testing.T) {
	// Writers move a pair of keys between the low and high half atomically
	// (remove one side, add the other); a ranged reader must always see a
	// constant total across [0, 2N).
	s := NewOrderedSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 500 * time.Millisecond})
	const n = 32
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < n; k++ {
			s.Add(tx, k) // all start in the low half
		}
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 17))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(r.IntN(n))
				_ = sys.Atomic(func(tx *stm.Tx) error {
					if s.Contains(tx, k) {
						s.Remove(tx, k)
						s.Add(tx, k+n)
					} else if s.Contains(tx, k+n) {
						s.Remove(tx, k+n)
						s.Add(tx, k)
					}
					return nil
				})
			}
		}()
	}
	for i := 0; i < 300; i++ {
		var total int
		err := sys.Atomic(func(tx *stm.Tx) error {
			total = s.CountRange(tx, 0, 2*n-1)
			return nil
		})
		if err != nil {
			t.Fatalf("range query: %v", err)
		}
		if total != n {
			t.Fatalf("iteration %d: CountRange = %d, want %d (atomicity broken)", i, total, n)
		}
	}
	close(stop)
	wg.Wait()
}

func TestOrderedSetUndoRestores(t *testing.T) {
	s := NewOrderedSet()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 1)
		s.Add(tx, 2)
	})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 3)
		s.Remove(tx, 1)
		return boom
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if got := s.KeysRange(tx, 0, 10); len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Errorf("after abort KeysRange = %v, want [1 2]", got)
		}
	})
}
