package core

import (
	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Multiset is a boosted transactional bag of keys. Unlike the Set, add(x)
// always changes the bag (multisets admit duplicates), so its inverse is
// unconditional: removeOne(x). Per-key abstract locking gives the same
// commutativity-based concurrency as the boosted Set: operations on
// distinct keys never conflict.
type Multiset[K comparable] struct {
	base *hashset.MultiSet[K]
	obj  *boost.Object[K]
}

// NewMultiset returns a boosted bag over a striped concurrent multiset.
func NewMultiset[K comparable]() *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewKeyed[K]()}
}

// Add inserts one occurrence of key and returns the resulting count.
// Inverse: removeOne(key), unconditionally — Apply takes the whole
// descriptor at once because the inverse does not depend on the result.
func (m *Multiset[K]) Add(tx *stm.Tx, key K) int {
	m.obj.Apply(tx, boost.Op[K]{
		Demand:  boost.DemandKey,
		Key:     key,
		Inverse: func() { m.base.RemoveOne(key) },
	})
	m.obj.Emit(tx, RedoAdd, key, nil)
	return m.base.Add(key)
}

// RemoveOne deletes one occurrence of key, reporting whether one existed.
// Inverse: add(key) when an occurrence was removed; noop otherwise.
func (m *Multiset[K]) RemoveOne(tx *stm.Tx, key K) bool {
	m.obj.Acquire(tx, boost.Key(key))
	if !m.base.RemoveOne(key) {
		return false
	}
	m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Add(key) }})
	m.obj.Emit(tx, RedoRemove, key, nil)
	return true
}

// Count returns the number of occurrences of key. Read-only; the key's
// abstract lock still serializes it against concurrent mutators of the
// same key.
func (m *Multiset[K]) Count(tx *stm.Tx, key K) int {
	m.obj.Acquire(tx, boost.Key(key))
	return m.base.Count(key)
}

// Base returns the underlying linearizable multiset for quiescent
// inspection.
func (m *Multiset[K]) Base() *hashset.MultiSet[K] { return m.base }
