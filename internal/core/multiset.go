package core

import (
	"tboost/internal/hashset"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Multiset is a boosted transactional bag of int64 keys. Unlike the Set,
// add(x) always changes the bag (multisets admit duplicates), so its
// inverse is unconditional: removeOne(x). Per-key abstract locking gives
// the same commutativity-based concurrency as the boosted Set: operations
// on distinct keys never conflict.
type Multiset struct {
	base  *hashset.MultiSet
	locks *lockmgr.LockMap[int64]
}

// NewMultiset returns a boosted bag over a striped concurrent multiset.
func NewMultiset() *Multiset {
	return &Multiset{base: hashset.NewMultiSet(), locks: lockmgr.NewLockMap[int64]()}
}

// Add inserts one occurrence of key and returns the resulting count.
// Inverse: removeOne(key).
func (m *Multiset) Add(tx *stm.Tx, key int64) int {
	m.locks.Lock(tx, key)
	n := m.base.Add(key)
	tx.Log(func() { m.base.RemoveOne(key) })
	return n
}

// RemoveOne deletes one occurrence of key, reporting whether one existed.
// Inverse: add(key) when an occurrence was removed; noop otherwise.
func (m *Multiset) RemoveOne(tx *stm.Tx, key int64) bool {
	m.locks.Lock(tx, key)
	ok := m.base.RemoveOne(key)
	if ok {
		tx.Log(func() { m.base.Add(key) })
	}
	return ok
}

// Count returns the number of occurrences of key. Read-only; the key's
// abstract lock still serializes it against concurrent mutators of the
// same key.
func (m *Multiset) Count(tx *stm.Tx, key int64) int {
	m.locks.Lock(tx, key)
	return m.base.Count(key)
}

// Base returns the underlying linearizable multiset for quiescent
// inspection.
func (m *Multiset) Base() *hashset.MultiSet { return m.base }
