package core

import (
	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Multiset is a boosted transactional bag of keys. Unlike the Set, add(x)
// always changes the bag (multisets admit duplicates), so its inverse is
// unconditional: removeOne(x). Per-key abstract locking gives the same
// commutativity-based concurrency as the boosted Set: operations on
// distinct keys never conflict.
type Multiset[K comparable] struct {
	base *hashset.MultiSet[K]
	obj  *boost.Object[K]
}

// NewMultiset returns a boosted bag over a striped concurrent multiset.
func NewMultiset[K comparable]() *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewKeyed[K]().EnableVersions()}
}

// Add inserts one occurrence of key and returns the resulting count.
// Eager: inverse removeOne(key), unconditionally — Apply takes the whole
// descriptor at once because the inverse does not depend on the result.
// Lazy: a +1 delta joins the pending log; deltas on one key fuse into a
// single net increment at commit (inc∘inc combine).
func (m *Multiset[K]) Add(tx *stm.Tx, key K) int {
	if m.obj.Lazy() {
		lg, count := m.lazyCount(tx, key)
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyInc, Key: key, N: 1})
		return count + 1
	}
	m.obj.Apply(tx, boost.Op[K]{
		Demand:  boost.DemandKey,
		Key:     key,
		Inverse: func() { m.base.RemoveOne(key) },
	})
	live := m.obj.VersioningLive(tx)
	if live && m.obj.NeedsSeed(key) {
		m.seedCount(tx, key)
	}
	m.obj.Emit(tx, RedoAdd, key, nil)
	n := m.base.Add(key)
	if live {
		m.obj.RecordVersion(tx, key, boost.Version{Present: true, N: int64(n)})
	}
	return n
}

// seedCount plants key's pre-transaction occurrence count at the version
// floor. Callers hold key's abstract lock, so the base read is stable.
func (m *Multiset[K]) seedCount(tx *stm.Tx, key K) {
	c := int64(m.base.Count(key))
	m.obj.SeedVersion(tx, key, boost.Version{Present: c > 0, N: c})
}

// RemoveOne deletes one occurrence of key, reporting whether one existed.
// Eager: inverse add(key) when an occurrence was removed; noop otherwise.
// Lazy: a -1 delta, logged only when the transaction's view of the count is
// positive.
func (m *Multiset[K]) RemoveOne(tx *stm.Tx, key K) bool {
	if m.obj.Lazy() {
		lg, count := m.lazyCount(tx, key)
		if count <= 0 {
			return false
		}
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyInc, Key: key, N: -1})
		return true
	}
	m.obj.Acquire(tx, boost.Key(key))
	live := m.obj.VersioningLive(tx)
	if live && m.obj.NeedsSeed(key) {
		m.seedCount(tx, key)
	}
	if !m.base.RemoveOne(key) {
		return false
	}
	m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Add(key) }})
	m.obj.Emit(tx, RedoRemove, key, nil)
	if live {
		n := int64(m.base.Count(key))
		m.obj.RecordVersion(tx, key, boost.Version{Present: n > 0, N: n})
	}
	return true
}

// Count returns the number of occurrences of key. Eager: read-only, but the
// key's abstract lock still serializes it against concurrent mutators of
// the same key. Lazy: observed count plus the pending delta. Read-only
// transactions answer from the key's version chain — chains store the
// absolute post-operation count, recorded under the key's exclusive lock,
// so the snapshot read needs no lock demand (see Set.Contains for the
// chain-miss double-check argument).
func (m *Multiset[K]) Count(tx *stm.Tx, key K) int {
	if tx.ReadOnly() && m.obj.Versioned() {
		if v, ok := m.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return int(v.N)
		}
		n := m.base.Count(key)
		if v, ok := m.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return int(v.N)
		}
		return n
	}
	if m.obj.Lazy() {
		_, count := m.lazyCount(tx, key)
		return count
	}
	m.obj.Acquire(tx, boost.Key(key))
	return m.base.Count(key)
}

// lazyCount returns the transaction's current view of key's occurrence
// count: the observed base count (recorded on first touch, validated at
// commit) plus the pending delta.
func (m *Multiset[K]) lazyCount(tx *stm.Tx, key K) (*boost.LazyLog[K], int) {
	lg := m.obj.PendingLog(tx, m)
	obs, delta, known := lg.CountDelta(key)
	if !known {
		obs = int64(m.base.Count(key))
		lg.ObserveCount(key, obs)
	}
	return lg, int(obs + delta)
}

// Base returns the underlying linearizable multiset for quiescent
// inspection.
func (m *Multiset[K]) Base() *hashset.MultiSet[K] { return m.base }

// Engine returns the kernel object executing this multiset's descriptors,
// for tests and introspection.
func (m *Multiset[K]) Engine() *boost.Object[K] { return m.obj }
