package core

import (
	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// Multiset is a boosted transactional bag of keys. Unlike the Set, add(x)
// always changes the bag (multisets admit duplicates), so its inverse is
// unconditional: removeOne(x). Per-key abstract locking gives the same
// commutativity-based concurrency as the boosted Set: operations on
// distinct keys never conflict.
type Multiset[K comparable] struct {
	base *hashset.MultiSet[K]
	obj  *boost.Object[K]
}

// NewMultiset returns a boosted bag over a striped concurrent multiset.
func NewMultiset[K comparable]() *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewKeyed[K]()}
}

// Add inserts one occurrence of key and returns the resulting count.
// Eager: inverse removeOne(key), unconditionally — Apply takes the whole
// descriptor at once because the inverse does not depend on the result.
// Lazy: a +1 delta joins the pending log; deltas on one key fuse into a
// single net increment at commit (inc∘inc combine).
func (m *Multiset[K]) Add(tx *stm.Tx, key K) int {
	if m.obj.Lazy() {
		lg, count := m.lazyCount(tx, key)
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyInc, Key: key, N: 1})
		return count + 1
	}
	m.obj.Apply(tx, boost.Op[K]{
		Demand:  boost.DemandKey,
		Key:     key,
		Inverse: func() { m.base.RemoveOne(key) },
	})
	m.obj.Emit(tx, RedoAdd, key, nil)
	return m.base.Add(key)
}

// RemoveOne deletes one occurrence of key, reporting whether one existed.
// Eager: inverse add(key) when an occurrence was removed; noop otherwise.
// Lazy: a -1 delta, logged only when the transaction's view of the count is
// positive.
func (m *Multiset[K]) RemoveOne(tx *stm.Tx, key K) bool {
	if m.obj.Lazy() {
		lg, count := m.lazyCount(tx, key)
		if count <= 0 {
			return false
		}
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyInc, Key: key, N: -1})
		return true
	}
	m.obj.Acquire(tx, boost.Key(key))
	if !m.base.RemoveOne(key) {
		return false
	}
	m.obj.Record(tx, boost.Op[K]{Inverse: func() { m.base.Add(key) }})
	m.obj.Emit(tx, RedoRemove, key, nil)
	return true
}

// Count returns the number of occurrences of key. Eager: read-only, but the
// key's abstract lock still serializes it against concurrent mutators of
// the same key. Lazy: observed count plus the pending delta.
func (m *Multiset[K]) Count(tx *stm.Tx, key K) int {
	if m.obj.Lazy() {
		_, count := m.lazyCount(tx, key)
		return count
	}
	m.obj.Acquire(tx, boost.Key(key))
	return m.base.Count(key)
}

// lazyCount returns the transaction's current view of key's occurrence
// count: the observed base count (recorded on first touch, validated at
// commit) plus the pending delta.
func (m *Multiset[K]) lazyCount(tx *stm.Tx, key K) (*boost.LazyLog[K], int) {
	lg := m.obj.PendingLog(tx, m)
	obs, delta, known := lg.CountDelta(key)
	if !known {
		obs = int64(m.base.Count(key))
		lg.ObserveCount(key, obs)
	}
	return lg, int(obs + delta)
}

// Base returns the underlying linearizable multiset for quiescent
// inspection.
func (m *Multiset[K]) Base() *hashset.MultiSet[K] { return m.base }
