package core

import (
	"errors"
	"sync"
	"testing"

	"tboost/internal/hashset"
	"tboost/internal/stm"
)

// TestSnapshotReadsCommittedState checks the basic multi-version contract:
// a read-only transaction sees every previously committed write, and a
// pinned Snapshot keeps answering from its pin while writers move on.
func TestSnapshotReadsCommittedState(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())

	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < 8; k++ {
			s.Add(tx, k)
		}
	})
	if err := sys.AtomicRO(func(tx *stm.Tx) error {
		for k := int64(0); k < 8; k++ {
			if !s.Contains(tx, k) {
				t.Errorf("read-only tx missing committed key %d", k)
			}
		}
		if s.Contains(tx, 99) {
			t.Error("read-only tx sees never-written key")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sn := sys.OpenSnapshot()
	defer sn.Close()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Remove(tx, 3)
		s.Add(tx, 50)
	})
	// The pinned snapshot still sees the pre-write state...
	if err := sn.Atomic(func(tx *stm.Tx) error {
		if !s.Contains(tx, 3) {
			t.Error("snapshot lost key 3 to a later writer")
		}
		if s.Contains(tx, 50) {
			t.Error("snapshot sees a write from beyond its pin")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// ...while a fresh read-only transaction sees the new state.
	if err := sys.AtomicRO(func(tx *stm.Tx) error {
		if s.Contains(tx, 3) {
			t.Error("fresh read-only tx sees removed key 3")
		}
		if !s.Contains(tx, 50) {
			t.Error("fresh read-only tx missing committed key 50")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotMapAndMultiset exercises the other versioned read paths: a
// map snapshot returns the binding at the pin, a multiset snapshot the
// count at the pin.
func TestSnapshotMapAndMultiset(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	mp := NewMap[int64, string](rbtreeStringBase())
	ms := NewMultiset[int64]()

	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		mp.Put(tx, 1, "old")
		ms.Add(tx, 1)
		ms.Add(tx, 1)
	})
	sn := sys.OpenSnapshot()
	defer sn.Close()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		mp.Put(tx, 1, "new")
		mp.Put(tx, 2, "fresh")
		ms.Add(tx, 1)
	})
	if err := sn.Atomic(func(tx *stm.Tx) error {
		if v, ok := mp.Get(tx, 1); !ok || v != "old" {
			t.Errorf("snapshot map read = %q,%v want old,true", v, ok)
		}
		if _, ok := mp.Get(tx, 2); ok {
			t.Error("snapshot sees binding from beyond its pin")
		}
		if n := ms.Count(tx, 1); n != 2 {
			t.Errorf("snapshot multiset count = %d, want 2", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AtomicRO(func(tx *stm.Tx) error {
		if v, ok := mp.Get(tx, 1); !ok || v != "new" {
			t.Errorf("fresh read-only map read = %q,%v want new,true", v, ok)
		}
		if n := ms.Count(tx, 1); n != 3 {
			t.Errorf("fresh read-only multiset count = %d, want 3", n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// rbtreeStringBase builds a BaseMap[int64,string] over the plain map-based
// test double used elsewhere in the package tests.
func rbtreeStringBase() BaseMap[int64, string] {
	return newMemMap[int64, string]()
}

// memMap is a trivially linearizable (mutex-guarded) BaseMap for tests.
type memMap[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

func newMemMap[K comparable, V any]() *memMap[K, V] {
	return &memMap[K, V]{m: make(map[K]V)}
}

func (t *memMap[K, V]) Put(key K, val V) (V, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.m[key]
	t.m[key] = val
	return old, ok
}

func (t *memMap[K, V]) Delete(key K) (V, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.m[key]
	delete(t.m, key)
	return old, ok
}

func (t *memMap[K, V]) Get(key K) (V, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v, ok := t.m[key]
	return v, ok
}

// TestVersionGCReclaimsBelowOldestPin pins the retention contract: with no
// snapshot pinned, a hot key's version chain stays at its steady-state
// floor no matter how often it is rewritten; a live pin retains history and
// surfaces the growth in the manager's stats; closing the pin lets the next
// flush reclaim everything below the new bound.
func TestVersionGCReclaimsBelowOldestPin(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())
	// Activate versioning before measuring (the first pin does it).
	if err := sys.AtomicRO(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}

	toggle := func(i int) {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			if i%2 == 0 {
				s.Add(tx, 0)
			} else {
				s.Remove(tx, 0)
			}
		})
	}
	for i := 0; i < 50; i++ {
		toggle(i)
	}
	if n := s.Engine().VersionChainLen(0); n > 2 {
		t.Fatalf("unpinned hot-key chain grew to %d entries, want <= 2", n)
	}

	sn := sys.OpenSnapshot()
	for i := 0; i < 50; i++ {
		toggle(i)
	}
	grown := s.Engine().VersionChainLen(0)
	if grown < 40 {
		t.Fatalf("pinned chain holds %d entries, want history retained (>= 40)", grown)
	}
	st := sys.Snapshots().Stats()
	if st.ActivePins != 1 {
		t.Fatalf("ActivePins = %d, want 1", st.ActivePins)
	}
	if st.OldestPin != sn.Seq() {
		t.Fatalf("OldestPin = %d, want %d", st.OldestPin, sn.Seq())
	}
	if st.VersionsRetained < int64(grown) {
		t.Fatalf("VersionsRetained = %d, below live chain length %d", st.VersionsRetained, grown)
	}
	// The pinned snapshot must still read its frozen state (key 0 was
	// absent at the pin: the 50th toggle, i=49, removed it).
	if err := sn.Atomic(func(tx *stm.Tx) error {
		if s.Contains(tx, 0) {
			t.Error("snapshot sees post-pin state")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	sn.Close()
	toggle(0) // next flush trims below the released pin
	if n := s.Engine().VersionChainLen(0); n > 2 {
		t.Fatalf("chain still holds %d entries after unpin, want <= 2", n)
	}
	if st := sys.Snapshots().Stats(); st.VersionsReclaimed == 0 {
		t.Fatal("VersionsReclaimed stayed 0 after trim")
	}
}

// TestPreActivationWriterNeverSeeds pins the per-call versioning latch: a
// transaction that begins while versioning is dormant must not start seeding
// or recording mid-flight when the manager activates under it. Before the
// latch, the second mutation below passed NeedsSeed and planted a sequence-0
// floor read from the base — a state containing the transaction's own
// uncommitted first mutation — and that floor survived the abort, leaving a
// never-committed state in the chain for every future snapshot to read.
func TestPreActivationWriterNeverSeeds(t *testing.T) {
	sys := stm.NewSystem(stm.Config{})
	s := NewKeyedSet(hashset.New[int64]())

	sentinel := errors.New("roll back")
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 7) // dormant: no seed, no record
		// Simulate the mid-transaction activation flip (a real first pin
		// additionally drains; the flip alone is the hazardous half).
		sys.Snapshots().Activate()
		s.Remove(tx, 7) // latched false: still no seed, no record
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("Atomic = %v, want sentinel", err)
	}
	if n := s.Engine().VersionChainLen(7); n != 0 {
		t.Fatalf("aborted pre-activation writer left %d version entries, want 0", n)
	}

	// A call that begins after activation latches true and versions normally.
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 7) })
	if n := s.Engine().VersionChainLen(7); n == 0 {
		t.Fatal("post-activation writer recorded no versions")
	}
}
