package core

// Adaptive-granularity constructors: boosted collections whose abstract-lock
// discipline starts coarse and promotes itself to per-key locking under
// contention (internal/boost/adaptive.go). Unlike every static constructor
// in this package, these take the *stm.System the object will run on: the
// migration protocol's drain barrier is a property of one system's call
// epochs, so the binding happens at construction and transactions from any
// other system panic. The method sets are unchanged — Set, Map, and Multiset
// methods never look at the discipline; only the kernel's Acquire does.

import (
	"tboost/internal/boost"
	"tboost/internal/hashset"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// NewAdaptiveSet boosts base with the adaptive discipline under default
// thresholds: one coarse abstract lock until the lock manager reports
// sustained blocking, then a per-key table for transactions born after the
// migration barrier.
func NewAdaptiveSet[K comparable](sys *stm.System, base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewAdaptive[K](sys).EnableVersions()}
}

// NewAdaptiveSetConfig is NewAdaptiveSet with explicit promotion/demotion
// thresholds.
func NewAdaptiveSetConfig[K comparable](sys *stm.System, base BaseSet[K], cfg boost.AdaptiveConfig) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewAdaptiveConfig[K](sys, cfg).EnableVersions()}
}

// NewAdaptiveSkipListSet boosts the lock-free skip list adaptively — the
// Fig. 10 ablation (NewSkipListSet vs NewSkipListSetCoarse) as a runtime
// policy over the identical base object.
func NewAdaptiveSkipListSet(sys *stm.System) *Set[int64] {
	return NewAdaptiveSet[int64](sys, skiplist.New())
}

// NewLazyAdaptiveSet is the lazy twin of NewAdaptiveSet: mutations defer to
// the pending log, and the commit-time drain locks under the granularity the
// transaction latched at its first demand (for a pure-lazy transaction, the
// drain itself).
func NewLazyAdaptiveSet[K comparable](sys *stm.System, base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewLazyAdaptive[K](sys).EnableVersions()}
}

// NewLazyAdaptiveSkipListSet is the lazy twin of NewAdaptiveSkipListSet.
func NewLazyAdaptiveSkipListSet(sys *stm.System) *Set[int64] {
	return NewLazyAdaptiveSet[int64](sys, skiplist.New())
}

// NewAdaptiveMap boosts a linearizable base map with the adaptive
// discipline.
func NewAdaptiveMap[K comparable, V any](sys *stm.System, base BaseMap[K, V]) *Map[K, V] {
	return &Map[K, V]{base: base, obj: boost.NewAdaptive[K](sys).EnableVersions()}
}

// NewLazyAdaptiveMap is the lazy twin of NewAdaptiveMap; V is bound to
// comparable for commit-time observation checks, as in NewLazyMap.
func NewLazyAdaptiveMap[K, V comparable](sys *stm.System, base BaseMap[K, V]) *Map[K, V] {
	m := &Map[K, V]{base: base, obj: boost.NewLazyAdaptive[K](sys).EnableVersions()}
	m.lazyEq = func(obsVal any, obsOK bool, cur V, curOK bool) bool {
		if obsOK != curOK {
			return false
		}
		if !obsOK {
			return true
		}
		return obsVal.(V) == cur
	}
	return m
}

// NewAdaptiveMultiset returns an adaptively boosted bag over the striped
// concurrent multiset.
func NewAdaptiveMultiset[K comparable](sys *stm.System) *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewAdaptive[K](sys).EnableVersions()}
}

// NewLazyAdaptiveMultiset is the lazy twin of NewAdaptiveMultiset: per-key
// deltas fuse into one net increment per key at commit, applied under the
// latched granularity.
func NewLazyAdaptiveMultiset[K comparable](sys *stm.System) *Multiset[K] {
	return &Multiset[K]{base: hashset.NewMultiSet[K](), obj: boost.NewLazyAdaptive[K](sys).EnableVersions()}
}
