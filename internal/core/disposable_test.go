package core

import (
	"errors"
	"sync"
	"testing"

	"tboost/internal/stm"
)

// --- UniqueID ---

func TestUniqueIDDistinctAcrossTransactions(t *testing.T) {
	u := NewUniqueID()
	sys := newSys()
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		var id int64
		stm.MustAtomicOn(sys, func(tx *stm.Tx) { id = u.AssignID(tx) })
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

func TestUniqueIDReleasedAfterAbort(t *testing.T) {
	u := NewUniqueID()
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		u.AssignID(tx)
		return boom
	})
	if u.Released() != 1 {
		t.Fatalf("Released = %d, want 1 (post-abort disposable ran)", u.Released())
	}
	// The paper's §5.2.3 history: the released ID is NOT reissued; the next
	// assignment is a fresh ID.
	var next int64
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { next = u.AssignID(tx) })
	if next != 2 {
		t.Fatalf("next id = %d, want 2 (abandoned release)", next)
	}
}

func TestUniqueIDNoReleaseOnCommit(t *testing.T) {
	u := NewUniqueID()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { u.AssignID(tx) })
	if u.Released() != 0 {
		t.Fatalf("Released = %d after commit, want 0", u.Released())
	}
}

func TestUniqueIDConcurrentNoConflicts(t *testing.T) {
	// assignID commutes with assignID: no abstract lock, so concurrent
	// transactions never abort over it.
	u := NewUniqueID()
	sys := newSys()
	var mu sync.Mutex
	seen := map[int64]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				stm.MustAtomicOn(sys, func(tx *stm.Tx) {
					id := u.AssignID(tx)
					mu.Lock()
					if seen[id] {
						t.Errorf("duplicate id %d", id)
					}
					seen[id] = true
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("aborts = %d; assignID must never conflict", st.Aborts)
	}
}

// --- RefCount ---

func TestRefCountIncImmediateDecDeferred(t *testing.T) {
	r := NewRefCount(1, nil)
	sys := newSys()
	during := make(chan int64, 2)
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		r.Inc(tx)
		during <- r.Value() // 2: inc is immediate
		r.Dec(tx)
		during <- r.Value() // still 2: dec is deferred
	})
	if v := <-during; v != 2 {
		t.Fatalf("during inc = %d, want 2", v)
	}
	if v := <-during; v != 2 {
		t.Fatalf("during dec = %d, want 2 (dec deferred)", v)
	}
	if r.Value() != 1 {
		t.Fatalf("after commit = %d, want 1", r.Value())
	}
}

func TestRefCountAbortUndoesIncDropsDec(t *testing.T) {
	r := NewRefCount(5, nil)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		r.Inc(tx)
		r.Dec(tx)
		r.Dec(tx)
		return boom
	})
	if r.Value() != 5 {
		t.Fatalf("after abort = %d, want 5", r.Value())
	}
}

func TestRefCountOnZeroFiresOnce(t *testing.T) {
	fired := 0
	r := NewRefCount(2, func() { fired++ })
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { r.Dec(tx) })
	if fired != 0 {
		t.Fatal("onZero fired early")
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { r.Dec(tx) })
	if fired != 1 {
		t.Fatalf("onZero fired %d times, want 1", fired)
	}
	// Going back above zero and down again must not re-fire (object freed).
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { r.Inc(tx) })
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { r.Dec(tx) })
	if fired != 1 {
		t.Fatalf("onZero re-fired: %d", fired)
	}
}

func TestRefCountAbortedIncCannotFree(t *testing.T) {
	// An Inc that aborts is undone by its inverse — but the undo of an
	// aborted Inc must not be mistaken for the owner's final Dec.
	fired := 0
	r := NewRefCount(1, func() { fired++ })
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		r.Inc(tx)
		return boom
	})
	if fired != 0 {
		t.Fatal("aborted Inc's undo freed a live object")
	}
	if r.Value() != 1 {
		t.Fatalf("Value = %d", r.Value())
	}
}

// --- Pool ---

func TestPoolAllocFreeRoundTrip(t *testing.T) {
	calls := 0
	p := NewPool(func() *int { calls++; v := calls; return &v })
	sys := newSys()
	var got *int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { got = p.Alloc(tx) })
	if got == nil || *got != 1 {
		t.Fatalf("Alloc = %v", got)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { p.Free(tx, got) })
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d", p.FreeLen())
	}
	// Next alloc reuses the freed object.
	var again *int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { again = p.Alloc(tx) })
	if again != got {
		t.Fatal("freed object not recycled")
	}
}

func TestPoolAbortedAllocReturnsObject(t *testing.T) {
	p := NewPool(func() int { return 7 })
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		p.Alloc(tx)
		return boom
	})
	if p.FreeLen() != 1 {
		t.Fatalf("FreeLen = %d after aborted alloc, want 1", p.FreeLen())
	}
	if a, _ := p.Stats(); a != 0 {
		t.Fatalf("committed allocs = %d, want 0", a)
	}
}

func TestPoolAbortedFreeDoesNotRecycle(t *testing.T) {
	p := NewPool(func() int { return 7 })
	sys := newSys()
	var v int
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { v = p.Alloc(tx) })
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		p.Free(tx, v)
		return boom
	})
	if p.FreeLen() != 0 {
		t.Fatal("aborted Free recycled the object")
	}
}

func TestPoolConcurrentNoDoubleHandout(t *testing.T) {
	next := 0
	var mkMu sync.Mutex
	p := NewPool(func() int {
		mkMu.Lock()
		defer mkMu.Unlock()
		next++
		return next
	})
	sys := newSys()
	var mu sync.Mutex
	inUse := map[int]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				var v int
				stm.MustAtomicOn(sys, func(tx *stm.Tx) { v = p.Alloc(tx) })
				mu.Lock()
				if inUse[v] {
					t.Errorf("object %d handed out twice", v)
					mu.Unlock()
					return
				}
				inUse[v] = true
				mu.Unlock()

				stm.MustAtomicOn(sys, func(tx *stm.Tx) { p.Free(tx, v) })
				mu.Lock()
				delete(inUse, v)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	allocs, frees := p.Stats()
	if allocs != frees {
		t.Fatalf("allocs %d != frees %d", allocs, frees)
	}
}
