package core

import (
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"tboost/internal/stm"
)

// FuzzLazyEagerEquivalence interprets fuzz input bytes as a program of
// transactions over four objects — a set, a multiset, a map, and an ordered
// set with range queries — and runs the same program twice on separate
// Systems: once against eager objects, once against their lazy twins. Every
// op's return value, every transaction's outcome (commit / user abort), and
// the final object states must match bit-for-bit: fusion and deferral are
// invisible to sequential semantics.
//
// Byte encoding: op = b>>5, k = b&7, v = (b>>3)&3.
//
//	0  set.Add(k), or AddQuiet(k) when v==3 (answer-free: no observation)
//	1  set.Remove(k), or RemoveQuiet(k) when v==3
//	2  set.Contains(k)
//	3  multiset: v&1==0 Add(k), else RemoveOne(k)
//	4  map: v<2 Put(k, b), v==2 Get(k), v==3 Delete(k)
//	5  ordered: v==0 Add(k), v==1 Remove(k), v==2 CountRange(k,k+4),
//	   v==3 SumRange(0,7)  — ranges early-flush the lazy pending log
//	6  end tx: v&1==1 abort (user error), else commit
//	7  nested: v&1==0 begin child (runs until next 6/7 terminator);
//	   v&1==1 end child with abort at depth>0, user-abort tx at depth 0
//
// Run continuously with:
//
//	go test -fuzz FuzzLazyEagerEquivalence ./internal/core
func FuzzLazyEagerEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x20, 0x00, 0xc0, 0x00, 0x20}) // add/remove/add, commit, add again
	f.Add([]byte{0x00, 0x01, 0xd0, 0x02})             // cross-key ops ending in user abort
	f.Add([]byte{0xe0, 0x00, 0x68, 0xe8, 0x01, 0xc0}) // nested child aborts, parent commits
	f.Add([]byte{0x61, 0x61, 0x69, 0xa0, 0xb0, 0xc0}) // multiset deltas + range queries
	f.Add([]byte{0x80, 0x98, 0x90, 0x88, 0xc0})       // map put/delete/get churn
	f.Add([]byte{0x1a, 0x22, 0xc0, 0x42, 0x3a, 0xc0}) // quiet add, answering remove, quiet remove
	seed := make([]byte, 96)
	r := rand.New(rand.NewPCG(7, 7))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, prog []byte) {
		eager := newEagerWorld()
		lazy := newLazyWorld()
		et, eo := runLazyEagerProgram(eager, prog)
		lt, lo := runLazyEagerProgram(lazy, prog)
		if len(eo) != len(lo) {
			t.Fatalf("tx count diverged: eager %d, lazy %d", len(eo), len(lo))
		}
		for i := range eo {
			if eo[i] != lo[i] {
				t.Fatalf("tx %d outcome diverged: eager commit=%v, lazy commit=%v", i, eo[i], lo[i])
			}
		}
		if len(et) != len(lt) {
			t.Fatalf("trace length diverged: eager %d, lazy %d", len(et), len(lt))
		}
		for i := range et {
			if et[i] != lt[i] {
				t.Fatalf("trace[%d] diverged: eager %d, lazy %d", i, et[i], lt[i])
			}
		}
	})
}

type lazyEagerWorld struct {
	sys *stm.System
	set *Set[int64]
	ms  *Multiset[int64]
	mp  *Map[int64, int64]
	os  *OrderedSet[int64]
}

func newEagerWorld() *lazyEagerWorld {
	return &lazyEagerWorld{
		sys: stm.NewSystem(stm.Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond}),
		set: NewHashSetOf[int64](),
		ms:  NewMultiset[int64](),
		mp:  NewRBTreeMap[int64](),
		os:  NewOrderedSet(),
	}
}

func newLazyWorld() *lazyEagerWorld {
	return &lazyEagerWorld{
		sys: stm.NewSystem(stm.Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond}),
		set: NewLazyHashSetOf[int64](),
		ms:  NewLazyMultiset[int64](),
		mp:  NewLazyRBTreeMap[int64](),
		os:  NewLazyOrderedSet(),
	}
}

var errFuzzUserAbort = errors.New("fuzz: user abort")

type lazyEagerExec struct {
	prog  []byte
	pc    int
	trace []int64
}

func (e *lazyEagerExec) rec(vals ...int64) { e.trace = append(e.trace, vals...) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// runLazyEagerProgram executes the program single-threaded: control flow
// depends only on the program bytes, never on op results, so both worlds
// consume the byte stream identically. Each transaction's body resets the
// program counter and trace to the attempt's start, keeping replays (none are
// expected without concurrency, but the engine is free to retry) idempotent.
// The returned trace ends with a full read-back of every object's final
// state, so final-state divergence fails the same comparison as return-value
// divergence.
func runLazyEagerProgram(w *lazyEagerWorld, prog []byte) (trace []int64, outcomes []bool) {
	e := &lazyEagerExec{prog: prog}
	for e.pc < len(e.prog) {
		pcStart, traceStart := e.pc, len(e.trace)
		err := w.sys.Atomic(func(tx *stm.Tx) error {
			e.pc, e.trace = pcStart, e.trace[:traceStart]
			return e.body(tx, w, 0)
		})
		outcomes = append(outcomes, err == nil)
	}
	stm.MustAtomicOn(w.sys, func(tx *stm.Tx) {
		for k := int64(0); k < 8; k++ {
			e.rec(b2i(w.set.Contains(tx, k)))
			e.rec(int64(w.ms.Count(tx, k)))
			mv, mok := w.mp.Get(tx, k)
			e.rec(mv, b2i(mok))
		}
		for _, k := range w.os.KeysRange(tx, 0, 7) {
			e.rec(k)
		}
	})
	return e.trace, outcomes
}

func (e *lazyEagerExec) body(tx *stm.Tx, w *lazyEagerWorld, depth int) error {
	for e.pc < len(e.prog) {
		b := e.prog[e.pc]
		e.pc++
		k, v := int64(b&7), (b>>3)&3
		switch b >> 5 {
		case 0:
			if v == 3 {
				w.set.AddQuiet(tx, k)
			} else {
				e.rec(b2i(w.set.Add(tx, k)))
			}
		case 1:
			if v == 3 {
				w.set.RemoveQuiet(tx, k)
			} else {
				e.rec(b2i(w.set.Remove(tx, k)))
			}
		case 2:
			e.rec(b2i(w.set.Contains(tx, k)))
		case 3:
			if v&1 == 0 {
				e.rec(int64(w.ms.Add(tx, k)))
			} else {
				e.rec(b2i(w.ms.RemoveOne(tx, k)))
			}
		case 4:
			switch {
			case v < 2:
				old, ok := w.mp.Put(tx, k, int64(b))
				e.rec(old, b2i(ok))
			case v == 2:
				val, ok := w.mp.Get(tx, k)
				e.rec(val, b2i(ok))
			default:
				old, ok := w.mp.Delete(tx, k)
				e.rec(old, b2i(ok))
			}
		case 5:
			switch v {
			case 0:
				e.rec(b2i(w.os.Add(tx, k)))
			case 1:
				e.rec(b2i(w.os.Remove(tx, k)))
			case 2:
				e.rec(int64(w.os.CountRange(tx, k, k+4)))
			default:
				e.rec(w.os.SumRange(tx, 0, 7))
			}
		case 6:
			if v&1 == 1 {
				return errFuzzUserAbort
			}
			return nil
		case 7:
			if v&1 == 1 {
				// At depth>0 this aborts the child only; at depth 0 it is a
				// user abort of the whole transaction.
				return errFuzzUserAbort
			}
			err := tx.Nested(func(tx *stm.Tx) error {
				return e.body(tx, w, depth+1)
			})
			e.rec(b2i(err == nil))
		}
	}
	return nil
}
