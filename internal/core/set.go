package core

import (
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// BaseSet is the abstract specification a linearizable set must satisfy to
// be boostable: Add and Remove report whether the set changed, which is what
// determines each call's inverse (Fig. 1 of the paper). Implementations must
// be linearizable under concurrent calls; the boosting layer never looks
// inside them.
type BaseSet interface {
	Add(key int64) bool
	Remove(key int64) bool
	Contains(key int64) bool
}

// locker is the abstract-lock discipline: per-key locks give maximal
// practical commutativity-based concurrency, a single coarse lock gives
// none. Both are correct; Fig. 10 quantifies the difference.
type locker interface {
	lock(tx *stm.Tx, key int64)
}

type keyedLocker struct{ locks *lockmgr.LockMap[int64] }

func (l keyedLocker) lock(tx *stm.Tx, key int64) { l.locks.Lock(tx, key) }

type coarseLocker struct{ lock_ *lockmgr.OwnerLock }

func (l coarseLocker) lock(tx *stm.Tx, _ int64) { l.lock_.Acquire(tx) }

// Set is a boosted transactional set: the paper's SkipListKey pattern,
// generic over any BaseSet. Every method must be called inside stm.Atomic
// with the current transaction.
type Set struct {
	base  BaseSet
	locks locker
}

// NewKeyedSet boosts base with one abstract lock per key (the paper's
// LockKey discipline). Transactions touching disjoint keys proceed fully in
// parallel, synchronizing only inside the linearizable base object.
func NewKeyedSet(base BaseSet) *Set {
	return &Set{base: base, locks: keyedLocker{locks: lockmgr.NewLockMap[int64]()}}
}

// NewKeyedSetStripes is NewKeyedSet with an explicit lock-table stripe
// count, exposed for the striping ablation benchmarks.
func NewKeyedSetStripes(base BaseSet, stripes int) *Set {
	return &Set{base: base, locks: keyedLocker{locks: lockmgr.NewLockMapStripes[int64](stripes)}}
}

// NewKeyedSetWoundWait is NewKeyedSet with wound-wait contention management
// on the per-key locks: deadlocks between multi-key transactions are
// resolved by age (the older transaction wounds the younger) instead of by
// timeout.
func NewKeyedSetWoundWait(base BaseSet) *Set {
	return &Set{base: base, locks: keyedLocker{
		locks: lockmgr.NewLockMapPolicy[int64](lockmgr.DefaultStripes, lockmgr.WoundWait),
	}}
}

// NewCoarseSet boosts base with a single abstract lock for all method calls
// — the conservative discipline Fig. 10 compares against, and the right
// choice for bases with no thread-level concurrency (e.g. a synchronized
// red-black tree, Fig. 9).
func NewCoarseSet(base BaseSet) *Set {
	return &Set{base: base, locks: coarseLocker{lock_: lockmgr.NewOwnerLock()}}
}

// Add inserts key, reporting whether the set changed. Inverse logged:
// add(x)/true -> remove(x); add(x)/false -> noop.
func (s *Set) Add(tx *stm.Tx, key int64) bool {
	s.locks.lock(tx, key)
	result := s.base.Add(key)
	if result {
		tx.Log(func() { s.base.Remove(key) })
	}
	return result
}

// Remove deletes key, reporting whether the set changed. Inverse logged:
// remove(x)/true -> add(x); remove(x)/false -> noop.
func (s *Set) Remove(tx *stm.Tx, key int64) bool {
	s.locks.lock(tx, key)
	result := s.base.Remove(key)
	if result {
		tx.Log(func() { s.base.Add(key) })
	}
	return result
}

// Contains reports whether key is present. No inverse is needed, but the
// abstract lock is still acquired: contains(x) does not commute with
// add(x)/remove(x) that change the answer, and key-based locking is the
// paper's practical approximation of that conflict relation.
func (s *Set) Contains(tx *stm.Tx, key int64) bool {
	s.locks.lock(tx, key)
	return s.base.Contains(key)
}

// Base returns the underlying linearizable set, for quiescent inspection
// (tests, verification). Touching it while transactions run forfeits
// serializability.
func (s *Set) Base() BaseSet { return s.base }
