package core

import (
	"tboost/internal/boost"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// BaseSet is the abstract specification a linearizable set must satisfy to
// be boostable: Add and Remove report whether the set changed, which is what
// determines each call's inverse (Fig. 1 of the paper). Implementations must
// be linearizable under concurrent calls; the boosting layer never looks
// inside them. The key space is any comparable type: boosting never orders,
// hashes, or otherwise inspects keys — it only demands their abstract locks.
type BaseSet[K comparable] interface {
	Add(key K) bool
	Remove(key K) bool
	Contains(key K) bool
}

// Set is a boosted transactional set: the paper's SkipListKey pattern as a
// spec over the generic boosting kernel. Each method declares its conflict
// footprint (the key it touches) and its outcome's inverse; the kernel
// executes that descriptor against the lock manager and the undo log. Every
// method must be called inside stm.Atomic with the current transaction.
type Set[K comparable] struct {
	base BaseSet[K]
	obj  *boost.Object[K]
}

// NewKeyedSet boosts base with one abstract lock per key (the paper's
// LockKey discipline). Transactions touching disjoint keys proceed fully in
// parallel, synchronizing only inside the linearizable base object.
func NewKeyedSet[K comparable](base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewKeyed[K]().EnableVersions()}
}

// NewKeyedSetStripes is NewKeyedSet with an explicit lock-table stripe
// count, exposed for the striping ablation benchmarks.
func NewKeyedSetStripes[K comparable](base BaseSet[K], stripes int) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewKeyedStripes[K](stripes).EnableVersions()}
}

// NewKeyedSetWoundWait is NewKeyedSet with wound-wait contention management
// pinned on the per-key locks: deadlocks between multi-key transactions are
// resolved by age (the older transaction wounds the younger) instead of by
// timeout, regardless of the System's configured policy. A plain NewKeyedSet
// already inherits whatever stm.Config.Contention selects; this constructor
// exists for mixing policies across objects in one system.
func NewKeyedSetWoundWait[K comparable](base BaseSet[K]) *Set[K] {
	return NewKeyedSetPolicy(base, lockmgr.WoundWait)
}

// NewKeyedSetPolicy is NewKeyedSet with an explicit contention policy pinned
// on the per-key locks (lockmgr.Timeout, lockmgr.WoundWait, or a
// lockmgr.NewDetect instance), overriding the system-wide choice.
func NewKeyedSetPolicy[K comparable](base BaseSet[K], p lockmgr.ContentionPolicy) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewKeyedPolicy[K](lockmgr.DefaultStripes, p).EnableVersions()}
}

// NewCoarseSet boosts base with a single abstract lock for all method calls
// — the conservative discipline Fig. 10 compares against, and the right
// choice for bases with no thread-level concurrency (e.g. a synchronized
// red-black tree, Fig. 9). The per-method specs below are unchanged: the
// kernel maps the same key demands onto the coarse lock.
func NewCoarseSet[K comparable](base BaseSet[K]) *Set[K] {
	return &Set[K]{base: base, obj: boost.NewCoarse[K]().EnableVersions()}
}

// Add inserts key, reporting whether the set changed. Eager: inverse
// recorded add(x)/true -> remove(x), add(x)/false -> noop. Lazy: the add is
// deferred to the pending log and the answer predicted from the log's view
// of the key (see lazyPresence).
func (s *Set[K]) Add(tx *stm.Tx, key K) bool {
	if s.obj.Lazy() {
		lg, present := s.lazyPresence(tx, key)
		if present {
			return false
		}
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyAdd, Key: key})
		return true
	}
	s.obj.Acquire(tx, boost.Key(key))
	live := s.obj.VersioningLive(tx)
	if live && s.obj.NeedsSeed(key) {
		s.obj.SeedVersion(tx, key, boost.Version{Present: s.base.Contains(key)})
	}
	if !s.base.Add(key) {
		return false
	}
	s.obj.Record(tx, boost.Op[K]{Inverse: func() { s.base.Remove(key) }})
	s.obj.Emit(tx, RedoAdd, key, nil)
	if live {
		s.obj.RecordVersion(tx, key, boost.Version{Present: true})
	}
	return true
}

// Remove deletes key, reporting whether the set changed. Eager: inverse
// recorded remove(x)/true -> add(x); remove(x)/false -> noop. Lazy: the
// removal is deferred.
func (s *Set[K]) Remove(tx *stm.Tx, key K) bool {
	if s.obj.Lazy() {
		lg, present := s.lazyPresence(tx, key)
		if !present {
			return false
		}
		lg.Append(boost.LazyEntry[K]{Kind: boost.LazyRemove, Key: key})
		return true
	}
	s.obj.Acquire(tx, boost.Key(key))
	live := s.obj.VersioningLive(tx)
	if live && s.obj.NeedsSeed(key) {
		s.obj.SeedVersion(tx, key, boost.Version{Present: s.base.Contains(key)})
	}
	if !s.base.Remove(key) {
		return false
	}
	s.obj.Record(tx, boost.Op[K]{Inverse: func() { s.base.Add(key) }})
	s.obj.Emit(tx, RedoRemove, key, nil)
	if live {
		s.obj.RecordVersion(tx, key, boost.Version{Present: false})
	}
	return true
}

// AddQuiet inserts key without reporting whether the set changed — the
// answer-free half of the API (java.util-style sets return a bool from add;
// most callers discard it). Eager: identical to Add with the answer unused.
// Lazy: the discarded answer is a real saving — no answer means no
// observation, so the deferred add skips the unlocked base read, the
// read-your-writes scan, and commit-time validation entirely. It fuses as
// an upsert ("make present"), whose apply succeeds whether or not the key
// was already there.
func (s *Set[K]) AddQuiet(tx *stm.Tx, key K) {
	if s.obj.Lazy() {
		s.obj.PendingLog(tx, s).Append(boost.LazyEntry[K]{Kind: boost.LazyAdd, Key: key})
		return
	}
	s.Add(tx, key)
}

// RemoveQuiet deletes key without reporting whether the set changed; the
// answer-free counterpart of Remove (see AddQuiet). Lazy: defers a "make
// absent" upsert with no observation and no commit-time validation.
func (s *Set[K]) RemoveQuiet(tx *stm.Tx, key K) {
	if s.obj.Lazy() {
		s.obj.PendingLog(tx, s).Append(boost.LazyEntry[K]{Kind: boost.LazyRemove, Key: key})
		return
	}
	s.Remove(tx, key)
}

// Contains reports whether key is present. Eager: no inverse is needed, but
// the abstract lock is still demanded — contains(x) does not commute with
// add(x)/remove(x) that change the answer, and key-based locking is the
// paper's practical approximation of that conflict relation. Lazy: the
// answer comes from the pending log (read-your-writes) or an optimistic
// observation re-validated at commit; no lock until then.
//
// Read-only transactions on a versioned set never reach either path: the
// answer comes from the key's version chain at the snapshot's pinned
// sequence number — no lock demand, no pending log, no way to conflict.
// The chain miss (key never written since versioning activated) falls back
// to a base read double-checked against the chain, which is sound because
// writers seed a key's pre-state before their first base mutation of it.
func (s *Set[K]) Contains(tx *stm.Tx, key K) bool {
	if tx.ReadOnly() && s.obj.Versioned() {
		if v, ok := s.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return v.Present
		}
		hit := s.base.Contains(key)
		if v, ok := s.obj.VersionAt(key, tx.SnapshotSeq()); ok {
			return v.Present
		}
		return hit
	}
	if s.obj.Lazy() {
		_, present := s.lazyPresence(tx, key)
		return present
	}
	s.obj.Acquire(tx, boost.Key(key))
	return s.base.Contains(key)
}

// lazyPresence returns the transaction's current view of key — the pending
// log's latest word on it, or, on the transaction's first touch of the key,
// an unlocked read of the base recorded as the key's observation (the entry
// the commit-time drain re-validates under the abstract lock).
func (s *Set[K]) lazyPresence(tx *stm.Tx, key K) (*boost.LazyLog[K], bool) {
	lg := s.obj.PendingLog(tx, s)
	present, known := lg.Membership(key)
	if !known {
		present = s.base.Contains(key)
		lg.ObservePresence(key, present)
	}
	return lg, present
}

// Base returns the underlying linearizable set, for quiescent inspection
// (tests, verification). Touching it while transactions run forfeits
// serializability.
func (s *Set[K]) Base() BaseSet[K] { return s.base }

// Engine returns the kernel object executing this set's descriptors, for
// tests and introspection.
func (s *Set[K]) Engine() *boost.Object[K] { return s.obj }
