package core

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

// --- Multiset ---

func TestMultisetBasics(t *testing.T) {
	m := NewMultiset[int64]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if n := m.Add(tx, 5); n != 1 {
			t.Errorf("first Add = %d", n)
		}
		if n := m.Add(tx, 5); n != 2 {
			t.Errorf("second Add = %d", n)
		}
		if c := m.Count(tx, 5); c != 2 {
			t.Errorf("Count = %d", c)
		}
		if !m.RemoveOne(tx, 5) {
			t.Error("RemoveOne = false")
		}
		if c := m.Count(tx, 5); c != 1 {
			t.Errorf("Count after remove = %d", c)
		}
		if m.RemoveOne(tx, 99) {
			t.Error("RemoveOne on absent = true")
		}
	})
}

func TestMultisetUndoRestoresCounts(t *testing.T) {
	m := NewMultiset[int64]()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		m.Add(tx, 1)
		m.Add(tx, 1)
	})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		m.Add(tx, 1)       // 3
		m.RemoveOne(tx, 1) // 2
		m.RemoveOne(tx, 1) // 1
		m.Add(tx, 2)
		return boom
	})
	if c := m.Base().Count(1); c != 2 {
		t.Fatalf("count(1) = %d after abort, want 2", c)
	}
	if c := m.Base().Count(2); c != 0 {
		t.Fatalf("count(2) = %d after abort, want 0", c)
	}
}

func TestMultisetConcurrentAccounting(t *testing.T) {
	m := NewMultiset[int64]()
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	var net [8]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 3))
			for i := 0; i < 400; i++ {
				k := int64(r.IntN(8))
				add := r.IntN(2) == 0
				_ = sys.Atomic(func(tx *stm.Tx) error {
					if add {
						m.Add(tx, k)
						tx.OnCommit(func() { net[k].Add(1) })
					} else if m.RemoveOne(tx, k) {
						tx.OnCommit(func() { net[k].Add(-1) })
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	for k := 0; k < 8; k++ {
		if got := int64(m.Base().Count(int64(k))); got != net[k].Load() {
			t.Errorf("key %d: count = %d, committed net = %d", k, got, net[k].Load())
		}
	}
}

// --- Counter ---

func TestCounterAddAndGet(t *testing.T) {
	c := NewCounter(10)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		c.Add(tx, 5)
		c.Add(tx, -2)
		if v := c.Get(tx); v != 13 {
			t.Errorf("Get = %d", v)
		}
	})
	if c.ValueQuiescent() != 13 {
		t.Fatalf("final = %d", c.ValueQuiescent())
	}
}

func TestCounterAbortRestores(t *testing.T) {
	c := NewCounter(100)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		c.Add(tx, 7)
		c.Add(tx, 3)
		return boom
	})
	if c.ValueQuiescent() != 100 {
		t.Fatalf("after abort = %d, want 100", c.ValueQuiescent())
	}
}

func TestCounterConcurrentAddsNeverConflict(t *testing.T) {
	c := NewCounter(0)
	sys := newSys()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				stm.MustAtomicOn(sys, func(tx *stm.Tx) { c.Add(tx, 1) })
			}
		}()
	}
	wg.Wait()
	if c.ValueQuiescent() != 8*500 {
		t.Fatalf("counter = %d, want %d", c.ValueQuiescent(), 8*500)
	}
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("adds aborted %d times; increments must never conflict", st.Aborts)
	}
}

func TestCounterGetExcludesAdd(t *testing.T) {
	c := NewCounter(0)
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			c.Add(tx, 1) // shared mode held through the body
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		c.Get(tx) // exclusive: must conflict with the in-flight Add
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("Get overlapped an uncommitted Add: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCounterGetSeesNoUncommittedValue(t *testing.T) {
	// Get serializes after in-flight Adds (or they abort), so a committed
	// Get can never observe a value from a transaction that later aborts.
	c := NewCounter(0)
	sys := stm.NewSystem(stm.Config{LockTimeout: 300 * time.Millisecond})
	var observed []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	boom := errors.New("boom")
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g%2 == 0 {
					// Half the adders abort: their +1000 must never
					// be visible to a committed Get.
					_ = sys.Atomic(func(tx *stm.Tx) error {
						c.Add(tx, 1000)
						return boom
					})
					stm.MustAtomicOn(sys, func(tx *stm.Tx) { c.Add(tx, 1) })
				} else {
					stm.MustAtomicOn(sys, func(tx *stm.Tx) {
						v := c.Get(tx)
						mu.Lock()
						observed = append(observed, v)
						mu.Unlock()
					})
				}
			}
		}()
	}
	wg.Wait()
	for _, v := range observed {
		if v >= 1000 {
			t.Fatalf("committed Get observed uncommitted increment: %d", v)
		}
	}
	if c.ValueQuiescent() != 200 {
		t.Fatalf("final = %d, want 200", c.ValueQuiescent())
	}
}
