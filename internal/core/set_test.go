package core

import (
	"errors"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 30 * time.Millisecond})
}

// each boosted set flavour, so every test can run against all of them
var setFlavours = []struct {
	name string
	make func() *Set
}{
	{"skiplist-keyed", NewSkipListSet},
	{"skiplist-coarse", NewSkipListSetCoarse},
	{"rbtree-coarse", NewRBTreeSet},
	{"hashset-keyed", NewHashSet},
	{"linkedlist-keyed", NewLinkedListSet},
}

func TestSetBasicSemantics(t *testing.T) {
	for _, f := range setFlavours {
		t.Run(f.name, func(t *testing.T) {
			s := f.make()
			sys := newSys()
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				if !s.Add(tx, 5) {
					t.Error("Add(5) = false on empty set")
				}
				if s.Add(tx, 5) {
					t.Error("duplicate Add(5) = true")
				}
				if !s.Contains(tx, 5) {
					t.Error("Contains(5) = false")
				}
				if s.Contains(tx, 6) {
					t.Error("Contains(6) = true")
				}
				if !s.Remove(tx, 5) {
					t.Error("Remove(5) = false")
				}
				if s.Remove(tx, 5) {
					t.Error("second Remove(5) = true")
				}
			})
		})
	}
}

func TestSetUndoOnAbort(t *testing.T) {
	for _, f := range setFlavours {
		t.Run(f.name, func(t *testing.T) {
			s := f.make()
			sys := newSys()
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				s.Add(tx, 1)
				s.Add(tx, 2)
			})
			boom := errors.New("boom")
			err := sys.Atomic(func(tx *stm.Tx) error {
				s.Add(tx, 3)    // inverse: remove(3)
				s.Remove(tx, 1) // inverse: add(1)
				s.Add(tx, 3)    // false: no inverse
				s.Remove(tx, 9) // false: no inverse
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v", err)
			}
			// Rule 3: the base object is exactly as before the transaction.
			base := s.Base()
			if !base.Contains(1) {
				t.Error("aborted Remove(1) left 1 missing")
			}
			if !base.Contains(2) {
				t.Error("key 2 lost")
			}
			if base.Contains(3) {
				t.Error("aborted Add(3) left 3 present")
			}
		})
	}
}

func TestSetUndoOrderIsReverse(t *testing.T) {
	// add(7); remove(7) inside one tx, then abort: replaying inverses in
	// the wrong order would leave 7 present.
	s := NewSkipListSet()
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 7)
		s.Remove(tx, 7)
		return boom
	})
	if s.Base().Contains(7) {
		t.Fatal("abort of add+remove left key present (undo order wrong)")
	}
}

func TestSetCommitKeepsEffects(t *testing.T) {
	s := NewSkipListSet()
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, 10)
		s.Add(tx, 20)
		s.Remove(tx, 10)
	})
	if s.Base().Contains(10) || !s.Base().Contains(20) {
		t.Fatal("committed effects wrong")
	}
}

func TestKeyedSetDisjointKeysDoNotConflict(t *testing.T) {
	// Paper §1: add(2) and add(4) have no inherent conflict; the boosted
	// skip list must run them concurrently. We hold one transaction open
	// mid-flight and verify another on a different key completes.
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, 2)
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	if err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 4)
		return nil
	}); err != nil {
		t.Fatalf("disjoint-key transaction blocked: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestKeyedSetSameKeyConflicts(t *testing.T) {
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, 2)
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Remove(tx, 2) // same key: must wait, time out, abort
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("same-key op: err = %v, want timeout abort", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCoarseSetAnyKeysConflict(t *testing.T) {
	s := NewSkipListSetCoarse()
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, 2)
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, 4) // different key, same coarse lock: conflict
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("coarse lock let disjoint keys through: %v", err)
	}
	<-done
}

func TestSetLockReleasedAfterCommitAllowsNextTx(t *testing.T) {
	s := NewSkipListSet()
	sys := newSys()
	for i := 0; i < 50; i++ {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			s.Add(tx, 1)
			s.Remove(tx, 1)
		})
	}
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("sequential same-key transactions aborted %d times", st.Aborts)
	}
}

func TestSetConcurrentAccounting(t *testing.T) {
	for _, f := range setFlavours {
		t.Run(f.name, func(t *testing.T) {
			s := f.make()
			sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
			const keyRange = 32
			const goroutines = 8
			const opsPerG = 300
			var adds, removes [keyRange]atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewPCG(uint64(g), 42))
					for i := 0; i < opsPerG; i++ {
						k := int64(r.IntN(keyRange))
						isAdd := r.IntN(2) == 0
						err := sys.Atomic(func(tx *stm.Tx) error {
							var changed bool
							if isAdd {
								changed = s.Add(tx, k)
							} else {
								changed = s.Remove(tx, k)
							}
							// Record the committed effect; OnCommit runs only
							// if this attempt commits, and the response was
							// decided under the key's abstract lock.
							if changed {
								tx.OnCommit(func() {
									if isAdd {
										adds[k].Add(1)
									} else {
										removes[k].Add(1)
									}
								})
							}
							return nil
						})
						if err != nil {
							t.Errorf("Atomic: %v", err)
							return
						}
					}
				}()
			}
			wg.Wait()
			for k := 0; k < keyRange; k++ {
				present := int64(0)
				if s.Base().Contains(int64(k)) {
					present = 1
				}
				if d := adds[k].Load() - removes[k].Load(); d != present {
					t.Errorf("key %d: committed adds-removes = %d, present = %d", k, d, present)
				}
			}
		})
	}
}

func TestSetAbortStorm(t *testing.T) {
	// A third of transactions deliberately fail after mutating hot keys.
	// Rolled-back work must leave per-key semantics intact. Every
	// operation is recorded — in lock-acquisition order, which IS the
	// serialization order for same-key calls — together with its
	// transaction id; after the run, the committed subsequence of each
	// key's log must be a legal Set history.
	type event struct {
		txID    uint64
		isAdd   bool
		changed bool
	}
	s := NewSkipListSet()
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	const keyRange = 8
	var logMu [keyRange]sync.Mutex
	var logs [keyRange][]event
	var committed sync.Map // txID -> struct{}
	giveUp := errors.New("refuse")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 1000))
			for i := 0; i < 400; i++ {
				k := int64(r.IntN(keyRange))
				isAdd := r.IntN(2) == 0
				fail := r.IntN(3) == 0
				err := sys.Atomic(func(tx *stm.Tx) error {
					var changed bool
					if isAdd {
						changed = s.Add(tx, k)
					} else {
						changed = s.Remove(tx, k)
					}
					// Record while the key's abstract lock is held,
					// so the log order matches serialization order.
					logMu[k].Lock()
					logs[k] = append(logs[k], event{tx.ID(), isAdd, changed})
					logMu[k].Unlock()
					if fail {
						return giveUp // rolls back; never marked committed
					}
					tx.OnCommit(func() { committed.Store(tx.ID(), struct{}{}) })
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		present := false
		for i, ev := range logs[k] {
			if _, ok := committed.Load(ev.txID); !ok {
				continue // aborted: must leave no trace (Theorem 5.4)
			}
			want := ev.isAdd != present // add changes iff absent; remove iff present
			if ev.changed != want {
				t.Fatalf("key %d, committed event %d (txID %d, isAdd=%v): changed=%v, want %v — illegal committed history",
					k, i, ev.txID, ev.isAdd, ev.changed, want)
			}
			if ev.isAdd {
				present = true
			} else {
				present = false
			}
		}
		if got := s.Base().Contains(int64(k)); got != present {
			t.Errorf("key %d: base Contains = %v, committed history implies %v", k, got, present)
		}
	}
}

func TestSkipListBaseStaysLockFreeUnderBoost(t *testing.T) {
	// Sanity: the boosted wrapper really uses the given base object.
	base := skiplist.New()
	s := NewKeyedSet(base)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 77) })
	if !base.Contains(77) {
		t.Fatal("base object unaffected by boosted Add")
	}
	if s.Base() != BaseSet(base) {
		t.Fatal("Base() identity lost")
	}
}
