package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/hashset"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

func newSys() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 30 * time.Millisecond})
}

// setFlavour is one boosted set configuration under test. The suite below
// is generic over the key type: every flavour of every key type runs the
// same semantics, undo, conflict, and stress tests — the "shared generic
// test harness" that lets a string-keyed set prove itself against the exact
// suite the int64 sets pass.
type setFlavour[K comparable] struct {
	name   string
	coarse bool // single abstract lock: any two keys conflict
	make   func() *Set[K]
}

func int64Flavours() []setFlavour[int64] {
	return []setFlavour[int64]{
		{"skiplist-keyed", false, NewSkipListSet},
		{"skiplist-coarse", true, NewSkipListSetCoarse},
		{"rbtree-coarse", true, NewRBTreeSet},
		{"hashset-keyed", false, NewHashSet},
		{"linkedlist-keyed", false, NewLinkedListSet},
		// The ordered set is a Set whose lock discipline is interval-based;
		// point ops must behave exactly like a keyed flavour.
		{"skiplist-ranged", false, func() *Set[int64] { return &NewOrderedSet().Set }},
	}
}

func stringFlavours() []setFlavour[string] {
	return []setFlavour[string]{
		{"hashset-keyed", false, NewHashSetOf[string]},
		{"hashset-coarse", true, func() *Set[string] { return NewCoarseSet[string](hashset.New[string]()) }},
		{"hashset-woundwait", false, func() *Set[string] { return NewKeyedSetWoundWait[string](hashset.New[string]()) }},
		// The generic ordered set over string keys: skip-list base plus the
		// striped interval locks' string partition, under the full suite.
		{"ordered-skiplist-ranged", false, func() *Set[string] { return &NewOrderedSetOf[string]().Set }},
	}
}

// runSetSuite runs every suite test against every flavour. key maps the
// suite's abstract small-integer key space into K; distinct ints must map
// to distinct keys.
func runSetSuite[K comparable](t *testing.T, flavours []setFlavour[K], key func(int64) K) {
	for _, f := range flavours {
		t.Run(f.name, func(t *testing.T) {
			t.Run("basic-semantics", func(t *testing.T) { suiteBasicSemantics(t, f.make(), key) })
			t.Run("undo-on-abort", func(t *testing.T) { suiteUndoOnAbort(t, f.make(), key) })
			t.Run("undo-order-reverse", func(t *testing.T) { suiteUndoOrderReverse(t, f.make(), key) })
			t.Run("commit-keeps-effects", func(t *testing.T) { suiteCommitKeepsEffects(t, f.make(), key) })
			t.Run("lock-released-after-commit", func(t *testing.T) { suiteLockReleasedAfterCommit(t, f.make(), key) })
			if f.coarse {
				t.Run("any-keys-conflict", func(t *testing.T) { suiteAnyKeysConflict(t, f.make(), key) })
			} else {
				t.Run("disjoint-keys-no-conflict", func(t *testing.T) { suiteDisjointKeysNoConflict(t, f.make(), key) })
				t.Run("same-key-conflicts", func(t *testing.T) { suiteSameKeyConflicts(t, f.make(), key) })
			}
			t.Run("concurrent-accounting", func(t *testing.T) { suiteConcurrentAccounting(t, f.make(), key) })
			t.Run("abort-storm", func(t *testing.T) { suiteAbortStorm(t, f.make(), key) })
		})
	}
}

func TestSetSuiteInt64(t *testing.T) {
	runSetSuite(t, int64Flavours(), func(i int64) int64 { return i })
}

func TestSetSuiteString(t *testing.T) {
	runSetSuite(t, stringFlavours(), func(i int64) string { return fmt.Sprintf("key-%04d", i) })
}

func suiteBasicSemantics[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if !s.Add(tx, key(5)) {
			t.Error("Add(5) = false on empty set")
		}
		if s.Add(tx, key(5)) {
			t.Error("duplicate Add(5) = true")
		}
		if !s.Contains(tx, key(5)) {
			t.Error("Contains(5) = false")
		}
		if s.Contains(tx, key(6)) {
			t.Error("Contains(6) = true")
		}
		if !s.Remove(tx, key(5)) {
			t.Error("Remove(5) = false")
		}
		if s.Remove(tx, key(5)) {
			t.Error("second Remove(5) = true")
		}
	})
}

func suiteUndoOnAbort[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, key(1))
		s.Add(tx, key(2))
	})
	boom := errors.New("boom")
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, key(3))    // inverse: remove(3)
		s.Remove(tx, key(1)) // inverse: add(1)
		s.Add(tx, key(3))    // false: no inverse
		s.Remove(tx, key(9)) // false: no inverse
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Rule 3: the base object is exactly as before the transaction.
	base := s.Base()
	if !base.Contains(key(1)) {
		t.Error("aborted Remove(1) left 1 missing")
	}
	if !base.Contains(key(2)) {
		t.Error("key 2 lost")
	}
	if base.Contains(key(3)) {
		t.Error("aborted Add(3) left 3 present")
	}
}

func suiteUndoOrderReverse[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	// add(7); remove(7) inside one tx, then abort: replaying inverses in
	// the wrong order would leave 7 present.
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, key(7))
		s.Remove(tx, key(7))
		return boom
	})
	if s.Base().Contains(key(7)) {
		t.Fatal("abort of add+remove left key present (undo order wrong)")
	}
}

func suiteCommitKeepsEffects[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		s.Add(tx, key(10))
		s.Add(tx, key(20))
		s.Remove(tx, key(10))
	})
	if s.Base().Contains(key(10)) || !s.Base().Contains(key(20)) {
		t.Fatal("committed effects wrong")
	}
}

func suiteDisjointKeysNoConflict[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	// Paper §1: add(2) and add(4) have no inherent conflict; the boosted
	// set must run them concurrently. We hold one transaction open
	// mid-flight and verify another on a different key completes.
	sys := stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, key(2))
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	if err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, key(4))
		return nil
	}); err != nil {
		t.Fatalf("disjoint-key transaction blocked: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func suiteSameKeyConflicts[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, key(2))
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Remove(tx, key(2)) // same key: must wait, time out, abort
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("same-key op: err = %v, want timeout abort", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func suiteAnyKeysConflict[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, key(2))
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		s.Add(tx, key(4)) // different key, same coarse lock: conflict
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("coarse lock let disjoint keys through: %v", err)
	}
	<-done
}

func suiteLockReleasedAfterCommit[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := newSys()
	for i := 0; i < 50; i++ {
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			s.Add(tx, key(1))
			s.Remove(tx, key(1))
		})
	}
	if st := sys.Stats(); st.Aborts != 0 {
		t.Fatalf("sequential same-key transactions aborted %d times", st.Aborts)
	}
}

func suiteConcurrentAccounting[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	const keyRange = 32
	const goroutines = 8
	const opsPerG = 300
	var adds, removes [keyRange]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 42))
			for i := 0; i < opsPerG; i++ {
				k := int64(r.IntN(keyRange))
				isAdd := r.IntN(2) == 0
				err := sys.Atomic(func(tx *stm.Tx) error {
					var changed bool
					if isAdd {
						changed = s.Add(tx, key(k))
					} else {
						changed = s.Remove(tx, key(k))
					}
					// Record the committed effect; OnCommit runs only
					// if this attempt commits, and the response was
					// decided under the key's abstract lock.
					if changed {
						tx.OnCommit(func() {
							if isAdd {
								adds[k].Add(1)
							} else {
								removes[k].Add(1)
							}
						})
					}
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		present := int64(0)
		if s.Base().Contains(key(int64(k))) {
			present = 1
		}
		if d := adds[k].Load() - removes[k].Load(); d != present {
			t.Errorf("key %d: committed adds-removes = %d, present = %d", k, d, present)
		}
	}
}

func suiteAbortStorm[K comparable](t *testing.T, s *Set[K], key func(int64) K) {
	// A third of transactions deliberately fail after mutating hot keys.
	// Rolled-back work must leave per-key semantics intact. Every
	// operation is recorded — in lock-acquisition order, which IS the
	// serialization order for same-key calls — together with its
	// transaction id; after the run, the committed subsequence of each
	// key's log must be a legal Set history.
	type event struct {
		txID    uint64
		isAdd   bool
		changed bool
	}
	sys := stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
	const keyRange = 8
	var logMu [keyRange]sync.Mutex
	var logs [keyRange][]event
	var committed sync.Map // txID -> struct{}
	giveUp := errors.New("refuse")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 1000))
			for i := 0; i < 400; i++ {
				k := int64(r.IntN(keyRange))
				isAdd := r.IntN(2) == 0
				fail := r.IntN(3) == 0
				err := sys.Atomic(func(tx *stm.Tx) error {
					var changed bool
					if isAdd {
						changed = s.Add(tx, key(k))
					} else {
						changed = s.Remove(tx, key(k))
					}
					// Record while the key's abstract lock is held,
					// so the log order matches serialization order.
					logMu[k].Lock()
					logs[k] = append(logs[k], event{tx.ID(), isAdd, changed})
					logMu[k].Unlock()
					if fail {
						return giveUp // rolls back; never marked committed
					}
					tx.OnCommit(func() { committed.Store(tx.ID(), struct{}{}) })
					return nil
				})
				if err != nil && !errors.Is(err, giveUp) {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for k := 0; k < keyRange; k++ {
		present := false
		for i, ev := range logs[k] {
			if _, ok := committed.Load(ev.txID); !ok {
				continue // aborted: must leave no trace (Theorem 5.4)
			}
			want := ev.isAdd != present // add changes iff absent; remove iff present
			if ev.changed != want {
				t.Fatalf("key %d, committed event %d (txID %d, isAdd=%v): changed=%v, want %v — illegal committed history",
					k, i, ev.txID, ev.isAdd, ev.changed, want)
			}
			if ev.isAdd {
				present = true
			} else {
				present = false
			}
		}
		if got := s.Base().Contains(key(int64(k))); got != present {
			t.Errorf("key %d: base Contains = %v, committed history implies %v", k, got, present)
		}
	}
}

func TestSkipListBaseStaysLockFreeUnderBoost(t *testing.T) {
	// Sanity: the boosted wrapper really uses the given base object.
	base := skiplist.New()
	s := NewKeyedSet[int64](base)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) { s.Add(tx, 77) })
	if !base.Contains(77) {
		t.Fatal("base object unaffected by boosted Add")
	}
	if s.Base() != BaseSet[int64](base) {
		t.Fatal("Base() identity lost")
	}
}
