package core

import (
	"errors"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tboost/internal/stm"
)

func TestHeapBasicOrder(t *testing.T) {
	for _, mode := range []HeapMode{RWLocked, Exclusive} {
		h := NewHeap[string](mode)
		sys := newSys()
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			h.Add(tx, 3, "three")
			h.Add(tx, 1, "one")
			h.Add(tx, 2, "two")
		})
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			k, v, ok := h.Min(tx)
			if !ok || k != 1 || v != "one" {
				t.Errorf("Min = %d,%q,%v", k, v, ok)
			}
			for want := int64(1); want <= 3; want++ {
				k, _, ok := h.RemoveMin(tx)
				if !ok || k != want {
					t.Errorf("RemoveMin = %d,%v, want %d", k, ok, want)
				}
			}
			if _, _, ok := h.RemoveMin(tx); ok {
				t.Error("RemoveMin on empty = ok")
			}
			if _, _, ok := h.Min(tx); ok {
				t.Error("Min on empty = ok")
			}
		})
	}
}

func TestHeapAddUndoViaDeletedFlag(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		h.Add(tx, 5, 5)
		h.Add(tx, 6, 6)
		return boom
	})
	// The holders are still physically in the base heap (the paper's lazy
	// deletion), but logically dead.
	if h.LenQuiescent() != 2 {
		t.Fatalf("base holders = %d, want 2 (lazy deletion)", h.LenQuiescent())
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if _, _, ok := h.RemoveMin(tx); ok {
			t.Error("aborted adds visible to RemoveMin")
		}
	})
}

func TestHeapRemoveMinUndoRestores(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		h.Add(tx, 1, 10)
		h.Add(tx, 2, 20)
	})
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		k, v, ok := h.RemoveMin(tx)
		if !ok || k != 1 || v != 10 {
			t.Errorf("RemoveMin = %d,%d,%v", k, v, ok)
		}
		return boom
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		k, v, ok := h.RemoveMin(tx)
		if !ok || k != 1 || v != 10 {
			t.Errorf("after abort, RemoveMin = %d,%d,%v; want 1,10,true", k, v, ok)
		}
	})
}

func TestHeapPaperAbortExample(t *testing.T) {
	// Paper §5.3: "consider the transaction over a heap that calls add(63)
	// and then removeMin(). If the transaction aborts after calling
	// add(63) ... 63 will be removed from the heap."
	h := NewHeap[int](RWLocked)
	sys := newSys()
	boom := errors.New("boom")
	_ = sys.Atomic(func(tx *stm.Tx) error {
		h.Add(tx, 63, 63)
		return boom
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		if _, _, ok := h.Min(tx); ok {
			t.Error("63 still observable after abort")
		}
	})
}

func TestHeapDuplicateKeys(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sys := newSys()
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		h.Add(tx, 7, 1)
		h.Add(tx, 7, 2)
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		k1, _, ok1 := h.RemoveMin(tx)
		k2, _, ok2 := h.RemoveMin(tx)
		if !ok1 || !ok2 || k1 != 7 || k2 != 7 {
			t.Errorf("duplicates: %d,%v %d,%v", k1, ok1, k2, ok2)
		}
	})
}

func TestHeapConcurrentAddsShareLock(t *testing.T) {
	// Two transactions can both hold the shared add lock at once in
	// RWLocked mode.
	h := NewHeap[int](RWLocked)
	sys := stm.NewSystem(stm.Config{LockTimeout: 50 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			h.Add(tx, 1, 1)
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	if err := sys.Atomic(func(tx *stm.Tx) error {
		h.Add(tx, 2, 2) // concurrent add must not block
		return nil
	}); err != nil {
		t.Fatalf("concurrent add blocked in RWLocked mode: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestHeapExclusiveModeAddsConflict(t *testing.T) {
	h := NewHeap[int](Exclusive)
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			h.Add(tx, 1, 1)
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		h.Add(tx, 2, 2)
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("exclusive mode let adds overlap: %v", err)
	}
	<-done
}

func TestHeapRemoveMinExcludesAdd(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sys := stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond, MaxRetries: 1})
	stm.MustAtomicOn(newSys(), func(tx *stm.Tx) { h.Add(tx, 1, 1) })
	inFlight := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- sys.Atomic(func(tx *stm.Tx) error {
			h.RemoveMin(tx) // exclusive
			close(inFlight)
			<-release
			return nil
		})
	}()
	<-inFlight
	err := sys.Atomic(func(tx *stm.Tx) error {
		h.Add(tx, 2, 2) // shared vs exclusive: must abort
		return nil
	})
	close(release)
	if !errors.Is(err, stm.ErrTooManyRetries) {
		t.Fatalf("add overlapped with removeMin: %v", err)
	}
	<-done
}

func TestHeapConcurrentMixedAccounting(t *testing.T) {
	h := NewHeap[int64](RWLocked)
	sys := stm.NewSystem(stm.Config{LockTimeout: 200 * time.Millisecond})
	var addedSum, removedSum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 200; i++ {
				if r.IntN(2) == 0 {
					k := int64(r.IntN(1000) + 1)
					err := sys.Atomic(func(tx *stm.Tx) error {
						h.Add(tx, k, k)
						tx.OnCommit(func() { addedSum.Add(k) })
						return nil
					})
					if err != nil {
						t.Errorf("add: %v", err)
					}
				} else {
					err := sys.Atomic(func(tx *stm.Tx) error {
						if k, v, ok := h.RemoveMin(tx); ok {
							if k != v {
								t.Errorf("payload mismatch: %d vs %d", k, v)
							}
							tx.OnCommit(func() { removedSum.Add(k) })
						}
						return nil
					})
					if err != nil {
						t.Errorf("removeMin: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	rest := h.DrainQuiescent()
	for _, k := range rest {
		removedSum.Add(k)
	}
	if addedSum.Load() != removedSum.Load() {
		t.Fatalf("sum added %d != sum removed %d", addedSum.Load(), removedSum.Load())
	}
}

func TestHeapDrainSorted(t *testing.T) {
	h := NewHeap[int](RWLocked)
	sys := newSys()
	var want []int64
	r := rand.New(rand.NewPCG(1, 2))
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for i := 0; i < 200; i++ {
			k := int64(r.IntN(100))
			want = append(want, k)
			h.Add(tx, k, 0)
		}
	})
	got := h.DrainQuiescent()
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
