package idgen

import (
	"sync"
	"testing"
)

func TestSequentialUnique(t *testing.T) {
	g := New()
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		id := g.AssignID()
		if id <= 0 {
			t.Fatalf("AssignID = %d, want positive", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if g.Assigned() != 1000 {
		t.Fatalf("Assigned = %d", g.Assigned())
	}
}

func TestConcurrentUnique(t *testing.T) {
	g := New()
	const goroutines = 16
	const perG = 2000
	ids := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int64, perG)
			for i := range out {
				out[i] = g.AssignID()
			}
			ids[w] = out
		}()
	}
	wg.Wait()
	seen := map[int64]bool{}
	for _, chunk := range ids {
		for _, id := range chunk {
			if seen[id] {
				t.Fatalf("duplicate id %d across goroutines", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("unique ids = %d, want %d", len(seen), goroutines*perG)
	}
}

func TestReleaseIsAbandoned(t *testing.T) {
	// The disposable release never resurrects an ID: assign after release
	// still returns fresh IDs.
	g := New()
	a := g.AssignID()
	g.ReleaseID(a)
	b := g.AssignID()
	if b == a {
		t.Fatalf("released id %d was reused", a)
	}
	if g.Released() != 1 {
		t.Fatalf("Released = %d", g.Released())
	}
}
