// Package idgen implements the paper's unique-ID generator (§3.4): an
// abstract pool of unused IDs with assignID/releaseID operations. The
// linearizable implementation is a fetch-and-add counter — correct, the
// paper argues, precisely because releaseID is disposable: a released ID
// may be returned to the pool arbitrarily late, or never, without any
// transaction being able to observe the delay via assignID.
package idgen

import "sync/atomic"

// Generator hands out IDs never currently in use. The counter never reuses
// IDs, which is a legal refinement of the pool specification.
type Generator struct {
	next     atomic.Int64
	released atomic.Int64 // count of releases (observability/testing only)
}

// New returns a generator whose first ID is 1.
func New() *Generator { return &Generator{} }

// AssignID removes and returns an ID from the pool of unused IDs.
func (g *Generator) AssignID() int64 {
	return g.next.Add(1)
}

// ReleaseID returns id to the pool. The counter implementation simply
// abandons it — postponing the return forever, which disposability permits.
func (g *Generator) ReleaseID(id int64) {
	g.released.Add(1)
}

// Assigned reports how many IDs have ever been assigned.
func (g *Generator) Assigned() int64 { return g.next.Load() }

// Released reports how many IDs have been released back (and abandoned).
func (g *Generator) Released() int64 { return g.released.Load() }
