package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/hashset"
	"tboost/internal/lockmgr"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// Microbenchmark sweep behind `make bench-json` / `boostbench -experiment
// benchjson`. It measures the hot paths the runtime optimizes — transaction
// lifecycle and boosted set operations — at several goroutine counts, in two
// variants run back to back in the same process:
//
//   - "legacy": Config.LegacyHotPath (fresh, always-mutexed Tx per attempt)
//     plus lockmgr's mutex-guarded LockMap reads — the runtime's behaviour
//     before the hot-path overhaul, kept callable exactly so this harness
//     can record the baseline in the same run it records the fast path.
//   - "fastpath": the production configuration.
//
// The workloads are deterministic: keys come from a fixed multiplicative
// hash of the worker index and iteration counter, not from a seeded PRNG,
// so two runs on the same machine issue the identical operation sequence.

// MicroResult is one cell of the sweep.
type MicroResult struct {
	Name        string  `json:"name"`
	Variant     string  `json:"variant"` // "legacy" or "fastpath"
	Goroutines  int     `json:"goroutines"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// MicroReport is the full sweep, serialized to BENCH_PR2.json.
type MicroReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// SingleThreadSpeedup maps each workload to fastpath ops/sec divided
	// by legacy ops/sec at one goroutine: the per-call overhead reduction,
	// with baseline and optimized paths measured in the same run.
	SingleThreadSpeedup map[string]float64 `json:"single_thread_speedup"`
	Results             []MicroResult      `json:"results"`
}

// microCase builds one workload. make returns the per-operation function for
// a fresh system under cfg; each (variant, goroutine-count) cell gets fresh
// state so cells are independent.
type microCase struct {
	name string
	make func(cfg stm.Config, goroutines int) func(worker, i int)
}

// microKey spreads (worker, i) over [0, keyRange) with a multiplicative
// hash. Deterministic: the sweep's "fixed seed".
func microKey(worker, i int, keyRange int64) int64 {
	h := uint64(worker*1_000_003+i) * 2654435761
	return int64(h % uint64(keyRange))
}

// paddedInt64 keeps per-worker mutable cells on separate cache lines.
type paddedInt64 struct {
	v int64
	_ [56]byte
}

// microPopulate leaves the set holding the even keys of [0, keyRange) —
// via add-all-then-remove-odds, so every key's per-key lock is installed
// before measurement and the measured cells are pure steady state.
func microPopulate(sys *stm.System, s *core.Set[int64], keyRange int64) {
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < keyRange; k++ {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(1); k < keyRange; k += 2 {
			s.Remove(tx, k)
		}
	})
}

func microCases() []microCase {
	return []microCase{
		{
			// One lock acquisition plus one undo append per transaction:
			// the minimal boosted call footprint. Per-worker locks keep it
			// conflict-free, so it isolates lifecycle overhead.
			name: "tx-lifecycle/logged",
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				undo := func() {}
				// Transaction bodies are built once per worker (not per
				// call) so the harness measures the runtime, not its own
				// closure allocations.
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					l := lockmgr.NewOwnerLock()
					bodies[w] = func(tx *stm.Tx) error {
						l.Acquire(tx)
						tx.Log(undo)
						return nil
					}
				}
				return func(worker, i int) {
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Read-only boosted op over a hash set with per-key locks:
			// the paper's dominant workload shape (60%+ contains).
			name: "boosted-set/contains",
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewKeyedSet[int64](hashset.New[int64]())
				microPopulate(sys, s, 4096)
				keys := make([]paddedInt64, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					bodies[w] = func(tx *stm.Tx) error {
						s.Contains(tx, keys[w].v)
						return nil
					}
				}
				return func(worker, i int) {
					keys[worker].v = microKey(worker, i, 4096)
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Effective add + effective remove of one key per transaction:
			// the mutation path, where each boosted call logs one inverse.
			name: "boosted-set/addremove",
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewKeyedSet[int64](hashset.New[int64]())
				microPopulate(sys, s, 4096)
				keys := make([]paddedInt64, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					bodies[w] = func(tx *stm.Tx) error {
						s.Add(tx, keys[w].v)
						s.Remove(tx, keys[w].v)
						return nil
					}
				}
				return func(worker, i int) {
					// Odd keys are absent at steady state, so Add then
					// Remove are both effective and leave the key absent.
					keys[worker].v = microKey(worker, i, 2048)*2 + 1
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Mixed ops over the lock-free skip list with per-key locks:
			// the Fig. 10 fast configuration without think time.
			name: "boosted-set/mixed",
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewKeyedSet[int64](skiplist.New())
				microPopulate(sys, s, 1024)
				type opState struct {
					k int64
					i int
					_ [48]byte
				}
				states := make([]opState, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					bodies[w] = func(tx *stm.Tx) error {
						st := &states[w]
						switch st.i % 3 {
						case 0:
							s.Contains(tx, st.k)
						case 1:
							s.Add(tx, st.k)
						default:
							s.Remove(tx, st.k)
						}
						return nil
					}
				}
				return func(worker, i int) {
					states[worker].k = microKey(worker, i, 1024)
					states[worker].i = i
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
	}
}

// runMicroCell measures one (case, variant, goroutines) cell: totalOps
// operations split across the workers, wall-clocked, with the process-wide
// allocation delta attributed per op.
func runMicroCell(c microCase, variant string, goroutines, totalOps int) MicroResult {
	legacy := variant == "legacy"
	cfg := stm.Config{LockTimeout: 100 * time.Millisecond, LegacyHotPath: legacy}
	lockmgr.SetLegacyMapReads(legacy)
	defer lockmgr.SetLegacyMapReads(false)

	op := c.make(cfg, goroutines)
	opsPerG := totalOps / goroutines

	var wg sync.WaitGroup
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				op(worker, i)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ops := int64(opsPerG * goroutines)
	return MicroResult{
		Name:        c.name,
		Variant:     variant,
		Goroutines:  goroutines,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
	}
}

// MicroSweep runs every microbenchmark case at each goroutine count, legacy
// variant first, then fast path, and computes the single-thread speedups.
// totalOps is the operation count per cell (split across workers); zero
// selects a default sized to finish the whole sweep in tens of seconds.
func MicroSweep(goroutines []int, totalOps int) MicroReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if totalOps <= 0 {
		totalOps = 100_000
	}
	rep := MicroReport{
		GeneratedBy:         "boostbench -experiment benchjson",
		NumCPU:              runtime.NumCPU(),
		Goroutines:          goroutines,
		SingleThreadSpeedup: map[string]float64{},
	}
	single := map[string]map[string]float64{} // name -> variant -> ops/sec at 1 goroutine
	for _, c := range microCases() {
		for _, variant := range []string{"legacy", "fastpath"} {
			for _, g := range goroutines {
				r := runMicroCell(c, variant, g, totalOps)
				rep.Results = append(rep.Results, r)
				if g == 1 {
					if single[c.name] == nil {
						single[c.name] = map[string]float64{}
					}
					single[c.name][variant] = r.OpsPerSec
				}
			}
		}
	}
	for name, v := range single {
		if v["legacy"] > 0 {
			rep.SingleThreadSpeedup[name] = v["fastpath"] / v["legacy"]
		}
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r MicroReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintMicro writes the sweep as a table plus the speedup summary.
func PrintMicro(out io.Writer, r MicroReport) {
	fmt.Fprintf(out, "%-24s %-9s %3s %14s %10s %12s\n",
		"workload", "variant", "g", "ops/sec", "ns/op", "allocs/op")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-24s %-9s %3d %14.0f %10.1f %12.3f\n",
			res.Name, res.Variant, res.Goroutines, res.OpsPerSec, res.NsPerOp, res.AllocsPerOp)
	}
	fmt.Fprintln(out)
	for name, ratio := range r.SingleThreadSpeedup {
		fmt.Fprintf(out, "single-thread speedup %-24s %.2fx\n", name, ratio)
	}
}
