package bench

import (
	"testing"

	"tboost/internal/core"
)

// Hash-base flavours of the uncontended probes (see fusion_bench_test.go).

func hashSet(lazy bool) *core.Set[int64] {
	if lazy {
		return core.NewLazyHashSetOf[int64]()
	}
	return core.NewHashSetOf[int64]()
}

func BenchmarkUncontendedHashEager(b *testing.B) { benchUncontendedSet(b, hashSet(false), false) }
func BenchmarkUncontendedHashLazy(b *testing.B)  { benchUncontendedSet(b, hashSet(true), false) }
func BenchmarkUncontendedHashQuietEager(b *testing.B) {
	benchUncontendedSet(b, hashSet(false), true)
}
func BenchmarkUncontendedHashQuietLazy(b *testing.B) {
	benchUncontendedSet(b, hashSet(true), true)
}
