package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/core"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Deadlock-policy sweep behind `boostbench -experiment deadlock`
// (BENCH_PR5.json). The workload is built to deadlock: workers run multi-key
// transactions over a small key space in parity-reversed lock orders, dwelling
// between the two demands so opposing workers take their first lock before
// asking for the second. Two flavours run per cell:
//
//   - deadlock/keyed: two point operations on the boosted skip-list set
//     (LockMap locks) in reversed orders — pure ABBA on keyed locks.
//   - deadlock/ranged: a point update inside a range query's window on the
//     boosted ordered set (striped interval locks), orders reversed — the
//     interval-table deadlock, which also exercises stripe escalation, so
//     this cell is where Escalations/SpuriousWakeups get surfaced.
//
// Each flavour is swept over goroutine counts under all three contention
// policies. The acceptance metric is AbortRateAt8: wound-wait must abort less
// than the timeout oracle at eight goroutines, because a wound resolves a
// cycle in one targeted abort where timeouts burn a full lock budget per
// round and often kill both parties.
//
// The uncontended/* cells are the honest-overhead report: one worker, zero
// conflicts, no dwell — the policy machinery's cost on the fast path. The
// policy is only consulted at blocking points, so all three should be within
// noise of each other; the JSON records the measured ratios so the claim is
// checkable rather than asserted.

// DeadlockResult is one cell of the sweep.
type DeadlockResult struct {
	Workload     string   `json:"workload"`
	Policy       string   `json:"policy"`
	Goroutines   int      `json:"goroutines"`
	Tx           int64    `json:"tx"`
	TxPerSec     float64  `json:"tx_per_sec"`
	NsPerTx      float64  `json:"ns_per_tx"`
	AbortRate    float64  `json:"abort_rate"`
	Aborts       int64    `json:"aborts"`
	LockTimeouts int64    `json:"aborts_lock_timeout"`
	Wounded      int64    `json:"aborts_wounded"`
	DeadlockAb   int64    `json:"aborts_deadlock"`
	Wounds       int64    `json:"wounds_issued"`
	Cycles       int64    `json:"cycles_detected"`
	Escalations  uint64   `json:"escalations"`
	Spurious     uint64   `json:"spurious_wakeups"`
	MaxLatencyMs float64  `json:"max_latency_ms"`
	CommitAge    [4]int64 `json:"commit_age"`
}

// DeadlockReport is the full sweep, serialized to BENCH_PR5.json.
type DeadlockReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// AbortRateAt8 maps policy to its deadlock/keyed abort rate at eight
	// goroutines — the acceptance metric. Wound-wait must beat timeout.
	AbortRateAt8 map[string]float64 `json:"abort_rate_at_8"`
	// UncontendedNsPerTx maps policy to single-worker conflict-free ns/tx:
	// the fast-path cost of having the policy configured at all.
	UncontendedNsPerTx map[string]float64 `json:"uncontended_ns_per_tx"`
	Results            []DeadlockResult   `json:"results"`
}

const (
	dlKeys      = 12                     // deadlock key universe (small => overlap)
	dlSpan      = 4                      // interval width of the ranged flavour
	dlDwell     = 200 * time.Microsecond // hold time between a tx's two demands
	dlTimeout   = 10 * time.Millisecond  // lock budget (the oracle's only liveness)
	dlTxPerCell = 240                    // transactions per contended cell
	dlUncontTx  = 4000                   // transactions for the uncontended cells
)

// dlPolicies returns the sweep's policies; Detect is constructed fresh per
// cell so no wait-for graph outlives its System.
func dlPolicies() []struct {
	name string
	mk   func() lockmgr.ContentionPolicy
} {
	return []struct {
		name string
		mk   func() lockmgr.ContentionPolicy
	}{
		{"timeout", func() lockmgr.ContentionPolicy { return lockmgr.Timeout }},
		{"wound-wait", func() lockmgr.ContentionPolicy { return lockmgr.WoundWait }},
		{"detect", func() lockmgr.ContentionPolicy { return lockmgr.NewDetect() }},
	}
}

// runDeadlockCell measures one (workload, policy, goroutines) cell. ranged
// selects the interval flavour; dwell and conflicts are disabled when
// goroutines is 1 and uncontended is set, turning the cell into the
// fast-path overhead probe.
func runDeadlockCell(workload, policyName string, p lockmgr.ContentionPolicy, ranged, uncontended bool, goroutines, txPerG int) DeadlockResult {
	sys := stm.NewSystem(stm.Config{LockTimeout: dlTimeout, Contention: p})
	keyed := core.NewSkipListSet()
	ordered := core.NewOrderedSet()

	var maxLat atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			reversed := g%2 == 1
			for i := 0; i < txPerG; i++ {
				// Deterministic keys (no PRNG), colliding across workers.
				k1 := microKey(g, i, dlKeys)
				k2 := microKey(g+1, i, dlKeys)
				if uncontended {
					// Disjoint per-worker segment: no conflicts possible.
					k1 = int64(g)*dlKeys + microKey(g, i, dlKeys)
					k2 = k1 + 1
				}
				lo := microKey(g, i, dlKeys)
				hi := lo + dlSpan
				t0 := time.Now()
				_ = sys.Atomic(func(tx *stm.Tx) error {
					switch {
					case ranged && reversed:
						ordered.CountRange(tx, lo, hi)
						time.Sleep(dlDwell)
						ordered.Add(tx, lo)
					case ranged:
						ordered.Add(tx, hi)
						if !uncontended {
							time.Sleep(dlDwell)
						}
						ordered.CountRange(tx, lo, hi)
					case reversed:
						keyed.Add(tx, k2)
						time.Sleep(dlDwell)
						keyed.Remove(tx, k1)
					default:
						keyed.Add(tx, k1)
						if !uncontended {
							time.Sleep(dlDwell)
						}
						keyed.Remove(tx, k2)
					}
					return nil
				})
				if d := time.Since(t0).Nanoseconds(); d > maxLat.Load() {
					for {
						old := maxLat.Load()
						if d <= old || maxLat.CompareAndSwap(old, d) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := sys.Stats()
	tx := int64(goroutines * txPerG)
	out := DeadlockResult{
		Workload:     workload,
		Policy:       policyName,
		Goroutines:   goroutines,
		Tx:           tx,
		TxPerSec:     float64(st.Commits) / elapsed.Seconds(),
		NsPerTx:      float64(elapsed.Nanoseconds()) / float64(tx),
		AbortRate:    st.AbortRatio(),
		Aborts:       st.Aborts,
		LockTimeouts: st.AbortsLockTimeout,
		Wounded:      st.AbortsWounded,
		DeadlockAb:   st.AbortsDeadlock,
		Wounds:       st.WoundsIssued,
		Cycles:       st.DeadlockCycles,
		MaxLatencyMs: float64(maxLat.Load()) / 1e6,
		CommitAge:    st.CommitAge,
	}
	if esc, spur, ok := ordered.Engine().RangeStats(); ok {
		out.Escalations, out.Spurious = esc, spur
	}
	return out
}

// DeadlockSweep runs the deadlock-policy sweep. totalTx overrides the
// per-cell transaction budget for the contended cells (0 = default).
func DeadlockSweep(goroutines []int, totalTx int) DeadlockReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if totalTx <= 0 {
		totalTx = dlTxPerCell
	}
	rep := DeadlockReport{
		GeneratedBy:        "boostbench -experiment deadlock",
		NumCPU:             runtime.NumCPU(),
		Goroutines:         goroutines,
		AbortRateAt8:       map[string]float64{},
		UncontendedNsPerTx: map[string]float64{},
	}
	for _, pol := range dlPolicies() {
		for _, flavour := range []struct {
			name   string
			ranged bool
		}{
			{"deadlock/keyed", false},
			{"deadlock/ranged", true},
		} {
			for _, g := range goroutines {
				txPerG := totalTx / g
				if txPerG == 0 {
					txPerG = 1
				}
				r := runDeadlockCell(flavour.name, pol.name, pol.mk(), flavour.ranged, false, g, txPerG)
				rep.Results = append(rep.Results, r)
				if g == 8 && !flavour.ranged {
					rep.AbortRateAt8[pol.name] = r.AbortRate
				}
			}
		}
		// Fast-path honesty cell: one worker, disjoint keys, no dwell. The
		// policy is only consulted at blocking points, so this should match
		// across policies; best-of-3 filters scheduler noise (single-run
		// deltas on a 1-CPU host otherwise dwarf any real effect).
		best := DeadlockResult{}
		for try := 0; try < 3; try++ {
			r := runDeadlockCell("uncontended/keyed", pol.name, pol.mk(), false, true, 1, dlUncontTx)
			if best.Tx == 0 || r.NsPerTx < best.NsPerTx {
				best = r
			}
		}
		rep.Results = append(rep.Results, best)
		rep.UncontendedNsPerTx[pol.name] = best.NsPerTx
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r DeadlockReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintDeadlock writes the sweep as a table plus the acceptance summary,
// including the escalation/spurious-wakeup counters of the interval table
// and the wound/cycle activity behind each cell's abort breakdown.
func PrintDeadlock(out io.Writer, r DeadlockReport) {
	fmt.Fprintf(out, "%-18s %-11s %3s %10s %8s %7s %7s %7s %7s %6s %6s %9s\n",
		"workload", "policy", "g", "tx/sec", "abort%", "t/o", "wnd", "dlk", "wounds", "esc", "spur", "maxLat")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-18s %-11s %3d %10.1f %7.1f%% %7d %7d %7d %7d %6d %6d %8.1fms\n",
			res.Workload, res.Policy, res.Goroutines, res.TxPerSec, 100*res.AbortRate,
			res.LockTimeouts, res.Wounded, res.DeadlockAb, res.Wounds,
			res.Escalations, res.Spurious, res.MaxLatencyMs)
	}
	fmt.Fprintln(out)
	for _, pol := range []string{"timeout", "wound-wait", "detect"} {
		if rate, ok := r.AbortRateAt8[pol]; ok {
			fmt.Fprintf(out, "abort rate at 8 goroutines %-11s %6.1f%%\n", pol, 100*rate)
		}
	}
	if to, ok := r.AbortRateAt8["timeout"]; ok {
		if ww, ok2 := r.AbortRateAt8["wound-wait"]; ok2 && to > 0 {
			fmt.Fprintf(out, "wound-wait / timeout abort ratio    %6.2fx\n", ww/to)
		}
	}
	fmt.Fprintln(out)
	for _, pol := range []string{"timeout", "wound-wait", "detect"} {
		if ns, ok := r.UncontendedNsPerTx[pol]; ok {
			fmt.Fprintf(out, "uncontended ns/tx %-11s %10.1f\n", pol, ns)
		}
	}
}
