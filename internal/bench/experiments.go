package bench

import (
	"math/rand/v2"
	"time"

	"tboost/internal/core"
	"tboost/internal/pairheap"
	"tboost/internal/shadowtree"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// benchSystem returns an stm.System tuned for benchmarking: a generous lock
// timeout so conflicting boosted transactions mostly wait (as the paper's
// blocking abstract locks do) instead of thrashing on aborts.
func benchSystem() *stm.System {
	return stm.NewSystem(stm.Config{LockTimeout: 100 * time.Millisecond})
}

// setOp performs one mixed set operation drawn from the workload's
// contains/add/remove distribution.
func setOp(tx *stm.Tx, r *rand.Rand, w Workload, s *core.Set[int64]) {
	k := r.Int64N(w.KeyRange)
	p := r.IntN(100)
	switch {
	case p < w.ReadPct:
		s.Contains(tx, k)
	case p < w.ReadPct+w.AddPct:
		s.Add(tx, k)
	default:
		s.Remove(tx, k)
	}
}

// shadowOp performs the same mixed operation against the shadow-copy tree.
func shadowOp(tx *stm.Tx, r *rand.Rand, w Workload, t *shadowtree.Tree[struct{}]) {
	k := r.Int64N(w.KeyRange)
	p := r.IntN(100)
	switch {
	case p < w.ReadPct:
		t.Contains(tx, k)
	case p < w.ReadPct+w.AddPct:
		t.Insert(tx, k, struct{}{})
	default:
		t.Delete(tx, k)
	}
}

// prepopulateSet inserts every other key up to KeyRange/2 so lookups hit
// half the time.
func prepopulateSet(sys *stm.System, s *core.Set[int64], w Workload) {
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < w.KeyRange; k += 2 {
			s.Add(tx, k)
		}
	})
}

// Fig9Targets builds the red-black tree comparison (Fig. 9): a boosted
// synchronized sequential tree behind one coarse two-phase lock, versus the
// same tree re-implemented on the read/write-conflict STM with shadow
// copies.
func Fig9Targets() []Target {
	boostSys := benchSystem()
	boosted := core.NewRBTreeSet()

	shadowSys := benchSystem()
	shadow := shadowtree.New[struct{}]()

	return []Target{
		{
			Name: "boosted-rbtree",
			Sys:  boostSys,
			Prepare: func(w Workload) {
				prepopulateSet(boostSys, boosted, w)
			},
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				for i := 0; i < w.OpsPerTx; i++ {
					setOp(tx, r, w, boosted)
				}
			},
		},
		{
			Name: "shadow-rbtree",
			Sys:  shadowSys,
			Prepare: func(w Workload) {
				// Populate in modest chunks: one giant transaction
				// would hold an enormous write set.
				for base := int64(0); base < w.KeyRange; base += 256 {
					end := base + 256
					stm.MustAtomicOn(shadowSys, func(tx *stm.Tx) {
						for k := base; k < end && k < w.KeyRange; k += 2 {
							shadow.Insert(tx, k, struct{}{})
						}
					})
				}
			},
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				for i := 0; i < w.OpsPerTx; i++ {
					shadowOp(tx, r, w, shadow)
				}
			},
		},
	}
}

// Fig10Targets builds the skip-list lock-granularity comparison (Fig. 10):
// the same lock-free base class boosted with a single transactional lock
// versus a lock per key. Any throughput difference is attributable entirely
// to abstract-lock granularity.
func Fig10Targets() []Target {
	coarseSys := benchSystem()
	coarse := core.NewSkipListSetCoarse()

	keyedSys := benchSystem()
	keyed := core.NewSkipListSet()

	return []Target{
		{
			Name:    "skiplist-single-lock",
			Sys:     coarseSys,
			Prepare: func(w Workload) { prepopulateSet(coarseSys, coarse, w) },
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				for i := 0; i < w.OpsPerTx; i++ {
					setOp(tx, r, w, coarse)
				}
			},
		},
		{
			Name:    "skiplist-lock-per-key",
			Sys:     keyedSys,
			Prepare: func(w Workload) { prepopulateSet(keyedSys, keyed, w) },
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				for i := 0; i < w.OpsPerTx; i++ {
					setOp(tx, r, w, keyed)
				}
			},
		},
	}
}

// Fig11Targets builds the concurrent-heap comparison (Fig. 11): half add()
// calls and half removeMin() calls, with the base heap's abstract lock
// either discriminating readers/writers (adds share) or fully exclusive.
func Fig11Targets() []Target {
	rwSys := benchSystem()
	rwHeap := core.NewHeap[struct{}](core.RWLocked)

	exSys := benchSystem()
	exHeap := core.NewHeap[struct{}](core.Exclusive)

	prepare := func(sys *stm.System, h *core.Heap[struct{}]) func(Workload) {
		return func(w Workload) {
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				for k := int64(0); k < w.KeyRange/2; k++ {
					h.Add(tx, k, struct{}{})
				}
			})
		}
	}
	body := func(h *core.Heap[struct{}]) func(*stm.Tx, *rand.Rand, Workload) {
		return func(tx *stm.Tx, r *rand.Rand, w Workload) {
			for i := 0; i < w.OpsPerTx; i++ {
				if r.IntN(2) == 0 {
					h.Add(tx, r.Int64N(w.KeyRange), struct{}{})
				} else {
					h.RemoveMin(tx)
				}
			}
		}
	}
	return []Target{
		{Name: "heap-rwlock", Sys: rwSys, Prepare: prepare(rwSys, rwHeap), TxBody: body(rwHeap)},
		{Name: "heap-exclusive", Sys: exSys, Prepare: prepare(exSys, exHeap), TxBody: body(exHeap)},
	}
}

// AblationHeapBases compares the boosted heap over its two base objects —
// the fine-grained Hunt heap vs the coarse-locked pairing heap — under the
// Fig. 11 workload. The transactional behaviour is identical (same abstract
// locks, same inverses); only thread-level synchronization inside the black
// box differs.
func AblationHeapBases() []Target {
	huntSys := benchSystem()
	hunt := core.NewHeap[struct{}](core.RWLocked)

	pairSys := benchSystem()
	pair := core.NewHeapFromBase[struct{}](pairheap.NewSync[*core.Holder[struct{}]](), core.RWLocked)

	prepare := func(sys *stm.System, h *core.Heap[struct{}]) func(Workload) {
		return func(w Workload) {
			stm.MustAtomicOn(sys, func(tx *stm.Tx) {
				for k := int64(0); k < w.KeyRange/2; k++ {
					h.Add(tx, k, struct{}{})
				}
			})
		}
	}
	body := func(h *core.Heap[struct{}]) func(*stm.Tx, *rand.Rand, Workload) {
		return func(tx *stm.Tx, r *rand.Rand, w Workload) {
			if r.IntN(2) == 0 {
				h.Add(tx, r.Int64N(w.KeyRange), struct{}{})
			} else {
				h.RemoveMin(tx)
			}
		}
	}
	return []Target{
		{Name: "base-hunt-finegrained", Sys: huntSys, Prepare: prepare(huntSys, hunt), TxBody: body(hunt)},
		{Name: "base-pairing-coarse", Sys: pairSys, Prepare: prepare(pairSys, pair), TxBody: body(pair)},
	}
}

// AblationLockMapStripes builds targets that vary the LockMap stripe count,
// quantifying the cost of lock-table contention (an engineering knob the
// paper leaves implicit in ConcurrentHashMap).
func AblationLockMapStripes(stripes []int) []Target {
	var out []Target
	for _, n := range stripes {
		n := n
		sys := benchSystem()
		s := core.NewKeyedSetStripes[int64](skiplist.New(), n)
		out = append(out, Target{
			Name:    "stripes-" + itoa(n),
			Sys:     sys,
			Prepare: func(w Workload) { prepopulateSet(sys, s, w) },
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				setOp(tx, r, w, s)
			},
		})
	}
	return out
}

// PipelineTargets builds the §3.3 pipeline benchmark: a linear pipeline of
// the given number of stages connected by boosted Queues of the given
// capacity. Each "transaction" measured is one end-to-end item: the
// producer's offer counts as the committed unit, and sink consumption is
// driven by background stages outside the measured system. Throughput
// therefore reports sustainable pipeline feed rate.
func PipelineTargets(stages, capacity int) []Target {
	sys := benchSystem()
	queues := make([]*core.Queue[int64], stages+1)
	for i := range queues {
		queues[i] = core.NewQueueTimeout[int64](capacity, 10*time.Second)
	}
	stageSys := benchSystem()
	var started bool
	return []Target{{
		Name: "pipeline-" + itoa(stages) + "stages-cap" + itoa(capacity),
		Sys:  sys,
		Prepare: func(w Workload) {
			if started {
				return
			}
			started = true
			// Interior stages: move items along, one per transaction.
			for s := 0; s < stages; s++ {
				in, out := queues[s], queues[s+1]
				go func() {
					for {
						err := stageSys.Atomic(func(tx *stm.Tx) error {
							v := in.Take(tx)
							out.Offer(tx, v)
							return nil
						})
						if err != nil {
							return
						}
					}
				}()
			}
			// Sink: drain the last queue.
			go func() {
				for {
					err := stageSys.Atomic(func(tx *stm.Tx) error {
						queues[stages].Take(tx)
						return nil
					})
					if err != nil {
						return
					}
				}
			}()
		},
		TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
			queues[0].Offer(tx, r.Int64N(1<<20))
		},
	}}
}

// AblationContentionPolicy compares deadlock-handling policies on a
// deadlock-prone workload: each transaction touches several keys from a
// small range in random order while holding think time, so waits-for cycles
// form constantly. TimeoutOnly stalls out the full timeout before
// recovering; WoundWait resolves cycles immediately by age.
func AblationContentionPolicy(timeout time.Duration) []Target {
	mk := func(name string, s *core.Set[int64], sys *stm.System) Target {
		return Target{
			Name:    name,
			Sys:     sys,
			Prepare: func(w Workload) { prepopulateSet(sys, s, w) },
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				for i := 0; i < w.OpsPerTx; i++ {
					setOp(tx, r, w, s)
					if w.ThinkTime > 0 {
						time.Sleep(w.ThinkTime / time.Duration(w.OpsPerTx))
					}
				}
			},
		}
	}
	toSys := stm.NewSystem(stm.Config{LockTimeout: timeout})
	wwSys := stm.NewSystem(stm.Config{LockTimeout: timeout})
	return []Target{
		mk("timeout-only", core.NewKeyedSet[int64](skiplist.New()), toSys),
		mk("wound-wait", core.NewKeyedSetWoundWait[int64](skiplist.New()), wwSys),
	}
}

// AblationLockTimeout builds targets varying the abstract-lock acquisition
// timeout on a contended coarse-lock workload: too short wastes work on
// spurious aborts, too long stalls on real deadlock-free contention.
func AblationLockTimeout(timeouts []time.Duration) []Target {
	var out []Target
	for _, d := range timeouts {
		d := d
		sys := stm.NewSystem(stm.Config{LockTimeout: d})
		s := core.NewSkipListSetCoarse()
		out = append(out, Target{
			Name:    "timeout-" + d.String(),
			Sys:     sys,
			Prepare: func(w Workload) { prepopulateSet(sys, s, w) },
			TxBody: func(tx *stm.Tx, r *rand.Rand, w Workload) {
				setOp(tx, r, w, s)
			},
		})
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
