package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/lockmgr"
	"tboost/internal/stm"
)

// Range-lock sweep behind `make bench-json` / `boostbench -experiment
// rangemix`. It measures the ordered set's interval-lock hot paths in two
// variants run back to back in the same process:
//
//   - "legacy": lockmgr.SetLegacyRangeLocks routes the ordered set onto the
//     single-mutex RangeLock — every acquisition funnels through one lock
//     and an O(total-held) scan, every release wakes every waiter.
//   - "striped": the production StripedRangeLock.
//
// The headline workload is rangemix/disjoint: each worker owns a 512-key
// segment and runs transactions of 256 point operations plus a periodic
// 128-key CountRange inside its segment. Workers never contend on keys, so
// any slowdown at higher goroutine counts is pure lock-manager overhead:
// under the legacy manager each point op scans every interval held by every
// in-flight transaction (hundreds at 8 workers) under the global mutex,
// while the striped manager decides it with a lock-free snapshot read and
// one owner acquisition. As with the micro sweep, keys come from a fixed
// multiplicative hash, so runs are deterministic.

// RangeResult is one cell of the sweep. Ops counts transactions, and each
// transaction performs rangeTxOps point operations (plus the periodic range
// query), so ns_per_op is per transaction.
type RangeResult struct {
	Name        string  `json:"name"`
	Variant     string  `json:"variant"` // "legacy" or "striped"
	Goroutines  int     `json:"goroutines"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// RangeReport is the full sweep, serialized to BENCH_PR4.json.
type RangeReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// SpeedupAt8 maps each workload to striped ops/sec divided by legacy
	// ops/sec at eight goroutines — the acceptance metric: the striped
	// manager must not collapse as concurrent holdings accumulate.
	SpeedupAt8 map[string]float64 `json:"speedup_at_8"`
	Results    []RangeResult      `json:"results"`
}

const (
	rangeTxOps    = 256 // point operations per disjoint-workload transaction
	overlapTxOps  = 256 // point operations per overlap-workload update transaction
	rangeSegment  = 512 // keys per worker segment in the disjoint workload
	rangeQuerySz  = 128 // CountRange window width
	rangeQueryNth = 4   // every Nth transaction issues a range query
)

// rangeCase builds one workload; make returns the per-transaction function
// for fresh state, constructed after the legacy/striped toggle is set.
// txDiv divides the sweep's per-cell transaction budget for workloads whose
// transactions are long.
type rangeCase struct {
	name  string
	txDiv int
	make  func(cfg stm.Config, goroutines int) func(worker, i int)
}

// rangeWorkerState keeps per-worker mutable state off shared cache lines.
type rangeWorkerState struct {
	i int
	_ [56]byte
}

func rangeCases() []rangeCase {
	return []rangeCase{
		{
			// Disjoint mixed workload: per-worker segments, zero semantic
			// contention, long transactions that accumulate holdings. The
			// scalability headline. The Gosched after every operation is
			// zero-duration think time (the paper's methodology, scaled to
			// microbenchmark length): it interleaves the in-flight
			// transactions at operation granularity, so every worker's
			// two-phase holdings are concurrently visible regardless of how
			// many cores the host has — the regime the legacy manager's
			// global O(total-held) scan pays for and the striped manager's
			// per-stripe O(1) paths do not.
			name:  "rangemix/disjoint",
			txDiv: 8,
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewOrderedSet()
				keyRange := int64(goroutines) * rangeSegment
				rangePopulate(sys, s, keyRange)
				states := make([]rangeWorkerState, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					segBase := int64(w) * rangeSegment
					bodies[w] = func(tx *stm.Tx) error {
						i := states[w].i
						for j := 0; j < rangeTxOps; j++ {
							k := segBase + microKey(w, i*rangeTxOps+j, rangeSegment)
							switch j % 3 {
							case 0:
								s.Contains(tx, k)
							case 1:
								s.Add(tx, k)
							default:
								s.Remove(tx, k)
							}
							runtime.Gosched()
						}
						if i%rangeQueryNth == 0 {
							lo := segBase + int64(i*37%(rangeSegment-rangeQuerySz))
							s.CountRange(tx, lo, lo+rangeQuerySz-1)
						}
						return nil
					}
				}
				return func(worker, i int) {
					states[worker].i = i
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Cross-segment contention: every worker alternates between
			// update transactions (point ops in its own segment, as in the
			// disjoint workload) and reader transactions — one CountRange over
			// a window roaming the whole table, the transaction's only demand.
			// Queries genuinely conflict with in-flight updates, so both
			// managers pay real waits, but the workload is deadlock-free by
			// construction: a reader waits holding nothing (single demand),
			// and an updater's points can only wait on a *granted* roaming
			// query, whose transaction is by then committing. Wait chains
			// terminate; no timeout storms, so the cell measures the lock
			// managers rather than retry-backoff luck.
			name:  "rangemix/overlap",
			txDiv: 8,
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewOrderedSet()
				keyRange := int64(goroutines) * rangeSegment
				rangePopulate(sys, s, keyRange)
				states := make([]rangeWorkerState, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					segBase := int64(w) * rangeSegment
					bodies[w] = func(tx *stm.Tx) error {
						i := states[w].i
						if i%rangeQueryNth == 0 {
							lo := int64(uint64(w*2654435761+i*40503) % uint64(keyRange-rangeQuerySz))
							s.CountRange(tx, lo, lo+rangeQuerySz-1)
							return nil
						}
						for j := 0; j < overlapTxOps; j++ {
							k := segBase + microKey(w, i*overlapTxOps+j, rangeSegment)
							switch j % 3 {
							case 0:
								s.Contains(tx, k)
							case 1:
								s.Add(tx, k)
							default:
								s.Remove(tx, k)
							}
							runtime.Gosched()
						}
						return nil
					}
				}
				return func(worker, i int) {
					states[worker].i = i
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Single point read per transaction: the ordered set's answer to
			// boosted-set/contains, for comparing the interval-lock point
			// fast path against the keyed-lock numbers.
			name:  "orderedset/contains",
			txDiv: 1,
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewOrderedSet()
				rangePopulate(sys, s, 4096)
				keys := make([]paddedInt64, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					bodies[w] = func(tx *stm.Tx) error {
						s.Contains(tx, keys[w].v)
						return nil
					}
				}
				return func(worker, i int) {
					keys[worker].v = microKey(worker, i, 4096)
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
		{
			// Effective add + remove per transaction: the mutation path with
			// two undo closures, through the interval point path.
			name:  "orderedset/addremove",
			txDiv: 1,
			make: func(cfg stm.Config, goroutines int) func(worker, i int) {
				sys := stm.NewSystem(cfg)
				s := core.NewOrderedSet()
				rangePopulate(sys, s, 4096)
				keys := make([]paddedInt64, goroutines)
				bodies := make([]func(*stm.Tx) error, goroutines)
				for w := range bodies {
					w := w
					bodies[w] = func(tx *stm.Tx) error {
						s.Add(tx, keys[w].v)
						s.Remove(tx, keys[w].v)
						return nil
					}
				}
				return func(worker, i int) {
					keys[worker].v = microKey(worker, i, 2048)*2 + 1
					_ = sys.Atomic(bodies[worker])
				}
			},
		},
	}
}

// rangePopulate mirrors microPopulate for the ordered set: even keys
// present, every key's point lock installed before measurement.
func rangePopulate(sys *stm.System, s *core.OrderedSet[int64], keyRange int64) {
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < keyRange; k++ {
			s.Add(tx, k)
		}
	})
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(1); k < keyRange; k += 2 {
			s.Remove(tx, k)
		}
	})
}

// runRangeCell measures one (case, variant, goroutines) cell.
func runRangeCell(c rangeCase, variant string, goroutines, totalTx int) RangeResult {
	lockmgr.SetLegacyRangeLocks(variant == "legacy")
	defer lockmgr.SetLegacyRangeLocks(false)
	// Neither workload can deadlock (disjoint never waits; overlap's wait
	// chains terminate at a committing reader), so the timeout is a backstop
	// for scheduler stalls, not a load-bearing recovery mechanism.
	cfg := stm.Config{LockTimeout: 10 * time.Millisecond}

	op := c.make(cfg, goroutines)
	txPerG := totalTx / goroutines

	var wg sync.WaitGroup
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				op(worker, i)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	ops := int64(txPerG * goroutines)
	return RangeResult{
		Name:        c.name,
		Variant:     variant,
		Goroutines:  goroutines,
		Ops:         ops,
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
	}
}

// RangeSweep runs every range workload at each goroutine count, legacy
// variant first, then striped, and computes the 8-goroutine speedups.
// totalTx is the transaction count per cell (split across workers).
func RangeSweep(goroutines []int, totalTx int) RangeReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if totalTx <= 0 {
		totalTx = 20_000
	}
	rep := RangeReport{
		GeneratedBy: "boostbench -experiment rangemix",
		NumCPU:      runtime.NumCPU(),
		Goroutines:  goroutines,
		SpeedupAt8:  map[string]float64{},
	}
	at8 := map[string]map[string]float64{} // name -> variant -> ops/sec at 8 goroutines
	for _, c := range rangeCases() {
		for _, variant := range []string{"legacy", "striped"} {
			for _, g := range goroutines {
				r := runRangeCell(c, variant, g, totalTx/c.txDiv)
				rep.Results = append(rep.Results, r)
				if g == 8 {
					if at8[c.name] == nil {
						at8[c.name] = map[string]float64{}
					}
					at8[c.name][variant] = r.OpsPerSec
				}
			}
		}
	}
	for name, v := range at8 {
		if v["legacy"] > 0 {
			rep.SpeedupAt8[name] = v["striped"] / v["legacy"]
		}
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r RangeReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintRange writes the sweep as a table plus the speedup summary.
func PrintRange(out io.Writer, r RangeReport) {
	fmt.Fprintf(out, "%-22s %-8s %3s %14s %10s %12s\n",
		"workload", "variant", "g", "tx/sec", "ns/tx", "allocs/tx")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-22s %-8s %3d %14.0f %10.1f %12.3f\n",
			res.Name, res.Variant, res.Goroutines, res.OpsPerSec, res.NsPerOp, res.AllocsPerOp)
	}
	fmt.Fprintln(out)
	for name, ratio := range r.SpeedupAt8 {
		fmt.Fprintf(out, "speedup at 8 goroutines %-22s %.2fx\n", name, ratio)
	}
}
