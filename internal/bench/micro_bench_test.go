package bench

import (
	"testing"

	"tboost/internal/core"
	"tboost/internal/hashset"
	"tboost/internal/lockmgr"
	"tboost/internal/skiplist"
	"tboost/internal/stm"
)

// Microbenchmarks for the boosted hot path: transaction lifecycle, abstract
// lock acquire/release, and one boosted set operation. Unlike the figure
// benchmarks (which measure throughput over a window under contention),
// these are plain b.N loops with -benchmem, so allocs/op regressions on the
// per-call overhead the paper argues is small show up directly.
//
// Run: go test -bench 'Micro|TxLifecycle|LockAcquire|BoostedSet' -benchmem ./internal/bench

func BenchmarkTxLifecycle(b *testing.B) {
	b.Run("empty", func(b *testing.B) {
		sys := stm.NewSystem(stm.Config{})
		body := func(tx *stm.Tx) error { return nil }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sys.Atomic(body)
		}
	})
	b.Run("logged", func(b *testing.B) {
		// One undo entry plus one registered lock: the minimal footprint of
		// a real boosted call (Rule 1 lock + Rule 3 inverse).
		sys := stm.NewSystem(stm.Config{})
		l := lockmgr.NewOwnerLock()
		undo := func() {}
		body := func(tx *stm.Tx) error {
			l.Acquire(tx)
			tx.Log(undo)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sys.Atomic(body)
		}
	})
}

func BenchmarkLockAcquire(b *testing.B) {
	b.Run("uncontended", func(b *testing.B) {
		sys := stm.NewSystem(stm.Config{})
		l := lockmgr.NewOwnerLock()
		body := func(tx *stm.Tx) error {
			l.Acquire(tx)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sys.Atomic(body)
		}
	})
	b.Run("reentrant", func(b *testing.B) {
		// Second acquisition by the same transaction is the paper's
		// "lockSet.add" guard: it must not touch the lock at all.
		sys := stm.NewSystem(stm.Config{})
		l := lockmgr.NewOwnerLock()
		body := func(tx *stm.Tx) error {
			l.Acquire(tx)
			l.Acquire(tx)
			l.Acquire(tx)
			l.Acquire(tx)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = sys.Atomic(body)
		}
	})
	b.Run("lockmap-get", func(b *testing.B) {
		m := lockmgr.NewLockMap[int64]()
		for k := int64(0); k < 1024; k++ {
			m.Get(k) // pre-install: steady state is the read path
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Get(int64(i) & 1023)
		}
	})
}

func BenchmarkBoostedSet(b *testing.B) {
	b.Run("contains", func(b *testing.B) {
		sys := stm.NewSystem(stm.Config{})
		s := core.NewKeyedSet[int64](hashset.New[int64]())
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			for k := int64(0); k < 128; k += 2 {
				s.Add(tx, k)
			}
		})
		var k int64
		body := func(tx *stm.Tx) error {
			s.Contains(tx, k)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k = int64(i) & 127
			_ = sys.Atomic(body)
		}
	})
	b.Run("addremove", func(b *testing.B) {
		// Effective add + effective remove of the same key: two boosted
		// calls, each logging one inverse closure. The base hash set
		// allocates nothing in steady state, so allocs/op here is the
		// boosting layer's own footprint (2 ops per iteration).
		sys := stm.NewSystem(stm.Config{})
		s := core.NewKeyedSet[int64](hashset.New[int64]())
		var k int64
		body := func(tx *stm.Tx) error {
			s.Add(tx, k)
			s.Remove(tx, k)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k = int64(i) & 127
			_ = sys.Atomic(body)
		}
	})
	b.Run("struct-keyed", func(b *testing.B) {
		// Composite struct key ({tenant, item} packed by value): the generic
		// key path must hash and compare the struct without boxing it, so
		// allocs/op here must match the int64-keyed addremove budget.
		type tenantItem struct{ tenant, item int32 }
		sys := stm.NewSystem(stm.Config{})
		s := core.NewHashSetOf[tenantItem]()
		var k tenantItem
		body := func(tx *stm.Tx) error {
			s.Add(tx, k)
			s.Remove(tx, k)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k = tenantItem{tenant: int32(i) & 7, item: int32(i) & 127}
			_ = sys.Atomic(body)
		}
	})
	b.Run("skiplist-mixed", func(b *testing.B) {
		// The Fig. 10 fast configuration, single-threaded, without think
		// time: raw per-op boosted overhead over the lock-free skip list.
		sys := stm.NewSystem(stm.Config{})
		s := core.NewKeyedSet[int64](skiplist.New())
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			for k := int64(0); k < 1024; k += 2 {
				s.Add(tx, k)
			}
		})
		var i int
		body := func(tx *stm.Tx) error {
			k := int64(i*2654435761) & 1023
			switch i % 3 {
			case 0:
				s.Contains(tx, k)
			case 1:
				s.Add(tx, k)
			default:
				s.Remove(tx, k)
			}
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i = 0; i < b.N; i++ {
			_ = sys.Atomic(body)
		}
	})
}

func BenchmarkOrderedSet(b *testing.B) {
	// OrderedSet routes point operations through the striped interval table
	// instead of the per-key LockMap; these benchmarks pin its per-op cost
	// against the keyed-set numbers above and measure the range-query path.
	newPopulated := func() (*stm.System, *core.OrderedSet[int64]) {
		sys := stm.NewSystem(stm.Config{})
		s := core.NewOrderedSet()
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			for k := int64(0); k < 1024; k += 2 {
				s.Add(tx, k)
			}
		})
		return sys, s
	}
	b.Run("contains", func(b *testing.B) {
		sys, s := newPopulated()
		var k int64
		body := func(tx *stm.Tx) error {
			s.Contains(tx, k)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k = int64(i) & 1023
			_ = sys.Atomic(body)
		}
	})
	b.Run("addremove", func(b *testing.B) {
		sys, s := newPopulated()
		var k int64
		body := func(tx *stm.Tx) error {
			s.Add(tx, k)
			s.Remove(tx, k)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k = int64(i)&511 + 1025 // outside the populated evens: effective ops
			_ = sys.Atomic(body)
		}
	})
	b.Run("countrange", func(b *testing.B) {
		sys, s := newPopulated()
		var lo int64
		body := func(tx *stm.Tx) error {
			s.CountRange(tx, lo, lo+127)
			return nil
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo = int64(i) & 511
			_ = sys.Atomic(body)
		}
	})
}
