package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickWorkload is small enough for unit tests but real enough to exercise
// the full measurement path.
func quickWorkload(threads int) Workload {
	return Workload{
		Threads:   threads,
		Duration:  80 * time.Millisecond,
		ThinkTime: 100 * time.Microsecond,
		KeyRange:  256,
		OpsPerTx:  1,
		ReadPct:   60,
		AddPct:    20,
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := Workload{}.WithDefaults()
	if w.Threads <= 0 || w.Duration <= 0 || w.KeyRange <= 0 || w.OpsPerTx <= 0 {
		t.Fatalf("defaults missing: %+v", w)
	}
	if w.ReadPct+w.AddPct > 100 {
		t.Fatalf("op mix exceeds 100%%: %+v", w)
	}
}

func TestRunMeasuresCommits(t *testing.T) {
	targets := Fig10Targets()
	res := Run(targets[1], quickWorkload(4)) // lock-per-key skip list
	if res.Commits <= 0 {
		t.Fatalf("no commits measured: %+v", res)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.Starts < res.Commits {
		t.Fatalf("starts %d < commits %d", res.Starts, res.Commits)
	}
	if res.Target != "skiplist-lock-per-key" || res.Threads != 4 {
		t.Fatalf("labels wrong: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency percentiles wrong: p50=%v p99=%v", res.P50, res.P99)
	}
}

func TestSweepProducesAllCells(t *testing.T) {
	results := Sweep(Fig11Targets, []int{1, 2}, quickWorkload(0))
	if len(results) != 4 { // 2 targets x 2 thread counts
		t.Fatalf("got %d results, want 4", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		seen[r.Target+"@"+itoa(r.Threads)] = true
		if r.Commits <= 0 {
			t.Errorf("%s@%d: no commits", r.Target, r.Threads)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate cells: %v", seen)
	}
}

func TestFig9TargetsRun(t *testing.T) {
	for _, target := range Fig9Targets() {
		res := Run(target, quickWorkload(2))
		if res.Commits <= 0 {
			t.Errorf("%s: no commits", target.Name)
		}
	}
}

func TestAblationStripesTargets(t *testing.T) {
	targets := AblationLockMapStripes([]int{1, 64})
	if len(targets) != 2 {
		t.Fatalf("targets = %d", len(targets))
	}
	if targets[0].Name != "stripes-1" || targets[1].Name != "stripes-64" {
		t.Fatalf("names = %s, %s", targets[0].Name, targets[1].Name)
	}
	for _, target := range targets {
		if res := Run(target, quickWorkload(2)); res.Commits <= 0 {
			t.Errorf("%s: no commits", target.Name)
		}
	}
}

func TestPrintSeriesFormat(t *testing.T) {
	results := []Result{
		{Target: "a", Threads: 1, Commits: 10, Starts: 12, Aborts: 2, Throughput: 100},
		{Target: "a", Threads: 2, Commits: 20, Starts: 20, Throughput: 200},
		{Target: "b", Threads: 1, Commits: 5, Starts: 5, Throughput: 50},
	}
	var buf bytes.Buffer
	PrintSeries(&buf, results)
	out := buf.String()
	for _, want := range []string{"# a", "# b", "commits/sec", "100.0", "200.0", "50.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintComparisonRatio(t *testing.T) {
	results := []Result{
		{Target: "fast", Threads: 1, Throughput: 300},
		{Target: "slow", Threads: 1, Throughput: 100},
		{Target: "fast", Threads: 4, Throughput: 1000},
		{Target: "slow", Threads: 4, Throughput: 100},
	}
	var buf bytes.Buffer
	PrintComparison(&buf, results)
	out := buf.String()
	if !strings.Contains(out, "3.00x") || !strings.Contains(out, "10.00x") {
		t.Errorf("ratios missing:\n%s", out)
	}
	if !strings.Contains(out, "threads") {
		t.Errorf("header missing:\n%s", out)
	}
}

func TestAbortRatio(t *testing.T) {
	r := Result{Starts: 10, Aborts: 4}
	if got := r.AbortRatio(); got != 0.4 {
		t.Fatalf("AbortRatio = %v", got)
	}
	if got := (Result{}).AbortRatio(); got != 0 {
		t.Fatalf("empty AbortRatio = %v", got)
	}
}

func TestItoa(t *testing.T) {
	for n, want := range map[int]string{0: "0", 7: "7", 42: "42", 1234: "1234"} {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q", n, got)
		}
	}
}

// TestShapeFig10PerKeyBeatsSingleLock asserts the Fig. 10 direction: with
// think time inside transactions, the per-key discipline must clearly beat
// the single abstract lock once threads contend.
func TestShapeFig10PerKeyBeatsSingleLock(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs a real measurement window")
	}
	w := Workload{
		Threads:   8,
		Duration:  400 * time.Millisecond,
		ThinkTime: 200 * time.Microsecond,
		KeyRange:  1 << 12,
		OpsPerTx:  1,
		ReadPct:   60,
		AddPct:    20,
	}
	targets := Fig10Targets()
	single := Run(targets[0], w)
	perKey := Run(targets[1], w)
	t.Logf("single: %.0f commits/s (%.1f%% aborts)", single.Throughput, 100*single.AbortRatio())
	t.Logf("perkey: %.0f commits/s (%.1f%% aborts)", perKey.Throughput, 100*perKey.AbortRatio())
	if perKey.Throughput < 2*single.Throughput {
		t.Errorf("per-key (%.0f/s) not clearly above single lock (%.0f/s)",
			perKey.Throughput, single.Throughput)
	}
	if perKey.Aborts > single.Aborts {
		t.Errorf("per-key aborted more (%d) than single lock (%d)", perKey.Aborts, single.Aborts)
	}
}

// TestShapeFig11RWLockNoWorse asserts the Fig. 11 direction on its stable
// axis: the readers/writer discipline must not abort more than the
// exclusive one on the 50/50 heap workload.
func TestShapeFig11RWLockNoWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs a real measurement window")
	}
	w := Workload{
		Threads:   16,
		Duration:  400 * time.Millisecond,
		ThinkTime: 200 * time.Microsecond,
		KeyRange:  1 << 10,
		OpsPerTx:  1,
	}
	targets := Fig11Targets()
	rw := Run(targets[0], w)
	ex := Run(targets[1], w)
	t.Logf("rw:        %.0f commits/s (%.1f%% aborts)", rw.Throughput, 100*rw.AbortRatio())
	t.Logf("exclusive: %.0f commits/s (%.1f%% aborts)", ex.Throughput, 100*ex.AbortRatio())
	// Allow slack: single-CPU scheduling noise swamps small differences.
	if rw.AbortRatio() > ex.AbortRatio()+0.10 {
		t.Errorf("rw lock aborted more (%.2f) than exclusive (%.2f)", rw.AbortRatio(), ex.AbortRatio())
	}
	if rw.Throughput < 0.6*ex.Throughput {
		t.Errorf("rw throughput (%.0f) far below exclusive (%.0f)", rw.Throughput, ex.Throughput)
	}
}

// TestShapeBoostingBeatsShadowUnderContention is the Fig. 9 shape assertion:
// under contention the boosted tree must commit more transactions per second
// than the shadow-copy tree, and abort far less. Thresholds are generous —
// the claim is the *direction*, not the magnitude.
func TestShapeBoostingBeatsShadowUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs a real measurement window")
	}
	w := Workload{
		Threads:   8,
		Duration:  400 * time.Millisecond,
		ThinkTime: 0,
		KeyRange:  128, // small range: heavy contention
		OpsPerTx:  4,
		ReadPct:   34,
		AddPct:    33,
	}
	targets := Fig9Targets()
	boosted := Run(targets[0], w)
	shadow := Run(targets[1], w)
	t.Logf("boosted: %.0f commits/s (abort %.2f%%)", boosted.Throughput, 100*boosted.AbortRatio())
	t.Logf("shadow:  %.0f commits/s (abort %.2f%%)", shadow.Throughput, 100*shadow.AbortRatio())
	if boosted.AbortRatio() > shadow.AbortRatio() {
		t.Errorf("boosted abort ratio %.3f exceeds shadow %.3f",
			boosted.AbortRatio(), shadow.AbortRatio())
	}
	if boosted.Throughput < 3*shadow.Throughput {
		t.Errorf("boosted (%.0f/s) not clearly above shadow (%.0f/s) in the CPU-bound regime",
			boosted.Throughput, shadow.Throughput)
	}
}
