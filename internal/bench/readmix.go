package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// Read-mix sweep behind `boostbench -experiment readmix` (BENCH_PR8.json) —
// the evaluation for the multi-version read path. Two claims, two workloads:
//
//   - mix/95-5 and mix/99-1: read-dominated mixes over a 64-key hot range.
//     Every goroutine runs the same slot schedule — one write transaction
//     (add, dwell, remove: the classic lock-hold window) every 20th or 100th
//     slot, read scans of 16 consecutive hot keys in all the others. The two
//     reader disciplines differ only in the scan's transaction kind: eager
//     readers run a plain Atomic whose Contains calls demand the keys'
//     abstract locks (so they queue behind writer dwells and join deadlock
//     recovery), snapshot readers run AtomicRO against the version chains
//     and never touch the lock table. Eager cells leave versioning dormant,
//     so their writers also skip all version bookkeeping — the comparison
//     charges the snapshot discipline its full write-side cost. The
//     acceptance metric is reads/sec at eight goroutines on the 95/5 mix:
//     snapshot must beat eager by >= 3x with zero reader aborts and zero
//     reader abstract-lock demands.
//
//   - writeronly: one worker, disjoint keys, no readers — the write-side
//     overhead probe. Three variants of the same boosted set: "disabled"
//     (version table removed — the pre-multi-version baseline), "dormant"
//     (table present, no snapshot ever pinned, so the per-mutation cost is
//     one atomic load), and "active" (versioning activated by a pin that has
//     since closed, so writers seed, record, and flush version chains).
//     Variants alternate back-to-back and best-of-5 filters scheduler noise.
//     The acceptance metric is dormant/disabled ns/tx within 1.05x — pay for
//     snapshots only when something pins one. The active ratio is reported,
//     unbudgeted.
type ReadmixResult struct {
	Workload   string `json:"workload"`          // "mix/95-5", "mix/99-1", "writeronly"
	Readers    string `json:"readers,omitempty"` // "snapshot" or "eager" (mix cells)
	Variant    string `json:"variant,omitempty"` // "disabled", "dormant", "active" (writeronly cells)
	Goroutines int    `json:"goroutines"`
	Tx         int64  `json:"tx"`
	Reads      int64  `json:"reads"`
	Writes     int64  `json:"writes"`

	TxPerSec    float64 `json:"tx_per_sec"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	NsPerTx     float64 `json:"ns_per_tx"`

	AbortRate float64 `json:"abort_rate"`
	Aborts    int64   `json:"aborts"`

	ROCommits         int64 `json:"ro_commits"`
	ROAborts          int64 `json:"ro_aborts"`
	ReaderLockDemands int64 `json:"reader_lock_demands"`
}

// ReadmixReport is the full sweep, serialized to BENCH_PR8.json.
type ReadmixReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// SnapshotVsEagerReadsAt8 maps mix name to snapshot reads/sec divided by
	// eager reads/sec at eight goroutines. The acceptance metric: the 95-5
	// ratio must be >= 3.
	SnapshotVsEagerReadsAt8 map[string]float64 `json:"snapshot_vs_eager_reads_at_8"`
	// ReaderAbortsAt8 and ReaderLockDemandsAt8 sum the snapshot cells at
	// eight goroutines. Both must be zero: the lock-free guarantee.
	ReaderAbortsAt8      int64 `json:"reader_aborts_at_8"`
	ReaderLockDemandsAt8 int64 `json:"reader_lock_demands_at_8"`
	// WriterOnlyNsPerTx maps variant to single-worker conflict-free ns/tx.
	WriterOnlyNsPerTx map[string]float64 `json:"writer_only_ns_per_tx"`
	// WriterOnlyDormantOverhead is dormant/disabled — the acceptance metric,
	// budget 1.05x. WriterOnlyActiveOverhead is active/disabled, reported.
	WriterOnlyDormantOverhead float64        `json:"writer_only_dormant_overhead"`
	WriterOnlyActiveOverhead  float64        `json:"writer_only_active_overhead"`
	Results                   []ReadmixResult `json:"results"`
}

const (
	rmKeys      = 64                     // hot-range width (small => reader/writer overlap)
	rmScan      = 16                     // keys per read scan, ascending (wrap-free)
	rmDwell     = 100 * time.Microsecond // writer lock-hold window
	rmTimeout   = 10 * time.Millisecond  // lock budget for eager readers caught in ABBA
	rmTxPerCell = 2000                   // transactions per mix cell
	rmWriterTx  = 20000                  // transactions for the writeronly cells
)

// runReadmixCell measures one (mix, readers, goroutines) cell. mix is the
// read percentage (95 or 99); snapshot selects AtomicRO scans.
func runReadmixCell(mix int, snapshot bool, goroutines, txPerG int) ReadmixResult {
	sys := stm.NewSystem(stm.Config{LockTimeout: rmTimeout})
	s := core.NewSkipListSet()
	if snapshot {
		// Activate versioning up front; the eager cell leaves it dormant, so
		// its writers skip version bookkeeping entirely (the pre-multi-version
		// write path) and the comparison stays conservative.
		_ = sys.AtomicRO(func(tx *stm.Tx) error { return nil })
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < rmKeys; k += 2 {
			s.Add(tx, k)
		}
	})

	writeEvery := 100 / (100 - mix)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), uint64(mix)))
			for i := 0; i < txPerG; i++ {
				if i%writeEvery == 0 {
					_ = sys.Atomic(func(tx *stm.Tx) error {
						s.Add(tx, r.Int64N(rmKeys))
						time.Sleep(rmDwell)
						s.Remove(tx, r.Int64N(rmKeys))
						return nil
					})
					continue
				}
				scan := func(tx *stm.Tx) error {
					lo := r.Int64N(rmKeys - rmScan + 1)
					for j := int64(0); j < rmScan; j++ {
						s.Contains(tx, lo+j)
					}
					return nil
				}
				if snapshot {
					_ = sys.AtomicRO(scan)
				} else {
					_ = sys.Atomic(scan)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := sys.Stats()
	writesPerG := (txPerG + writeEvery - 1) / writeEvery
	writes := int64(goroutines * writesPerG)
	reads := int64(goroutines*txPerG) - writes
	readers := "eager"
	if snapshot {
		readers = "snapshot"
	}
	return ReadmixResult{
		Workload:          fmt.Sprintf("mix/%d-%d", mix, 100-mix),
		Readers:           readers,
		Goroutines:        goroutines,
		Tx:                writes + reads,
		Reads:             reads,
		Writes:            writes,
		TxPerSec:          float64(writes+reads) / elapsed.Seconds(),
		ReadsPerSec:       float64(reads) / elapsed.Seconds(),
		NsPerTx:           float64(elapsed.Nanoseconds()) / float64(writes+reads),
		AbortRate:         st.AbortRatio(),
		Aborts:            st.Aborts,
		ROCommits:         st.ROCommits,
		ROAborts:          st.ROAborts,
		ReaderLockDemands: st.ReaderLockDemands,
	}
}

// runWriterOnlyCell measures the uncontended write path in one versioning
// variant: "disabled" (no version table), "dormant" (table present, never
// activated), "active" (activated, no pin held).
func runWriterOnlyCell(variant string, txCount int) ReadmixResult {
	sys := stm.NewSystem(stm.Config{LockTimeout: rmTimeout})
	s := core.NewSkipListSet()
	switch variant {
	case "disabled":
		s.Engine().DisableVersions()
	case "active":
		_ = sys.AtomicRO(func(tx *stm.Tx) error { return nil })
	}

	start := time.Now()
	for i := 0; i < txCount; i++ {
		k := int64(i) * 2
		_ = sys.Atomic(func(tx *stm.Tx) error {
			s.Add(tx, k)
			s.Remove(tx, k+1)
			return nil
		})
	}
	elapsed := time.Since(start)

	st := sys.Stats()
	return ReadmixResult{
		Workload:   "writeronly",
		Variant:    variant,
		Goroutines: 1,
		Tx:         int64(txCount),
		Writes:     int64(txCount),
		TxPerSec:   float64(st.Commits) / elapsed.Seconds(),
		NsPerTx:    float64(elapsed.Nanoseconds()) / float64(txCount),
		AbortRate:  st.AbortRatio(),
		Aborts:     st.Aborts,
	}
}

// ReadmixSweep runs the snapshot-vs-eager reader sweep plus the writer-only
// overhead probe. totalTx overrides the per-cell transaction budget for the
// mix cells (0 = default).
func ReadmixSweep(goroutines []int, totalTx int) ReadmixReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if totalTx <= 0 {
		totalTx = rmTxPerCell
	}
	rep := ReadmixReport{
		GeneratedBy:             "boostbench -experiment readmix",
		NumCPU:                  runtime.NumCPU(),
		Goroutines:              goroutines,
		SnapshotVsEagerReadsAt8: map[string]float64{},
		WriterOnlyNsPerTx:       map[string]float64{},
	}
	at8 := map[string]float64{} // "mix/readers" -> reads/sec at 8 goroutines
	for _, mix := range []int{95, 99} {
		for _, snapshot := range []bool{false, true} {
			for _, g := range goroutines {
				txPerG := totalTx / g
				if txPerG == 0 {
					txPerG = 1
				}
				r := runReadmixCell(mix, snapshot, g, txPerG)
				rep.Results = append(rep.Results, r)
				if g == 8 {
					at8[r.Workload+"/"+r.Readers] = r.ReadsPerSec
					if snapshot {
						rep.ReaderAbortsAt8 += r.ROAborts
						rep.ReaderLockDemandsAt8 += r.ReaderLockDemands
					}
				}
			}
		}
	}
	for _, mixName := range []string{"mix/95-5", "mix/99-1"} {
		if e := at8[mixName+"/eager"]; e > 0 {
			rep.SnapshotVsEagerReadsAt8[mixName] = at8[mixName+"/snapshot"] / e
		}
	}

	// Writer-only probe: variants alternate back-to-back so slow host drift
	// hits each equally; best-of-5 filters scheduler noise.
	best := map[string]ReadmixResult{}
	for try := 0; try < 5; try++ {
		for _, variant := range []string{"disabled", "dormant", "active"} {
			r := runWriterOnlyCell(variant, rmWriterTx)
			if b, ok := best[variant]; !ok || r.NsPerTx < b.NsPerTx {
				best[variant] = r
			}
		}
	}
	for _, variant := range []string{"disabled", "dormant", "active"} {
		rep.Results = append(rep.Results, best[variant])
		rep.WriterOnlyNsPerTx[variant] = best[variant].NsPerTx
	}
	if d := rep.WriterOnlyNsPerTx["disabled"]; d > 0 {
		rep.WriterOnlyDormantOverhead = rep.WriterOnlyNsPerTx["dormant"] / d
		rep.WriterOnlyActiveOverhead = rep.WriterOnlyNsPerTx["active"] / d
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r ReadmixReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintReadmix writes the sweep as a table plus the acceptance summary.
func PrintReadmix(out io.Writer, r ReadmixReport) {
	fmt.Fprintf(out, "%-10s %-9s %-9s %3s %10s %12s %8s %7s %7s %7s\n",
		"workload", "readers", "variant", "g", "tx/sec", "reads/sec", "abort%", "roCmt", "roAbrt", "demand")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-10s %-9s %-9s %3d %10.1f %12.1f %7.1f%% %7d %7d %7d\n",
			res.Workload, res.Readers, res.Variant, res.Goroutines, res.TxPerSec,
			res.ReadsPerSec, 100*res.AbortRate, res.ROCommits, res.ROAborts, res.ReaderLockDemands)
	}
	fmt.Fprintln(out)
	for _, mixName := range []string{"mix/95-5", "mix/99-1"} {
		if ratio, ok := r.SnapshotVsEagerReadsAt8[mixName]; ok {
			fmt.Fprintf(out, "%s snapshot/eager reads at 8 goroutines %6.2fx\n", mixName, ratio)
		}
	}
	fmt.Fprintf(out, "snapshot reader aborts at 8                   %6d (must be 0)\n", r.ReaderAbortsAt8)
	fmt.Fprintf(out, "snapshot reader lock demands at 8             %6d (must be 0)\n", r.ReaderLockDemandsAt8)
	for _, variant := range []string{"disabled", "dormant", "active"} {
		if ns, ok := r.WriterOnlyNsPerTx[variant]; ok {
			fmt.Fprintf(out, "writer-only ns/tx %-9s %10.1f\n", variant, ns)
		}
	}
	if r.WriterOnlyDormantOverhead > 0 {
		fmt.Fprintf(out, "writer-only dormant/disabled ratio  %6.2fx (budget 1.05x)\n", r.WriterOnlyDormantOverhead)
	}
	if r.WriterOnlyActiveOverhead > 0 {
		fmt.Fprintf(out, "writer-only active/disabled ratio   %6.2fx (version chains maintained; unbudgeted)\n", r.WriterOnlyActiveOverhead)
	}
}
