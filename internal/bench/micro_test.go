package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestMicroSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("micro sweep in -short mode")
	}
	rep := MicroSweep([]int{1, 2}, 2_000)
	wantCells := len(microCases()) * 2 /* variants */ * 2 /* goroutine counts */
	if len(rep.Results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Results), wantCells)
	}
	for _, r := range rep.Results {
		if r.Ops <= 0 || r.OpsPerSec <= 0 || r.NsPerOp <= 0 {
			t.Fatalf("degenerate cell: %+v", r)
		}
	}
	for _, c := range microCases() {
		if _, ok := rep.SingleThreadSpeedup[c.name]; !ok {
			t.Fatalf("missing single-thread speedup for %s", c.name)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back MicroReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Results) != wantCells {
		t.Fatalf("round-trip lost cells: %d", len(back.Results))
	}
	PrintMicro(&buf, rep) // must not panic
}
