package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestDeadlockSweepShape runs a miniature policy sweep and checks the report
// plumbing: every (workload, policy, goroutines) cell present, abort-rate and
// uncontended summaries populated, and the printed table carrying the
// escalation/spurious columns the CLI surfaces.
func TestDeadlockSweepShape(t *testing.T) {
	rep := DeadlockSweep([]int{1, 2}, 16)
	// 3 policies x (2 flavours x 2 goroutine counts + 1 uncontended cell).
	if want := 3 * (2*2 + 1); len(rep.Results) != want {
		t.Fatalf("got %d cells, want %d", len(rep.Results), want)
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[r.Policy] = true
		if r.Tx <= 0 || r.TxPerSec <= 0 {
			t.Errorf("%s/%s@%d: empty cell: %+v", r.Workload, r.Policy, r.Goroutines, r)
		}
	}
	for _, p := range []string{"timeout", "wound-wait", "detect"} {
		if !seen[p] {
			t.Errorf("policy %s missing from results", p)
		}
		if _, ok := rep.UncontendedNsPerTx[p]; !ok {
			t.Errorf("policy %s missing from uncontended summary", p)
		}
	}
	var buf bytes.Buffer
	PrintDeadlock(&buf, rep)
	out := buf.String()
	for _, want := range []string{"esc", "spur", "wounds", "uncontended ns/tx", "deadlock/keyed", "deadlock/ranged"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed sweep missing %q:\n%s", want, out)
		}
	}
}

// TestDeadlockSweepDirection is the acceptance shape: at 8 goroutines on the
// reverse-order keyed mix, wound-wait must abort no more than the timeout
// oracle — a wound resolves a cycle with one targeted abort where the oracle
// burns a whole lock budget and often kills both parties.
func TestDeadlockSweepDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test needs a real measurement window")
	}
	rep := DeadlockSweep([]int{8}, 0)
	to, ww := rep.AbortRateAt8["timeout"], rep.AbortRateAt8["wound-wait"]
	t.Logf("abort rate at 8 goroutines: timeout %.1f%%, wound-wait %.1f%%, detect %.1f%%",
		100*to, 100*ww, 100*rep.AbortRateAt8["detect"])
	if to == 0 {
		t.Skip("no contention materialized under the timeout oracle; nothing to compare")
	}
	// Slack for single-CPU scheduling noise: the direction must hold, with a
	// small tolerance rather than strict inequality on one noisy run.
	if ww > to*1.1 {
		t.Errorf("wound-wait abort rate %.3f clearly above timeout %.3f", ww, to)
	}
}
