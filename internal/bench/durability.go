package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// Durability sweep behind `boostbench -experiment durability`
// (BENCH_PR6.json). The workload is a write-heavy boosted hash set with
// disjoint per-worker key segments — zero abstract-lock conflicts — so every
// cell isolates the cost of the durability path itself: redo capture, frame
// serialization under the log mutex, and the group-commit barrier.
//
// The sweep crosses goroutine counts with durability configurations:
//
//   - baseline:  Config.Durability == nil — the PR 5 hot path, untouched.
//   - off:       a WAL bound in Mode Off — capture plumbing live, no I/O.
//   - async:     Mode Async — append + background flush, commit never waits.
//   - group/W:   Mode Group with window W ∈ {0, 200µs, 1ms, 5ms} — every
//     commit waits for an fsync covering its LSN.
//
// Two claims are on trial. First, group commit amortizes: with W=1ms at 8
// goroutines, fsyncs/commit must drop below 0.5 — concurrent committers
// share barriers instead of each buying their own. Second, the plumbing is
// free when unused: Mode Off must stay within noise of baseline (the JSON
// records the measured ratio; acceptance is 5%).

// DurabilityResult is one cell of the sweep.
type DurabilityResult struct {
	Mode        string  `json:"mode"`      // baseline | off | async | group
	WindowUs    int64   `json:"window_us"` // group window, µs (group mode only)
	Goroutines  int     `json:"goroutines"`
	Tx          int64   `json:"tx"`
	TxPerSec    float64 `json:"tx_per_sec"`
	NsPerTx     float64 `json:"ns_per_tx"`
	Fsyncs      int64   `json:"fsyncs"`
	Batches     int64   `json:"batches"`
	Records     int64   `json:"records"`
	FsyncPerTx  float64 `json:"fsyncs_per_commit"`
	RecPerBatch float64 `json:"records_per_batch"`
	WalBytes    int64   `json:"wal_bytes"`
}

// DurabilityReport is the full sweep, serialized to BENCH_PR6.json.
type DurabilityReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// FsyncsPerCommitAt8 maps group window (µs, as a string key) to
	// fsyncs/commit at eight goroutines — the amortization metric. The
	// acceptance bar is < 0.5 at the 1000µs window.
	FsyncsPerCommitAt8 map[string]float64 `json:"fsyncs_per_commit_at_8"`
	// OffOverhead is Mode-Off ns/tx divided by baseline ns/tx, single
	// worker, best-of-3 each: the cost of having the capture plumbing
	// compiled in but pointed at a log that ignores it. Acceptance: ≤ 1.05.
	OffOverhead float64            `json:"off_overhead_vs_baseline"`
	Results     []DurabilityResult `json:"results"`
}

const (
	durKeySeg  = 1024 // per-worker key segment width (disjoint => no conflicts)
	durTxTotal = 2000 // transactions per sweep cell
	durCalibTx = 4000 // transactions for the off-vs-baseline calibration cells
)

// durCell describes one durability configuration of the sweep.
type durCell struct {
	mode   string
	window time.Duration
}

func durCells() []durCell {
	return []durCell{
		{"baseline", 0},
		{"off", 0},
		{"async", 0},
		{"group", 0},
		{"group", 200 * time.Microsecond},
		{"group", time.Millisecond},
		{"group", 5 * time.Millisecond},
	}
}

// runDurabilityCell measures one (configuration, goroutines) cell: each
// worker alternates add/remove over its own key segment, so every
// transaction carries exactly one redo op and no transaction ever blocks on
// another's abstract locks.
func runDurabilityCell(cell durCell, goroutines, txPerG int) (DurabilityResult, error) {
	out := DurabilityResult{
		Mode:       cell.mode,
		WindowUs:   cell.window.Microseconds(),
		Goroutines: goroutines,
		Tx:         int64(goroutines * txPerG),
	}

	var log *wal.Log
	var dir string
	cfg := stm.Config{}
	if cell.mode != "baseline" {
		var err error
		dir, err = os.MkdirTemp("", "tboost-durbench-*")
		if err != nil {
			return out, err
		}
		defer os.RemoveAll(dir)
		opts := wal.Options{Dir: dir, GroupWindow: cell.window}
		switch cell.mode {
		case "off":
			opts.Mode = wal.Off
		case "async":
			opts.Mode = wal.Async
		default:
			opts.Mode = wal.Group
		}
		log, err = wal.Open(opts)
		if err != nil {
			return out, err
		}
	}

	set := core.NewHashSetOf[int64]()
	if log != nil {
		if err := core.BindSet(log, "set", wal.Int64Codec, set); err != nil {
			return out, err
		}
		if _, err := log.Recover(); err != nil {
			return out, err
		}
		defer log.Close()
		cfg.Durability = log
	}
	sys := stm.NewSystem(cfg)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := int64(g) * durKeySeg
			for i := 0; i < txPerG; i++ {
				k := base + int64(i)%durKeySeg
				add := i%2 == 0
				if err := sys.Atomic(func(tx *stm.Tx) error {
					if add {
						set.Add(tx, k)
					} else {
						set.Remove(tx, k)
					}
					return nil
				}); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	// Async acks before I/O; charge the cell for draining so async cells
	// report honest whole-log throughput rather than unbounded deferral.
	if log != nil {
		if err := log.Sync(); err != nil {
			return out, err
		}
	}
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}

	out.TxPerSec = float64(out.Tx) / elapsed.Seconds()
	out.NsPerTx = float64(elapsed.Nanoseconds()) / float64(out.Tx)
	if log != nil {
		st := log.Stats()
		out.Fsyncs = int64(st.Fsyncs)
		out.Batches = int64(st.Batches)
		out.Records = int64(st.Records)
		if st.Commits > 0 {
			out.FsyncPerTx = float64(st.Fsyncs) / float64(st.Commits)
		}
		if st.Batches > 0 {
			out.RecPerBatch = float64(st.Records) / float64(st.Batches)
		}
		out.WalBytes = dirBytes(dir)
	}
	return out, nil
}

func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	return total
}

// DurabilitySweep runs the durability sweep. totalTx overrides the per-cell
// transaction budget (0 = default).
func DurabilitySweep(goroutines []int, totalTx int) (DurabilityReport, error) {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8}
	}
	if totalTx <= 0 {
		totalTx = durTxTotal
	}
	rep := DurabilityReport{
		GeneratedBy:        "boostbench -experiment durability",
		NumCPU:             runtime.NumCPU(),
		Goroutines:         goroutines,
		FsyncsPerCommitAt8: map[string]float64{},
	}
	for _, cell := range durCells() {
		for _, g := range goroutines {
			txPerG := totalTx / g
			if txPerG == 0 {
				txPerG = 1
			}
			r, err := runDurabilityCell(cell, g, txPerG)
			if err != nil {
				return rep, fmt.Errorf("durability %s/%dµs g=%d: %w", cell.mode, cell.window.Microseconds(), g, err)
			}
			rep.Results = append(rep.Results, r)
			if cell.mode == "group" && g == 8 {
				rep.FsyncsPerCommitAt8[fmt.Sprintf("%d", cell.window.Microseconds())] = r.FsyncPerTx
			}
		}
	}
	// Off-vs-baseline calibration: single worker, larger budget, best-of-3
	// per side — single-run deltas on a loaded host dwarf the effect under
	// measurement.
	best := func(cell durCell) (DurabilityResult, error) {
		var b DurabilityResult
		for try := 0; try < 3; try++ {
			r, err := runDurabilityCell(cell, 1, durCalibTx)
			if err != nil {
				return b, err
			}
			if b.Tx == 0 || r.NsPerTx < b.NsPerTx {
				b = r
			}
		}
		return b, nil
	}
	base, err := best(durCell{mode: "baseline"})
	if err != nil {
		return rep, err
	}
	off, err := best(durCell{mode: "off"})
	if err != nil {
		return rep, err
	}
	rep.Results = append(rep.Results, base, off)
	if base.NsPerTx > 0 {
		rep.OffOverhead = off.NsPerTx / base.NsPerTx
	}
	return rep, nil
}

// WriteJSON serializes the report, indented, to w.
func (r DurabilityReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintDurability writes the sweep as a table plus the acceptance summary.
func PrintDurability(out io.Writer, r DurabilityReport) {
	fmt.Fprintf(out, "%-10s %8s %3s %10s %10s %8s %8s %10s %9s\n",
		"mode", "window", "g", "tx/sec", "ns/tx", "fsyncs", "fs/tx", "rec/batch", "walBytes")
	for _, res := range r.Results {
		win := "-"
		if res.Mode == "group" {
			win = fmt.Sprintf("%dµs", res.WindowUs)
		}
		fmt.Fprintf(out, "%-10s %8s %3d %10.1f %10.1f %8d %8.3f %10.1f %9d\n",
			res.Mode, win, res.Goroutines, res.TxPerSec, res.NsPerTx,
			res.Fsyncs, res.FsyncPerTx, res.RecPerBatch, res.WalBytes)
	}
	fmt.Fprintln(out)
	for _, win := range []string{"0", "200", "1000", "5000"} {
		if v, ok := r.FsyncsPerCommitAt8[win]; ok {
			fmt.Fprintf(out, "fsyncs/commit at 8 goroutines, window %5sµs  %6.3f\n", win, v)
		}
	}
	if v, ok := r.FsyncsPerCommitAt8["1000"]; ok {
		verdict := "PASS"
		if v >= 0.5 {
			verdict = "FAIL"
		}
		fmt.Fprintf(out, "group-commit amortization (< 0.5 at 1ms)     %s\n", verdict)
	}
	fmt.Fprintf(out, "Mode-Off overhead vs baseline                %6.3fx\n", r.OffOverhead)
}
