package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tboost/internal/boost"
	"tboost/internal/core"
	"tboost/internal/stm"
)

// Lazy-vs-eager sweep behind `boostbench -experiment fusion` (BENCH_PR7.json).
// Three claims, each with its own workload:
//
//   - abba/keyed and abba/ranged: the deadlock-prone parity-reversed mix from
//     the deadlock sweep, run under the default Timeout policy. Eager
//     transactions take their first abstract lock, dwell, then demand the
//     second — the classic ABBA interleaving timeouts must resolve. Lazy
//     transactions defer both ops and acquire all locks together at the
//     commit instant, so the dwell happens with no locks held and the ABBA
//     window collapses. The acceptance metric is the abort rate at eight
//     goroutines: lazy must beat eager on the keyed cell.
//
//   - churn/keyed: every transaction adds and removes the same key plus one
//     surviving op — the workload fusion was built for. The cell reports the
//     fusion ratio (ops eliminated / ops logged); add∘remove annihilation
//     should eliminate two thirds of the logged ops and never touch the base
//     for them.
//
//   - uncontended/quiet: one worker, disjoint keys, no dwell, answer-free
//     mutations (AddQuiet/RemoveQuiet) — the honest overhead probe and the
//     acceptance cell. Quiet ops defer with no observation, so the two
//     disciplines perform the *same* base traffic (two mutations per tx)
//     and the measured gap is exactly the deferral machinery: lazy ns/tx
//     must stay within 10% of eager. Disciplines alternate back-to-back and
//     best-of-5 filters scheduler noise; the JSON records measured ratios
//     so the claim is checkable.
//
//   - uncontended/keyed: the same workload through the answering API
//     (Add/Remove return bools). An answering call must produce its answer
//     at call time, which under deferral costs an unlocked base read the
//     eager discipline gets for free (its mutation *is* the read) — the
//     shadow-read tax, inherent to lazy boosting, not machinery. The cell
//     is reported so that tax is measured rather than hidden; it is not
//     held to the 10% budget.

// FusionResult is one cell of the sweep.
type FusionResult struct {
	Workload     string  `json:"workload"`
	Discipline   string  `json:"discipline"` // "eager" or "lazy"
	Goroutines   int     `json:"goroutines"`
	Tx           int64   `json:"tx"`
	TxPerSec     float64 `json:"tx_per_sec"`
	NsPerTx      float64 `json:"ns_per_tx"`
	AbortRate    float64 `json:"abort_rate"`
	Aborts       int64   `json:"aborts"`
	LockTimeouts int64   `json:"aborts_lock_timeout"`
	Validation   int64   `json:"aborts_validation"`
	OpsLogged    uint64  `json:"ops_logged"`
	OpsFused     uint64  `json:"ops_fused"`
	// FusionRatio is ops eliminated / ops logged across the cell's drains
	// (0 for eager cells, which have no pending log).
	FusionRatio float64 `json:"fusion_ratio"`
}

// FusionReport is the full sweep, serialized to BENCH_PR7.json.
type FusionReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// AbortRateAt8 maps discipline to its abba/keyed abort rate at eight
	// goroutines — the acceptance metric. Lazy must beat eager.
	AbortRateAt8 map[string]float64 `json:"abort_rate_at_8"`
	// UncontendedNsPerTx maps discipline to single-worker conflict-free
	// ns/tx over answer-free (quiet) mutations — the acceptance metric:
	// lazy/eager must stay within 1.10.
	UncontendedNsPerTx map[string]float64 `json:"uncontended_ns_per_tx"`
	// UncontendedAnswerNsPerTx is the same cell through the answering API,
	// which charges lazy the shadow-read tax (one unlocked base read per
	// first touch of a key, to answer at call time). Reported, not budgeted.
	UncontendedAnswerNsPerTx map[string]float64 `json:"uncontended_answer_ns_per_tx"`
	// ChurnFusionRatio is the lazy churn cell's ops-eliminated ratio.
	ChurnFusionRatio float64        `json:"churn_fusion_ratio"`
	Results          []FusionResult `json:"results"`
}

const (
	fuKeys      = 12                     // ABBA key universe (small => overlap)
	fuSpan      = 4                      // interval width of the ranged flavour
	fuDwell     = 200 * time.Microsecond // hold (eager) / defer (lazy) window
	fuTimeout   = 10 * time.Millisecond  // lock budget under the Timeout policy
	fuTxPerCell = 240                    // transactions per contended cell
	fuUncontTx  = 30000                  // transactions for the uncontended cells
)

// fusionSets builds the cell's set pair: the boosted skip list in the
// requested discipline, plus the engine to read fusion counters from.
func fusionSets(lazy bool) (*core.Set[int64], *boost.Object[int64]) {
	if lazy {
		s := core.NewLazySkipListSet()
		return s, s.Engine()
	}
	s := core.NewSkipListSet()
	return s, s.Engine()
}

func fusionOrdered(lazy bool) *core.OrderedSet[int64] {
	if lazy {
		return core.NewLazyOrderedSet()
	}
	return core.NewOrderedSet()
}

// runFusionCell measures one (workload, discipline, goroutines) cell. quiet
// swaps the uncontended body onto the answer-free API (AddQuiet/RemoveQuiet).
func runFusionCell(workload, discipline string, lazy, ranged, churn, uncontended, quiet bool, goroutines, txPerG int) FusionResult {
	sys := stm.NewSystem(stm.Config{LockTimeout: fuTimeout})
	keyed, engine := fusionSets(lazy)
	ordered := fusionOrdered(lazy)
	if ranged {
		engine = ordered.Engine()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			reversed := g%2 == 1
			for i := 0; i < txPerG; i++ {
				k1 := microKey(g, i, fuKeys)
				k2 := microKey(g+1, i, fuKeys)
				if uncontended {
					k1 = int64(g)*fuKeys + microKey(g, i, fuKeys)
					k2 = k1 + 1
				}
				lo := microKey(g, i, fuKeys)
				hi := lo + fuSpan
				_ = sys.Atomic(func(tx *stm.Tx) error {
					switch {
					case churn:
						// add∘remove on one key annihilates; the second
						// key's add survives the drain.
						keyed.Add(tx, k1)
						keyed.Remove(tx, k1)
						keyed.Add(tx, k2)
						keyed.Remove(tx, k2)
						return nil
					case ranged && reversed:
						ordered.CountRange(tx, lo, hi)
						time.Sleep(fuDwell)
						ordered.Add(tx, lo)
					case ranged:
						ordered.Add(tx, hi)
						if !uncontended {
							time.Sleep(fuDwell)
						}
						ordered.CountRange(tx, lo, hi)
					case quiet:
						keyed.AddQuiet(tx, k1)
						keyed.RemoveQuiet(tx, k2)
					case reversed:
						keyed.Add(tx, k2)
						time.Sleep(fuDwell)
						keyed.Remove(tx, k1)
					default:
						keyed.Add(tx, k1)
						if !uncontended {
							time.Sleep(fuDwell)
						}
						keyed.Remove(tx, k2)
					}
					return nil
				})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := sys.Stats()
	tx := int64(goroutines * txPerG)
	out := FusionResult{
		Workload:     workload,
		Discipline:   discipline,
		Goroutines:   goroutines,
		Tx:           tx,
		TxPerSec:     float64(st.Commits) / elapsed.Seconds(),
		NsPerTx:      float64(elapsed.Nanoseconds()) / float64(tx),
		AbortRate:    st.AbortRatio(),
		Aborts:       st.Aborts,
		LockTimeouts: st.AbortsLockTimeout,
		Validation:   st.AbortsValidation,
	}
	if lazy {
		logged, fused := engine.LazyStats()
		out.OpsLogged, out.OpsFused = logged, fused
		if logged > 0 {
			out.FusionRatio = float64(fused) / float64(logged)
		}
	}
	return out
}

// FusionSweep runs the lazy-vs-eager sweep. totalTx overrides the per-cell
// transaction budget for the contended cells (0 = default).
func FusionSweep(goroutines []int, totalTx int) FusionReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8, 16}
	}
	if totalTx <= 0 {
		totalTx = fuTxPerCell
	}
	rep := FusionReport{
		GeneratedBy:        "boostbench -experiment fusion",
		NumCPU:             runtime.NumCPU(),
		Goroutines:         goroutines,
		AbortRateAt8:             map[string]float64{},
		UncontendedNsPerTx:       map[string]float64{},
		UncontendedAnswerNsPerTx: map[string]float64{},
	}
	for _, d := range []struct {
		name string
		lazy bool
	}{{"eager", false}, {"lazy", true}} {
		for _, flavour := range []struct {
			name   string
			ranged bool
		}{
			{"abba/keyed", false},
			{"abba/ranged", true},
		} {
			for _, g := range goroutines {
				txPerG := totalTx / g
				if txPerG == 0 {
					txPerG = 1
				}
				r := runFusionCell(flavour.name, d.name, d.lazy, flavour.ranged, false, false, false, g, txPerG)
				rep.Results = append(rep.Results, r)
				if g == 8 && !flavour.ranged {
					rep.AbortRateAt8[d.name] = r.AbortRate
				}
			}
		}
		// Churn cell: contended annihilation workload, fixed at 4 workers.
		churn := runFusionCell("churn/keyed", d.name, d.lazy, false, true, false, false, 4, totalTx/4)
		rep.Results = append(rep.Results, churn)
		if d.lazy {
			rep.ChurnFusionRatio = churn.FusionRatio
		}
	}
	// Honest-overhead cells: one worker, disjoint keys, no dwell, in two
	// flavours — quiet (answer-free ops; the acceptance metric, pure
	// machinery overhead) and answering (bools consumed; adds the inherent
	// shadow-read tax, reported unbudgeted). All four cells alternate
	// back-to-back so slow host drift hits every discipline equally, and
	// best-of-5 filters scheduler noise; the ratio of the bests is the
	// metric.
	best := map[string]FusionResult{}
	for try := 0; try < 5; try++ {
		for _, c := range []struct {
			workload string
			lazy     bool
			quiet    bool
		}{
			{"uncontended/quiet", false, true},
			{"uncontended/quiet", true, true},
			{"uncontended/keyed", false, false},
			{"uncontended/keyed", true, false},
		} {
			d := "eager"
			if c.lazy {
				d = "lazy"
			}
			r := runFusionCell(c.workload, d, c.lazy, false, false, true, c.quiet, 1, fuUncontTx)
			key := c.workload + "/" + d
			if b, ok := best[key]; !ok || r.NsPerTx < b.NsPerTx {
				best[key] = r
			}
		}
	}
	for _, d := range []string{"eager", "lazy"} {
		rep.Results = append(rep.Results, best["uncontended/quiet/"+d])
		rep.UncontendedNsPerTx[d] = best["uncontended/quiet/"+d].NsPerTx
		rep.Results = append(rep.Results, best["uncontended/keyed/"+d])
		rep.UncontendedAnswerNsPerTx[d] = best["uncontended/keyed/"+d].NsPerTx
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r FusionReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintFusion writes the sweep as a table plus the acceptance summary.
func PrintFusion(out io.Writer, r FusionReport) {
	fmt.Fprintf(out, "%-18s %-6s %3s %10s %8s %7s %7s %8s %8s %7s\n",
		"workload", "disc", "g", "tx/sec", "abort%", "t/o", "valid", "logged", "fused", "fuse%")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-18s %-6s %3d %10.1f %7.1f%% %7d %7d %8d %8d %6.1f%%\n",
			res.Workload, res.Discipline, res.Goroutines, res.TxPerSec, 100*res.AbortRate,
			res.LockTimeouts, res.Validation, res.OpsLogged, res.OpsFused, 100*res.FusionRatio)
	}
	fmt.Fprintln(out)
	for _, d := range []string{"eager", "lazy"} {
		if rate, ok := r.AbortRateAt8[d]; ok {
			fmt.Fprintf(out, "abba/keyed abort rate at 8 goroutines %-6s %6.1f%%\n", d, 100*rate)
		}
	}
	if e, ok := r.AbortRateAt8["eager"]; ok {
		if l, ok2 := r.AbortRateAt8["lazy"]; ok2 && e > 0 {
			fmt.Fprintf(out, "lazy / eager abort ratio at 8          %6.2fx\n", l/e)
		}
	}
	fmt.Fprintf(out, "churn fusion ratio (ops eliminated)    %6.1f%%\n", 100*r.ChurnFusionRatio)
	for _, d := range []string{"eager", "lazy"} {
		if ns, ok := r.UncontendedNsPerTx[d]; ok {
			fmt.Fprintf(out, "uncontended quiet ns/tx %-6s  %10.1f\n", d, ns)
		}
	}
	if e, ok := r.UncontendedNsPerTx["eager"]; ok {
		if l, ok2 := r.UncontendedNsPerTx["lazy"]; ok2 && e > 0 {
			fmt.Fprintf(out, "uncontended quiet lazy/eager ratio  %6.2fx (budget 1.10x)\n", l/e)
		}
	}
	if e, ok := r.UncontendedAnswerNsPerTx["eager"]; ok {
		if l, ok2 := r.UncontendedAnswerNsPerTx["lazy"]; ok2 && e > 0 {
			fmt.Fprintf(out, "uncontended answering ratio         %6.2fx (shadow-read tax; unbudgeted)\n", l/e)
		}
	}
}
