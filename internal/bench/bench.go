// Package bench is the experiment harness for the paper's evaluation (§4).
// It reproduces the methodology of the paper's experiments: each thread
// repeatedly starts a transaction, calls a method (or a few), sleeps a
// configurable "think time" simulating work on other objects — inside the
// transaction, which is what makes transactional delays long and conflicts
// expensive — and then tries to commit. The harness measures committed
// transactions over a fixed duration, plus abort counts.
//
// The same experiment definitions drive both the cmd/boostbench CLI and the
// root-level testing.B benchmarks, so tables and figures are regenerated
// from one source of truth.
package bench

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/stm"
)

// Workload describes one benchmark configuration.
type Workload struct {
	// Threads is the number of concurrent worker goroutines.
	Threads int
	// Duration is how long the measurement runs.
	Duration time.Duration
	// ThinkTime is slept inside each transaction after its method calls,
	// simulating work on other objects (the paper used 100 ms; the
	// default here is shorter so runs finish quickly).
	ThinkTime time.Duration
	// KeyRange bounds the keys drawn by workload generators.
	KeyRange int64
	// OpsPerTx is how many object operations each transaction performs.
	OpsPerTx int
	// ReadPct and AddPct split operations into contains/add/remove for
	// set workloads: ReadPct% contains, then half the rest adds.
	ReadPct int
	AddPct  int
}

// WithDefaults fills zero fields with sensible defaults.
func (w Workload) WithDefaults() Workload {
	if w.Threads <= 0 {
		w.Threads = 4
	}
	if w.Duration <= 0 {
		w.Duration = 500 * time.Millisecond
	}
	if w.ThinkTime < 0 {
		w.ThinkTime = 0
	}
	if w.KeyRange <= 0 {
		w.KeyRange = 1 << 12
	}
	if w.OpsPerTx <= 0 {
		w.OpsPerTx = 1
	}
	if w.ReadPct <= 0 && w.AddPct <= 0 {
		w.ReadPct = 60
		w.AddPct = 20
	}
	return w
}

// Target is one system under test: a fresh stm.System plus a transaction
// body. Prepare (optional) runs once before measurement to pre-populate.
type Target struct {
	Name    string
	Sys     *stm.System
	Prepare func(w Workload)
	// TxBody performs one transaction's object operations. It must use
	// only tx-safe state; r is a per-worker PRNG.
	TxBody func(tx *stm.Tx, r *rand.Rand, w Workload)
}

// Result is one measurement.
type Result struct {
	Target     string
	Threads    int
	Duration   time.Duration
	Commits    int64
	Aborts     int64
	Starts     int64
	Throughput float64 // commits per second
	// P50 and P99 are per-transaction commit latencies, measured per
	// Atomic call (retries and backoff included — the latency a caller
	// actually experiences under contention).
	P50, P99 time.Duration
	// Stats is the full counter snapshot for the measurement interval,
	// including the per-cause abort breakdown.
	Stats stm.StatsSnapshot
}

// AbortRatio returns aborted attempts / started attempts.
func (r Result) AbortRatio() float64 {
	if r.Starts == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Starts)
}

// Run measures one target under one workload.
func Run(t Target, w Workload) Result {
	w = w.WithDefaults()
	if t.Prepare != nil {
		t.Prepare(w)
	}
	t.Sys.ResetStats()

	var stop atomic.Bool
	var wg sync.WaitGroup
	latencies := make([][]time.Duration, w.Threads)
	start := time.Now()
	for g := 0; g < w.Threads; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g)+1, uint64(time.Now().UnixNano())))
			var lat []time.Duration
			for !stop.Load() {
				t0 := time.Now()
				_ = t.Sys.Atomic(func(tx *stm.Tx) error {
					t.TxBody(tx, r, w)
					if w.ThinkTime > 0 {
						time.Sleep(w.ThinkTime)
					}
					return nil
				})
				lat = append(lat, time.Since(t0))
			}
			latencies[g] = lat
		}()
	}
	time.Sleep(w.Duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	st := t.Sys.Stats()
	return Result{
		Target:     t.Name,
		Threads:    w.Threads,
		Duration:   elapsed,
		Commits:    st.Commits,
		Aborts:     st.Aborts,
		Starts:     st.Starts,
		Throughput: float64(st.Commits) / elapsed.Seconds(),
		P50:        pct(0.50),
		P99:        pct(0.99),
		Stats:      st,
	}
}

// Sweep measures every target at every thread count. makeTargets must return
// fresh targets (fresh objects and stats) per call, so measurements are
// independent.
func Sweep(makeTargets func() []Target, threads []int, w Workload) []Result {
	var out []Result
	for _, n := range threads {
		wi := w
		wi.Threads = n
		for _, t := range makeTargets() {
			out = append(out, Run(t, wi))
		}
	}
	return out
}

// PrintSeries writes results grouped per target as "threads throughput
// aborts abortRatio" lines — the series behind a figure.
func PrintSeries(out io.Writer, results []Result) {
	byTarget := map[string][]Result{}
	var names []string
	for _, r := range results {
		if _, ok := byTarget[r.Target]; !ok {
			names = append(names, r.Target)
		}
		byTarget[r.Target] = append(byTarget[r.Target], r)
	}
	for _, name := range names {
		fmt.Fprintf(out, "# %s\n", name)
		fmt.Fprintf(out, "%-8s %14s %10s %10s %12s %12s\n",
			"threads", "commits/sec", "aborts", "abort%", "p50", "p99")
		rs := byTarget[name]
		sort.Slice(rs, func(i, j int) bool { return rs[i].Threads < rs[j].Threads })
		for _, r := range rs {
			fmt.Fprintf(out, "%-8d %14.1f %10d %9.1f%% %12v %12v\n",
				r.Threads, r.Throughput, r.Aborts, 100*r.AbortRatio(),
				r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
		}
		fmt.Fprintln(out)
	}
}

// PrintComparison writes a table with one row per thread count and one
// throughput column per target, plus a ratio column (first target /
// second) when there are exactly two targets.
func PrintComparison(out io.Writer, results []Result) {
	byThreads := map[int]map[string]Result{}
	var names []string
	seen := map[string]bool{}
	var threads []int
	for _, r := range results {
		if byThreads[r.Threads] == nil {
			byThreads[r.Threads] = map[string]Result{}
			threads = append(threads, r.Threads)
		}
		byThreads[r.Threads][r.Target] = r
		if !seen[r.Target] {
			seen[r.Target] = true
			names = append(names, r.Target)
		}
	}
	sort.Ints(threads)

	fmt.Fprintf(out, "%-8s", "threads")
	for _, n := range names {
		fmt.Fprintf(out, " %20s", n)
	}
	if len(names) == 2 {
		fmt.Fprintf(out, " %10s", "ratio")
	}
	fmt.Fprintln(out)
	for _, th := range threads {
		fmt.Fprintf(out, "%-8d", th)
		for _, n := range names {
			fmt.Fprintf(out, " %20.1f", byThreads[th][n].Throughput)
		}
		if len(names) == 2 {
			a := byThreads[th][names[0]].Throughput
			b := byThreads[th][names[1]].Throughput
			ratio := 0.0
			if b > 0 {
				ratio = a / b
			}
			fmt.Fprintf(out, " %9.2fx", ratio)
		}
		fmt.Fprintln(out)
	}
}
