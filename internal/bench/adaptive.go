package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// Adaptive-granularity sweep behind `boostbench -experiment adaptive`
// (BENCH_PR9.json) — the evaluation for runtime Coarse→Keyed promotion.
//
// Every cell runs the same transaction shape: add a key, dwell 50µs with the
// abstract locks held (the paper's think-time-inside-the-transaction regime),
// remove the key. The dwell makes lock granularity the measured quantity and
// keeps the sweep honest on small hosts: parallelism among dwelling
// transactions needs overlapping sleeps, not spare cores. Under the coarse
// discipline every transaction serializes on the one lock (throughput ≈
// 1/dwell regardless of goroutines); under the keyed discipline disjoint-key
// transactions overlap.
//
// The grid is {coarse, keyed, adaptive} × goroutines {1,2,4,8} × skew
// {uniform over 256 keys, zipf-hot (90% of ops on one hot key)}. Uniform
// cells at 2+ goroutines are keyed-favored; zipf-hot cells serialize on the
// hot key under either granularity, so the statics converge and the sweep
// checks that adaptivity does not overshoot. The adaptive variant runs the
// stock default thresholds — promotion is earned from the contention meter
// during the warmup phase every variant gets, never forced.
//
// Acceptance: adaptive within 10% of the better static in every cell
// (min_adaptive_vs_best_static >= 0.9), and adaptive >= 1.5x static-coarse
// in at least two contended keyed-favored cells (keyed_favored_wins >= 2).
type AdaptiveResult struct {
	Skew       string `json:"skew"`    // "uniform" or "zipf-hot"
	Variant    string `json:"variant"` // "coarse", "keyed", "adaptive"
	Goroutines int    `json:"goroutines"`
	Tx         int64  `json:"tx"`

	TxPerSec float64 `json:"tx_per_sec"`
	NsPerTx  float64 `json:"ns_per_tx"`

	AbortRate float64 `json:"abort_rate"`
	Aborts    int64   `json:"aborts"`

	// Adaptive-variant telemetry from boost.AdaptiveStats (empty/zero for the
	// static cells): the object's final granularity phase, completed
	// migrations, and the raw contention signal.
	Phase      string  `json:"phase,omitempty"`
	Promotions uint64  `json:"promotions,omitempty"`
	Demotions  uint64  `json:"demotions,omitempty"`
	Conflicts  uint64  `json:"conflicts,omitempty"`
	WaitEWMAUs float64 `json:"wait_ewma_us,omitempty"`
}

// AdaptiveReport is the full sweep, serialized to BENCH_PR9.json.
type AdaptiveReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	Goroutines  []int  `json:"goroutines"`
	// AdaptiveVsBestStatic maps "skew/g" to adaptive tx/sec divided by the
	// better static variant's tx/sec in that cell. The acceptance metric is
	// the minimum across cells: >= 0.9 (within 10% everywhere).
	AdaptiveVsBestStatic    map[string]float64 `json:"adaptive_vs_best_static"`
	MinAdaptiveVsBestStatic float64            `json:"min_adaptive_vs_best_static"`
	// AdaptiveVsCoarse maps "skew/g" to adaptive tx/sec over static-coarse
	// tx/sec. KeyedFavoredWins counts the contended keyed-favored cells
	// (static keyed >= 1.5x static coarse) where adaptive also reaches 1.5x
	// coarse; acceptance requires >= 2.
	AdaptiveVsCoarse map[string]float64 `json:"adaptive_vs_coarse"`
	KeyedFavoredWins int                `json:"keyed_favored_wins"`
	Results          []AdaptiveResult   `json:"results"`
}

const (
	adKeys      = 256                   // uniform key range
	adHotPct    = 90                    // zipf-hot: percent of ops on the hot key
	adDwell     = 50 * time.Microsecond // lock-hold window per transaction
	adTimeout   = 100 * time.Millisecond
	adTxPerCell = 1200 // measured transactions per cell
	adWarmupTx  = 48   // warmup transactions per goroutine (earns promotion)
	adTrials    = 2    // best-of trials per cell
)

// adKey draws one key under the cell's skew.
func adKey(r *rand.Rand, zipf bool) int64 {
	if zipf && r.IntN(100) < adHotPct {
		return 0
	}
	return r.Int64N(adKeys)
}

// runAdaptiveCell measures one (variant, skew, goroutines) cell: a fresh
// system and set, a warmup phase (where the adaptive variant earns any
// promotion from its contention meter), then the timed phase.
func runAdaptiveCell(variant string, zipf bool, goroutines, txPerG int) AdaptiveResult {
	sys := stm.NewSystem(stm.Config{LockTimeout: adTimeout})
	var s *core.Set[int64]
	switch variant {
	case "coarse":
		s = core.NewSkipListSetCoarse()
	case "keyed":
		s = core.NewSkipListSet()
	case "adaptive":
		s = core.NewAdaptiveSkipListSet(sys)
	}
	stm.MustAtomicOn(sys, func(tx *stm.Tx) {
		for k := int64(0); k < adKeys; k += 2 {
			s.Add(tx, k)
		}
	})

	worker := func(g, n int, seed uint64) {
		r := rand.New(rand.NewPCG(uint64(g), seed))
		for i := 0; i < n; i++ {
			_ = sys.Atomic(func(tx *stm.Tx) error {
				k := adKey(r, zipf)
				s.Add(tx, k)
				time.Sleep(adDwell)
				s.Remove(tx, k)
				return nil
			})
		}
	}

	run := func(n int, seed uint64) time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				worker(g, n, seed)
			}()
		}
		wg.Wait()
		return time.Since(start)
	}

	run(adWarmupTx, 0xada9) // warmup: adaptive promotion happens here or never
	before := sys.Stats()
	elapsed := run(txPerG, 0xbe7c)
	st := sys.Stats().Sub(before)

	tx := int64(goroutines * txPerG)
	res := AdaptiveResult{
		Variant:    variant,
		Goroutines: goroutines,
		Tx:         tx,
		TxPerSec:   float64(tx) / elapsed.Seconds(),
		NsPerTx:    float64(elapsed.Nanoseconds()) / float64(tx),
		AbortRate:  st.AbortRatio(),
		Aborts:     st.Aborts,
		Skew:       "uniform",
	}
	if zipf {
		res.Skew = "zipf-hot"
	}
	if as, ok := s.Engine().AdaptiveStats(); ok {
		res.Phase = as.Phase
		res.Promotions = as.Promotions
		res.Demotions = as.Demotions
		res.Conflicts = as.Conflicts
		res.WaitEWMAUs = float64(as.WaitEWMA.Nanoseconds()) / 1e3
	}
	return res
}

// AdaptiveSweep runs the static-coarse / static-keyed / adaptive grid.
// totalTx overrides the per-cell transaction budget (0 = default).
func AdaptiveSweep(goroutines []int, totalTx int) AdaptiveReport {
	if len(goroutines) == 0 {
		goroutines = []int{1, 2, 4, 8}
	}
	if totalTx <= 0 {
		totalTx = adTxPerCell
	}
	rep := AdaptiveReport{
		GeneratedBy:             "boostbench -experiment adaptive",
		NumCPU:                  runtime.NumCPU(),
		Goroutines:              goroutines,
		AdaptiveVsBestStatic:    map[string]float64{},
		AdaptiveVsCoarse:        map[string]float64{},
		MinAdaptiveVsBestStatic: 0,
	}
	perSec := map[string]float64{} // "variant/skew/g" -> best tx/sec
	for _, zipf := range []bool{false, true} {
		for _, variant := range []string{"coarse", "keyed", "adaptive"} {
			for _, g := range goroutines {
				txPerG := totalTx / g
				if txPerG == 0 {
					txPerG = 1
				}
				var best AdaptiveResult
				for trial := 0; trial < adTrials; trial++ {
					r := runAdaptiveCell(variant, zipf, g, txPerG)
					if trial == 0 || r.TxPerSec > best.TxPerSec {
						best = r
					}
				}
				rep.Results = append(rep.Results, best)
				perSec[fmt.Sprintf("%s/%s/%d", variant, best.Skew, g)] = best.TxPerSec
			}
		}
	}

	first := true
	for _, skew := range []string{"uniform", "zipf-hot"} {
		for _, g := range goroutines {
			cell := fmt.Sprintf("%s/%d", skew, g)
			coarse := perSec["coarse/"+cell]
			keyed := perSec["keyed/"+cell]
			adaptive := perSec["adaptive/"+cell]
			bestStatic := coarse
			if keyed > bestStatic {
				bestStatic = keyed
			}
			if bestStatic > 0 {
				ratio := adaptive / bestStatic
				rep.AdaptiveVsBestStatic[cell] = ratio
				if first || ratio < rep.MinAdaptiveVsBestStatic {
					rep.MinAdaptiveVsBestStatic = ratio
					first = false
				}
			}
			if coarse > 0 {
				vsCoarse := adaptive / coarse
				rep.AdaptiveVsCoarse[cell] = vsCoarse
				if g > 1 && keyed >= 1.5*coarse && vsCoarse >= 1.5 {
					rep.KeyedFavoredWins++
				}
			}
		}
	}
	return rep
}

// WriteJSON serializes the report, indented, to w.
func (r AdaptiveReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintAdaptive writes the sweep as a table plus the acceptance summary.
func PrintAdaptive(out io.Writer, r AdaptiveReport) {
	fmt.Fprintf(out, "%-9s %-9s %3s %10s %10s %7s  %-7s %5s %5s %9s %10s\n",
		"skew", "variant", "g", "tx/sec", "ns/tx", "abort%", "phase", "promo", "demo", "conflicts", "ewma(µs)")
	for _, res := range r.Results {
		fmt.Fprintf(out, "%-9s %-9s %3d %10.1f %10.1f %6.1f%%  %-7s %5d %5d %9d %10.1f\n",
			res.Skew, res.Variant, res.Goroutines, res.TxPerSec, res.NsPerTx,
			100*res.AbortRate, res.Phase, res.Promotions, res.Demotions,
			res.Conflicts, res.WaitEWMAUs)
	}
	fmt.Fprintln(out)
	for _, skew := range []string{"uniform", "zipf-hot"} {
		for _, g := range r.Goroutines {
			cell := fmt.Sprintf("%s/%d", skew, g)
			if ratio, ok := r.AdaptiveVsBestStatic[cell]; ok {
				fmt.Fprintf(out, "%-12s adaptive/best-static %5.2fx   adaptive/coarse %5.2fx\n",
					cell, ratio, r.AdaptiveVsCoarse[cell])
			}
		}
	}
	fmt.Fprintf(out, "min adaptive/best-static        %6.2fx (budget >= 0.90x)\n", r.MinAdaptiveVsBestStatic)
	fmt.Fprintf(out, "keyed-favored cells at >= 1.5x  %6d (need >= 2)\n", r.KeyedFavoredWins)
}
