package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"tboost/internal/core"
	"tboost/internal/stm"
	"tboost/internal/txncoord"
	"tboost/internal/wal"
)

// Two-phase-commit sweep behind `boostbench -experiment twopc`
// (BENCH_PR10.json) — the evaluation for the cross-System transaction layer.
// Two questions, two workload families:
//
//   - commit cost: what does a span pay over a plain one-System durable
//     transaction? Single-worker, disjoint-key add transactions against
//     Group-mode logs; the span cells run the same payload split over two
//     participants through the coordinator (prepare force-log per
//     participant + decision force-log + commit markers) while the single
//     cells commit the whole payload in one System. Reported as ns/tx and
//     fsyncs per transaction — the protocol's floor is visible in the fsync
//     ratio (a span forces at least three writes where a transaction forces
//     at most one).
//
//   - read path: cross-System read-only traffic through ReadOnlySpan
//     (matched MVCC pins, no locks, no votes) vs the locked alternative —
//     one eager Atomic per participant whose Contains calls demand abstract
//     locks — while writer spans keep both participants hot. The span cells
//     must report zero reader aborts and zero reader abstract-lock demands
//     (the acceptance criterion); the throughput ratio is reported.
type TwopcResult struct {
	Workload   string `json:"workload"` // "commit/single", "commit/span", "reads/rospan", "reads/locked"
	Goroutines int    `json:"goroutines"`
	Tx         int64  `json:"tx"`
	Reads      int64  `json:"reads,omitempty"`

	NsPerTx     float64 `json:"ns_per_tx"`
	TxPerSec    float64 `json:"tx_per_sec"`
	ReadsPerSec float64 `json:"reads_per_sec,omitempty"`

	Fsyncs            int64   `json:"fsyncs,omitempty"`
	FsyncsPerTx       float64 `json:"fsyncs_per_tx,omitempty"`
	ROAborts          int64   `json:"ro_aborts"`
	ReaderLockDemands int64   `json:"reader_lock_demands"`
}

// TwopcReport is the full sweep, serialized to BENCH_PR10.json.
type TwopcReport struct {
	GeneratedBy string `json:"generated_by"`
	NumCPU      int    `json:"num_cpu"`
	// SpanCommitOverhead is span ns/tx divided by single-System ns/tx at one
	// worker — the protocol's latency price. Reported, unbudgeted (it is
	// dominated by the extra forced fsyncs).
	SpanCommitOverhead float64 `json:"span_commit_overhead"`
	// SpanFsyncsPerTx and SingleFsyncsPerTx expose the forced-write floor.
	SpanFsyncsPerTx   float64 `json:"span_fsyncs_per_tx"`
	SingleFsyncsPerTx float64 `json:"single_fsyncs_per_tx"`
	// ROSpanVsLockedReads is read-only-span reads/sec divided by locked
	// cross-System reads/sec under writer pressure.
	ROSpanVsLockedReads float64 `json:"rospan_vs_locked_reads"`
	// ROSpanAborts and ROSpanLockDemands must both be zero: read-only spans
	// are lock-free by construction (the acceptance criterion).
	ROSpanAborts      int64         `json:"rospan_aborts"`
	ROSpanLockDemands int64         `json:"rospan_lock_demands"`
	Results           []TwopcResult `json:"results"`
}

const (
	tpCommitTx = 300 // durable commit transactions per cell (fsync-bound)
	tpReadTx   = 1500
	tpKeys     = 64
	tpScan     = 16
	tpReadersG = 4
)

// runTwopcSingle measures the one-System durable baseline: each transaction
// adds two disjoint keys to one set behind a Group-mode log.
func runTwopcSingle(txs int) TwopcResult {
	dir, err := os.MkdirTemp("", "twopc-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, err := wal.Open(wal.Options{Dir: dir, Mode: wal.Group})
	if err != nil {
		panic(err)
	}
	defer l.Close()
	set := core.NewHashSetOf[int64]()
	if err := core.BindSet(l, "set", wal.Int64Codec, set); err != nil {
		panic(err)
	}
	if _, err := l.Recover(); err != nil {
		panic(err)
	}
	sys := stm.NewSystem(stm.Config{Durability: l})

	start := time.Now()
	for i := 0; i < txs; i++ {
		k := int64(i * 2)
		stm.MustAtomicOn(sys, func(tx *stm.Tx) {
			set.Add(tx, k)
			set.Add(tx, k+1)
		})
	}
	el := time.Since(start)
	fs := l.Stats().Fsyncs
	return TwopcResult{
		Workload: "commit/single", Goroutines: 1, Tx: int64(txs),
		NsPerTx:  float64(el.Nanoseconds()) / float64(txs),
		TxPerSec: float64(txs) / el.Seconds(),
		Fsyncs:   int64(fs), FsyncsPerTx: float64(fs) / float64(txs),
	}
}

// runTwopcSpan measures the same payload as a two-participant span: one key
// per participant per span, full 2PC (prepare force-logs, durable decision,
// commit markers).
func runTwopcSpan(txs int) TwopcResult {
	root, err := os.MkdirTemp("", "twopc-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)
	var logs [2]*wal.Log
	var sets [2]*core.Set[int64]
	parts := make([]txncoord.Participant, 2)
	for i := 0; i < 2; i++ {
		l, err := wal.Open(wal.Options{Dir: filepath.Join(root, fmt.Sprintf("p%d", i)), Mode: wal.Group})
		if err != nil {
			panic(err)
		}
		defer l.Close()
		sets[i] = core.NewHashSetOf[int64]()
		if err := core.BindSet(l, "set", wal.Int64Codec, sets[i]); err != nil {
			panic(err)
		}
		if _, err := l.Recover(); err != nil {
			panic(err)
		}
		logs[i] = l
		parts[i] = txncoord.Participant{Sys: stm.NewSystem(stm.Config{Durability: l}), Log: l}
	}
	coord, err := txncoord.New(parts, txncoord.Options{Dir: filepath.Join(root, "coord")})
	if err != nil {
		panic(err)
	}
	defer coord.Close()

	start := time.Now()
	for i := 0; i < txs; i++ {
		k := int64(i)
		_, err := coord.Span(
			func(tx *stm.Tx, _ uint64) error { sets[0].Add(tx, k); return nil },
			func(tx *stm.Tx, _ uint64) error { sets[1].Add(tx, k); return nil },
		)
		if err != nil {
			panic(err)
		}
	}
	el := time.Since(start)
	fs := logs[0].Stats().Fsyncs + logs[1].Stats().Fsyncs + coord.LogStats().Fsyncs
	return TwopcResult{
		Workload: "commit/span", Goroutines: 1, Tx: int64(txs),
		NsPerTx:  float64(el.Nanoseconds()) / float64(txs),
		TxPerSec: float64(txs) / el.Seconds(),
		Fsyncs:   int64(fs), FsyncsPerTx: float64(fs) / float64(txs),
	}
}

// runTwopcReads measures cross-System read throughput under writer-span
// pressure. rospan selects ReadOnlySpan scans; otherwise each "read" runs
// one eager Atomic per participant, demanding the scanned keys' locks.
func runTwopcReads(rospan bool, goroutines, txPerG int) TwopcResult {
	sets := [2]*core.Set[int64]{core.NewHashSetOf[int64](), core.NewHashSetOf[int64]()}
	parts := make([]txncoord.Participant, 2)
	for i := range parts {
		parts[i] = txncoord.Participant{Sys: stm.NewSystem(stm.Config{LockTimeout: 10 * time.Millisecond})}
	}
	coord, err := txncoord.New(parts, txncoord.Options{})
	if err != nil {
		panic(err)
	}
	defer coord.Close()
	for i := 0; i < 2; i++ {
		i := i
		stm.MustAtomicOn(parts[i].Sys, func(tx *stm.Tx) {
			for k := int64(0); k < tpKeys; k += 2 {
				sets[i].Add(tx, k)
			}
		})
	}
	if rospan {
		// Activate versioning before timing so the span path is warm.
		coord.ReadOnlySpan().Close()
	}

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for k := int64(1); ; k += 2 {
			select {
			case <-stop:
				return
			default:
			}
			kk := k % tpKeys
			_, _ = coord.Span(
				func(tx *stm.Tx, _ uint64) error {
					if !sets[0].Add(tx, kk) {
						sets[0].Remove(tx, kk)
					}
					time.Sleep(20 * time.Microsecond) // dwell inside the locks
					return nil
				},
				func(tx *stm.Tx, _ uint64) error {
					if !sets[1].Add(tx, kk) {
						sets[1].Remove(tx, kk)
					}
					return nil
				},
			)
		}
	}()

	before := [2]stm.StatsSnapshot{parts[0].Sys.Stats(), parts[1].Sys.Stats()}
	var reads int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txPerG; i++ {
				base := int64((g*txPerG + i) % (tpKeys - tpScan))
				if rospan {
					span := coord.ReadOnlySpan()
					for p := 0; p < 2; p++ {
						p := p
						_ = span.Atomic(p, func(tx *stm.Tx) error {
							for k := base; k < base+tpScan; k++ {
								sets[p].Contains(tx, k)
							}
							return nil
						})
					}
					span.Close()
				} else {
					for p := 0; p < 2; p++ {
						p := p
						_ = parts[p].Sys.Atomic(func(tx *stm.Tx) error {
							for k := base; k < base+tpScan; k++ {
								sets[p].Contains(tx, k)
							}
							return nil
						})
					}
				}
			}
		}()
	}
	wg.Wait()
	el := time.Since(start)
	close(stop)
	writerWG.Wait()

	reads = int64(goroutines*txPerG) * 2 * tpScan
	var roAborts, lockDemands int64
	for i := 0; i < 2; i++ {
		s := parts[i].Sys.Stats()
		roAborts += s.ROAborts - before[i].ROAborts
		lockDemands += s.ReaderLockDemands - before[i].ReaderLockDemands
	}
	name := "reads/locked"
	if rospan {
		name = "reads/rospan"
	}
	txs := int64(goroutines * txPerG)
	return TwopcResult{
		Workload: name, Goroutines: goroutines, Tx: txs, Reads: reads,
		NsPerTx:     float64(el.Nanoseconds()) / float64(txs),
		TxPerSec:    float64(txs) / el.Seconds(),
		ReadsPerSec: float64(reads) / el.Seconds(),
		ROAborts:    roAborts, ReaderLockDemands: lockDemands,
	}
}

// TwopcSweep runs the full grid. txOverride scales the commit cells when
// nonzero (-micro-ops).
func TwopcSweep(txOverride int) TwopcReport {
	commitTx, readTx := tpCommitTx, tpReadTx
	if txOverride > 0 {
		commitTx, readTx = txOverride, txOverride
	}
	rep := TwopcReport{GeneratedBy: "boostbench -experiment twopc", NumCPU: runtime.NumCPU()}

	single := runTwopcSingle(commitTx)
	span := runTwopcSpan(commitTx)
	locked := runTwopcReads(false, tpReadersG, readTx)
	rospan := runTwopcReads(true, tpReadersG, readTx)
	rep.Results = []TwopcResult{single, span, locked, rospan}

	rep.SpanCommitOverhead = span.NsPerTx / single.NsPerTx
	rep.SpanFsyncsPerTx = span.FsyncsPerTx
	rep.SingleFsyncsPerTx = single.FsyncsPerTx
	rep.ROSpanVsLockedReads = rospan.ReadsPerSec / locked.ReadsPerSec
	rep.ROSpanAborts = rospan.ROAborts
	rep.ROSpanLockDemands = rospan.ReaderLockDemands
	return rep
}

// WriteJSON serializes the report.
func (r TwopcReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintTwopc renders the sweep for the terminal.
func PrintTwopc(w io.Writer, r TwopcReport) {
	fmt.Fprintf(w, "%-14s %3s %10s %12s %12s %10s %9s %7s\n",
		"workload", "g", "tx", "ns/tx", "reads/s", "fsync/tx", "ro-abort", "lockdem")
	for _, c := range r.Results {
		fmt.Fprintf(w, "%-14s %3d %10d %12.0f %12.0f %10.2f %9d %7d\n",
			c.Workload, c.Goroutines, c.Tx, c.NsPerTx, c.ReadsPerSec, c.FsyncsPerTx, c.ROAborts, c.ReaderLockDemands)
	}
	fmt.Fprintf(w, "\nspan commit overhead: %.2fx ns/tx (fsyncs %.2f vs %.2f per tx)\n",
		r.SpanCommitOverhead, r.SpanFsyncsPerTx, r.SingleFsyncsPerTx)
	fmt.Fprintf(w, "read-only span vs locked reads: %.2fx reads/sec\n", r.ROSpanVsLockedReads)
	status := "PASS"
	if r.ROSpanAborts != 0 || r.ROSpanLockDemands != 0 {
		status = "FAIL"
	}
	fmt.Fprintf(w, "lock-free read-only spans: aborts=%d lock-demands=%d [%s]\n",
		r.ROSpanAborts, r.ROSpanLockDemands, status)
}
