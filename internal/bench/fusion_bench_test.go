package bench

import (
	"testing"

	"tboost/internal/core"
	"tboost/internal/stm"
)

// The uncontended micro-benchmarks behind the fusion sweep's overhead cells,
// in `go test -bench` form for profiling (-cpuprofile) and A/B runs. Two
// base objects (skip list: traversal-heavy; hash set: O(1), where fixed
// deferral machinery dominates) × two disciplines × two API flavours
// (answering ops pay the lazy shadow read; quiet ops isolate machinery).

func benchUncontendedSet(b *testing.B, set *core.Set[int64], quiet bool) {
	sys := stm.NewSystem(stm.Config{LockTimeout: fuTimeout})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k1 := microKey(0, i, fuKeys)
		k2 := k1 + 1
		_ = sys.Atomic(func(tx *stm.Tx) error {
			if quiet {
				set.AddQuiet(tx, k1)
				set.RemoveQuiet(tx, k2)
			} else {
				set.Add(tx, k1)
				set.Remove(tx, k2)
			}
			return nil
		})
	}
}

func skiplistSet(lazy bool) *core.Set[int64] {
	s, _ := fusionSets(lazy)
	return s
}

func BenchmarkUncontendedEager(b *testing.B) { benchUncontendedSet(b, skiplistSet(false), false) }
func BenchmarkUncontendedLazy(b *testing.B)  { benchUncontendedSet(b, skiplistSet(true), false) }
func BenchmarkUncontendedQuietEager(b *testing.B) {
	benchUncontendedSet(b, skiplistSet(false), true)
}
func BenchmarkUncontendedQuietLazy(b *testing.B) {
	benchUncontendedSet(b, skiplistSet(true), true)
}
