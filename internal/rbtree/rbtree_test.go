package rbtree

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New[string]()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty returned ok")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGetDelete(t *testing.T) {
	tr := New[string]()
	if !tr.Insert(5, "five") {
		t.Fatal("Insert new key = false")
	}
	if tr.Insert(5, "FIVE") {
		t.Fatal("Insert existing key = true")
	}
	v, ok := tr.Get(5)
	if !ok || v != "FIVE" {
		t.Fatalf("Get(5) = %q,%v; want FIVE (overwrite)", v, ok)
	}
	v, ok = tr.Delete(5)
	if !ok || v != "FIVE" {
		t.Fatalf("Delete(5) = %q,%v", v, ok)
	}
	if tr.Contains(5) {
		t.Fatal("Contains after delete")
	}
}

func TestAscendingInsertStaysBalanced(t *testing.T) {
	tr := New[int]()
	const n = 4096
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), i)
		if i%256 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestMinMaxKeys(t *testing.T) {
	tr := New[int]()
	keys := []int64{42, -7, 100, 0, 13}
	for _, k := range keys {
		tr.Insert(k, int(k))
	}
	if mn, _ := tr.Min(); mn != -7 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := tr.Max(); mx != 100 {
		t.Fatalf("Max = %d", mx)
	}
	got := tr.Keys()
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := int64(0); i < 10; i++ {
		tr.Insert(i, int(i))
	}
	var seen []int64
	tr.Ascend(func(k int64, _ int) bool {
		seen = append(seen, k)
		return k < 4
	})
	// fn(4) returns false, so traversal stops with seen = 0,1,2,3,4.
	if seen[len(seen)-1] != 4 || len(seen) != 5 {
		t.Fatalf("seen = %v, want stop after key 4", seen)
	}
}

// TestRandomAgainstModel drives insert/delete randomly, checking responses
// against a map model and re-validating the red-black invariants.
func TestRandomAgainstModel(t *testing.T) {
	tr := New[int64]()
	model := map[int64]int64{}
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 30000; i++ {
		k := int64(r.IntN(512))
		if r.IntN(2) == 0 {
			_, existed := model[k]
			if isNew := tr.Insert(k, k*10); isNew == existed {
				t.Fatalf("op %d: Insert(%d) new=%v, model existed=%v", i, k, isNew, existed)
			}
			model[k] = k * 10
		} else {
			wantV, existed := model[k]
			v, ok := tr.Delete(k)
			if ok != existed || (ok && v != wantV) {
				t.Fatalf("op %d: Delete(%d) = %v,%v; model %v,%v", i, k, v, ok, wantV, existed)
			}
			delete(model, k)
		}
		if i%2000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
	}
	for k, v := range model {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %v,%v; want %v", k, got, ok, v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInsertDeleteBalanced property: any random key multiset inserted
// then half-deleted preserves the invariants.
func TestQuickInsertDeleteBalanced(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New[struct{}]()
		for _, k := range keys {
			tr.Insert(k, struct{}{})
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for i, k := range keys {
			if i%2 == 0 {
				tr.Delete(k)
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncConcurrentMixed(t *testing.T) {
	s := NewSync[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 5))
			for i := 0; i < 3000; i++ {
				k := int64(r.IntN(256))
				switch r.IntN(3) {
				case 0:
					s.Insert(k, int(k))
				case 1:
					s.Delete(k)
				default:
					s.Contains(k)
				}
			}
		}()
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := s.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not sorted: %v", keys)
	}
	_ = s.Len()
	if v, ok := s.Get(keys[0]); ok && v != int(keys[0]) {
		t.Fatalf("Get(%d) = %d", keys[0], v)
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	tr := New[int]()
	r := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		k := int64(r.IntN(1 << 16))
		if i%2 == 0 {
			tr.Insert(k, i)
		} else {
			tr.Delete(k)
		}
	}
}
