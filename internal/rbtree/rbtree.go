// Package rbtree implements a sequential red-black tree (CLRS-style,
// approximately balanced binary search tree) keyed by int64, plus a
// monitor-style synchronized wrapper.
//
// This is the base object of the paper's first experiment (Fig. 9): the
// boosted variant wraps the synchronized tree with a single two-phase
// abstract lock, while the baseline re-implements the same tree on the
// read/write-conflict STM (package shadowtree).
package rbtree

import "fmt"

type color bool

const (
	red   color = false
	black color = true
)

type node[V any] struct {
	key                 int64
	val                 V
	left, right, parent *node[V]
	color               color
}

// Tree is a sequential ordered map from int64 to V. Not safe for concurrent
// use; see Sync for a linearizable wrapper.
type Tree[V any] struct {
	root *node[V]
	nil_ *node[V] // shared sentinel leaf (always black)
	size int
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	sentinel := &node[V]{color: black}
	return &Tree[V]{root: sentinel, nil_: sentinel}
}

// Len returns the number of keys.
func (t *Tree[V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[V]) Get(key int64) (V, bool) {
	n := t.root
	for n != t.nil_ {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[V]) Contains(key int64) bool {
	_, ok := t.Get(key)
	return ok
}

// Put stores val under key, returning the previous value and whether the key
// existed. Boosted maps need the old value to build the inverse operation.
func (t *Tree[V]) Put(key int64, val V) (old V, existed bool) {
	n := t.root
	for n != t.nil_ {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			old = n.val
			n.val = val
			return old, true
		}
	}
	t.Insert(key, val)
	var zero V
	return zero, false
}

// Insert stores val under key, reporting whether the key is new. An existing
// key's value is overwritten.
func (t *Tree[V]) Insert(key int64, val V) bool {
	parent := t.nil_
	n := t.root
	for n != t.nil_ {
		parent = n
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			n.val = val
			return false
		}
	}
	fresh := &node[V]{key: key, val: val, left: t.nil_, right: t.nil_, parent: parent, color: red}
	switch {
	case parent == t.nil_:
		t.root = fresh
	case key < parent.key:
		parent.left = fresh
	default:
		parent.right = fresh
	}
	t.size++
	t.insertFixup(fresh)
	return true
}

func (t *Tree[V]) rotateLeft(x *node[V]) {
	y := x.right
	x.right = y.left
	if y.left != t.nil_ {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *node[V]) {
	y := x.left
	x.left = y.right
	if y.right != t.nil_ {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == t.nil_:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[V]) insertFixup(z *node[V]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			uncle := z.parent.parent.right
			if uncle.color == red {
				z.parent.color = black
				uncle.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			uncle := z.parent.parent.left
			if uncle.color == red {
				z.parent.color = black
				uncle.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

// Delete removes key, returning its value and whether it was present.
func (t *Tree[V]) Delete(key int64) (V, bool) {
	var zero V
	z := t.root
	for z != t.nil_ && z.key != key {
		if key < z.key {
			z = z.left
		} else {
			z = z.right
		}
	}
	if z == t.nil_ {
		return zero, false
	}
	val := z.val
	t.deleteNode(z)
	t.size--
	return val, true
}

func (t *Tree[V]) minimum(n *node[V]) *node[V] {
	for n.left != t.nil_ {
		n = n.left
	}
	return n
}

func (t *Tree[V]) transplant(u, v *node[V]) {
	switch {
	case u.parent == t.nil_:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[V]) deleteNode(z *node[V]) {
	y := z
	yOriginal := y.color
	var x *node[V]
	switch {
	case z.left == t.nil_:
		x = z.right
		t.transplant(z, z.right)
	case z.right == t.nil_:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOriginal = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOriginal == black {
		t.deleteFixup(x)
	}
}

func (t *Tree[V]) deleteFixup(x *node[V]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Min returns the smallest key, or false if the tree is empty.
func (t *Tree[V]) Min() (int64, bool) {
	if t.root == t.nil_ {
		return 0, false
	}
	return t.minimum(t.root).key, true
}

// Max returns the largest key, or false if the tree is empty.
func (t *Tree[V]) Max() (int64, bool) {
	if t.root == t.nil_ {
		return 0, false
	}
	n := t.root
	for n.right != t.nil_ {
		n = n.right
	}
	return n.key, true
}

// Ascend calls fn for each key/value in ascending key order until fn returns
// false.
func (t *Tree[V]) Ascend(fn func(key int64, val V) bool) {
	t.ascend(t.root, fn)
}

func (t *Tree[V]) ascend(n *node[V], fn func(int64, V) bool) bool {
	if n == t.nil_ {
		return true
	}
	if !t.ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return t.ascend(n.right, fn)
}

// Keys returns all keys in ascending order.
func (t *Tree[V]) Keys() []int64 {
	out := make([]int64, 0, t.size)
	t.Ascend(func(k int64, _ V) bool { out = append(out, k); return true })
	return out
}

// CheckInvariants verifies the red-black properties: root is black, no red
// node has a red child, every root-to-leaf path has the same black height,
// and keys are in strict BST order. It returns an error describing the first
// violation found. For tests.
func (t *Tree[V]) CheckInvariants() error {
	if t.root.color != black {
		return fmt.Errorf("rbtree: root is red")
	}
	_, err := t.check(t.root, nil, nil)
	return err
}

func (t *Tree[V]) check(n *node[V], lo, hi *int64) (blackHeight int, err error) {
	if n == t.nil_ {
		return 1, nil
	}
	if lo != nil && n.key <= *lo {
		return 0, fmt.Errorf("rbtree: key %d violates BST order (min bound %d)", n.key, *lo)
	}
	if hi != nil && n.key >= *hi {
		return 0, fmt.Errorf("rbtree: key %d violates BST order (max bound %d)", n.key, *hi)
	}
	if n.color == red && (n.left.color == red || n.right.color == red) {
		return 0, fmt.Errorf("rbtree: red node %d has red child", n.key)
	}
	lh, err := t.check(n.left, lo, &n.key)
	if err != nil {
		return 0, err
	}
	rh, err := t.check(n.right, &n.key, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at %d: %d vs %d", n.key, lh, rh)
	}
	if n.color == black {
		lh++
	}
	return lh, nil
}
