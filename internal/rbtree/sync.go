package rbtree

import "sync"

// Sync wraps a Tree with a single mutex, the Go analogue of making every
// method synchronized in Java. The result is a linearizable base object with
// no thread-level concurrency — exactly how the paper prepares the
// sequential red-black tree for boosting ("we made all the sequential
// methods synchronized, yielding a linearizable base type").
type Sync[V any] struct {
	mu   sync.Mutex
	tree *Tree[V]
}

// NewSync returns an empty synchronized tree.
func NewSync[V any]() *Sync[V] {
	return &Sync[V]{tree: New[V]()}
}

// Put stores val under key, returning the previous value and whether the key
// existed.
func (s *Sync[V]) Put(key int64, val V) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Put(key, val)
}

// Insert stores val under key, reporting whether the key is new.
func (s *Sync[V]) Insert(key int64, val V) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Insert(key, val)
}

// Delete removes key, returning its value and whether it was present.
func (s *Sync[V]) Delete(key int64) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Delete(key)
}

// Get returns the value stored under key.
func (s *Sync[V]) Get(key int64) (V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Get(key)
}

// Contains reports whether key is present.
func (s *Sync[V]) Contains(key int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Contains(key)
}

// Len returns the number of keys.
func (s *Sync[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Len()
}

// Keys returns all keys in ascending order.
func (s *Sync[V]) Keys() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Keys()
}

// CheckInvariants verifies the red-black properties.
func (s *Sync[V]) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.CheckInvariants()
}
