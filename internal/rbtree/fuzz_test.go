package rbtree

import (
	"math/rand/v2"
	"testing"
)

// FuzzTreeAgainstModel interprets fuzz bytes as insert/delete/get
// operations, checking responses against a map model and the red-black
// invariants after every operation batch.
// Run continuously with: go test -fuzz FuzzTreeAgainstModel ./internal/rbtree
func FuzzTreeAgainstModel(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81})
	seed := make([]byte, 128)
	r := rand.New(rand.NewPCG(2, 2))
	for i := range seed {
		seed[i] = byte(r.IntN(256))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New[int64]()
		model := map[int64]int64{}
		for i, b := range ops {
			k := int64(b & 0x3f)
			switch b >> 6 {
			case 0, 3:
				_, existed := model[k]
				if isNew := tr.Insert(k, k*3); isNew == existed {
					t.Fatalf("op %d: Insert(%d) new=%v, existed=%v", i, k, isNew, existed)
				}
				model[k] = k * 3
			case 1:
				wantV, existed := model[k]
				v, ok := tr.Delete(k)
				if ok != existed || (ok && v != wantV) {
					t.Fatalf("op %d: Delete(%d) = %v,%v want %v,%v", i, k, v, ok, wantV, existed)
				}
				delete(model, k)
			case 2:
				wantV, existed := model[k]
				v, ok := tr.Get(k)
				if ok != existed || (ok && v != wantV) {
					t.Fatalf("op %d: Get(%d) = %v,%v want %v,%v", i, k, v, ok, wantV, existed)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("Len = %d, model = %d", tr.Len(), len(model))
		}
	})
}
