package pairheap

import (
	"math/rand/v2"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New[int]()
	if _, _, ok := h.RemoveMin(); ok {
		t.Fatal("RemoveMin on empty = ok")
	}
	if _, _, ok := h.Min(); ok {
		t.Fatal("Min on empty = ok")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestHeapsort(t *testing.T) {
	h := New[int]()
	r := rand.New(rand.NewPCG(3, 4))
	var want []int64
	for i := 0; i < 3000; i++ {
		k := int64(r.IntN(500))
		want = append(want, k)
		h.Add(k, i)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		k, _, ok := h.RemoveMin()
		if !ok || k != w {
			t.Fatalf("RemoveMin %d = %d,%v, want %d", i, k, ok, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d at end", h.Len())
	}
}

func TestMinDoesNotRemove(t *testing.T) {
	h := New[string]()
	h.Add(2, "two")
	h.Add(1, "one")
	for i := 0; i < 3; i++ {
		k, v, ok := h.Min()
		if !ok || k != 1 || v != "one" {
			t.Fatalf("Min = %d,%q,%v", k, v, ok)
		}
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestAscendingAndDescendingInserts(t *testing.T) {
	// Degenerate shapes exercise the two-pass merge.
	for _, dir := range []string{"asc", "desc"} {
		h := New[int]()
		const n = 2000
		for i := 0; i < n; i++ {
			k := int64(i)
			if dir == "desc" {
				k = int64(n - i)
			}
			h.Add(k, 0)
		}
		prev := int64(-1 << 62)
		for i := 0; i < n; i++ {
			k, _, ok := h.RemoveMin()
			if !ok || k < prev {
				t.Fatalf("%s: RemoveMin %d = %d (prev %d)", dir, i, k, prev)
			}
			prev = k
		}
	}
}

func TestQuickMatchesSortedOrder(t *testing.T) {
	f := func(keys []int64) bool {
		h := New[struct{}]()
		for _, k := range keys {
			h.Add(k, struct{}{})
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, w := range sorted {
			k, _, ok := h.RemoveMin()
			if !ok || k != w {
				return false
			}
		}
		_, _, ok := h.RemoveMin()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncConcurrent(t *testing.T) {
	s := NewSync[int64]()
	var addSum, remSum int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 9))
			localAdd, localRem := int64(0), int64(0)
			for i := 0; i < 2000; i++ {
				if r.IntN(2) == 0 {
					k := int64(r.IntN(1000))
					s.Add(k, k)
					localAdd += k
				} else if k, v, ok := s.RemoveMin(); ok {
					if k != v {
						t.Error("payload mismatch")
						return
					}
					localRem += k
				}
			}
			mu.Lock()
			addSum += localAdd
			remSum += localRem
			mu.Unlock()
		}()
	}
	wg.Wait()
	for {
		k, _, ok := s.RemoveMin()
		if !ok {
			break
		}
		remSum += k
	}
	if addSum != remSum {
		t.Fatalf("added %d != removed %d", addSum, remSum)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
}
