// Package pairheap implements a sequential pairing heap (Fredman, Sedgewick,
// Sleator, Tarjan 1986) plus a monitor-style synchronized wrapper — an
// alternative linearizable base object for the boosted priority queue,
// demonstrating that boosting treats heaps as black boxes: the same wrapper
// runs over the fine-grained Hunt heap or over this coarse-locked pairing
// heap without change.
package pairheap

import "sync"

type node[V any] struct {
	key            int64
	val            V
	child, sibling *node[V]
}

// Heap is a sequential min pairing heap. Duplicate keys are allowed. Not
// safe for concurrent use; see Sync.
type Heap[V any] struct {
	root *node[V]
	size int
}

// New returns an empty heap.
func New[V any]() *Heap[V] { return &Heap[V]{} }

// Len returns the number of items.
func (h *Heap[V]) Len() int { return h.size }

func merge[V any](a, b *node[V]) *node[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.key < a.key {
		a, b = b, a
	}
	// b becomes a's first child.
	b.sibling = a.child
	a.child = b
	return a
}

// Add inserts val with the given priority key. It always succeeds (the heap
// is unbounded) and returns true to satisfy the boosted heap's BaseHeap
// contract.
func (h *Heap[V]) Add(key int64, val V) bool {
	h.root = merge(h.root, &node[V]{key: key, val: val})
	h.size++
	return true
}

// Min returns the smallest key and its value without removing them.
func (h *Heap[V]) Min() (int64, V, bool) {
	if h.root == nil {
		var zero V
		return 0, zero, false
	}
	return h.root.key, h.root.val, true
}

// RemoveMin removes and returns the item with the smallest key, using the
// standard two-pass pairing of the root's children.
func (h *Heap[V]) RemoveMin() (int64, V, bool) {
	if h.root == nil {
		var zero V
		return 0, zero, false
	}
	k, v := h.root.key, h.root.val
	h.root = mergePairs(h.root.child)
	h.size--
	return k, v, true
}

// mergePairs merges a sibling list pairwise left to right, then folds the
// results right to left (iteratively, to avoid deep recursion on degenerate
// shapes).
func mergePairs[V any](first *node[V]) *node[V] {
	var pairs []*node[V]
	for first != nil {
		a := first
		b := first.sibling
		var rest *node[V]
		if b != nil {
			rest = b.sibling
			b.sibling = nil
		}
		a.sibling = nil
		pairs = append(pairs, merge(a, b))
		first = rest
	}
	var root *node[V]
	for i := len(pairs) - 1; i >= 0; i-- {
		root = merge(root, pairs[i])
	}
	return root
}

// Sync wraps a Heap with a single mutex, yielding a linearizable base
// object with no thread-level concurrency (the priority-queue analogue of
// the paper's synchronized red-black tree).
type Sync[V any] struct {
	mu   sync.Mutex
	heap *Heap[V]
}

// NewSync returns an empty synchronized pairing heap.
func NewSync[V any]() *Sync[V] {
	return &Sync[V]{heap: New[V]()}
}

// Add inserts val with the given priority key.
func (s *Sync[V]) Add(key int64, val V) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Add(key, val)
}

// RemoveMin removes and returns the smallest item.
func (s *Sync[V]) RemoveMin() (int64, V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.RemoveMin()
}

// Min returns the smallest item without removing it.
func (s *Sync[V]) Min() (int64, V, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Min()
}

// Len returns the number of items.
func (s *Sync[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heap.Len()
}
