package cheap

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestEmpty(t *testing.T) {
	h := NewCapacity[int](16)
	if _, _, ok := h.RemoveMin(); ok {
		t.Fatal("RemoveMin on empty returned ok")
	}
	if _, _, ok := h.Min(); ok {
		t.Fatal("Min on empty returned ok")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestAddRemoveSingle(t *testing.T) {
	h := NewCapacity[string](16)
	if !h.Add(5, "five") {
		t.Fatal("Add failed")
	}
	if h.Len() != 1 {
		t.Fatalf("Len = %d", h.Len())
	}
	p, v, ok := h.Min()
	if !ok || p != 5 || v != "five" {
		t.Fatalf("Min = %d,%q,%v", p, v, ok)
	}
	p, v, ok = h.RemoveMin()
	if !ok || p != 5 || v != "five" {
		t.Fatalf("RemoveMin = %d,%q,%v", p, v, ok)
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d after removal", h.Len())
	}
}

func TestHeapsort(t *testing.T) {
	h := NewCapacity[int](1 << 12)
	r := rand.New(rand.NewPCG(11, 12))
	var want []int64
	for i := 0; i < 2000; i++ {
		p := int64(r.IntN(500)) // duplicates likely
		want = append(want, p)
		if !h.Add(p, i) {
			t.Fatal("Add failed")
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, w := range want {
		p, _, ok := h.RemoveMin()
		if !ok {
			t.Fatalf("RemoveMin %d: empty", i)
		}
		if p != w {
			t.Fatalf("RemoveMin %d = %d, want %d", i, p, w)
		}
	}
	if _, _, ok := h.RemoveMin(); ok {
		t.Fatal("heap not empty at end")
	}
}

func TestCapacityLimit(t *testing.T) {
	h := NewCapacity[int](3)
	for i := 0; i < 3; i++ {
		if !h.Add(int64(i), i) {
			t.Fatalf("Add %d failed below capacity", i)
		}
	}
	// Capacity rounds up to a full level; fill the rest, then overflow.
	for h.Add(99, 99) {
		if h.Len() > 1<<10 {
			t.Fatal("capacity bound never enforced")
		}
	}
	if _, _, ok := h.RemoveMin(); !ok {
		t.Fatal("heap should still drain after overflow")
	}
}

func TestSlotForBijectionPerLevel(t *testing.T) {
	// slotFor must be a bijection on {1..n} for full levels, and every
	// item's parent slot must be occupied by an earlier item.
	const n = 1 << 10
	seen := map[int]int{}
	for i := 1; i <= n; i++ {
		s := slotFor(i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("slotFor(%d) = %d already used by item %d", i, s, prev)
		}
		seen[s] = i
		if s > 1 {
			parent := s / 2
			pi, ok := seen[parent]
			if !ok || pi >= i {
				t.Fatalf("item %d at slot %d: parent slot %d filled by later item %d", i, s, parent, pi)
			}
		}
	}
	// Left children fill before right children (sift-down relies on it).
	for s := 2; s < n; s += 2 {
		li, lok := seen[s]
		ri, rok := seen[s+1]
		if lok && rok && li >= ri {
			t.Fatalf("right child slot %d (item %d) filled before left slot %d (item %d)", s+1, ri, s, li)
		}
	}
}

func TestConcurrentAddsThenDrain(t *testing.T) {
	h := NewCapacity[int](1 << 16)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 21))
			for i := 0; i < perG; i++ {
				if !h.Add(int64(r.IntN(10000)), g*perG+i) {
					t.Error("Add failed")
					return
				}
			}
		}()
	}
	wg.Wait()
	if h.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", h.Len(), goroutines*perG)
	}
	// Drain sequentially; priorities must come out non-decreasing and every
	// payload must appear exactly once.
	seen := make([]bool, goroutines*perG)
	prev := int64(-1)
	for i := 0; i < goroutines*perG; i++ {
		p, v, ok := h.RemoveMin()
		if !ok {
			t.Fatalf("drain %d: empty early", i)
		}
		if p < prev {
			t.Fatalf("drain %d: priority %d < previous %d", i, p, prev)
		}
		prev = p
		if seen[v] {
			t.Fatalf("payload %d delivered twice", v)
		}
		seen[v] = true
	}
}

func TestConcurrentMixedAddRemove(t *testing.T) {
	h := NewCapacity[int64](1 << 16)
	const goroutines = 8
	const perG = 3000
	var added, removed atomic.Int64
	var removedSum, addedSum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(g), 33))
			for i := 0; i < perG; i++ {
				if r.IntN(2) == 0 {
					p := int64(r.IntN(1000))
					if h.Add(p, p) {
						added.Add(1)
						addedSum.Add(p)
					}
				} else {
					if p, v, ok := h.RemoveMin(); ok {
						if p != v {
							t.Errorf("payload %d does not match priority %d", v, p)
							return
						}
						removed.Add(1)
						removedSum.Add(p)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Len(); int64(got) != added.Load()-removed.Load() {
		t.Fatalf("Len = %d, want added-removed = %d", got, added.Load()-removed.Load())
	}
	// Drain the remainder; totals must balance.
	for {
		p, _, ok := h.RemoveMin()
		if !ok {
			break
		}
		removedSum.Add(p)
	}
	if removedSum.Load() != addedSum.Load() {
		t.Fatalf("sum of removed priorities %d != sum added %d (lost or duplicated items)",
			removedSum.Load(), addedSum.Load())
	}
}

func TestMinDoesNotRemove(t *testing.T) {
	h := NewCapacity[int](16)
	h.Add(3, 3)
	h.Add(1, 1)
	h.Add(2, 2)
	for i := 0; i < 5; i++ {
		if p, _, ok := h.Min(); !ok || p != 1 {
			t.Fatalf("Min = %d,%v", p, ok)
		}
	}
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestInterleavedProducerConsumer(t *testing.T) {
	// One producer inserting ascending priorities, one consumer removing:
	// every removed priority must have been produced, and the consumer
	// never observes a priority twice.
	h := NewCapacity[int64](1 << 14)
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := int64(0); i < n; i++ {
			for !h.Add(i, i) {
			}
		}
	}()
	seen := make([]bool, n)
	go func() {
		defer wg.Done()
		got := 0
		for got < n {
			if p, _, ok := h.RemoveMin(); ok {
				if seen[p] {
					t.Errorf("priority %d removed twice", p)
					return
				}
				seen[p] = true
				got++
			}
		}
	}()
	wg.Wait()
	for i := range seen {
		if !seen[i] {
			t.Fatalf("priority %d never consumed", i)
		}
	}
}

func BenchmarkConcurrentAddRemove(b *testing.B) {
	h := NewCapacity[int](1 << 20)
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewPCG(rand.Uint64(), 1))
		for pb.Next() {
			if r.IntN(2) == 0 {
				h.Add(int64(r.IntN(1<<16)), 0)
			} else {
				h.RemoveMin()
			}
		}
	})
}
