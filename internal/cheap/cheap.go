// Package cheap implements a linearizable concurrent min-heap with
// fine-grained per-slot locking, following Hunt, Michael, Parthasarathy and
// Scott, "An efficient algorithm for concurrent priority queue heaps" (1996)
// — the style of fine-grained heap the paper's boosted priority queue builds
// on (§3.2: "This implementation uses fine-grained locks").
//
// Insertions bubble bottom-up from bit-reversed leaf positions so that
// consecutive insertions take disjoint tree paths; deletions sift top-down
// with hand-over-hand locking. A short global lock protects only the size
// counter, so add() calls by different threads proceed concurrently — the
// property the boosted heap exploits by granting add() only a shared
// abstract lock.
package cheap

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Slot tags. A positive tag is the unique id of an in-flight insertion that
// still owns the item (it may still be bubbling the item up).
const (
	tagEmpty     int64 = 0
	tagAvailable int64 = -1
)

type slot[V any] struct {
	mu   sync.Mutex
	tag  int64
	prio int64
	val  V
}

// Heap is a concurrent min-heap of (priority, value) items with a fixed
// capacity. Duplicate priorities are allowed. Create with New.
type Heap[V any] struct {
	heapLock sync.Mutex
	count    int // number of items; protected by heapLock
	slots    []slot[V]
	opIDs    atomic.Int64
}

// DefaultCapacity is the slot-array size used by New.
const DefaultCapacity = 1 << 20

// New returns an empty heap with DefaultCapacity slots.
func New[V any]() *Heap[V] { return NewCapacity[V](DefaultCapacity) }

// NewCapacity returns an empty heap holding at least capacity items. The
// effective capacity rounds up to a full bottom level (2^k - 1) because
// bit-reversed insertion can place the n-th item anywhere within n's level.
func NewCapacity[V any](capacity int) *Heap[V] {
	if capacity < 1 {
		capacity = 1
	}
	full := 1
	for full-1 < capacity {
		full <<= 1
	}
	return &Heap[V]{slots: make([]slot[V], full)} // 1-based; indices 1..full-1
}

// slotFor maps the n-th item (1-based) to its array position: items fill
// levels left to right logically, but within a level the order is
// bit-reversed so consecutive insertions descend through different subtrees.
func slotFor(n int) int {
	if n <= 1 {
		return n
	}
	level := bits.Len(uint(n)) - 1 // floor(log2 n)
	base := 1 << level
	offset := uint(n - base)
	rev := bits.Reverse(offset) >> (bits.UintSize - level)
	return base + int(rev)
}

// Len returns the current number of items.
func (h *Heap[V]) Len() int {
	h.heapLock.Lock()
	n := h.count
	h.heapLock.Unlock()
	return n
}

// Add inserts val with the given priority. It returns false if the heap is
// at capacity.
func (h *Heap[V]) Add(prio int64, val V) bool {
	id := h.opIDs.Add(1)

	h.heapLock.Lock()
	if h.count+1 >= len(h.slots) {
		h.heapLock.Unlock()
		return false
	}
	h.count++
	i := slotFor(h.count)
	h.slots[i].mu.Lock()
	h.heapLock.Unlock()

	h.slots[i].tag = id
	h.slots[i].prio = prio
	h.slots[i].val = val
	h.slots[i].mu.Unlock()

	// Bubble the item up, chasing it if deletions move it (tag protocol of
	// Hunt et al.).
	for i > 1 {
		parent := i / 2
		h.slots[parent].mu.Lock()
		h.slots[i].mu.Lock()
		switch {
		case h.slots[parent].tag == tagAvailable && h.slots[i].tag == id:
			if h.slots[i].prio < h.slots[parent].prio {
				h.swap(parent, i)
				h.slots[i].mu.Unlock()
				h.slots[parent].mu.Unlock()
				i = parent
			} else {
				h.slots[i].tag = tagAvailable
				h.slots[i].mu.Unlock()
				h.slots[parent].mu.Unlock()
				return true
			}
		case h.slots[parent].tag == tagEmpty:
			// The region above was consumed: our item was deleted
			// while still in flight. Nothing left to publish.
			h.slots[i].mu.Unlock()
			h.slots[parent].mu.Unlock()
			return true
		case h.slots[i].tag != id:
			// A sift-down moved our item up; chase it.
			h.slots[i].mu.Unlock()
			h.slots[parent].mu.Unlock()
			i = parent
		default:
			// Parent is itself a mid-flight insertion; let it finish.
			h.slots[i].mu.Unlock()
			h.slots[parent].mu.Unlock()
			runtime.Gosched()
		}
	}
	if i == 1 {
		h.slots[1].mu.Lock()
		if h.slots[1].tag == id {
			h.slots[1].tag = tagAvailable
		}
		h.slots[1].mu.Unlock()
	}
	return true
}

// swap exchanges the full contents (tag, priority, value) of two locked
// slots.
func (h *Heap[V]) swap(a, b int) {
	sa, sb := &h.slots[a], &h.slots[b]
	sa.tag, sb.tag = sb.tag, sa.tag
	sa.prio, sb.prio = sb.prio, sa.prio
	sa.val, sb.val = sb.val, sa.val
}

// RemoveMin removes and returns the item with the smallest priority.
// ok is false if the heap was empty.
func (h *Heap[V]) RemoveMin() (prio int64, val V, ok bool) {
	var zero V

	h.heapLock.Lock()
	if h.count == 0 {
		h.heapLock.Unlock()
		return 0, zero, false
	}
	last := slotFor(h.count)
	h.count--
	h.slots[last].mu.Lock()
	h.heapLock.Unlock()

	// Grab the last item (regardless of tag: a mid-flight insertion's data
	// is already written, and its owner detects the removal via the EMPTY
	// tag when chasing).
	lp, lv := h.slots[last].prio, h.slots[last].val
	h.slots[last].tag = tagEmpty
	h.slots[last].val = zero
	h.slots[last].mu.Unlock()

	if last == 1 {
		return lp, lv, true
	}

	h.slots[1].mu.Lock()
	if h.slots[1].tag == tagEmpty {
		// The root was the slot we just emptied... impossible since
		// last != 1, but a concurrent delete may have drained the heap
		// through the root. Re-insert our grabbed item? Cannot happen:
		// deletes always refill the root before unlocking it, and the
		// root slot is only emptied when it is the last slot, which is
		// serialized by heapLock. Treat defensively as corrupt state.
		h.slots[1].tag = tagAvailable
		h.slots[1].prio = lp
		h.slots[1].val = lv
		h.slots[1].mu.Unlock()
		return lp, lv, true
	}
	prio, val = h.slots[1].prio, h.slots[1].val
	h.slots[1].tag = tagAvailable
	h.slots[1].prio = lp
	h.slots[1].val = lv

	// Sift the displaced item down with hand-over-hand locking.
	i := 1
	for {
		left, right := 2*i, 2*i+1
		if left >= len(h.slots) {
			break
		}
		h.slots[left].mu.Lock()
		child := left
		if right < len(h.slots) {
			h.slots[right].mu.Lock()
			switch {
			case h.slots[left].tag == tagEmpty:
				// Left empty implies right empty too (fill order),
				// but check right independently for safety.
				h.slots[left].mu.Unlock()
				if h.slots[right].tag == tagEmpty {
					h.slots[right].mu.Unlock()
					child = 0
				} else {
					child = right
				}
			case h.slots[right].tag == tagEmpty:
				h.slots[right].mu.Unlock()
			case h.slots[right].prio < h.slots[left].prio:
				h.slots[left].mu.Unlock()
				child = right
			default:
				h.slots[right].mu.Unlock()
			}
		} else if h.slots[left].tag == tagEmpty {
			h.slots[left].mu.Unlock()
			child = 0
		}
		if child == 0 {
			break
		}
		if h.slots[child].tag != tagEmpty && h.slots[child].prio < h.slots[i].prio {
			h.swap(i, child)
			h.slots[i].mu.Unlock()
			i = child
		} else {
			h.slots[child].mu.Unlock()
			break
		}
	}
	h.slots[i].mu.Unlock()
	return prio, val, true
}

// Min returns the smallest priority and its value without removing them.
// ok is false if the heap is empty. Min observes only published (AVAILABLE)
// state at the root.
func (h *Heap[V]) Min() (prio int64, val V, ok bool) {
	h.slots[1].mu.Lock()
	defer h.slots[1].mu.Unlock()
	if h.slots[1].tag == tagEmpty {
		var zero V
		return 0, zero, false
	}
	return h.slots[1].prio, h.slots[1].val, true
}
