package stm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTimeout is registered as a contention-kind abort cause so admission and
// livelock tests can fabricate lock-timeout aborts without a lock manager.
var fakeTimeout = errors.New("admission_test: fabricated lock timeout")

func init() { RegisterAbortKind(fakeTimeout, KindLockTimeout) }

// blockedTx starts a transaction on sys that holds its admission slot until
// release is closed, and returns once the transaction is inside its body.
func blockedTx(t *testing.T, sys *System, wg *sync.WaitGroup, release chan struct{}) {
	t.Helper()
	entered := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := sys.Atomic(func(tx *Tx) error {
			close(entered)
			<-release
			return nil
		})
		if err != nil {
			t.Errorf("slot-holding tx failed: %v", err)
		}
	}()
	<-entered
}

// TestAdmissionFailFast: with MaxConcurrent=1 and no AdmissionTimeout, a
// second concurrent Atomic call is shed immediately with
// ErrContentionCollapse.
func TestAdmissionFailFast(t *testing.T) {
	sys := NewSystem(Config{MaxConcurrent: 1})
	release := make(chan struct{})
	var wg sync.WaitGroup
	blockedTx(t, sys, &wg, release)

	err := sys.Atomic(func(tx *Tx) error { return nil })
	if !errors.Is(err, ErrContentionCollapse) {
		t.Fatalf("err = %v, want ErrContentionCollapse", err)
	}
	close(release)
	wg.Wait()
	st := sys.Stats()
	if st.AdmissionWaits != 1 || st.AdmissionRejects != 1 {
		t.Errorf("admission counters waits=%d rejects=%d, want 1/1", st.AdmissionWaits, st.AdmissionRejects)
	}
}

// TestAdmissionQueueThenAdmit: with an AdmissionTimeout the second call
// queues and runs once the slot frees.
func TestAdmissionQueueThenAdmit(t *testing.T) {
	sys := NewSystem(Config{MaxConcurrent: 1, AdmissionTimeout: 2 * time.Second})
	release := make(chan struct{})
	var wg sync.WaitGroup
	blockedTx(t, sys, &wg, release)

	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	ran := false
	if err := sys.Atomic(func(tx *Tx) error { ran = true; return nil }); err != nil || !ran {
		t.Fatalf("queued call: err=%v ran=%v, want nil/true", err, ran)
	}
	wg.Wait()
	st := sys.Stats()
	if st.AdmissionWaits != 1 || st.AdmissionRejects != 0 {
		t.Errorf("admission counters waits=%d rejects=%d, want 1/0", st.AdmissionWaits, st.AdmissionRejects)
	}
}

// TestAdmissionTimeoutRejects: a queued call whose wait outlives
// AdmissionTimeout is shed.
func TestAdmissionTimeoutRejects(t *testing.T) {
	sys := NewSystem(Config{MaxConcurrent: 1, AdmissionTimeout: 10 * time.Millisecond})
	release := make(chan struct{})
	var wg sync.WaitGroup
	blockedTx(t, sys, &wg, release)

	err := sys.Atomic(func(tx *Tx) error { return nil })
	if !errors.Is(err, ErrContentionCollapse) {
		t.Fatalf("err = %v, want ErrContentionCollapse", err)
	}
	close(release)
	wg.Wait()
}

// TestAdmissionCancelWhileQueued: a cancelled context wins over the admission
// queue — the caller gets ctx.Err(), not a slot.
func TestAdmissionCancelWhileQueued(t *testing.T) {
	sys := NewSystem(Config{MaxConcurrent: 1, AdmissionTimeout: 10 * time.Second})
	release := make(chan struct{})
	var wg sync.WaitGroup
	blockedTx(t, sys, &wg, release)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sys.AtomicCtx(ctx, func(tx *Tx) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancel took %v to unblock the admission queue", elapsed)
	}
	close(release)
	wg.Wait()
}

// TestLivelockDetectorSheds: an unbroken streak of contention-kind aborts
// with no commits anywhere in the system must be shed with
// ErrContentionCollapse after 2*CollapseAfter aborts, not retried forever.
func TestLivelockDetectorSheds(t *testing.T) {
	const collapseAfter = 3
	sys := NewSystem(Config{
		CollapseAfter: collapseAfter,
		BackoffBase:   time.Nanosecond,
		BackoffCap:    time.Nanosecond,
	})
	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		tx.Abort(fakeTimeout)
		return nil
	})
	if !errors.Is(err, ErrContentionCollapse) {
		t.Fatalf("err = %v, want ErrContentionCollapse", err)
	}
	if attempts != 2*collapseAfter {
		t.Errorf("shed after %d attempts, want %d", attempts, 2*collapseAfter)
	}
	if st := sys.Stats(); st.Collapses != 1 {
		t.Errorf("Collapses = %d, want 1", st.Collapses)
	}
}

// TestLivelockDetectorToleratesProgress: the same abort streak is NOT
// collapse while other transactions keep committing — the detector
// re-baselines and the unlucky call eventually wins.
func TestLivelockDetectorToleratesProgress(t *testing.T) {
	sys := NewSystem(Config{
		CollapseAfter: 3,
		BackoffBase:   100 * time.Microsecond,
		BackoffCap:    200 * time.Microsecond,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // steady committer: the system is making progress
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sys.Atomic(func(tx *Tx) error { return nil })
			}
		}
	}()

	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts <= 30 { // ten detector windows' worth of contention aborts
			tx.Abort(fakeTimeout)
		}
		return nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("err = %v, want commit (system was making progress)", err)
	}
	if st := sys.Stats(); st.Collapses != 0 {
		t.Errorf("Collapses = %d, want 0", st.Collapses)
	}
}

// TestLivelockDetectorResetOnOtherAbortKinds: non-contention aborts break the
// streak, so mixed abort causes never trip the detector.
func TestLivelockDetectorResetOnOtherAbortKinds(t *testing.T) {
	sys := NewSystem(Config{
		CollapseAfter: 2,
		BackoffBase:   time.Nanosecond,
		BackoffCap:    time.Nanosecond,
	})
	other := errors.New("user-level conflict")
	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts <= 12 {
			if attempts%2 == 0 {
				tx.Abort(other) // breaks the contention streak
			}
			tx.Abort(fakeTimeout)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want commit (streak never matured)", err)
	}
	if st := sys.Stats(); st.Collapses != 0 {
		t.Errorf("Collapses = %d, want 0", st.Collapses)
	}
}
