package stm_test

// Ordering pins for the durability path. The WAL's correctness rests on
// commit-time sequencing guarantees that nothing else in the test suite
// nails down explicitly:
//
//  1. when the DurabilitySink's Commit runs, every Redo op of the
//     transaction is present, in emission order, and the AtCommit handlers
//     have already run (the sink sees the final redo stream);
//  2. the sink runs before lock release and before OnCommit disposables,
//     and its wait (the durability barrier) completes before the outcome
//     reaches the caller;
//  3. an aborting transaction never reaches the sink;
//  4. a rolled-back nested child contributes nothing to the redo stream;
//  5. a failing barrier surfaces as ErrNotDurable while the commit stands.

import (
	"errors"
	"testing"

	"tboost/internal/stm"
)

// captureSink records what it is handed and when, and can fail its barrier.
type captureSink struct {
	calls   [][]stm.RedoOp
	txIDs   []uint64
	seq     *[]string // shared event sequence, appended under the caller's control
	waitErr error
}

func (s *captureSink) Commit(txID uint64, ops []stm.RedoOp) func() error {
	cp := make([]stm.RedoOp, len(ops))
	for i, op := range ops {
		cp[i] = stm.RedoOp{Obj: op.Obj, Kind: op.Kind, Data: append([]byte(nil), op.Data...)}
	}
	s.calls = append(s.calls, cp)
	s.txIDs = append(s.txIDs, txID)
	if s.seq != nil {
		*s.seq = append(*s.seq, "sink")
	}
	return func() error {
		if s.seq != nil {
			*s.seq = append(*s.seq, "wait")
		}
		return s.waitErr
	}
}

func TestSinkSeesAllPriorOpsInOrder(t *testing.T) {
	var seq []string
	sink := &captureSink{seq: &seq}
	sys := stm.NewSystem(stm.Config{Durability: sink})

	err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 1, Data: []byte{10}})
		tx.AtCommit(func() {
			// AtCommit runs at the commit point; an op emitted here (as a
			// commit-time touch-up would) must still reach the sink.
			seq = append(seq, "atCommit")
			tx.Redo(stm.RedoOp{Obj: 1, Kind: 2, Data: []byte{11}})
		})
		tx.OnCommit(func() { seq = append(seq, "onCommit") })
		tx.Redo(stm.RedoOp{Obj: 2, Kind: 1, Data: []byte{12}})
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if len(sink.calls) != 1 {
		t.Fatalf("sink called %d times, want 1", len(sink.calls))
	}
	ops := sink.calls[0]
	if len(ops) != 3 || ops[0].Data[0] != 10 || ops[1].Data[0] != 12 || ops[2].Data[0] != 11 {
		t.Fatalf("sink saw %+v, want emission order 10,12,11", ops)
	}
	want := []string{"atCommit", "sink", "wait", "onCommit"}
	if len(seq) != len(want) {
		t.Fatalf("sequence = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", seq, want)
		}
	}
}

func TestSinkRunsBeforeLockRelease(t *testing.T) {
	// The log's replay-order argument needs conflicting transactions to
	// enter the sink in serialization order, which holds iff the sink runs
	// under the transaction's abstract locks. Pin it directly: a lock
	// registered with the transaction must still be held (unreleased) when
	// the sink runs.
	released := false
	sink := &captureSink{}
	probe := &orderProbe{sink: sink, released: &released}
	sys := stm.NewSystem(stm.Config{Durability: probe})

	err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 1})
		// Locks release in reverse registration order after the sink call;
		// model one with the exported registration hook.
		tx.RegisterLock(markUnlocker{released: &released})
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if !probe.sawHeld {
		t.Fatal("sink ran after lock release")
	}
	if !released {
		t.Fatal("lock never released")
	}
}

type markUnlocker struct{ released *bool }

func (m markUnlocker) Unlock(*stm.Tx) { *m.released = true }

type orderProbe struct {
	sink     *captureSink
	released *bool
	sawHeld  bool
}

func (p *orderProbe) Commit(txID uint64, ops []stm.RedoOp) func() error {
	p.sawHeld = !*p.released
	return p.sink.Commit(txID, ops)
}

func TestAbortNeverReachesSink(t *testing.T) {
	sink := &captureSink{}
	sys := stm.NewSystem(stm.Config{Durability: sink})
	boom := errors.New("boom")
	if err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 1})
		return boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(sink.calls) != 0 {
		t.Fatalf("sink called on abort: %+v", sink.calls)
	}
	// The descriptor is recycled; the next transaction must not inherit the
	// aborted one's redo ops.
	if err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 2, Kind: 2})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sink.calls) != 1 || len(sink.calls[0]) != 1 || sink.calls[0][0].Obj != 2 {
		t.Fatalf("stale redo leaked into next tx: %+v", sink.calls)
	}
}

func TestNestedRollbackDropsChildRedo(t *testing.T) {
	sink := &captureSink{}
	sys := stm.NewSystem(stm.Config{Durability: sink})
	childErr := errors.New("child")
	err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 1})
		if err := tx.Nested(func(tx *stm.Tx) error {
			tx.Redo(stm.RedoOp{Obj: 1, Kind: 2})
			tx.Redo(stm.RedoOp{Obj: 1, Kind: 3})
			return childErr
		}); !errors.Is(err, childErr) {
			return err
		}
		if n := tx.RedoLen(); n != 1 {
			t.Errorf("RedoLen after child rollback = %d, want 1", n)
		}
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 4})
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	ops := sink.calls[0]
	if len(ops) != 2 || ops[0].Kind != 1 || ops[1].Kind != 4 {
		t.Fatalf("sink saw %+v, want kinds 1,4 only", ops)
	}
}

func TestFailedBarrierSurfacesErrNotDurable(t *testing.T) {
	cause := errors.New("disk gone")
	sink := &captureSink{waitErr: cause}
	sys := stm.NewSystem(stm.Config{Durability: sink})
	committed := false
	err := sys.Atomic(func(tx *stm.Tx) error {
		tx.Redo(stm.RedoOp{Obj: 1, Kind: 1})
		tx.OnCommit(func() { committed = true })
		return nil
	})
	if !errors.Is(err, stm.ErrNotDurable) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want ErrNotDurable wrapping the cause", err)
	}
	if !committed {
		t.Fatal("OnCommit skipped: the tx DID commit in memory")
	}
	if got := sys.Stats().Commits; got != 1 {
		t.Fatalf("Commits = %d, want 1 (not-durable still commits)", got)
	}
	// The failure must not stick to the recycled descriptor.
	if err := sys.Atomic(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatalf("next tx inherited durability failure: %v", err)
	}
}

func TestReadOnlyTxSkipsSink(t *testing.T) {
	sink := &captureSink{}
	sys := stm.NewSystem(stm.Config{Durability: sink})
	if err := sys.Atomic(func(tx *stm.Tx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if len(sink.calls) != 0 {
		t.Fatalf("read-only tx reached the sink: %+v", sink.calls)
	}
}
