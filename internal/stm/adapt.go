package stm

// Adaptive lock-granularity support: per-transaction discipline latches and
// the migration counters.
//
// An adaptive boosted object (internal/boost) changes its abstract-lock
// discipline at runtime — one coarse lock while quiet, a per-key table under
// contention. Two-phase locking survives the switch only if each transaction
// is internally consistent: every locked call a transaction makes on one
// object must go through the same discipline, or a migration landing between
// two ops of one transaction would split its footprint across lock tables
// and conflicting transactions could stop sharing any lock. The latch list
// here provides that consistency, mirroring the versLive latch: the first
// lock demand a transaction makes on an adaptive object records the object's
// mode, and every later demand (including the commit-time lazy drain) reuses
// the recorded mode. The latch dies with the attempt — a retry re-reads the
// live mode with an empty footprint, which is always safe.
//
// The runtime stores an opaque uint32 per object; the mode encoding belongs
// to internal/boost. Lookup is a linear scan over a pooled slice, exactly
// like the lazy and version attach lists: transactions touch a handful of
// adaptive objects, and steady state allocates nothing.

// discAttach pairs an object identity with its latched lock-discipline mode.
type discAttach struct {
	obj  any
	mode uint32
}

// DisciplineLookup returns the mode previously latched for obj and whether
// one was latched this attempt.
func (tx *Tx) DisciplineLookup(obj any) (uint32, bool) {
	tx.stateLock()
	defer tx.stateUnlock()
	for i := range tx.disc {
		if tx.disc[i].obj == obj {
			return tx.disc[i].mode, true
		}
	}
	return 0, false
}

// DisciplineLatch records mode as obj's lock discipline for the rest of this
// attempt. Callers must not latch twice for the same object (use
// DisciplineLookup first); the adaptive engine's accessor enforces this.
func (tx *Tx) DisciplineLatch(obj any, mode uint32) {
	tx.stateLock()
	tx.disc = append(tx.disc, discAttach{obj: obj, mode: mode})
	tx.stateUnlock()
}

// DisciplineCount reports how many discipline latches are held (tests).
func (tx *Tx) DisciplineCount() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.disc)
}

// clearDisc drops every discipline latch, keeping the slice capacity for the
// descriptor's next life. Called when the attempt's lock footprint is
// released: a nested child abort keeps its latches, like its locks.
func (tx *Tx) clearDisc() {
	for i := range tx.disc {
		tx.disc[i] = discAttach{}
	}
	tx.disc = tx.disc[:0]
}

// CountPromotion records one coarse-to-keyed granularity promotion completed
// by an adaptive boosted object on this system.
func (s *System) CountPromotion() { s.stats.add(0, cPromotions) }

// CountDemotion records one keyed-to-coarse granularity demotion completed by
// an adaptive boosted object on this system.
func (s *System) CountDemotion() { s.stats.add(0, cDemotions) }
