package stm

import "sync"

// Parallel runs the given functions concurrently, all on behalf of tx — the
// multi-threaded-transactions extension from the paper's conclusion
// ("Transactions could be extended to encompass multiple threads, using
// abstract locks for transactional synchronization, and relying on the base
// object for thread-level synchronization").
//
// All branches share the transaction's abstract locks, undo log and
// deferred handlers; the base objects' own thread-level synchronization
// keeps concurrent branch operations linearizable, exactly as it does for
// operations of different transactions. Parallel returns after every branch
// finishes. If any branch returns an error, the first one (in argument
// order) is returned; the caller decides whether to fail the transaction.
// If any branch aborts the transaction (lock timeout, tx.Abort), the abort
// proceeds after all branches have stopped.
//
// Parallel supports boosted objects (package core). Objects that keep
// unsynchronized per-transaction state in extension slots — the rwstm
// baseline's read/write sets — must not be used from concurrent branches.
func (tx *Tx) Parallel(fns ...func(tx *Tx) error) error {
	// Escalate the descriptor out of single-owner mode before any branch
	// can run: from here on, log/lock/handler accessors take tx.mu. The
	// go statements below publish the flag to every branch, and the flag
	// stays set for the rest of the attempt — escalation is one-way, so a
	// branch never races a fast-path append from the coordinator.
	tx.escalate()
	errs := make([]error, len(fns))
	panics := make([]any, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		i, fn := i, fn
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
			}()
			errs[i] = fn(tx)
		}()
	}
	wg.Wait()

	// Re-raise an abort (or any foreign panic) on the coordinating
	// goroutine so Atomic's recovery sees it, now that no branch is
	// running.
	var foreign any
	for _, p := range panics {
		if sig, ok := p.(abortSignal); ok && sig.tx == tx {
			panic(sig)
		}
		if p != nil && foreign == nil {
			foreign = p
		}
	}
	if foreign != nil {
		panic(foreign)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
