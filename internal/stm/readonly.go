package stm

// Read-only transactions over the versioned kernel.
//
// A read-only transaction pins the snapshot manager's visible sequence and
// answers reads from version chains at that sequence: no abstract-lock
// demands, no contention-policy interaction, no possibility of abort or
// wounding. Where an object keeps no history (unsynced/heap disciplines, or
// versioning disabled), its reads fall back to ordinary eager locking — the
// transaction is still read-only (mutations panic) but degrades to the
// locked discipline for those objects, and its locked reads observe live
// state rather than the pin. Snapshot guarantees therefore hold across the
// versioned objects a read-only transaction touches; mixing in unversioned
// objects yields per-object consistency only.
//
// # Activation and the epoch grace period
//
// Version bookkeeping (seeding chains, recording post-op versions) costs
// writers nothing until the first snapshot pin: each Atomic call latches the
// manager's one-way Active flag once, at epoch entry — a single atomic load.
// The first pin flips the flag and then waits out a grace period — every
// transaction that may have begun before the flip (and so latched false,
// mutating without recording versions) must finish before the pin is
// registered. The grace period is implemented with two generations of
// sharded begun/ended counters: every Atomic call enters the current
// generation on start and exits it on return; activation flips the flag,
// bumps the generation, and spins until the old generation drains. The
// latch makes version recording all-or-nothing per call: a transaction
// either seeds and records for every mutation or for none, never flipping
// mid-flight (a mid-flight flip could seed a chain floor from the
// transaction's own uncommitted state — the floor would outlive its abort).
// Chains are empty at activation, so readers fall back to the base object
// for pre-activation state — safe precisely because the drain guarantees no
// transaction is mid-mutation without having seeded first.
//
// Do not open a snapshot or run a read-only transaction from inside another
// transaction's body on the same system: if that transaction predates
// activation, the grace period waits for it while it waits for the grace
// period. The drain is bounded (activationDrainBudget) so this misuse
// surfaces as a panic naming the hazard rather than a silent permanent
// hang.

import (
	"context"
	"sync/atomic"
	"time"
)

// roParams carries the read-only mode through the retry loop.
type roParams struct {
	ro  bool
	seq uint64 // pinned snapshot sequence; valid when ro

	// versLive is the per-call versioning latch, filled in by runWith right
	// after the epoch entry (never by callers): every attempt of the call
	// either records versions for all its mutations or for none.
	versLive bool
}

// AtomicRO executes fn as a read-only transaction on the default system.
// See System.AtomicRO.
func AtomicRO(fn func(tx *Tx) error) error { return Default.AtomicRO(fn) }

// AtomicRO executes fn as a read-only transaction: a snapshot of the
// system's versioned state is pinned for the duration of the call, and reads
// of versioned objects answer from version chains at the pinned sequence
// with no lock demands and no possibility of abort or wounding. Mutating
// calls (anything that logs an inverse or registers deferred effects) panic.
//
// The first read-only call on a system activates version retention and waits
// a grace period for in-flight writers; subsequent calls pin in O(1). For
// many reads against one snapshot, OpenSnapshot amortizes the pin.
func (s *System) AtomicRO(fn func(tx *Tx) error) error {
	seq := s.pinSnapshot()
	defer s.snaps.Unpin(seq)
	return s.runWith(nil, fn, roParams{ro: true, seq: seq})
}

// AtomicROCtx is AtomicRO with deadline and cancellation, mirroring
// AtomicCtx.
func (s *System) AtomicROCtx(ctx context.Context, fn func(tx *Tx) error) error {
	seq := s.pinSnapshot()
	defer s.snaps.Unpin(seq)
	if ctx == nil {
		return s.runWith(nil, fn, roParams{ro: true, seq: seq})
	}
	return s.runWith(ctx, fn, roParams{ro: true, seq: seq})
}

// Snapshot is a pinned view of a system's versioned state. All read-only
// transactions run through it observe the same sequence, so repeated scans
// are mutually consistent. A snapshot pins version history: garbage
// collection cannot reclaim chain entries its sequence still needs, which a
// long-lived snapshot makes visible as a growing VersionsRetained stat.
// Close releases the pin; using a closed snapshot panics.
type Snapshot struct {
	sys    *System
	seq    uint64
	closed atomic.Bool
}

// OpenSnapshot pins the current visible sequence and returns a handle for
// running read-only transactions against it. The caller must Close it.
func (s *System) OpenSnapshot() *Snapshot {
	return &Snapshot{sys: s, seq: s.pinSnapshot()}
}

// OpenSnapshotAtLeast is OpenSnapshot with a floor: the pin is taken only
// once the system's visible commit sequence has reached seq (a bounded spin;
// publication is in-order and never abandons a sequence). A cross-System
// coordinator uses it to pin each participant at matched sequences — at or
// past the last span it committed there — so a read-only span can never
// observe a span on one participant and miss it on another.
func (s *System) OpenSnapshotAtLeast(seq uint64) *Snapshot {
	if !s.versReady.Load() {
		s.activateVersioning()
	}
	return &Snapshot{sys: s, seq: s.snaps.PinAtLeast(seq)}
}

// Seq returns the snapshot's pinned commit sequence number.
func (sn *Snapshot) Seq() uint64 { return sn.seq }

// Atomic executes fn as a read-only transaction at the snapshot's sequence.
func (sn *Snapshot) Atomic(fn func(tx *Tx) error) error {
	if sn.closed.Load() {
		panic("stm: Atomic on closed Snapshot")
	}
	return sn.sys.runWith(nil, fn, roParams{ro: true, seq: sn.seq})
}

// AtomicCtx is Atomic honouring ctx.
func (sn *Snapshot) AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	if sn.closed.Load() {
		panic("stm: AtomicCtx on closed Snapshot")
	}
	if ctx == nil {
		return sn.sys.runWith(nil, fn, roParams{ro: true, seq: sn.seq})
	}
	return sn.sys.runWith(ctx, fn, roParams{ro: true, seq: sn.seq})
}

// Close releases the snapshot's pin, letting garbage collection reclaim
// versions only it was holding. Close is idempotent.
func (sn *Snapshot) Close() {
	if sn.closed.CompareAndSwap(false, true) {
		sn.sys.snaps.Unpin(sn.seq)
	}
}

// pinSnapshot activates versioning if this is the system's first pin (with
// the grace period — see the package comment above) and registers a pin at
// the visible sequence.
func (s *System) pinSnapshot() uint64 {
	if !s.versReady.Load() {
		s.activateVersioning()
	}
	return s.snaps.Pin()
}

// activationDrainBudget bounds how long the activation grace period waits
// for pre-activation transactions to finish before concluding it is wedged.
// A legitimate drain lasts about as long as the slowest in-flight Atomic
// call; a wait this much longer almost certainly means a transaction cannot
// finish because it is itself blocked on this activation — the documented
// nested AtomicRO/OpenSnapshot hazard — so the pinner panics with a message
// naming it instead of hanging (and taking every later pinner with it).
// Variable so tests can tighten it.
var activationDrainBudget = 30 * time.Second

// activateVersioning performs the one-way switch to version retention:
// activate the manager (new transactions start recording versions), bump the
// epoch generation, and wait until every transaction of the old generation —
// any of which may have skipped version recording — has finished. Only then
// is the system ready to pin: versReady gates concurrent first-pinners so
// none registers a pin before the grace period completes. The drain runs
// even when a previous pinner already flipped the switch but panicked on the
// drain budget: whoever sets versReady has seen the pre-activation
// generation empty.
func (s *System) activateVersioning() {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if s.versReady.Load() {
		return
	}
	if s.snaps.Activate() {
		s.gen.Add(1)
	}
	// Generation bumps serialize under epochMu (this activation, and any
	// DrainCalls barrier), so gen-1 here is exactly the generation that was
	// current when Activate flipped the flag — the one whose transactions
	// may have latched versLive=false and must be waited out.
	old := s.gen.Load() - 1
	deadline := time.Now().Add(activationDrainBudget)
	for !s.epochs[old&1].drained() {
		if time.Now().After(deadline) {
			panic("stm: snapshot activation stalled: a transaction begun " +
				"before the first pin did not finish within the drain budget — " +
				"likely AtomicRO/OpenSnapshot called from inside a running " +
				"transaction on the same System (see internal/stm/readonly.go)")
		}
		time.Sleep(10 * time.Microsecond)
	}
	s.versReady.Store(true)
}

// DrainCalls is a grace-period barrier over the system's Atomic calls: it
// opens a new call-epoch generation and returns only when every Atomic (and
// AtomicRO) call that entered the previous generation has returned. Callers
// use it to retire a per-call latched decision — any call still running under
// the old value of some latch is gone when DrainCalls returns, so a state
// machine that publishes a transitional value *before* the barrier and its
// final value *after* knows the two terminal populations never overlap (the
// adaptive lock-granularity migration in internal/boost is the client; the
// versioning activation above is the same pattern with the latch inlined).
//
// The ordering argument: the transitional publish (a seq-cst atomic store)
// precedes the generation bump (another seq-cst store) in the barrier
// goroutine, so a call whose epochEnter observed the new generation must,
// on any later load of the latched state, observe the transitional value or
// newer — never the old terminal value. Calls that raced into the old
// generation are simply waited for.
//
// DrainCalls must not be invoked from inside a transaction on the same
// System: the barrier would wait for that transaction's call to return while
// the call waits for the barrier. The drain budget turns that misuse into a
// panic naming the hazard, exactly like the activation drain.
func (s *System) DrainCalls() {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	old := s.gen.Add(1) - 1
	deadline := time.Now().Add(activationDrainBudget)
	for !s.epochs[old&1].drained() {
		if time.Now().After(deadline) {
			panic("stm: call drain stalled: a transaction begun before the " +
				"barrier did not finish within the drain budget — likely " +
				"DrainCalls (or an adaptive-lock ForcePromote/ForceDemote) " +
				"invoked from inside a running transaction on the same System")
		}
		time.Sleep(10 * time.Microsecond)
	}
}

// epochShard is one padded cell of the generation's begun/ended counters,
// sharded like the stats so concurrent transaction starts do not bounce a
// cache line.
type epochShard struct {
	begun atomic.Int64
	ended atomic.Int64
	_     [112]byte
}

// epochGen is one generation of entry/exit counters. Two generations
// alternate by parity of System.gen; the grace period drains the old one.
type epochGen struct {
	shards [statShards]epochShard
}

// drained reports whether every transaction that entered this generation has
// exited. Ended is summed before begun so a transaction completing between
// the two sums skews toward begun > ended — a false "not drained", never a
// false "drained".
func (g *epochGen) drained() bool {
	var b, e int64
	for i := range g.shards {
		e += g.shards[i].ended.Load()
	}
	for i := range g.shards {
		b += g.shards[i].begun.Load()
	}
	return b == e
}

// epochEnter counts the calling Atomic into the current generation and
// returns the shard to exit through. The re-check handles the race with a
// concurrent generation bump: if the generation moved while we were
// entering, our begun increment may postdate the drain's reads, so we back
// out and enter the new generation instead (where the activation that bumped
// it already guarantees version recording). If the re-check still sees our
// generation, the increment is ordered before the bump and the drain will
// wait for us.
func (s *System) epochEnter(hint uint64) *epochShard {
	for {
		g := s.gen.Load()
		sh := &s.epochs[g&1].shards[hint&(statShards-1)]
		sh.begun.Add(1)
		if s.gen.Load() == g {
			return sh
		}
		sh.begun.Add(-1)
	}
}
