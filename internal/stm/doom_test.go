package stm

import (
	"errors"
	"testing"
	"time"
)

func TestDoomedTransactionAbortsAtCommit(t *testing.T) {
	attempts := 0
	undone := false
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.Log(func() { undone = true })
			tx.Doom() // as a contention manager would, asynchronously
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (doomed commit must retry)", attempts)
	}
	if !undone {
		t.Fatal("doomed transaction did not roll back")
	}
}

func TestDoomedFlagAndChan(t *testing.T) {
	_ = Atomic(func(tx *Tx) error {
		if tx.Doomed() {
			t.Error("fresh tx doomed")
		}
		ch := tx.DoomChan()
		select {
		case <-ch:
			t.Error("DoomChan closed before Doom")
		default:
		}
		if tx.Attempt() == 0 {
			tx.Doom()
			if !tx.Doomed() {
				t.Error("Doomed = false after Doom")
			}
			select {
			case <-ch:
			case <-time.After(time.Second):
				t.Error("DoomChan not closed by Doom")
			}
			// A second channel request after dooming is closed too.
			select {
			case <-tx.DoomChan():
			default:
				t.Error("post-doom DoomChan not closed")
			}
			// Double Doom must not panic (double close).
			tx.Doom()
		}
		return nil
	})
}

func TestDoomChanCreatedAfterDoomIsClosed(t *testing.T) {
	_ = Atomic(func(tx *Tx) error {
		if tx.Attempt() == 0 {
			tx.Doom() // doom before any DoomChan call
			select {
			case <-tx.DoomChan():
			default:
				t.Error("lazily created DoomChan not pre-closed")
			}
		}
		return nil
	})
}

func TestCauseVisibleInOnAbort(t *testing.T) {
	myErr := errors.New("specific cause")
	attempts := 0
	var seen error
	err := Atomic(func(tx *Tx) error {
		attempts++
		if tx.Cause() != nil {
			t.Error("Cause non-nil on fresh attempt")
		}
		if attempts == 1 {
			tx.OnAbort(func() { seen = tx.Cause() })
			tx.Abort(myErr)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(seen, myErr) {
		t.Fatalf("Cause = %v, want %v", seen, myErr)
	}
}

func TestBirthStableAcrossRetries(t *testing.T) {
	var births []uint64
	var ids []uint64
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		births = append(births, tx.Birth())
		ids = append(ids, tx.ID())
		if attempts < 3 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if births[0] != births[1] || births[1] != births[2] {
		t.Fatalf("Birth changed across retries: %v", births)
	}
	if births[0] != ids[0] {
		t.Fatalf("Birth %d != first attempt id %d", births[0], ids[0])
	}
	if ids[0] == ids[1] {
		t.Fatal("retry reused id")
	}
}

func TestAtCommitRunsBeforeLockRelease(t *testing.T) {
	var order []string
	l := &seqLock{order: &order}
	err := Atomic(func(tx *Tx) error {
		tx.RegisterLock(l)
		tx.AtCommit(func() { order = append(order, "atcommit") })
		tx.OnCommit(func() { order = append(order, "oncommit") })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"atcommit", "unlock", "oncommit"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

type seqLock struct{ order *[]string }

func (l *seqLock) Unlock(tx *Tx) { *l.order = append(*l.order, "unlock") }

func TestAtCommitNotRunOnAbort(t *testing.T) {
	ran := false
	_ = Atomic(func(tx *Tx) error {
		tx.AtCommit(func() { ran = true })
		return errors.New("fail")
	})
	if ran {
		t.Fatal("AtCommit handler ran on abort")
	}
}

func TestMustAtomicOn(t *testing.T) {
	sys := NewSystem(Config{})
	ran := false
	MustAtomicOn(sys, func(tx *Tx) { ran = true })
	if !ran {
		t.Fatal("body did not run")
	}
	// Panic path.
	limited := NewSystem(Config{MaxRetries: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("MustAtomicOn did not panic on retry exhaustion")
		}
	}()
	MustAtomicOn(limited, func(tx *Tx) { tx.Abort(nil) })
}

func TestSystemAccessor(t *testing.T) {
	sys := NewSystem(Config{})
	_ = sys.Atomic(func(tx *Tx) error {
		if tx.System() != sys {
			t.Error("System() mismatch")
		}
		return nil
	})
}
