package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestAtomicCtxPreCancelled: a context cancelled before the call must prevent
// the body from running at all.
func TestAtomicCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := AtomicCtx(ctx, func(tx *Tx) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran despite pre-cancelled context")
	}
}

// TestAtomicCtxNilContextCommits: a nil context degrades to plain Atomic.
func TestAtomicCtxNilContextCommits(t *testing.T) {
	n := 0
	if err := AtomicCtx(nil, func(tx *Tx) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("err=%v n=%d, want nil/1", err, n)
	}
}

// TestAtomicCtxCancelDuringBackoff: cancelling while the retry loop sleeps in
// its backoff window must wake the sleeper and return ctx.Err() promptly,
// long before the backoff window elapses.
func TestAtomicCtxCancelDuringBackoff(t *testing.T) {
	sys := NewSystem(Config{
		BackoffBase: 2 * time.Second, // one giant backoff window
		BackoffCap:  2 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cause := errors.New("conflict")
	go func() {
		time.Sleep(20 * time.Millisecond) // let the first attempt abort and start backing off
		cancel()
	}()
	start := time.Now()
	err := sys.AtomicCtx(ctx, func(tx *Tx) error {
		tx.Abort(cause)
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %v; backoff sleep did not observe ctx", elapsed)
	}
}

// TestAtomicCtxDeadline: a context deadline behaves like cancellation and
// surfaces DeadlineExceeded.
func TestAtomicCtxDeadline(t *testing.T) {
	sys := NewSystem(Config{BackoffBase: time.Second, BackoffCap: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	cause := errors.New("conflict")
	err := sys.AtomicCtx(ctx, func(tx *Tx) error {
		tx.Abort(cause)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestAtomicCtxRollbackCompletesOnCancel: cancellation must not interrupt
// rollback — every logged inverse still runs before ctx.Err() is returned.
func TestAtomicCtxRollbackCompletesOnCancel(t *testing.T) {
	sys := NewSystem(Config{BackoffBase: time.Second, BackoffCap: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	undone := 0
	cause := errors.New("conflict")
	err := sys.AtomicCtx(ctx, func(tx *Tx) error {
		tx.Log(func() { undone++ })
		tx.Log(func() { undone++ })
		cancel() // cancel mid-body; the abort below must still roll back fully
		tx.Abort(cause)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if undone != 2 {
		t.Errorf("ran %d undo entries, want 2 (rollback must finish despite cancel)", undone)
	}
}

// TestTxDoneNilWithoutContext: transactions without a context expose a nil
// Done channel (never selectable), so lock-manager selects can include it
// unconditionally.
func TestTxDoneNilWithoutContext(t *testing.T) {
	MustAtomic(func(tx *Tx) error {
		if tx.Done() != nil {
			t.Error("Done() != nil for context-free transaction")
		}
		if tx.Context() == nil {
			t.Error("Context() = nil, want Background")
		}
		return nil
	})
}
