package stm

// Multi-version commit support: per-transaction pending version records
// published at the commit point under a global sequence number.
//
// Mirroring the lazy-boosting split (lazy.go), the runtime knows nothing
// about version representation: internal/boost implements VersionPending and
// owns the per-key chains. The runtime's job is ordering — every versioned
// mutation a transaction performs leaves a pending record in a per-(tx,
// object) log, and at the commit point, while the abstract locks are still
// held, the runtime draws a sequence number from the system's snapshot
// manager, flushes every attached log at that sequence, and publishes it.
// Because the sequence is assigned and published inside the locked region,
// sequence order equals serialization order for conflicting transactions —
// and equals WAL append order, since the durability sink runs in the same
// region (see commit()).
//
// An aborted transaction discards its pending records untouched: nothing was
// published, so rollback is pure truncation, exactly like the lazy logs.

// VersionPending is one object's pending version-record log attached to a
// transaction; implemented by boost's version log. The runtime drives it
// through the commit flush and nested-savepoint truncation without knowing
// the record representation.
type VersionPending interface {
	// Len reports the number of pending records (savepoint bookkeeping).
	Len() int
	// TruncateTo discards records logged at index n and later (nested child
	// rollback).
	TruncateTo(n int)
	// FlushVersions publishes every pending record into the object's
	// version chains at sequence seq. Called at the commit point with the
	// transaction's abstract locks held; it must not fail.
	FlushVersions(tx *Tx, seq uint64)
	// Recycle clears the log and returns it to its owner's pool. Called
	// exactly once per attachment, after flush or rollback.
	Recycle()
}

// versionAttach pairs an attached version log with the object identity used
// for lookup (same shape as lazyAttach).
type versionAttach struct {
	obj any
	log VersionPending
}

// VersionLookup returns the version log previously attached for obj, or nil.
func (tx *Tx) VersionLookup(obj any) VersionPending {
	tx.stateLock()
	defer tx.stateUnlock()
	for i := range tx.vers {
		if tx.vers[i].obj == obj {
			return tx.vers[i].log
		}
	}
	return nil
}

// VersionAttach registers log as the pending version log for obj. Callers
// must not attach twice for the same object (use VersionLookup first).
func (tx *Tx) VersionAttach(obj any, log VersionPending) {
	tx.stateLock()
	tx.vers = append(tx.vers, versionAttach{obj: obj, log: log})
	tx.stateUnlock()
}

// VersionCount reports how many version logs are attached (tests).
func (tx *Tx) VersionCount() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.vers)
}

// flushVersions assigns the transaction its commit sequence number and
// publishes every pending version record at it. Runs at the commit point —
// after the Committed store, with every abstract lock still held — so for
// any two conflicting transactions the lock order, the WAL append order, and
// the sequence order agree. Publication is in-order (mvcc.Manager.Publish),
// so a reader that pins the visible sequence afterwards sees this commit and
// every commit it depends on fully flushed.
func (tx *Tx) flushVersions() {
	m := tx.system.snaps
	seq := m.Begin()
	tx.commitSeq = seq
	// Publication is unconditional from here: Publish is in-order, so a seq
	// drawn but never published would spin every later committer forever.
	// FlushVersions must not fail, but if one panics anyway the deferred
	// publish runs during unwind — the panic still propagates (this commit
	// is broken), the rest of the system keeps committing.
	defer m.Publish(seq)
	for i := range tx.vers {
		tx.vers[i].log.FlushVersions(tx, seq)
	}
	tx.clearVers()
}

// discardVers drops every pending version record (abort path): nothing was
// published, so discarding the logs is the whole rollback.
func (tx *Tx) discardVers() { tx.clearVers() }

// clearVers recycles every attached version log and truncates the
// attachment slice, keeping capacity for the descriptor's next life.
func (tx *Tx) clearVers() {
	for i := range tx.vers {
		tx.vers[i].log.Recycle()
		tx.vers[i] = versionAttach{}
	}
	tx.vers = tx.vers[:0]
}
