package stm

// Closed nested transactions — the extension sketched in the paper's
// conclusion ("It could encompass STMs based on nested transactions using
// techniques similar to those employed by LogTM"). The semantics follow
// Moss-style closed nesting:
//
//   - A child transaction runs inside its parent and sees the parent's
//     effects (same undo log, same lock ownership — abstract locks are
//     owned by the Tx, so the child reuses them reentrantly).
//   - If the child completes, its operations, locks, and deferred handlers
//     merge into the parent; nothing is visible to other transactions until
//     the top-level transaction commits.
//   - If the child aborts, only the child's operations are rolled back
//     (inverse calls in reverse order), only the locks first acquired by
//     the child are released, and only the child's post-abort disposables
//     run. The parent continues.
//
// Unlike open nesting, a committed child publishes nothing early, so the
// deadlock and information-leakage pitfalls the paper attributes to open
// nesting do not arise.

// savepoint captures the transaction's log/lock/handler positions at child
// entry.
type savepoint struct {
	undo, redo, locks, atCommit, onCommit, onAbort, onValidate int

	// lazyLogs is how many lazy pending logs were attached at child entry;
	// lazyLens holds each such log's entry count, so a child rollback can
	// truncate the logs the child appended to and recycle the ones it
	// attached. lazyLens is allocated only when lazy logs exist — purely
	// eager transactions pay nothing.
	lazyLogs int
	lazyLens []int

	// versLogs/versLens give pending version logs the same treatment:
	// version records of a rolled-back child must never be published.
	versLogs int
	versLens []int
}

func (tx *Tx) save() savepoint {
	tx.stateLock()
	defer tx.stateUnlock()
	sp := savepoint{
		undo:       len(tx.undo),
		redo:       len(tx.redo),
		locks:      len(tx.locks),
		atCommit:   len(tx.atCommit),
		onCommit:   len(tx.onCommit),
		onAbort:    len(tx.onAbort),
		onValidate: len(tx.onValidate),
	}
	if n := len(tx.lazy); n > 0 {
		sp.lazyLogs = n
		sp.lazyLens = make([]int, n)
		for i := range tx.lazy {
			sp.lazyLens[i] = tx.lazy[i].log.Len()
		}
	}
	if n := len(tx.vers); n > 0 {
		sp.versLogs = n
		sp.versLens = make([]int, n)
		for i := range tx.vers {
			sp.versLens[i] = tx.vers[i].log.Len()
		}
	}
	return sp
}

// rollbackTo undoes everything logged after the savepoint: inverse
// operations in reverse order, then release of locks first acquired after
// the savepoint, then the child's post-abort disposables. Handlers
// registered by the child are discarded.
//
// The segments are detached under the transaction mutex and executed
// outside it; savepoint indices are only meaningful while no sibling
// Parallel branch is appending, so a Nested child must not run concurrently
// with branches that log to the same transaction (see Nested).
func (tx *Tx) rollbackTo(sp savepoint) {
	tx.stateLock()
	childUndo := append([]func(){}, tx.undo[sp.undo:]...)
	tx.undo = clearTail(tx.undo, sp.undo)

	// The child's forward ops leave the redo stream with it: a rolled-back
	// child must contribute nothing to the durable log.
	clear(tx.redo[sp.redo:])
	tx.redo = tx.redo[:sp.redo]

	childLocks := append([]Unlocker{}, tx.locks[sp.locks:]...)
	if tx.lockIdx != nil {
		for _, l := range childLocks {
			delete(tx.lockIdx, l)
		}
	}
	clear(tx.locks[sp.locks:])
	tx.locks = tx.locks[:sp.locks]

	childOnAbort := append([]func(){}, tx.onAbort[sp.onAbort:]...)
	tx.atCommit = clearTail(tx.atCommit, sp.atCommit)
	tx.onCommit = clearTail(tx.onCommit, sp.onCommit)
	tx.onAbort = clearTail(tx.onAbort, sp.onAbort)
	clear(tx.onValidate[sp.onValidate:])
	tx.onValidate = tx.onValidate[:sp.onValidate]

	// Lazy pending logs mirror tx.redo: the child's deferred ops leave
	// with it. Logs the child attached are detached here and recycled
	// below; logs the parent had already attached are truncated back to
	// their entry counts at child entry — but only after the child's undo
	// replay, because an early-flush undo closure re-pends the entries it
	// had applied, and the truncation must see the restored log.
	var childLazy []lazyAttach
	if len(tx.lazy) > sp.lazyLogs {
		childLazy = append(childLazy, tx.lazy[sp.lazyLogs:]...)
		clear(tx.lazy[sp.lazyLogs:])
		tx.lazy = tx.lazy[:sp.lazyLogs]
	}

	// Version logs mirror the lazy logs: records the child pended leave
	// with it (they were never published — publication happens only at the
	// top-level commit), logs it attached are recycled below.
	var childVers []versionAttach
	if len(tx.vers) > sp.versLogs {
		childVers = append(childVers, tx.vers[sp.versLogs:]...)
		clear(tx.vers[sp.versLogs:])
		tx.vers = tx.vers[:sp.versLogs]
	}
	tx.stateUnlock()

	for i := len(childUndo) - 1; i >= 0; i-- {
		childUndo[i]()
	}
	// Truncate the parent's surviving lazy logs back to their child-entry
	// lengths. Nested children never run concurrently with Parallel
	// branches (see Nested), so touching the logs outside the state lock
	// here is safe.
	for i := 0; i < sp.lazyLogs; i++ {
		tx.lazy[i].log.TruncateTo(sp.lazyLens[i])
	}
	for i := 0; i < sp.versLogs; i++ {
		tx.vers[i].log.TruncateTo(sp.versLens[i])
	}
	for i := len(childLocks) - 1; i >= 0; i-- {
		childLocks[i].Unlock(tx)
	}
	for _, f := range childOnAbort {
		f()
	}
	for _, a := range childLazy {
		a.log.Recycle()
	}
	for _, a := range childVers {
		a.log.Recycle()
	}
}

// Nested runs fn as a closed nested transaction of tx. If fn returns nil,
// the child's effects merge into tx (publication still awaits the top-level
// commit). If fn returns an error, the child's effects are rolled back and
// the error is returned; the parent transaction remains active and may
// continue, retry the child, or fail itself.
//
// A conflict abort inside the child (abstract-lock timeout, tx.Abort)
// aborts the whole transaction, not just the child — the retry loop in
// Atomic restarts from the top, which is the standard flattening treatment
// and is always safe. Nested may be called recursively.
//
// Nested relies on log positions, so a child must not run concurrently with
// sibling Parallel branches that log to the same transaction; run Nested
// either outside Parallel or as the only logging activity while it runs.
func (tx *Tx) Nested(fn func(tx *Tx) error) error {
	sp := tx.save()
	err := tx.runNested(fn)
	if err != nil {
		tx.rollbackTo(sp)
	}
	return err
}

// runNested executes fn, converting a non-abort panic into rollback of the
// whole transaction as usual (the panic propagates; Atomic's recover
// handles full rollback, which subsumes the child's).
func (tx *Tx) runNested(fn func(tx *Tx) error) error {
	return fn(tx)
}
