package stm

import (
	"strings"
	"testing"
	"time"
)

// flushRec is a VersionPending stub whose flush can be made to panic,
// standing in for a broken boost-side version log.
type flushRec struct {
	panicOnFlush bool
}

func (f *flushRec) Len() int       { return 1 }
func (f *flushRec) TruncateTo(int) {}
func (f *flushRec) Recycle()       {}
func (f *flushRec) FlushVersions(tx *Tx, seq uint64) {
	if f.panicOnFlush {
		panic("flushRec: injected flush failure")
	}
}

// TestPublishRunsWhenFlushPanics pins the Begin→Publish pairing: FlushVersions
// is contractually infallible, but if an implementation panics anyway the
// drawn sequence must still be published during unwind — Publish is strictly
// in-order, so an abandoned sequence would spin every later versioned
// committer forever instead of failing only the broken transaction.
func TestPublishRunsWhenFlushPanics(t *testing.T) {
	s := NewSystem(Config{})
	objA, objB := new(int), new(int)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the injected flush panic to propagate")
			}
		}()
		_ = s.Atomic(func(tx *Tx) error {
			tx.VersionAttach(objA, &flushRec{panicOnFlush: true})
			return nil
		})
	}()
	if got := s.Snapshots().Visible(); got != 1 {
		t.Fatalf("Visible after panicked flush = %d, want 1", got)
	}

	// The next versioned commit must publish promptly rather than spin on
	// the hole the panicked transaction would otherwise have left.
	done := make(chan error, 1)
	go func() {
		done <- s.Atomic(func(tx *Tx) error {
			tx.VersionAttach(objB, &flushRec{})
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("versioned commit wedged behind a panicked flush")
	}
	if got := s.Snapshots().Visible(); got != 2 {
		t.Fatalf("Visible after follow-up commit = %d, want 2", got)
	}
}

// TestActivationDrainBoundedPanics pins the misuse diagnostic: the first pin
// taken from inside a running transaction on the same system cannot drain
// the grace period (the enclosing transaction is waiting on it), and must
// surface as a panic naming the hazard instead of a silent permanent hang.
// Once the misusing transaction unwinds, the system must recover — the next
// pinner redoes the drain the panicked one never completed.
func TestActivationDrainBoundedPanics(t *testing.T) {
	old := activationDrainBudget
	activationDrainBudget = 50 * time.Millisecond
	defer func() { activationDrainBudget = old }()

	s := NewSystem(Config{})
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = s.Atomic(func(tx *Tx) error {
			return s.AtomicRO(func(*Tx) error { return nil })
		})
	}()
	msg, ok := recovered.(string)
	if !ok || !strings.Contains(msg, "activation stalled") {
		t.Fatalf("panic payload = %v, want activation-stalled message", recovered)
	}

	if err := s.AtomicRO(func(*Tx) error { return nil }); err != nil {
		t.Fatalf("AtomicRO after recovered misuse: %v", err)
	}
}
