package stm

import (
	"errors"
	"sync"
)

// AbortKind classifies abort causes for statistics: chaos runs and
// benchmarks need to report not just how often transactions aborted but
// *why* — a lock-timeout storm and a validation-failure storm call for
// different remedies.
type AbortKind int

const (
	// KindOther covers causes no cooperating package has registered
	// (explicit tx.Abort(nil), application sentinels).
	KindOther AbortKind = iota
	// KindLockTimeout: a timed abstract-lock or semaphore acquisition
	// expired (the paper's deadlock-recovery path).
	KindLockTimeout
	// KindWounded: an older transaction wounded this one (wound-wait).
	KindWounded
	// KindValidation: a pre-commit validation handler failed (rwstm
	// read-set conflicts, injected validation faults).
	KindValidation
	// KindDoomed: a contention manager asynchronously doomed the
	// transaction and it discovered the doom at commit.
	KindDoomed
	// KindDeadlock: the Detect contention policy chose this transaction as
	// the victim of a wait-for cycle.
	KindDeadlock

	// NumAbortKinds is the number of classified kinds, for coverage tests.
	NumAbortKinds
)

// String returns the kind's name.
func (k AbortKind) String() string {
	switch k {
	case KindLockTimeout:
		return "lock-timeout"
	case KindWounded:
		return "wounded"
	case KindValidation:
		return "validation"
	case KindDoomed:
		return "doomed"
	case KindDeadlock:
		return "deadlock"
	default:
		return "other"
	}
}

// kindReg maps registered sentinel errors to kinds. Cooperating packages
// (lockmgr, rwstm, core) register their sentinels in init; the runtime
// cannot name them directly without an import cycle.
var kindReg struct {
	mu      sync.RWMutex
	entries []kindEntry
}

type kindEntry struct {
	err  error
	kind AbortKind
}

// RegisterAbortKind associates a sentinel error (matched via errors.Is) with
// an AbortKind for the per-cause abort counters. Intended to be called from
// package init functions.
func RegisterAbortKind(err error, kind AbortKind) {
	if err == nil {
		return
	}
	kindReg.mu.Lock()
	kindReg.entries = append(kindReg.entries, kindEntry{err: err, kind: kind})
	kindReg.mu.Unlock()
}

// ClassifyAbort maps an abort cause to its kind, KindOther if unregistered.
func ClassifyAbort(cause error) AbortKind {
	if cause == nil {
		return KindOther
	}
	kindReg.mu.RLock()
	defer kindReg.mu.RUnlock()
	for _, e := range kindReg.entries {
		if errors.Is(cause, e.err) {
			return e.kind
		}
	}
	return KindOther
}

func init() {
	RegisterAbortKind(ErrDoomed, KindDoomed)
	RegisterAbortKind(ErrInjectedValidation, KindValidation)
}
