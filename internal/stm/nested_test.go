package stm

import (
	"errors"
	"testing"
)

func TestNestedCommitMerges(t *testing.T) {
	var undone []int
	err := Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = append(undone, 1) })
		if err := tx.Nested(func(tx *Tx) error {
			tx.Log(func() { undone = append(undone, 2) })
			return nil
		}); err != nil {
			return err
		}
		tx.Log(func() { undone = append(undone, 3) })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(undone) != 0 {
		t.Fatalf("undo ran on commit: %v", undone)
	}
}

func TestNestedAbortPartialRollback(t *testing.T) {
	var undone []int
	child := errors.New("child fails")
	err := Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = append(undone, 1) })
		if err := tx.Nested(func(tx *Tx) error {
			tx.Log(func() { undone = append(undone, 2) })
			tx.Log(func() { undone = append(undone, 3) })
			return child
		}); !errors.Is(err, child) {
			t.Errorf("Nested = %v", err)
		}
		// Only the child's entries ran, in reverse.
		if len(undone) != 2 || undone[0] != 3 || undone[1] != 2 {
			t.Errorf("child rollback = %v, want [3 2]", undone)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(undone) != 2 {
		t.Fatalf("parent entries rolled back too: %v", undone)
	}
}

func TestNestedAbortThenParentAbort(t *testing.T) {
	var undone []int
	child := errors.New("child")
	parent := errors.New("parent")
	_ = Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = append(undone, 1) })
		_ = tx.Nested(func(tx *Tx) error {
			tx.Log(func() { undone = append(undone, 2) })
			return child
		})
		tx.Log(func() { undone = append(undone, 3) })
		return parent
	})
	// Child entry 2 rolled back first (at child abort), then parent's 3,1.
	want := []int{2, 3, 1}
	if len(undone) != 3 || undone[0] != 2 || undone[1] != 3 || undone[2] != 1 {
		t.Fatalf("undo order = %v, want %v", undone, want)
	}
}

func TestNestedLocksReleasedOnChildAbort(t *testing.T) {
	parentLock := &recordingLock{}
	childLock := &recordingLock{}
	child := errors.New("child")
	err := Atomic(func(tx *Tx) error {
		tx.RegisterLock(parentLock)
		_ = tx.Nested(func(tx *Tx) error {
			tx.RegisterLock(childLock)
			tx.RegisterLock(parentLock) // held by parent: reentrant, no-op
			return child
		})
		if tx.Holds(childLock) {
			t.Error("child lock still held after child abort")
		}
		if !tx.Holds(parentLock) {
			t.Error("parent lock lost in child rollback")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(childLock.unlocked) != 1 {
		t.Fatalf("child lock unlocked %d times, want 1", len(childLock.unlocked))
	}
	if len(parentLock.unlocked) != 1 {
		t.Fatalf("parent lock unlocked %d times, want exactly 1 (at commit)", len(parentLock.unlocked))
	}
}

func TestNestedLocksKeptOnChildCommit(t *testing.T) {
	childLock := &recordingLock{}
	err := Atomic(func(tx *Tx) error {
		if err := tx.Nested(func(tx *Tx) error {
			tx.RegisterLock(childLock)
			return nil
		}); err != nil {
			return err
		}
		if !tx.Holds(childLock) {
			t.Error("child-acquired lock not inherited by parent")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(childLock.unlocked) != 1 {
		t.Fatalf("inherited lock unlocked %d times, want 1 at top-level commit", len(childLock.unlocked))
	}
}

func TestNestedHandlersSegmented(t *testing.T) {
	var events []string
	child := errors.New("child")
	err := Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { events = append(events, "parent-commit") })
		_ = tx.Nested(func(tx *Tx) error {
			tx.OnCommit(func() { events = append(events, "child-commit") })
			tx.OnAbort(func() { events = append(events, "child-abort") })
			return child
		})
		if err := tx.Nested(func(tx *Tx) error {
			tx.OnCommit(func() { events = append(events, "child2-commit") })
			return nil
		}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// child-abort fires at child rollback; child-commit is discarded;
	// child2-commit merges and fires with parent-commit.
	want := []string{"child-abort", "parent-commit", "child2-commit"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestNestedRecursive(t *testing.T) {
	var undone []int
	inner := errors.New("inner")
	err := Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = append(undone, 0) })
		return tx.Nested(func(tx *Tx) error {
			tx.Log(func() { undone = append(undone, 1) })
			_ = tx.Nested(func(tx *Tx) error {
				tx.Log(func() { undone = append(undone, 2) })
				return inner
			})
			if len(undone) != 1 || undone[0] != 2 {
				t.Errorf("inner rollback = %v, want [2]", undone)
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(undone) != 1 {
		t.Fatalf("outer levels rolled back: %v", undone)
	}
}

func TestNestedValidationHandlersDiscardedOnChildAbort(t *testing.T) {
	child := errors.New("child")
	calls := 0
	err := Atomic(func(tx *Tx) error {
		_ = tx.Nested(func(tx *Tx) error {
			tx.OnValidate(func() error { calls++; return errors.New("stale") })
			return child
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("aborted child's validator ran at top-level commit")
	}
}

func TestNestedAbortSignalAbortsWholeTransaction(t *testing.T) {
	attempts := 0
	var undoneParent bool
	err := Atomic(func(tx *Tx) error {
		attempts++
		tx.Log(func() { undoneParent = true })
		if attempts == 1 {
			_ = tx.Nested(func(tx *Tx) error {
				tx.Abort(nil) // conflict-style abort: flattening
				return nil
			})
			t.Error("unreachable: Abort must unwind past Nested")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (whole-tx retry)", attempts)
	}
	if !undoneParent {
		t.Fatal("parent undo did not run on flattened abort")
	}
}
