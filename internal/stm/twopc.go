package stm

// Two-phase commit participant surface.
//
// A cross-System transaction is driven by a coordinator (internal/txncoord)
// as one branch per System. Prepare runs a branch exactly like Atomic runs a
// transaction — same retry loop, same eager effects and undo log — but stops
// at the brink of the commit point: after validation and the lazy drain, the
// branch's redo stream is force-logged as a prepare record (the vote), and
// the transaction parks in the Prepared state with its effects applied, its
// abstract locks held, and its undo log intact. The coordinator later
// resolves it with PreparedTx.Commit or PreparedTx.Abort.
//
// The protocol is presumed-abort: a prepare record with no decision marker
// means abort, so aborting costs no forced write anywhere, and a participant
// that never voted recovers for free. Only the coordinator's commit decision
// (and, as hygiene, each participant's commit marker) is logged.
//
// A prepared transaction is past its point of no return in one direction
// only: it can still be undone (the undo log is intact), but it can no
// longer lose a conflict — Commit ignores dooms. A contention manager that
// wounds a parked prepared transaction therefore stalls until its own lock
// timeout instead of making progress; that is the specified behaviour
// ("prepared transactions block conflicting traffic"), and the coordinator's
// decision latency bounds the stall.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"

	"tboost/internal/faultpoint"
)

// ErrBackpressure is the cause wrapped under ErrContentionCollapse when a
// transaction is shed because the durability sink's write controller is
// more than MaxPending bytes behind. errors.Is matches both sentinels, so
// existing shed-handling (which tests ErrContentionCollapse) keeps working
// while callers that care can distinguish log overload from lock contention.
var ErrBackpressure = errors.New("stm: durability sink overloaded")

// ErrNoPreparedSink is returned by Prepare when the system has a durability
// sink that does not implement PreparedSink: a durable system must not run
// volatile branches of a durable span.
var ErrNoPreparedSink = errors.New("stm: durability sink does not support two-phase commit")

// ErrResolved is returned by PreparedTx.Commit when the transaction was
// already committed or aborted.
var ErrResolved = errors.New("stm: prepared transaction already resolved")

// OverloadSink extends DurabilitySink with a backpressure signal. When the
// configured sink implements it, the admission path sheds new mutating
// transactions (ErrContentionCollapse wrapping ErrBackpressure) while
// Overloaded reports true, instead of letting appenders queue behind a slow
// fsync under the log mutex.
type OverloadSink interface {
	DurabilitySink
	Overloaded() bool
}

// PreparedSink extends DurabilitySink with the two-phase-commit records.
//
// Prepare must force-log the branch's redo stream before returning — a yes
// vote that is not durable is a protocol violation (the coordinator may
// commit on its strength). Decide appends the decision marker; for a commit
// it returns the mode's usual durability barrier (awaited by PreparedTx
// after lock release), for an abort the marker is pure hygiene under
// presumed-abort and the error may be ignored. Both are called with the
// transaction's abstract locks held, preserving the log-order-equals-
// serialization-order invariant for conflicting transactions.
type PreparedSink interface {
	DurabilitySink
	Prepare(txID, gid uint64, ops []RedoOp) error
	Decide(txID, gid uint64, commit bool) (wait func() error, err error)
}

// PreparedTx is a transaction parked between the two phases: effects
// applied, abstract locks held, prepare record durable. Exactly one of
// Commit or Abort must eventually be called (by the coordinator, or by
// recovery's in-doubt resolution); until then every conflicting transaction
// blocks on its locks. PreparedTx is not safe for concurrent resolution
// from multiple goroutines racing Commit against Abort with different
// outcomes — the first resolver wins and the loser is a no-op.
type PreparedTx struct {
	sys         *System
	tx          *Tx
	gid         uint64
	sink        PreparedSink // nil for volatile and adopted transactions
	esh         *epochShard
	holdsActive bool
	commitSeq   uint64
	done        atomic.Bool
}

// GID returns the coordinator's global transaction ID for this branch.
func (p *PreparedTx) GID() uint64 { return p.gid }

// CommitSeq returns the commit sequence number assigned when the branch's
// version records were published: nonzero only after Commit, and only if the
// branch mutated a versioned object. Coordinators use it for matched-
// sequence read-only pinning.
func (p *PreparedTx) CommitSeq() uint64 { return p.commitSeq }

// Commit resolves the branch as committed: the decision marker enters the
// log, effects become permanent, versions publish, and the locks release.
// Dooms landed while parked are ignored — prepared is past the point where
// a contention manager may win. An error from the marker append (the log
// crashed mid-decision) leaves the transaction prepared for recovery to
// resolve; an error wrapped in ErrNotDurable means the commit is applied
// and the locks are released but the marker's fsync was never acknowledged.
func (p *PreparedTx) Commit() error {
	if !p.done.CompareAndSwap(false, true) {
		return ErrResolved
	}
	tx := p.tx
	var wait func() error
	if p.sink != nil {
		w, err := p.sink.Decide(tx.id, p.gid, true)
		if err != nil {
			p.done.Store(false)
			return err
		}
		wait = w
	}
	tx.status.Store(int32(Committed))
	if len(tx.vers) > 0 {
		tx.flushVersions()
	}
	p.commitSeq = tx.commitSeq
	for _, f := range tx.atCommit {
		f()
	}
	tx.atCommit = clearFuncs(tx.atCommit)
	tx.undo = clearFuncs(tx.undo)
	tx.redo = clearRedo(tx.redo)
	tx.clearLazy()
	tx.releaseLocks()
	tx.clearDisc()
	var derr error
	if wait != nil {
		// Post-release durability barrier, as in the one-phase commit path:
		// lock hold times stay independent of disk latency.
		derr = wait()
	}
	for _, f := range tx.onCommit {
		f()
	}
	tx.onCommit = clearFuncs(tx.onCommit)
	tx.onAbort = clearFuncs(tx.onAbort)
	p.finish(true)
	if derr != nil {
		return fmt.Errorf("%w: %w", ErrNotDurable, derr)
	}
	return nil
}

// Abort resolves the branch as aborted: the undo log runs in reverse under
// the still-held locks (Lemma 5.2 — inverses need no new locks), locks
// release, and post-abort disposables run. Under presumed-abort the decision
// marker is appended as hygiene only; its absence already means abort.
func (p *PreparedTx) Abort() {
	if !p.done.CompareAndSwap(false, true) {
		return
	}
	tx := p.tx
	if p.sink != nil {
		p.sink.Decide(tx.id, p.gid, false) // best-effort; never awaited
	}
	tx.setCause(ErrAborted)
	tx.rollback()
	p.finish(false)
}

// finish retires the descriptor and the call's epoch/active accounting —
// held since Prepare so checkpoints and versioning activation wait for
// parked branches.
func (p *PreparedTx) finish(committed bool) {
	tx := p.tx
	s := p.sys
	if committed {
		s.stats.add(tx.id, cCommits)
		s.stats.countCommitAge(tx.id, tx.attempt)
	} else {
		s.stats.add(tx.id, cAborts)
		s.stats.countAbortKind(tx.id, ClassifyAbort(tx.Cause()))
	}
	p.esh.ended.Add(1)
	if p.holdsActive {
		s.active.Add(-1)
	}
	p.tx = nil
	tx.recycle()
}

// Prepare runs fn as one branch of cross-System transaction gid and parks it
// prepared. The retry loop matches Atomic's (aborted attempts roll back,
// back off, and rerun) up to the vote; a branch whose prepare record cannot
// be forced fails without retrying rather than spinning against a frozen
// log. On success the caller owns the returned PreparedTx and must resolve
// it; on error the branch left no trace.
func (s *System) Prepare(gid uint64, fn func(tx *Tx) error) (*PreparedTx, error) {
	return s.prepareWith(nil, gid, fn)
}

// PrepareCtx is Prepare honouring ctx: admission queueing, lock waits,
// backoff sleeps, and the between-attempt check all observe cancellation,
// so a coordinator's per-participant timeout bounds the vote round.
func (s *System) PrepareCtx(ctx context.Context, gid uint64, fn func(tx *Tx) error) (*PreparedTx, error) {
	return s.prepareWith(ctx, gid, fn)
}

func (s *System) prepareWith(ctx context.Context, gid uint64, fn func(tx *Tx) error) (*PreparedTx, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var sink PreparedSink
	if s.cfg.Durability != nil {
		var ok bool
		if sink, ok = s.cfg.Durability.(PreparedSink); !ok {
			return nil, ErrNoPreparedSink
		}
	}
	if s.overload != nil && s.overload.Overloaded() {
		s.stats.add(0, cAdmissionRejects)
		return nil, fmt.Errorf("%w: %w", ErrContentionCollapse, ErrBackpressure)
	}
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	// The admission slot is released when Prepare returns either way: a
	// prepared branch parks for as long as the coordinator (or recovery)
	// takes, and holding a slot would let a few in-doubt transactions choke
	// the whole system's admission. The epoch shard and active counter ARE
	// held until resolution — checkpoints must not run over parked effects.
	defer s.releaseSlot()
	holdsActive := s.cfg.Durability != nil
	if holdsActive {
		s.active.Add(1)
	}
	esh := s.epochEnter(rand.Uint64())
	versLive := s.snaps.Active()
	parked := false
	defer func() {
		if !parked {
			esh.ended.Add(1)
			if holdsActive {
				s.active.Add(-1)
			}
		}
	}()

	tx := txPool.Get().(*Tx)
	var birth uint64
	for attempt := 0; ; attempt++ {
		id := txIDs.Add(1)
		if birth == 0 {
			birth = id
		}
		tx.resetAttempt(s, ctx, id, birth, attempt)
		tx.versLive = versLive
		s.stats.add(id, cStarts)
		aborted, err := s.runAttempt(tx, fn)
		if !aborted {
			if err != nil {
				s.stats.add(id, cUserAborts)
				tx.recycle()
				return nil, err
			}
			if tx.prepare(sink, gid) {
				parked = true
				return &PreparedTx{
					sys: s, tx: tx, gid: gid, sink: sink,
					esh: esh, holdsActive: holdsActive,
				}, nil
			}
			aborted = true
		}
		s.stats.add(id, cAborts)
		s.stats.countAbortKind(id, ClassifyAbort(tx.Cause()))
		if derr := tx.durErr; derr != nil {
			// The prepare force-log failed: the log is frozen (crashed or
			// I/O error), so retrying cannot succeed. The attempt has rolled
			// back; whether the prepare record reached disk is unknown, and
			// recovery's presumed-abort rule disposes of it either way.
			tx.durErr = nil
			tx.recycle()
			return nil, fmt.Errorf("stm: prepare not durable: %w", derr)
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				tx.recycle()
				return nil, err
			}
		}
		if s.cfg.MaxRetries > 0 && attempt+1 >= s.cfg.MaxRetries {
			tx.recycle()
			return nil, ErrTooManyRetries
		}
		if err := s.backoff(ctx, attempt, 0); err != nil {
			tx.recycle()
			return nil, err
		}
	}
}

// prepare is the first half of commit(): validation, the lazy drain, and the
// forced prepare record — everything up to but excluding the Committed
// store. On success the transaction is Prepared: effects applied, locks
// held, undo intact. On failure it has rolled back (a sink failure
// additionally lands in tx.durErr so the retry loop fails fast instead of
// spinning on a frozen log).
func (tx *Tx) prepare(sink PreparedSink, gid uint64) bool {
	if faultpoint.Hit(faultpoint.StmPreCommit) == faultpoint.Doom {
		tx.Doom()
	}
	if tx.doomed.Load() {
		tx.setCause(ErrDoomed)
		tx.rollback()
		return false
	}
	tx.status.Store(int32(Validating))
	if faultpoint.Hit(faultpoint.StmValidate) == faultpoint.FailValidation {
		tx.setCause(ErrInjectedValidation)
		tx.system.stats.add(tx.id, cValidationFailures)
		tx.rollback()
		return false
	}
	for _, f := range tx.onValidate {
		if err := f(); err != nil {
			tx.setCause(err)
			tx.system.stats.add(tx.id, cValidationFailures)
			tx.rollback()
			return false
		}
	}
	clear(tx.onValidate)
	tx.onValidate = tx.onValidate[:0]
	if len(tx.lazy) > 0 && !tx.drainLazy() {
		return false
	}
	if sink != nil {
		// The vote: force the redo stream to disk before reporting
		// prepared. Always logged, even with an empty redo stream, so every
		// branch of a durable span is resolvable from the log alone.
		if err := sink.Prepare(tx.id, gid, tx.redo); err != nil {
			tx.durErr = err
			tx.setCause(err)
			tx.rollback()
			return false
		}
	}
	tx.status.Store(int32(Prepared))
	return true
}

// AdoptPrepared reconstructs a prepared transaction from its logged state at
// recovery: relock must re-acquire the abstract locks the original held (the
// WAL drives it from the prepare record's ops through each object's
// journal binding). The adopted transaction has no undo log and no redo
// stream — its effects are NOT in the base (recovery replays only decided
// transactions) — so Abort merely releases the locks, and the WAL's in-doubt
// resolution replays the ops itself before calling Commit. Like Prepare, the
// adopted transaction holds the system's epoch shard and active counter
// until resolved, blocking checkpoints and conflicting traffic exactly as a
// live prepared transaction would.
func (s *System) AdoptPrepared(gid uint64, relock func(tx *Tx) error) (*PreparedTx, error) {
	holdsActive := s.cfg.Durability != nil
	if holdsActive {
		s.active.Add(1)
	}
	esh := s.epochEnter(rand.Uint64())
	tx := txPool.Get().(*Tx)
	id := txIDs.Add(1)
	tx.resetAttempt(s, nil, id, id, 0)
	tx.versLive = s.snaps.Active()
	aborted, err := s.runAttempt(tx, relock)
	if aborted || err != nil {
		if err == nil {
			if err = tx.Cause(); err == nil {
				err = ErrAborted
			}
		}
		esh.ended.Add(1)
		if holdsActive {
			s.active.Add(-1)
		}
		tx.recycle()
		return nil, fmt.Errorf("stm: adopt prepared gid %d: %w", gid, err)
	}
	tx.status.Store(int32(Prepared))
	return &PreparedTx{sys: s, tx: tx, gid: gid, esh: esh, holdsActive: holdsActive}, nil
}
