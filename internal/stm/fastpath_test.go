package stm

import (
	"errors"
	"sync/atomic"
	"testing"
)

// The single-owner fast path and descriptor pooling must be invisible to
// transaction semantics: state never leaks between the transactions that
// share a pooled descriptor, the lock-set spill past lockSpill behaves like
// the map it replaces, and a stale Doom aimed at a completed transaction
// costs a later one at most a retry.

func TestPooledDescriptorStateIsolation(t *testing.T) {
	sys := NewSystem(Config{})
	var l fpLock
	err := sys.Atomic(func(tx *Tx) error {
		tx.Log(func() {})
		l.acquire(tx)
		tx.OnCommit(func() {})
		tx.OnAbort(func() {})
		tx.AtCommit(func() {})
		tx.OnValidate(func() error { return nil })
		tx.SetExt("slot", "value")
		return nil
	})
	if err != nil {
		t.Fatalf("first Atomic: %v", err)
	}
	// The next transaction on this system plausibly reuses the descriptor;
	// every piece of per-transaction state must read as fresh.
	err = sys.Atomic(func(tx *Tx) error {
		if n := tx.UndoDepth(); n != 0 {
			t.Errorf("undo depth leaked: %d", n)
		}
		if n := tx.LockCount(); n != 0 {
			t.Errorf("lock count leaked: %d", n)
		}
		if v := tx.Ext("slot"); v != nil {
			t.Errorf("ext slot leaked: %v", v)
		}
		if tx.Doomed() {
			t.Error("doom leaked")
		}
		if tx.Attempt() != 0 {
			t.Errorf("attempt leaked: %d", tx.Attempt())
		}
		if tx.Status() != Active {
			t.Errorf("status = %v", tx.Status())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("second Atomic: %v", err)
	}
}

func TestPooledDescriptorFreshAcrossUserAbort(t *testing.T) {
	sys := NewSystem(Config{})
	boom := errors.New("boom")
	undone := false
	err := sys.Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = true })
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if !undone {
		t.Fatal("undo did not run on user abort")
	}
	err = sys.Atomic(func(tx *Tx) error {
		if tx.UndoDepth() != 0 || tx.Cause() != nil {
			t.Errorf("state leaked after user abort: depth=%d cause=%v",
				tx.UndoDepth(), tx.Cause())
		}
		return nil
	})
	if err != nil {
		t.Fatalf("second Atomic: %v", err)
	}
}

// fpLock is a minimal Unlocker for lock-set tests.
type fpLock struct{ unlocks atomic.Int32 }

func (l *fpLock) acquire(tx *Tx) { tx.RegisterLock(l) }
func (l *fpLock) Unlock(*Tx)     { l.unlocks.Add(1) }

func TestLockSetSpillsToMapPastThreshold(t *testing.T) {
	sys := NewSystem(Config{})
	locks := make([]*fpLock, 3*lockSpill)
	for i := range locks {
		locks[i] = &fpLock{}
	}
	MustAtomicOn(sys, func(tx *Tx) {
		for i, l := range locks {
			if !tx.RegisterLock(l) {
				t.Fatalf("lock %d: first registration returned false", i)
			}
			if tx.RegisterLock(l) {
				t.Fatalf("lock %d: re-registration returned true", i)
			}
		}
		for i, l := range locks {
			if !tx.Holds(l) {
				t.Fatalf("lock %d not held after spill", i)
			}
		}
		if n := tx.LockCount(); n != len(locks) {
			t.Fatalf("LockCount = %d, want %d", n, len(locks))
		}
		// Unregister one lock from the middle, spanning the spill boundary.
		tx.UnregisterLock(locks[lockSpill])
		if tx.Holds(locks[lockSpill]) {
			t.Fatal("unregistered lock still held")
		}
		if !tx.RegisterLock(locks[lockSpill]) {
			t.Fatal("re-registering an unregistered lock failed")
		}
	})
	for i, l := range locks {
		if got := l.unlocks.Load(); got != 1 {
			t.Fatalf("lock %d unlocked %d times, want 1", i, got)
		}
	}
	// The spill map must not follow the descriptor into its next life.
	MustAtomicOn(sys, func(tx *Tx) {
		if tx.lockIdx != nil {
			t.Error("spill map survived descriptor reuse")
		}
	})
}

func TestStaleDoomOnRecycledDescriptorIsBenign(t *testing.T) {
	sys := NewSystem(Config{})
	var escaped *Tx
	MustAtomicOn(sys, func(tx *Tx) { escaped = tx })
	// Simulate the rwstm eager-mode hazard: a contention manager dooms a
	// pointer to a transaction that already committed. The descriptor may
	// be live again under an unrelated transaction; the doom must cost at
	// most one spurious retry.
	escaped.Doom()
	ran := 0
	err := sys.Atomic(func(tx *Tx) error {
		ran++
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic after stale doom: %v", err)
	}
	if ran == 0 {
		t.Fatal("body never ran")
	}
	st := sys.Stats()
	if st.Commits < 2 {
		t.Fatalf("commits = %d, want >= 2", st.Commits)
	}
}

func TestLegacyHotPathStillCommits(t *testing.T) {
	sys := NewSystem(Config{LegacyHotPath: true})
	var l fpLock
	MustAtomicOn(sys, func(tx *Tx) {
		l.acquire(tx)
		tx.Log(func() {})
		if !tx.parallel.Load() {
			t.Error("legacy descriptor should start escalated")
		}
	})
	if l.unlocks.Load() != 1 {
		t.Fatalf("unlocks = %d, want 1", l.unlocks.Load())
	}
	st := sys.Stats()
	if st.Commits != 1 || st.Starts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestParallelEscalatesDescriptor(t *testing.T) {
	sys := NewSystem(Config{})
	MustAtomicOn(sys, func(tx *Tx) {
		if tx.parallel.Load() {
			t.Fatal("descriptor escalated before Parallel")
		}
		err := tx.Parallel(
			func(tx *Tx) error {
				for i := 0; i < 100; i++ {
					tx.Log(func() {})
					tx.OnCommit(func() {})
				}
				return nil
			},
			func(tx *Tx) error {
				for i := 0; i < 100; i++ {
					tx.Log(func() {})
					tx.OnAbort(func() {})
				}
				return nil
			},
		)
		if err != nil {
			t.Fatalf("Parallel: %v", err)
		}
		if !tx.parallel.Load() {
			t.Fatal("descriptor not escalated by Parallel")
		}
		if n := tx.UndoDepth(); n != 200 {
			t.Fatalf("undo depth = %d, want 200", n)
		}
	})
	// The escalation flag must reset for the system's next transaction.
	MustAtomicOn(sys, func(tx *Tx) {
		if tx.parallel.Load() {
			t.Error("escalation leaked into a later transaction")
		}
	})
}

func TestEmptyAtomicSteadyStateAllocs(t *testing.T) {
	sys := NewSystem(Config{})
	body := func(tx *Tx) error { return nil }
	_ = sys.Atomic(body) // warm the pool
	avg := testing.AllocsPerRun(200, func() {
		_ = sys.Atomic(body)
	})
	if avg > 0 {
		t.Fatalf("empty Atomic allocates %.2f objects/op, want 0", avg)
	}
}

func TestShardedStatsCountExactly(t *testing.T) {
	sys := NewSystem(Config{})
	const gs, per = 8, 500
	done := make(chan struct{})
	for g := 0; g < gs; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				MustAtomicOn(sys, func(tx *Tx) {})
			}
		}()
	}
	for g := 0; g < gs; g++ {
		<-done
	}
	st := sys.Stats()
	if st.Commits != gs*per {
		t.Fatalf("commits = %d, want %d", st.Commits, gs*per)
	}
	if st.Starts < st.Commits {
		t.Fatalf("starts = %d < commits = %d", st.Starts, st.Commits)
	}
	sys.ResetStats()
	if st := sys.Stats(); st.Starts != 0 || st.Commits != 0 {
		t.Fatalf("reset left counters: %+v", st)
	}
}
