package stm

// Lazy boosting support: per-transaction pending op logs drained at commit.
//
// Under the eager discipline every boosted call locks, mutates the base
// object, and logs an inverse immediately; the runtime only ever sees the
// undo log. Under the lazy discipline (Proust's half of the design space) a
// boosted call appends a descriptor to a per-(transaction, object) pending
// log and returns a predicted answer; nothing touches the base object until
// commit. The runtime's role is deliberately small — it tracks which logs a
// transaction has attached and drives a three-phase drain at the commit
// point — while the log representation, fusion algebra, and validation rules
// live in internal/boost, which implements LazyPending.
//
// The drain runs after the transaction's validation handlers succeed and
// before it is marked Committed, so:
//
//   - an abort during the drain (lock timeout, doomed, observation
//     mismatch) finds the base object untouched by this transaction's lazy
//     ops: rollback is log truncation, no inverse replay;
//   - the forward ops the drain emits land in tx.redo before the durability
//     sink runs, so the WAL records the post-fusion stream;
//   - AtCommit handlers (the history recorder's commit events) still run
//     under the abstract locks the drain acquired, keeping commit order and
//     lock order aligned.

import "errors"

// ErrLazyApply is the abort cause when phase C's validate-by-apply path
// finds an optimistic observation stale: the net op's own base call failed
// at the commit instant, proving a conflicting commit landed since the
// unlocked read. It classifies as a validation abort, the same kind the
// phase-B re-check reports.
var ErrLazyApply = errors.New("stm: lazy apply-check failed; optimistic read out of date")

func init() { RegisterAbortKind(ErrLazyApply, KindValidation) }

// LazyPending is one object's pending op log attached to a transaction. It
// is implemented by boost.LazyLog; the runtime drives it through the commit
// drain and through nested-savepoint truncation without knowing the entry
// representation.
//
// The drain is three-phase across all attached logs: every log fuses its
// entries and acquires the abstract locks its surviving ops and observations
// demand (PrepareCommit), then every log re-checks its optimistic
// observations under those locks (ValidateCommit), and only then does any
// log mutate the base (ApplyCommit). Nothing is applied before every
// validation has passed, so an abort in the first two phases leaves no
// trace; phase three consists of total base-object calls that cannot fail.
type LazyPending interface {
	// Len reports the number of pending entries (savepoint bookkeeping).
	Len() int
	// TruncateTo discards entries logged at index n and later (nested
	// child rollback; abort is TruncateTo(0) via Recycle).
	TruncateTo(n int)
	// PrepareCommit fuses the log and acquires the abstract locks of every
	// surviving op and observation. May abort tx (lock timeout, doom).
	PrepareCommit(tx *Tx)
	// ValidateCommit re-checks the log's optimistic observations against
	// the base under the locks PrepareCommit acquired. Aborts tx on
	// mismatch. Observations whose net op is validate-by-apply are
	// skipped here; ApplyCommit answers for them.
	ValidateCommit(tx *Tx)
	// ApplyCommit applies the fused ops to the base object and emits their
	// forward images to tx's redo stream. It returns false when a
	// validate-by-apply op finds its observation stale at the commit
	// instant — the log has already unapplied its own applied prefix, and
	// the runtime must UnapplyCommit every log drained before it.
	ApplyCommit(tx *Tx) bool
	// UnapplyCommit inverts a completed ApplyCommit (newest op first),
	// under the abstract locks PrepareCommit acquired. The runtime calls
	// it only on the cross-log undo path after a later log's ApplyCommit
	// returned false.
	UnapplyCommit()
	// Recycle clears the log and returns it to its owner's pool. The
	// runtime calls it exactly once per attachment, after commit or
	// rollback; the log must not be touched afterwards.
	Recycle()
}

// lazyAttach pairs an attached pending log with the object identity used for
// lookup. The object is compared by interface identity (pointer), which is
// stable for the life of the boosted object.
type lazyAttach struct {
	obj any
	log LazyPending
}

// LazyLookup returns the pending log previously attached for obj, or nil.
// The scan is linear: transactions touch a handful of distinct objects, and
// the slice is already in cache from the last append.
func (tx *Tx) LazyLookup(obj any) LazyPending {
	tx.stateLock()
	defer tx.stateUnlock()
	for i := range tx.lazy {
		if tx.lazy[i].obj == obj {
			return tx.lazy[i].log
		}
	}
	return nil
}

// LazyAttach registers log as the pending log for obj. Callers must not
// attach twice for the same object (use LazyLookup first); the kernel's
// accessor enforces this.
func (tx *Tx) LazyAttach(obj any, log LazyPending) {
	tx.stateLock()
	tx.lazy = append(tx.lazy, lazyAttach{obj: obj, log: log})
	tx.stateUnlock()
}

// LazyCount reports how many pending logs are attached (tests,
// introspection).
func (tx *Tx) LazyCount() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.lazy)
}

// drainLazy runs the three-phase commit drain over every attached log. It
// returns false if the drain aborted the transaction (lock timeout, doom
// discovered, observation mismatch), in which case the transaction has been
// rolled back. commit() runs outside runAttempt's recover, so the abort
// panic raised inside a drain phase is caught here and converted into the
// rollback it requests; foreign panics propagate after rollback as usual.
func (tx *Tx) drainLazy() (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if sig, isAbort := r.(abortSignal); isAbort && sig.tx == tx {
				tx.rollback()
				ok = false
				return
			}
			tx.rollback()
			panic(r)
		}
	}()
	// Phase A: fuse + lock. After this loop the transaction holds every
	// abstract lock its net effects and observations demand.
	for i := range tx.lazy {
		tx.lazy[i].log.PrepareCommit(tx)
	}
	// Phase B: validate every optimistic observation under the locks. A
	// doom that landed while we were blocking on a drain lock is honoured
	// here, before anything is applied.
	for i := range tx.lazy {
		tx.lazy[i].log.ValidateCommit(tx)
	}
	if tx.doomed.Load() {
		tx.setCause(ErrDoomed)
		tx.rollback()
		return false
	}
	// Phase C: apply. Emit routes the post-fusion forward ops into tx.redo
	// for the durability sink. A validate-by-apply op can still discover a
	// stale observation here — its base call answers the phase-B question
	// the drain skipped for it — in which case every log applied so far
	// unapplies under the still-held locks and the transaction aborts as a
	// validation failure (rollback discards the redo the prefix emitted).
	for i := range tx.lazy {
		if !tx.lazy[i].log.ApplyCommit(tx) {
			for j := i - 1; j >= 0; j-- {
				tx.lazy[j].log.UnapplyCommit()
			}
			tx.setCause(ErrLazyApply)
			tx.rollback()
			return false
		}
	}
	return true
}

// clearLazy recycles every attached log and truncates the attachment slice,
// keeping its capacity for the descriptor's next life.
func (tx *Tx) clearLazy() {
	for i := range tx.lazy {
		tx.lazy[i].log.Recycle()
		tx.lazy[i] = lazyAttach{}
	}
	tx.lazy = tx.lazy[:0]
}
