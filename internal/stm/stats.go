package stm

import (
	"fmt"
	"sync/atomic"
)

// Counter indices into a stats shard. The order is frozen by snapshot();
// nCounters sizes the per-shard array.
const (
	cStarts = iota
	cCommits
	cAborts
	cUserAborts
	cLockTimeouts
	cValidationFailures

	// Aborts broken down by classified cause (see AbortKind). The sum of
	// these six equals cAborts.
	cAbortsLockTimeout
	cAbortsWounded
	cAbortsValidation
	cAbortsDoomed
	cAbortsDeadlock
	cAbortsOther

	// Contention-collapse protection.
	cAdmissionWaits
	cAdmissionRejects
	cCollapses

	// Contention-management activity.
	cWoundsIssued   // older transactions dooming younger holders (wound-wait)
	cDeadlockCycles // wait-for cycles detected and broken (Detect)

	// Age-at-commit histogram: which attempt finally committed. Under a
	// starvation-free policy the tail stays thin.
	cCommitAge0  // committed on the first attempt
	cCommitAge1  // committed on the second attempt
	cCommitAge23 // committed on attempt 3 or 4
	cCommitAge4p // committed on attempt 5 or later

	// Read-only (snapshot) transactions. ROAborts and ReaderLockDemands
	// are both zero for workloads whose readers stay on the lock-free
	// versioned path; either going non-zero means eager fallback (or user
	// aborts) crept in.
	cROStarts
	cROCommits
	cROAborts
	cReaderLockDemands // abstract locks demanded by read-only txs (fallback)

	// Adaptive lock-granularity migrations completed by boosted objects on
	// this system (coarse->keyed and keyed->coarse respectively).
	cPromotions
	cDemotions

	nCounters
)

// statShards is the number of counter shards. A power of two so the shard
// pick is a mask; 16 is plenty to spread commit-path increments on any
// machine this runs on without making snapshot sums expensive.
const statShards = 16

// statShard is one padded cell of counters. The padding keeps adjacent
// shards on separate cache lines so transactions hashing to different shards
// never bounce a line between cores.
type statShard struct {
	counters [nCounters]atomic.Int64
	_        [128 - (nCounters*8)%128]byte
}

// Stats holds a System's monotonically increasing counters, sharded so that
// commit-path increments from concurrent transactions do not contend on one
// cache line. Writers pick a shard from the transaction ID; readers sum all
// shards. Counts are exact (every increment lands in exactly one shard);
// only the read is weakly consistent across counters, which snapshot
// tolerates the same way a single racing atomic load would.
type Stats struct {
	shards [statShards]statShard
}

// add bumps counter c on the shard selected by hint (typically the
// transaction ID, so one transaction's increments stay on one line).
func (s *Stats) add(hint uint64, c int) {
	s.shards[hint&(statShards-1)].counters[c].Add(1)
}

// total sums counter c across shards. This is the cold read path: snapshots,
// and the livelock detector's commit-progress probe (which runs only after a
// long streak of contention aborts).
func (s *Stats) total(c int) int64 {
	var t int64
	for i := range s.shards {
		t += s.shards[i].counters[c].Load()
	}
	return t
}

// countAbortKind bumps the per-cause counter for one aborted attempt.
func (s *Stats) countAbortKind(hint uint64, kind AbortKind) {
	switch kind {
	case KindLockTimeout:
		s.add(hint, cAbortsLockTimeout)
	case KindWounded:
		s.add(hint, cAbortsWounded)
	case KindValidation:
		s.add(hint, cAbortsValidation)
	case KindDoomed:
		s.add(hint, cAbortsDoomed)
	case KindDeadlock:
		s.add(hint, cAbortsDeadlock)
	default:
		s.add(hint, cAbortsOther)
	}
}

// countCommitAge buckets the attempt index that finally committed.
func (s *Stats) countCommitAge(hint uint64, attempt int) {
	switch {
	case attempt == 0:
		s.add(hint, cCommitAge0)
	case attempt == 1:
		s.add(hint, cCommitAge1)
	case attempt <= 3:
		s.add(hint, cCommitAge23)
	default:
		s.add(hint, cCommitAge4p)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.total(cStarts),
		Commits:            s.total(cCommits),
		Aborts:             s.total(cAborts),
		UserAborts:         s.total(cUserAborts),
		LockTimeouts:       s.total(cLockTimeouts),
		ValidationFailures: s.total(cValidationFailures),
		AbortsLockTimeout:  s.total(cAbortsLockTimeout),
		AbortsWounded:      s.total(cAbortsWounded),
		AbortsValidation:   s.total(cAbortsValidation),
		AbortsDoomed:       s.total(cAbortsDoomed),
		AbortsDeadlock:     s.total(cAbortsDeadlock),
		AbortsOther:        s.total(cAbortsOther),
		AdmissionWaits:     s.total(cAdmissionWaits),
		AdmissionRejects:   s.total(cAdmissionRejects),
		Collapses:          s.total(cCollapses),
		WoundsIssued:       s.total(cWoundsIssued),
		DeadlockCycles:     s.total(cDeadlockCycles),
		CommitAge: [4]int64{
			s.total(cCommitAge0),
			s.total(cCommitAge1),
			s.total(cCommitAge23),
			s.total(cCommitAge4p),
		},
		ROStarts:          s.total(cROStarts),
		ROCommits:         s.total(cROCommits),
		ROAborts:          s.total(cROAborts),
		ReaderLockDemands: s.total(cReaderLockDemands),
		Promotions:        s.total(cPromotions),
		Demotions:         s.total(cDemotions),
	}
}

func (s *Stats) reset() {
	for i := range s.shards {
		for c := 0; c < nCounters; c++ {
			s.shards[i].counters[c].Store(0)
		}
	}
}

// StatsSnapshot is a point-in-time copy of a System's counters.
type StatsSnapshot struct {
	Starts             int64
	Commits            int64
	Aborts             int64
	UserAborts         int64
	LockTimeouts       int64
	ValidationFailures int64

	AbortsLockTimeout int64
	AbortsWounded     int64
	AbortsValidation  int64
	AbortsDoomed      int64
	AbortsDeadlock    int64
	AbortsOther       int64

	AdmissionWaits   int64
	AdmissionRejects int64
	Collapses        int64

	// WoundsIssued counts older transactions dooming the younger holder
	// they were about to block on (wound-wait); DeadlockCycles counts
	// wait-for cycles detected and broken by the Detect policy. Note the
	// asymmetry with the per-cause abort counters: a wound issued is
	// recorded by the wounding system immediately, while AbortsWounded is
	// recorded when the victim discovers the doom — a victim that commits
	// before noticing never records the abort.
	WoundsIssued   int64
	DeadlockCycles int64

	// CommitAge is the age-at-commit histogram: how many transactions
	// committed on attempt 1, attempt 2, attempts 3-4, and attempt >= 5.
	CommitAge [4]int64

	// Read-only (snapshot) transaction counters. A workload whose readers
	// stay on the lock-free versioned path shows ROAborts == 0 and
	// ReaderLockDemands == 0; non-zero values mean some reads fell back to
	// eager locking (unversioned objects) or user code aborted.
	ROStarts          int64
	ROCommits         int64
	ROAborts          int64
	ReaderLockDemands int64

	// Adaptive lock-granularity migrations completed by boosted objects on
	// this system: Promotions counts coarse-to-keyed switches, Demotions the
	// reverse. Per-object detail (current discipline, contention EWMA) lives
	// on the object itself (boost.Object.AdaptiveStats); these counters are
	// the system-wide roll-up.
	Promotions int64
	Demotions  int64
}

// AbortRatio returns aborts divided by attempts started, in [0,1].
// It measures wasted work: the paper reports boosted objects abort far less
// often than read/write-conflict STMs on the same workload.
func (s StatsSnapshot) AbortRatio() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// AbortsByKind returns the per-cause abort counter for kind.
func (s StatsSnapshot) AbortsByKind(kind AbortKind) int64 {
	switch kind {
	case KindLockTimeout:
		return s.AbortsLockTimeout
	case KindWounded:
		return s.AbortsWounded
	case KindValidation:
		return s.AbortsValidation
	case KindDoomed:
		return s.AbortsDoomed
	case KindDeadlock:
		return s.AbortsDeadlock
	default:
		return s.AbortsOther
	}
}

// Sub returns the counter deltas s minus earlier, for measuring an interval.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts - earlier.Starts,
		Commits:            s.Commits - earlier.Commits,
		Aborts:             s.Aborts - earlier.Aborts,
		UserAborts:         s.UserAborts - earlier.UserAborts,
		LockTimeouts:       s.LockTimeouts - earlier.LockTimeouts,
		ValidationFailures: s.ValidationFailures - earlier.ValidationFailures,
		AbortsLockTimeout:  s.AbortsLockTimeout - earlier.AbortsLockTimeout,
		AbortsWounded:      s.AbortsWounded - earlier.AbortsWounded,
		AbortsValidation:   s.AbortsValidation - earlier.AbortsValidation,
		AbortsDoomed:       s.AbortsDoomed - earlier.AbortsDoomed,
		AbortsDeadlock:     s.AbortsDeadlock - earlier.AbortsDeadlock,
		AbortsOther:        s.AbortsOther - earlier.AbortsOther,
		AdmissionWaits:     s.AdmissionWaits - earlier.AdmissionWaits,
		AdmissionRejects:   s.AdmissionRejects - earlier.AdmissionRejects,
		Collapses:          s.Collapses - earlier.Collapses,
		WoundsIssued:       s.WoundsIssued - earlier.WoundsIssued,
		DeadlockCycles:     s.DeadlockCycles - earlier.DeadlockCycles,
		CommitAge: [4]int64{
			s.CommitAge[0] - earlier.CommitAge[0],
			s.CommitAge[1] - earlier.CommitAge[1],
			s.CommitAge[2] - earlier.CommitAge[2],
			s.CommitAge[3] - earlier.CommitAge[3],
		},
		ROStarts:          s.ROStarts - earlier.ROStarts,
		ROCommits:         s.ROCommits - earlier.ROCommits,
		ROAborts:          s.ROAborts - earlier.ROAborts,
		ReaderLockDemands: s.ReaderLockDemands - earlier.ReaderLockDemands,
		Promotions:        s.Promotions - earlier.Promotions,
		Demotions:         s.Demotions - earlier.Demotions,
	}
}

// CauseString formats the per-cause abort breakdown as one compact segment.
// It names every classified AbortKind; a coverage test holds it to that.
func (s StatsSnapshot) CauseString() string {
	return fmt.Sprintf("lock-timeout=%d wounded=%d validation=%d doomed=%d deadlock=%d other=%d",
		s.AbortsLockTimeout, s.AbortsWounded, s.AbortsValidation,
		s.AbortsDoomed, s.AbortsDeadlock, s.AbortsOther)
}

// CommitAgeString formats the age-at-commit histogram.
func (s StatsSnapshot) CommitAgeString() string {
	return fmt.Sprintf("attempt1=%d attempt2=%d attempt3-4=%d attempt5+=%d",
		s.CommitAge[0], s.CommitAge[1], s.CommitAge[2], s.CommitAge[3])
}

// String formats the snapshot as a single human-readable line.
func (s StatsSnapshot) String() string {
	line := fmt.Sprintf("starts=%d commits=%d aborts=%d (ratio %.3f, %s) lockTimeouts=%d validationFailures=%d",
		s.Starts, s.Commits, s.Aborts, s.AbortRatio(), s.CauseString(),
		s.LockTimeouts, s.ValidationFailures)
	if s.WoundsIssued > 0 || s.DeadlockCycles > 0 {
		line += fmt.Sprintf(" wounds=%d cycles=%d", s.WoundsIssued, s.DeadlockCycles)
	}
	if s.AdmissionRejects > 0 || s.Collapses > 0 || s.AdmissionWaits > 0 {
		line += fmt.Sprintf(" admissionWaits=%d admissionRejects=%d collapses=%d",
			s.AdmissionWaits, s.AdmissionRejects, s.Collapses)
	}
	if s.ROStarts > 0 {
		line += fmt.Sprintf(" roStarts=%d roCommits=%d roAborts=%d readerLockDemands=%d",
			s.ROStarts, s.ROCommits, s.ROAborts, s.ReaderLockDemands)
	}
	if s.Promotions > 0 || s.Demotions > 0 {
		line += fmt.Sprintf(" promotions=%d demotions=%d", s.Promotions, s.Demotions)
	}
	return line
}
