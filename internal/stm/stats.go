package stm

import (
	"fmt"
	"sync/atomic"
)

// Counter indices into a stats shard. The order is frozen by snapshot();
// nCounters sizes the per-shard array.
const (
	cStarts = iota
	cCommits
	cAborts
	cUserAborts
	cLockTimeouts
	cValidationFailures

	// Aborts broken down by classified cause (see AbortKind). The sum of
	// these five equals cAborts.
	cAbortsLockTimeout
	cAbortsWounded
	cAbortsValidation
	cAbortsDoomed
	cAbortsOther

	// Contention-collapse protection.
	cAdmissionWaits
	cAdmissionRejects
	cCollapses

	nCounters
)

// statShards is the number of counter shards. A power of two so the shard
// pick is a mask; 16 is plenty to spread commit-path increments on any
// machine this runs on without making snapshot sums expensive.
const statShards = 16

// statShard is one padded cell of counters. The padding keeps adjacent
// shards on separate cache lines so transactions hashing to different shards
// never bounce a line between cores.
type statShard struct {
	counters [nCounters]atomic.Int64
	_        [128 - (nCounters*8)%128]byte
}

// Stats holds a System's monotonically increasing counters, sharded so that
// commit-path increments from concurrent transactions do not contend on one
// cache line. Writers pick a shard from the transaction ID; readers sum all
// shards. Counts are exact (every increment lands in exactly one shard);
// only the read is weakly consistent across counters, which snapshot
// tolerates the same way a single racing atomic load would.
type Stats struct {
	shards [statShards]statShard
}

// add bumps counter c on the shard selected by hint (typically the
// transaction ID, so one transaction's increments stay on one line).
func (s *Stats) add(hint uint64, c int) {
	s.shards[hint&(statShards-1)].counters[c].Add(1)
}

// total sums counter c across shards. This is the cold read path: snapshots,
// and the livelock detector's commit-progress probe (which runs only after a
// long streak of contention aborts).
func (s *Stats) total(c int) int64 {
	var t int64
	for i := range s.shards {
		t += s.shards[i].counters[c].Load()
	}
	return t
}

// countAbortKind bumps the per-cause counter for one aborted attempt.
func (s *Stats) countAbortKind(hint uint64, kind AbortKind) {
	switch kind {
	case KindLockTimeout:
		s.add(hint, cAbortsLockTimeout)
	case KindWounded:
		s.add(hint, cAbortsWounded)
	case KindValidation:
		s.add(hint, cAbortsValidation)
	case KindDoomed:
		s.add(hint, cAbortsDoomed)
	default:
		s.add(hint, cAbortsOther)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.total(cStarts),
		Commits:            s.total(cCommits),
		Aborts:             s.total(cAborts),
		UserAborts:         s.total(cUserAborts),
		LockTimeouts:       s.total(cLockTimeouts),
		ValidationFailures: s.total(cValidationFailures),
		AbortsLockTimeout:  s.total(cAbortsLockTimeout),
		AbortsWounded:      s.total(cAbortsWounded),
		AbortsValidation:   s.total(cAbortsValidation),
		AbortsDoomed:       s.total(cAbortsDoomed),
		AbortsOther:        s.total(cAbortsOther),
		AdmissionWaits:     s.total(cAdmissionWaits),
		AdmissionRejects:   s.total(cAdmissionRejects),
		Collapses:          s.total(cCollapses),
	}
}

func (s *Stats) reset() {
	for i := range s.shards {
		for c := 0; c < nCounters; c++ {
			s.shards[i].counters[c].Store(0)
		}
	}
}

// StatsSnapshot is a point-in-time copy of a System's counters.
type StatsSnapshot struct {
	Starts             int64
	Commits            int64
	Aborts             int64
	UserAborts         int64
	LockTimeouts       int64
	ValidationFailures int64

	AbortsLockTimeout int64
	AbortsWounded     int64
	AbortsValidation  int64
	AbortsDoomed      int64
	AbortsOther       int64

	AdmissionWaits   int64
	AdmissionRejects int64
	Collapses        int64
}

// AbortRatio returns aborts divided by attempts started, in [0,1].
// It measures wasted work: the paper reports boosted objects abort far less
// often than read/write-conflict STMs on the same workload.
func (s StatsSnapshot) AbortRatio() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// AbortsByKind returns the per-cause abort counter for kind.
func (s StatsSnapshot) AbortsByKind(kind AbortKind) int64 {
	switch kind {
	case KindLockTimeout:
		return s.AbortsLockTimeout
	case KindWounded:
		return s.AbortsWounded
	case KindValidation:
		return s.AbortsValidation
	case KindDoomed:
		return s.AbortsDoomed
	default:
		return s.AbortsOther
	}
}

// Sub returns the counter deltas s minus earlier, for measuring an interval.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts - earlier.Starts,
		Commits:            s.Commits - earlier.Commits,
		Aborts:             s.Aborts - earlier.Aborts,
		UserAborts:         s.UserAborts - earlier.UserAborts,
		LockTimeouts:       s.LockTimeouts - earlier.LockTimeouts,
		ValidationFailures: s.ValidationFailures - earlier.ValidationFailures,
		AbortsLockTimeout:  s.AbortsLockTimeout - earlier.AbortsLockTimeout,
		AbortsWounded:      s.AbortsWounded - earlier.AbortsWounded,
		AbortsValidation:   s.AbortsValidation - earlier.AbortsValidation,
		AbortsDoomed:       s.AbortsDoomed - earlier.AbortsDoomed,
		AbortsOther:        s.AbortsOther - earlier.AbortsOther,
		AdmissionWaits:     s.AdmissionWaits - earlier.AdmissionWaits,
		AdmissionRejects:   s.AdmissionRejects - earlier.AdmissionRejects,
		Collapses:          s.Collapses - earlier.Collapses,
	}
}

// CauseString formats the per-cause abort breakdown as one compact segment.
func (s StatsSnapshot) CauseString() string {
	return fmt.Sprintf("timeout=%d wounded=%d validation=%d doomed=%d other=%d",
		s.AbortsLockTimeout, s.AbortsWounded, s.AbortsValidation,
		s.AbortsDoomed, s.AbortsOther)
}

// String formats the snapshot as a single human-readable line.
func (s StatsSnapshot) String() string {
	line := fmt.Sprintf("starts=%d commits=%d aborts=%d (ratio %.3f, %s) lockTimeouts=%d validationFailures=%d",
		s.Starts, s.Commits, s.Aborts, s.AbortRatio(), s.CauseString(),
		s.LockTimeouts, s.ValidationFailures)
	if s.AdmissionRejects > 0 || s.Collapses > 0 || s.AdmissionWaits > 0 {
		line += fmt.Sprintf(" admissionWaits=%d admissionRejects=%d collapses=%d",
			s.AdmissionWaits, s.AdmissionRejects, s.Collapses)
	}
	return line
}
