package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds a System's monotonically increasing counters. All fields are
// safe for concurrent update.
type Stats struct {
	Starts             atomic.Int64 // transaction attempts begun
	Commits            atomic.Int64 // attempts that committed
	Aborts             atomic.Int64 // attempts rolled back and retried
	UserAborts         atomic.Int64 // attempts rolled back by a user error
	LockTimeouts       atomic.Int64 // abstract-lock acquisitions that timed out
	ValidationFailures atomic.Int64 // read-set validations that failed (rwstm)

	// Aborts broken down by classified cause (see AbortKind). The sum of
	// these five equals Aborts.
	AbortsLockTimeout atomic.Int64
	AbortsWounded     atomic.Int64
	AbortsValidation  atomic.Int64
	AbortsDoomed      atomic.Int64
	AbortsOther       atomic.Int64

	// Contention-collapse protection.
	AdmissionWaits   atomic.Int64 // Atomic calls that queued for an admission slot
	AdmissionRejects atomic.Int64 // Atomic calls shed by admission control
	Collapses        atomic.Int64 // Atomic calls shed by the livelock detector
}

// countAbortKind bumps the per-cause counter for one aborted attempt.
func (s *Stats) countAbortKind(kind AbortKind) {
	switch kind {
	case KindLockTimeout:
		s.AbortsLockTimeout.Add(1)
	case KindWounded:
		s.AbortsWounded.Add(1)
	case KindValidation:
		s.AbortsValidation.Add(1)
	case KindDoomed:
		s.AbortsDoomed.Add(1)
	default:
		s.AbortsOther.Add(1)
	}
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts.Load(),
		Commits:            s.Commits.Load(),
		Aborts:             s.Aborts.Load(),
		UserAborts:         s.UserAborts.Load(),
		LockTimeouts:       s.LockTimeouts.Load(),
		ValidationFailures: s.ValidationFailures.Load(),
		AbortsLockTimeout:  s.AbortsLockTimeout.Load(),
		AbortsWounded:      s.AbortsWounded.Load(),
		AbortsValidation:   s.AbortsValidation.Load(),
		AbortsDoomed:       s.AbortsDoomed.Load(),
		AbortsOther:        s.AbortsOther.Load(),
		AdmissionWaits:     s.AdmissionWaits.Load(),
		AdmissionRejects:   s.AdmissionRejects.Load(),
		Collapses:          s.Collapses.Load(),
	}
}

func (s *Stats) reset() {
	s.Starts.Store(0)
	s.Commits.Store(0)
	s.Aborts.Store(0)
	s.UserAborts.Store(0)
	s.LockTimeouts.Store(0)
	s.ValidationFailures.Store(0)
	s.AbortsLockTimeout.Store(0)
	s.AbortsWounded.Store(0)
	s.AbortsValidation.Store(0)
	s.AbortsDoomed.Store(0)
	s.AbortsOther.Store(0)
	s.AdmissionWaits.Store(0)
	s.AdmissionRejects.Store(0)
	s.Collapses.Store(0)
}

// StatsSnapshot is a point-in-time copy of a System's counters.
type StatsSnapshot struct {
	Starts             int64
	Commits            int64
	Aborts             int64
	UserAborts         int64
	LockTimeouts       int64
	ValidationFailures int64

	AbortsLockTimeout int64
	AbortsWounded     int64
	AbortsValidation  int64
	AbortsDoomed      int64
	AbortsOther       int64

	AdmissionWaits   int64
	AdmissionRejects int64
	Collapses        int64
}

// AbortRatio returns aborts divided by attempts started, in [0,1].
// It measures wasted work: the paper reports boosted objects abort far less
// often than read/write-conflict STMs on the same workload.
func (s StatsSnapshot) AbortRatio() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// AbortsByKind returns the per-cause abort counter for kind.
func (s StatsSnapshot) AbortsByKind(kind AbortKind) int64 {
	switch kind {
	case KindLockTimeout:
		return s.AbortsLockTimeout
	case KindWounded:
		return s.AbortsWounded
	case KindValidation:
		return s.AbortsValidation
	case KindDoomed:
		return s.AbortsDoomed
	default:
		return s.AbortsOther
	}
}

// Sub returns the counter deltas s minus earlier, for measuring an interval.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts - earlier.Starts,
		Commits:            s.Commits - earlier.Commits,
		Aborts:             s.Aborts - earlier.Aborts,
		UserAborts:         s.UserAborts - earlier.UserAborts,
		LockTimeouts:       s.LockTimeouts - earlier.LockTimeouts,
		ValidationFailures: s.ValidationFailures - earlier.ValidationFailures,
		AbortsLockTimeout:  s.AbortsLockTimeout - earlier.AbortsLockTimeout,
		AbortsWounded:      s.AbortsWounded - earlier.AbortsWounded,
		AbortsValidation:   s.AbortsValidation - earlier.AbortsValidation,
		AbortsDoomed:       s.AbortsDoomed - earlier.AbortsDoomed,
		AbortsOther:        s.AbortsOther - earlier.AbortsOther,
		AdmissionWaits:     s.AdmissionWaits - earlier.AdmissionWaits,
		AdmissionRejects:   s.AdmissionRejects - earlier.AdmissionRejects,
		Collapses:          s.Collapses - earlier.Collapses,
	}
}

// CauseString formats the per-cause abort breakdown as one compact segment.
func (s StatsSnapshot) CauseString() string {
	return fmt.Sprintf("timeout=%d wounded=%d validation=%d doomed=%d other=%d",
		s.AbortsLockTimeout, s.AbortsWounded, s.AbortsValidation,
		s.AbortsDoomed, s.AbortsOther)
}

// String formats the snapshot as a single human-readable line.
func (s StatsSnapshot) String() string {
	line := fmt.Sprintf("starts=%d commits=%d aborts=%d (ratio %.3f, %s) lockTimeouts=%d validationFailures=%d",
		s.Starts, s.Commits, s.Aborts, s.AbortRatio(), s.CauseString(),
		s.LockTimeouts, s.ValidationFailures)
	if s.AdmissionRejects > 0 || s.Collapses > 0 || s.AdmissionWaits > 0 {
		line += fmt.Sprintf(" admissionWaits=%d admissionRejects=%d collapses=%d",
			s.AdmissionWaits, s.AdmissionRejects, s.Collapses)
	}
	return line
}
