package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds a System's monotonically increasing counters. All fields are
// safe for concurrent update.
type Stats struct {
	Starts             atomic.Int64 // transaction attempts begun
	Commits            atomic.Int64 // attempts that committed
	Aborts             atomic.Int64 // attempts rolled back and retried
	UserAborts         atomic.Int64 // attempts rolled back by a user error
	LockTimeouts       atomic.Int64 // abstract-lock acquisitions that timed out
	ValidationFailures atomic.Int64 // read-set validations that failed (rwstm)
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts.Load(),
		Commits:            s.Commits.Load(),
		Aborts:             s.Aborts.Load(),
		UserAborts:         s.UserAborts.Load(),
		LockTimeouts:       s.LockTimeouts.Load(),
		ValidationFailures: s.ValidationFailures.Load(),
	}
}

func (s *Stats) reset() {
	s.Starts.Store(0)
	s.Commits.Store(0)
	s.Aborts.Store(0)
	s.UserAborts.Store(0)
	s.LockTimeouts.Store(0)
	s.ValidationFailures.Store(0)
}

// StatsSnapshot is a point-in-time copy of a System's counters.
type StatsSnapshot struct {
	Starts             int64
	Commits            int64
	Aborts             int64
	UserAborts         int64
	LockTimeouts       int64
	ValidationFailures int64
}

// AbortRatio returns aborts divided by attempts started, in [0,1].
// It measures wasted work: the paper reports boosted objects abort far less
// often than read/write-conflict STMs on the same workload.
func (s StatsSnapshot) AbortRatio() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// Sub returns the counter deltas s minus earlier, for measuring an interval.
func (s StatsSnapshot) Sub(earlier StatsSnapshot) StatsSnapshot {
	return StatsSnapshot{
		Starts:             s.Starts - earlier.Starts,
		Commits:            s.Commits - earlier.Commits,
		Aborts:             s.Aborts - earlier.Aborts,
		UserAborts:         s.UserAborts - earlier.UserAborts,
		LockTimeouts:       s.LockTimeouts - earlier.LockTimeouts,
		ValidationFailures: s.ValidationFailures - earlier.ValidationFailures,
	}
}

// String formats the snapshot as a single human-readable line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf("starts=%d commits=%d aborts=%d (ratio %.3f) lockTimeouts=%d validationFailures=%d",
		s.Starts, s.Commits, s.Aborts, s.AbortRatio(), s.LockTimeouts, s.ValidationFailures)
}
