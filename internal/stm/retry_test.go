package stm

import (
	"errors"
	"testing"
	"time"
)

// TestMaxRetriesAttemptBudget pins the documented off-by-one: MaxRetries = n
// means at most n attempts (n-1 retries), after which Atomic returns
// ErrTooManyRetries.
func TestMaxRetriesAttemptBudget(t *testing.T) {
	cause := errors.New("always conflicts")
	for _, n := range []int{1, 2, 3, 7} {
		sys := NewSystem(Config{MaxRetries: n, BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})
		attempts := 0
		err := sys.Atomic(func(tx *Tx) error {
			attempts++
			tx.Abort(cause)
			return nil
		})
		if !errors.Is(err, ErrTooManyRetries) {
			t.Fatalf("MaxRetries=%d: err = %v, want ErrTooManyRetries", n, err)
		}
		if attempts != n {
			t.Errorf("MaxRetries=%d: ran %d attempts, want exactly %d", n, attempts, n)
		}
		if st := sys.Stats(); st.Aborts != int64(n) {
			t.Errorf("MaxRetries=%d: aborts=%d, want %d", n, st.Aborts, n)
		}
	}
}

// TestMaxRetriesLastAttemptCanCommit verifies the budget is not off by one in
// the other direction: a transaction that succeeds on its n-th attempt (with
// MaxRetries = n) commits rather than being cut off.
func TestMaxRetriesLastAttemptCanCommit(t *testing.T) {
	cause := errors.New("transient conflict")
	const n = 4
	sys := NewSystem(Config{MaxRetries: n, BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})
	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts < n {
			tx.Abort(cause)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v, want commit on final attempt", err)
	}
	if attempts != n {
		t.Errorf("ran %d attempts, want %d", attempts, n)
	}
}

// TestZeroMaxRetriesRetriesForever spot-checks the documented zero meaning:
// no retry cap, so a transaction needing many attempts still commits.
func TestZeroMaxRetriesRetriesForever(t *testing.T) {
	cause := errors.New("transient conflict")
	sys := NewSystem(Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})
	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts < 100 {
			tx.Abort(cause)
		}
		return nil
	})
	if err != nil || attempts != 100 {
		t.Fatalf("err=%v attempts=%d, want nil/100", err, attempts)
	}
}

// TestAbortCauseBreakdown checks the per-cause abort counters: registered
// causes land in their kind's bucket, unregistered ones in Other, and the
// buckets sum to Aborts.
func TestAbortCauseBreakdown(t *testing.T) {
	myTimeout := errors.New("fake lock timeout")
	RegisterAbortKind(myTimeout, KindLockTimeout)
	sys := NewSystem(Config{BackoffBase: time.Nanosecond, BackoffCap: time.Nanosecond})

	attempts := 0
	_ = sys.Atomic(func(tx *Tx) error {
		attempts++
		switch attempts {
		case 1:
			tx.Abort(myTimeout)
		case 2:
			tx.Abort(errors.New("who knows"))
		case 3:
			tx.Doom()
			// Doomed at commit: classified as KindDoomed.
		}
		return nil
	})
	// 4th attempt commits.
	st := sys.Stats()
	if st.AbortsLockTimeout != 1 || st.AbortsOther != 1 || st.AbortsDoomed != 1 {
		t.Errorf("breakdown = %s, want timeout=1 other=1 doomed=1", st.CauseString())
	}
	sum := st.AbortsLockTimeout + st.AbortsWounded + st.AbortsValidation + st.AbortsDoomed + st.AbortsOther
	if sum != st.Aborts {
		t.Errorf("cause buckets sum to %d, Aborts=%d", sum, st.Aborts)
	}
	if got := st.AbortsByKind(KindDoomed); got != 1 {
		t.Errorf("AbortsByKind(KindDoomed) = %d, want 1", got)
	}
}
