package stm

import (
	"math/rand/v2"
	"time"
)

// Config controls a System's retry policy.
type Config struct {
	// MaxRetries bounds how many times Atomic re-executes an aborted
	// transaction before giving up with ErrTooManyRetries. Zero means
	// retry forever (the paper's implicit policy: timeouts break
	// deadlocks, and the aborted transaction simply runs again).
	MaxRetries int

	// BackoffBase is the first retry's maximum backoff. Each subsequent
	// retry doubles the window up to BackoffCap. Zero selects a default
	// of 1 microsecond.
	BackoffBase time.Duration

	// BackoffCap bounds the backoff window. Zero selects a default of
	// 1 millisecond.
	BackoffCap time.Duration

	// LockTimeout is the default timed-acquisition budget lock managers
	// should use for abstract locks created under this system. Zero
	// selects 10 milliseconds. (Timeouts are how two-phase locking
	// recovers from deadlock, per the paper.)
	LockTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Microsecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Millisecond
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 10 * time.Millisecond
	}
	return c
}

// System is an isolated transaction domain: it owns a retry policy and a set
// of statistics counters. Independent benchmarks use independent Systems so
// their abort counts do not mix. The zero value is not usable; call
// NewSystem.
type System struct {
	cfg   Config
	stats Stats
}

// NewSystem returns a System with the given configuration.
func NewSystem(cfg Config) *System {
	return &System{cfg: cfg.withDefaults()}
}

// Default is the process-wide system used by the package-level Atomic.
var Default = NewSystem(Config{})

// Config returns the system's effective configuration.
func (s *System) Config() Config { return s.cfg }

// LockTimeout returns the system's default abstract-lock acquisition budget.
func (s *System) LockTimeout() time.Duration { return s.cfg.LockTimeout }

// Stats returns a snapshot of the system's counters.
func (s *System) Stats() StatsSnapshot { return s.stats.snapshot() }

// ResetStats zeroes the system's counters.
func (s *System) ResetStats() { s.stats.reset() }

// CountLockTimeout records a timed-out abstract-lock acquisition. Lock
// managers call it just before aborting the acquiring transaction.
func (s *System) CountLockTimeout() { s.stats.LockTimeouts.Add(1) }

// Atomic executes fn inside a transaction on the default system.
// See System.Atomic.
func Atomic(fn func(tx *Tx) error) error {
	return Default.Atomic(fn)
}

// MustAtomic executes fn inside a transaction on the default system and
// panics if the transaction ultimately fails. It is a convenience for
// examples and tests whose bodies cannot fail.
func MustAtomic(fn func(tx *Tx) error) {
	if err := Atomic(fn); err != nil {
		panic(err)
	}
}

// MustAtomicOn executes fn inside a transaction on sys, retrying until it
// commits, and panics if the system's retry budget is exhausted. The body
// cannot return an error; use System.Atomic when it can.
func MustAtomicOn(sys *System, fn func(tx *Tx)) {
	if err := sys.Atomic(func(tx *Tx) error { fn(tx); return nil }); err != nil {
		panic(err)
	}
}

// Atomic executes fn inside a transaction, retrying with randomized
// exponential backoff whenever the transaction aborts (lock timeout,
// validation failure, or explicit tx.Abort). It returns nil once an attempt
// commits.
//
// If fn returns a non-nil error the transaction rolls back — undoing every
// logged operation — and the error is returned to the caller without
// retrying. This gives callers transactional early-exit: "abort and give up"
// rather than "abort and retry".
//
// If fn panics with anything other than the runtime's private abort signal,
// the transaction rolls back and the panic is re-raised.
func (s *System) Atomic(fn func(tx *Tx) error) error {
	birth := uint64(0)
	for attempt := 0; ; attempt++ {
		tx := &Tx{id: txIDs.Add(1), attempt: attempt, system: s}
		if birth == 0 {
			birth = tx.id
		}
		tx.birth = birth
		s.stats.Starts.Add(1)
		aborted, err := s.runAttempt(tx, fn)
		if !aborted {
			if err != nil {
				// User error: rolled back, do not retry.
				s.stats.UserAborts.Add(1)
				return err
			}
			if tx.commit() {
				s.stats.Commits.Add(1)
				return nil
			}
			// Validation failure: rolled back inside commit.
			aborted = true
		}
		s.stats.Aborts.Add(1)
		if s.cfg.MaxRetries > 0 && attempt+1 >= s.cfg.MaxRetries {
			return ErrTooManyRetries
		}
		s.backoff(attempt)
	}
}

// runAttempt runs one execution of fn, converting an abort panic into a
// completed rollback. It reports whether the attempt aborted and, if not,
// the user error (if any, with rollback already performed).
func (s *System) runAttempt(tx *Tx, fn func(tx *Tx) error) (aborted bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if sig, ok := r.(abortSignal); ok && sig.tx == tx {
			tx.rollback()
			aborted = true
			return
		}
		// Foreign panic: roll back and propagate.
		tx.rollback()
		panic(r)
	}()
	err = fn(tx)
	if err != nil {
		tx.rollback()
	}
	return false, err
}

// backoff sleeps for a random duration in an exponentially growing window.
func (s *System) backoff(attempt int) {
	window := s.cfg.BackoffBase << uint(min(attempt, 20))
	if window > s.cfg.BackoffCap {
		window = s.cfg.BackoffCap
	}
	if window <= 0 {
		return
	}
	time.Sleep(time.Duration(rand.Int64N(int64(window))) + 1)
}
