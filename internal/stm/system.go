package stm

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/mvcc"
)

// Config controls a System's retry policy and overload protection.
type Config struct {
	// MaxRetries bounds how many attempts Atomic gives an aborting
	// transaction before giving up with ErrTooManyRetries: MaxRetries = n
	// means at most n attempts (n-1 retries). Zero means retry forever
	// (the paper's implicit policy: timeouts break deadlocks, and the
	// aborted transaction simply runs again).
	MaxRetries int

	// BackoffBase is the first retry's maximum backoff. Each subsequent
	// retry doubles the window up to BackoffCap. Zero selects a default
	// of 1 microsecond.
	BackoffBase time.Duration

	// BackoffCap bounds the backoff window. Zero selects a default of
	// 1 millisecond. (The livelock detector may escalate past the cap;
	// see CollapseAfter.)
	BackoffCap time.Duration

	// LockTimeout is the default timed-acquisition budget lock managers
	// should use for abstract locks created under this system. Zero
	// selects 10 milliseconds. (Timeouts are how two-phase locking
	// recovers from deadlock, per the paper.) With AdaptiveTimeout set it
	// becomes the budget's ceiling rather than its value.
	LockTimeout time.Duration

	// Contention selects the conflict-resolution policy the system's lock
	// managers consult at every blocking point (lockmgr.Timeout,
	// lockmgr.WoundWait, lockmgr.NewDetect()...). Nil means plain timed
	// acquisition — the paper's discipline. Locks constructed with an
	// explicit per-lock policy override this system-wide choice.
	Contention ContentionPolicy

	// AdaptiveTimeout tunes the residual timeout backstop to the workload:
	// the system keeps an exponentially weighted moving average of observed
	// lock-wait durations and sets the acquisition budget to a small
	// multiple of it, clamped to [LockTimeout/16, LockTimeout]. Under a
	// policy that resolves deadlocks itself (WoundWait, Detect) waits are
	// short and genuine, so a tight backstop converts a rare missed case
	// into a fast retry instead of a full stall; with no waits observed yet
	// the budget is simply LockTimeout.
	AdaptiveTimeout bool

	// MaxConcurrent caps the number of concurrently active transactions
	// (admission control). Zero means unlimited. When the cap is reached,
	// a new Atomic call queues for up to AdmissionTimeout and is then
	// shed with ErrContentionCollapse. Bounding concurrency is the first
	// line of defence against contention collapse: beyond a point, more
	// concurrent transactions mean more conflicts per commit, not more
	// throughput.
	MaxConcurrent int

	// AdmissionTimeout is how long an Atomic call waits for an admission
	// slot when MaxConcurrent is reached before failing with
	// ErrContentionCollapse. Zero sheds immediately (fail-fast).
	AdmissionTimeout time.Duration

	// CollapseAfter arms the livelock detector: after this many
	// consecutive contention aborts (lock timeouts or wounds) of one
	// Atomic call, the detector snapshots the system-wide commit counter
	// and escalates the backoff cap; if a further CollapseAfter
	// consecutive contention aborts pass with no transaction anywhere in
	// the system committing, the call is shed with ErrContentionCollapse
	// instead of spinning forever. Zero disables the detector.
	CollapseAfter int

	// Durability selects the sink that persists committed transactions'
	// redo streams (normally a *wal.Log). Nil means durability off: no
	// redo stream is retained and commits never wait on storage. With a
	// sink configured, the sink's own mode decides what an acknowledgment
	// means — see wal.Options (off / async / group commit).
	Durability DurabilitySink

	// StrictReadOnly makes a read-only transaction's eager fallback a
	// programming error: boosted objects panic instead of demanding an
	// abstract lock on behalf of a snapshot transaction. Use it to assert a
	// read-mostly workload touches only versioned objects and its readers
	// are genuinely lock-free. Off by default — the fallback is the
	// documented behaviour for unversioned disciplines.
	StrictReadOnly bool

	// LegacyHotPath disables the single-owner fast path: every attempt
	// allocates a fresh Tx descriptor (no pooling) that starts escalated,
	// so all log/lock/handler accessors take tx.mu — the runtime's
	// pre-optimization behaviour. It exists so the benchmark harness can
	// measure the fast path against a baseline in the same binary and the
	// same run; production systems leave it false.
	LegacyHotPath bool
}

func (c Config) withDefaults() Config {
	if c.BackoffBase <= 0 {
		c.BackoffBase = time.Microsecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Millisecond
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 10 * time.Millisecond
	}
	return c
}

// System is an isolated transaction domain: it owns a retry policy and a set
// of statistics counters. Independent benchmarks use independent Systems so
// their abort counts do not mix. The zero value is not usable; call
// NewSystem.
type System struct {
	cfg   Config
	stats Stats
	slots chan struct{} // admission slots; nil when MaxConcurrent == 0

	// ewmaWait is the adaptive-timeout estimator: an EWMA (alpha = 1/8) of
	// observed lock-wait durations in nanoseconds, updated by ObserveWait
	// from lock-manager slow paths. Zero means no wait observed yet.
	ewmaWait atomic.Uint64

	// active counts in-flight Atomic calls, maintained only when a
	// durability sink is configured (checkpoints need a quiescence check;
	// the undurable hot path should not pay for one).
	active atomic.Int64

	// snaps is the snapshot manager: commit sequence clock, pin registry,
	// version-retention accounting. Versioning stays inactive (writers pay
	// one atomic load) until the first pin — see readonly.go.
	snaps *mvcc.Manager

	// Epoch grace machinery for versioning activation: every Atomic call
	// enters the generation selected by gen's parity and exits it on
	// return; activation bumps gen and drains the old generation under
	// epochMu. versReady gates pins until the first activation's grace
	// period has completed.
	gen       atomic.Uint64
	epochs    [2]epochGen
	epochMu   sync.Mutex
	versReady atomic.Bool

	// overload is the durability sink's backpressure face, cached at
	// construction so the admission path pays one nil check instead of a
	// per-call type assertion. Non-nil iff the sink reports overload.
	overload OverloadSink
}

// NewSystem returns a System with the given configuration.
func NewSystem(cfg Config) *System {
	s := &System{cfg: cfg.withDefaults(), snaps: mvcc.NewManager()}
	if s.cfg.MaxConcurrent > 0 {
		s.slots = make(chan struct{}, s.cfg.MaxConcurrent)
	}
	if o, ok := s.cfg.Durability.(OverloadSink); ok {
		s.overload = o
	}
	return s
}

// Snapshots returns the system's snapshot manager. Boosted objects consult
// it for the activation flag and the version-GC trim bound; reports read its
// Stats.
func (s *System) Snapshots() *mvcc.Manager { return s.snaps }

// Default is the process-wide system used by the package-level Atomic.
var Default = NewSystem(Config{})

// Config returns the system's effective configuration.
func (s *System) Config() Config { return s.cfg }

// LockTimeout returns the system's abstract-lock acquisition budget. Without
// AdaptiveTimeout it is the configured constant; with it, a small multiple
// (8x) of the observed-wait EWMA, clamped to [configured/16, configured], so
// the backstop tracks how long waits actually last on this workload.
func (s *System) LockTimeout() time.Duration {
	base := s.cfg.LockTimeout
	if !s.cfg.AdaptiveTimeout {
		return base
	}
	e := s.ewmaWait.Load()
	if e == 0 {
		return base
	}
	d := 8 * time.Duration(e)
	if floor := base / 16; d < floor {
		d = floor
	}
	if d > base {
		d = base
	}
	return d
}

// StrictReadOnly reports whether the system treats a read-only
// transaction's abstract-lock demand as a programming error (see
// Config.StrictReadOnly). Exposed as a method so boosted objects check it
// without copying the whole Config.
func (s *System) StrictReadOnly() bool { return s.cfg.StrictReadOnly }

// Contention returns the system-wide contention policy, or nil when the
// system uses plain timed acquisition. Lock managers consult it at blocking
// points unless the individual lock was built with an explicit policy.
func (s *System) Contention() ContentionPolicy { return s.cfg.Contention }

// ObserveWait feeds one completed lock wait into the adaptive-timeout
// estimator. Lock managers call it from slow paths only (an acquisition that
// never blocked observes nothing), so the CAS loop is uncontended in the
// steady state.
func (s *System) ObserveWait(d time.Duration) {
	if !s.cfg.AdaptiveTimeout || d <= 0 {
		return
	}
	for {
		old := s.ewmaWait.Load()
		var next uint64
		if old == 0 {
			next = uint64(d)
		} else {
			next = old - old/8 + uint64(d)/8
			if next == 0 {
				next = 1
			}
		}
		if s.ewmaWait.CompareAndSwap(old, next) {
			return
		}
	}
}

// WaitEWMA returns the current observed-wait estimate, zero if no wait has
// been observed (or AdaptiveTimeout is off). For reports and tests.
func (s *System) WaitEWMA() time.Duration { return time.Duration(s.ewmaWait.Load()) }

// Stats returns a snapshot of the system's counters.
func (s *System) Stats() StatsSnapshot { return s.stats.snapshot() }

// ResetStats zeroes the system's counters.
func (s *System) ResetStats() { s.stats.reset() }

// ActiveTx reports the number of in-flight Atomic calls. Maintained only
// when the system has a durability sink configured (it exists for the
// checkpoint quiescence check; with durability off it always reads zero).
func (s *System) ActiveTx() int64 { return s.active.Load() }

// CountLockTimeout records a timed-out abstract-lock acquisition. Lock
// managers call it just before aborting the acquiring transaction. This is
// a cold path — the caller just slept through its whole lock budget — so it
// does not bother with a shard hint.
func (s *System) CountLockTimeout() { s.stats.add(0, cLockTimeouts) }

// CountWound records one wound issued under wound-wait: an older transaction
// doomed the younger holder it was about to block on. hint spreads the
// increment across stat shards (pass the wounding transaction's ID).
func (s *System) CountWound(hint uint64) { s.stats.add(hint, cWoundsIssued) }

// CountDeadlockCycle records one wait-for cycle detected (and broken) by the
// Detect contention policy.
func (s *System) CountDeadlockCycle(hint uint64) { s.stats.add(hint, cDeadlockCycles) }

// Atomic executes fn inside a transaction on the default system.
// See System.Atomic.
func Atomic(fn func(tx *Tx) error) error {
	return Default.Atomic(fn)
}

// AtomicCtx executes fn inside a transaction on the default system, honouring
// ctx. See System.AtomicCtx.
func AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	return Default.AtomicCtx(ctx, fn)
}

// MustAtomic executes fn inside a transaction on the default system and
// panics if the transaction ultimately fails. It is a convenience for
// examples and tests whose bodies cannot fail.
func MustAtomic(fn func(tx *Tx) error) {
	if err := Atomic(fn); err != nil {
		panic(err)
	}
}

// MustAtomicOn executes fn inside a transaction on sys, retrying until it
// commits, and panics if the system's retry budget is exhausted. The body
// cannot return an error; use System.Atomic when it can.
func MustAtomicOn(sys *System, fn func(tx *Tx)) {
	if err := sys.Atomic(func(tx *Tx) error { fn(tx); return nil }); err != nil {
		panic(err)
	}
}

// Atomic executes fn inside a transaction, retrying with randomized
// exponential backoff whenever the transaction aborts (lock timeout,
// validation failure, or explicit tx.Abort). It returns nil once an attempt
// commits.
//
// If fn returns a non-nil error the transaction rolls back — undoing every
// logged operation — and the error is returned to the caller without
// retrying. This gives callers transactional early-exit: "abort and give up"
// rather than "abort and retry".
//
// If fn panics with anything other than the runtime's private abort signal,
// the transaction rolls back and the panic is re-raised.
//
// Under admission control (Config.MaxConcurrent) or the livelock detector
// (Config.CollapseAfter), Atomic may instead return ErrContentionCollapse,
// with the transaction rolled back and no effects applied.
//
// The *Tx passed to fn is only valid during fn's dynamic extent: once the
// Atomic call returns, the descriptor is recycled for unrelated
// transactions. Neither fn nor any handler it registers may retain it.
func (s *System) Atomic(fn func(tx *Tx) error) error {
	return s.run(nil, fn)
}

// AtomicCtx is Atomic with deadline and cancellation: backoff sleeps,
// admission queueing, and abstract-lock waits all observe ctx.Done(), and
// between attempts the retry loop checks the context, so a cancelled call
// returns ctx.Err() promptly (at worst within one lock-timeout window)
// instead of retrying. Cancellation never interrupts a rollback: the attempt
// in flight always finishes undoing its effects first.
func (s *System) AtomicCtx(ctx context.Context, fn func(tx *Tx) error) error {
	if ctx == nil {
		return s.run(nil, fn)
	}
	return s.run(ctx, fn)
}

func (s *System) run(ctx context.Context, fn func(tx *Tx) error) error {
	return s.runWith(ctx, fn, roParams{})
}

func (s *System) runWith(ctx context.Context, fn func(tx *Tx) error, ro roParams) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	// Write-controller backpressure: while the durability sink's writer is
	// more than MaxPending bytes behind, shed mutating transactions here —
	// before they execute, acquire abstract locks, or enter the log — via
	// the same typed-error path as admission control. Read-only transactions
	// pass: they never append to the log.
	if !ro.ro && s.overload != nil && s.overload.Overloaded() {
		s.stats.add(0, cAdmissionRejects)
		return fmt.Errorf("%w: %w", ErrContentionCollapse, ErrBackpressure)
	}
	if err := s.admit(ctx); err != nil {
		return err
	}
	defer s.releaseSlot()
	if s.cfg.Durability != nil {
		s.active.Add(1)
		defer s.active.Add(-1)
	}
	// Count this call into the current versioning epoch (readonly.go). The
	// shard is random so concurrent starts spread across cache lines; the
	// deferred exit is on the same shard the entry landed on, even if the
	// generation has moved on since.
	esh := s.epochEnter(rand.Uint64())
	defer esh.ended.Add(1)
	// Latch the versioning decision for the whole call, here and only here
	// — after the epoch entry, so the activation grace period's invariant
	// holds: a call that latches false records no versions at all and the
	// drain waits for it; a call that entered the post-activation generation
	// necessarily latches true (Activate's store precedes the generation
	// bump). Consulting the live flag per operation instead would let a
	// writer flip to recording mid-transaction and seed a chain floor from
	// its own uncommitted state.
	ro.versLive = s.snaps.Active()

	if s.cfg.LegacyHotPath {
		return s.runLoop(ctx, fn, nil, ro)
	}
	tx := txPool.Get().(*Tx)
	err := s.runLoop(ctx, fn, tx, ro)
	// Reached only on normal return: a foreign panic from fn propagates
	// past us, deliberately leaving the descriptor out of the pool (the
	// panicking frame may still reference it).
	tx.recycle()
	return err
}

// runLoop is the retry loop. tx is the pooled descriptor reused across
// attempts, or nil in legacy mode (fresh escalated descriptor per attempt).
func (s *System) runLoop(ctx context.Context, fn func(tx *Tx) error, tx *Tx, ro roParams) error {
	var (
		birth     uint64
		conStreak int   // consecutive contention aborts (livelock detector)
		escalate  int   // backoff-cap escalation while the detector is armed
		baseline  int64 // system-wide commit count when the streak matured
	)
	for attempt := 0; ; attempt++ {
		id := txIDs.Add(1)
		if birth == 0 {
			birth = id
		}
		if tx == nil || s.cfg.LegacyHotPath {
			tx = &Tx{id: id, birth: birth, attempt: attempt, system: s, ctx: ctx}
			tx.escalate()
			// Pre-overhaul lock-set representation: membership checks and
			// registrations always go through a per-attempt map.
			tx.lockIdx = make(map[Unlocker]struct{})
		} else {
			tx.resetAttempt(s, ctx, id, birth, attempt)
		}
		tx.readOnly = ro.ro
		tx.snapSeq = ro.seq
		tx.versLive = ro.versLive
		s.stats.add(id, cStarts)
		if ro.ro {
			s.stats.add(id, cROStarts)
		}
		aborted, err := s.runAttempt(tx, fn)
		if !aborted {
			if err != nil {
				// User error: rolled back, do not retry.
				s.stats.add(id, cUserAborts)
				return err
			}
			if tx.commit() {
				s.stats.add(id, cCommits)
				if ro.ro {
					s.stats.add(id, cROCommits)
				}
				// Age-at-commit histogram: under a starvation-free policy
				// the tail buckets stay small, because aged transactions
				// win their conflicts instead of retrying indefinitely.
				s.stats.countCommitAge(id, attempt)
				if derr := tx.durErr; derr != nil {
					// Committed in memory, never acknowledged durable: the
					// effects are applied and will not be retried, but the
					// caller must not treat them as surviving a crash.
					tx.durErr = nil
					return fmt.Errorf("%w: %w", ErrNotDurable, derr)
				}
				return nil
			}
			// Validation failure or doom: rolled back inside commit.
			aborted = true
		}
		kind := ClassifyAbort(tx.Cause())
		s.stats.add(id, cAborts)
		s.stats.countAbortKind(id, kind)
		if ro.ro {
			// Reachable only off the lock-free path: an eager-fallback
			// read hit a lock timeout, or user code called tx.Abort.
			s.stats.add(id, cROAborts)
		}
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if s.cfg.MaxRetries > 0 && attempt+1 >= s.cfg.MaxRetries {
			return ErrTooManyRetries
		}
		// Livelock detection: a long run of contention aborts is only
		// collapse if nobody else is committing either — somebody
		// winning means the system makes progress and this call merely
		// needs (escalated) patience.
		if s.cfg.CollapseAfter > 0 && (kind == KindLockTimeout || kind == KindWounded || kind == KindDeadlock) {
			conStreak++
			switch {
			case conStreak == s.cfg.CollapseAfter:
				baseline = s.stats.total(cCommits)
			case conStreak > s.cfg.CollapseAfter:
				escalate++
				if now := s.stats.total(cCommits); now != baseline {
					baseline = now
					conStreak = s.cfg.CollapseAfter // progress: re-arm window
				} else if conStreak >= 2*s.cfg.CollapseAfter {
					s.stats.add(id, cCollapses)
					return ErrContentionCollapse
				}
			}
		} else {
			conStreak, escalate = 0, 0
		}
		if err := s.backoff(ctx, attempt, escalate); err != nil {
			return err
		}
	}
}

// admit claims an admission slot (queue-or-fail) when MaxConcurrent is set.
func (s *System) admit(ctx context.Context) error {
	if s.slots == nil {
		return nil
	}
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	s.stats.add(0, cAdmissionWaits)
	if s.cfg.AdmissionTimeout <= 0 {
		s.stats.add(0, cAdmissionRejects)
		return ErrContentionCollapse
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	timer := time.NewTimer(s.cfg.AdmissionTimeout)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-done:
		return ctx.Err()
	case <-timer.C:
		s.stats.add(0, cAdmissionRejects)
		return ErrContentionCollapse
	}
}

func (s *System) releaseSlot() {
	if s.slots != nil {
		<-s.slots
	}
}

// runAttempt runs one execution of fn, converting an abort panic into a
// completed rollback. It reports whether the attempt aborted and, if not,
// the user error (if any, with rollback already performed).
func (s *System) runAttempt(tx *Tx, fn func(tx *Tx) error) (aborted bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if sig, ok := r.(abortSignal); ok && sig.tx == tx {
			tx.rollback()
			aborted = true
			return
		}
		// Foreign panic: roll back and propagate.
		tx.rollback()
		panic(r)
	}()
	err = fn(tx)
	if err != nil {
		tx.rollback()
	}
	return false, err
}

// backoff sleeps for a random duration in an exponentially growing window,
// waking early (with ctx.Err()) if the context is cancelled. escalate > 0
// lifts the window cap — the livelock detector's pressure valve.
func (s *System) backoff(ctx context.Context, attempt, escalate int) error {
	window := s.cfg.BackoffBase << uint(min(attempt, 20))
	limit := s.cfg.BackoffCap << uint(min(escalate, 6))
	if window > limit {
		window = limit
	}
	if window <= 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	d := time.Duration(rand.Int64N(int64(window))) + 1
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
