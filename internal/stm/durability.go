package stm

import "errors"

// This file is the runtime's entire durability surface. Boosting's undo log
// is operation-level, so the stream of committed forward operations is
// already a logical redo log; the runtime's only jobs are to carry that
// stream on the transaction descriptor and to hand it to a sink at the
// right instant. Everything else — encoding, batching, fsync, recovery —
// lives in internal/wal behind the DurabilitySink interface.

// RedoOp is one serialized logical operation of a transaction's redo
// stream: the forward image of an effective boosted call. Obj identifies
// the durable object (assigned when the object registers with the WAL),
// Kind is an opcode in that object's namespace, and Data is the
// codec-encoded key plus any payload. The runtime treats all three as
// opaque.
type RedoOp struct {
	Obj  uint32
	Kind uint8
	Data []byte
}

// DurabilitySink receives each committing transaction's redo stream.
//
// Commit is called at the transaction's commit point with its abstract
// locks still held, so conflicting transactions reach the sink in
// serialization order and the sink's append order is a legal replay order.
// The sink must capture ops (encode or copy) before returning — the slice
// and its Data buffers are invalid afterwards.
//
// The returned wait function is the durability barrier: the runtime calls
// it after releasing the transaction's locks and before the outcome is
// released to the caller, so lock hold times stay short while the
// acknowledgment still implies durability. A nil wait means the sink needs
// no barrier (async or disabled modes). A non-nil error from wait marks
// the transaction as committed in memory but not acknowledged durable;
// Atomic surfaces it as ErrNotDurable.
type DurabilitySink interface {
	Commit(txID uint64, ops []RedoOp) (wait func() error)
}

// ErrNotDurable is returned by Atomic when the transaction committed in
// memory — its effects are applied and its locks released — but the
// durability barrier failed, so the commit was never acknowledged as
// durable. After a crash and recovery such a transaction may or may not
// reappear (whole, never partially); callers needing certainty must treat
// it as unresolved and re-check.
var ErrNotDurable = errors.New("stm: transaction committed in memory but not acknowledged durable")

// Redo appends one forward operation to the transaction's redo stream. The
// boosting kernel calls it (via a journal binding) for each effective
// mutation of a durable object; the stream is handed to the system's
// DurabilitySink iff the transaction commits, and discarded on abort.
func (tx *Tx) Redo(op RedoOp) {
	if tx.parallel.Load() {
		tx.mu.Lock()
		tx.redo = append(tx.redo, op)
		tx.mu.Unlock()
		return
	}
	tx.redo = append(tx.redo, op)
}

// RedoLen reports how many redo operations are currently recorded. For
// tests and introspection.
func (tx *Tx) RedoLen() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.redo)
}

// clearRedo zeroes the redo slice (dropping the Data buffers it pins) and
// truncates it, keeping capacity for the descriptor's next life.
func clearRedo(ops []RedoOp) []RedoOp {
	clear(ops)
	return ops[:0]
}
