// Package stm provides the transaction runtime that transactional boosting
// builds on: transaction lifecycle, an operation-level undo log, two-phase
// lock registration, commit/abort/validation handlers, and a retry loop with
// randomized exponential backoff.
//
// The runtime plays the role DSTM2 plays in the paper (Herlihy & Koskinen,
// "Transactional Boosting", PPoPP 2008): it serializes transactions in commit
// order (dynamic atomicity) and lets libraries register handlers that run
// when a transaction commits or aborts.
//
// Transactions are explicit values. Go has no thread-local storage, so the
// current transaction is passed to every transactional method:
//
//	err := stm.Atomic(func(tx *stm.Tx) error {
//	    set.Add(tx, 42)
//	    return nil
//	})
//
// Inside the function, a conflict (for example an abstract-lock timeout)
// aborts the transaction by panicking with a private sentinel; Atomic
// recovers it, rolls back the undo log in reverse order (Rule 3 of the
// paper), releases all two-phase locks, runs post-abort handlers (Rule 4),
// backs off, and retries. Panics never escape Atomic.
//
// # Hot-path engineering
//
// The per-call burden the paper claims is small — one abstract-lock
// acquisition plus one undo-log append — is kept small here by a
// single-owner fast path: until a transaction enters Parallel, its log,
// lock-set, and handler state are touched only by the owning goroutine and
// accessed without tx.mu. Parallel escalates the descriptor once (a one-way
// flag per attempt), after which every accessor takes the mutex. Descriptors
// and their slices are recycled across attempts and Atomic calls through a
// sync.Pool, so a steady-state transaction allocates nothing. See DESIGN.md
// §6 for the invariants.
package stm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tboost/internal/faultpoint"
)

// Status is the lifecycle state of a transaction.
type Status int32

const (
	// Active means the transaction is executing its body.
	Active Status = iota
	// Validating means the transaction is running its pre-commit
	// validation handlers (used by the read/write STM baseline).
	Validating
	// Committed means the transaction committed; its effects are permanent.
	Committed
	// Aborting means the transaction is running inverse operations.
	Aborting
	// Aborted means rollback finished; the transaction left no trace.
	Aborted
	// Prepared means the transaction passed validation and its prepare
	// record is force-logged: effects applied, locks held, undo intact,
	// parked until a coordinator's Commit or Abort (see twopc.go).
	Prepared
)

// String returns the lower-case name of the status.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Validating:
		return "validating"
	case Committed:
		return "committed"
	case Aborting:
		return "aborting"
	case Aborted:
		return "aborted"
	case Prepared:
		return "prepared"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// ErrAborted is the cause reported when a transaction is aborted without a
// more specific reason.
var ErrAborted = errors.New("stm: transaction aborted")

// ErrTooManyRetries is returned by Atomic when a transaction exceeded the
// system's retry budget without committing.
var ErrTooManyRetries = errors.New("stm: transaction exceeded retry limit")

// ErrDoomed is the cause reported when a transaction discovers at commit that
// a contention manager (or an injected fault) doomed it.
var ErrDoomed = errors.New("stm: transaction doomed by contention manager")

// ErrInjectedValidation is the cause used when a failpoint forces a
// validation failure (chaos testing).
var ErrInjectedValidation = errors.New("stm: failpoint-injected validation failure")

// ErrContentionCollapse is returned by Atomic when the system's admission
// control rejects the transaction, or when the livelock detector concludes
// that retrying cannot make progress: the transaction kept losing lock
// conflicts while no transaction anywhere in the system committed. Callers
// should shed load (fail the request, queue it externally) rather than
// immediately retrying.
var ErrContentionCollapse = errors.New("stm: contention collapse, transaction shed")

// Unlocker is a two-phase lock held by a transaction. The lock manager
// registers each acquired lock with the owning transaction; the runtime calls
// Unlock exactly once per registered lock after commit or after rollback
// completes (locks are released only when every inverse has executed, as the
// paper requires).
type Unlocker interface {
	Unlock(tx *Tx)
}

// txIDs generates unique transaction identifiers.
var txIDs atomic.Uint64

// lockSpill is the lock-set size past which the linear-scan membership check
// spills to a map. Almost every transaction holds a handful of abstract
// locks (the paper's workloads hold one or two), so the common case is a
// short scan over a slice that is already in cache; only lock-hungry
// transactions pay for a map.
const lockSpill = 16

// txPool recycles transaction descriptors — and, transitively, the undo,
// lock, and handler slices they carry — across retry attempts and Atomic
// calls. Descriptors are returned to the pool with every reference cleared,
// so the pool never pins user closures or locks.
var txPool = sync.Pool{New: func() any { return new(Tx) }}

// Tx is a transaction descriptor, created by Atomic and valid for one
// attempt. A Tx is driven by one goroutine, except inside Parallel, which
// lets multiple goroutines work on behalf of the same transaction (the
// paper's multi-threaded-transactions extension).
//
// The descriptor's mutable state is split in two:
//
//   - The log/lock/handler state below tx.mu is single-owner: it is touched
//     without locking until the transaction enters Parallel, which sets the
//     one-way escalation flag; from then on every access goes through tx.mu.
//   - The doom/cause state below asyncMu may be touched by other
//     transactions' goroutines at any time (contention managers doom their
//     victims asynchronously), so it is always guarded — by its own small
//     mutex, off the single-owner fast path.
//
// Descriptors are pooled: once Atomic returns, the Tx may be reset and
// reused by an unrelated transaction. Code must therefore never retain a
// *Tx beyond the dynamic extent of the Atomic call that supplied it (see
// DESIGN.md §6). A stale Doom on a recycled descriptor is tolerated — it
// costs the new owner at most one spurious retry — but any other access is
// a bug.
type Tx struct {
	id      uint64
	birth   uint64 // first attempt's id; stable across retries (lock priority)
	attempt int    // 0-based attempt number within one Atomic call
	status  atomic.Int32
	system  *System
	ctx     context.Context // non-nil only under AtomicCtx

	// parallel is the one-way escalation flag: false means the state below
	// mu is owned exclusively by the goroutine running the attempt, true
	// means Parallel branches may be sharing it. It is set only by the
	// owning goroutine (entering Parallel) while no branch is running, and
	// reset between attempts, so each accessor observes a stable value.
	parallel atomic.Bool

	mu         sync.Mutex            // guards the state below only after escalation
	undo       []func()              // inverse operations, applied in reverse on abort
	redo       []RedoOp              // forward ops for the durability sink (committed txs only)
	lazy       []lazyAttach          // pending op logs of lazy boosted objects, drained at commit
	locks      []Unlocker            // two-phase locks, released at commit/abort
	lockIdx    map[Unlocker]struct{} // non-nil once len(locks) > lockSpill
	atCommit   []func()              // run at the commit point, before lock release
	onCommit   []func()              // disposable actions deferred to after commit
	onAbort    []func()              // disposable actions deferred to after abort
	onValidate []func() error        // pre-commit validation (rwstm read-set checks)

	ext map[any]any // extension slots for cooperating packages (e.g. rwstm)

	// vers holds the pending version logs of versioned boosted objects this
	// transaction mutated; flushed at the commit point under a fresh commit
	// sequence number, discarded on abort (see version.go).
	vers []versionAttach

	// disc holds the per-object lock-discipline latches of adaptive boosted
	// objects this transaction touched: the mode each object was in at the
	// transaction's first lock demand on it, pinned for the rest of the
	// attempt so a concurrent granularity migration cannot split the
	// transaction's lock footprint across tables (see adapt.go).
	disc []discAttach

	// readOnly marks a snapshot transaction (AtomicRO / Snapshot.Atomic):
	// snapSeq is its pinned sequence and mutating accessors panic. Set once
	// per attempt before fn runs; read concurrently by contention managers
	// selecting victims, which is safe for the same reason Birth reads are —
	// it is stable for the descriptor's whole attempt and the reader holds a
	// lock-internal mutex ordered after the attempt began.
	readOnly bool
	snapSeq  uint64

	// versLive is the versioning decision latched for the whole Atomic call
	// at the moment it entered its epoch generation (runWith): true means
	// every versioned mutation of this transaction seeds and records, false
	// means none do. Latching is what keeps the activation grace period's
	// all-or-nothing invariant — a mid-call flip of the manager's Active
	// flag must not be observed per operation, or a writer could plant a
	// seed derived from its own uncommitted earlier mutation (the chain
	// floor would then survive its abort). Set once per attempt before fn
	// runs, like readOnly.
	versLive bool

	// commitSeq is the commit sequence number assigned by flushVersions;
	// zero for transactions that mutated no versioned object. Read by
	// AtCommit handlers (the history recorder).
	commitSeq uint64

	doomed     atomic.Bool
	asyncMu    sync.Mutex    // guards doomCh/doomClosed/abortCause (cross-goroutine)
	doomCh     chan struct{} // lazily created; closed by Doom (see DoomChan)
	doomClosed bool
	abortCause error

	// durErr records a failed durability barrier: the attempt committed in
	// memory but was never acknowledged durable. Written and read only by
	// the goroutine driving the attempt (commit runs post-Parallel).
	durErr error
}

// abortSignal is the private panic payload used to unwind an aborting
// transaction out of user code. It never escapes Atomic.
type abortSignal struct{ tx *Tx }

// ID returns the transaction's unique identifier. IDs are never reused, and
// each retry attempt gets a fresh ID.
func (tx *Tx) ID() uint64 { return tx.id }

// Attempt returns the zero-based retry attempt number of this transaction
// within its Atomic call.
func (tx *Tx) Attempt() int { return tx.attempt }

// Birth returns the transaction's age token: the ID of its first attempt,
// stable across retries. Contention managers (wound-wait) compare Birth so
// that a transaction's priority rises as it is retried, guaranteeing the
// oldest transaction eventually wins.
func (tx *Tx) Birth() uint64 { return tx.birth }

// Status returns the transaction's current lifecycle state.
func (tx *Tx) Status() Status { return Status(tx.status.Load()) }

// ReadOnly reports whether this is a snapshot transaction (AtomicRO or
// Snapshot.Atomic). Read-only transactions answer versioned reads from their
// pinned snapshot, may not mutate, and are never chosen as contention
// victims while lock-free.
func (tx *Tx) ReadOnly() bool { return tx.readOnly }

// SnapshotSeq returns the pinned snapshot sequence of a read-only
// transaction, or zero for ordinary transactions. Versioned objects answer
// this transaction's reads at this sequence.
func (tx *Tx) SnapshotSeq() uint64 { return tx.snapSeq }

// RecordsVersions reports whether this transaction participates in version
// recording: the snapshot manager was already active when the Atomic call
// entered its versioning epoch. The answer is latched for the whole call —
// a transaction that began before activation answers false for every
// operation, even if activation happens mid-flight, and the activation
// grace period waits for it; a transaction that entered the post-activation
// generation always answers true. Versioned objects consult it (through
// their own VersioningLive) before any seed/record bookkeeping.
func (tx *Tx) RecordsVersions() bool { return tx.versLive }

// CommitSeq returns the commit sequence number assigned when the
// transaction's version records were published, or zero if it mutated no
// versioned object (or has not reached its commit point). Meaningful inside
// AtCommit handlers and after commit.
func (tx *Tx) CommitSeq() uint64 { return tx.commitSeq }

// System returns the system this transaction runs under.
func (tx *Tx) System() *System { return tx.system }

// Context returns the context the transaction runs under: the one passed to
// AtomicCtx, or context.Background() for plain Atomic. Lock managers consult
// it so cancellation interrupts waits.
func (tx *Tx) Context() context.Context {
	if tx.ctx == nil {
		return context.Background()
	}
	return tx.ctx
}

// Done returns a channel closed when the transaction's context is cancelled,
// or nil for transactions without a context (a nil channel never selects, so
// wait loops can include it unconditionally).
func (tx *Tx) Done() <-chan struct{} {
	if tx.ctx == nil {
		return nil
	}
	return tx.ctx.Done()
}

// escalate flips the descriptor into shared mode. Called by Parallel before
// any branch starts; from here until the next attempt every log/lock/handler
// accessor takes tx.mu.
func (tx *Tx) escalate() { tx.parallel.Store(true) }

// Shared reports whether the transaction has escalated to multi-goroutine
// mode (Parallel has run during the current attempt). While false, all
// transactional state is touched by one goroutine only, so lock managers may
// treat "registered with tx" as "owned by tx" without synchronizing: the
// goroutine that registered a lock completed (or unwound) its acquisition
// before issuing the current call.
func (tx *Tx) Shared() bool { return tx.parallel.Load() }

// stateLock/stateUnlock guard the log/lock/handler state only when the
// transaction has escalated to shared mode. The flag cannot change while an
// accessor is between the two calls: escalation happens only on the owning
// goroutine with no branches running, and that goroutine cannot be inside an
// accessor at the same time.
func (tx *Tx) stateLock() {
	if tx.parallel.Load() {
		tx.mu.Lock()
	}
}

func (tx *Tx) stateUnlock() {
	if tx.parallel.Load() {
		tx.mu.Unlock()
	}
}

// Doom marks the transaction for asynchronous abort. Unlike Abort, Doom may
// be called from any goroutine: contention managers use it to make a victim
// abort itself (DSTM2-style "writer aborts visible readers"). The victim
// observes the flag at its next transactional access or at validation and
// unwinds normally.
func (tx *Tx) Doom() {
	tx.doomed.Store(true)
	tx.asyncMu.Lock()
	if tx.doomCh != nil && !tx.doomClosed {
		close(tx.doomCh)
		tx.doomClosed = true
	}
	tx.asyncMu.Unlock()
}

// DoomWith dooms the transaction and records cause as its abort cause, so
// the retry loop's per-cause stats classify the abort by what actually
// happened (wounded vs deadlock victim) rather than by where the doom was
// discovered. Because setCause is first-write-wins, a transaction doomed by
// several managers keeps the first cause; like Doom, DoomWith is safe to call
// from any goroutine and safe against recycled descriptors (a stale doom
// costs at most one spurious retry).
func (tx *Tx) DoomWith(cause error) {
	if cause != nil {
		tx.setCause(cause)
	}
	tx.Doom()
}

// Doomed reports whether some other transaction has requested this one
// abort. Cooperating packages poll it on each transactional access.
func (tx *Tx) Doomed() bool { return tx.doomed.Load() }

// DoomChan returns a channel closed when the transaction is doomed, so lock
// wait loops can wake immediately instead of discovering the doom at their
// next poll.
func (tx *Tx) DoomChan() <-chan struct{} {
	tx.asyncMu.Lock()
	defer tx.asyncMu.Unlock()
	if tx.doomCh == nil {
		tx.doomCh = make(chan struct{})
		if tx.doomed.Load() {
			close(tx.doomCh)
			tx.doomClosed = true
		}
	}
	return tx.doomCh
}

// Abort aborts the transaction with the given cause and unwinds the calling
// goroutine back to Atomic, which rolls back and retries. A nil cause is
// replaced by ErrAborted. Abort never returns.
func (tx *Tx) Abort(cause error) {
	if cause == nil {
		cause = ErrAborted
	}
	tx.setCause(cause)
	panic(abortSignal{tx})
}

// setCause records the abort cause. Every write to abortCause goes through
// here: Cause may be called from other goroutines (Parallel branches, doom
// diagnostics), so unguarded writes race.
func (tx *Tx) setCause(cause error) {
	tx.asyncMu.Lock()
	if tx.abortCause == nil {
		tx.abortCause = cause // first cause wins under Parallel
	}
	tx.asyncMu.Unlock()
}

// Cause returns the error that aborted the transaction, or nil while it is
// alive. Intended for post-abort diagnostics from OnAbort handlers.
func (tx *Tx) Cause() error {
	tx.asyncMu.Lock()
	defer tx.asyncMu.Unlock()
	return tx.abortCause
}

// Log appends an inverse operation to the transaction's undo log. If the
// transaction aborts, logged operations run in reverse order of logging
// (Rule 3: compensating actions). If it commits, the log is discarded.
func (tx *Tx) Log(undo func()) {
	if tx.readOnly {
		panic("stm: mutation (undo log append) in read-only transaction")
	}
	if tx.parallel.Load() {
		tx.mu.Lock()
		tx.undo = append(tx.undo, undo)
		tx.mu.Unlock()
		return
	}
	tx.undo = append(tx.undo, undo)
}

// UndoDepth reports how many inverse operations are currently logged.
// It exists chiefly for tests and introspection.
func (tx *Tx) UndoDepth() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.undo)
}

// AtCommit registers a handler to run at the transaction's commit point:
// after validation succeeds and the transaction is irrevocably committed,
// but before its two-phase locks are released. Handlers therefore run in
// serialization order with respect to every conflicting transaction. The
// history recorder uses this to log commit events in commit order; most
// code wants OnCommit instead.
func (tx *Tx) AtCommit(f func()) {
	tx.stateLock()
	tx.atCommit = append(tx.atCommit, f)
	tx.stateUnlock()
}

// OnCommit registers a disposable action to run after the transaction
// commits, in registration order. Per Rule 4 such actions must be disposable
// method calls: postponable without any other transaction observing the
// delay (for example releasing a transactional semaphore). Handlers must not
// retain tx beyond their own invocation: the descriptor is recycled once
// Atomic returns.
func (tx *Tx) OnCommit(f func()) {
	if tx.readOnly {
		panic("stm: OnCommit in read-only transaction")
	}
	tx.stateLock()
	tx.onCommit = append(tx.onCommit, f)
	tx.stateUnlock()
}

// OnAbort registers a disposable action to run after rollback completes,
// in registration order (for example returning a unique ID to its pool).
func (tx *Tx) OnAbort(f func()) {
	if tx.readOnly {
		panic("stm: OnAbort in read-only transaction")
	}
	tx.stateLock()
	tx.onAbort = append(tx.onAbort, f)
	tx.stateUnlock()
}

// OnValidate registers a pre-commit validation handler. If any handler
// returns a non-nil error the transaction aborts and retries instead of
// committing. The read/write-conflict STM baseline uses this to validate
// its read set; pure boosted objects never need it.
func (tx *Tx) OnValidate(f func() error) {
	tx.stateLock()
	tx.onValidate = append(tx.onValidate, f)
	tx.stateUnlock()
}

// RegisterLock records that the transaction holds lock l, returning true if
// l was not already held. Lock managers use the result to make acquisition
// reentrant: only the first registration performs a real acquire, mirroring
// the paper's "if (lockSet.add(lock))" guard.
func (tx *Tx) RegisterLock(l Unlocker) bool {
	if tx.parallel.Load() {
		tx.mu.Lock()
		ok := tx.registerLock(l)
		tx.mu.Unlock()
		return ok
	}
	return tx.registerLock(l)
}

func (tx *Tx) registerLock(l Unlocker) bool {
	if tx.holdsLocked(l) {
		return false
	}
	if tx.readOnly {
		// A read-only transaction demanding an abstract lock is on the
		// eager fallback path (unversioned object). Counted so workloads
		// can assert their snapshot reads are truly lock-free.
		tx.system.stats.add(tx.id, cReaderLockDemands)
	}
	tx.locks = append(tx.locks, l)
	if tx.lockIdx != nil {
		tx.lockIdx[l] = struct{}{}
	} else if len(tx.locks) > lockSpill {
		tx.lockIdx = make(map[Unlocker]struct{}, 2*lockSpill)
		for _, held := range tx.locks {
			tx.lockIdx[held] = struct{}{}
		}
	}
	return true
}

// holdsLocked is the membership check behind RegisterLock/Holds: a linear
// scan of the (short) lock slice, or a map probe once the set has spilled.
func (tx *Tx) holdsLocked(l Unlocker) bool {
	if tx.lockIdx != nil {
		_, held := tx.lockIdx[l]
		return held
	}
	for _, held := range tx.locks {
		if held == l {
			return true
		}
	}
	return false
}

// UnregisterLock removes a lock registration made by RegisterLock. Lock
// managers call it when a timed acquisition fails after registration.
func (tx *Tx) UnregisterLock(l Unlocker) {
	tx.stateLock()
	defer tx.stateUnlock()
	if !tx.holdsLocked(l) {
		return
	}
	if tx.lockIdx != nil {
		delete(tx.lockIdx, l)
	}
	for i, held := range tx.locks {
		if held == l {
			tx.locks = append(tx.locks[:i], tx.locks[i+1:]...)
			tx.locks = tx.locks[:len(tx.locks):cap(tx.locks)]
			break
		}
	}
}

// Holds reports whether the transaction currently holds lock l.
func (tx *Tx) Holds(l Unlocker) bool {
	tx.stateLock()
	defer tx.stateUnlock()
	return tx.holdsLocked(l)
}

// LockCount reports how many distinct locks the transaction holds.
func (tx *Tx) LockCount() int {
	tx.stateLock()
	defer tx.stateUnlock()
	return len(tx.locks)
}

// SetExt associates an extension value with the transaction under key.
// Cooperating packages (such as the rwstm baseline) use extension slots to
// attach their per-transaction state without the runtime knowing about them.
func (tx *Tx) SetExt(key, val any) {
	tx.stateLock()
	if tx.ext == nil {
		tx.ext = make(map[any]any, 2)
	}
	tx.ext[key] = val
	tx.stateUnlock()
}

// Ext returns the extension value stored under key, or nil.
func (tx *Tx) Ext(key any) any {
	tx.stateLock()
	defer tx.stateUnlock()
	return tx.ext[key]
}

// releaseLocks releases every registered lock in reverse acquisition order,
// keeping the slice capacity for the next attempt. The spill map, if any, is
// dropped rather than cleared: Go maps never shrink, so a single lock-hungry
// transaction would otherwise leave every later user of the pooled
// descriptor paying an O(buckets) clear per attempt.
func (tx *Tx) releaseLocks() {
	for i := len(tx.locks) - 1; i >= 0; i-- {
		tx.locks[i].Unlock(tx)
	}
	clear(tx.locks)
	tx.locks = tx.locks[:0]
	tx.lockIdx = nil
}

// clearFuncs zeroes a closure slice and truncates it, retaining capacity
// without pinning the closures (or anything they capture) in the pool.
func clearFuncs(fns []func()) []func() {
	clear(fns)
	return fns[:0]
}

// clearTail zeroes fns[n:] and truncates to n — clearFuncs for a nested
// savepoint rollback, which discards only the child's suffix.
func clearTail(fns []func(), n int) []func() {
	clear(fns[n:])
	return fns[:n]
}

// rollback runs the undo log in reverse, then releases locks, then runs
// post-abort disposables. The ordering is significant: inverses reuse the
// transaction's abstract locks (Lemma 5.2 shows they need no new ones), so
// locks are held until every inverse has executed.
func (tx *Tx) rollback() {
	tx.status.Store(int32(Aborting))
	faultpoint.Hit(faultpoint.StmMidRollback) // delay window before inverses
	for i := len(tx.undo) - 1; i >= 0; i-- {
		faultpoint.Hit(faultpoint.StmBetweenUndo) // delay window mid-inverse
		tx.undo[i]()
	}
	tx.undo = clearFuncs(tx.undo)
	tx.redo = clearRedo(tx.redo) // an aborted tx contributes nothing to the log
	tx.clearLazy()               // pending lazy ops never ran; abort is truncation
	tx.discardVers()             // pending versions were never published
	tx.releaseLocks()
	tx.clearDisc() // discipline latches die with the footprint they pinned
	tx.status.Store(int32(Aborted))
	faultpoint.Hit(faultpoint.StmPostAbort) // delay window before disposables
	for _, f := range tx.onAbort {
		f()
	}
	tx.onAbort = clearFuncs(tx.onAbort)
	tx.onCommit = clearFuncs(tx.onCommit)
	tx.atCommit = clearFuncs(tx.atCommit)
	clear(tx.onValidate)
	tx.onValidate = tx.onValidate[:0]
}

// lockFreeReader reports whether the transaction is a snapshot reader that
// never left the lock-free path: read-only, holding no abstract locks and no
// pending lazy logs. Such a transaction can never legitimately be doomed.
func (tx *Tx) lockFreeReader() bool {
	return tx.readOnly && len(tx.locks) == 0 && len(tx.lazy) == 0
}

// commit validates, then makes the transaction's effects permanent, releases
// locks, and runs post-commit disposables. It returns false if validation
// failed or the transaction was doomed by a contention manager, in which
// case the transaction has been rolled back.
func (tx *Tx) commit() bool {
	if faultpoint.Hit(faultpoint.StmPreCommit) == faultpoint.Doom {
		tx.Doom() // injected contention-manager doom, discovered below
	}
	if tx.doomed.Load() && !tx.lockFreeReader() {
		// A lock-free snapshot reader holds nothing a contention manager
		// could legitimately want, so a doom here can only be stale noise
		// from the descriptor's previous life (see the Tx doc comment) —
		// honouring it would make "readers never abort" probabilistic.
		tx.setCause(ErrDoomed)
		tx.rollback()
		return false
	}
	tx.status.Store(int32(Validating))
	if faultpoint.Hit(faultpoint.StmValidate) == faultpoint.FailValidation {
		tx.setCause(ErrInjectedValidation)
		tx.system.stats.add(tx.id, cValidationFailures)
		tx.rollback()
		return false
	}
	for _, f := range tx.onValidate {
		if err := f(); err != nil {
			tx.setCause(err)
			tx.system.stats.add(tx.id, cValidationFailures)
			tx.rollback()
			return false
		}
	}
	clear(tx.onValidate)
	tx.onValidate = tx.onValidate[:0]
	// Commit-time drain of lazy boosted objects: fuse each pending log,
	// acquire the surviving ops' abstract locks for the commit instant,
	// re-validate optimistic reads, and apply. Runs before the Committed
	// store so a drain abort is an ordinary pre-commit abort, and before
	// the durability sink so tx.redo carries the post-fusion op stream.
	if len(tx.lazy) > 0 && !tx.drainLazy() {
		return false
	}
	tx.status.Store(int32(Committed))
	// Publish pending version records under a fresh commit sequence while
	// the abstract locks are still held: sequence order = serialization
	// order = WAL append order for conflicting transactions (version.go).
	if len(tx.vers) > 0 {
		tx.flushVersions()
	}
	for _, f := range tx.atCommit {
		f()
	}
	tx.atCommit = clearFuncs(tx.atCommit)
	tx.undo = clearFuncs(tx.undo)
	// Durability: hand the redo stream to the sink while the abstract locks
	// are still held, so conflicting transactions enter the log in
	// serialization order. The sink encodes synchronously and returns a
	// wait; the fsync itself is awaited only after lock release, keeping
	// hold times independent of disk latency. Because the log is appended
	// in lock order and fsyncs cover prefixes, a transaction can never be
	// durable before one it depends on.
	var wait func() error
	if sink := tx.system.cfg.Durability; sink != nil && len(tx.redo) > 0 {
		wait = sink.Commit(tx.id, tx.redo)
	}
	tx.redo = clearRedo(tx.redo)
	tx.clearLazy()
	tx.releaseLocks()
	tx.clearDisc() // discipline latches die with the footprint they pinned
	if wait != nil {
		// Pre-release durability barrier: the outcome is not released to
		// the caller until the log has fsynced this transaction's record
		// (or definitively failed to).
		if err := wait(); err != nil {
			tx.durErr = err
		}
	}
	for _, f := range tx.onCommit {
		f()
	}
	tx.onCommit = clearFuncs(tx.onCommit)
	tx.onAbort = clearFuncs(tx.onAbort)
	return true
}

// resetAttempt prepares the descriptor for one attempt. The log/lock/handler
// slices were already truncated by the previous attempt's commit or rollback
// (or are empty on a fresh descriptor); what must be renewed per attempt is
// the identity, the lifecycle state, and the doom/cause state. The doom
// reset takes asyncMu because a stale Doom from the descriptor's previous
// life may land at any time (see the Tx doc comment).
func (tx *Tx) resetAttempt(sys *System, ctx context.Context, id uint64, birth uint64, attempt int) {
	tx.id = id
	tx.birth = birth
	tx.attempt = attempt
	tx.system = sys
	tx.ctx = ctx
	tx.status.Store(int32(Active))
	tx.parallel.Store(false)
	tx.durErr = nil
	tx.readOnly = false
	tx.snapSeq = 0
	tx.versLive = false
	tx.commitSeq = 0
	if tx.ext != nil {
		clear(tx.ext)
	}
	tx.doomed.Store(false)
	tx.asyncMu.Lock()
	tx.doomCh = nil
	tx.doomClosed = false
	tx.abortCause = nil
	tx.asyncMu.Unlock()
}

// recycle returns the descriptor to the pool. Callers must guarantee the
// attempt has fully committed or rolled back (all slices truncated) and that
// no goroutine they control still holds the pointer. References that could
// pin memory are dropped here rather than at reuse time.
func (tx *Tx) recycle() {
	tx.system = nil
	tx.ctx = nil
	if tx.ext != nil {
		clear(tx.ext)
	}
	tx.asyncMu.Lock()
	tx.doomCh = nil
	tx.doomClosed = false
	tx.abortCause = nil
	tx.asyncMu.Unlock()
	txPool.Put(tx)
}
