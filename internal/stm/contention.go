package stm

// ContentionPolicy decides what happens when a transaction is about to block
// on an abstract lock held by another transaction. The paper's only policy is
// the timed acquisition itself ("threads that wait too long for a lock abort
// themselves", §3.1); it notes "a more sophisticated scheme is possible" —
// this interface is where such schemes plug in. Implementations live in
// lockmgr (Timeout, WoundWait, Detect); the interface lives here so that
// stm.Config can carry a policy without importing lockmgr (which imports stm).
//
// Contract, which every lock structure's blocking point honours:
//
//   - OnConflict(waiter, holder) is called once per wait round, immediately
//     before waiter blocks on a lock whose conflicting grant is held by
//     holder, with the lock's internal mutex held — so holder is the grant
//     holder at the instant of the call (it cannot release between the check
//     and the call). Implementations must be brief, must not block, and must
//     not call back into lock acquisition or release; dooming either
//     transaction (Tx.Doom / Tx.DoomWith) is the intended side effect.
//   - OnWaitEnd(waiter) is called exactly once when waiter leaves the
//     blocking point — granted, timed out, doomed, or cancelled — provided
//     OnConflict was called at least once during the wait. Policies that
//     track waiting state (the wait-for graph) clear it here.
//
// A holder observed by OnConflict is live at that instant, but it may commit
// and its descriptor may be recycled immediately after the lock's mutex is
// released. A policy that dooms a holder it recorded earlier therefore risks
// dooming an unrelated transaction that reused the descriptor; the runtime
// tolerates this (a stale doom costs at most one spurious retry, see
// Tx.recycle), and policies must treat dooming as a heuristic signal, never
// as a correctness obligation.
type ContentionPolicy interface {
	// Name identifies the policy in reports and benchmark output.
	Name() string
	// OnConflict is invoked when waiter is about to block on a grant held
	// by holder. See the contract above.
	OnConflict(waiter, holder *Tx)
	// OnWaitEnd is invoked when waiter leaves a blocking point where
	// OnConflict fired. See the contract above.
	OnWaitEnd(waiter *Tx)
}
