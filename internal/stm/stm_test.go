package stm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAtomicCommitRunsOnce(t *testing.T) {
	runs := 0
	err := Atomic(func(tx *Tx) error {
		runs++
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic returned %v", err)
	}
	if runs != 1 {
		t.Fatalf("body ran %d times, want 1", runs)
	}
}

func TestAtomicReturnsUserError(t *testing.T) {
	want := errors.New("boom")
	runs := 0
	err := Atomic(func(tx *Tx) error {
		runs++
		return want
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if runs != 1 {
		t.Fatalf("user error must not retry; ran %d times", runs)
	}
}

func TestUserErrorRollsBackUndoLog(t *testing.T) {
	var undone []int
	_ = Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = append(undone, 1) })
		tx.Log(func() { undone = append(undone, 2) })
		return errors.New("give up")
	})
	if len(undone) != 2 || undone[0] != 2 || undone[1] != 1 {
		t.Fatalf("undo order = %v, want [2 1] (reverse of logging)", undone)
	}
}

func TestAbortRetriesAndRollsBackInReverse(t *testing.T) {
	var undone []int
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.Log(func() { undone = append(undone, 1) })
			tx.Log(func() { undone = append(undone, 2) })
			tx.Log(func() { undone = append(undone, 3) })
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic = %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	want := []int{3, 2, 1}
	if len(undone) != 3 || undone[0] != 3 || undone[1] != 2 || undone[2] != 1 {
		t.Fatalf("undo order = %v, want %v", undone, want)
	}
}

func TestCommitDiscardsUndoLog(t *testing.T) {
	ran := false
	if err := Atomic(func(tx *Tx) error {
		tx.Log(func() { ran = true })
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("undo entry ran on the commit path")
	}
}

func TestOnCommitRunsAfterCommitInOrder(t *testing.T) {
	var order []int
	var statusAt Status
	err := Atomic(func(tx *Tx) error {
		tx.OnCommit(func() { statusAt = tx.Status(); order = append(order, 1) })
		tx.OnCommit(func() { order = append(order, 2) })
		tx.OnAbort(func() { t.Error("OnAbort ran on commit path") })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("OnCommit order = %v, want [1 2]", order)
	}
	if statusAt != Committed {
		t.Fatalf("handler observed status %v, want committed", statusAt)
	}
}

func TestOnAbortRunsAfterRollback(t *testing.T) {
	var events []string
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.Log(func() { events = append(events, "undo") })
			tx.OnAbort(func() { events = append(events, "onabort:"+tx.Status().String()) })
			tx.OnCommit(func() { events = append(events, "oncommit") })
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "undo" || events[1] != "onabort:aborted" {
		t.Fatalf("events = %v, want [undo onabort:aborted]", events)
	}
}

func TestOnAbortNotCarriedToRetry(t *testing.T) {
	// A disposable registered on attempt 1 must not fire again when the
	// retry commits or later aborts.
	count := 0
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.OnAbort(func() { count++ })
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("OnAbort fired %d times, want 1", count)
	}
}

func TestValidationFailureAbortsAndRetries(t *testing.T) {
	sys := NewSystem(Config{})
	attempts := 0
	undone := false
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.Log(func() { undone = true })
			tx.OnValidate(func() error { return errors.New("stale read") })
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if !undone {
		t.Fatal("validation failure did not roll back the undo log")
	}
	st := sys.Stats()
	if st.ValidationFailures != 1 {
		t.Fatalf("ValidationFailures = %d, want 1", st.ValidationFailures)
	}
	if st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("commits/aborts = %d/%d, want 1/1", st.Commits, st.Aborts)
	}
}

func TestValidationSuccessCommits(t *testing.T) {
	calls := 0
	err := Atomic(func(tx *Tx) error {
		tx.OnValidate(func() error { calls++; return nil })
		tx.OnValidate(func() error { calls++; return nil })
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("validators ran %d times, want 2", calls)
	}
}

func TestMaxRetries(t *testing.T) {
	sys := NewSystem(Config{MaxRetries: 3})
	attempts := 0
	err := sys.Atomic(func(tx *Tx) error {
		attempts++
		tx.Abort(nil)
		return nil
	})
	if !errors.Is(err, ErrTooManyRetries) {
		t.Fatalf("err = %v, want ErrTooManyRetries", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestForeignPanicPropagatesAfterRollback(t *testing.T) {
	undone := false
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
		if !undone {
			t.Fatal("foreign panic did not roll back")
		}
	}()
	_ = Atomic(func(tx *Tx) error {
		tx.Log(func() { undone = true })
		panic("kaboom")
	})
}

type recordingLock struct {
	mu       sync.Mutex
	unlocked []uint64
}

func (l *recordingLock) Unlock(tx *Tx) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.unlocked = append(l.unlocked, tx.ID())
}

func TestLockRegistrationIsReentrant(t *testing.T) {
	l := &recordingLock{}
	err := Atomic(func(tx *Tx) error {
		if !tx.RegisterLock(l) {
			t.Error("first RegisterLock returned false")
		}
		if tx.RegisterLock(l) {
			t.Error("second RegisterLock returned true; want reentrant false")
		}
		if !tx.Holds(l) {
			t.Error("Holds = false after registration")
		}
		if tx.LockCount() != 1 {
			t.Errorf("LockCount = %d, want 1", tx.LockCount())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.unlocked) != 1 {
		t.Fatalf("lock unlocked %d times, want exactly 1", len(l.unlocked))
	}
}

func TestLocksReleasedOnAbortAfterUndo(t *testing.T) {
	var events []string
	l := &eventLock{events: &events}
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			tx.RegisterLock(l)
			tx.Log(func() { events = append(events, "undo") })
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "undo" || events[1] != "unlock" {
		t.Fatalf("events = %v, want [undo unlock] (locks released only after inverses)", events)
	}
}

type eventLock struct{ events *[]string }

func (l *eventLock) Unlock(tx *Tx) { *l.events = append(*l.events, "unlock") }

func TestLocksReleasedInReverseOrder(t *testing.T) {
	var order []string
	a := &namedLock{name: "a", order: &order}
	b := &namedLock{name: "b", order: &order}
	if err := Atomic(func(tx *Tx) error {
		tx.RegisterLock(a)
		tx.RegisterLock(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("release order = %v, want [b a]", order)
	}
}

type namedLock struct {
	name  string
	order *[]string
}

func (l *namedLock) Unlock(tx *Tx) { *l.order = append(*l.order, l.name) }

func TestUnregisterLock(t *testing.T) {
	l := &recordingLock{}
	if err := Atomic(func(tx *Tx) error {
		tx.RegisterLock(l)
		tx.UnregisterLock(l)
		if tx.Holds(l) {
			t.Error("Holds = true after UnregisterLock")
		}
		if tx.LockCount() != 0 {
			t.Errorf("LockCount = %d, want 0", tx.LockCount())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(l.unlocked) != 0 {
		t.Fatalf("unregistered lock was unlocked %d times, want 0", len(l.unlocked))
	}
}

func TestExtSlots(t *testing.T) {
	type key struct{}
	if err := Atomic(func(tx *Tx) error {
		if got := tx.Ext(key{}); got != nil {
			t.Errorf("Ext before set = %v, want nil", got)
		}
		tx.SetExt(key{}, 42)
		if got := tx.Ext(key{}); got != 42 {
			t.Errorf("Ext = %v, want 42", got)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTxIDsUniqueAcrossRetries(t *testing.T) {
	seen := map[uint64]bool{}
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if seen[tx.ID()] {
			t.Fatalf("duplicate tx id %d", tx.ID())
		}
		seen[tx.ID()] = true
		if tx.Attempt() != attempts-1 {
			t.Fatalf("Attempt = %d, want %d", tx.Attempt(), attempts-1)
		}
		if attempts < 3 {
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d ids, want 3", len(seen))
	}
}

func TestStatusTransitions(t *testing.T) {
	err := Atomic(func(tx *Tx) error {
		if tx.Status() != Active {
			t.Errorf("status during body = %v, want active", tx.Status())
		}
		tx.OnValidate(func() error {
			if tx.Status() != Validating {
				t.Errorf("status during validate = %v, want validating", tx.Status())
			}
			return nil
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		Active:     "active",
		Validating: "validating",
		Committed:  "committed",
		Aborting:   "aborting",
		Aborted:    "aborted",
		Status(99): "status(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestAbortNilCauseBecomesErrAborted(t *testing.T) {
	attempts := 0
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			defer func() {
				// Peek at the cause recorded before the panic unwinds.
			}()
			tx.Abort(nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	sys := NewSystem(Config{})
	attempts := 0
	_ = sys.Atomic(func(tx *Tx) error {
		attempts++
		if attempts < 3 {
			tx.Abort(nil)
		}
		return nil
	})
	st := sys.Stats()
	if st.Starts != 3 || st.Commits != 1 || st.Aborts != 2 {
		t.Fatalf("stats = %+v, want starts=3 commits=1 aborts=2", st)
	}
	if got := st.AbortRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("AbortRatio = %v, want 2/3", got)
	}
	sys.ResetStats()
	if st := sys.Stats(); st.Starts != 0 || st.Commits != 0 {
		t.Fatalf("stats after reset = %+v, want zeros", st)
	}
}

func TestStatsSub(t *testing.T) {
	a := StatsSnapshot{Starts: 10, Commits: 8, Aborts: 2}
	b := StatsSnapshot{Starts: 4, Commits: 3, Aborts: 1}
	d := a.Sub(b)
	if d.Starts != 6 || d.Commits != 5 || d.Aborts != 1 {
		t.Fatalf("Sub = %+v", d)
	}
	if d.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAbortRatioZeroStarts(t *testing.T) {
	if r := (StatsSnapshot{}).AbortRatio(); r != 0 {
		t.Fatalf("AbortRatio on empty = %v, want 0", r)
	}
}

func TestConcurrentAtomicCounter(t *testing.T) {
	// Transactions from many goroutines must all commit exactly once.
	sys := NewSystem(Config{})
	var mu sync.Mutex
	counter := 0
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := sys.Atomic(func(tx *Tx) error {
					mu.Lock()
					counter++
					val := counter
					mu.Unlock()
					tx.Log(func() {
						mu.Lock()
						counter--
						mu.Unlock()
					})
					_ = val
					return nil
				})
				if err != nil {
					t.Errorf("Atomic: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d", counter, goroutines*perG)
	}
	if st := sys.Stats(); st.Commits != goroutines*perG {
		t.Fatalf("commits = %d, want %d", st.Commits, goroutines*perG)
	}
}

func TestMustAtomicPanicsOnFailure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAtomic did not panic on error")
		}
	}()
	MustAtomic(func(tx *Tx) error { return errors.New("nope") })
}

func TestConfigDefaults(t *testing.T) {
	sys := NewSystem(Config{})
	cfg := sys.Config()
	if cfg.BackoffBase <= 0 || cfg.BackoffCap <= 0 || cfg.LockTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if sys.LockTimeout() != cfg.LockTimeout {
		t.Fatal("LockTimeout accessor mismatch")
	}
}

func TestBackoffBounded(t *testing.T) {
	sys := NewSystem(Config{BackoffBase: time.Microsecond, BackoffCap: 50 * time.Microsecond})
	start := time.Now()
	for i := 0; i < 40; i++ {
		_ = sys.backoff(nil, i, 0) // attempts far beyond the cap must stay bounded
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backoff too slow: %v", elapsed)
	}
}

func TestCountLockTimeout(t *testing.T) {
	sys := NewSystem(Config{})
	sys.CountLockTimeout()
	sys.CountLockTimeout()
	if st := sys.Stats(); st.LockTimeouts != 2 {
		t.Fatalf("LockTimeouts = %d, want 2", st.LockTimeouts)
	}
}

func TestUndoDepth(t *testing.T) {
	_ = Atomic(func(tx *Tx) error {
		if tx.UndoDepth() != 0 {
			t.Errorf("initial UndoDepth = %d", tx.UndoDepth())
		}
		tx.Log(func() {})
		tx.Log(func() {})
		if tx.UndoDepth() != 2 {
			t.Errorf("UndoDepth = %d, want 2", tx.UndoDepth())
		}
		return nil
	})
}
