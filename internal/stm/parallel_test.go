package stm

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestParallelAllBranchesRun(t *testing.T) {
	var ran atomic.Int32
	err := Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(tx *Tx) error { ran.Add(1); return nil },
			func(tx *Tx) error { ran.Add(1); return nil },
			func(tx *Tx) error { ran.Add(1); return nil },
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("ran = %d", ran.Load())
	}
}

func TestParallelFirstErrorWins(t *testing.T) {
	e1 := errors.New("one")
	e2 := errors.New("two")
	err := Atomic(func(tx *Tx) error {
		err := tx.Parallel(
			func(tx *Tx) error { return e1 },
			func(tx *Tx) error { return e2 },
		)
		if !errors.Is(err, e1) {
			t.Errorf("Parallel = %v, want first error", err)
		}
		return nil // transaction itself still commits
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelSharedUndoLogRollsBack(t *testing.T) {
	var undone atomic.Int32
	boom := errors.New("boom")
	_ = Atomic(func(tx *Tx) error {
		_ = tx.Parallel(
			func(tx *Tx) error { tx.Log(func() { undone.Add(1) }); return nil },
			func(tx *Tx) error { tx.Log(func() { undone.Add(1) }); return nil },
			func(tx *Tx) error { tx.Log(func() { undone.Add(1) }); return nil },
		)
		return boom
	})
	if undone.Load() != 3 {
		t.Fatalf("undone = %d, want 3 (all branches' inverses)", undone.Load())
	}
}

func TestParallelAbortInBranchAbortsWholeTx(t *testing.T) {
	attempts := 0
	var sideEffects atomic.Int32
	err := Atomic(func(tx *Tx) error {
		attempts++
		if attempts == 1 {
			_ = tx.Parallel(
				func(tx *Tx) error {
					tx.Log(func() { sideEffects.Add(-1) })
					sideEffects.Add(1)
					return nil
				},
				func(tx *Tx) error {
					tx.Abort(nil)
					return nil
				},
			)
			t.Error("unreachable: abort must propagate past Parallel")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	if sideEffects.Load() != 0 {
		t.Fatalf("branch effects not rolled back: %d", sideEffects.Load())
	}
}

func TestParallelForeignPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "branch panic" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = Atomic(func(tx *Tx) error {
		return tx.Parallel(func(tx *Tx) error { panic("branch panic") })
	})
}

func TestParallelConcurrentLogging(t *testing.T) {
	// Many branches logging concurrently: all entries must be present.
	var undone atomic.Int32
	boom := errors.New("boom")
	const branches = 8
	const perBranch = 200
	_ = Atomic(func(tx *Tx) error {
		fns := make([]func(*Tx) error, branches)
		for i := range fns {
			fns[i] = func(tx *Tx) error {
				for j := 0; j < perBranch; j++ {
					tx.Log(func() { undone.Add(1) })
					tx.OnCommit(func() {})
					tx.OnAbort(func() {})
				}
				return nil
			}
		}
		if err := tx.Parallel(fns...); err != nil {
			return err
		}
		if tx.UndoDepth() != branches*perBranch {
			t.Errorf("UndoDepth = %d, want %d", tx.UndoDepth(), branches*perBranch)
		}
		return boom
	})
	if undone.Load() != branches*perBranch {
		t.Fatalf("undone = %d, want %d", undone.Load(), branches*perBranch)
	}
}

func TestParallelNestedInsideBranchlessTx(t *testing.T) {
	// Parallel composed with Nested: the nested child in one branch rolls
	// back alone.
	var undone atomic.Int32
	child := errors.New("child")
	err := Atomic(func(tx *Tx) error {
		return tx.Parallel(
			func(tx *Tx) error {
				return nil
			},
			func(tx *Tx) error {
				_ = tx.Nested(func(tx *Tx) error {
					tx.Log(func() { undone.Add(1) })
					return child
				})
				return nil
			},
		)
	})
	if err != nil {
		t.Fatal(err)
	}
	if undone.Load() != 1 {
		t.Fatalf("child rollback = %d, want 1", undone.Load())
	}
}
