package stm

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestCauseStringCoversAllKinds pins CauseString to the AbortKind enum: every
// classified kind must appear by name in the formatted breakdown, and each
// must be wired to its own counter. Adding a kind without extending
// CauseString/AbortsByKind fails here, not in a chaos log nobody reads.
func TestCauseStringCoversAllKinds(t *testing.T) {
	snap := StatsSnapshot{
		AbortsLockTimeout: 11,
		AbortsWounded:     22,
		AbortsValidation:  33,
		AbortsDoomed:      44,
		AbortsDeadlock:    55,
		AbortsOther:       66,
	}
	line := snap.CauseString()
	seen := make(map[string]bool)
	for k := AbortKind(0); k < NumAbortKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has an empty name", k)
		}
		if seen[name] {
			t.Fatalf("kind %d reuses the name %q", k, name)
		}
		seen[name] = true
		want := name + "=" + strconv.FormatInt(snap.AbortsByKind(k), 10)
		if !strings.Contains(line, want) {
			t.Errorf("CauseString %q is missing %q for kind %v", line, want, k)
		}
	}
	// The six counters were given distinct values; if AbortsByKind collapsed
	// two kinds onto one field, the set of reported values would shrink.
	vals := make(map[int64]bool)
	for k := AbortKind(0); k < NumAbortKinds; k++ {
		vals[snap.AbortsByKind(k)] = true
	}
	if len(vals) != int(NumAbortKinds) {
		t.Errorf("AbortsByKind maps %d kinds onto %d counters", NumAbortKinds, len(vals))
	}
}

// TestCommitAgeHistogram drives transactions to commit at known attempts and
// checks the buckets; the histogram is what makes the starvation-freedom
// claim observable (an aged transaction that keeps losing shows up as a fat
// 5+ bucket).
func TestCommitAgeHistogram(t *testing.T) {
	sys := NewSystem(Config{BackoffBase: time.Microsecond})
	commitAt := func(attempt int) {
		err := sys.Atomic(func(tx *Tx) error {
			if tx.Attempt() < attempt {
				tx.Abort(ErrInjectedValidation)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	commitAt(0)
	commitAt(0)
	commitAt(1)
	commitAt(3)
	commitAt(5)
	st := sys.Stats()
	if want := [4]int64{2, 1, 1, 1}; st.CommitAge != want {
		t.Fatalf("CommitAge = %v, want %v (%s)", st.CommitAge, want, st.CommitAgeString())
	}
	if st.AbortsValidation != 1+3+5 {
		t.Errorf("AbortsValidation = %d, want 9", st.AbortsValidation)
	}
	sum := st.CommitAge[0] + st.CommitAge[1] + st.CommitAge[2] + st.CommitAge[3]
	if sum != st.Commits {
		t.Errorf("histogram sums to %d, commits = %d", sum, st.Commits)
	}
	for _, name := range []string{"attempt1=2", "attempt2=1", "attempt3-4=1", "attempt5+=1"} {
		if !strings.Contains(st.CommitAgeString(), name) {
			t.Errorf("CommitAgeString %q missing %q", st.CommitAgeString(), name)
		}
	}
}

// TestAdaptiveTimeoutClamps exercises the EWMA-driven budget directly:
// unset => configured value; tiny waits => floor at ceiling/16; huge waits
// => never above the configured ceiling; feature off => observations ignored.
func TestAdaptiveTimeoutClamps(t *testing.T) {
	const ceiling = 1600 * time.Millisecond
	sys := NewSystem(Config{LockTimeout: ceiling, AdaptiveTimeout: true})
	if got := sys.LockTimeout(); got != ceiling {
		t.Fatalf("no observations: LockTimeout = %v, want %v", got, ceiling)
	}
	for i := 0; i < 64; i++ {
		sys.ObserveWait(10 * time.Microsecond)
	}
	if got, floor := sys.LockTimeout(), ceiling/16; got != floor {
		t.Errorf("tiny waits: LockTimeout = %v, want the %v floor", got, floor)
	}
	for i := 0; i < 64; i++ {
		sys.ObserveWait(10 * time.Second)
	}
	if got := sys.LockTimeout(); got != ceiling {
		t.Errorf("huge waits: LockTimeout = %v, want clamped to the %v ceiling", got, ceiling)
	}

	fixed := NewSystem(Config{LockTimeout: ceiling})
	fixed.ObserveWait(10 * time.Microsecond)
	if got := fixed.LockTimeout(); got != ceiling {
		t.Errorf("AdaptiveTimeout off: LockTimeout = %v, want the configured %v", got, ceiling)
	}
	if fixed.WaitEWMA() != 0 {
		// ObserveWait is a no-op when the feature is off: the lock managers
		// call it unconditionally on every contended grant, and the off
		// configuration must not pay the CAS loop.
		t.Errorf("AdaptiveTimeout off: WaitEWMA = %v, want 0", fixed.WaitEWMA())
	}
}
