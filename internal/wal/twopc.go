package wal

// Two-phase-commit records and in-doubt recovery.
//
// The log implements stm.PreparedSink with two record shapes on top of the
// ordinary commit record:
//
//   - A prepare record: a meta op (metaObj, metaPrepare, uvarint gid)
//     followed by the branch's redo ops. Force-fsynced before Prepare
//     returns — the record IS the yes vote, and a vote that is not durable
//     would let the coordinator commit on air.
//   - A decision marker: a single meta op (metaObj, metaCommit/metaAbort,
//     uvarint gid). Commit markers ride the mode's normal group barrier;
//     abort markers are hygiene only — under presumed-abort the *absence*
//     of a commit marker already means abort, which is what makes aborts
//     free of forced writes.
//
// Recovery replays a prepared transaction's ops at its commit marker's
// position, not at the prepare record's: between the two the original held
// its abstract locks, so every intervening record commutes with it and log
// order remains a legal replay order (the same argument as the package
// comment's, applied to the prepare-to-decision window). A prepare with no
// marker is in-doubt: it is not replayed, and the log exposes it via
// InDoubt for the coordinator's recovery to resolve — after AdoptInDoubt
// has re-acquired its abstract locks so conflicting traffic blocks exactly
// as it did before the crash.
//
// Checkpoints interact safely by construction: stm's active counter includes
// prepared transactions, and Checkpoint requires quiescence, so a checkpoint
// boundary can never fall between a prepare record and its decision marker.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// metaObj is the reserved object ID of two-phase-commit meta ops. Real
// object IDs are registration indices counted from zero, so the top of the
// ID space can never collide with one.
const metaObj = ^uint32(0)

// Meta op kinds, in metaObj's opcode namespace.
const (
	metaPrepare uint8 = 1
	metaCommit  uint8 = 2
	metaAbort   uint8 = 3
)

func metaRaw(kind uint8, gid uint64) rawOp {
	return rawOp{obj: metaObj, kind: kind, data: binary.AppendUvarint(nil, gid)}
}

// metaOf decodes a record's leading meta op, if it has one.
func metaOf(rec Record) (gid uint64, kind uint8, ok bool) {
	if len(rec.Ops) == 0 || rec.Ops[0].Obj != metaObj {
		return 0, 0, false
	}
	gid, n := binary.Uvarint(rec.Ops[0].Data)
	if n <= 0 {
		return 0, 0, false
	}
	return gid, rec.Ops[0].Kind, true
}

// twopcState is the log's in-doubt bookkeeping: prepared-but-undecided
// transactions found by Recover, and the adopted lock holders standing in
// for them until a decision arrives.
type twopcState struct {
	mu      sync.Mutex
	inDoubt map[uint64]*inDoubtRec
	adopted map[uint64]*adoption
}

type inDoubtRec struct {
	gid  uint64
	txID uint64
	lsn  uint64
	ops  []Op
}

type adoption struct {
	ptx   *stm.PreparedTx
	rec   *inDoubtRec
	timer *time.Timer // presumed-abort deadline, when configured
}

// Prepare implements stm.PreparedSink: it force-logs the branch's redo
// stream under a prepare meta op. The record is fsynced before Prepare
// returns regardless of mode — this is the participant's vote. The two
// crash sites bracket the force: TwopcPrePrepare kills the participant with
// nothing logged (presumed abort recovers it for free), TwopcPostPrepare
// kills it with a durable prepare whose vote the coordinator never heard
// (the classic in-doubt transaction).
func (l *Log) Prepare(txID, gid uint64, ops []stm.RedoOp) error {
	if l.opts.Mode == Off {
		return nil
	}
	if faultpoint.Hit(faultpoint.TwopcPrePrepare) == faultpoint.Crash {
		l.crashNow()
		return ErrCrashed
	}
	l.commits.Add(1)
	raw := make([]rawOp, 0, len(ops)+1)
	raw = append(raw, metaRaw(metaPrepare, gid))
	raw = append(raw, redoRaw(ops)...)
	wait := l.append(txID, raw, true)
	if wait != nil {
		if err := wait(); err != nil {
			return err
		}
	}
	if faultpoint.Hit(faultpoint.TwopcPostPrepare) == faultpoint.Crash {
		l.crashNow()
		return ErrCrashed
	}
	return nil
}

// Decide implements stm.PreparedSink: it appends the decision marker for
// gid. A commit marker returns the mode's usual durability barrier (the
// runtime awaits it after lock release); an abort marker is presumed-abort
// hygiene and returns no barrier. TwopcPreApply simulates a participant
// dying after the coordinator decided commit but before this participant
// recorded (or applied) it — the span is then half-notified, and recovery
// must commit the in-doubt half from the coordinator's decision log.
func (l *Log) Decide(txID, gid uint64, commit bool) (wait func() error, err error) {
	if l.opts.Mode == Off {
		return nil, nil
	}
	if commit && faultpoint.Hit(faultpoint.TwopcPreApply) == faultpoint.Crash {
		l.crashNow()
		return nil, ErrCrashed
	}
	kind := metaAbort
	if commit {
		kind = metaCommit
	}
	w := l.append(txID, []rawOp{metaRaw(kind, gid)}, commit && l.opts.Mode == Group)
	if !commit {
		return nil, nil
	}
	return w, nil
}

// InDoubtTx is one prepared-but-undecided transaction surviving in the log.
type InDoubtTx struct {
	GID  uint64 // the coordinator's global transaction ID
	TxID uint64 // the original runtime transaction ID
	LSN  uint64 // the prepare record's LSN
	Ops  []Op   // the branch's redo ops (meta op stripped)
}

// InDoubt lists the prepared-but-undecided transactions Recover found, in
// LSN order, minus any already resolved. The coordinator's recovery walks
// this list and calls ResolveInDoubt per entry.
func (l *Log) InDoubt() []InDoubtTx {
	l.twopc.mu.Lock()
	defer l.twopc.mu.Unlock()
	out := make([]InDoubtTx, 0, len(l.twopc.inDoubt))
	for _, r := range l.twopc.inDoubt {
		out = append(out, InDoubtTx{GID: r.gid, TxID: r.txID, LSN: r.lsn, Ops: r.ops})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LSN < out[j].LSN })
	return out
}

// Relocker is the optional extension of Durable that re-acquires the
// abstract lock of one logged op on behalf of an adopted in-doubt
// transaction. The core durable adapters implement it by decoding the op's
// key and issuing the same keyed demand the original call made; objects
// without it cannot host in-doubt recovery (AdoptInDoubt fails).
type Relocker interface {
	Relock(tx *stm.Tx, kind uint8, data []byte) error
}

// AdoptInDoubt re-acquires the abstract locks of every in-doubt transaction
// under an adopted prepared transaction on sys. Call it after Recover and
// before serving traffic: the locks then block conflicting transactions —
// which must not observe or overwrite state a pending commit may still
// claim — until ResolveInDoubt learns each decision, exactly as the
// original prepared transactions did before the crash. In-doubt lock sets
// are mutually disjoint (they were all simultaneously held when the process
// died), so adoption order cannot deadlock.
//
// With Options.InDoubtDeadline set, each adopted transaction is also given
// a presumed-abort timer: if no decision arrives in time it resolves as
// aborted, bounding how long an unreachable coordinator can block traffic.
func (l *Log) AdoptInDoubt(sys *stm.System) error {
	l.twopc.mu.Lock()
	recs := make([]*inDoubtRec, 0, len(l.twopc.inDoubt))
	for gid, r := range l.twopc.inDoubt {
		if _, dup := l.twopc.adopted[gid]; dup {
			continue // already adopted: AdoptInDoubt is idempotent
		}
		recs = append(recs, r)
	}
	l.twopc.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].lsn < recs[j].lsn })
	for _, rec := range recs {
		rec := rec
		ptx, err := sys.AdoptPrepared(rec.gid, func(tx *stm.Tx) error {
			for _, op := range rec.ops {
				if int(op.Obj) >= len(l.objs) {
					return fmt.Errorf("wal: in-doubt gid %d references unregistered object %d", rec.gid, op.Obj)
				}
				rl, ok := l.objs[op.Obj].obj.(Relocker)
				if !ok {
					return fmt.Errorf("wal: object %q cannot relock in-doubt ops", l.objs[op.Obj].name)
				}
				if err := rl.Relock(tx, op.Kind, op.Data); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		ad := &adoption{ptx: ptx, rec: rec}
		l.twopc.mu.Lock()
		l.twopc.adopted[rec.gid] = ad
		if d := l.opts.InDoubtDeadline; d > 0 {
			gid := rec.gid
			ad.timer = time.AfterFunc(d, func() { l.ResolveInDoubt(gid, false) })
		}
		l.twopc.mu.Unlock()
	}
	return nil
}

// ResolveInDoubt settles one adopted in-doubt transaction with the
// coordinator's decision. Abort releases the adopted locks and appends the
// hygiene marker — nothing was ever applied, so there is nothing to undo.
// Commit forces the commit marker FIRST and only then applies the logged
// ops and releases the locks: if the process dies mid-apply, the next
// recovery sees prepare + marker and replays the ops over the from-scratch
// base — the marker-before-apply order makes the resolution idempotent
// across crashes. Resolving an unknown (or already-resolved) gid returns an
// error, which the presumed-abort timer path ignores by design.
func (l *Log) ResolveInDoubt(gid uint64, commit bool) error {
	l.twopc.mu.Lock()
	ad, ok := l.twopc.adopted[gid]
	if !ok {
		l.twopc.mu.Unlock()
		return fmt.Errorf("wal: gid %d is not an adopted in-doubt transaction", gid)
	}
	delete(l.twopc.adopted, gid)
	delete(l.twopc.inDoubt, gid)
	if ad.timer != nil {
		ad.timer.Stop()
	}
	l.twopc.mu.Unlock()

	if !commit {
		l.append(ad.rec.txID, []rawOp{metaRaw(metaAbort, gid)}, false)
		ad.ptx.Abort()
		return nil
	}
	wait := l.append(ad.rec.txID, []rawOp{metaRaw(metaCommit, gid)}, true)
	if wait != nil {
		if err := wait(); err != nil {
			// The marker never became durable (the log froze again): put the
			// transaction back so a later resolution pass can retry.
			l.twopc.mu.Lock()
			l.twopc.adopted[gid] = ad
			l.twopc.inDoubt[gid] = ad.rec
			l.twopc.mu.Unlock()
			return err
		}
	}
	for _, op := range ad.rec.ops {
		if err := l.objs[op.Obj].obj.Replay(op.Kind, op.Data); err != nil {
			return fmt.Errorf("wal: in-doubt apply gid %d obj %q: %w", gid, l.objs[op.Obj].name, err)
		}
	}
	return ad.ptx.Commit()
}
