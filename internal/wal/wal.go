package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// Mode selects what a durability acknowledgment means.
type Mode int

const (
	// Off: Commit is a no-op. The sink can stay configured (benchmarks
	// sweep modes through one surface) while costing only the nil-check in
	// stm's commit path plus an interface call.
	Off Mode = iota
	// Async: records are appended and fsynced in the background; Commit
	// never waits. An acknowledgment means "committed in memory"; a crash
	// may lose a suffix of acknowledged transactions (whole, never
	// partial).
	Async
	// Group: Commit's wait function blocks until the record's batch is
	// fsynced — the group-commit barrier. One fsync acknowledges every
	// committer in the batch.
	Group
)

// String returns the lower-case mode name.
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Async:
		return "async"
	case Group:
		return "group"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a Log.
type Options struct {
	// Mode selects the acknowledgment discipline (default Off, which makes
	// the zero Options explicit-opt-in).
	Mode Mode
	// GroupWindow is how long the log writer lingers after a batch's first
	// record before fsyncing, letting concurrent committers pile on. Zero
	// means fsync as soon as the writer is free — batching then happens
	// naturally while the previous fsync is in flight.
	GroupWindow time.Duration
	// GroupBytes flushes a batch early once it holds at least this many
	// bytes, bounding latency under write bursts. Zero selects 1 MiB.
	GroupBytes int
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size. Zero selects 4 MiB.
	SegmentBytes int64
	// MaxPending bounds the bytes buffered ahead of the writer. Past it the
	// log reports itself Overloaded and stm's admission path sheds new
	// transactions with ErrContentionCollapse *before* they execute —
	// appenders themselves never block under the log mutex, so a slow fsync
	// cannot stall committers that are already past admission (they hold
	// abstract locks; sleeping them would spread the stall). Zero selects
	// 8 MiB.
	MaxPending int
	// InDoubtDeadline, when positive, is the presumed-abort timer for
	// adopted in-doubt transactions: if AdoptInDoubt re-acquired a prepared
	// transaction's locks and no ResolveInDoubt decision arrives within the
	// deadline, the transaction resolves as aborted — bounding how long an
	// unreachable coordinator can block conflicting traffic. Zero disables
	// the timer (the transaction blocks until explicitly resolved).
	InDoubtDeadline time.Duration
	// Dir is the log directory (segments + checkpoint). Required.
	Dir string
}

func (o *Options) fill() {
	if o.GroupBytes <= 0 {
		o.GroupBytes = 1 << 20
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 8 << 20
	}
}

// ErrCrashed is reported by durability waits and subsequent operations after
// a simulated crash (faultpoint Crash effect) froze the log writer. In the
// simulation it stands in for "the process died before this transaction was
// acknowledged".
var ErrCrashed = errors.New("wal: log crashed (simulated)")

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Stats is a snapshot of the log's counters, for benchmarks and tests. The
// group-commit win is Fsyncs/Commits < 1.
type Stats struct {
	Commits    uint64 // transactions appended
	Records    uint64 // records written to segments (== Commits unless crashed)
	Batches    uint64 // flush batches (== fsync attempts)
	Fsyncs     uint64 // fsyncs completed
	DurableLSN uint64 // highest LSN known fsynced
}

// batch is one group-commit unit: the frames accumulated since the writer
// last took work, flushed and fsynced together. Waiters (Group-mode
// committers) block on done.
type batch struct {
	buf     []byte
	recEnds []int // cumulative end offsets of each frame in buf, for torn-write simulation
	lastLSN uint64
	done    chan struct{}
	err     error
}

// Log is a segmented logical WAL. It implements stm.DurabilitySink. The
// lifecycle is: Open → register durable objects (Bind / RegisterRaw) →
// Recover → serve Commit. Checkpoint may be called at any quiescent point
// afterwards.
type Log struct {
	opts Options

	// mu guards the append state: the open batch, LSN assignment, and the
	// registration table before Recover. Because stm calls Commit with the
	// transaction's abstract locks held, the order in which conflicting
	// transactions pass through mu equals their serialization order.
	mu        sync.Mutex
	flushDone *sync.Cond // signalled after every batch completes (Sync waits here)
	cur       *batch
	nextLSN   uint64
	pending   int // bytes buffered ahead of the writer
	recovered bool
	closed    bool
	crashed   bool
	ioerr     error // why the log froze: ErrCrashed (simulated) or a real I/O error

	// overloaded mirrors pending > MaxPending for lock-free reads: stm's
	// admission path consults it (through stm.OverloadSink) to shed new
	// transactions while the writer is behind, instead of letting appenders
	// queue under mu. Updated only under mu, so it cannot stick.
	overloaded atomic.Bool

	// twopc holds the two-phase-commit state: prepared-but-undecided
	// transactions found by Recover and their adopted lock holders.
	twopc twopcState

	kick chan struct{} // wakes the writer; buffered, lossy
	wg   sync.WaitGroup

	// Segment state, owned by the writer goroutine after Recover.
	f           *os.File
	segSize     int64
	curSegStart uint64
	ckptLSN     uint64 // first LSN NOT covered by the loaded/last checkpoint
	objs        []regEntry
	objIndex    map[string]uint32

	commits atomic.Uint64
	records atomic.Uint64
	batches atomic.Uint64
	fsyncs  atomic.Uint64
	durable atomic.Uint64
}

// Open creates (or reopens) a log rooted at opts.Dir. No recovery happens
// yet: register every durable object first, then call Recover — replay needs
// the objects, and object IDs are registration indices, so registration
// order must be stable across restarts (Recover verifies names).
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		opts:     opts,
		nextLSN:  1,
		kick:     make(chan struct{}, 1),
		objIndex: map[string]uint32{},
	}
	l.twopc.inDoubt = map[uint64]*inDoubtRec{}
	l.twopc.adopted = map[uint64]*adoption{}
	l.flushDone = sync.NewCond(&l.mu)
	return l, nil
}

// Commit implements stm.DurabilitySink: it encodes the transaction's redo
// stream as one record in the open batch and returns the mode's barrier.
// Called with the transaction's abstract locks held (see package comment);
// the work under l.mu is pure serialization — byte appends — with the fsync
// deferred to the writer goroutine so lock hold times stay short.
func (l *Log) Commit(txID uint64, ops []stm.RedoOp) (wait func() error) {
	if l.opts.Mode == Off {
		return nil
	}
	l.commits.Add(1)
	return l.append(txID, redoRaw(ops), l.opts.Mode == Group)
}

// append encodes one record into the open batch and kicks the writer. It is
// the shared core of Commit, Prepare, and Decide: appenders never block on
// backpressure — they only flip the Overloaded flag, which sheds *new*
// transactions at admission (an appender here already executed and holds
// abstract locks; sleeping it would spread the stall to its conflict set).
// With barrier set, the returned wait blocks until the record's batch is
// fsynced; otherwise wait is nil.
func (l *Log) append(txID uint64, ops []rawOp, barrier bool) (wait func() error) {
	l.mu.Lock()
	if !l.recovered || l.closed || l.crashed {
		err := l.stateErr()
		l.mu.Unlock()
		return func() error { return err }
	}
	if l.cur == nil {
		l.cur = &batch{done: make(chan struct{})}
	}
	b := l.cur
	lsn := l.nextLSN
	l.nextLSN++
	start := len(b.buf)
	b.buf = append(b.buf, make([]byte, frameHeader)...)
	b.buf = appendPayload(b.buf, lsn, txID, ops)
	frameFinish(b.buf, start)
	b.recEnds = append(b.recEnds, len(b.buf))
	b.lastLSN = lsn
	l.pending += len(b.buf) - start
	if l.pending > l.opts.MaxPending {
		l.overloaded.Store(true)
	}
	l.mu.Unlock()

	select {
	case l.kick <- struct{}{}:
	default:
	}
	if !barrier {
		return nil
	}
	return func() error {
		<-b.done
		return b.err
	}
}

// Overloaded reports whether the writer is more than MaxPending bytes
// behind. It implements stm.OverloadSink: systems configured with this log
// shed new transactions with ErrContentionCollapse while it is set, the
// admission-control analogue of blocking backpressure.
func (l *Log) Overloaded() bool { return l.overloaded.Load() }

// redoRaw views []stm.RedoOp as the codec's rawOp slice without copying.
func redoRaw(ops []stm.RedoOp) []rawOp {
	raw := make([]rawOp, len(ops))
	for i, op := range ops {
		raw[i] = rawOp{data: op.Data, obj: op.Obj, kind: op.Kind}
	}
	return raw
}

func (l *Log) stateErr() error {
	switch {
	case l.crashed:
		return l.ioerr
	case l.closed:
		return ErrClosed
	default:
		return errors.New("wal: Commit before Recover")
	}
}

// Sync blocks until every record appended before the call is fsynced. It is
// the explicit barrier for Async mode and for checkpoints.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.crashed || l.closed || !l.recovered {
		err := l.stateErr()
		l.mu.Unlock()
		return err
	}
	target := l.nextLSN - 1
	l.mu.Unlock()
	if target == 0 || l.durable.Load() >= target {
		return nil
	}
	select {
	case l.kick <- struct{}{}:
	default:
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable.Load() < target && !l.crashed && !l.closed {
		l.flushDone.Wait()
	}
	if l.durable.Load() >= target {
		return nil
	}
	return l.stateErr()
}

// Close flushes pending records, stops the writer, and closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	started := l.recovered
	l.flushDone.Broadcast()
	l.mu.Unlock()
	if started {
		close(l.kick)
		l.wg.Wait()
	}
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	return Stats{
		Commits:    l.commits.Load(),
		Records:    l.records.Load(),
		Batches:    l.batches.Load(),
		Fsyncs:     l.fsyncs.Load(),
		DurableLSN: l.durable.Load(),
	}
}

// Crashed reports whether a simulated crash froze the log.
func (l *Log) Crashed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.crashed
}

// writerLoop is the single log writer: it takes the open batch, writes its
// frames to the segment, fsyncs once, and acknowledges every waiter in the
// batch. Records appended while an fsync is in flight pile into the next
// batch — that is the natural group commit; GroupWindow adds deliberate
// lingering on top.
func (l *Log) writerLoop() {
	defer l.wg.Done()
	for range l.kick {
		if l.opts.GroupWindow > 0 {
			time.Sleep(l.opts.GroupWindow)
		}
		for {
			l.mu.Lock()
			b := l.cur
			if b == nil || len(b.recEnds) == 0 {
				l.mu.Unlock()
				break
			}
			// Linger inside the window only until the batch is big enough.
			l.cur = &batch{done: make(chan struct{})}
			l.mu.Unlock()

			l.flush(b)

			l.mu.Lock()
			l.pending -= len(b.buf)
			if l.pending <= l.opts.MaxPending {
				l.overloaded.Store(false)
			}
			crashed := l.crashed
			l.mu.Unlock()
			if crashed {
				// Freeze: drain remaining kicks without writing; every
				// future waiter fails fast in Commit.
				for range l.kick {
				}
				return
			}
		}
	}
	// Closed: flush whatever is left.
	l.mu.Lock()
	b := l.cur
	l.cur = nil
	l.mu.Unlock()
	if b != nil && len(b.recEnds) > 0 && !l.Crashed() {
		l.flush(b)
	}
}

// flush writes one batch to the segment and fsyncs. The three faultpoint
// sites simulate a process kill at the three interesting instants:
//
//	WalMidBatch   — torn write: a prefix of the batch's frames plus half of
//	                the next frame reach the file; recovery must truncate.
//	WalPreFsync   — the whole batch written but not synced: the file is
//	                rewound to the batch start, modelling page-cache loss.
//	WalPostFsync  — durable but unacknowledged: the records survive, the
//	                committers never hear back. Recovery may resurrect them.
//
// On crash the batch's waiters are failed with ErrCrashed (the ack never
// happened), and the log freezes.
func (l *Log) flush(b *batch) {
	l.batches.Add(1)
	if err := l.rotateIfNeeded(b); err != nil {
		l.completeBatch(b, err, 0)
		return
	}
	startOff, _ := l.f.Seek(0, 1) // io.SeekCurrent without the import

	wrote := 0
	prev := 0
	for i, end := range b.recEnds {
		if i > 0 && faultpoint.Hit(faultpoint.WalMidBatch) == faultpoint.Crash {
			// Torn write: half of the next frame follows the full prefix.
			torn := b.buf[prev : prev+(end-prev)/2]
			l.f.Write(torn)
			l.crash(b)
			return
		}
		if _, err := l.f.Write(b.buf[prev:end]); err != nil {
			l.completeBatch(b, fmt.Errorf("wal: write: %w", err), 0)
			return
		}
		wrote += end - prev
		prev = end
	}

	if faultpoint.Hit(faultpoint.WalPreFsync) == faultpoint.Crash {
		// Unsynced loss: rewind the file to the batch start, as if the
		// kernel never wrote these pages back.
		l.f.Truncate(startOff)
		l.f.Seek(startOff, 0)
		l.crash(b)
		return
	}
	if err := l.f.Sync(); err != nil {
		l.completeBatch(b, fmt.Errorf("wal: fsync: %w", err), 0)
		return
	}
	l.fsyncs.Add(1)
	l.records.Add(uint64(len(b.recEnds)))
	l.segSize += int64(wrote)
	if faultpoint.Hit(faultpoint.WalPostFsync) == faultpoint.Crash {
		// Durable but unacked: the records stay; the waiters never learn.
		l.crash(b)
		return
	}
	l.completeBatch(b, nil, b.lastLSN)
}

// completeBatch settles a batch: on success it advances the durable LSN; on
// any error — a simulated crash or a real I/O failure — it freezes the log
// (no further writes, every future committer fails fast) and fails the open
// next batch too, whose committers would otherwise block on a writer that no
// longer runs.
func (l *Log) completeBatch(b *batch, err error, durableLSN uint64) {
	l.mu.Lock()
	if durableLSN > 0 {
		l.durable.Store(durableLSN)
	}
	var next *batch
	if err != nil && !l.crashed {
		l.crashed = true
		l.ioerr = err
		next = l.cur
		l.cur = nil
	}
	l.flushDone.Broadcast()
	l.mu.Unlock()
	b.err = err
	close(b.done)
	if next != nil && next != b {
		next.err = err
		close(next.done)
	}
}

// crash settles b as killed: the faultpoint path for simulated process
// death.
func (l *Log) crash(b *batch) { l.completeBatch(b, ErrCrashed, 0) }

// Segment files: wal-<start LSN, hex>.seg, beginning with a 16-byte header
// (magic + start LSN). Frames follow back to back.
const (
	segMagic  = "TBWALSG1"
	segHeader = 16
)

func segName(startLSN uint64) string { return fmt.Sprintf("wal-%016x.seg", startLSN) }

func (l *Log) rotateIfNeeded(b *batch) error {
	if l.f != nil && l.segSize < l.opts.SegmentBytes {
		return nil
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	firstLSN := b.lastLSN - uint64(len(b.recEnds)) + 1
	return l.openSegment(firstLSN)
}

func (l *Log) openSegment(startLSN uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segName(startLSN)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	var hdr [segHeader]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], startLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header sync: %w", err)
	}
	l.f = f
	l.segSize = segHeader
	l.mu.Lock()
	l.curSegStart = startLSN
	l.mu.Unlock()
	return nil
}
