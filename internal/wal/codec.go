// Package wal is the durability engine behind stm.DurabilitySink: a
// segmented, append-only *logical* write-ahead log. Boosting makes this
// cheap — the paper's Rule 3 already forces every effective mutation to be
// described operation-by-operation (each has a compensating inverse), so the
// committed forward-op stream is a redo log by construction. The WAL
// serializes that stream, group-commits it (one fsync acknowledges a whole
// batch of committers), and replays it over freshly-constructed base objects
// on recovery. Checkpoints bound replay work and let old segments be pruned.
//
// Correctness hinges on one ordering fact: stm calls DurabilitySink.Commit
// with the transaction's abstract locks still held, so conflicting
// transactions reach the log in serialization order and the log's append
// order is a legal replay order. Commuting transactions may appear in either
// order — by Herlihy & Koskinen's commutativity argument, replaying them in
// log order reaches the same abstract state.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// castagnoli is the CRC-32C table used for record frames and checkpoint
// footers (same polynomial storage engines conventionally use; hardware
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a frame or checkpoint that fails structural or CRC
// validation. During recovery a corrupt record is interpreted as the torn
// tail of the log: everything before it is kept, it and everything after are
// discarded.
var ErrCorrupt = errors.New("wal: corrupt record")

// Op is one logical operation inside a record: the forward image of an
// effective boosted call. Obj is the registration index of the durable
// object, Kind an opcode in that object's namespace, Data the codec-encoded
// key plus payload. It mirrors stm.RedoOp; the WAL re-declares it so dump
// and recovery tooling need not import the runtime.
type Op struct {
	Obj  uint32
	Kind uint8
	Data []byte
}

// Record is one committed transaction's entry in the log.
type Record struct {
	LSN  uint64 // log sequence number, dense, assigned at append
	TxID uint64 // the runtime's transaction ID, for audit/verification
	Ops  []Op
}

// Frame layout, all integers little-endian:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//
// Payload:
//
//	u64 LSN | u64 TxID | uvarint nops |
//	  nops × ( uvarint obj | u8 kind | uvarint len(data) | data )
//
// The length prefix bounds the read; the CRC detects torn writes and bit
// rot. A frame whose length field itself is torn fails either the
// remaining-bytes check or the CRC, so any prefix of a valid log plus
// arbitrary garbage decodes to a prefix of its records.
const (
	frameHeader = 8       // u32 len + u32 crc
	maxPayload  = 1 << 28 // sanity bound on a single record
)

// appendPayload serializes (lsn, txID, ops) — the frame payload without its
// header — onto buf.
func appendPayload(buf []byte, lsn, txID uint64, ops []rawOp) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint64(buf, txID)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, op := range ops {
		buf = binary.AppendUvarint(buf, uint64(op.obj))
		buf = append(buf, op.kind)
		buf = binary.AppendUvarint(buf, uint64(len(op.data)))
		buf = append(buf, op.data...)
	}
	return buf
}

// rawOp is the append-side view of an op (field order chosen to pack).
type rawOp struct {
	data []byte
	obj  uint32
	kind uint8
}

// appendFrame wraps a payload (already appended at buf[start:]) with its
// header by shifting it right frameHeader bytes. Callers reserve the header
// with appendFrameHeaderSpace before writing the payload.
func frameFinish(buf []byte, start int) []byte {
	payload := buf[start+frameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeFrame parses one frame from b. It returns the record, the total
// frame size consumed, and an error: ErrCorrupt for a structurally invalid
// or CRC-failing frame, io-style short reads also map to ErrCorrupt (a torn
// tail is indistinguishable from corruption and handled the same way).
func decodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeader {
		return Record{}, 0, fmt.Errorf("%w: short frame header (%d bytes)", ErrCorrupt, len(b))
	}
	plen := binary.LittleEndian.Uint32(b)
	if plen == 0 || plen > maxPayload || int(plen) > len(b)-frameHeader {
		return Record{}, 0, fmt.Errorf("%w: bad payload length %d", ErrCorrupt, plen)
	}
	crc := binary.LittleEndian.Uint32(b[4:])
	payload := b[frameHeader : frameHeader+int(plen)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeader + int(plen), nil
}

func decodePayload(p []byte) (Record, error) {
	if len(p) < 16 {
		return Record{}, fmt.Errorf("%w: payload too short", ErrCorrupt)
	}
	rec := Record{
		LSN:  binary.LittleEndian.Uint64(p),
		TxID: binary.LittleEndian.Uint64(p[8:]),
	}
	p = p[16:]
	nops, n := binary.Uvarint(p)
	if n <= 0 || nops > math.MaxInt32 {
		return Record{}, fmt.Errorf("%w: bad op count", ErrCorrupt)
	}
	p = p[n:]
	rec.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		obj, n := binary.Uvarint(p)
		if n <= 0 || obj > math.MaxUint32 {
			return Record{}, fmt.Errorf("%w: bad obj id", ErrCorrupt)
		}
		p = p[n:]
		if len(p) < 1 {
			return Record{}, fmt.Errorf("%w: missing op kind", ErrCorrupt)
		}
		kind := p[0]
		p = p[1:]
		dlen, n := binary.Uvarint(p)
		if n <= 0 || dlen > uint64(len(p)-n) {
			return Record{}, fmt.Errorf("%w: bad op data length", ErrCorrupt)
		}
		p = p[n:]
		data := make([]byte, dlen)
		copy(data, p[:dlen])
		p = p[dlen:]
		rec.Ops = append(rec.Ops, Op{Obj: uint32(obj), Kind: kind, Data: data})
	}
	if len(p) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return rec, nil
}

// Codec serializes one key (or value) type for the log. Append serializes v
// onto buf and returns the extended slice; Decode parses one value from the
// front of b, returning it and the bytes consumed. Implementations must be
// self-delimiting: Decode must not need to be told where the value ends,
// because keys are concatenated with auxiliary payloads in op data.
type Codec[T any] interface {
	Append(buf []byte, v T) []byte
	Decode(b []byte) (T, int, error)
}

// Int64Codec encodes int64 keys as zigzag varints.
var Int64Codec Codec[int64] = int64Codec{}

type int64Codec struct{}

func (int64Codec) Append(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }
func (int64Codec) Decode(b []byte) (int64, int, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad int64 key", ErrCorrupt)
	}
	return v, n, nil
}

// Uint64Codec encodes uint64 keys as uvarints.
var Uint64Codec Codec[uint64] = uint64Codec{}

type uint64Codec struct{}

func (uint64Codec) Append(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }
func (uint64Codec) Decode(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: bad uint64 key", ErrCorrupt)
	}
	return v, n, nil
}

// StringCodec encodes strings length-prefixed (uvarint length + bytes).
var StringCodec Codec[string] = stringCodec{}

type stringCodec struct{}

func (stringCodec) Append(buf []byte, v string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}
func (stringCodec) Decode(b []byte) (string, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return "", 0, fmt.Errorf("%w: bad string key", ErrCorrupt)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// CodecFunc assembles a Codec from two functions — the convenient way to
// register a struct key without a named type.
func CodecFunc[T any](app func([]byte, T) []byte, dec func([]byte) (T, int, error)) Codec[T] {
	return codecFunc[T]{app, dec}
}

type codecFunc[T any] struct {
	app func([]byte, T) []byte
	dec func([]byte) (T, int, error)
}

func (c codecFunc[T]) Append(buf []byte, v T) []byte   { return c.app(buf, v) }
func (c codecFunc[T]) Decode(b []byte) (T, int, error) { return c.dec(b) }
