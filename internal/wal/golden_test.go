package wal_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tboost/internal/stm"
	"tboost/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite golden forensic dumps")

// fixedDurable is a Durable whose snapshot is a constant op list, so
// checkpoint sections have a stable shape in golden output.
type fixedDurable struct {
	snap [][]byte
}

func (d *fixedDurable) Replay(kind uint8, data []byte) error { return nil }
func (d *fixedDurable) Snapshot(emit func(kind uint8, data []byte) error) error {
	for _, data := range d.snap {
		if err := emit(1, data); err != nil {
			return err
		}
	}
	return nil
}

// checkGolden compares FormatDump(DumpDir(dir)) to testdata/<name>.golden.
// The format is the WAL's forensic surface — operators read these dumps off
// crashed deployments — so any drift must be a deliberate, reviewed change
// (run with -update to accept one).
func checkGolden(t *testing.T, dir, name string) {
	t.Helper()
	d, err := wal.DumpDir(dir)
	if err != nil {
		t.Fatalf("DumpDir: %v", err)
	}
	got := wal.FormatDump(d)
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run: go test ./internal/wal/ -run Golden -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("forensic dump drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// enc is Int64Codec's encoding, for building deterministic redo payloads.
func enc(k int64) []byte { return wal.Int64Codec.Append(nil, k) }

// TestGoldenDumpPrepared pins the forensic view of a log holding the three
// two-phase outcomes: a decided-commit prepare, a decided-abort prepare, and
// the in-doubt prepare a crashed coordinator left behind.
func TestGoldenDumpPrepared(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	b, err := wal.Bind(l, "set", wal.Int64Codec, &fixedDurable{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	op := func(k int64) []stm.RedoOp {
		return []stm.RedoOp{{Obj: b.ID(), Kind: 1, Data: enc(k)}}
	}
	if w := l.Commit(1, op(42)); w != nil {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Prepare(2, 7, op(100)); err != nil { // stays in-doubt
		t.Fatal(err)
	}
	if err := l.Prepare(3, 8, op(101)); err != nil { // decided commit
		t.Fatal(err)
	}
	if w, err := l.Decide(3, 8, true); err != nil {
		t.Fatal(err)
	} else if w != nil {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Prepare(4, 9, op(102)); err != nil { // decided abort
		t.Fatal(err)
	}
	if _, err := l.Decide(4, 9, false); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, dir, "prepared")
}

// TestGoldenDumpTornTail pins the view of a directory whose last frame was
// cut mid-write: the torn flag is set and the damaged record is absent —
// exactly what recovery would truncate.
func TestGoldenDumpTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	b, err := wal.Bind(l, "set", wal.Int64Codec, &fixedDurable{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 3; k++ {
		if w := l.Commit(uint64(k), []stm.RedoOp{{Obj: b.ID(), Kind: 1, Data: enc(k)}}); w != nil {
			if err := w(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, dir, "torn")
}

// TestGoldenDumpStale pins the view of a checkpointed directory where the
// active segment still holds pre-checkpoint records (as after an
// interrupted prune): they dump as stale, not as replayable records.
func TestGoldenDumpStale(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(wal.Options{Dir: dir, Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	b, err := wal.Bind(l, "set", wal.Int64Codec, &fixedDurable{snap: [][]byte{enc(1), enc(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 2; k++ {
		if w := l.Commit(uint64(k), []stm.RedoOp{{Obj: b.ID(), Kind: 1, Data: enc(k)}}); w != nil {
			if err := w(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w := l.Commit(3, []stm.RedoOp{{Obj: b.ID(), Kind: 1, Data: enc(3)}}); w != nil {
		if err := w(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := wal.DumpDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wal.FormatDump(d), "stale=") {
		t.Fatal("format lost the stale field")
	}
	checkGolden(t, dir, "stale")
}
