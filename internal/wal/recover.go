package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tboost/internal/faultpoint"
	"tboost/internal/stm"
)

// Durable is what a boosted object must provide to live in the log: replay
// of one forward op (recovery and checkpoint load both use it) and a
// snapshot of the current base state as a synthetic op stream. Snapshot
// unifies checkpointing with replay — a checkpoint is just a saved op
// stream that recreates the base state, so Restore IS Replay and there is
// no second serialization format to keep correct.
//
// Replay must be strict: an op that does not apply cleanly (removing an
// absent key, adding a duplicate) indicates log/state divergence and must
// return an error rather than be papered over.
type Durable interface {
	Replay(kind uint8, data []byte) error
	Snapshot(emit func(kind uint8, data []byte) error) error
}

type regEntry struct {
	name string
	obj  Durable
}

// Binding connects one boosted object's journal to the log: it encodes keys
// with the object's codec and stamps ops with the object's registration ID.
// *Binding[K] satisfies boost.Journal[K] structurally, so the kernel never
// imports this package.
type Binding[K comparable] struct {
	log   *Log
	codec Codec[K]
	id    uint32
}

// Emit implements the kernel's journal hook: serialize key (+aux payload)
// and append the op to the transaction's redo stream.
func (b *Binding[K]) Emit(tx *stm.Tx, kind uint8, key K, aux []byte) {
	data := b.codec.Append(make([]byte, 0, 16+len(aux)), key)
	data = append(data, aux...)
	tx.Redo(stm.RedoOp{Obj: b.id, Kind: kind, Data: data})
}

// ID returns the object's registration index (the Op.Obj value it stamps).
func (b *Binding[K]) ID() uint32 { return b.id }

// Bind registers obj under name and returns the journal binding to hand to
// the object's boosting engine. All registrations must happen after Open and
// before Recover, in the same order on every run — object IDs are
// registration indices, and the checkpoint stores names to verify the order
// didn't drift.
func Bind[K comparable](l *Log, name string, codec Codec[K], obj Durable) (*Binding[K], error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.recovered {
		return nil, fmt.Errorf("wal: Bind(%q) after Recover", name)
	}
	if _, dup := l.objIndex[name]; dup {
		return nil, fmt.Errorf("wal: duplicate registration %q", name)
	}
	id := uint32(len(l.objs))
	l.objs = append(l.objs, regEntry{name: name, obj: obj})
	l.objIndex[name] = id
	return &Binding[K]{log: l, codec: codec, id: id}, nil
}

// RecoverResult summarizes what Recover found and did.
type RecoverResult struct {
	CheckpointLSN uint64 // checkpoint's covered-LSN bound (0 = no checkpoint)
	Replayed      int    // records replayed from segments
	Stale         int    // records skipped because the checkpoint covers them
	TornBytes     int64  // bytes truncated from the corrupt tail, if any
	NextLSN       uint64 // first LSN the reopened log will assign
	InDoubt       int    // prepared-but-undecided transactions (see Log.InDoubt)
}

// Recover rebuilds the registered objects from the directory — checkpoint
// first, then the surviving record suffix — truncates any torn tail, opens a
// fresh segment, and starts the log writer. After Recover the log serves
// Commit. The registered objects must be in their freshly-constructed
// (empty) state.
//
// Torn-tail policy: the first frame that fails CRC or structural validation
// ends the log. The containing segment is truncated at the last good frame
// and every later segment is deleted — a torn frame means the crash happened
// while writing it, so nothing after it was ever acknowledged.
func (l *Log) Recover() (RecoverResult, error) {
	l.mu.Lock()
	if l.recovered {
		l.mu.Unlock()
		return RecoverResult{}, fmt.Errorf("wal: Recover called twice")
	}
	if l.closed {
		l.mu.Unlock()
		return RecoverResult{}, ErrClosed
	}
	l.mu.Unlock()

	var res RecoverResult

	// Abandoned checkpoint temp files are noise from a mid-checkpoint
	// crash; the rename never happened, so they carry no authority.
	os.Remove(filepath.Join(l.opts.Dir, ckTmpName))

	ck, err := loadCheckpoint(l.opts.Dir)
	if err != nil {
		return res, err
	}
	if ck != nil {
		res.CheckpointLSN = ck.NextLSN
		l.ckptLSN = ck.NextLSN
		for _, sect := range ck.Sections {
			id, ok := l.objIndex[sect.Name]
			if !ok {
				return res, fmt.Errorf("wal: checkpoint has unregistered object %q", sect.Name)
			}
			obj := l.objs[id].obj
			for _, op := range sect.Ops {
				if err := obj.Replay(op.Kind, op.Data); err != nil {
					return res, fmt.Errorf("wal: checkpoint replay %q: %w", sect.Name, err)
				}
			}
		}
	}

	segs, err := scanSegments(l.opts.Dir)
	if err != nil {
		return res, err
	}
	var lastLSN uint64
	torn := false
	for i, seg := range segs {
		if torn {
			// Everything after a torn frame was never acknowledged.
			if err := os.Remove(seg.path); err != nil {
				return res, fmt.Errorf("wal: drop post-tear segment: %w", err)
			}
			continue
		}
		recs, goodBytes, segTorn, err := readSegment(seg.path)
		if err != nil {
			return res, err
		}
		if segTorn {
			fi, _ := os.Stat(seg.path)
			if fi != nil {
				res.TornBytes += fi.Size() - goodBytes
			}
			if err := os.Truncate(seg.path, goodBytes); err != nil {
				return res, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			torn = true
		}
		for _, rec := range recs {
			if ck != nil && rec.LSN < ck.NextLSN {
				res.Stale++ // stale segment survived an interrupted prune
				continue
			}
			if rec.LSN <= lastLSN {
				return res, fmt.Errorf("%w: LSN %d out of order in %s", ErrCorrupt, rec.LSN, seg.path)
			}
			lastLSN = rec.LSN
			if gid, kind, ok := metaOf(rec); ok {
				// Two-phase-commit record. A prepare is stashed, not replayed:
				// its effects are committed only if a commit marker follows. A
				// commit marker replays the stash at the *marker's* stream
				// position — sound because the original held its abstract
				// locks from prepare to decision, so every record between the
				// two commutes with it. An abort marker (or a marker-less
				// prepare surviving to the end: presumed abort) drops it.
				switch kind {
				case metaPrepare:
					ops := make([]Op, len(rec.Ops)-1)
					copy(ops, rec.Ops[1:])
					l.twopc.inDoubt[gid] = &inDoubtRec{gid: gid, txID: rec.TxID, lsn: rec.LSN, ops: ops}
				case metaCommit:
					in, have := l.twopc.inDoubt[gid]
					if !have {
						break // prepare checkpointed away with the marker's effects; nothing to do
					}
					delete(l.twopc.inDoubt, gid)
					for _, op := range in.ops {
						if int(op.Obj) >= len(l.objs) {
							return res, fmt.Errorf("%w: prepared gid %d references unregistered object %d", ErrCorrupt, gid, op.Obj)
						}
						if err := l.objs[op.Obj].obj.Replay(op.Kind, op.Data); err != nil {
							return res, fmt.Errorf("wal: replay prepared gid %d obj %q: %w", gid, l.objs[op.Obj].name, err)
						}
					}
					res.Replayed++
				case metaAbort:
					delete(l.twopc.inDoubt, gid)
				default:
					return res, fmt.Errorf("%w: record %d has unknown meta kind %d", ErrCorrupt, rec.LSN, kind)
				}
				continue
			}
			for _, op := range rec.Ops {
				if int(op.Obj) >= len(l.objs) {
					return res, fmt.Errorf("%w: record %d references unregistered object %d", ErrCorrupt, rec.LSN, op.Obj)
				}
				if err := l.objs[op.Obj].obj.Replay(op.Kind, op.Data); err != nil {
					return res, fmt.Errorf("wal: replay LSN %d obj %q: %w", rec.LSN, l.objs[op.Obj].name, err)
				}
			}
			res.Replayed++
		}
		_ = i
	}

	res.InDoubt = len(l.twopc.inDoubt)

	next := lastLSN + 1
	if ck != nil && ck.NextLSN > next {
		next = ck.NextLSN
	}
	if next < 1 {
		next = 1
	}
	res.NextLSN = next

	l.mu.Lock()
	l.nextLSN = next
	l.durable.Store(next - 1) // everything recovered is, by definition, on disk
	l.recovered = true
	l.mu.Unlock()
	if err := l.openSegment(next); err != nil {
		return res, err
	}
	l.wg.Add(1)
	go l.writerLoop()
	return res, nil
}

// Checkpoint snapshots every registered object's base state as an op
// stream, writes it to a temp file, atomically renames it over the previous
// checkpoint, and prunes segments the new checkpoint fully covers.
//
// The caller must hold the system quiescent (stm.System.ActiveTx() == 0 and
// no new Atomic calls in flight): under eager boosting the base state
// contains the effects of *uncommitted* transactions, so a snapshot taken
// mid-transaction would capture effects that a crash-then-recovery is
// required to roll away — but a logical checkpoint cannot roll anything
// away. Quiescence makes the base state exactly the committed state.
//
// Returns the checkpoint's covered-LSN bound: every record with a smaller
// LSN is reflected in the snapshot and will be skipped at recovery.
func (l *Log) Checkpoint() (uint64, error) {
	if err := l.Sync(); err != nil {
		return 0, err
	}
	l.mu.Lock()
	ckNext := l.nextLSN
	objs := l.objs
	l.mu.Unlock()

	path := filepath.Join(l.opts.Dir, ckTmpName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("wal: checkpoint tmp: %w", err)
	}
	defer os.Remove(path) // no-op after the rename succeeds

	buf := make([]byte, 0, 4096)
	buf = append(buf, ckMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, ckNext)
	buf = binary.AppendUvarint(buf, uint64(len(objs)))
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		_, werr := f.Write(buf)
		buf = buf[:0]
		return werr
	}
	crc := crc32.New(castagnoli)
	write := func() error {
		crc.Write(buf)
		return flush()
	}
	if err := write(); err != nil {
		f.Close()
		return 0, err
	}
	for i, e := range objs {
		if i > 0 && faultpoint.Hit(faultpoint.WalMidCheckpoint) == faultpoint.Crash {
			// Kill mid-checkpoint: the tmp file is abandoned (defer removes
			// it here; recovery also deletes strays), the previous
			// checkpoint stays authoritative, and the log freezes.
			f.Close()
			l.crashNow()
			return 0, ErrCrashed
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.name)))
		buf = append(buf, e.name...)
		nops := 0
		countAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // fixed u32 op count, patched below
		err := e.obj.Snapshot(func(kind uint8, data []byte) error {
			buf = append(buf, kind)
			buf = binary.AppendUvarint(buf, uint64(len(data)))
			buf = append(buf, data...)
			nops++
			return nil
		})
		if err != nil {
			f.Close()
			return 0, fmt.Errorf("wal: snapshot %q: %w", e.name, err)
		}
		binary.LittleEndian.PutUint32(buf[countAt:], uint32(nops))
		if err := write(); err != nil {
			f.Close()
			return 0, err
		}
	}
	var footer [4]byte
	binary.LittleEndian.PutUint32(footer[:], crc.Sum32())
	if _, err := f.Write(footer[:]); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(path, filepath.Join(l.opts.Dir, ckName)); err != nil {
		return 0, fmt.Errorf("wal: publish checkpoint: %w", err)
	}
	syncDir(l.opts.Dir)

	if err := l.pruneSegments(ckNext); err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.ckptLSN = ckNext
	l.mu.Unlock()
	return ckNext, nil
}

// pruneSegments deletes segments every record of which the checkpoint
// covers: a segment is deletable when a successor segment starts at or below
// ckNext (so its own records all have smaller LSNs) and it is not the
// segment the writer has open.
func (l *Log) pruneSegments(ckNext uint64) error {
	segs, err := scanSegments(l.opts.Dir)
	if err != nil {
		return err
	}
	l.mu.Lock()
	curStart := l.curSegStart
	l.mu.Unlock()
	first := true
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].startLSN > ckNext || segs[i].startLSN == curStart {
			continue
		}
		if !first && faultpoint.Hit(faultpoint.WalMidTruncate) == faultpoint.Crash {
			// Kill mid-prune: stale segments survive; recovery must skip
			// their records by LSN rather than double-replay them.
			l.crashNow()
			return ErrCrashed
		}
		first = false
		if err := os.Remove(segs[i].path); err != nil {
			return fmt.Errorf("wal: prune segment: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed checkpoint survives a real
// power loss. Best-effort: some filesystems reject directory fsync, and the
// simulation layer never depends on it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// crashNow freezes the log from a non-writer path (checkpoint/prune).
func (l *Log) crashNow() {
	l.mu.Lock()
	if l.crashed {
		l.mu.Unlock()
		return
	}
	l.crashed = true
	l.ioerr = ErrCrashed
	next := l.cur
	l.cur = nil
	l.flushDone.Broadcast()
	l.mu.Unlock()
	if next != nil {
		next.err = ErrCrashed
		close(next.done)
	}
}

// ---- on-disk scanning, shared by Recover and DumpDir ----

const (
	ckMagic   = "TBWALCK1"
	ckName    = "checkpoint.ck"
	ckTmpName = "checkpoint.tmp"
)

type segInfo struct {
	path     string
	startLSN uint64
}

func scanSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: scan: %w", err)
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		var start uint64
		if _, err := fmt.Sscanf(name, "wal-%016x.seg", &start); err != nil {
			continue
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), startLSN: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].startLSN < segs[j].startLSN })
	return segs, nil
}

// readSegment decodes a segment's frames. It returns the records decoded
// before the first invalid frame, the byte offset of the end of the last
// good frame, and whether the tail was torn (any trailing bytes that did not
// decode). A segment with a bad header is treated as fully torn after the
// zero-record point.
func readSegment(path string) (recs []Record, goodBytes int64, torn bool, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(b) < segHeader || string(b[:8]) != segMagic {
		return nil, 0, true, nil
	}
	off := int64(segHeader)
	rest := b[segHeader:]
	for len(rest) > 0 {
		rec, n, derr := decodeFrame(rest)
		if derr != nil {
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		rest = rest[n:]
		off += int64(n)
	}
	return recs, off, false, nil
}

// SectionOp is one op of a checkpoint section (the object is the section).
type SectionOp struct {
	Kind uint8
	Data []byte
}

// CheckpointDump is a decoded checkpoint file.
type CheckpointDump struct {
	NextLSN  uint64
	Sections []CheckpointSection
}

// CheckpointSection is one object's snapshot op stream.
type CheckpointSection struct {
	Name string
	Ops  []SectionOp
}

func loadCheckpoint(dir string) (*CheckpointDump, error) {
	b, err := os.ReadFile(filepath.Join(dir, ckName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	if len(b) < len(ckMagic)+8+1+4 || string(b[:8]) != ckMagic {
		return nil, fmt.Errorf("%w: checkpoint header", ErrCorrupt)
	}
	body, footer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(footer) {
		return nil, fmt.Errorf("%w: checkpoint crc", ErrCorrupt)
	}
	p := body[8:]
	ck := &CheckpointDump{NextLSN: binary.LittleEndian.Uint64(p)}
	p = p[8:]
	nsect, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: checkpoint section count", ErrCorrupt)
	}
	p = p[n:]
	for s := uint64(0); s < nsect; s++ {
		nlen, n := binary.Uvarint(p)
		if n <= 0 || nlen > uint64(len(p)-n) {
			return nil, fmt.Errorf("%w: checkpoint section name", ErrCorrupt)
		}
		p = p[n:]
		sect := CheckpointSection{Name: string(p[:nlen])}
		p = p[nlen:]
		if len(p) < 4 {
			return nil, fmt.Errorf("%w: checkpoint op count", ErrCorrupt)
		}
		nops := binary.LittleEndian.Uint32(p)
		p = p[4:]
		for o := uint32(0); o < nops; o++ {
			if len(p) < 1 {
				return nil, fmt.Errorf("%w: checkpoint op kind", ErrCorrupt)
			}
			kind := p[0]
			p = p[1:]
			dlen, n := binary.Uvarint(p)
			if n <= 0 || dlen > uint64(len(p)-n) {
				return nil, fmt.Errorf("%w: checkpoint op data", ErrCorrupt)
			}
			p = p[n:]
			data := make([]byte, dlen)
			copy(data, p[:dlen])
			p = p[dlen:]
			sect.Ops = append(sect.Ops, SectionOp{Kind: kind, Data: data})
		}
		ck.Sections = append(ck.Sections, sect)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(p))
	}
	return ck, nil
}

// Dump is a read-only view of a log directory: what recovery WOULD
// reconstruct. The chaos harness uses it to audit a post-crash directory
// without mutating it.
type Dump struct {
	Checkpoint *CheckpointDump // nil when absent or invalid
	Records    []Record        // plain records recovery would replay, in order
	Prepares   []PreparedDump  // two-phase transactions, in prepare order
	Stale      int             // records a checkpoint covers (skipped)
	Torn       bool            // a torn tail was detected (and would be cut)
}

// PreparedDump is one two-phase transaction's forensic view: its prepare
// record joined with whatever decision marker the log holds for it.
type PreparedDump struct {
	GID      uint64
	TxID     uint64
	LSN      uint64 // the prepare record's LSN
	Ops      []Op   // the branch's redo ops (meta op stripped)
	Decision string // "commit", "abort", or "in-doubt"
}

// DumpDir decodes dir without mutating it, applying the same torn-tail and
// stale-record rules as Recover.
func DumpDir(dir string) (Dump, error) {
	var d Dump
	ck, err := loadCheckpoint(dir)
	if err == nil {
		d.Checkpoint = ck
	} // a corrupt checkpoint dumps as absent, mirroring recovery's options
	segs, err := scanSegments(dir)
	if err != nil {
		return d, err
	}
	for _, seg := range segs {
		if d.Torn {
			break
		}
		recs, _, torn, err := readSegment(seg.path)
		if err != nil {
			return d, err
		}
		d.Torn = d.Torn || torn
		for _, rec := range recs {
			if ck != nil && rec.LSN < ck.NextLSN {
				d.Stale++
				continue
			}
			if gid, kind, ok := metaOf(rec); ok {
				switch kind {
				case metaPrepare:
					d.Prepares = append(d.Prepares, PreparedDump{
						GID: gid, TxID: rec.TxID, LSN: rec.LSN,
						Ops: rec.Ops[1:], Decision: "in-doubt",
					})
				case metaCommit, metaAbort:
					decision := "abort"
					if kind == metaCommit {
						decision = "commit"
					}
					for i := range d.Prepares {
						if d.Prepares[i].GID == gid && d.Prepares[i].Decision == "in-doubt" {
							d.Prepares[i].Decision = decision
							break
						}
					}
				}
				continue
			}
			d.Records = append(d.Records, rec)
		}
	}
	return d, nil
}

// FormatDump renders a Dump as a stable line-oriented forensic listing: the
// checkpoint's shape, then every surviving record and two-phase transaction
// with its decision. The format is pinned by golden-output tests — treat any
// change to it as a deliberate forensic-surface change, not cleanup.
func FormatDump(d Dump) string {
	var b strings.Builder
	if d.Checkpoint == nil {
		b.WriteString("checkpoint: none\n")
	} else {
		fmt.Fprintf(&b, "checkpoint: next-lsn=%d\n", d.Checkpoint.NextLSN)
		for _, s := range d.Checkpoint.Sections {
			fmt.Fprintf(&b, "  section %s ops=%d\n", s.Name, len(s.Ops))
		}
	}
	fmt.Fprintf(&b, "stale=%d torn=%v\n", d.Stale, d.Torn)
	fmt.Fprintf(&b, "records: %d\n", len(d.Records))
	for _, r := range d.Records {
		fmt.Fprintf(&b, "  lsn=%d tx=%d", r.LSN, r.TxID)
		for _, op := range r.Ops {
			fmt.Fprintf(&b, " [obj=%d kind=%d data=%x]", op.Obj, op.Kind, op.Data)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "prepared: %d\n", len(d.Prepares))
	for _, p := range d.Prepares {
		fmt.Fprintf(&b, "  gid=%d tx=%d lsn=%d decision=%s", p.GID, p.TxID, p.LSN, p.Decision)
		for _, op := range p.Ops {
			fmt.Fprintf(&b, " [obj=%d kind=%d data=%x]", op.Obj, op.Kind, op.Data)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
