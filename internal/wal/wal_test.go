package wal_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"tboost/internal/core"
	"tboost/internal/faultpoint"
	"tboost/internal/stm"
	"tboost/internal/wal"
)

// durableSet wires the standard durable fixture: a boosted hash set bound to
// a log in dir, recovered and ready behind a System.
func durableSet(t *testing.T, dir string, opts wal.Options) (*stm.System, *core.Set[int64], *wal.Log, wal.RecoverResult) {
	t.Helper()
	opts.Dir = dir
	l, err := wal.Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	set := core.NewHashSetOf[int64]()
	if err := core.BindSet(l, "set", wal.Int64Codec, set); err != nil {
		t.Fatalf("BindSet: %v", err)
	}
	res, err := l.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	sys := stm.NewSystem(stm.Config{Durability: l})
	return sys, set, l, res
}

func setKeys(t *testing.T, s *core.Set[int64]) []int64 {
	t.Helper()
	keys := s.Base().(interface{ Keys() []int64 }).Keys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func TestRoundTripThroughSystem(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group})

	// A mix of adds, removes, and multi-op transactions.
	for i := int64(0); i < 50; i++ {
		i := i
		err := sys.Atomic(func(tx *stm.Tx) error {
			set.Add(tx, i)
			set.Add(tx, i+1000)
			if i%3 == 0 {
				set.Remove(tx, i+1000)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Atomic: %v", err)
		}
	}
	want := setKeys(t, set)
	st := l.Stats()
	if st.Commits != 50 || st.Records != 50 {
		t.Fatalf("stats = %+v, want 50 commits/records", st)
	}
	if st.DurableLSN != 50 {
		t.Fatalf("DurableLSN = %d, want 50", st.DurableLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, set2, l2, res := durableSet(t, dir, wal.Options{Mode: wal.Group})
	defer l2.Close()
	if res.Replayed != 50 {
		t.Fatalf("Replayed = %d, want 50", res.Replayed)
	}
	got := setKeys(t, set2)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered keys = %v, want %v", got, want)
	}
}

func TestAbortedTxLeavesNoRecord(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group})
	defer l.Close()

	boom := errors.New("boom")
	err := sys.Atomic(func(tx *stm.Tx) error {
		set.Add(tx, 7)
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, 8); return nil }); err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	d, err := wal.DumpDir(dir)
	if err != nil {
		t.Fatalf("DumpDir: %v", err)
	}
	if len(d.Records) != 1 || len(d.Records[0].Ops) != 1 {
		t.Fatalf("dump = %+v, want exactly the committed tx's one op", d.Records)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group})
	for i := int64(0); i < 10; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	sort.Strings(segs)
	// Simulate a torn write: garbage appended to the newest non-empty segment.
	var target string
	for _, s := range segs {
		if fi, _ := os.Stat(s); fi != nil && fi.Size() > 16 {
			target = s
		}
	}
	f, err := os.OpenFile(target, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00, 0x01, 0x02})
	f.Close()

	_, set2, l2, res := durableSet(t, dir, wal.Options{Mode: wal.Group})
	defer l2.Close()
	if res.Replayed != 10 || res.TornBytes == 0 {
		t.Fatalf("res = %+v, want 10 replayed and a truncated tail", res)
	}
	if got := setKeys(t, set2); len(got) != 10 {
		t.Fatalf("recovered %d keys, want 10", len(got))
	}
}

func TestCorruptRecordEndsLog(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group})
	for i := int64(0); i < 10; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	var target string
	var size int64
	for _, s := range segs {
		if fi, _ := os.Stat(s); fi != nil && fi.Size() > 16 {
			target, size = s, fi.Size()
		}
	}
	// Flip one byte inside the last record's payload.
	f, err := os.OpenFile(target, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	f.ReadAt(b[:], size-3)
	b[0] ^= 0xff
	f.WriteAt(b[:], size-3)
	f.Close()

	_, set2, l2, res := durableSet(t, dir, wal.Options{Mode: wal.Group})
	defer l2.Close()
	if res.Replayed != 9 {
		t.Fatalf("Replayed = %d, want 9 (corrupt final record dropped)", res.Replayed)
	}
	if got := setKeys(t, set2); len(got) != 9 {
		t.Fatalf("recovered %d keys, want 9", len(got))
	}
}

func TestCheckpointReplayAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the prune has something to delete.
	opts := wal.Options{Mode: wal.Group, SegmentBytes: 512}
	sys, set, l, _ := durableSet(t, dir, opts)
	for i := int64(0); i < 40; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n := sys.ActiveTx(); n != 0 {
		t.Fatalf("ActiveTx = %d, want 0 before checkpoint", n)
	}
	ckLSN, err := l.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if ckLSN != 41 {
		t.Fatalf("checkpoint LSN = %d, want 41", ckLSN)
	}
	// Post-checkpoint traffic lands in the surviving segments.
	for i := int64(100); i < 110; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	want := setKeys(t, set)
	l.Close()

	d, err := wal.DumpDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if d.Checkpoint == nil || d.Checkpoint.NextLSN != 41 {
		t.Fatalf("dump checkpoint = %+v", d.Checkpoint)
	}
	if len(d.Records) != 10 {
		t.Fatalf("dump has %d replayable records, want 10", len(d.Records))
	}

	_, set2, l2, res := durableSet(t, dir, opts)
	defer l2.Close()
	if res.CheckpointLSN != 41 || res.Replayed != 10 {
		t.Fatalf("res = %+v, want checkpoint 41 + 10 replayed", res)
	}
	if got := setKeys(t, set2); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered keys = %v, want %v", got, want)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group, GroupWindow: time.Millisecond})
	defer l.Close()

	const (
		workers = 8
		perW    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := int64(w*1000 + i)
				if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, k); return nil }); err != nil {
					t.Errorf("Atomic: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Commits != workers*perW {
		t.Fatalf("Commits = %d, want %d", st.Commits, workers*perW)
	}
	if st.Fsyncs >= st.Commits {
		t.Fatalf("no batching: %d fsyncs for %d commits", st.Fsyncs, st.Commits)
	}
	t.Logf("fsyncs/commit = %.3f (%d fsyncs, %d commits)",
		float64(st.Fsyncs)/float64(st.Commits), st.Fsyncs, st.Commits)
}

func TestAsyncModeAcksImmediately(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Async})
	for i := int64(0); i < 20; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := l.Stats(); st.DurableLSN != 20 {
		t.Fatalf("DurableLSN = %d after Sync, want 20", st.DurableLSN)
	}
	l.Close()

	_, set2, l2, res := durableSet(t, dir, wal.Options{Mode: wal.Async})
	defer l2.Close()
	if res.Replayed != 20 {
		t.Fatalf("Replayed = %d, want 20", res.Replayed)
	}
	if got := setKeys(t, set2); len(got) != 20 {
		t.Fatalf("recovered %d keys, want 20", len(got))
	}
}

func TestOffModeWritesNothing(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Off})
	defer l.Close()
	for i := int64(0); i < 5; i++ {
		if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, i); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Commits != 0 || st.Records != 0 {
		t.Fatalf("off mode logged: %+v", st)
	}
}

func TestBindAfterRecoverRejected(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Recover(); err != nil {
		t.Fatal(err)
	}
	set := core.NewHashSetOf[int64]()
	if err := core.BindSet(l, "late", wal.Int64Codec, set); err == nil {
		t.Fatal("Bind after Recover succeeded, want error")
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	l, err := wal.Open(wal.Options{Dir: t.TempDir(), Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a, b := core.NewHashSetOf[int64](), core.NewHashSetOf[int64]()
	if err := core.BindSet(l, "x", wal.Int64Codec, a); err != nil {
		t.Fatal(err)
	}
	if err := core.BindSet(l, "x", wal.Int64Codec, b); err == nil {
		t.Fatal("duplicate registration succeeded, want error")
	}
}

func TestRegistrationDriftDetected(t *testing.T) {
	dir := t.TempDir()
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group})
	if err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen registering a different name: the checkpoint's section no
	// longer matches and recovery must refuse rather than misattribute ops.
	l2, err := wal.Open(wal.Options{Dir: dir, Mode: wal.Group})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	other := core.NewHashSetOf[int64]()
	if err := core.BindSet(l2, "renamed", wal.Int64Codec, other); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(); err == nil {
		t.Fatal("Recover with drifted registration succeeded, want error")
	}
}

func TestBackpressureBounded(t *testing.T) {
	dir := t.TempDir()
	// A tiny MaxPending trips the overload shed: past it, new transactions
	// are rejected at admission with ErrContentionCollapse instead of
	// queueing under the log mutex. The documented recovery is back off and
	// retry, which this load loop does — the assertions are progress (no
	// deadlock) and full durability of everything admitted.
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Group, MaxPending: 64})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := int64(w*100 + i)
				for {
					err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, k); return nil })
					if err == nil {
						break
					}
					if !errors.Is(err, stm.ErrContentionCollapse) {
						t.Errorf("Atomic: %v", err)
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := l.Stats(); st.Commits != 80 || st.DurableLSN != 80 {
		t.Fatalf("stats = %+v, want 80 durable commits", st)
	}
	l.Close()
}

func TestBackpressureShedsNotStalls(t *testing.T) {
	dir := t.TempDir()
	// Regression for the slow-fsync stall: with the writer wedged behind a
	// long fsync delay and MaxPending exceeded, unrelated appenders must be
	// shed promptly with the typed admission error — never parked under the
	// log mutex waiting for the writer to drain.
	sys, set, l, _ := durableSet(t, dir, wal.Options{Mode: wal.Async, MaxPending: 64})
	defer faultpoint.Reset()
	faultpoint.Enable(faultpoint.WalPreFsync, faultpoint.Trigger{
		Effect: faultpoint.Delay, Delay: 200 * time.Millisecond,
	})

	// Fill past MaxPending while the writer sleeps in its first fsync.
	deadline := time.Now().Add(5 * time.Second)
	for !l.Overloaded() {
		if time.Now().After(deadline) {
			t.Fatal("log never reported Overloaded")
		}
		err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, int64(time.Now().UnixNano())); return nil })
		if err != nil && !errors.Is(err, stm.ErrContentionCollapse) {
			t.Fatal(err)
		}
	}

	// An unrelated appender now gets a fast typed rejection, not a stall.
	start := time.Now()
	err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, -1); return nil })
	if !errors.Is(err, stm.ErrContentionCollapse) || !errors.Is(err, stm.ErrBackpressure) {
		t.Fatalf("overloaded Atomic = %v, want ErrContentionCollapse wrapping ErrBackpressure", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("shed took %v — appender stalled behind the slow fsync", d)
	}

	// Once the writer drains, the flag clears and admission resumes.
	faultpoint.Reset()
	deadline = time.Now().Add(5 * time.Second)
	for {
		err := sys.Atomic(func(tx *stm.Tx) error { set.Add(tx, -2); return nil })
		if err == nil {
			break
		}
		if !errors.Is(err, stm.ErrContentionCollapse) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission never recovered after the writer drained")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}
