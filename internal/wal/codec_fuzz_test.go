package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// point is a representative struct key, registered via CodecFunc the way a
// user would for a composite key.
type point struct {
	X int64
	Y uint16
}

var pointCodec = CodecFunc(
	func(buf []byte, p point) []byte {
		buf = binary.AppendVarint(buf, p.X)
		return binary.LittleEndian.AppendUint16(buf, p.Y)
	},
	func(b []byte) (point, int, error) {
		x, n := binary.Varint(b)
		if n <= 0 || len(b) < n+2 {
			return point{}, 0, ErrCorrupt
		}
		return point{X: x, Y: binary.LittleEndian.Uint16(b[n:])}, n + 2, nil
	},
)

// FuzzOpCodecRoundTrip drives the full op encode→frame→decode path with
// fuzzer-derived transactions over every key codec (int64, string, struct)
// and every collection op kind (add=1, remove=2, addN=3), then corrupts one
// byte of the frame and demands the corruption is *detected*: a mutated
// frame either fails to decode or decodes to exactly the original record —
// never to a silently different op.
func FuzzOpCodecRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(7), []byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8}, -1)
	f.Add(uint64(9), uint64(1), []byte{1, 1, 5, 'h', 'e', 'l', 'l', 'o'}, 3)
	f.Add(uint64(2), uint64(2), []byte{2, 2, 0x80, 0x01, 0xff, 0xff}, 12)
	f.Add(uint64(3), uint64(3), []byte{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}, 0)

	f.Fuzz(func(t *testing.T, lsn, txID uint64, raw []byte, corrupt int) {
		if lsn == 0 {
			lsn = 1
		}
		var ops []rawOp
		r := raw
		for len(r) >= 2 && len(ops) < 64 {
			kind := r[0]%3 + 1 // the collection opcodes: add, remove, addN
			sel := r[1] % 3
			r = r[2:]
			var data []byte
			switch sel {
			case 0: // int64 key
				var v int64
				if len(r) >= 8 {
					v = int64(binary.LittleEndian.Uint64(r))
					r = r[8:]
				}
				data = Int64Codec.Append(nil, v)
				got, n, err := Int64Codec.Decode(data)
				if err != nil || n != len(data) || got != v {
					t.Fatalf("int64 codec roundtrip: %v -> (%v,%d,%v)", v, got, n, err)
				}
			case 1: // string key
				var s string
				if len(r) >= 1 {
					l := int(r[0]) % 16
					r = r[1:]
					if l > len(r) {
						l = len(r)
					}
					s = string(r[:l])
					r = r[l:]
				}
				data = StringCodec.Append(nil, s)
				got, n, err := StringCodec.Decode(data)
				if err != nil || n != len(data) || got != s {
					t.Fatalf("string codec roundtrip: %q -> (%q,%d,%v)", s, got, n, err)
				}
			case 2: // struct key
				var p point
				if len(r) >= 10 {
					p = point{X: int64(binary.LittleEndian.Uint64(r)), Y: binary.LittleEndian.Uint16(r[8:])}
					r = r[10:]
				}
				data = pointCodec.Append(nil, p)
				got, n, err := pointCodec.Decode(data)
				if err != nil || n != len(data) || got != p {
					t.Fatalf("struct codec roundtrip: %+v -> (%+v,%d,%v)", p, got, n, err)
				}
			}
			ops = append(ops, rawOp{obj: uint32(len(ops)), kind: kind, data: data})
		}

		buf := make([]byte, frameHeader)
		buf = appendPayload(buf, lsn, txID, ops)
		frameFinish(buf, 0)

		rec, n, err := decodeFrame(buf)
		if err != nil {
			t.Fatalf("decode of valid frame failed: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
		}
		if rec.LSN != lsn || rec.TxID != txID || len(rec.Ops) != len(ops) {
			t.Fatalf("frame roundtrip: got (%d,%d,%d ops), want (%d,%d,%d ops)",
				rec.LSN, rec.TxID, len(rec.Ops), lsn, txID, len(ops))
		}
		for i, op := range rec.Ops {
			if op.Obj != ops[i].obj || op.Kind != ops[i].kind || !bytes.Equal(op.Data, ops[i].data) {
				t.Fatalf("op %d roundtrip mismatch: %+v vs %+v", i, op, ops[i])
			}
		}

		if corrupt >= 0 && len(buf) > 0 {
			pos := corrupt % len(buf)
			mut := append([]byte(nil), buf...)
			mut[pos] ^= 0x41
			rec2, _, err := decodeFrame(mut)
			if err == nil && !recordEqual(rec2, rec) {
				t.Fatalf("corrupt byte %d decoded to a DIFFERENT record: %+v", pos, rec2)
			}
		}
	})
}

func recordEqual(a, b Record) bool {
	if a.LSN != b.LSN || a.TxID != b.TxID || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i].Obj != b.Ops[i].Obj || a.Ops[i].Kind != b.Ops[i].Kind ||
			!bytes.Equal(a.Ops[i].Data, b.Ops[i].Data) {
			return false
		}
	}
	return true
}
